package mqdp_test

import (
	"fmt"

	"mqdp"
)

// The Figure 2 instance of the paper: four posts over labels a and c with
// λ = 1; the optimum keeps P3 (covering label a around it and label c) plus
// one endpoint.
func ExampleSolve() {
	var dict mqdp.Dictionary
	a, c := dict.Intern("a"), dict.Intern("c")
	posts := []mqdp.Post{
		{ID: 1, Value: 1, Labels: []mqdp.Label{a}},
		{ID: 2, Value: 2, Labels: []mqdp.Label{a}},
		{ID: 3, Value: 3, Labels: []mqdp.Label{a, c}},
		{ID: 4, Value: 4, Labels: []mqdp.Label{c}},
	}
	inst, _ := mqdp.NewInstance(posts, dict.Len())
	cover, _ := mqdp.Solve(inst, mqdp.Options{Lambda: 1, Algorithm: mqdp.OPT})
	fmt.Println(cover.Size(), "posts represent the stream")
	// Output: 2 posts represent the stream
}

func ExampleNewStream() {
	var dict mqdp.Dictionary
	topic := dict.Intern("breaking")
	proc, _ := mqdp.NewStream(mqdp.StreamScanPlus, dict.Len(), 60, 10)
	posts := []mqdp.Post{
		{ID: 1, Value: 0, Labels: []mqdp.Label{topic}},
		{ID: 2, Value: 30, Labels: []mqdp.Label{topic}},  // within λ of post 1
		{ID: 3, Value: 300, Labels: []mqdp.Label{topic}}, // new development
	}
	emissions, _ := mqdp.RunStream(posts, proc)
	for _, e := range emissions {
		fmt.Printf("post %d shown at t=%.0f\n", e.Post.ID, e.EmitAt)
	}
	// Post 1 is shown once its τ=10 delay budget expires; post 2 is then
	// redundant (within λ of it), and post 3 is news again.
	// Output:
	// post 1 shown at t=10
	// post 3 shown at t=310
}

func ExampleSolvePortfolio() {
	var dict mqdp.Dictionary
	a := dict.Intern("topic")
	posts := []mqdp.Post{
		{ID: 1, Value: 0, Labels: []mqdp.Label{a}},
		{ID: 2, Value: 1, Labels: []mqdp.Label{a}},
		{ID: 3, Value: 2, Labels: []mqdp.Label{a}},
	}
	inst, _ := mqdp.NewInstance(posts, dict.Len())
	best, _ := mqdp.SolvePortfolio(inst, mqdp.Options{Lambda: 1})
	fmt.Println(best.Size())
	// Output: 1
}
