// Sentiment: diversification over the sentiment dimension with proportional
// λ (§2 and §6 of the paper).
//
//	go run ./examples/sentiment
//
// News about an unemployment-rate drop draws mostly positive posts and a
// few negative ones. Diversifying over sentiment polarity with Equation 2's
// density-adaptive thresholds keeps the selection proportional — more
// positive representatives where the reaction is mostly positive — while a
// fixed λ flattens the distribution.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mqdp"
	"mqdp/internal/sentiment"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	positive := []string{
		"great news on jobs, strong growth this quarter",
		"unemployment drops again, what a win for workers",
		"hiring is up and markets rally on the report",
		"really happy to see the recovery gaining strength",
		"excellent jobs report, economy improving fast",
	}
	negative := []string{
		"the jobs report hides weak wages and losses",
		"still worried about layoffs in manufacturing",
		"this recovery is terrible for part time workers",
	}

	// 40 positive takes, 8 negative takes, with wording jitter.
	var dict mqdp.Dictionary
	jobs := dict.Intern("jobs-report")
	var posts []mqdp.Post
	id := int64(0)
	emit := func(templates []string, n int) {
		for i := 0; i < n; i++ {
			text := templates[rng.Intn(len(templates))]
			score := sentiment.Score(text) + rng.NormFloat64()*0.05
			if score > 1 {
				score = 1
			} else if score < -1 {
				score = -1
			}
			posts = append(posts, mqdp.Post{ID: id, Value: score, Labels: []mqdp.Label{jobs}})
			id++
		}
	}
	emit(positive, 40)
	emit(negative, 8)

	inst, err := mqdp.NewInstance(posts, dict.Len())
	if err != nil {
		log.Fatal(err)
	}

	lambda0 := 0.25
	for _, proportional := range []bool{false, true} {
		cover, err := mqdp.Solve(inst, mqdp.Options{
			Lambda:       lambda0,
			Algorithm:    mqdp.Scan,
			Proportional: proportional,
		})
		if err != nil {
			log.Fatal(err)
		}
		pos, neg := 0, 0
		for _, i := range cover.Selected {
			if inst.Post(i).Value >= 0 {
				pos++
			} else {
				neg++
			}
		}
		mode := "fixed λ       "
		if proportional {
			mode = "proportional λ"
		}
		fmt.Printf("%s: %2d selected (%d positive, %d negative)\n", mode, cover.Size(), pos, neg)
	}
	fmt.Printf("\ninput distribution: %d positive, %d negative posts\n", 40, 8)
	fmt.Println("proportional λ shrinks coverage radii in the dense positive region,")
	fmt.Println("so the digest mirrors the crowd's reaction instead of flattening it.")
}
