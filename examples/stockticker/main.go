// Stockticker: the paper's investor scenario (§1), streaming.
//
//	go run ./examples/stockticker
//
// An investor subscribes to ticker queries ($GOOG, $MSFT, $NASDAQ). Posts
// arrive as a live stream; StreamScan+ emits a diversified sub-stream where
// every emitted post is reported within τ = 30 seconds of publication, and
// nothing within λ = 5 minutes repeats a ticker already shown.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"mqdp"
)

func main() {
	var dict mqdp.Dictionary
	tickers := []string{"$goog", "$msft", "$nasdaq"}
	for _, t := range tickers {
		dict.Intern(t)
	}

	// Simulate one trading hour: $nasdaq chatter is constant, $goog has an
	// earnings burst mid-hour, $msft trickles.
	rng := rand.New(rand.NewSource(7))
	var posts []mqdp.Post
	id := int64(0)
	add := func(t float64, labels ...mqdp.Label) {
		sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
		posts = append(posts, mqdp.Post{ID: id, Value: t, Labels: labels})
		id++
	}
	for t := 0.0; t < 3600; t += 20 + rng.Float64()*40 {
		add(t, 2) // $nasdaq
	}
	for t := 1500.0; t < 1900; t += 5 + rng.Float64()*15 {
		if rng.Float64() < 0.3 {
			add(t, 0, 2) // $goog + market reaction
		} else {
			add(t, 0)
		}
	}
	for t := 0.0; t < 3600; t += 300 + rng.Float64()*600 {
		add(t, 1) // $msft
	}
	sort.Slice(posts, func(i, j int) bool { return posts[i].Value < posts[j].Value })

	lambda, tau := 300.0, 30.0
	proc, err := mqdp.NewStream(mqdp.StreamScanPlus, dict.Len(), lambda, tau)
	if err != nil {
		log.Fatal(err)
	}
	emissions, err := mqdp.RunStream(posts, proc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d raw posts → %d alerts (λ=%.0fs, τ=%.0fs)\n\n", len(posts), len(emissions), lambda, tau)
	maxDelay := 0.0
	for _, e := range emissions {
		var names []string
		for _, l := range e.Post.Labels {
			names = append(names, dict.Name(l))
		}
		delay := e.EmitAt - e.Post.Value
		if delay > maxDelay {
			maxDelay = delay
		}
		fmt.Printf("  %02d:%02d  %-14v (delayed %4.1fs)\n",
			int(e.Post.Value)/60, int(e.Post.Value)%60, names, delay)
	}
	fmt.Printf("\nmax reporting delay: %.1fs (bound τ = %.0fs)\n", maxDelay, tau)
	if maxDelay > tau {
		log.Fatalf("delay bound violated: %v > %v", maxDelay, tau)
	}
}
