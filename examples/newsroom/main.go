// Newsroom: the paper's journalist scenario (§1), end to end.
//
//	go run ./examples/newsroom
//
// A journalist follows several politics topics. The pipeline mirrors the
// paper's Figure 1 architecture: a synthetic news corpus trains LDA, whose
// topics become the journalist's queries; a synthetic tweet stream is
// indexed in a real-time inverted index; matching posts are near-duplicate
// filtered with SimHash; and the survivors are diversified over time with
// GreedySC into a short digest.
package main

import (
	"fmt"
	"log"

	"mqdp"
	"mqdp/internal/index"
	"mqdp/internal/lda"
	"mqdp/internal/match"
	"mqdp/internal/simhash"
	"mqdp/internal/synth"
)

func main() {
	// 1. Plant a topic world and train LDA on its news corpus (§7.1's
	//    query-generation pipeline).
	world := synth.NewWorld(synth.WorldConfig{BroadTopics: 4, TopicsPerBroad: 4, KeywordsPerTopic: 25, Seed: 1})
	corpus := lda.NewCorpus()
	for _, a := range synth.NewsCorpus(world, synth.NewsConfig{Articles: 800, WordsPerDoc: 80, Seed: 2}) {
		corpus.AddText(a.Text)
	}
	model, err := lda.Train(corpus, lda.Options{Topics: len(world.Topics), Iterations: 80, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The journalist's profile: three LDA topics as queries.
	var topics []match.Topic
	for k := 0; k < 3; k++ {
		var kws []match.Keyword
		for _, tw := range model.TopKeywords(k, 25) {
			kws = append(kws, match.Keyword{Text: tw.Word, Weight: tw.Weight})
		}
		topics = append(topics, match.Topic{Name: fmt.Sprintf("topic-%d", k), Keywords: kws})
		head := topics[k].Keywords
		if len(head) > 6 {
			head = head[:6]
		}
		fmt.Printf("query %d:", k)
		for _, kw := range head {
			fmt.Printf(" %s", kw.Text)
		}
		fmt.Println()
	}
	matcher, err := match.NewMatcher(topics)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A two-hour tweet stream (with retweet noise) goes into the
	//    real-time index.
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 7200, RatePerSec: 4, DupRatio: 0.15, Seed: 4})
	ix := index.New()
	for _, tw := range tweets {
		if err := ix.Add(index.Doc{ID: tw.ID, Time: tw.Time, Text: tw.Text}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nindexed %d tweets (%d terms)\n", ix.Len(), ix.Terms())

	// 4. Retrieve matching posts, drop near-duplicates, diversify.
	matched := matcher.FromIndex(ix, match.ByTime, 0, 7200)
	dedup := simhash.NewDeduper(12, 4096)
	var posts []mqdp.Post
	for _, p := range matched {
		if dedup.Offer(ix.Doc(findPos(ix, p.ID)).Text) {
			posts = append(posts, p)
		}
	}
	seen, dropped := dedup.Stats()
	fmt.Printf("matched %d posts; SimHash dropped %d of %d near-duplicates\n", len(matched), dropped, seen)

	inst, err := mqdp.NewInstance(posts, matcher.NumTopics())
	if err != nil {
		log.Fatal(err)
	}
	cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: 900, Algorithm: mqdp.GreedySC}) // λ = 15 minutes
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndigest: %d representative posts (λ = 15 min) out of %d\n\n", cover.Size(), inst.Len())
	for _, i := range cover.Selected {
		p := inst.Post(i)
		text := ix.Doc(findPos(ix, p.ID)).Text
		if len(text) > 64 {
			text = text[:64] + "…"
		}
		fmt.Printf("  [%5.0fs] labels %v  %s\n", p.Value, p.Labels, text)
	}
}

// findPos locates a document position by ID. The synthetic stream assigns
// consecutive ids in time order, so this is a direct probe with a fallback
// scan for safety.
func findPos(ix *index.Index, id int64) int32 {
	if int(id) < ix.Len() && ix.Doc(int32(id)).ID == id {
		return int32(id)
	}
	for pos := int32(0); int(pos) < ix.Len(); pos++ {
		if ix.Doc(pos).ID == id {
			return pos
		}
	}
	panic("document not found")
}
