// Citypulse: spatiotemporal diversification (the paper's §9 future-work
// direction, implemented in internal/spatial).
//
//	go run ./examples/citypulse
//
// A national news desk follows two topics across US cities. A selected post
// only represents others that are close in BOTH time (λt) and place (λd), so
// the digest keeps one voice per city per time window instead of letting the
// loudest city drown out the rest.
package main

import (
	"fmt"
	"log"

	"mqdp/internal/spatial"
	"mqdp/internal/synth"
)

func main() {
	posts := synth.GenerateGeoPosts(synth.GeoStreamConfig{
		Duration:   1800, // 30 minutes
		RatePerSec: 0.3,
		NumLabels:  2,
		Overlap:    1.3,
		Seed:       5,
	})
	in, err := spatial.NewInstance(posts, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d geotagged posts across %d cities\n\n", in.Len(), len(synth.DefaultCities()))

	for _, th := range []spatial.Thresholds{
		{TimeSec: 600, DistKm: 10000}, // time-only (1-D MQDP behaviour)
		{TimeSec: 600, DistKm: 50},    // per-metro representatives
	} {
		cover, err := in.GreedySC(th)
		if err != nil {
			log.Fatal(err)
		}
		if err := in.VerifyCover(th, cover.Selected); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("λt=%.0fs λd=%.0fkm → %d representatives\n", th.TimeSec, th.DistKm, cover.Size())
		if th.DistKm == 50 {
			byCity := map[string]int{}
			for _, i := range cover.Selected {
				byCity[nearestCity(in.Post(i))]++
			}
			for _, c := range synth.DefaultCities() {
				fmt.Printf("  %-12s %d\n", c.Name, byCity[c.Name])
			}
		}
	}
}

// nearestCity attributes a post to the closest default city.
func nearestCity(p spatial.Post) string {
	best, bestD := "", 0.0
	for _, c := range synth.DefaultCities() {
		d := spatial.Haversine(p.Lat, p.Lon, c.Lat, c.Lon)
		if best == "" || d < bestD {
			best, bestD = c.Name, d
		}
	}
	return best
}
