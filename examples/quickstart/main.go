// Quickstart: diversify a handful of posts with the public API.
//
//	go run ./examples/quickstart
//
// Reproduces the paper's Figure 2 walk-through: four posts about labels
// a and c, λ = one step on the time axis, minimum cover {P2, P4}.
package main

import (
	"fmt"
	"log"

	"mqdp"
)

func main() {
	var dict mqdp.Dictionary
	a := dict.Intern("a")
	c := dict.Intern("c")

	posts := []mqdp.Post{
		{ID: 1, Value: 1, Labels: []mqdp.Label{a}},
		{ID: 2, Value: 2, Labels: []mqdp.Label{a}},
		{ID: 3, Value: 3, Labels: []mqdp.Label{a, c}},
		{ID: 4, Value: 4, Labels: []mqdp.Label{c}},
	}
	inst, err := mqdp.NewInstance(posts, dict.Len())
	if err != nil {
		log.Fatal(err)
	}

	for _, algo := range []mqdp.Algorithm{mqdp.Scan, mqdp.GreedySC, mqdp.OPT} {
		cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: 1, Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s selected %d posts: ids %v\n", algo, cover.Size(), cover.IDs(inst))
	}

	// The same four posts as a stream, decided within τ = 1 time unit.
	proc, err := mqdp.NewStream(mqdp.StreamScanPlus, dict.Len(), 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	emissions, err := mqdp.RunStream(posts, proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming with τ=1:\n")
	for _, e := range emissions {
		fmt.Printf("  post %d (t=%.0f) emitted at t=%.0f (delay %.0f)\n",
			e.Post.ID, e.Post.Value, e.EmitAt, e.EmitAt-e.Post.Value)
	}
}
