// Pubsub: the full publish/subscribe service end to end, in process.
//
//	go run ./examples/pubsub
//
// Starts an mqdp-server on a local port, registers two user profiles with
// different topics and algorithms, streams an hour of synthetic tweets
// through /ingest, and polls each profile's diversified feed — the paper's
// §1 subscription scenario as a running system.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"mqdp/internal/match"
	"mqdp/internal/server"
	"mqdp/internal/synth"
)

func main() {
	// Boot the service on an ephemeral port.
	core := server.New(10, 4096)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, server.Handler(core)); err != nil && err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("mqdp-server at %s\n\n", base)
	client := server.NewClient(base)

	// Two profiles over the planted topic world.
	world := synth.NewWorld(synth.WorldConfig{BroadTopics: 3, TopicsPerBroad: 3, Seed: 8})
	newsDesk, err := client.Subscribe(server.SubscriptionConfig{
		Topics:    world.MatchTopics(world.ByBroad[0][:2]), // two politics topics
		Lambda:    300,
		Tau:       30,
		Algorithm: "streamscan+",
	})
	if err != nil {
		log.Fatal(err)
	}
	trader, err := client.Subscribe(server.SubscriptionConfig{
		Topics:    world.MatchTopics(world.ByBroad[2][:1]), // one business topic
		Lambda:    120,
		Tau:       0,
		Algorithm: "instant",
	})
	if err != nil {
		log.Fatal(err)
	}

	// One hour of tweets through the shared ingest.
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 3600, RatePerSec: 3, DupRatio: 0.1, Seed: 9})
	batch := make([]server.Post, 0, 500)
	for _, tw := range tweets {
		batch = append(batch, server.Post{ID: tw.ID, Time: tw.Time, Text: tw.Text})
		if len(batch) == cap(batch) {
			if err := client.Ingest(batch...); err != nil {
				log.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := client.Ingest(batch...); err != nil {
			log.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		log.Fatal(err)
	}

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d tweets, %d near-duplicates dropped\n\n", stats.Ingested, stats.DroppedDups)

	for _, sub := range []struct {
		name string
		id   int64
	}{{"news desk", newsDesk}, {"trader", trader}} {
		ss, err := client.SubscriptionStats(sub.id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s, λ=%.0fs τ=%.0fs): %d matched → %d shown\n",
			sub.name, ss.Algorithm, ss.Lambda, ss.Tau, ss.Matched, ss.Emitted)
		es, err := client.Emissions(sub.id, 0, 3)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range es {
			text := e.Text
			if len(text) > 48 {
				text = text[:48] + "…"
			}
			fmt.Printf("    [%4.0fs] %v  %s\n", e.Time, e.Topics, text)
		}
	}
	printTopicsFor(world)
}

// printTopicsFor shows which queries the profiles used.
func printTopicsFor(world *synth.World) {
	fmt.Println("\nprofiles:")
	show := func(name string, topics []match.Topic) {
		fmt.Printf("  %s:", name)
		for _, t := range topics {
			fmt.Printf(" %s", t.Name)
		}
		fmt.Println()
	}
	show("news desk", world.MatchTopics(world.ByBroad[0][:2]))
	show("trader", world.MatchTopics(world.ByBroad[2][:1]))
}
