// Command mqdp-server runs the publish/subscribe diversification service:
// clients register topic profiles and poll per-profile diversified feeds
// while a shared post stream is ingested.
//
//	mqdp-server -addr :8080 -dedup 10 -parallelism 0
//
// API (JSON):
//
//	POST   /subscriptions   {"topics":[{"Name":"obama","Keywords":[{"Text":"obama","Weight":1}]}],
//	                         "lambda":3600, "tau":30, "algorithm":"streamscan+"} → {"id":1}
//	POST   /ingest          {"id":1,"time":1370000000,"text":"..."} or a JSON array of posts
//	                        → {"accepted":N} ({"accepted":N,"error":...} on a mid-batch failure)
//	GET    /subscriptions/1/emissions?after=0&limit=100      (add &wait=30s to long-poll)
//	GET    /subscriptions/1/stream  (Server-Sent Events push; try curl -N)
//	GET    /subscriptions/1/topk    (continuous diversified top-k view)
//	GET    /subscriptions/1/stats · GET /stats · GET /metrics · GET /healthz
//	GET    /metrics/prometheus  (text exposition of every wired instrument)
//	GET    /debug/traces · GET /debug/traces/{id}  (recent request traces)
//	POST   /flush · DELETE /subscriptions/1
//
// Tracing: unless -trace=false (or -no-obs), every request runs under a
// span; requests carrying a W3C traceparent header continue the caller's
// trace and responses echo X-Trace-Id. The journal is tail-sampled —
// errored and slow traces (≥ -trace-slow) are always kept, every
// -trace-sample'th ordinary trace rides along — and browsable at
// /debug/traces. Logs are structured (log/slog); -log-format json emits
// machine-readable records, -log-level debug includes per-request lines
// correlated by trace_id.
//
// SLOs: -slo-ingest/-slo-poll set per-endpoint latency objectives
// (e.g. -slo-ingest 50ms). Good/bad counters land in the Prometheus
// exposition as mqdp_slo_*_total and burn rates appear under /metrics.
//
// Push delivery: -push=false turns the SSE endpoint off (clients fall
// back to long-polling), and -max-streams caps concurrently served push
// waiters — SSE streams plus blocked long-polls — refusing the excess
// with 503 + Retry-After.
//
// Ingest fan-out: posts route through an inverted keyword → subscription
// index so only subscriptions sharing a keyword with the post are fed
// (see docs/ARCHITECTURE.md, "Subscription routing"). -no-routing falls
// back to broadcasting every post to every subscription's matcher;
// emissions are byte-identical either way, only the fan-out cost differs.
//
// Overload protection (all off by default): -max-inflight caps concurrent
// ingest requests, -ingest-rate/-ingest-burst bound the ingest request
// rate with a token bucket, and -shed-policy picks what a request over the
// in-flight cap does — "shed" rejects it with 429 + Retry-After, "block"
// queues it briefly. -ingest-deadline bounds the server-side wall time of
// one ingest request; a batch cut mid-way reports the applied prefix with
// 503 so honoring clients resume instead of resending.
//
// Durability (off by default; see docs/ARCHITECTURE.md, "Durability and
// recovery"): -data-dir names a directory for the write-ahead log and
// state snapshots. Every ingest batch, subscription change and terminal
// latch is journaled before it is applied, snapshots are taken every
// -snapshot-interval and on graceful shutdown, and a restart on the same
// directory recovers the full state — subscriptions, emission buffers,
// in-flight diversification windows, the idempotency replay cache —
// then replays the WAL suffix, so a kill -9 loses nothing a retrying
// client can't re-drive. -fsync picks the fsync cadence (batch = fsync
// per ingest request, interval = background tick, off = OS page cache
// only) and -wal-segment-bytes the segment rotation threshold. On a WAL
// write failure the server degrades to read-only: ingest and
// subscription changes answer 503 + Retry-After while reads keep
// serving, and /healthz reports "degraded".
//
// -fault-schedule installs a deterministic in-process fault injector
// (for chaos drills only; see internal/faultinject for the schedule
// grammar), seeded by -fault-seed. With durability enabled the schedule
// also reaches the WAL's IO failpoints ("wal.append", "wal.sync") via
// disk: actions.
//
// With -debug-addr a second HTTP server exposes net/http/pprof under
// /debug/pprof/ and expvar under /debug/vars (including an "mqdp" variable
// mirroring the metrics registry snapshot), kept off the public port.
// -no-obs drops the registry entirely; every instrumented hot path falls
// back to its no-op fast path.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests, flushes every subscription's pending decisions and
// logs the final counters before exiting.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mqdp/internal/core"
	"mqdp/internal/faultinject"
	"mqdp/internal/index"
	"mqdp/internal/obs"
	"mqdp/internal/server"
	"mqdp/internal/stream"
	"mqdp/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dedupDist := flag.Int("dedup", 10, "SimHash hamming threshold for near-duplicate dropping")
	dedupWindow := flag.Int("dedup-window", 8192, "recent posts remembered for deduplication (0 disables)")
	parallelism := flag.Int("parallelism", 0, "ingest fan-out workers across subscriptions (0 = GOMAXPROCS, 1 = serial)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "maximum time to drain in-flight requests on shutdown")
	debugAddr := flag.String("debug-addr", "", "listen address for the debug server (pprof, expvar); empty disables")
	noObs := flag.Bool("no-obs", false, "disable the metrics registry (/metrics/prometheus returns 503)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent ingest requests (0 = unlimited)")
	ingestRate := flag.Float64("ingest-rate", 0, "ingest requests admitted per second (0 = unlimited)")
	ingestBurst := flag.Int("ingest-burst", 1, "token-bucket burst for -ingest-rate")
	ingestDeadline := flag.Duration("ingest-deadline", 0, "server-side wall-time budget per ingest request (0 = none)")
	shedPolicy := flag.String("shed-policy", "shed", `over-capacity ingest behavior: "shed" (429 + Retry-After) or "block"`)
	noRouting := flag.Bool("no-routing", false, "disable the inverted subscription-routing index; ingest broadcasts every post to every subscription")
	push := flag.Bool("push", true, "serve SSE push delivery on /subscriptions/{id}/stream")
	maxStreams := flag.Int("max-streams", 0, "max concurrently served push waiters, SSE + blocked long-polls (0 = unlimited)")
	faultSchedule := flag.String("fault-schedule", "", "deterministic fault-injection schedule for chaos drills (see internal/faultinject)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic rules in -fault-schedule")
	logFormat := flag.String("log-format", "text", `log output format: "text" or "json"`)
	logLevel := flag.String("log-level", "info", `minimum log level: "debug", "info", "warn" or "error" (debug includes per-request records)`)
	trace := flag.Bool("trace", true, "trace requests end-to-end and serve /debug/traces (needs the registry; -no-obs disables)")
	traceCapacity := flag.Int("trace-capacity", 4096, "retained span journal size")
	traceSlow := flag.Duration("trace-slow", 100*time.Millisecond, "traces at least this slow are always retained")
	traceSample := flag.Int("trace-sample", 10, "keep every Nth ordinary trace (errored and slow ones are always kept; 1 keeps all)")
	sloIngest := flag.Duration("slo-ingest", 0, "ingest latency objective, e.g. 50ms (0 disables the ingest SLO)")
	sloPoll := flag.Duration("slo-poll", 0, "emission-poll latency objective (0 disables the poll SLO)")
	sloTarget := flag.Float64("slo-target", 0.99, "availability target for both SLOs, in (0, 1)")
	dataDir := flag.String("data-dir", "", "durability directory for the write-ahead log and snapshots (empty = in-memory only)")
	fsync := flag.String("fsync", "batch", `WAL fsync policy: "batch" (per ingest request), "interval" (background tick), "off" (OS page cache only)`)
	fsyncInterval := flag.Duration("fsync-interval", 50*time.Millisecond, `background WAL fsync tick for -fsync interval`)
	walSegmentBytes := flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = default 64 MiB)")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute, "periodic state-snapshot cadence; snapshots also happen on graceful shutdown (0 = shutdown only)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	default:
		slog.Error("bad -log-format", "value", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	policy := server.ShedPolicy(*shedPolicy)
	if policy != server.ShedPolicyShed && policy != server.ShedPolicyBlock {
		logger.Error("bad -shed-policy", "value", *shedPolicy, "want", string(server.ShedPolicyShed)+"|"+string(server.ShedPolicyBlock))
		os.Exit(2)
	}

	s := server.New(*dedupDist, *dedupWindow)
	s.SetParallelism(*parallelism)
	s.SetLogger(logger)
	if *maxInflight > 0 || *ingestRate > 0 {
		s.SetAdmission(server.AdmissionConfig{
			MaxInflight: *maxInflight,
			Rate:        *ingestRate,
			Burst:       *ingestBurst,
			Policy:      policy,
		})
	}
	s.SetIngestDeadline(*ingestDeadline)
	if *noRouting {
		// Escape hatch for the inverted routing index: emissions are
		// byte-identical either way (routing is a pure superset filter),
		// only the fan-out cost differs.
		s.SetRouting(false)
	}
	s.SetPush(*push)
	s.SetMaxStreams(*maxStreams)
	if *faultSchedule != "" {
		inj, err := faultinject.ParseSchedule(*faultSchedule, *faultSeed)
		if err != nil {
			logger.Error("bad -fault-schedule", "err", err)
			os.Exit(2)
		}
		logger.Warn("CHAOS: fault injection active", "schedule", *faultSchedule, "seed", *faultSeed)
		s.SetFaultInjector(inj)
	}
	if !*noObs {
		// One registry backs every layer: solver stage timings, stream
		// decision delays, index append/lookup and the server counters all
		// land in the same /metrics/prometheus exposition. The tracer is
		// attached before wiring so each package's SetObs captures it.
		reg := obs.NewRegistry()
		if *trace {
			tr := obs.NewTracer(*traceCapacity)
			tr.SetRetention(*traceSlow, *traceSample)
			reg.SetTracer(tr)
		}
		core.SetObs(reg)
		stream.SetObs(reg)
		index.SetObs(reg)
		s.SetObs(reg)
		var ingestSLO, pollSLO *obs.SLO
		if *sloIngest > 0 {
			ingestSLO = obs.NewSLO("ingest", *sloIngest, *sloTarget)
			ingestSLO.Register(reg)
		}
		if *sloPoll > 0 {
			pollSLO = obs.NewSLO("poll", *sloPoll, *sloTarget)
			pollSLO.Register(reg)
		}
		s.SetSLO(ingestSLO, pollSLO)
		expvar.Publish("mqdp", expvar.Func(func() any { return reg.Snapshot() }))
	}
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			logger.Error("bad -fsync", "value", *fsync, "err", err)
			os.Exit(2)
		}
		// After SetObs and SetFaultInjector: recovery replay then runs with
		// live instruments, and chaos disk actions reach the WAL failpoints.
		start := time.Now()
		if err := s.EnableDurability(server.DurabilityConfig{
			Dir:              *dataDir,
			Fsync:            policy,
			FsyncInterval:    *fsyncInterval,
			SegmentBytes:     *walSegmentBytes,
			SnapshotInterval: *snapshotInterval,
		}); err != nil {
			logger.Error("durability", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		m := s.Metrics()
		if m.Durability != nil {
			logger.Info("recovered state",
				"dir", *dataDir,
				"fsync", *fsync,
				"subscriptions", m.Subscriptions,
				"replayed_records", m.Durability.ReplayedRecords,
				"replayed_posts", m.Durability.ReplayedPosts,
				"repaired_tail_bytes", m.Durability.RepairedBytes,
				"recovery_time", time.Since(start))
		}
	}
	if *debugAddr != "" {
		go func() {
			// pprof and expvar register on http.DefaultServeMux; serving it
			// on its own listener keeps the profiling surface off the
			// public API port.
			dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
			logger.Info("debug server (pprof, expvar) listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
	}
	h := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(s),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Listen explicitly so the resolved address (e.g. a kernel-assigned
	// port under ":0") is known — and logged — before serving starts;
	// harness processes scrape it to find the server.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("mqdp-server listening",
			"addr", ln.Addr().String(),
			"dedup_distance", *dedupDist,
			"dedup_window", *dedupWindow,
			"ingest_workers", s.Parallelism(),
			"routing", s.RoutingEnabled(),
			"durability", *dataDir != "",
			"tracing", !*noObs && *trace)
		errc <- h.Serve(ln)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Error("serve", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	logger.Info("shutting down: flushing subscriptions, draining connections")
	// Flush BEFORE draining: flushing forces every pending decision out and
	// terminates each subscription's hub, so live SSE streams and blocked
	// long-polls receive their terminal end event and finish. Draining
	// first would park on those never-ending streams until the timeout.
	s.Flush()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := h.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("drain", "err", err)
	}
	// Final snapshot + WAL close: a graceful restart recovers from the
	// snapshot alone, with zero records to replay.
	if err := s.CloseDurability(); err != nil {
		logger.Warn("durability close", "err", err)
	}
	m := s.Metrics()
	logger.Info("final counters",
		"ingested", m.Ingested,
		"dropped_duplicates", m.DroppedDups,
		"subscriptions", m.Subscriptions,
		"emitted", m.EmittedTotal,
		"text_misses", m.TextMisses)
}
