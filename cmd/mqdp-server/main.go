// Command mqdp-server runs the publish/subscribe diversification service:
// clients register topic profiles and poll per-profile diversified feeds
// while a shared post stream is ingested.
//
//	mqdp-server -addr :8080 -dedup 10
//
// API (JSON):
//
//	POST   /subscriptions   {"topics":[{"Name":"obama","Keywords":[{"Text":"obama","Weight":1}]}],
//	                         "lambda":3600, "tau":30, "algorithm":"streamscan+"} → {"id":1}
//	POST   /ingest          {"id":1,"time":1370000000,"text":"..."} or a JSON array of posts
//	GET    /subscriptions/1/emissions?after=0&limit=100
//	GET    /subscriptions/1/stats · GET /stats · POST /flush · DELETE /subscriptions/1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"mqdp/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dedupDist := flag.Int("dedup", 10, "SimHash hamming threshold for near-duplicate dropping")
	dedupWindow := flag.Int("dedup-window", 8192, "recent posts remembered for deduplication (0 disables)")
	flag.Parse()

	s := server.New(*dedupDist, *dedupWindow)
	h := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(s),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("mqdp-server listening on %s (dedup distance %d, window %d)\n", *addr, *dedupDist, *dedupWindow)
	log.Fatal(h.ListenAndServe())
}
