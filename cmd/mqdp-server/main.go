// Command mqdp-server runs the publish/subscribe diversification service:
// clients register topic profiles and poll per-profile diversified feeds
// while a shared post stream is ingested.
//
//	mqdp-server -addr :8080 -dedup 10 -parallelism 0
//
// API (JSON):
//
//	POST   /subscriptions   {"topics":[{"Name":"obama","Keywords":[{"Text":"obama","Weight":1}]}],
//	                         "lambda":3600, "tau":30, "algorithm":"streamscan+"} → {"id":1}
//	POST   /ingest          {"id":1,"time":1370000000,"text":"..."} or a JSON array of posts
//	                        → {"accepted":N} ({"accepted":N,"error":...} on a mid-batch failure)
//	GET    /subscriptions/1/emissions?after=0&limit=100      (add &wait=30s to long-poll)
//	GET    /subscriptions/1/stream  (Server-Sent Events push; try curl -N)
//	GET    /subscriptions/1/topk    (continuous diversified top-k view)
//	GET    /subscriptions/1/stats · GET /stats · GET /metrics · GET /healthz
//	GET    /metrics/prometheus  (text exposition of every wired instrument)
//	POST   /flush · DELETE /subscriptions/1
//
// Push delivery: -push=false turns the SSE endpoint off (clients fall
// back to long-polling), and -max-streams caps concurrently served push
// waiters — SSE streams plus blocked long-polls — refusing the excess
// with 503 + Retry-After.
//
// Overload protection (all off by default): -max-inflight caps concurrent
// ingest requests, -ingest-rate/-ingest-burst bound the ingest request
// rate with a token bucket, and -shed-policy picks what a request over the
// in-flight cap does — "shed" rejects it with 429 + Retry-After, "block"
// queues it briefly. -ingest-deadline bounds the server-side wall time of
// one ingest request; a batch cut mid-way reports the applied prefix with
// 503 so honoring clients resume instead of resending.
//
// -fault-schedule installs a deterministic in-process fault injector
// (for chaos drills only; see internal/faultinject for the schedule
// grammar), seeded by -fault-seed.
//
// With -debug-addr a second HTTP server exposes net/http/pprof under
// /debug/pprof/ and expvar under /debug/vars (including an "mqdp" variable
// mirroring the metrics registry snapshot), kept off the public port.
// -no-obs drops the registry entirely; every instrumented hot path falls
// back to its no-op fast path.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests, flushes every subscription's pending decisions and
// logs the final counters before exiting.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mqdp/internal/core"
	"mqdp/internal/faultinject"
	"mqdp/internal/index"
	"mqdp/internal/obs"
	"mqdp/internal/server"
	"mqdp/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dedupDist := flag.Int("dedup", 10, "SimHash hamming threshold for near-duplicate dropping")
	dedupWindow := flag.Int("dedup-window", 8192, "recent posts remembered for deduplication (0 disables)")
	parallelism := flag.Int("parallelism", 0, "ingest fan-out workers across subscriptions (0 = GOMAXPROCS, 1 = serial)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "maximum time to drain in-flight requests on shutdown")
	debugAddr := flag.String("debug-addr", "", "listen address for the debug server (pprof, expvar); empty disables")
	noObs := flag.Bool("no-obs", false, "disable the metrics registry (/metrics/prometheus returns 503)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent ingest requests (0 = unlimited)")
	ingestRate := flag.Float64("ingest-rate", 0, "ingest requests admitted per second (0 = unlimited)")
	ingestBurst := flag.Int("ingest-burst", 1, "token-bucket burst for -ingest-rate")
	ingestDeadline := flag.Duration("ingest-deadline", 0, "server-side wall-time budget per ingest request (0 = none)")
	shedPolicy := flag.String("shed-policy", "shed", `over-capacity ingest behavior: "shed" (429 + Retry-After) or "block"`)
	push := flag.Bool("push", true, "serve SSE push delivery on /subscriptions/{id}/stream")
	maxStreams := flag.Int("max-streams", 0, "max concurrently served push waiters, SSE + blocked long-polls (0 = unlimited)")
	faultSchedule := flag.String("fault-schedule", "", "deterministic fault-injection schedule for chaos drills (see internal/faultinject)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic rules in -fault-schedule")
	flag.Parse()

	policy := server.ShedPolicy(*shedPolicy)
	if policy != server.ShedPolicyShed && policy != server.ShedPolicyBlock {
		log.Fatalf("-shed-policy must be %q or %q, got %q", server.ShedPolicyShed, server.ShedPolicyBlock, *shedPolicy)
	}

	s := server.New(*dedupDist, *dedupWindow)
	s.SetParallelism(*parallelism)
	if *maxInflight > 0 || *ingestRate > 0 {
		s.SetAdmission(server.AdmissionConfig{
			MaxInflight: *maxInflight,
			Rate:        *ingestRate,
			Burst:       *ingestBurst,
			Policy:      policy,
		})
	}
	s.SetIngestDeadline(*ingestDeadline)
	s.SetPush(*push)
	s.SetMaxStreams(*maxStreams)
	if *faultSchedule != "" {
		inj, err := faultinject.ParseSchedule(*faultSchedule, *faultSeed)
		if err != nil {
			log.Fatalf("-fault-schedule: %v", err)
		}
		log.Printf("CHAOS: fault injection active (schedule %q, seed %d)", *faultSchedule, *faultSeed)
		s.SetFaultInjector(inj)
	}
	if !*noObs {
		// One registry backs every layer: solver stage timings, stream
		// decision delays, index append/lookup and the server counters all
		// land in the same /metrics/prometheus exposition.
		reg := obs.NewRegistry()
		core.SetObs(reg)
		stream.SetObs(reg)
		index.SetObs(reg)
		s.SetObs(reg)
		expvar.Publish("mqdp", expvar.Func(func() any { return reg.Snapshot() }))
	}
	if *debugAddr != "" {
		go func() {
			// pprof and expvar register on http.DefaultServeMux; serving it
			// on its own listener keeps the profiling surface off the
			// public API port.
			dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
			log.Printf("debug server (pprof, expvar) listening on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug server: %v", err)
			}
		}()
	}
	h := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(s),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("mqdp-server listening on %s (dedup distance %d, window %d, %d ingest workers)\n",
			*addr, *dedupDist, *dedupWindow, s.Parallelism())
		errc <- h.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	log.Print("shutting down: flushing subscriptions, draining connections")
	// Flush BEFORE draining: flushing forces every pending decision out and
	// terminates each subscription's hub, so live SSE streams and blocked
	// long-polls receive their terminal end event and finish. Draining
	// first would park on those never-ending streams until the timeout.
	s.Flush()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := h.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("drain: %v", err)
	}
	m := s.Metrics()
	log.Printf("final: ingested=%d dropped_duplicates=%d subscriptions=%d emitted=%d text_misses=%d",
		m.Ingested, m.DroppedDups, m.Subscriptions, m.EmittedTotal, m.TextMisses)
}
