package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mqdp/internal/match"
	"mqdp/internal/server"
)

// RoutingBaseline is the machine-readable record emitted by -json-routing
// and checked in as BENCH_routing.json (regenerate with `make
// bench-routing`). It compares the per-post ingest fan-out cost of the
// inverted subscription routing index against the brute-force broadcast
// fan-out, on sparse-match workloads where only a controlled fraction of
// subscriptions matches each post — the paper's §7.4 many-users regime.
// Fan-out runs on one worker so the ratio isolates the algorithmic win
// (routing and broadcast parallelize identically).
type RoutingBaseline struct {
	Schema        int             `json:"schema"`
	GoVersion     string          `json:"go_version"`
	GOMAXPROCS    int             `json:"gomaxprocs"`
	NumCPU        int             `json:"num_cpu"`
	Workers       int             `json:"workers"`
	TokensPerPost int             `json:"tokens_per_post"`
	Runs          int             `json:"runs"`
	Results       []RoutingResult `json:"results"`
}

// RoutingResult is one (subscriptions, match-rate) cell: median ns/post
// for both fan-out modes plus the workload's observed match geometry.
type RoutingResult struct {
	Subs      int     `json:"subs"`
	MatchRate float64 `json:"match_rate"`
	Keywords  int     `json:"keywords"`
	Posts     int     `json:"posts"`
	// BroadcastNsPerPost and RoutedNsPerPost are medians across runs.
	BroadcastNsPerPost int64   `json:"broadcast_ns_per_post"`
	RoutedNsPerPost    int64   `json:"routed_ns_per_post"`
	Speedup            float64 `json:"speedup_routed_vs_broadcast"`
	// MatchedPerPost is subscriptions matched per post (identical across
	// modes — the equivalence guard below enforces it); SkippedPerPost is
	// the routed mode's elided feeds per post.
	MatchedPerPost float64 `json:"matched_per_post"`
	SkippedPerPost float64 `json:"skipped_per_post"`
	// EmissionsIdentical cross-checks the two modes delivered the same
	// matched/emitted totals (byte-level identity is pinned in-tree by
	// TestRoutingEquivalence).
	EmissionsIdentical bool `json:"emissions_identical"`
}

// routingTokensPerPost is the number of distinct topic keywords each
// synthetic post carries; the keyword-universe size is derived from it so
// that matchRate = tokensPerPost / keywords.
const routingTokensPerPost = 10

// routingRuns is the per-cell sample count; the medians are stable enough
// to track the routed-vs-broadcast trajectory across PRs.
const routingRuns = 3

// buildRoutingServer registers subs single-keyword profiles rotating over
// a keyword universe of the given size. Instant processors with a wide λ
// keep per-match processing minimal, so the cell measures fan-out cost.
func buildRoutingServer(subs, keywords int, routing bool) (*server.Server, error) {
	s := server.New(0, 0)
	s.SetParallelism(1)
	s.SetRouting(routing)
	for i := 0; i < subs; i++ {
		_, err := s.Subscribe(server.SubscriptionConfig{
			Topics: []match.Topic{{
				Name:     fmt.Sprintf("t%d", i),
				Keywords: []match.Keyword{{Text: fmt.Sprintf("kw%d", i%keywords), Weight: 1}},
			}},
			Lambda:    3600,
			Algorithm: "instant",
		})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// routingPosts synthesizes n posts that each carry tokensPerPost adjacent
// keywords from the universe, rotating so every keyword appears equally
// often: each post matches exactly the subscriptions whose keyword falls
// in its window — a deterministic matchRate = tokensPerPost/keywords.
func routingPosts(n, keywords int) []server.Post {
	posts := make([]server.Post, n)
	var sb strings.Builder
	for i := range posts {
		sb.Reset()
		start := (i * routingTokensPerPost) % keywords
		for j := 0; j < routingTokensPerPost; j++ {
			fmt.Fprintf(&sb, "kw%d ", (start+j)%keywords)
		}
		sb.WriteString("plus some filler chatter riding along")
		posts[i] = server.Post{ID: int64(i + 1), Time: float64(i), Text: sb.String()}
	}
	return posts
}

// timeRoutingRun ingests posts into a fresh server and reports total
// fan-out wall time plus the final matched/emitted totals.
func timeRoutingRun(subs, keywords int, routing bool, posts []server.Post) (time.Duration, int64, int64, int64, error) {
	s, err := buildRoutingServer(subs, keywords, routing)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	start := time.Now()
	for _, p := range posts {
		if err := s.Ingest(p); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	elapsed := time.Since(start)
	m := s.Metrics()
	return elapsed, m.MatchedTotal, m.EmittedTotal, m.RoutingSkipped, nil
}

func writeRoutingBaseline(w *os.File, smoke bool) error {
	type cell struct {
		subs  int
		rate  float64
		posts int
	}
	cells := []cell{
		{100, 0.01, 2000}, {100, 0.05, 2000}, {100, 0.25, 2000},
		{1000, 0.01, 1000}, {1000, 0.05, 1000}, {1000, 0.25, 1000},
		{10000, 0.01, 400}, {10000, 0.05, 400}, {10000, 0.25, 400},
	}
	runs := routingRuns
	if smoke {
		cells = []cell{{100, 0.05, 300}, {1000, 0.05, 200}}
		runs = 1
	}
	b := RoutingBaseline{
		Schema:        1,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Workers:       1,
		TokensPerPost: routingTokensPerPost,
		Runs:          runs,
	}
	for _, c := range cells {
		keywords := int(float64(routingTokensPerPost)/c.rate + 0.5)
		posts := routingPosts(c.posts, keywords)
		var bSamples, rSamples []time.Duration
		var bMatched, bEmitted, rMatched, rEmitted, rSkipped int64
		for run := 0; run < runs; run++ {
			el, matched, emitted, _, err := timeRoutingRun(c.subs, keywords, false, posts)
			if err != nil {
				return err
			}
			bSamples = append(bSamples, el)
			bMatched, bEmitted = matched, emitted
			el, matched, emitted, skipped, err := timeRoutingRun(c.subs, keywords, true, posts)
			if err != nil {
				return err
			}
			rSamples = append(rSamples, el)
			rMatched, rEmitted, rSkipped = matched, emitted, skipped
		}
		bMed, _ := summarize(bSamples)
		rMed, _ := summarize(rSamples)
		res := RoutingResult{
			Subs:               c.subs,
			MatchRate:          c.rate,
			Keywords:           keywords,
			Posts:              c.posts,
			BroadcastNsPerPost: int64(bMed) / int64(c.posts),
			RoutedNsPerPost:    int64(rMed) / int64(c.posts),
			MatchedPerPost:     float64(rMatched) / float64(c.posts),
			SkippedPerPost:     float64(rSkipped) / float64(c.posts),
			EmissionsIdentical: bMatched == rMatched && bEmitted == rEmitted,
		}
		if res.RoutedNsPerPost > 0 {
			res.Speedup = float64(res.BroadcastNsPerPost) / float64(res.RoutedNsPerPost)
		}
		b.Results = append(b.Results, res)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
