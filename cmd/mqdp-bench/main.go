// Command mqdp-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mqdp-bench -list
//	mqdp-bench -run fig6,fig7          # specific experiments
//	mqdp-bench -run all                # everything (default)
//	mqdp-bench -run all -scale smoke   # fast sanity pass
//	mqdp-bench -run all -parallel 4    # 4 experiments in flight at once
//	mqdp-bench -json                   # machine-readable solver timing baseline
//
// Output is the text tables recorded in EXPERIMENTS.md. With -parallel N the
// experiments execute concurrently but their outputs are buffered and flushed
// in registration order, so the tables are byte-identical to a serial run
// (only the wall-clock footers differ). -json ignores -run and emits the
// serial-vs-parallel solver timing baseline tracked in BENCH_baseline.json,
// including a "counters" section of obs work counters (posts scanned, gains
// recomputed, heap operations). -json-index likewise ignores -run and emits
// the inverted-index read-path baseline tracked in BENCH_index.json: each
// optimized query path (time-skipping term lookup, galloping intersection,
// bounded top-k search) measured against its naive linear-scan reference in
// the same run, plus the index obs counters. -json-wire emits the wire-format
// baseline tracked in BENCH_wire.json: encode/decode of an ingest batch in
// JSON vs the binary frame format (raw and compressed), plus a full
// server+client e2e ingest/poll cycle per format with an
// emissions-identical cross-check. -json-trace emits the tracing-overhead
// baseline tracked in BENCH_trace.json: the same ingest+poll workload with
// observability off, wired-but-disabled, and fully enabled, so the
// near-free-when-disabled contract has a standing number. -json-routing
// emits the subscription-routing fan-out baseline tracked in
// BENCH_routing.json: per-post ingest cost with the inverted keyword →
// subscription index on vs brute-force broadcast, across subscription
// counts and match rates (honors -scale smoke for a reduced matrix).
// -json-wal emits the durability cost baseline tracked in BENCH_wal.json:
// per-post ingest cost with the WAL off and under each fsync policy
// (off/interval/batch), the cost of one full state snapshot, and recovery
// time for a full-WAL replay vs a snapshot-plus-suffix restart.
// -trace-dump FILE
// wires the span
// tracer and writes the bounded span journal to FILE after the run ("-" for
// stderr).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mqdp/internal/core"
	"mqdp/internal/experiments"
	"mqdp/internal/index"
	"mqdp/internal/obs"
	"mqdp/internal/parallel"
	"mqdp/internal/stream"
	"mqdp/internal/synth"
)

// traceCapacity bounds the in-memory span journal; older spans are dropped
// once it wraps (the Dump trailer reports how many).
const traceCapacity = 4096

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	scale := flag.String("scale", "full", "workload scale: full or smoke")
	format := flag.String("format", "text", "table format: text or md")
	par := flag.Int("parallel", 1, "experiments in flight at once (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit the solver timing baseline as JSON and exit")
	jsonIndex := flag.Bool("json-index", false, "emit the index read-path baseline as JSON and exit")
	jsonWire := flag.Bool("json-wire", false, "emit the wire-format codec/e2e baseline as JSON and exit")
	jsonPush := flag.Bool("json-push", false, "emit the push-vs-poll delivery-latency baseline as JSON and exit")
	jsonTrace := flag.Bool("json-trace", false, "emit the tracing-overhead baseline (off/disabled/enabled) as JSON and exit")
	jsonRouting := flag.Bool("json-routing", false, "emit the subscription-routing fan-out baseline as JSON and exit (honors -scale)")
	jsonWAL := flag.Bool("json-wal", false, "emit the durability (WAL/snapshot/recovery) cost baseline as JSON and exit")
	traceDump := flag.String("trace-dump", "", "write the solver span journal to this file after the run (- for stderr); empty disables tracing")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	// Instrumentation is wired only when a flag asks for it, so the plain
	// table runs keep the solvers on their no-op fast path.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *jsonOut || *jsonIndex || *traceDump != "" {
		reg = obs.NewRegistry()
		if *traceDump != "" {
			tracer = obs.NewTracer(traceCapacity)
			reg.SetTracer(tracer) // attach before wiring: packages capture it at SetObs
		}
		core.SetObs(reg)
		stream.SetObs(reg)
		index.SetObs(reg)
	}
	dumpTrace := func() {
		if tracer == nil {
			return
		}
		if err := writeTrace(*traceDump, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: trace dump: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		if err := writeBaseline(os.Stdout, reg); err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: %v\n", err)
			os.Exit(1)
		}
		dumpTrace()
		return
	}
	if *jsonIndex {
		if err := writeIndexBaseline(os.Stdout, reg); err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: %v\n", err)
			os.Exit(1)
		}
		dumpTrace()
		return
	}
	if *jsonWire {
		if err := writeWireBaseline(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonPush {
		if err := writePushBaseline(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonTrace {
		if err := writeTraceBaseline(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonRouting {
		if err := writeRoutingBaseline(os.Stdout, strings.EqualFold(*scale, "smoke")); err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonWAL {
		if err := writeWALBaseline(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	sc := experiments.Full
	switch strings.ToLower(*scale) {
	case "full":
	case "smoke":
		sc = experiments.Smoke
	default:
		fmt.Fprintf(os.Stderr, "mqdp-bench: unknown scale %q (want full or smoke)\n", *scale)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "mqdp-bench: unknown experiment %q; try -list\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	md := false
	switch strings.ToLower(*format) {
	case "text":
	case "md":
		md = true
	default:
		fmt.Fprintf(os.Stderr, "mqdp-bench: unknown format %q (want text or md)\n", *format)
		os.Exit(2)
	}
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "mqdp-bench: negative -parallel %d\n", *par)
		os.Exit(2)
	}
	for r := range experiments.RunConcurrent(selected, sc, *par, md) {
		fmt.Printf("=== %s — %s\n", r.Experiment.ID, r.Experiment.Title)
		os.Stdout.Write(r.Output)
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: %s: %v\n", r.Experiment.ID, r.Err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n\n", r.Experiment.ID, r.Elapsed.Round(time.Millisecond))
	}
	dumpTrace()
}

// writeTrace dumps the span journal to path ("-" means stderr).
func writeTrace(path string, tr *obs.Tracer) error {
	if path == "-" {
		return tr.Dump(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Baseline is the machine-readable timing record emitted by -json and
// checked in as BENCH_baseline.json (regenerate with `make bench-json`).
// Timings are medians over Runs solves; Speedup maps each solver to
// serial-median / parallel-median on this machine. Counters are the obs
// work counters accumulated over every timed solve (schema 2): unlike the
// timings they are machine-independent, so they double as a cheap
// regression check on algorithmic work (posts scanned, gains recomputed,
// heap operations).
type Baseline struct {
	Schema     int                `json:"schema"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Workload   BaselineWorkload   `json:"workload"`
	Runs       int                `json:"runs"`
	Solvers    []SolverTiming     `json:"solvers"`
	Speedup    map[string]float64 `json:"speedup_parallel_vs_serial"`
	Counters   map[string]int64   `json:"counters"`
}

// BaselineWorkload records the synthetic instance the timings were taken on.
type BaselineWorkload struct {
	Labels     int     `json:"labels"`
	DurationS  float64 `json:"duration_s"`
	RatePerSec float64 `json:"rate_per_sec"`
	Overlap    float64 `json:"overlap"`
	Seed       int64   `json:"seed"`
	Lambda     float64 `json:"lambda"`
	Posts      int     `json:"posts"`
}

// SolverTiming is one (solver, mode) measurement.
type SolverTiming struct {
	Solver    string `json:"solver"`
	Mode      string `json:"mode"` // "serial" or "parallel"
	Workers   int    `json:"workers"`
	MedianNs  int64  `json:"median_ns"`
	MinNs     int64  `json:"min_ns"`
	CoverSize int    `json:"cover_size"`
}

// baselineRuns is the per-(solver, mode) sample count; medians of 9 runs are
// stable enough to track a trajectory across perf PRs.
const baselineRuns = 9

func writeBaseline(w *os.File, reg *obs.Registry) error {
	wl := BaselineWorkload{
		Labels: 8, DurationS: 3600, RatePerSec: 4, Overlap: 1.5, Seed: 42, Lambda: 60,
	}
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration:   wl.DurationS,
		RatePerSec: wl.RatePerSec,
		NumLabels:  wl.Labels,
		Overlap:    wl.Overlap,
		Seed:       wl.Seed,
	})
	in, err := core.NewInstance(posts, wl.Labels)
	if err != nil {
		return err
	}
	wl.Posts = in.Len()
	lm := core.FixedLambda(wl.Lambda)
	workers := parallel.Workers(0)
	b := Baseline{
		Schema:     2,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: workers,
		NumCPU:     runtime.NumCPU(),
		Workload:   wl,
		Runs:       baselineRuns,
		Speedup:    map[string]float64{},
	}
	type variant struct {
		solver string
		mode   string
		w      int
		run    func(w int) *core.Cover
	}
	variants := []variant{
		{"Scan", "serial", 1, func(w int) *core.Cover { return in.ScanParallel(lm, w) }},
		{"Scan", "parallel", workers, func(w int) *core.Cover { return in.ScanParallel(lm, w) }},
		{"Scan+", "serial", 1, func(w int) *core.Cover { return in.ScanPlusParallel(lm, core.OrderByID, w) }},
		{"Scan+", "parallel", workers, func(w int) *core.Cover { return in.ScanPlusParallel(lm, core.OrderByID, w) }},
		{"GreedySC", "serial", 1, func(w int) *core.Cover { return in.GreedySCParallel(lm, w) }},
		{"GreedySC", "parallel", workers, func(w int) *core.Cover { return in.GreedySCParallel(lm, w) }},
	}
	medians := map[string]map[string]int64{}
	for _, v := range variants {
		samples := make([]time.Duration, 0, baselineRuns)
		var size int
		for r := 0; r < baselineRuns; r++ {
			start := time.Now()
			c := v.run(v.w)
			samples = append(samples, time.Since(start))
			size = c.Size()
		}
		med, fastest := summarize(samples)
		b.Solvers = append(b.Solvers, SolverTiming{
			Solver: v.solver, Mode: v.mode, Workers: v.w,
			MedianNs: int64(med), MinNs: int64(fastest), CoverSize: size,
		})
		if medians[v.solver] == nil {
			medians[v.solver] = map[string]int64{}
		}
		medians[v.solver][v.mode] = int64(med)
	}
	for solver, m := range medians {
		if m["parallel"] > 0 {
			b.Speedup[solver] = float64(m["serial"]) / float64(m["parallel"])
		}
	}
	b.Counters = reg.Snapshot().Counters
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// summarize returns the median and minimum of samples.
func summarize(samples []time.Duration) (med, fastest time.Duration) {
	sorted := append([]time.Duration(nil), samples...)
	for i := 1; i < len(sorted); i++ { // insertion sort: n is tiny
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2], sorted[0]
}
