// Command mqdp-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	mqdp-bench -list
//	mqdp-bench -run fig6,fig7          # specific experiments
//	mqdp-bench -run all                # everything (default)
//	mqdp-bench -run all -scale smoke   # fast sanity pass
//
// Output is the text tables recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mqdp/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	scale := flag.String("scale", "full", "workload scale: full or smoke")
	format := flag.String("format", "text", "table format: text or md")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	sc := experiments.Full
	switch strings.ToLower(*scale) {
	case "full":
	case "smoke":
		sc = experiments.Smoke
	default:
		fmt.Fprintf(os.Stderr, "mqdp-bench: unknown scale %q (want full or smoke)\n", *scale)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "mqdp-bench: unknown experiment %q; try -list\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	var out io.Writer = os.Stdout
	switch strings.ToLower(*format) {
	case "text":
	case "md":
		out = experiments.Markdown(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "mqdp-bench: unknown format %q (want text or md)\n", *format)
		os.Exit(2)
	}
	for _, e := range selected {
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(out, sc); err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
