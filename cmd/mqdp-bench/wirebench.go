package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"mqdp/internal/server"
	"mqdp/internal/synth"
	"mqdp/internal/wire"
)

// WireBaseline is the machine-readable wire-format record emitted by
// -json-wire and checked in as BENCH_wire.json (regenerate with `make
// bench-wire`). The codec section measures pure encode/decode of one
// ingest batch per format; the e2e section drives a full httptest
// server+client ingest/poll cycle per format and asserts the emission
// streams are identical, so the binary path's speed never comes at the
// cost of the exactly-once/byte-identical contracts.
type WireBaseline struct {
	Schema             int                `json:"schema"`
	GoVersion          string             `json:"go_version"`
	NumCPU             int                `json:"num_cpu"`
	Workload           WireWorkload       `json:"workload"`
	Codec              []WireCodecStat    `json:"codec"`
	E2E                []WireE2EStat      `json:"e2e"`
	EmissionsIdentical bool               `json:"emissions_identical"`
	Ratio              map[string]float64 `json:"json_over_binary"`
}

// WireWorkload records the synthetic tweet stream the numbers were taken on.
type WireWorkload struct {
	DurationS  float64 `json:"duration_s"`
	RatePerSec float64 `json:"rate_per_sec"`
	Seed       int64   `json:"seed"`
	Posts      int     `json:"posts"`
	BatchSize  int     `json:"batch_size"`
}

// WireCodecStat is one (op, format) measurement over a single batch.
type WireCodecStat struct {
	Op           string `json:"op"`     // "encode" or "decode"
	Format       string `json:"format"` // "json", "binary", "binary_compressed"
	NsPerOp      int64  `json:"ns_per_op"`
	AllocsPerOp  int64  `json:"allocs_per_op"`
	BytesPerOp   int64  `json:"bytes_per_op"`
	EncodedBytes int    `json:"encoded_bytes"` // serialized batch size
}

// WireE2EStat is one full ingest+flush+poll cycle through an httptest
// server with the client pinned to one format.
type WireE2EStat struct {
	Format      string  `json:"format"`
	IngestNs    int64   `json:"ingest_ns"`
	PollNs      int64   `json:"poll_ns"`
	Posts       int     `json:"posts"`
	Emissions   int     `json:"emissions"`
	PostsPerSec float64 `json:"posts_per_sec"`
}

// wireBatchSize is the ingest batch the codec benchmarks serialize and
// the e2e runs send per request — the server client's natural batch shape.
const wireBatchSize = 512

func writeWireBaseline(w *os.File) error {
	wl := WireWorkload{DurationS: 600, RatePerSec: 6, Seed: 42, BatchSize: wireBatchSize}
	world := synth.NewWorld(synth.WorldConfig{Seed: wl.Seed})
	tweets := synth.TweetStream(world, synth.StreamConfig{
		Duration:   wl.DurationS,
		RatePerSec: wl.RatePerSec,
		DupRatio:   0.05,
		Seed:       wl.Seed + 1,
	})
	wl.Posts = len(tweets)
	posts := make([]server.Post, len(tweets))
	for i, tw := range tweets {
		posts[i] = server.Post{ID: tw.ID, Time: tw.Time, Text: tw.Text}
	}
	batch := posts
	if len(batch) > wireBatchSize {
		batch = batch[:wireBatchSize]
	}

	b := WireBaseline{
		Schema:    1,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workload:  wl,
		Ratio:     map[string]float64{},
	}
	b.Codec = codecStats(batch)
	for _, c := range b.Codec {
		if c.Format != "json" {
			continue
		}
		for _, d := range b.Codec {
			if d.Op == c.Op && d.Format == "binary" && d.NsPerOp > 0 {
				b.Ratio[c.Op] = float64(c.NsPerOp) / float64(d.NsPerOp)
			}
		}
	}

	var emissionStreams []string
	for _, format := range []string{"json", "binary"} {
		stat, emissions, err := wireE2E(world, posts, format)
		if err != nil {
			return fmt.Errorf("e2e %s: %w", format, err)
		}
		b.E2E = append(b.E2E, stat)
		emissionStreams = append(emissionStreams, emissions)
	}
	b.EmissionsIdentical = len(emissionStreams) == 2 && emissionStreams[0] == emissionStreams[1]
	if !b.EmissionsIdentical {
		return fmt.Errorf("binary e2e emissions differ from JSON")
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// codecStats measures serialize/deserialize of one ingest batch in each
// format via testing.Benchmark, so ns/allocs/bytes per op come from the
// standard benchmark machinery.
func codecStats(batch []server.Post) []WireCodecStat {
	sp := make([]wire.StreamPost, len(batch))
	for i, p := range batch {
		sp[i] = wire.StreamPost(p)
	}
	jsonBytes, err := json.Marshal(batch)
	if err != nil {
		panic(err)
	}
	enc := wire.GetEncoder()
	rawFrame := append([]byte(nil), enc.EncodeStreamPosts(sp, 1<<30)...)
	cmpFrame := append([]byte(nil), enc.EncodeStreamPosts(sp, 0)...)
	wire.PutEncoder(enc)

	bench := func(op, format string, encoded int, fn func(b *testing.B)) WireCodecStat {
		r := testing.Benchmark(fn)
		return WireCodecStat{
			Op: op, Format: format,
			NsPerOp:      r.NsPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			EncodedBytes: encoded,
		}
	}
	return []WireCodecStat{
		bench("encode", "json", len(jsonBytes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := json.Marshal(batch); err != nil {
					b.Fatal(err)
				}
			}
		}),
		bench("encode", "binary", len(rawFrame), func(b *testing.B) {
			e := wire.GetEncoder()
			defer wire.PutEncoder(e)
			for i := 0; i < b.N; i++ {
				_ = e.EncodeStreamPosts(sp, 1<<30)
			}
		}),
		bench("encode", "binary_compressed", len(cmpFrame), func(b *testing.B) {
			e := wire.GetEncoder()
			defer wire.PutEncoder(e)
			for i := 0; i < b.N; i++ {
				_ = e.EncodeStreamPosts(sp, 0)
			}
		}),
		bench("decode", "json", len(jsonBytes), func(b *testing.B) {
			out := make([]server.Post, 0, len(batch))
			for i := 0; i < b.N; i++ {
				out = out[:0]
				if err := json.Unmarshal(jsonBytes, &out); err != nil {
					b.Fatal(err)
				}
			}
		}),
		bench("decode", "binary", len(rawFrame), func(b *testing.B) {
			benchDecodeFrame(b, rawFrame)
		}),
		bench("decode", "binary_compressed", len(cmpFrame), func(b *testing.B) {
			benchDecodeFrame(b, cmpFrame)
		}),
	}
}

func benchDecodeFrame(b *testing.B, frame []byte) {
	d := wire.GetDecoder()
	sb := wire.GetStreamBatch()
	defer wire.PutDecoder(d)
	defer sb.Release()
	for i := 0; i < b.N; i++ {
		_, body, _, err := d.DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		if sb.Posts, err = wire.AppendStreamPosts(sb.Posts[:0], body); err != nil {
			b.Fatal(err)
		}
	}
}

// wireE2E runs one full ingest+flush+poll cycle against an httptest
// server with the client pinned to format, returning the timing stat and
// the JSON-marshaled emission streams for cross-format comparison.
func wireE2E(world *synth.World, posts []server.Post, format string) (WireE2EStat, string, error) {
	s := server.New(3, 128)
	ts := httptest.NewServer(server.Handler(s))
	defer ts.Close()
	c := server.NewClient(ts.URL)
	c.DisableBinaryWire = format == "json"

	rng := rand.New(rand.NewSource(7))
	var subIDs []int64
	for i, algo := range []string{"streamscan", "streamscan+", "instant"} {
		id, err := c.Subscribe(server.SubscriptionConfig{
			Topics:    world.MatchTopics(world.SampleLabelSet(rng, 2+i%3)),
			Lambda:    60,
			Tau:       float64(15 * i),
			Algorithm: algo,
		})
		if err != nil {
			return WireE2EStat{}, "", err
		}
		subIDs = append(subIDs, id)
	}

	start := time.Now()
	for off := 0; off < len(posts); off += wireBatchSize {
		end := off + wireBatchSize
		if end > len(posts) {
			end = len(posts)
		}
		if err := c.Ingest(posts[off:end]...); err != nil {
			return WireE2EStat{}, "", err
		}
	}
	ingestNs := time.Since(start)
	if err := c.Flush(); err != nil {
		return WireE2EStat{}, "", err
	}

	pollStart := time.Now()
	total := 0
	var all []server.Emission
	for _, id := range subIDs {
		es, err := c.Emissions(id, 0, 0)
		if err != nil {
			return WireE2EStat{}, "", err
		}
		total += len(es)
		all = append(all, es...)
	}
	pollNs := time.Since(pollStart)
	blob, err := json.Marshal(all)
	if err != nil {
		return WireE2EStat{}, "", err
	}
	return WireE2EStat{
		Format:      format,
		IngestNs:    int64(ingestNs),
		PollNs:      int64(pollNs),
		Posts:       len(posts),
		Emissions:   total,
		PostsPerSec: float64(len(posts)) / ingestNs.Seconds(),
	}, string(blob), nil
}
