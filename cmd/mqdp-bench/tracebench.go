package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"time"

	"mqdp/internal/obs"
	"mqdp/internal/server"
	"mqdp/internal/synth"
)

// TraceBaseline is the machine-readable tracing-overhead record emitted by
// -json-trace and checked in as BENCH_trace.json (regenerate with `make
// bench-trace`). The same ingest+poll workload runs against the direct
// server API in three observability modes:
//
//	off      — no registry wired at all (the pre-obs fast path)
//	disabled — registry wired, no tracer attached (the production default
//	           with tracing off: the cost is the atomic load + branch the
//	           PR 3 contract pins)
//	enabled  — tracer attached with tail-based retention (every ingest
//	           creates a root span and per-subscription children)
//
// The interesting numbers are disabled-vs-off (must be noise) and
// enabled-vs-off (the full price of span bookkeeping on the hot path).
type TraceBaseline struct {
	Schema    int                `json:"schema"`
	GoVersion string             `json:"go_version"`
	NumCPU    int                `json:"num_cpu"`
	Workload  TraceWorkload      `json:"workload"`
	Modes     []TraceModeStat    `json:"modes"`
	Overhead  map[string]float64 `json:"ingest_overhead_vs_off"`
}

// TraceWorkload records the synthetic stream the timings were taken on.
type TraceWorkload struct {
	Posts         int   `json:"posts"`
	Subscriptions int   `json:"subscriptions"`
	Seed          int64 `json:"seed"`
	Runs          int   `json:"runs"`
}

// TraceModeStat is one observability mode's measurement.
type TraceModeStat struct {
	Mode            string  `json:"mode"` // "off", "disabled" or "enabled"
	IngestNsPerPost int64   `json:"ingest_ns_per_post"`
	PollNsPerCall   int64   `json:"poll_ns_per_call"`
	Emissions       int     `json:"emissions"`
	SpansRecorded   uint64  `json:"spans_recorded,omitempty"`
	SpansSampledOut uint64  `json:"spans_sampled_out,omitempty"`
	SpansDropped    uint64  `json:"spans_dropped,omitempty"`
	SpansPerPost    float64 `json:"spans_per_post,omitempty"`
}

const (
	traceBenchPosts = 4000
	traceBenchSubs  = 4
	traceBenchSeed  = 42
	traceBenchRuns  = 5
)

func writeTraceBaseline(w *os.File) error {
	world := synth.NewWorld(synth.WorldConfig{Seed: traceBenchSeed})
	tweets := synth.TweetStream(world, synth.StreamConfig{
		Duration:   traceBenchPosts,
		RatePerSec: 1,
		DupRatio:   0,
		Seed:       traceBenchSeed + 1,
	})
	if len(tweets) > traceBenchPosts {
		tweets = tweets[:traceBenchPosts]
	}
	posts := make([]server.Post, len(tweets))
	for i, tw := range tweets {
		posts[i] = server.Post{ID: tw.ID, Time: tw.Time, Text: tw.Text}
	}

	b := TraceBaseline{
		Schema:    1,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workload: TraceWorkload{
			Posts:         len(posts),
			Subscriptions: traceBenchSubs,
			Seed:          traceBenchSeed,
			Runs:          traceBenchRuns,
		},
		Overhead: map[string]float64{},
	}
	for _, mode := range []string{"off", "disabled", "enabled"} {
		st, err := runTraceMode(mode, world, posts)
		if err != nil {
			return err
		}
		b.Modes = append(b.Modes, st)
	}
	off := float64(b.Modes[0].IngestNsPerPost)
	if off > 0 {
		for _, st := range b.Modes[1:] {
			b.Overhead[st.Mode] = float64(st.IngestNsPerPost)/off - 1
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// runTraceMode measures one observability mode: medians over traceBenchRuns
// fresh servers, each ingesting the full stream serially and then draining
// every subscription's emissions.
func runTraceMode(mode string, world *synth.World, posts []server.Post) (TraceModeStat, error) {
	st := TraceModeStat{Mode: mode}
	var ingestNs, pollNs []time.Duration
	var tracer *obs.Tracer
	for run := 0; run < traceBenchRuns; run++ {
		s := server.New(0, 0)
		s.SetParallelism(1) // serial fan-out: measure per-post cost, not scheduling
		switch mode {
		case "disabled":
			s.SetObs(obs.NewRegistry())
		case "enabled":
			reg := obs.NewRegistry()
			tracer = obs.NewTracer(traceCapacity)
			tracer.SetRetention(100*time.Millisecond, 10)
			reg.SetTracer(tracer)
			s.SetObs(reg)
		}
		rng := rand.New(rand.NewSource(traceBenchSeed))
		ids := make([]int64, traceBenchSubs)
		for i := range ids {
			topics := world.MatchTopics(world.SampleLabelSet(rng, 24))
			id, err := s.Subscribe(server.SubscriptionConfig{Topics: topics, Algorithm: "instant"})
			if err != nil {
				return st, err
			}
			ids[i] = id
		}
		ctx := context.Background()
		start := time.Now()
		for _, p := range posts {
			if err := s.IngestContext(ctx, p); err != nil {
				return st, err
			}
		}
		ingestNs = append(ingestNs, time.Since(start)/time.Duration(len(posts)))
		s.Flush()
		start = time.Now()
		polls := 0
		for _, id := range ids {
			es, err := s.Emissions(id, 0, 0)
			if err != nil {
				return st, err
			}
			polls++
			if run == 0 {
				st.Emissions += len(es)
			}
		}
		pollNs = append(pollNs, time.Since(start)/time.Duration(polls))
	}
	med, _ := summarize(ingestNs)
	st.IngestNsPerPost = int64(med)
	med, _ = summarize(pollNs)
	st.PollNsPerCall = int64(med)
	if tracer != nil {
		// Stats from the last run only: each run got a fresh tracer.
		ts := tracer.Stats()
		st.SpansRecorded = ts.Recorded
		st.SpansSampledOut = ts.SampledOut
		st.SpansDropped = ts.Dropped
		st.SpansPerPost = float64(ts.Recorded+ts.SampledOut) / float64(len(posts))
	}
	return st, nil
}
