package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mqdp/internal/match"
	"mqdp/internal/server"
	"mqdp/internal/wal"
)

// WALBaseline is the machine-readable record emitted by -json-wal and
// checked in as BENCH_wal.json (regenerate with `make bench-wal`). It
// prices the durability layer: per-post ingest cost with the WAL off and
// under each fsync policy, the cost of one full state snapshot, and
// recovery time as a function of how much WAL has to replay (with and
// without a snapshot truncating the suffix).
type WALBaseline struct {
	Schema     int              `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Posts      int              `json:"posts"`
	BatchSize  int              `json:"batch_size"`
	Subs       int              `json:"subs"`
	Runs       int              `json:"runs"`
	Ingest     []WALIngestCost  `json:"ingest"`
	SnapshotNs int64            `json:"snapshot_ns"`
	Recovery   []WALRecoveryRun `json:"recovery"`
}

// WALIngestCost is the median per-post ingest cost for one durability
// mode; "off" is the in-memory baseline the WAL rows are priced against.
type WALIngestCost struct {
	Mode         string  `json:"mode"` // off | wal-off | wal-interval | wal-batch
	NsPerPost    int64   `json:"ns_per_post"`
	OverheadVsNo float64 `json:"overhead_vs_off"`
}

// WALRecoveryRun is one restart measurement: how long EnableDurability
// took to bring a server back over a log of ReplayedPosts posts (with
// ReplayedPosts < total when a snapshot truncated the suffix).
type WALRecoveryRun struct {
	Label           string `json:"label"`
	ReplayedRecords int64  `json:"replayed_records"`
	ReplayedPosts   int64  `json:"replayed_posts"`
	SnapshotLSN     uint64 `json:"snapshot_lsn"`
	RecoveryNs      int64  `json:"recovery_ns"`
}

const (
	walBenchPosts   = 4000
	walBenchBatch   = 20
	walBenchSubs    = 4
	walBenchRuns    = 3
	walBenchKeyword = "walbench"
)

// walBenchServer builds the bench fleet: a few instant-mode profiles all
// matching the workload, so every post pays match + emit + journal.
func walBenchServer(dir string, policy wal.SyncPolicy) (*server.Server, error) {
	s := server.New(0, 0)
	s.SetParallelism(1)
	// Durability first, subscriptions after: the profiles are journaled,
	// so a recovery rebuilds the full fleet and replays posts through the
	// real per-subscription pipelines.
	if dir != "" {
		if err := s.EnableDurability(server.DurabilityConfig{Dir: dir, Fsync: policy}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < walBenchSubs; i++ {
		_, err := s.Subscribe(server.SubscriptionConfig{
			Topics: []match.Topic{{
				Name:     fmt.Sprintf("t%d", i),
				Keywords: []match.Keyword{{Text: walBenchKeyword, Weight: 1}},
			}},
			Lambda:    30,
			Algorithm: "instant",
		})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// walBenchPostsGen synthesizes the ingest stream: every post matches the
// fleet's shared keyword and carries realistic filler text.
func walBenchPostsGen(n int) []server.Post {
	posts := make([]server.Post, n)
	var sb strings.Builder
	for i := range posts {
		sb.Reset()
		fmt.Fprintf(&sb, "%s update %d ", walBenchKeyword, i)
		sb.WriteString("with a line of ordinary chatter to pad the record out to tweet length")
		posts[i] = server.Post{ID: int64(i + 1), Time: float64(i) / 4, Text: sb.String()}
	}
	return posts
}

// timeWALIngest drives the full stream through IngestBatch (the journaled
// path) in walBenchBatch-sized batches and returns the wall time.
func timeWALIngest(dir string, policy wal.SyncPolicy, posts []server.Post) (time.Duration, error) {
	s, err := walBenchServer(dir, policy)
	if err != nil {
		return 0, err
	}
	defer s.CloseDurability()
	ctx := context.Background()
	start := time.Now()
	for at := 0; at < len(posts); at += walBenchBatch {
		end := at + walBenchBatch
		if end > len(posts) {
			end = len(posts)
		}
		if _, _, err := s.IngestBatch(ctx, posts[at:end], fmt.Sprintf("wb-%d", at)); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func writeWALBaseline(w *os.File) error {
	posts := walBenchPostsGen(walBenchPosts)
	b := WALBaseline{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Posts:      walBenchPosts,
		BatchSize:  walBenchBatch,
		Subs:       walBenchSubs,
		Runs:       walBenchRuns,
	}

	modes := []struct {
		name    string
		durable bool
		policy  wal.SyncPolicy
	}{
		{"off", false, wal.SyncOff},
		{"wal-off", true, wal.SyncOff},
		{"wal-interval", true, wal.SyncInterval},
		{"wal-batch", true, wal.SyncBatch},
	}
	var baselineNs int64
	for _, m := range modes {
		samples := make([]time.Duration, 0, walBenchRuns)
		for r := 0; r < walBenchRuns; r++ {
			dir := ""
			if m.durable {
				var err error
				dir, err = os.MkdirTemp("", "mqdp-walbench-*")
				if err != nil {
					return err
				}
			}
			el, err := timeWALIngest(dir, m.policy, posts)
			if dir != "" {
				os.RemoveAll(dir)
			}
			if err != nil {
				return fmt.Errorf("wal bench %s: %w", m.name, err)
			}
			samples = append(samples, el)
		}
		med, _ := summarize(samples)
		perPost := int64(med) / int64(len(posts))
		cost := WALIngestCost{Mode: m.name, NsPerPost: perPost}
		if m.name == "off" {
			baselineNs = perPost
		} else if baselineNs > 0 {
			cost.OverheadVsNo = float64(perPost) / float64(baselineNs)
		}
		b.Ingest = append(b.Ingest, cost)
	}

	// Recovery: journal the full stream once (fsync batch), then time a
	// cold restart replaying all of it; snapshot and time a restart that
	// replays only the suffix; finally time the snapshot itself.
	dir, err := os.MkdirTemp("", "mqdp-walbench-rec-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	s, err := walBenchServer(dir, wal.SyncBatch)
	if err != nil {
		return err
	}
	ctx := context.Background()
	for at := 0; at < len(posts); at += walBenchBatch {
		end := at + walBenchBatch
		if end > len(posts) {
			end = len(posts)
		}
		if _, _, err := s.IngestBatch(ctx, posts[at:end], fmt.Sprintf("wb-%d", at)); err != nil {
			return err
		}
	}
	recoverRun := func(label string) (*server.Server, error) {
		rs := server.New(0, 0)
		rs.SetParallelism(1)
		start := time.Now()
		if err := rs.EnableDurability(server.DurabilityConfig{Dir: dir, Fsync: wal.SyncBatch}); err != nil {
			return nil, err
		}
		el := time.Since(start)
		m := rs.Metrics().Durability
		b.Recovery = append(b.Recovery, WALRecoveryRun{
			Label:           label,
			ReplayedRecords: m.ReplayedRecords,
			ReplayedPosts:   m.ReplayedPosts,
			SnapshotLSN:     m.SnapshotLSN,
			RecoveryNs:      int64(el),
		})
		return rs, nil
	}
	// Abandon s without closing: the restart sees a crash-shaped directory.
	full, err := recoverRun("full-wal-replay")
	if err != nil {
		return err
	}
	start := time.Now()
	if err := full.Snapshot(); err != nil {
		return err
	}
	b.SnapshotNs = int64(time.Since(start))
	if _, err := recoverRun("from-snapshot"); err != nil {
		return err
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
