package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"mqdp/internal/server"
	"mqdp/internal/synth"
)

// PushBaseline is the machine-readable push-vs-poll delivery record
// emitted by -json-push and checked in as BENCH_push.json (regenerate
// with `make bench-push`). One server ingests a paced synthetic tweet
// stream while two identically subscribed consumers watch it: an SSE
// push stream and an interval poller. Per emission, delivery latency is
// the wall time from the ingest call that produced it to the consumer
// observing it — so the comparison includes the full HTTP path on both
// sides, and the poller's half-interval expected wait shows up directly.
type PushBaseline struct {
	Schema    int                `json:"schema"`
	GoVersion string             `json:"go_version"`
	NumCPU    int                `json:"num_cpu"`
	Workload  PushWorkload       `json:"workload"`
	Modes     []PushModeStat     `json:"modes"`
	Speedup   map[string]float64 `json:"poll_over_push"`
}

// PushWorkload records the paced stream the latencies were taken on.
type PushWorkload struct {
	Posts          int     `json:"posts"`
	RatePerSec     float64 `json:"rate_per_sec"`
	Seed           int64   `json:"seed"`
	PollIntervalMS int64   `json:"poll_interval_ms"`
}

// PushModeStat is one consumer's delivery-latency distribution.
type PushModeStat struct {
	Mode      string  `json:"mode"` // "push" or "poll"
	Emissions int     `json:"emissions"`
	MeanMS    float64 `json:"mean_ms"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	MaxMS     float64 `json:"max_ms"`
}

const (
	pushBenchPosts    = 400
	pushBenchRate     = 400.0 // posts per second of wall time
	pushBenchSeed     = 42
	pushBenchInterval = 50 * time.Millisecond
)

func writePushBaseline(w *os.File) error {
	world := synth.NewWorld(synth.WorldConfig{Seed: pushBenchSeed})
	tweets := synth.TweetStream(world, synth.StreamConfig{
		Duration:   pushBenchPosts,
		RatePerSec: 1,
		DupRatio:   0,
		Seed:       pushBenchSeed + 1,
	})
	if len(tweets) > pushBenchPosts {
		tweets = tweets[:pushBenchPosts]
	}

	core := server.New(0, 0)
	ts := httptest.NewServer(server.Handler(core))
	defer ts.Close()
	cl := server.NewClient(ts.URL)

	rng := rand.New(rand.NewSource(pushBenchSeed))
	topics := world.MatchTopics(world.SampleLabelSet(rng, 24))
	pushID, err := cl.Subscribe(server.SubscriptionConfig{Topics: topics, Algorithm: "instant"})
	if err != nil {
		return err
	}
	pollID, err := cl.Subscribe(server.SubscriptionConfig{Topics: topics, Algorithm: "instant"})
	if err != nil {
		return err
	}

	// sentAt records, per post id, when its ingest call started. Both
	// subscriptions see the same posts, so one table serves both
	// consumers; the mutex covers the pacer writing against them reading.
	var sentMu sync.Mutex
	sentAt := make(map[int64]time.Time, len(tweets))
	since := func(postID int64) (time.Duration, bool) {
		sentMu.Lock()
		t0, ok := sentAt[postID]
		sentMu.Unlock()
		if !ok {
			return 0, false
		}
		return time.Since(t0), true
	}
	var pushLat, pollLat []time.Duration

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pushDone := make(chan error, 1)
	go func() {
		pushDone <- cl.Stream(ctx, pushID, 0, func(ev server.StreamEvent) error {
			if ev.Emission != nil {
				if d, ok := since(ev.Emission.PostID); ok {
					pushLat = append(pushLat, d)
				}
			}
			return nil
		})
	}()
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		after := int64(0)
		tick := time.NewTicker(pushBenchInterval)
		defer tick.Stop()
		for {
			es, err := cl.Emissions(pollID, after, 0)
			if err == nil {
				for _, e := range es {
					if d, ok := since(e.PostID); ok {
						pollLat = append(pollLat, d)
					}
					after = e.Seq
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}()

	// Pace the feed at the target wall-clock rate. sentAt is written only
	// before the ingest that publishes the post, so the consumer goroutines
	// always read a settled entry.
	interval := time.Duration(float64(time.Second) / pushBenchRate)
	for _, tw := range tweets {
		sentMu.Lock()
		sentAt[tw.ID] = time.Now()
		sentMu.Unlock()
		if err := cl.Ingest(server.Post{ID: tw.ID, Time: tw.Time, Text: tw.Text}); err != nil {
			return err
		}
		time.Sleep(interval)
	}
	// Let the pollers take their final lap before stopping the consumers.
	time.Sleep(2 * pushBenchInterval)
	cancel()
	<-pushDone
	<-pollDone
	core.Flush()

	b := PushBaseline{
		Schema:    1,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workload: PushWorkload{
			Posts:          len(tweets),
			RatePerSec:     pushBenchRate,
			Seed:           pushBenchSeed,
			PollIntervalMS: pushBenchInterval.Milliseconds(),
		},
		Modes: []PushModeStat{
			latencyStat("push", pushLat),
			latencyStat("poll", pollLat),
		},
		Speedup: map[string]float64{},
	}
	if len(pushLat) > 0 && len(pollLat) > 0 {
		b.Speedup["mean"] = ratio(b.Modes[1].MeanMS, b.Modes[0].MeanMS)
		b.Speedup["p95"] = ratio(b.Modes[1].P95MS, b.Modes[0].P95MS)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

func latencyStat(mode string, lat []time.Duration) PushModeStat {
	st := PushModeStat{Mode: mode, Emissions: len(lat)}
	if len(lat) == 0 {
		return st
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	st.MeanMS = ms(sum / time.Duration(len(lat)))
	st.P50MS = ms(lat[len(lat)/2])
	st.P95MS = ms(lat[len(lat)*95/100])
	st.MaxMS = ms(lat[len(lat)-1])
	return st
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
