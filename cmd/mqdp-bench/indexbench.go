package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"mqdp/internal/index"
	"mqdp/internal/obs"
)

// IndexBaseline is the machine-readable index read-path record emitted by
// -json-index and checked in as BENCH_index.json (regenerate with
// `make bench-index`). Every optimized path is measured against its naive
// linear-scan reference in the same run, so the speedups are in-run ratios
// on identical data, not cross-machine comparisons. Counters are the obs
// work counters accumulated over the timed queries: machine-independent,
// they double as a regression check that the skip paths actually skip.
type IndexBaseline struct {
	Schema     int                `json:"schema"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Workload   IndexWorkload      `json:"workload"`
	Cases      []IndexCase        `json:"cases"`
	Speedup    map[string]float64 `json:"speedup_vs_scan"`
	Counters   map[string]int64   `json:"counters"`
}

// IndexWorkload records the synthetic corpus the measurements were taken on.
type IndexWorkload struct {
	Docs        int     `json:"docs"`
	SegmentSize int     `json:"segment_size"`
	Terms       int     `json:"terms"`
	WindowFrac  float64 `json:"window_frac"` // narrow-window width as a fraction of the corpus span
}

// IndexCase is one (operation, variant) measurement. Variant "opt" is the
// shipping path (skip/gallop/top-k); "scan" is the naive reference.
type IndexCase struct {
	Op          string `json:"op"`
	Variant     string `json:"variant"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	Hits        int    `json:"hits"`
	Parallelism int    `json:"parallelism,omitempty"`
}

const (
	indexBenchDocs    = 200_000
	indexBenchSegSize = 4096
	indexWindowFrac   = 0.005
)

// buildIndexWorkload mirrors the corpus of the package's Benchmark* tests:
// one dense term, a mid-frequency band and one rare term, appended in time
// order so the index seals indexBenchDocs/indexBenchSegSize segments.
func buildIndexWorkload() *index.Index {
	rng := rand.New(rand.NewSource(1))
	ix := index.NewWithSegmentSize(indexBenchSegSize)
	for i := 0; i < indexBenchDocs; i++ {
		text := fmt.Sprintf("obama w%d w%d", i%17, rng.Intn(50))
		if i%97 == 0 {
			text += " rare"
		}
		if err := ix.Add(index.Doc{ID: int64(i), Time: float64(i), Text: text}); err != nil {
			panic(err)
		}
	}
	return ix
}

func writeIndexBaseline(w *os.File, reg *obs.Registry) error {
	ix := buildIndexWorkload()
	lo := float64(indexBenchDocs) * 0.75
	hi := lo + float64(indexBenchDocs)*indexWindowFrac
	span := float64(indexBenchDocs)
	andTerms := []string{"obama", "rare"}

	b := IndexBaseline{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workload: IndexWorkload{
			Docs:        indexBenchDocs,
			SegmentSize: indexBenchSegSize,
			Terms:       ix.Terms(),
			WindowFrac:  indexWindowFrac,
		},
		Speedup: map[string]float64{},
	}

	measure := func(op, variant string, fn func() int) IndexCase {
		var hits int
		r := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				hits = fn()
			}
		})
		return IndexCase{
			Op: op, Variant: variant,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Hits:        hits,
		}
	}

	type pair struct {
		op        string
		opt, scan func() int
	}
	pairs := []pair{
		{"term_query_narrow_window",
			func() int { return len(ix.TermQuery("obama", lo, hi)) },
			func() int { return len(ix.TermQueryScan("obama", lo, hi)) }},
		{"all_query_dense_and_rare",
			func() int { return len(ix.AllQuery(andTerms, 0, span)) },
			func() int { return len(ix.AllQueryScan(andTerms, 0, span)) }},
		{"search_top10_narrow_window",
			func() int { return len(ix.Search("obama w3 rare", 10, lo, hi)) },
			func() int { return len(ix.SearchScan("obama w3 rare", 10, lo, hi)) }},
	}
	for _, p := range pairs {
		opt := measure(p.op, "opt", p.opt)
		scan := measure(p.op, "scan", p.scan)
		if opt.Hits != scan.Hits {
			return fmt.Errorf("index bench %s: opt returned %d hits, scan %d", p.op, opt.Hits, scan.Hits)
		}
		b.Cases = append(b.Cases, opt, scan)
		if opt.NsPerOp > 0 {
			b.Speedup[p.op] = float64(scan.NsPerOp) / float64(opt.NsPerOp)
		}
	}

	// Concurrent readers against a hot writer: per-query latency with every
	// CPU querying while one goroutine appends. No scan counterpart — the
	// point is that the lock-free read path does not degrade under writes.
	conc := func() IndexCase {
		var hits int
		r := testing.Benchmark(func(tb *testing.B) {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				t := span
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					t++
					_ = ix.Add(index.Doc{ID: int64(indexBenchDocs + i), Time: t, Text: "obama fresh w3"})
				}
			}()
			tb.ReportAllocs()
			tb.ResetTimer()
			tb.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					hits = len(ix.TermQuery("obama", lo, hi))
				}
			})
			tb.StopTimer()
			close(stop)
			wg.Wait()
		})
		return IndexCase{
			Op: "term_query_concurrent_writer", Variant: "opt",
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Hits:        hits,
			Parallelism: runtime.GOMAXPROCS(0),
		}
	}()
	b.Cases = append(b.Cases, conc)

	b.Counters = reg.Snapshot().Counters
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
