package main

import (
	"bytes"
	"strings"
	"testing"

	"mqdp/internal/core"
	"mqdp/internal/wire"
)

const sampleInput = `{"id":1,"value":0,"labels":["a"]}
{"id":2,"value":1,"labels":["a"]}
{"id":3,"value":2,"labels":["a","c"]}
{"id":4,"value":3,"labels":["c"]}
`

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"scan", "scan+", "greedysc", "opt", "exhaustive"} {
		var out, errw bytes.Buffer
		if err := run(strings.NewReader(sampleInput), &out, &errw, 1, algo, false, false, 1, false); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		lines := strings.Count(out.String(), "\n")
		if lines < 2 || lines > 3 {
			t.Errorf("%s selected %d posts, want 2..3\n%s", algo, lines, out.String())
		}
		if !strings.Contains(errw.String(), "selected") {
			t.Errorf("%s: missing summary: %q", algo, errw.String())
		}
	}
}

func TestRunProportional(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(strings.NewReader(sampleInput), &out, &errw, 1, "scan", true, false, 1, false); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("no output")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(strings.NewReader(sampleInput), &out, &errw, 1, "bogus", false, false, 1, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(strings.NewReader("{broken"), &out, &errw, 1, "scan", false, false, 1, false); err == nil {
		t.Error("broken input accepted")
	}
	if err := run(strings.NewReader(sampleInput), &out, &errw, -5, "scan", false, false, 1, false); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestParseAlgo(t *testing.T) {
	for name, want := range map[string]string{
		"scan": "Scan", "SCAN": "Scan", "scanplus": "Scan+", "greedy": "GreedySC",
	} {
		algo, err := parseAlgo(name)
		if err != nil {
			t.Fatalf("parseAlgo(%q): %v", name, err)
		}
		if algo.String() != want {
			t.Errorf("parseAlgo(%q) = %s, want %s", name, algo, want)
		}
	}
	if _, err := parseAlgo("nope"); err == nil {
		t.Error("parseAlgo accepted garbage")
	}
}

// TestRunBinaryRoundTrip drives run with binary input and output: the
// cover must match the JSONL run post-for-post.
func TestRunBinaryRoundTrip(t *testing.T) {
	var dict core.Dictionary
	posts, err := wire.ReadPosts(strings.NewReader(sampleInput), &dict)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	bw := wire.NewBinaryWriter(&bin, &dict)
	if err := bw.WriteBatch(posts); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	var jsonOut, binOut, errw bytes.Buffer
	if err := run(strings.NewReader(sampleInput), &jsonOut, &errw, 1, "scan", false, false, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(bytes.NewReader(bin.Bytes()), &binOut, &errw, 1, "scan", false, false, 1, true); err != nil {
		t.Fatal(err)
	}
	var jdict, bdict core.Dictionary
	want, err := wire.ReadPostsAuto(bytes.NewReader(jsonOut.Bytes()), &jdict)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.ReadPostsAuto(bytes.NewReader(binOut.Bytes()), &bdict)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("binary cover has %d posts, JSONL has %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Value != want[i].Value {
			t.Errorf("post %d: binary %+v, JSONL %+v", i, got[i], want[i])
		}
	}
}

func TestRunStatsFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(strings.NewReader(sampleInput), &out, &errw, 1, "greedysc", false, true, 1, false); err != nil {
		t.Fatal(err)
	}
	report := errw.String()
	for _, want := range []string{"compression", "representatives", "max gap"} {
		if !strings.Contains(report, want) {
			t.Errorf("stats output missing %q:\n%s", want, report)
		}
	}
}
