package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleInput = `{"id":1,"value":0,"labels":["a"]}
{"id":2,"value":1,"labels":["a"]}
{"id":3,"value":2,"labels":["a","c"]}
{"id":4,"value":3,"labels":["c"]}
`

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"scan", "scan+", "greedysc", "opt", "exhaustive"} {
		var out, errw bytes.Buffer
		if err := run(strings.NewReader(sampleInput), &out, &errw, 1, algo, false, false, 1); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		lines := strings.Count(out.String(), "\n")
		if lines < 2 || lines > 3 {
			t.Errorf("%s selected %d posts, want 2..3\n%s", algo, lines, out.String())
		}
		if !strings.Contains(errw.String(), "selected") {
			t.Errorf("%s: missing summary: %q", algo, errw.String())
		}
	}
}

func TestRunProportional(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(strings.NewReader(sampleInput), &out, &errw, 1, "scan", true, false, 1); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("no output")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(strings.NewReader(sampleInput), &out, &errw, 1, "bogus", false, false, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(strings.NewReader("{broken"), &out, &errw, 1, "scan", false, false, 1); err == nil {
		t.Error("broken input accepted")
	}
	if err := run(strings.NewReader(sampleInput), &out, &errw, -5, "scan", false, false, 1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestParseAlgo(t *testing.T) {
	for name, want := range map[string]string{
		"scan": "Scan", "SCAN": "Scan", "scanplus": "Scan+", "greedy": "GreedySC",
	} {
		algo, err := parseAlgo(name)
		if err != nil {
			t.Fatalf("parseAlgo(%q): %v", name, err)
		}
		if algo.String() != want {
			t.Errorf("parseAlgo(%q) = %s, want %s", name, algo, want)
		}
	}
	if _, err := parseAlgo("nope"); err == nil {
		t.Error("parseAlgo accepted garbage")
	}
}

func TestRunStatsFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(strings.NewReader(sampleInput), &out, &errw, 1, "greedysc", false, true, 1); err != nil {
		t.Fatal(err)
	}
	report := errw.String()
	for _, want := range []string{"compression", "representatives", "max gap"} {
		if !strings.Contains(report, want) {
			t.Errorf("stats output missing %q:\n%s", want, report)
		}
	}
}
