// Command mqdp diversifies a post collection (the offline MQDP, Problem 1).
//
// Input is JSON lines on stdin or -input, one post per line:
//
//	{"id": 17, "value": 1370000000, "labels": ["obama", "economy"]}
//
// where value is the post's coordinate on the diversity dimension (e.g. a
// unix timestamp or a sentiment score). Binary .mqdw files (mqdp-datagen
// -o posts.mqdw) are detected automatically by their magic bytes. The
// selected representative posts are printed back in the input's spirit —
// JSON lines by default, or the binary frame format when -output ends in
// .mqdw; a summary goes to stderr.
//
//	mqdp -lambda 3600 -algo greedysc < posts.jsonl > cover.jsonl
//	mqdp -lambda 3600 -input posts.mqdw -output cover.mqdw
//	mqdp-datagen -kind posts | mqdp -lambda 60 -algo scan+
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mqdp"
	"mqdp/internal/core"
	"mqdp/internal/wire"
)

func main() {
	input := flag.String("input", "-", "input file of JSONL or binary .mqdw posts, or - for stdin")
	output := flag.String("output", "-", "output file for the cover (.mqdw selects the binary format), or - for stdout")
	lambda := flag.Float64("lambda", 60, "coverage threshold λ on the diversity dimension")
	algo := flag.String("algo", "scan", "algorithm: scan, scan+, greedysc, opt, exhaustive")
	proportional := flag.Bool("proportional", false, "use §6 density-adaptive thresholds (λ is λ0)")
	stats := flag.Bool("stats", false, "print cover analytics to stderr")
	parallelism := flag.Int("parallelism", 1, "solver worker goroutines (0 = GOMAXPROCS, 1 = serial); the cover is identical either way")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqdp: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	out := io.Writer(os.Stdout)
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqdp: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	binaryOut := strings.HasSuffix(*output, ".mqdw")
	if err := run(r, out, os.Stderr, *lambda, *algo, *proportional, *stats, *parallelism, binaryOut); err != nil {
		fmt.Fprintf(os.Stderr, "mqdp: %v\n", err)
		os.Exit(1)
	}
}

// run reads posts from r (JSONL or binary, sniffed), solves, and writes
// the cover to out and a summary line to errw.
func run(r io.Reader, out, errw io.Writer, lambda float64, algoName string, proportional, withStats bool, parallelism int, binaryOut bool) error {
	var dict core.Dictionary
	posts, err := wire.ReadPostsAuto(r, &dict)
	if err != nil {
		return err
	}
	inst, err := mqdp.NewInstance(posts, dict.Len())
	if err != nil {
		return err
	}
	algo, err := parseAlgo(algoName)
	if err != nil {
		return err
	}
	cover, err := mqdp.Solve(inst, mqdp.Options{
		Lambda:       lambda,
		Algorithm:    algo,
		Proportional: proportional,
		Parallelism:  parallelism,
	})
	if err != nil {
		return err
	}
	if binaryOut {
		bw := wire.NewBinaryWriter(out, &dict)
		for _, i := range cover.Selected {
			if err := bw.Write(inst.Post(i)); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	} else {
		w := wire.NewWriter(out, &dict)
		for _, i := range cover.Selected {
			if err := w.Write(inst.Post(i)); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(errw, "mqdp: %s selected %d of %d posts (λ=%v, %d labels) in %v\n",
		cover.Algorithm, cover.Size(), inst.Len(), lambda, dict.Len(), cover.Elapsed.Round(1000))
	if withStats && !proportional {
		st, err := inst.Stats(core.FixedLambda(lambda), cover.Selected)
		if err != nil {
			return err
		}
		fmt.Fprintf(errw, "mqdp: compression %.3f, mean coverers/pair %.2f, max pair distance %.3g\n",
			st.CompressionRatio, st.MeanCoverers, st.MaxPairDistance)
		for _, ls := range st.PerLabel {
			fmt.Fprintf(errw, "mqdp:   %-20s %5d posts → %4d representatives (max gap %.3g)\n",
				dict.Name(ls.Label), ls.Posts, ls.Representatives, ls.MaxGap)
		}
	}
	return nil
}

func parseAlgo(name string) (mqdp.Algorithm, error) {
	switch strings.ToLower(name) {
	case "scan":
		return mqdp.Scan, nil
	case "scan+", "scanplus":
		return mqdp.ScanPlus, nil
	case "greedysc", "greedy":
		return mqdp.GreedySC, nil
	case "opt":
		return mqdp.OPT, nil
	case "exhaustive":
		return mqdp.Exhaustive, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}
