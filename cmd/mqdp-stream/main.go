// Command mqdp-stream diversifies a post stream (StreamMQDP, Problem 2):
// it reads posts in timestamp order — JSON lines or a binary .mqdw frame
// stream, detected by the magic bytes — and prints each emission as soon
// as its decision deadline elapses in event time.
//
//	mqdp-datagen -kind posts -duration 600 | mqdp-stream -lambda 30 -tau 10 -algo streamscan+
//	mqdp-datagen -kind posts -o posts.mqdw && mqdp-stream -input posts.mqdw -lambda 30
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mqdp"
	"mqdp/internal/core"
	"mqdp/internal/wire"
)

// wireEmission extends the post schema with the decision metadata.
type wireEmission struct {
	ID     int64    `json:"id"`
	Value  float64  `json:"value"`
	Labels []string `json:"labels"`
	EmitAt float64  `json:"emit_at"`
	Delay  float64  `json:"delay"`
}

func main() {
	input := flag.String("input", "-", "input file of JSONL or binary .mqdw posts in time order, or - for stdin")
	lambda := flag.Float64("lambda", 60, "coverage threshold λ")
	tau := flag.Float64("tau", 30, "maximum reporting delay τ")
	algo := flag.String("algo", "streamscan", "algorithm: streamscan, streamscan+, streamgreedy, streamgreedy+, instant")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-stream: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	if err := run(r, os.Stdout, os.Stderr, *lambda, *tau, *algo); err != nil {
		fmt.Fprintf(os.Stderr, "mqdp-stream: %v\n", err)
		os.Exit(1)
	}
}

// run replays JSONL posts from r through the chosen processor, writing
// emissions to out and a summary to errw.
func run(r io.Reader, out, errw io.Writer, lambda, tau float64, algoName string) error {
	var a mqdp.StreamAlgorithm
	switch strings.ToLower(algoName) {
	case "streamscan":
		a = mqdp.StreamScan
	case "streamscan+", "streamscanplus":
		a = mqdp.StreamScanPlus
	case "streamgreedy", "streamgreedysc":
		a = mqdp.StreamGreedy
	case "streamgreedy+", "streamgreedysc+":
		a = mqdp.StreamGreedyPlus
	case "instant":
		a = mqdp.Instant
	default:
		return fmt.Errorf("unknown streaming algorithm %q", algoName)
	}

	// The processor wants dense label ids, but the stream arrives with
	// names and must be processed online: intern lazily and size the
	// processor generously up front.
	const maxLabels = 4096
	var dict core.Dictionary
	proc, err := mqdp.NewStream(a, maxLabels, lambda, tau)
	if err != nil {
		return err
	}

	w := bufio.NewWriter(out)
	defer w.Flush()
	enc := json.NewEncoder(w)
	emit := func(es []mqdp.Emission) error {
		for _, e := range es {
			names := make([]string, len(e.Post.Labels))
			for i, l := range e.Post.Labels {
				names[i] = dict.Name(l)
			}
			if err := enc.Encode(wireEmission{
				ID: e.Post.ID, Value: e.Post.Value, Labels: names,
				EmitAt: e.EmitAt, Delay: e.EmitAt - e.Post.Value,
			}); err != nil {
				return err
			}
		}
		return nil
	}

	seen, emitted := 0, 0
	process := func(p mqdp.Post, at string) error {
		es, err := proc.Process(p)
		if err != nil {
			return fmt.Errorf("%s: %w", at, err)
		}
		seen++
		emitted += len(es)
		return emit(es)
	}

	br := bufio.NewReaderSize(r, 64*1024)
	if wire.SniffBinary(br) {
		// Binary frames carry dense interned labels already sorted and
		// deduplicated, so batches feed the processor directly.
		rd := wire.NewBinaryReader(br, &dict)
		batchNo := 0
		for {
			batch, err := rd.ReadBatch()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("frame %d: %w", batchNo+1, err)
			}
			batchNo++
			for _, p := range batch {
				if n := len(p.Labels); n > 0 && int(p.Labels[n-1]) >= maxLabels {
					return fmt.Errorf("frame %d: more than %d distinct labels", batchNo, maxLabels)
				}
				if err := process(p, fmt.Sprintf("frame %d", batchNo)); err != nil {
					return err
				}
			}
		}
	} else if err := runJSONL(br, &dict, maxLabels, process); err != nil {
		return err
	}
	es := proc.Flush()
	emitted += len(es)
	if err := emit(es); err != nil {
		return err
	}
	fmt.Fprintf(errw, "mqdp-stream: %s emitted %d of %d posts (λ=%v, τ=%v)\n",
		proc.Name(), emitted, seen, lambda, tau)
	return nil
}

// runJSONL replays a JSONL post stream through process, interning label
// names into dict online.
func runJSONL(r io.Reader, dict *core.Dictionary, maxLabels int, process func(mqdp.Post, string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var wp wire.Post
		if err := json.Unmarshal([]byte(line), &wp); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		labels := make([]mqdp.Label, len(wp.Labels))
		for i, name := range wp.Labels {
			labels[i] = dict.Intern(name)
			if int(labels[i]) >= maxLabels {
				return fmt.Errorf("line %d: more than %d distinct labels", lineNo, maxLabels)
			}
		}
		// Processors expect sorted, deduplicated label sets.
		sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
		labels = dedupLabels(labels)
		post := mqdp.Post{ID: wp.ID, Value: wp.Value, Labels: labels}
		if err := process(post, fmt.Sprintf("line %d", lineNo)); err != nil {
			return err
		}
	}
	return sc.Err()
}

// dedupLabels removes adjacent duplicates from a sorted label slice.
func dedupLabels(labels []mqdp.Label) []mqdp.Label {
	out := labels[:0]
	for i, a := range labels {
		if i == 0 || labels[i-1] != a {
			out = append(out, a)
		}
	}
	return out
}
