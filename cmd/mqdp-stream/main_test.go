package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mqdp/internal/core"
	"mqdp/internal/wire"
)

const streamInput = `{"id":1,"value":0,"labels":["a"]}
{"id":2,"value":1,"labels":["a"]}
{"id":3,"value":2,"labels":["a","c"]}
{"id":4,"value":3,"labels":["c"]}
`

func TestRunAllProcessors(t *testing.T) {
	for _, algo := range []string{"streamscan", "streamscan+", "streamgreedy", "streamgreedy+", "instant"} {
		var out, errw bytes.Buffer
		if err := run(strings.NewReader(streamInput), &out, &errw, 1, 1, algo); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var total int
		for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
			if line == "" {
				continue
			}
			var e wireEmission
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				t.Fatalf("%s: bad emission line %q: %v", algo, line, err)
			}
			if e.Delay < 0 || e.Delay > 1+1e-9 {
				t.Errorf("%s: delay %v outside τ", algo, e.Delay)
			}
			if len(e.Labels) == 0 {
				t.Errorf("%s: emission without labels", algo)
			}
			total++
		}
		if total == 0 {
			t.Errorf("%s emitted nothing", algo)
		}
		if !strings.Contains(errw.String(), "emitted") {
			t.Errorf("%s: missing summary %q", algo, errw.String())
		}
	}
}

// TestRunBinaryInput replays the same stream as binary frames: the
// emission sequence must be byte-identical to the JSONL replay.
func TestRunBinaryInput(t *testing.T) {
	var dict core.Dictionary
	posts, err := wire.ReadPosts(strings.NewReader(streamInput), &dict)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	bw := wire.NewBinaryWriter(&bin, &dict)
	bw.BatchSize = 2 // force multiple frames with dictionary deltas
	if err := bw.WriteBatch(posts); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var jsonOut, binOut, errw bytes.Buffer
	if err := run(strings.NewReader(streamInput), &jsonOut, &errw, 1, 1, "streamscan"); err != nil {
		t.Fatal(err)
	}
	if err := run(bytes.NewReader(bin.Bytes()), &binOut, &errw, 1, 1, "streamscan"); err != nil {
		t.Fatal(err)
	}
	if jsonOut.String() != binOut.String() {
		t.Errorf("binary emissions differ from JSONL:\nJSONL: %s\nbinary: %s", jsonOut.String(), binOut.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(strings.NewReader(streamInput), &out, &errw, 1, 1, "bogus"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(strings.NewReader("{oops"), &out, &errw, 1, 1, "streamscan"); err == nil {
		t.Error("broken json accepted")
	}
	outOfOrder := `{"id":1,"value":10,"labels":["a"]}
{"id":2,"value":5,"labels":["a"]}
`
	if err := run(strings.NewReader(outOfOrder), &out, &errw, 1, 1, "streamscan"); err == nil {
		t.Error("out-of-order stream accepted")
	}
}

func TestDedupLabels(t *testing.T) {
	got := dedupLabels([]int32{1, 1, 2, 3, 3, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("dedupLabels = %v", got)
	}
}
