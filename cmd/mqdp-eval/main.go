// Command mqdp-eval benchmarks every algorithm on a user-supplied dataset:
// it reads JSONL posts, runs the offline solvers (and optionally OPT) plus
// the streaming processors, and prints solution sizes, per-post times and —
// when OPT is feasible — relative errors, in the style of the paper's §7.
//
//	mqdp-datagen -kind posts -duration 600 -labels 2 | mqdp-eval -lambda 30 -tau 10 -opt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mqdp"
	"mqdp/internal/core"
	"mqdp/internal/wire"
)

func main() {
	input := flag.String("input", "-", "input file of JSONL or binary .mqdw posts, or - for stdin")
	lambda := flag.Float64("lambda", 60, "coverage threshold λ")
	tau := flag.Float64("tau", 30, "streaming decision delay τ")
	withOPT := flag.Bool("opt", false, "also run the exact DP (small instances only)")
	par := flag.Int("parallel", 1, "offline solver worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-eval: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	if err := run(r, os.Stdout, *lambda, *tau, *withOPT, *par); err != nil {
		fmt.Fprintf(os.Stderr, "mqdp-eval: %v\n", err)
		os.Exit(1)
	}
}

// run evaluates all algorithms on the dataset from r, reporting to w.
// parallelism feeds Options.Parallelism for the offline solvers (covers are
// identical to serial; only the timing column reacts).
func run(r io.Reader, w io.Writer, lambda, tau float64, withOPT bool, parallelism int) error {
	var dict core.Dictionary
	posts, err := wire.ReadPostsAuto(r, &dict)
	if err != nil {
		return err
	}
	inst, err := mqdp.NewInstance(posts, dict.Len())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset: %d posts, %d labels, overlap %.2f, λ=%v τ=%v\n\n",
		inst.Len(), dict.Len(), inst.OverlapRate(), lambda, tau)

	optSize := -1
	if withOPT {
		cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: lambda, Algorithm: mqdp.OPT})
		if err != nil {
			fmt.Fprintf(w, "OPT: skipped (%v)\n\n", err)
		} else {
			optSize = cover.Size()
			fmt.Fprintf(w, "OPT: %d posts in %v\n\n", optSize, cover.Elapsed.Round(time.Microsecond))
		}
	}

	fmt.Fprintln(w, "offline:")
	fmt.Fprintf(w, "  %-16s %8s %14s %10s\n", "algorithm", "size", "ns/post", "rel.err")
	for _, algo := range []mqdp.Algorithm{mqdp.Thinning, mqdp.Scan, mqdp.ScanPlus, mqdp.GreedySC} {
		cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: lambda, Algorithm: algo, Parallelism: parallelism})
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		relErr := "-"
		if optSize > 0 {
			relErr = fmt.Sprintf("%.3f", float64(cover.Size()-optSize)/float64(optSize))
		}
		fmt.Fprintf(w, "  %-16s %8d %14.1f %10s\n",
			cover.Algorithm, cover.Size(), perPost(cover.Elapsed, inst.Len()), relErr)
	}

	fmt.Fprintln(w, "\nstreaming:")
	fmt.Fprintf(w, "  %-16s %8s %14s %10s %10s\n", "algorithm", "size", "ns/post", "rel.err", "max delay")
	for _, algo := range []mqdp.StreamAlgorithm{
		mqdp.StreamScan, mqdp.StreamScanPlus, mqdp.StreamGreedy, mqdp.StreamGreedyPlus, mqdp.Instant,
	} {
		proc, err := mqdp.NewStream(algo, dict.Len(), lambda, tau)
		if err != nil {
			return err
		}
		start := time.Now()
		es, err := mqdp.RunStream(inst.Posts(), proc)
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		elapsed := time.Since(start)
		sum := mqdp.SummarizeStream(es)
		relErr := "-"
		if optSize > 0 {
			relErr = fmt.Sprintf("%.3f", float64(sum.Count-optSize)/float64(optSize))
		}
		fmt.Fprintf(w, "  %-16s %8d %14.1f %10s %9.1fs\n",
			proc.Name(), sum.Count, perPost(elapsed, inst.Len()), relErr, sum.MaxDelay)
	}
	return nil
}

func perPost(d time.Duration, posts int) float64 {
	if posts == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(posts)
}
