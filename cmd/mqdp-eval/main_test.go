package main

import (
	"bytes"
	"strings"
	"testing"
)

const evalInput = `{"id":1,"value":0,"labels":["a"]}
{"id":2,"value":1,"labels":["a"]}
{"id":3,"value":2,"labels":["a","c"]}
{"id":4,"value":3,"labels":["c"]}
{"id":5,"value":20,"labels":["a"]}
`

func TestRunReportsAllAlgorithms(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(evalInput), &out, 1, 2, true, 1); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"OPT:", "BucketThinning", "Scan", "Scan+", "GreedySC",
		"StreamScan", "StreamGreedySC+", "Instant", "rel.err", "max delay",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// With -opt the relative errors must be numeric, not "-".
	if strings.Count(report, " -\n") == strings.Count(report, "\n") {
		t.Errorf("no relative errors computed:\n%s", report)
	}
}

func TestRunWithoutOPT(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(evalInput), &out, 1, 2, false, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "OPT:") {
		t.Errorf("OPT ran without -opt:\n%s", out.String())
	}
}

// TestRunParallelReportsSameSizes locks the -parallel flag to the
// determinism contract: solution sizes must match the serial run exactly
// (timing columns are the only thing allowed to differ).
func TestRunParallelReportsSameSizes(t *testing.T) {
	sizes := func(report string) []string {
		var out []string
		for _, line := range strings.Split(report, "\n") {
			f := strings.Fields(line)
			if len(f) >= 3 && (strings.HasPrefix(line, "  Scan") ||
				strings.HasPrefix(line, "  GreedySC") || strings.HasPrefix(line, "  BucketThinning")) {
				out = append(out, f[0]+"="+f[1])
			}
		}
		return out
	}
	var serial, par bytes.Buffer
	if err := run(strings.NewReader(evalInput), &serial, 1, 2, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(evalInput), &par, 1, 2, false, 4); err != nil {
		t.Fatal(err)
	}
	s, p := sizes(serial.String()), sizes(par.String())
	if len(s) == 0 || len(s) != len(p) {
		t.Fatalf("size rows: serial %v, parallel %v", s, p)
	}
	for i := range s {
		if s[i] != p[i] {
			t.Errorf("row %d: serial %s, parallel %s", i, s[i], p[i])
		}
	}
}

func TestRunBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("{nope"), &out, 1, 1, false, 1); err == nil {
		t.Error("broken input accepted")
	}
}
