package main

import (
	"bytes"
	"strings"
	"testing"
)

const evalInput = `{"id":1,"value":0,"labels":["a"]}
{"id":2,"value":1,"labels":["a"]}
{"id":3,"value":2,"labels":["a","c"]}
{"id":4,"value":3,"labels":["c"]}
{"id":5,"value":20,"labels":["a"]}
`

func TestRunReportsAllAlgorithms(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(evalInput), &out, 1, 2, true); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"OPT:", "BucketThinning", "Scan", "Scan+", "GreedySC",
		"StreamScan", "StreamGreedySC+", "Instant", "rel.err", "max delay",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// With -opt the relative errors must be numeric, not "-".
	if strings.Count(report, " -\n") == strings.Count(report, "\n") {
		t.Errorf("no relative errors computed:\n%s", report)
	}
}

func TestRunWithoutOPT(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(evalInput), &out, 1, 2, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "OPT:") {
		t.Errorf("OPT ran without -opt:\n%s", out.String())
	}
}

func TestRunBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("{nope"), &out, 1, 1, false); err == nil {
		t.Error("broken input accepted")
	}
}
