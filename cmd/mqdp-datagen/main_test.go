package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mqdp/internal/core"
	"mqdp/internal/wire"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestGenPosts(t *testing.T) {
	var buf bytes.Buffer
	if err := genPosts(&buf, false, 120, 1, 3, 1.5, false, 1); err != nil {
		t.Fatal(err)
	}
	rows := decodeLines(t, &buf)
	if len(rows) < 60 {
		t.Fatalf("rows = %d, want ≈120", len(rows))
	}
	prev := -1.0
	for _, r := range rows {
		v := r["value"].(float64)
		if v < prev {
			t.Fatal("posts out of order")
		}
		prev = v
		if len(r["labels"].([]any)) == 0 {
			t.Fatal("post without labels")
		}
	}
}

func TestGenTweets(t *testing.T) {
	var buf bytes.Buffer
	if err := genTweets(&buf, false, 120, 2, 0.1, false, 1); err != nil {
		t.Fatal(err)
	}
	rows := decodeLines(t, &buf)
	if len(rows) < 120 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r["text"].(string) == "" {
			t.Fatal("empty tweet text")
		}
	}
}

func TestGenNews(t *testing.T) {
	var buf bytes.Buffer
	if err := genNews(json.NewEncoder(&buf), 50, 1); err != nil {
		t.Fatal(err)
	}
	rows := decodeLines(t, &buf)
	if len(rows) != 50 {
		t.Fatalf("rows = %d, want 50", len(rows))
	}
}

// TestGenPostsBinaryMatchesJSON decodes a binary posts dataset and checks
// it is record-for-record identical to the JSONL emission.
func TestGenPostsBinaryMatchesJSON(t *testing.T) {
	var jb, bb bytes.Buffer
	if err := genPosts(&jb, false, 120, 1, 3, 1.5, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := genPosts(&bb, true, 120, 1, 3, 1.5, false, 1); err != nil {
		t.Fatal(err)
	}
	var jdict, bdict core.Dictionary
	want, err := wire.ReadPostsAuto(bytes.NewReader(jb.Bytes()), &jdict)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.ReadPostsAuto(bytes.NewReader(bb.Bytes()), &bdict)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("binary decoded %d posts, JSONL %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Value != want[i].Value {
			t.Fatalf("post %d: binary %+v, JSONL %+v", i, got[i], want[i])
		}
		for j, a := range want[i].Labels {
			if bdict.Name(got[i].Labels[j]) != jdict.Name(a) {
				t.Fatalf("post %d label %d: binary %q, JSONL %q",
					i, j, bdict.Name(got[i].Labels[j]), jdict.Name(a))
			}
		}
	}
}

// TestGenTweetsBinaryMatchesJSON does the same for the tweet stream shape.
func TestGenTweetsBinaryMatchesJSON(t *testing.T) {
	var jb, bb bytes.Buffer
	if err := genTweets(&jb, false, 120, 2, 0.1, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := genTweets(&bb, true, 120, 2, 0.1, false, 1); err != nil {
		t.Fatal(err)
	}
	got, err := wire.ReadStreamPosts(bytes.NewReader(bb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rows := decodeLines(t, &jb)
	if len(got) != len(rows) || len(got) == 0 {
		t.Fatalf("binary decoded %d tweets, JSONL %d", len(got), len(rows))
	}
	for i, r := range rows {
		if got[i].ID != int64(r["id"].(float64)) || got[i].Text != r["text"].(string) {
			t.Fatalf("tweet %d: binary %+v, JSONL %+v", i, got[i], r)
		}
	}
}

func TestGenPostsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := genPosts(&a, false, 60, 1, 2, 1.2, true, 7); err != nil {
		t.Fatal(err)
	}
	if err := genPosts(&b, false, 60, 1, 2, 1.2, true, 7); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different datasets")
	}
}
