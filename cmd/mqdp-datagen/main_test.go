package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestGenPosts(t *testing.T) {
	var buf bytes.Buffer
	if err := genPosts(json.NewEncoder(&buf), 120, 1, 3, 1.5, false, 1); err != nil {
		t.Fatal(err)
	}
	rows := decodeLines(t, &buf)
	if len(rows) < 60 {
		t.Fatalf("rows = %d, want ≈120", len(rows))
	}
	prev := -1.0
	for _, r := range rows {
		v := r["value"].(float64)
		if v < prev {
			t.Fatal("posts out of order")
		}
		prev = v
		if len(r["labels"].([]any)) == 0 {
			t.Fatal("post without labels")
		}
	}
}

func TestGenTweets(t *testing.T) {
	var buf bytes.Buffer
	if err := genTweets(json.NewEncoder(&buf), 120, 2, 0.1, false, 1); err != nil {
		t.Fatal(err)
	}
	rows := decodeLines(t, &buf)
	if len(rows) < 120 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r["text"].(string) == "" {
			t.Fatal("empty tweet text")
		}
	}
}

func TestGenNews(t *testing.T) {
	var buf bytes.Buffer
	if err := genNews(json.NewEncoder(&buf), 50, 1); err != nil {
		t.Fatal(err)
	}
	rows := decodeLines(t, &buf)
	if len(rows) != 50 {
		t.Fatalf("rows = %d, want 50", len(rows))
	}
}

func TestGenPostsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := genPosts(json.NewEncoder(&a), 60, 1, 2, 1.2, true, 7); err != nil {
		t.Fatal(err)
	}
	if err := genPosts(json.NewEncoder(&b), 60, 1, 2, 1.2, true, 7); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different datasets")
	}
}
