// Command mqdp-datagen emits the synthetic datasets used throughout this
// reproduction, as JSON lines on stdout or — when -o names a .mqdw file —
// as the compact binary frame format.
//
//	mqdp-datagen -kind posts  -duration 600 -labels 3 -overlap 1.5 -rate 1
//	mqdp-datagen -kind posts  -duration 600 -o posts.mqdw
//	mqdp-datagen -kind tweets -duration 3600 -rate 5.8 -dup 0.1
//	mqdp-datagen -kind news   -articles 2000
//
// "posts" are abstract (timestamp, label set) records consumable by the
// mqdp and mqdp-stream commands; "tweets" are timestamped texts for the full
// index/match/dedup pipeline; "news" are topical articles for LDA (JSON
// only — they have no binary frame kind).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mqdp/internal/core"
	"mqdp/internal/synth"
	"mqdp/internal/wire"
)

func main() {
	kind := flag.String("kind", "posts", "dataset kind: posts, tweets, news")
	out := flag.String("o", "-", "output file (.mqdw selects the binary frame format), or - for JSONL on stdout")
	duration := flag.Float64("duration", 600, "stream duration in seconds (posts, tweets)")
	rate := flag.Float64("rate", 1, "mean arrivals per second (posts, tweets)")
	labels := flag.Int("labels", 3, "label-space size (posts)")
	overlap := flag.Float64("overlap", 1.3, "mean labels per post (posts)")
	dup := flag.Float64("dup", 0, "near-duplicate ratio (tweets)")
	diurnal := flag.Bool("diurnal", false, "day/night rate curve (posts, tweets)")
	articles := flag.Int("articles", 2000, "article count (news)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	dst := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqdp-datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	binary := strings.HasSuffix(*out, ".mqdw")

	w := bufio.NewWriter(dst)
	defer w.Flush()
	var err error
	switch *kind {
	case "posts":
		err = genPosts(w, binary, *duration, *rate, *labels, *overlap, *diurnal, *seed)
	case "tweets":
		err = genTweets(w, binary, *duration, *rate, *dup, *diurnal, *seed)
	case "news":
		if binary {
			err = fmt.Errorf("kind news has no binary format; use a non-.mqdw output")
		} else {
			err = genNews(json.NewEncoder(w), *articles, *seed)
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqdp-datagen: %v\n", err)
		os.Exit(1)
	}
}

func genPosts(w io.Writer, binary bool, duration, rate float64, labels int, overlap float64, diurnal bool, seed int64) error {
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration:   duration,
		RatePerSec: rate,
		NumLabels:  labels,
		Overlap:    overlap,
		Diurnal:    diurnal,
		Seed:       seed,
	})
	if binary {
		// Intern names in encounter order — the same order wire.ReadPosts
		// would intern them from the JSONL emission — so downstream tools
		// produce byte-identical output whichever format they consumed.
		var dict core.Dictionary
		bw := wire.NewBinaryWriter(w, &dict)
		var ids []core.Label
		for _, p := range posts {
			ids = ids[:0]
			for _, a := range p.Labels {
				ids = append(ids, dict.Intern(fmt.Sprintf("label%d", a)))
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			if err := bw.Write(core.Post{ID: p.ID, Value: p.Value, Labels: ids}); err != nil {
				return err
			}
		}
		return bw.Flush()
	}
	enc := json.NewEncoder(w)
	type wireJSON struct {
		ID     int64    `json:"id"`
		Value  float64  `json:"value"`
		Labels []string `json:"labels"`
	}
	for _, p := range posts {
		names := make([]string, len(p.Labels))
		for i, a := range p.Labels {
			names[i] = fmt.Sprintf("label%d", a)
		}
		if err := enc.Encode(wireJSON{ID: p.ID, Value: p.Value, Labels: names}); err != nil {
			return err
		}
	}
	return nil
}

func genTweets(w io.Writer, binary bool, duration, rate, dup float64, diurnal bool, seed int64) error {
	world := synth.NewWorld(synth.WorldConfig{Seed: seed})
	tweets := synth.TweetStream(world, synth.StreamConfig{
		Duration:   duration,
		RatePerSec: rate,
		DupRatio:   dup,
		Diurnal:    diurnal,
		Seed:       seed + 1,
	})
	if binary {
		sp := make([]wire.StreamPost, len(tweets))
		for i, tw := range tweets {
			sp[i] = wire.StreamPost{ID: tw.ID, Time: tw.Time, Text: tw.Text}
		}
		return wire.WriteStreamPosts(w, sp, 0, wire.DefaultCompressThreshold)
	}
	enc := json.NewEncoder(w)
	type wireJSON struct {
		ID   int64   `json:"id"`
		Time float64 `json:"time"`
		Text string  `json:"text"`
	}
	for _, tw := range tweets {
		if err := enc.Encode(wireJSON{ID: tw.ID, Time: tw.Time, Text: tw.Text}); err != nil {
			return err
		}
	}
	return nil
}

func genNews(enc *json.Encoder, articles int, seed int64) error {
	world := synth.NewWorld(synth.WorldConfig{Seed: seed})
	arts := synth.NewsCorpus(world, synth.NewsConfig{Articles: articles, Seed: seed + 1})
	type wire struct {
		Text string `json:"text"`
	}
	for _, a := range arts {
		if err := enc.Encode(wire{Text: a.Text}); err != nil {
			return err
		}
	}
	return nil
}
