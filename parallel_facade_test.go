package mqdp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mqdp"
	"mqdp/internal/synth"
)

// randomFacadePosts builds a seeded random post set over numLabels labels.
func randomFacadePosts(seed int64, n, numLabels int) []mqdp.Post {
	rng := rand.New(rand.NewSource(seed))
	posts := make([]mqdp.Post, n)
	for i := range posts {
		var labels []mqdp.Label
		for a := 0; a < numLabels; a++ {
			if rng.Intn(3) == 0 {
				labels = append(labels, mqdp.Label(a))
			}
		}
		if len(labels) == 0 {
			labels = append(labels, mqdp.Label(rng.Intn(numLabels)))
		}
		posts[i] = mqdp.Post{ID: int64(i), Value: float64(rng.Intn(80)), Labels: labels}
	}
	return posts
}

// TestQuickParallelismEightMatchesSerial is the facade-level determinism
// contract from the issue: Scan, ScanPlus and GreedySC with Parallelism: 8
// must return covers identical to Parallelism: 1 on seeded random instances.
func TestQuickParallelismEightMatchesSerial(t *testing.T) {
	check := func(seed int64, lambdaRaw uint8, proportional bool) bool {
		numLabels := 2 + int(uint(seed)%7)
		posts := randomFacadePosts(seed, 10+int(uint(seed)%50), numLabels)
		inst, err := mqdp.NewInstance(posts, numLabels)
		if err != nil {
			return false
		}
		lambda := float64(lambdaRaw%16) + 1
		for _, algo := range []mqdp.Algorithm{mqdp.Scan, mqdp.ScanPlus, mqdp.GreedySC} {
			serial, err := mqdp.Solve(inst, mqdp.Options{
				Lambda: lambda, Algorithm: algo, Proportional: proportional, Parallelism: 1,
			})
			if err != nil {
				t.Logf("seed=%d %s serial: %v", seed, algo, err)
				return false
			}
			par, err := mqdp.Solve(inst, mqdp.Options{
				Lambda: lambda, Algorithm: algo, Proportional: proportional, Parallelism: 8,
			})
			if err != nil {
				t.Logf("seed=%d %s parallel: %v", seed, algo, err)
				return false
			}
			if len(serial.Selected) != len(par.Selected) {
				t.Logf("seed=%d λ=%v %s: serial %v parallel %v", seed, lambda, algo, serial.Selected, par.Selected)
				return false
			}
			for k := range serial.Selected {
				if serial.Selected[k] != par.Selected[k] {
					t.Logf("seed=%d λ=%v %s: serial %v parallel %v", seed, lambda, algo, serial.Selected, par.Selected)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestParallelismOnSynthWorkload repeats the contract on a realistic
// multi-label synthetic stream (the shape the benchmarks use).
func TestParallelismOnSynthWorkload(t *testing.T) {
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration: 900, RatePerSec: 2, NumLabels: 8, Overlap: 1.6, Seed: 1234,
	})
	inst, err := mqdp.NewInstance(posts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []mqdp.Algorithm{mqdp.Scan, mqdp.ScanPlus, mqdp.GreedySC} {
		serial, err := mqdp.Solve(inst, mqdp.Options{Lambda: 45, Algorithm: algo, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{0, 2, 4, 16} {
			par, err := mqdp.Solve(inst, mqdp.Options{Lambda: 45, Algorithm: algo, Parallelism: p})
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", algo, p, err)
			}
			if len(par.Selected) != len(serial.Selected) {
				t.Fatalf("%s parallelism %d: size %d != serial %d", algo, p, par.Size(), serial.Size())
			}
			for k := range serial.Selected {
				if par.Selected[k] != serial.Selected[k] {
					t.Fatalf("%s parallelism %d: cover diverged at element %d", algo, p, k)
				}
			}
		}
	}
}

func TestSolveRejectsNegativeParallelism(t *testing.T) {
	posts, numLabels := figure2Posts()
	inst, err := mqdp.NewInstance(posts, numLabels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mqdp.Solve(inst, mqdp.Options{Lambda: 1, Parallelism: -2}); err == nil {
		t.Error("negative parallelism accepted")
	}
}
