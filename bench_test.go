// Benchmarks: one per paper table/figure (driving the experiment harness at
// smoke scale) plus micro-benchmarks of the individual solvers and streaming
// processors. Regenerate the full-scale numbers with:
//
//	go run ./cmd/mqdp-bench -run all
package mqdp_test

import (
	"io"
	"testing"

	"mqdp"
	"mqdp/internal/core"
	"mqdp/internal/experiments"
	"mqdp/internal/stream"
	"mqdp/internal/synth"
)

// benchExperiment reruns a registered experiment at smoke scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, experiments.Smoke); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1LDATopics(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkTable2MatchingRate(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig6ErrorVsOverlap(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7ErrorVsLambda(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8SizesOneDay(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig9StreamErrVsLambda(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10StreamErrVsTau(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11StreamSizeOverlap(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12StreamSizesOneDay(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13TimeVsLambda(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14StreamTimeVsLambda(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15StreamTimeVsTau(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkHardnessReduction(b *testing.B)       { benchExperiment(b, "hardness") }
func BenchmarkProportionalDiversity(b *testing.B)   { benchExperiment(b, "prop") }
func BenchmarkAblationScanPlusOrder(b *testing.B)   { benchExperiment(b, "ablation-scanplus") }
func BenchmarkAblationSimHashDedup(b *testing.B)    { benchExperiment(b, "ablation-dedup") }
func BenchmarkAblationGreedyLazyHeap(b *testing.B)  { benchExperiment(b, "ablation-greedy") }
func BenchmarkExtSpatial(b *testing.B)              { benchExperiment(b, "ext-spatial") }
func BenchmarkExtAdaptive(b *testing.B)             { benchExperiment(b, "ext-adaptive") }
func BenchmarkExtExpansion(b *testing.B)            { benchExperiment(b, "ext-expansion") }
func BenchmarkExtWindows(b *testing.B)              { benchExperiment(b, "ext-windows") }

// benchInstance builds a reusable mid-size workload.
func benchInstance(b *testing.B, numLabels int, duration float64) *core.Instance {
	b.Helper()
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration:   duration,
		RatePerSec: 2,
		NumLabels:  numLabels,
		Overlap:    1.5,
		Seed:       42,
	})
	in, err := core.NewInstance(posts, numLabels)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func BenchmarkSolverScan(b *testing.B) {
	in := benchInstance(b, 5, 3600)
	lm := core.FixedLambda(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.Scan(lm)
	}
}

// The *Parallel variants run the same workloads as their serial counterparts
// with workers = GOMAXPROCS, so one `go test -bench Solver` run compares the
// two directly. The covers are identical by the determinism contract; only
// wall-clock differs. See BENCH_baseline.json for the tracked 8-label
// numbers.

func BenchmarkSolverScanParallel(b *testing.B) {
	in := benchInstance(b, 5, 3600)
	lm := core.FixedLambda(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.ScanParallel(lm, 0)
	}
}

func BenchmarkSolverScanPlus(b *testing.B) {
	in := benchInstance(b, 5, 3600)
	lm := core.FixedLambda(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.ScanPlus(lm, core.OrderByID)
	}
}

func BenchmarkSolverScanPlusParallel(b *testing.B) {
	in := benchInstance(b, 5, 3600)
	lm := core.FixedLambda(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.ScanPlusParallel(lm, core.OrderByID, 0)
	}
}

func BenchmarkSolverGreedySC(b *testing.B) {
	in := benchInstance(b, 5, 3600)
	lm := core.FixedLambda(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.GreedySC(lm)
	}
}

func BenchmarkSolverGreedySCParallel(b *testing.B) {
	in := benchInstance(b, 5, 3600)
	lm := core.FixedLambda(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.GreedySCParallel(lm, 0)
	}
}

func BenchmarkSolverOPTSmall(b *testing.B) {
	in := benchInstance(b, 2, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.OPT(5, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamScanProcessor(b *testing.B) {
	in := benchInstance(b, 5, 3600)
	posts := in.Posts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := stream.NewScan(5, 60, 30, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stream.Run(posts, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamGreedyProcessor(b *testing.B) {
	in := benchInstance(b, 5, 3600)
	posts := in.Posts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := stream.NewGreedy(5, 60, 30, false)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stream.Run(posts, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacadeSolve(b *testing.B) {
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration: 600, RatePerSec: 2, NumLabels: 3, Seed: 7,
	})
	inst, err := mqdp.NewInstance(posts, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mqdp.Solve(inst, mqdp.Options{Lambda: 30, Algorithm: mqdp.GreedySC}); err != nil {
			b.Fatal(err)
		}
	}
}
