// Package mqdp is the public API of this reproduction of "Multi-Query
// Diversification in Microblogging Posts" (EDBT 2014). Given a collection or
// stream of posts — each carrying a value on an ordered diversity dimension
// (time, sentiment, ...) and the set of user queries (labels) it matches —
// it computes a small subset of posts that λ-covers everything: every post
// has, for each of its labels, a selected post with that label within
// distance λ on the dimension.
//
// Offline solving (Problem 1, MQDP):
//
//	inst, _ := mqdp.NewInstance(posts, dict.Len())
//	cover, _ := mqdp.Solve(inst, mqdp.Options{Lambda: 60, Algorithm: mqdp.GreedySC})
//
// Streaming (Problem 2, StreamMQDP), with every decision within delay τ:
//
//	p, _ := mqdp.NewStream(mqdp.StreamScanPlus, dict.Len(), 60, 30)
//	emissions, _ := mqdp.RunStream(posts, p)
//
// The heavy lifting lives in internal/core (solvers), internal/stream
// (streaming processors) and the substrate packages (inverted index, topic
// matching, LDA, SimHash, sentiment, synthetic data); this package provides
// the stable surface.
package mqdp

import (
	"errors"
	"fmt"

	"mqdp/internal/core"
	"mqdp/internal/stream"
)

// Core model types, re-exported.
type (
	// Post is one item to diversify: a dimension value plus label set.
	Post = core.Post
	// Label is an interned query identifier.
	Label = core.Label
	// Dictionary interns query names to labels.
	Dictionary = core.Dictionary
	// Instance is a prepared, immutable MQDP input.
	Instance = core.Instance
	// Cover is a solver result.
	Cover = core.Cover
	// LambdaModel supplies per-post coverage radii.
	LambdaModel = core.LambdaModel
	// OPTOptions bound the exact solver.
	OPTOptions = core.OPTOptions
	// Emission is one streaming output decision.
	Emission = stream.Emission
	// Processor is a streaming diversifier.
	Processor = stream.Processor
)

// NewInstance validates and prepares posts; numLabels must exceed every
// label id (use dict.Len()).
func NewInstance(posts []Post, numLabels int) (*Instance, error) {
	return core.NewInstance(posts, numLabels)
}

// Algorithm selects an offline solver.
type Algorithm int

// Offline solvers (§4 of the paper).
const (
	// Scan: per-label scans, approximation factor s, O(s|P|) time.
	Scan Algorithm = iota
	// ScanPlus: Scan with cross-label reuse of selections.
	ScanPlus
	// GreedySC: greedy set cover, approximation factor ln(|P||L|).
	GreedySC
	// OPT: exact dynamic programming; small instances only.
	OPT
	// Exhaustive: exact branch-and-bound; tiny instances only.
	Exhaustive
	// Thinning: the naive grid-bucketing baseline (one post per label per
	// aligned λ-width bucket) — always valid, never clever.
	Thinning
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case Scan:
		return "Scan"
	case ScanPlus:
		return "Scan+"
	case GreedySC:
		return "GreedySC"
	case OPT:
		return "OPT"
	case Exhaustive:
		return "Exhaustive"
	case Thinning:
		return "BucketThinning"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configure Solve. Lambda is required (> 0, or ≥ 0 for exact
// same-value covering).
type Options struct {
	// Lambda is the coverage threshold on the diversity dimension — or,
	// when Proportional is set, the base threshold λ0 of Equation 2.
	Lambda float64
	// Algorithm picks the solver; default Scan.
	Algorithm Algorithm
	// Proportional enables §6's density-adaptive per-post thresholds.
	// Not supported by OPT (the end-pattern state breaks under
	// directional coverage).
	Proportional bool
	// ScanOrder sets Scan+'s label processing order.
	ScanOrder core.ScanOrder
	// OPT bounds the exact solver's state space.
	OPT *OPTOptions
	// SkipVerify disables the built-in independent feasibility check.
	SkipVerify bool
	// Parallelism bounds the solver's worker goroutines: 0 means
	// GOMAXPROCS, 1 (and any serial-only algorithm) preserves the classic
	// single-goroutine behavior. Parallel and serial runs return identical
	// covers — Scan shards per label, ScanPlus per label-graph component,
	// GreedySC parallelizes its initial gain sweep; OPT, Exhaustive and
	// Thinning always run serially.
	Parallelism int
}

// ErrUnsupported reports an invalid solver/option combination.
var ErrUnsupported = errors.New("mqdp: unsupported option combination")

// Solve runs the selected algorithm and (unless SkipVerify) re-checks the
// returned cover independently before handing it back.
func Solve(inst *Instance, opts Options) (*Cover, error) {
	if opts.Lambda < 0 {
		return nil, fmt.Errorf("mqdp: negative lambda %v", opts.Lambda)
	}
	var model LambdaModel = core.FixedLambda(opts.Lambda)
	if opts.Proportional {
		if opts.Algorithm == OPT {
			return nil, fmt.Errorf("%w: OPT requires a fixed lambda", ErrUnsupported)
		}
		pl, err := core.NewProportionalLambda(inst, opts.Lambda)
		if err != nil {
			return nil, err
		}
		model = pl
	}
	var (
		cover *Cover
		err   error
	)
	if opts.Parallelism < 0 {
		return nil, fmt.Errorf("mqdp: negative parallelism %d", opts.Parallelism)
	}
	switch opts.Algorithm {
	case Scan:
		cover = inst.ScanParallel(model, opts.Parallelism)
	case ScanPlus:
		cover = inst.ScanPlusParallel(model, opts.ScanOrder, opts.Parallelism)
	case GreedySC:
		cover = inst.GreedySCParallel(model, opts.Parallelism)
	case OPT:
		cover, err = inst.OPT(opts.Lambda, opts.OPT)
	case Exhaustive:
		cover, err = inst.Exhaustive(model)
	case Thinning:
		if opts.Proportional {
			return nil, fmt.Errorf("%w: thinning requires a fixed lambda", ErrUnsupported)
		}
		cover = inst.BucketThinning(opts.Lambda)
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrUnsupported, opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	if !opts.SkipVerify {
		if verr := inst.VerifyCover(model, cover.Selected); verr != nil {
			return nil, fmt.Errorf("mqdp: %s returned an infeasible cover: %w", opts.Algorithm, verr)
		}
	}
	return cover, nil
}

// StreamAlgorithm selects a streaming processor.
type StreamAlgorithm int

// Streaming processors (§5 of the paper).
const (
	// StreamScan: per-label deadline scans; factor s when τ ≥ λ.
	StreamScan StreamAlgorithm = iota
	// StreamScanPlus: StreamScan with cross-label reuse.
	StreamScanPlus
	// StreamGreedy: windowed greedy set cover per decision round.
	StreamGreedy
	// StreamGreedyPlus: StreamGreedy stopping rounds at the trigger post.
	StreamGreedyPlus
	// Instant: τ = 0 decisions; factor 2s.
	Instant
)

// String names the streaming algorithm as in the paper.
func (a StreamAlgorithm) String() string {
	switch a {
	case StreamScan:
		return "StreamScan"
	case StreamScanPlus:
		return "StreamScan+"
	case StreamGreedy:
		return "StreamGreedySC"
	case StreamGreedyPlus:
		return "StreamGreedySC+"
	case Instant:
		return "Instant"
	}
	return fmt.Sprintf("StreamAlgorithm(%d)", int(a))
}

// NewStream builds a streaming diversifier over numLabels labels with
// threshold lambda and decision delay tau (ignored by Instant).
func NewStream(algo StreamAlgorithm, numLabels int, lambda, tau float64) (Processor, error) {
	switch algo {
	case StreamScan:
		return stream.NewScan(numLabels, lambda, tau, false)
	case StreamScanPlus:
		return stream.NewScan(numLabels, lambda, tau, true)
	case StreamGreedy:
		return stream.NewGreedy(numLabels, lambda, tau, false)
	case StreamGreedyPlus:
		return stream.NewGreedy(numLabels, lambda, tau, true)
	case Instant:
		return stream.NewInstant(numLabels, lambda)
	}
	return nil, fmt.Errorf("%w: unknown streaming algorithm %d", ErrUnsupported, algo)
}

// RunStream replays posts (ascending Value order) through p and returns all
// emissions in decision order.
func RunStream(posts []Post, p Processor) ([]Emission, error) {
	return stream.Run(posts, p)
}

// Verify independently checks that the selected indexes λ-cover inst.
func Verify(inst *Instance, lambda float64, selected []int) error {
	return inst.VerifyCover(core.FixedLambda(lambda), selected)
}

// StreamSummary aggregates an emission batch: output size plus mean, p95 and
// max decision delay — the two axes of the paper's §5 size/delay tradeoff.
type StreamSummary = stream.Summary

// SummarizeStream computes a StreamSummary over emissions.
func SummarizeStream(es []Emission) StreamSummary { return stream.Summarize(es) }
