package mqdp

import (
	"fmt"
	"sync"
)

// SolvePortfolio runs several algorithms concurrently on the same instance
// and returns the smallest verified cover. §7.4's takeaway is that the best
// algorithm depends on the workload (Scan at low overlap, GreedySC at high
// overlap or many labels); a portfolio sidesteps choosing when the instance
// is worth a few parallel solves. Exact solvers that fail (ErrOPTTooLarge,
// oversized exhaustive) are skipped as long as one algorithm succeeds.
func SolvePortfolio(inst *Instance, opts Options, algorithms ...Algorithm) (*Cover, error) {
	if len(algorithms) == 0 {
		algorithms = []Algorithm{Scan, ScanPlus, GreedySC}
	}
	type result struct {
		cover *Cover
		err   error
	}
	results := make([]result, len(algorithms))
	var wg sync.WaitGroup
	for k, algo := range algorithms {
		wg.Add(1)
		go func(k int, algo Algorithm) {
			defer wg.Done()
			o := opts
			o.Algorithm = algo
			c, err := Solve(inst, o)
			results[k] = result{cover: c, err: err}
		}(k, algo)
	}
	wg.Wait()
	var best *Cover
	var firstErr error
	for _, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if best == nil || r.cover.Size() < best.Size() {
			best = r.cover
		}
	}
	if best == nil {
		return nil, fmt.Errorf("mqdp: every portfolio member failed: %w", firstErr)
	}
	return best, nil
}
