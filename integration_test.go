package mqdp_test

import (
	"testing"

	"mqdp"
	"mqdp/internal/core"
	"mqdp/internal/index"
	"mqdp/internal/lda"
	"mqdp/internal/match"
	"mqdp/internal/simhash"
	"mqdp/internal/stream"
	"mqdp/internal/synth"
)

// TestFullPipeline exercises the paper's Figure 1 architecture end to end:
// news corpus → LDA topics → tweet stream → inverted index → keyword match
// → SimHash dedup → MQDP solvers and streaming processors, with every cover
// independently verified.
func TestFullPipeline(t *testing.T) {
	// Query generation (§7.1).
	world := synth.NewWorld(synth.WorldConfig{BroadTopics: 3, TopicsPerBroad: 3, KeywordsPerTopic: 20, Seed: 21})
	corpus := lda.NewCorpus()
	for _, a := range synth.NewsCorpus(world, synth.NewsConfig{Articles: 300, WordsPerDoc: 60, Seed: 22}) {
		corpus.AddText(a.Text)
	}
	model, err := lda.Train(corpus, lda.Options{Topics: 9, Iterations: 40, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	var topics []match.Topic
	for k := 0; k < 3; k++ {
		var kws []match.Keyword
		for _, tw := range model.TopKeywords(k, 20) {
			kws = append(kws, match.Keyword{Text: tw.Word, Weight: tw.Weight})
		}
		topics = append(topics, match.Topic{Name: "q", Keywords: kws})
	}
	matcher, err := match.NewMatcher(topics)
	if err != nil {
		t.Fatal(err)
	}

	// Stream → index.
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 900, RatePerSec: 4, DupRatio: 0.1, Seed: 24})
	ix := index.New()
	for _, tw := range tweets {
		if err := ix.Add(index.Doc{ID: tw.ID, Time: tw.Time, Text: tw.Text}); err != nil {
			t.Fatal(err)
		}
	}

	// Match + dedup.
	matched := matcher.FromIndex(ix, match.ByTime, 0, 900)
	if len(matched) == 0 {
		t.Fatal("no posts matched the LDA topics")
	}
	dedup := simhash.NewDeduper(10, 2048)
	var posts []mqdp.Post
	for _, p := range matched {
		if dedup.Offer(ix.Doc(int32(p.ID)).Text) {
			posts = append(posts, p)
		}
	}
	if len(posts) == 0 {
		t.Fatal("dedup dropped everything")
	}

	// Offline solving, all algorithms that scale.
	inst, err := mqdp.NewInstance(posts, matcher.NumTopics())
	if err != nil {
		t.Fatal(err)
	}
	lambda := 60.0
	sizes := map[mqdp.Algorithm]int{}
	for _, algo := range []mqdp.Algorithm{mqdp.Scan, mqdp.ScanPlus, mqdp.GreedySC} {
		cover, err := mqdp.Solve(inst, mqdp.Options{Lambda: lambda, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if cover.Size() == 0 || cover.Size() > inst.Len() {
			t.Fatalf("%s: implausible cover size %d of %d", algo, cover.Size(), inst.Len())
		}
		sizes[algo] = cover.Size()
	}
	if sizes[mqdp.ScanPlus] > sizes[mqdp.Scan] {
		t.Errorf("Scan+ (%d) worse than Scan (%d)", sizes[mqdp.ScanPlus], sizes[mqdp.Scan])
	}

	// Streaming over the same matched stream.
	proc, err := mqdp.NewStream(mqdp.StreamScanPlus, matcher.NumTopics(), lambda, 30)
	if err != nil {
		t.Fatal(err)
	}
	emissions, err := mqdp.RunStream(posts, proc)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int64]int{}
	for i := 0; i < inst.Len(); i++ {
		byID[inst.Post(i).ID] = i
	}
	var sel []int
	for _, e := range emissions {
		sel = append(sel, byID[e.Post.ID])
	}
	if err := mqdp.Verify(inst, lambda, sel); err != nil {
		t.Fatalf("streaming emissions do not cover the matched stream: %v", err)
	}
}

// TestSentimentDimensionPipeline checks the alternative diversity dimension:
// matched posts projected on sentiment and diversified with proportional λ.
func TestSentimentDimensionPipeline(t *testing.T) {
	world := synth.NewWorld(synth.WorldConfig{BroadTopics: 2, TopicsPerBroad: 2, Seed: 31})
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 600, RatePerSec: 4, TopicRatio: 0.6, Seed: 32})
	all := make([]int, len(world.Topics))
	for i := range all {
		all[i] = i
	}
	matcher, err := match.NewMatcher(world.MatchTopics(all))
	if err != nil {
		t.Fatal(err)
	}
	var posts []core.Post
	for _, tw := range tweets {
		if p, ok := matcher.PostFromDoc(index.Doc{ID: tw.ID, Time: tw.Time, Text: tw.Text}, match.BySentiment); ok {
			posts = append(posts, p)
		}
	}
	if len(posts) < 50 {
		t.Fatalf("only %d posts matched", len(posts))
	}
	for _, p := range posts {
		if p.Value < -1 || p.Value > 1 {
			t.Fatalf("sentiment value %v outside [-1, 1]", p.Value)
		}
	}
	inst, err := core.NewInstance(posts, matcher.NumTopics())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewProportionalLambda(inst, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cover := inst.Scan(pl)
	if err := inst.VerifyCover(pl, cover.Selected); err != nil {
		t.Fatalf("proportional sentiment cover invalid: %v", err)
	}
	if cover.Size() == 0 || cover.Size() >= inst.Len() {
		t.Errorf("implausible sentiment cover: %d of %d", cover.Size(), inst.Len())
	}
}

// TestStreamMatchesOfflineOnPipelineData re-checks the τ ≥ λ equivalence of
// StreamScan and offline Scan on realistic (matched) data rather than
// synthetic label streams.
func TestStreamMatchesOfflineOnPipelineData(t *testing.T) {
	posts := synth.GeneratePosts(synth.PostStreamConfig{Duration: 1200, RatePerSec: 1, NumLabels: 4, Overlap: 1.6, Seed: 41})
	in, err := core.NewInstance(posts, 4)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 45.0
	offline := in.Scan(core.FixedLambda(lambda))
	proc, err := stream.NewScan(4, lambda, lambda, false)
	if err != nil {
		t.Fatal(err)
	}
	es, err := stream.Run(posts, proc)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != offline.Size() {
		t.Errorf("StreamScan(τ=λ) emitted %d, offline Scan selected %d", len(es), offline.Size())
	}
}
