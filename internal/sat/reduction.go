package sat

import (
	"fmt"

	"mqdp/internal/core"
)

// Reduction is the Lemma 1 transformation of a CNF formula into an MQDP
// instance with λ = 1. The paper claims the formula is satisfiable iff the
// instance has a λ-cover of cardinality at most Budget = n(2m+3).
//
// Reproduction note: the (⇒) direction holds and is exercised by
// CoverFromAssignment, but the published (⇐) argument is flawed. Its
// rigidity claim — "the only way to cover all 2m+3 occurrences of u_i with
// m+1 posts is to choose the even-time posts (2j, {u_i})" — overlooks the
// boundary posts (1, {u_i, w_i}) and (2m+3, {u_i, w_i}): a post at time 1
// covers occurrences {1, 2}, so configurations like times {1, 3, 6} also
// cover seven occurrences with three posts. Concretely, for the
// unsatisfiable formula (x1)∧(¬x1) (n=1, m=2, budget 7) the six posts at
// times {1,3,6} on the u side and {2,5,7} on the ū side — which include both
// clause carriers (3,{u,c1}) and (5,{ū,c2}) of *opposite* polarity — form a
// valid 1-cover of size 6 ≤ 7. See TestPaperReductionCounterexample. The
// NP-hardness of MQDP itself is unaffected: the same-timestamp special case
// is exactly set cover (§3's opening remark), implemented as SetCoverReduce
// with a machine-checked equivalence.
//
// Labels (for n variables and m clauses):
//
//	w_i, u_i, ū_i for each variable x_i, then c_j for each clause C_j.
//
// Posts, for each variable i (times are integers 1..2m+3):
//
//	(1, {u_i, w_i}), (1, {ū_i, w_i}),
//	(2m+3, {u_i, w_i}), (2m+3, {ū_i, w_i}),
//	(2j, {u_i}), (2j, {ū_i})          for j = 1..m+1,
//	(2j+1, U_ij), (2j+1, Ū_ij)        for j = 1..m,
//
// where U_ij = {u_i, c_j} if x_i ∈ C_j else {u_i}, and Ū_ij = {ū_i, c_j} if
// ¬x_i ∈ C_j else {ū_i}.
type Reduction struct {
	Formula   *Formula
	Posts     []core.Post
	NumLabels int
	Lambda    float64
	Budget    int
	// post ids encode their role; see postID.
}

// Label helpers: per-variable labels come first, clause labels after.
func (r *Reduction) labelW(i int) core.Label { return core.Label(3 * (i - 1)) }
func (r *Reduction) labelU(i int) core.Label { return core.Label(3*(i-1) + 1) }
func (r *Reduction) labelUN(i int) core.Label {
	return core.Label(3*(i-1) + 2)
}
func (r *Reduction) labelC(j int) core.Label {
	return core.Label(3*r.Formula.NumVars + (j - 1))
}

// post id layout: i*1000 + t*10 + side, where side 0 = the u_i family and
// side 1 = the ū_i family. Only used to make debugging output readable.
func postID(i, t, side int) int64 { return int64(i)*100000 + int64(t)*10 + int64(side) }

// Reduce builds the Lemma 1 MQDP instance for f.
func Reduce(f *Formula) (*Reduction, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	n, m := f.NumVars, len(f.Clauses)
	if n == 0 {
		return nil, fmt.Errorf("%w: reduction needs at least one variable", ErrBadFormula)
	}
	r := &Reduction{
		Formula:   f,
		NumLabels: 3*n + m,
		Lambda:    1,
		Budget:    n * (2*m + 3),
	}
	// clause membership lookup
	inClause := func(j, i int, positive bool) bool {
		for _, l := range f.Clauses[j-1] {
			if l.Var() == i && l.Positive() == positive {
				return true
			}
		}
		return false
	}
	for i := 1; i <= n; i++ {
		w, u, un := r.labelW(i), r.labelU(i), r.labelUN(i)
		last := float64(2*m + 3)
		r.Posts = append(r.Posts,
			core.Post{ID: postID(i, 1, 0), Value: 1, Labels: []core.Label{u, w}},
			core.Post{ID: postID(i, 1, 1), Value: 1, Labels: []core.Label{un, w}},
			core.Post{ID: postID(i, 2*m+3, 0), Value: last, Labels: []core.Label{u, w}},
			core.Post{ID: postID(i, 2*m+3, 1), Value: last, Labels: []core.Label{un, w}},
		)
		for j := 1; j <= m+1; j++ {
			r.Posts = append(r.Posts,
				core.Post{ID: postID(i, 2*j, 0), Value: float64(2 * j), Labels: []core.Label{u}},
				core.Post{ID: postID(i, 2*j, 1), Value: float64(2 * j), Labels: []core.Label{un}},
			)
		}
		for j := 1; j <= m; j++ {
			uij := []core.Label{u}
			if inClause(j, i, true) {
				uij = append(uij, r.labelC(j))
			}
			unij := []core.Label{un}
			if inClause(j, i, false) {
				unij = append(unij, r.labelC(j))
			}
			r.Posts = append(r.Posts,
				core.Post{ID: postID(i, 2*j+1, 0), Value: float64(2*j + 1), Labels: uij},
				core.Post{ID: postID(i, 2*j+1, 1), Value: float64(2*j + 1), Labels: unij},
			)
		}
	}
	return r, nil
}

// Instance materializes the reduction's MQDP instance.
func (r *Reduction) Instance() (*core.Instance, error) {
	return core.NewInstance(r.Posts, r.NumLabels)
}

// CoverFromAssignment constructs, per the (⇒) direction of Lemma 1's proof,
// a λ-cover of exactly Budget posts from a satisfying assignment
// (assign[v] for variable v, index 0 unused). The cover is returned as post
// IDs; it verifies against Instance() with FixedLambda(1).
func (r *Reduction) CoverFromAssignment(assign []bool) ([]int64, error) {
	n, m := r.Formula.NumVars, len(r.Formula.Clauses)
	if len(assign) < n+1 {
		return nil, fmt.Errorf("%w: assignment covers %d variables, need %d", ErrBadFormula, len(assign)-1, n)
	}
	if !r.Formula.Eval(assign) {
		return nil, fmt.Errorf("sat: assignment does not satisfy the formula")
	}
	var ids []int64
	for i := 1; i <= n; i++ {
		// f(x_i)=1 keeps the ū_i backbone plus the U_ij row (side 0 at odd
		// times); f(x_i)=0 mirrors it.
		side := 0
		backbone := 1
		if !assign[i] {
			side = 1
			backbone = 0
		}
		ids = append(ids,
			postID(i, 1, side),
			postID(i, 2*m+3, side),
		)
		for j := 1; j <= m+1; j++ {
			ids = append(ids, postID(i, 2*j, backbone))
		}
		for j := 1; j <= m; j++ {
			ids = append(ids, postID(i, 2*j+1, side))
		}
	}
	return ids, nil
}

// SetCoverReduce encodes a classic set-cover instance as MQDP: one post per
// candidate set, all at timestamp 0, labeled with the set's elements. With
// every post at the same time, a λ-cover must cover each (post, element)
// pair through shared labels alone, so the minimum MQDP cover equals the
// minimum set cover of ∪sets — the degenerate case behind §3's observation
// that MQDP inherits set cover's NP-hardness and ln|L| inapproximability.
// Element ids must be dense in [0, numElements).
func SetCoverReduce(sets [][]core.Label, numElements int) ([]core.Post, error) {
	if numElements < 0 {
		return nil, fmt.Errorf("%w: negative element count", ErrBadFormula)
	}
	posts := make([]core.Post, 0, len(sets))
	for si, set := range sets {
		for _, e := range set {
			if e < 0 || int(e) >= numElements {
				return nil, fmt.Errorf("%w: set %d element %d out of range", ErrBadFormula, si, e)
			}
		}
		posts = append(posts, core.Post{ID: int64(si), Value: 0, Labels: set})
	}
	return posts, nil
}
