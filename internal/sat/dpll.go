package sat

// value is a three-state assignment.
type value int8

const (
	unknown value = iota
	vTrue
	vFalse
)

// Solve decides satisfiability with DPLL: unit propagation, pure-literal
// elimination, then branching on the first unassigned variable. On success
// it returns a total satisfying assignment (assign[v] for variable v,
// index 0 unused).
func Solve(f *Formula) ([]bool, bool) {
	if err := f.Validate(); err != nil {
		return nil, false
	}
	assign := make([]value, f.NumVars+1)
	if !dpll(f, assign) {
		return nil, false
	}
	out := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = assign[v] == vTrue // unknowns default to false
	}
	return out, true
}

// litValue evaluates a literal under a partial assignment.
func litValue(assign []value, l Literal) value {
	a := assign[l.Var()]
	if a == unknown {
		return unknown
	}
	if (a == vTrue) == l.Positive() {
		return vTrue
	}
	return vFalse
}

// dpll tries to extend assign to satisfy f.
func dpll(f *Formula, assign []value) bool {
	// Unit propagation to fixpoint; record trail for backtracking.
	var trail []int
	undo := func() {
		for _, v := range trail {
			assign[v] = unknown
		}
	}
	for {
		unit := Literal(0)
		for _, c := range f.Clauses {
			sat, unassigned, last := false, 0, Literal(0)
			for _, l := range c {
				switch litValue(assign, l) {
				case vTrue:
					sat = true
				case unknown:
					unassigned++
					last = l
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				undo()
				return false // conflict
			}
			if unassigned == 1 {
				unit = last
				break
			}
		}
		if unit == 0 {
			break
		}
		v := unit.Var()
		if unit.Positive() {
			assign[v] = vTrue
		} else {
			assign[v] = vFalse
		}
		trail = append(trail, v)
	}
	// Pure literal elimination.
	polarity := make(map[int]int8) // 1 pos only, 2 neg only, 3 both
	for _, c := range f.Clauses {
		clauseSat := false
		for _, l := range c {
			if litValue(assign, l) == vTrue {
				clauseSat = true
				break
			}
		}
		if clauseSat {
			continue
		}
		for _, l := range c {
			if litValue(assign, l) != unknown {
				continue
			}
			if l.Positive() {
				polarity[l.Var()] |= 1
			} else {
				polarity[l.Var()] |= 2
			}
		}
	}
	for v, pol := range polarity {
		if pol == 1 {
			assign[v] = vTrue
			trail = append(trail, v)
		} else if pol == 2 {
			assign[v] = vFalse
			trail = append(trail, v)
		}
	}
	// Pick a branching variable.
	branch := 0
	done := true
	for _, c := range f.Clauses {
		sat := false
		var free Literal
		for _, l := range c {
			switch litValue(assign, l) {
			case vTrue:
				sat = true
			case unknown:
				if free == 0 {
					free = l
				}
			}
			if sat {
				break
			}
		}
		if !sat {
			if free == 0 {
				undo()
				return false // conflict introduced by pure-literal pass: impossible, but be safe
			}
			done = false
			branch = free.Var()
			break
		}
	}
	if done {
		return true
	}
	for _, try := range []value{vTrue, vFalse} {
		assign[branch] = try
		if dpll(f, assign) {
			return true
		}
	}
	assign[branch] = unknown
	undo()
	return false
}
