package sat

import (
	"math/rand"
	"strings"
	"testing"

	"mqdp/internal/core"
)

// bruteForceSat decides satisfiability by trying all assignments.
func bruteForceSat(f *Formula) bool {
	n := f.NumVars
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

// randomCNF generates a random k-CNF formula.
func randomCNF(rng *rand.Rand, nVars, nClauses, k int) *Formula {
	f := &Formula{NumVars: nVars}
	for c := 0; c < nClauses; c++ {
		clause := make(Clause, 0, k)
		for len(clause) < k {
			v := 1 + rng.Intn(nVars)
			lit := Literal(v)
			if rng.Intn(2) == 0 {
				lit = -lit
			}
			clause = append(clause, lit)
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return f
}

func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(12)
		k := 1 + rng.Intn(3)
		f := randomCNF(rng, n, m, k)
		assign, sat := Solve(f)
		if want := bruteForceSat(f); sat != want {
			t.Fatalf("trial %d: Solve=%v brute=%v for %v", trial, sat, want, f)
		}
		if sat && !f.Eval(assign) {
			t.Fatalf("trial %d: returned assignment does not satisfy %v", trial, f)
		}
	}
}

func TestSolveKnownFormulas(t *testing.T) {
	cases := []struct {
		name string
		f    *Formula
		sat  bool
	}{
		{"single positive", &Formula{NumVars: 1, Clauses: []Clause{{1}}}, true},
		{"contradiction", &Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}, false},
		{"implication chain", &Formula{NumVars: 3, Clauses: []Clause{{-1, 2}, {-2, 3}, {1}}}, true},
		{"xor-ish unsat", &Formula{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}}, false},
		{"no clauses", &Formula{NumVars: 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assign, sat := Solve(tc.f)
			if sat != tc.sat {
				t.Fatalf("Solve = %v, want %v", sat, tc.sat)
			}
			if sat && !tc.f.Eval(assign) {
				t.Error("assignment does not satisfy formula")
			}
		})
	}
}

func TestValidate(t *testing.T) {
	bad := []*Formula{
		{NumVars: -1},
		{NumVars: 1, Clauses: []Clause{{}}},
		{NumVars: 1, Clauses: []Clause{{2}}},
		{NumVars: 1, Clauses: []Clause{{0}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("formula %d validated: %+v", i, f)
		}
	}
	if err := (&Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}).Validate(); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
}

func TestParseDIMACS(t *testing.T) {
	src := `c example
p cnf 3 2
1 -2 0
2 3 0
`
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseDIMACS: %v", err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
	if f.Clauses[0][1] != -2 {
		t.Errorf("clause 0 = %v", f.Clauses[0])
	}
	for _, bad := range []string{
		"1 2 0\n",           // clause before header
		"p cnf 3\n",         // malformed header
		"p cnf 1 2\n1 0\n",  // clause count mismatch
		"p cnf 1 1\nx 0\n",  // bad literal
		"p cnf 1 1\n2 0\n",  // out-of-range literal
		"c only comments\n", // no header
		"p cnf -1 0\n",      // negative vars
	} {
		if _, err := ParseDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseDIMACS accepted %q", bad)
		}
	}
}

func TestFormulaString(t *testing.T) {
	f := &Formula{NumVars: 2, Clauses: []Clause{{1, -2}, {2}}}
	want := "(x1 ∨ ¬x2) ∧ (x2)"
	if got := f.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestReduceStructure(t *testing.T) {
	// Figure 3's shape: variable x5 appears positively in C1, negatively in
	// C3, with m = 3 clauses. We build a 1-variable analogue and check post
	// counts and label placement.
	f := &Formula{NumVars: 1, Clauses: []Clause{{1}, {1}, {-1}}} // x1∈C1, x1∈C2, ¬x1∈C3
	r, err := Reduce(f)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	n, m := 1, 3
	if want := n * (4 + 2*(m+1) + 2*m); len(r.Posts) != want {
		t.Fatalf("posts = %d, want %d", len(r.Posts), want)
	}
	if r.NumLabels != 3*n+m {
		t.Errorf("labels = %d, want %d", r.NumLabels, 3*n+m)
	}
	if r.Budget != n*(2*m+3) {
		t.Errorf("budget = %d, want %d", r.Budget, n*(2*m+3))
	}
	// The U_1j post at time 2j+1 carries c_j exactly when x1 ∈ C_j.
	cj := r.labelC(1)
	found := false
	for _, p := range r.Posts {
		if p.Value == 3 { // time 2·1+1
			for _, l := range p.Labels {
				if l == cj {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("c_1 label missing from time-3 posts despite x1 ∈ C1")
	}
}

func TestReductionForwardDirection(t *testing.T) {
	// For satisfiable formulas, the proof's constructed cover must verify
	// and have exactly Budget posts.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(3)
		f := randomCNF(rng, n, m, 1+rng.Intn(2))
		assign, sat := Solve(f)
		if !sat {
			continue
		}
		r, err := Reduce(f)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := r.CoverFromAssignment(assign)
		if err != nil {
			t.Fatalf("CoverFromAssignment: %v", err)
		}
		if len(ids) != r.Budget {
			t.Fatalf("constructed cover has %d posts, want budget %d", len(ids), r.Budget)
		}
		in, err := r.Instance()
		if err != nil {
			t.Fatal(err)
		}
		sel := indexesOf(t, in, ids)
		if err := in.VerifyCover(core.FixedLambda(r.Lambda), sel); err != nil {
			t.Fatalf("trial %d: constructed cover invalid for %v: %v", trial, f, err)
		}
	}
}

func TestSatisfiableFormulasMeetBudget(t *testing.T) {
	// The (⇒) half of Lemma 1, checked against the exact solver: every
	// satisfiable formula's instance has a minimum cover ≤ n(2m+3).
	cases := []*Formula{
		{NumVars: 1, Clauses: []Clause{{1}}},
		{NumVars: 1, Clauses: []Clause{{-1}}},
		{NumVars: 1, Clauses: []Clause{{1}, {1}}},
		{NumVars: 2, Clauses: []Clause{{1, 2}}},
		{NumVars: 2, Clauses: []Clause{{-1, -2}}},
	}
	for ci, f := range cases {
		if _, sat := Solve(f); !sat {
			t.Fatalf("case %d: formula unexpectedly UNSAT", ci)
		}
		r, err := Reduce(f)
		if err != nil {
			t.Fatal(err)
		}
		in, err := r.Instance()
		if err != nil {
			t.Fatal(err)
		}
		exact, err := in.Exhaustive(core.FixedLambda(r.Lambda))
		if err != nil {
			t.Fatalf("case %d: exhaustive: %v", ci, err)
		}
		if exact.Size() > r.Budget {
			t.Errorf("case %d (%v): SAT but min cover %d > budget %d", ci, f, exact.Size(), r.Budget)
		}
	}
}

func TestPaperReductionCounterexample(t *testing.T) {
	// Documented reproduction finding: Lemma 1's (⇐) direction fails as
	// published. For the UNSAT formula (x1)∧(¬x1), the reduced instance
	// admits a 6-post cover (budget is 7) because boundary posts at times 1
	// and 2m+3 carry u_i/ū_i and can anchor the chains, contradicting the
	// proof's claim that m+1 chain posts must all sit at even times.
	f := &Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	if _, sat := Solve(f); sat {
		t.Fatal("formula should be UNSAT")
	}
	r, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	in, err := r.Instance()
	if err != nil {
		t.Fatal(err)
	}
	// The explicit 6-cover: u side at times {1, 3, 6}, ū side at {2, 5, 7}.
	// (3,·,0) is U_11 = {u, c1} (x1 ∈ C1); (5,·,1) is Ū_12 = {ū, c2}
	// (¬x1 ∈ C2).
	ids := []int64{
		postID(1, 1, 0), postID(1, 3, 0), postID(1, 6, 0),
		postID(1, 2, 1), postID(1, 5, 1), postID(1, 7, 1),
	}
	sel := indexesOf(t, in, ids)
	if err := in.VerifyCover(core.FixedLambda(r.Lambda), sel); err != nil {
		t.Fatalf("the counterexample cover should be valid: %v", err)
	}
	if len(sel) >= r.Budget {
		t.Fatalf("counterexample cover size %d not below budget %d", len(sel), r.Budget)
	}
	// And the exact solver agrees the optimum is 6 ≤ budget despite UNSAT.
	exact, err := in.Exhaustive(core.FixedLambda(r.Lambda))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Size() != 6 {
		t.Errorf("exact minimum = %d, want 6", exact.Size())
	}
}

func TestSetCoverReductionEquivalence(t *testing.T) {
	// The degenerate same-timestamp reduction is exactly set cover; check
	// min MQDP cover == min set cover on random instances.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 80; trial++ {
		numElements := 1 + rng.Intn(6)
		numSets := 1 + rng.Intn(6)
		sets := make([][]core.Label, numSets)
		coveredAll := make([]bool, numElements)
		for s := range sets {
			for e := 0; e < numElements; e++ {
				if rng.Intn(2) == 0 {
					sets[s] = append(sets[s], core.Label(e))
					coveredAll[e] = true
				}
			}
		}
		posts, err := SetCoverReduce(sets, numElements)
		if err != nil {
			t.Fatal(err)
		}
		in, err := core.NewInstance(posts, numElements)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := in.Exhaustive(core.FixedLambda(0))
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force minimum set cover of the elements that occur at all.
		best := numSets + 1
		for mask := 0; mask < 1<<numSets; mask++ {
			covered := make([]bool, numElements)
			size := 0
			for s := 0; s < numSets; s++ {
				if mask&(1<<s) != 0 {
					size++
					for _, e := range sets[s] {
						covered[e] = true
					}
				}
			}
			ok := true
			for e := 0; e < numElements; e++ {
				if coveredAll[e] && !covered[e] {
					ok = false
					break
				}
			}
			// Every post (set) must also be covered: a selected or
			// unselected post's labels are covered iff its elements are.
			if ok && size < best {
				best = size
			}
		}
		if exact.Size() != best {
			t.Fatalf("trial %d: MQDP min %d != set-cover min %d (sets=%v)", trial, exact.Size(), best, sets)
		}
	}
}

func TestSetCoverReduceValidation(t *testing.T) {
	if _, err := SetCoverReduce([][]core.Label{{5}}, 2); err == nil {
		t.Error("out-of-range element accepted")
	}
	if _, err := SetCoverReduce(nil, -1); err == nil {
		t.Error("negative element count accepted")
	}
	posts, err := SetCoverReduce([][]core.Label{{0, 1}, {1}}, 2)
	if err != nil || len(posts) != 2 {
		t.Errorf("SetCoverReduce = %v, %v", posts, err)
	}
}

func TestReduceRejectsBadInput(t *testing.T) {
	if _, err := Reduce(&Formula{NumVars: 0, Clauses: []Clause{}}); err == nil {
		t.Error("Reduce accepted a formula without variables")
	}
	if _, err := Reduce(&Formula{NumVars: 1, Clauses: []Clause{{}}}); err == nil {
		t.Error("Reduce accepted an empty clause")
	}
}

func TestCoverFromAssignmentRejectsNonSatisfying(t *testing.T) {
	f := &Formula{NumVars: 1, Clauses: []Clause{{1}}}
	r, err := Reduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CoverFromAssignment([]bool{false, false}); err == nil {
		t.Error("non-satisfying assignment accepted")
	}
	if _, err := r.CoverFromAssignment([]bool{false}); err == nil {
		t.Error("short assignment accepted")
	}
}

// indexesOf maps post IDs to instance indexes.
func indexesOf(t *testing.T, in *core.Instance, ids []int64) []int {
	t.Helper()
	byID := make(map[int64]int, in.Len())
	for i := 0; i < in.Len(); i++ {
		byID[in.Post(i).ID] = i
	}
	sel := make([]int, 0, len(ids))
	for _, id := range ids {
		idx, ok := byID[id]
		if !ok {
			t.Fatalf("cover references unknown post %d", id)
		}
		sel = append(sel, idx)
	}
	return sel
}
