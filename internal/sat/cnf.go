// Package sat provides CNF formulas, a DPLL satisfiability solver and the
// paper's Lemma 1 reduction from CNF-SAT to MQDP. The reduction is both the
// NP-hardness proof artifact and a test oracle: a formula is satisfiable iff
// the reduced MQDP instance has a λ-cover of cardinality n(2m+3).
package sat

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Literal encodes variable v (1-based) as +v and its negation as -v.
type Literal int

// Var returns the literal's variable.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is unnegated.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// ErrBadFormula reports structurally invalid formulas.
var ErrBadFormula = errors.New("sat: invalid formula")

// Validate checks literal ranges and non-empty clauses.
func (f *Formula) Validate() error {
	if f.NumVars < 0 {
		return fmt.Errorf("%w: negative variable count", ErrBadFormula)
	}
	for ci, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("%w: clause %d is empty", ErrBadFormula, ci)
		}
		for _, l := range c {
			if l == 0 || l.Var() > f.NumVars {
				return fmt.Errorf("%w: clause %d literal %d out of range", ErrBadFormula, ci, l)
			}
		}
	}
	return nil
}

// Eval evaluates the formula under assign, where assign[v] is variable v's
// value (index 0 unused).
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders the formula like (x1 ∨ ¬x2) ∧ (x2 ∨ x3).
func (f *Formula) String() string {
	var b strings.Builder
	for ci, c := range f.Clauses {
		if ci > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteByte('(')
		for li, l := range c {
			if li > 0 {
				b.WriteString(" ∨ ")
			}
			if !l.Positive() {
				b.WriteString("¬")
			}
			fmt.Fprintf(&b, "x%d", l.Var())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// ParseDIMACS reads a formula in the standard DIMACS CNF format: comment
// lines start with 'c', a header "p cnf <vars> <clauses>" precedes
// zero-terminated clause lines.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	f := &Formula{NumVars: -1}
	var cur Clause
	declared := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("%w: bad problem line %q", ErrBadFormula, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("%w: bad problem line %q", ErrBadFormula, line)
			}
			f.NumVars, declared = nv, nc
			continue
		}
		if f.NumVars < 0 {
			return nil, fmt.Errorf("%w: clause before problem line", ErrBadFormula)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("%w: bad literal %q", ErrBadFormula, tok)
			}
			if v == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			cur = append(cur, Literal(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		f.Clauses = append(f.Clauses, cur)
	}
	if f.NumVars < 0 {
		return nil, fmt.Errorf("%w: missing problem line", ErrBadFormula)
	}
	if declared >= 0 && len(f.Clauses) != declared {
		return nil, fmt.Errorf("%w: declared %d clauses, found %d", ErrBadFormula, declared, len(f.Clauses))
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
