package sat_test

import (
	"fmt"

	"mqdp/internal/sat"
)

func ExampleSolve() {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x2) is satisfied by x2 = true.
	f := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{1, 2}, {-1, 2}}}
	assign, ok := sat.Solve(f)
	fmt.Println(ok, f.Eval(assign))

	unsat := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1}, {-1}}}
	_, ok = sat.Solve(unsat)
	fmt.Println(ok)
	// Output:
	// true true
	// false
}

func ExampleReduce() {
	f := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1}}}
	r, err := sat.Reduce(f)
	if err != nil {
		panic(err)
	}
	fmt.Printf("posts=%d labels=%d budget=%d\n", len(r.Posts), r.NumLabels, r.Budget)
	// Output:
	// posts=10 labels=4 budget=5
}
