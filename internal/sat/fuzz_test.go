package sat

import (
	"strings"
	"testing"
)

func FuzzParseDIMACS(f *testing.F) {
	for _, seed := range []string{
		"p cnf 3 2\n1 -2 0\n2 3 0\n",
		"c comment\np cnf 1 1\n1 0\n",
		"p cnf 0 0\n",
		"p cnf -1 0\n",
		"garbage",
		"p cnf 2 1\n1 2",
		"p cnf 1 1\n0\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		formula, err := ParseDIMACS(strings.NewReader(src)) // must not panic
		if err != nil {
			return
		}
		// Every successfully parsed formula must validate, stringify and
		// survive the solver without panicking.
		if verr := formula.Validate(); verr != nil {
			t.Fatalf("parsed formula fails validation: %v (src %q)", verr, src)
		}
		_ = formula.String()
		if formula.NumVars <= 12 && len(formula.Clauses) <= 16 {
			if assign, ok := Solve(formula); ok && !formula.Eval(assign) {
				t.Fatalf("solver returned non-satisfying assignment for %q", src)
			}
		}
	})
}
