package core

import (
	"errors"
	"fmt"
	"time"
)

// ErrExhaustiveTooLarge is returned when an instance is too big for the
// exhaustive solver.
var ErrExhaustiveTooLarge = errors.New("core: instance too large for exhaustive search")

// maxExhaustivePosts bounds the exhaustive solver; above this the search
// tree is hopeless and callers should use OPT or an approximation.
const maxExhaustivePosts = 64

// Exhaustive solves MQDP exactly by branch-and-bound over the underlying
// set-cover structure: it repeatedly branches on the uncovered (post, label)
// pair with the fewest candidate coverers. It accepts any LambdaModel
// (including directional per-post radii, unlike OPT) but is only feasible
// for tiny instances; it exists as ground truth for validating OPT and for
// the proportional-diversity tests.
func (in *Instance) Exhaustive(m LambdaModel) (*Cover, error) {
	start := time.Now()
	if in.Len() > maxExhaustivePosts {
		return nil, fmt.Errorf("%w: %d posts > %d", ErrExhaustiveTooLarge, in.Len(), maxExhaustivePosts)
	}
	// Enumerate the universe of (post, label) pairs and their coverers.
	type pair struct {
		post  int
		label Label
	}
	var pairs []pair
	for i := range in.posts {
		for _, a := range in.posts[i].Labels {
			pairs = append(pairs, pair{i, a})
		}
	}
	coverers := make([][]int, len(pairs)) // coverers[u] = posts covering pair u
	coversOf := make([][]int, in.Len())   // coversOf[i] = pair ids post i covers
	for u, pr := range pairs {
		lp := in.byLabel[pr.label]
		maxR := m.Max()
		v := in.posts[pr.post].Value
		from, to := in.windowInLabel(pr.label, v-maxR, v+maxR)
		for k := from; k < to; k++ {
			i := int(lp[k])
			if in.Covers(m, i, pr.post, pr.label) {
				coverers[u] = append(coverers[u], i)
				coversOf[i] = append(coversOf[i], u)
			}
		}
	}

	// Upper bound: the better of Scan and GreedySC.
	best := in.Scan(m).Selected
	if g := in.GreedySC(m); len(g.Selected) < len(best) {
		best = g.Selected
	}
	bestSize := len(best)

	uncovered := len(pairs)
	coverCount := make([]int, len(pairs)) // selected posts covering pair u
	inSel := make([]bool, in.Len())
	var sel []int

	maxSetSize := 1
	for i := range coversOf {
		if len(coversOf[i]) > maxSetSize {
			maxSetSize = len(coversOf[i])
		}
	}

	var search func()
	search = func() {
		if uncovered == 0 {
			if len(sel) < bestSize {
				bestSize = len(sel)
				best = append([]int(nil), sel...)
			}
			return
		}
		// Lower bound: each further post covers ≤ maxSetSize new pairs.
		need := (uncovered + maxSetSize - 1) / maxSetSize
		if len(sel)+need >= bestSize {
			return
		}
		// Branch on the uncovered pair with the fewest unselected coverers.
		branch, branchOptions := -1, 0
		for u := range pairs {
			if coverCount[u] > 0 {
				continue
			}
			options := 0
			for _, i := range coverers[u] {
				if !inSel[i] {
					options++
				}
			}
			if branch == -1 || options < branchOptions {
				branch, branchOptions = u, options
			}
			if options <= 1 {
				break
			}
		}
		if branchOptions == 0 {
			return // infeasible branch (cannot happen from the root)
		}
		for _, i := range coverers[branch] {
			if inSel[i] {
				continue
			}
			inSel[i] = true
			sel = append(sel, i)
			for _, u := range coversOf[i] {
				if coverCount[u] == 0 {
					uncovered--
				}
				coverCount[u]++
			}
			search()
			for _, u := range coversOf[i] {
				coverCount[u]--
				if coverCount[u] == 0 {
					uncovered++
				}
			}
			sel = sel[:len(sel)-1]
			inSel[i] = false
		}
	}
	search()
	return &Cover{
		Selected:  normalizeSelected(append([]int(nil), best...)),
		Algorithm: "Exhaustive",
		Elapsed:   time.Since(start),
		Optimal:   true,
	}, nil
}
