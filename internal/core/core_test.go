package core

import (
	"math"
	"testing"
)

// mk builds a post with the given value and labels.
func mk(id int64, v float64, labels ...Label) Post {
	return Post{ID: id, Value: v, Labels: labels}
}

// inst builds an instance from posts, panicking on invalid input.
func inst(t *testing.T, numLabels int, posts ...Post) *Instance {
	t.Helper()
	in, err := NewInstance(posts, numLabels)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}

func TestDictionaryIntern(t *testing.T) {
	var d Dictionary
	a := d.Intern("obama")
	b := d.Intern("economy")
	if a == b {
		t.Fatalf("distinct names interned to same label %d", a)
	}
	if got := d.Intern("obama"); got != a {
		t.Errorf("re-intern obama = %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if d.Name(a) != "obama" || d.Name(b) != "economy" {
		t.Errorf("Name round-trip failed: %q %q", d.Name(a), d.Name(b))
	}
	if _, ok := d.Lookup("senate"); ok {
		t.Error("Lookup of uninterned name succeeded")
	}
	if id, ok := d.Lookup("economy"); !ok || id != b {
		t.Errorf("Lookup(economy) = %d,%v want %d,true", id, ok, b)
	}
	if got := d.Names(); len(got) != 2 || got[0] != "obama" {
		t.Errorf("Names() = %v", got)
	}
}

func TestNewInstanceSortsAndDeduplicates(t *testing.T) {
	in := inst(t, 3,
		mk(3, 5.0, 2, 0, 2, 0), // duplicates dropped, labels sorted
		mk(1, 1.0, 1),
		mk(2, 3.0, 0),
	)
	if in.Len() != 3 {
		t.Fatalf("Len = %d, want 3", in.Len())
	}
	wantOrder := []int64{1, 2, 3}
	for i, id := range wantOrder {
		if got := in.Post(i).ID; got != id {
			t.Errorf("post %d has ID %d, want %d", i, got, id)
		}
	}
	if got := in.Post(2).Labels; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("post 3 labels = %v, want [0 2]", got)
	}
	if lp := in.LabelPosts(0); len(lp) != 2 || lp[0] != 1 || lp[1] != 2 {
		t.Errorf("LP(0) = %v, want [1 2]", lp)
	}
	if lp := in.LabelPosts(1); len(lp) != 1 || lp[0] != 0 {
		t.Errorf("LP(1) = %v, want [0]", lp)
	}
}

func TestNewInstanceStableTieOrder(t *testing.T) {
	in := inst(t, 1, mk(20, 1.0, 0), mk(10, 1.0, 0))
	if in.Post(0).ID != 10 || in.Post(1).ID != 20 {
		t.Errorf("equal-value posts not ordered by ID: %d then %d", in.Post(0).ID, in.Post(1).ID)
	}
}

func TestNewInstanceRejectsBadInput(t *testing.T) {
	cases := []struct {
		name      string
		posts     []Post
		numLabels int
	}{
		{"nan value", []Post{mk(1, math.NaN(), 0)}, 1},
		{"pos inf", []Post{mk(1, math.Inf(1), 0)}, 1},
		{"neg inf", []Post{mk(1, math.Inf(-1), 0)}, 1},
		{"label out of range", []Post{mk(1, 0, 5)}, 2},
		{"negative label", []Post{mk(1, 0, -1)}, 2},
		{"negative label count", []Post{mk(1, 0, 0)}, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewInstance(tc.posts, tc.numLabels); err == nil {
				t.Errorf("NewInstance accepted %s", tc.name)
			}
		})
	}
}

func TestEmptyInstance(t *testing.T) {
	in := inst(t, 2)
	if in.Len() != 0 || in.Pairs() != 0 || in.OverlapRate() != 0 || in.MaxLabelsPerPost() != 0 {
		t.Errorf("empty instance stats: len=%d pairs=%d overlap=%v s=%d",
			in.Len(), in.Pairs(), in.OverlapRate(), in.MaxLabelsPerPost())
	}
	for _, c := range []*Cover{in.Scan(FixedLambda(1)), in.ScanPlus(FixedLambda(1), OrderByID), in.GreedySC(FixedLambda(1))} {
		if c.Size() != 0 {
			t.Errorf("%s on empty instance returned %d posts", c.Algorithm, c.Size())
		}
	}
	if c, err := in.OPT(1, nil); err != nil || c.Size() != 0 {
		t.Errorf("OPT on empty instance: %v size=%d", err, c.Size())
	}
}

func TestUnlabeledPostsAreVacuouslyCovered(t *testing.T) {
	in := inst(t, 1, mk(1, 0.0), mk(2, 10.0, 0))
	lm := FixedLambda(1)
	for _, c := range []*Cover{in.Scan(lm), in.GreedySC(lm)} {
		if c.Size() != 1 {
			t.Errorf("%s = %d posts, want 1 (unlabeled post needs no cover)", c.Algorithm, c.Size())
		}
		if err := in.VerifyCover(lm, c.Selected); err != nil {
			t.Errorf("%s cover invalid: %v", c.Algorithm, err)
		}
	}
	opt, err := in.OPT(1, nil)
	if err != nil || opt.Size() != 1 {
		t.Errorf("OPT = %d, %v; want 1 post", opt.Size(), err)
	}
}

func TestOverlapRateAndPairs(t *testing.T) {
	in := inst(t, 3,
		mk(1, 0, 0),
		mk(2, 1, 0, 1),
		mk(3, 2, 0, 1, 2),
		mk(4, 3), // unlabeled: excluded from overlap rate
	)
	if got := in.Pairs(); got != 6 {
		t.Errorf("Pairs = %d, want 6", got)
	}
	if got := in.OverlapRate(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("OverlapRate = %v, want 2.0", got)
	}
	if got := in.MaxLabelsPerPost(); got != 3 {
		t.Errorf("MaxLabelsPerPost = %d, want 3", got)
	}
}

func TestWindowInLabel(t *testing.T) {
	in := inst(t, 1, mk(1, 1, 0), mk(2, 2, 0), mk(3, 5, 0), mk(4, 9, 0))
	cases := []struct {
		lo, hi   float64
		from, to int
	}{
		{0, 10, 0, 4},
		{2, 5, 1, 3},
		{2.5, 4.9, 2, 2}, // empty
		{5, 5, 2, 3},     // inclusive bounds
		{10, 20, 4, 4},
		{-5, 0, 0, 0},
	}
	for _, tc := range cases {
		from, to := in.windowInLabel(0, tc.lo, tc.hi)
		if from != tc.from || to != tc.to {
			t.Errorf("windowInLabel(%v,%v) = [%d,%d), want [%d,%d)", tc.lo, tc.hi, from, to, tc.from, tc.to)
		}
	}
}

func TestHasLabel(t *testing.T) {
	labels := []Label{1, 3, 5, 9}
	for _, a := range labels {
		if !hasLabel(labels, a) {
			t.Errorf("hasLabel(%v, %d) = false", labels, a)
		}
	}
	for _, a := range []Label{0, 2, 4, 8, 10} {
		if hasLabel(labels, a) {
			t.Errorf("hasLabel(%v, %d) = true", labels, a)
		}
	}
	if hasLabel(nil, 0) {
		t.Error("hasLabel(nil, 0) = true")
	}
}
