package core

import (
	"strconv"
	"sync/atomic"
	"time"

	"mqdp/internal/obs"
)

// coreObs bundles the solver instruments. A nil pointer is the disabled
// state: solvers pay one atomic load and one branch per solve, nothing per
// inner-loop iteration (work counters accumulate in locals and flush once).
type coreObs struct {
	scanSweep      *obs.Histogram // Scan: per-label candidate sweeps
	scanSelect     *obs.Histogram // Scan: merge/normalize of the selection
	scanPlusSweep  *obs.Histogram
	scanPlusSelect *obs.Histogram
	greedySweep    *obs.Histogram // GreedySC: initial gain sweep
	greedySelect   *obs.Histogram // GreedySC: selection loop
	solves         *obs.Counter
	postsScanned   *obs.Counter // candidate positions examined by Scan/Scan+
	gains          *obs.Counter // gain evaluations by GreedySC
	heapOps        *obs.Counter // lazy-heap pushes/pops by GreedySC
	tracer         *obs.Tracer
}

var obsState atomic.Pointer[coreObs]

// SetObs wires the solver instruments into r; nil disables instrumentation.
// Wire once at startup, before traffic (the pointer swap itself is atomic,
// so late wiring is safe, just lossy for in-flight solves). The attached
// tracer, if any, is captured here — attach it to r first.
func SetObs(r *obs.Registry) {
	if r == nil {
		obsState.Store(nil)
		return
	}
	obsState.Store(&coreObs{
		scanSweep:      r.Histogram("mqdp_core_scan_sweep_seconds", "Scan candidate-sweep phase (all per-label passes)", obs.TimeBuckets),
		scanSelect:     r.Histogram("mqdp_core_scan_select_seconds", "Scan selection merge/normalize phase", obs.TimeBuckets),
		scanPlusSweep:  r.Histogram("mqdp_core_scanplus_sweep_seconds", "Scan+ candidate-sweep phase (cross-label removal included)", obs.TimeBuckets),
		scanPlusSelect: r.Histogram("mqdp_core_scanplus_select_seconds", "Scan+ selection merge/normalize phase", obs.TimeBuckets),
		greedySweep:    r.Histogram("mqdp_core_greedysc_sweep_seconds", "GreedySC initial gain sweep", obs.TimeBuckets),
		greedySelect:   r.Histogram("mqdp_core_greedysc_select_seconds", "GreedySC selection loop", obs.TimeBuckets),
		solves:         r.Counter("mqdp_core_solves_total", "offline solver invocations"),
		postsScanned:   r.Counter("mqdp_core_posts_scanned_total", "candidate positions examined by Scan/Scan+"),
		gains:          r.Counter("mqdp_core_gains_recomputed_total", "gain evaluations by GreedySC (initial sweep + re-evaluations)"),
		heapOps:        r.Counter("mqdp_core_heap_ops_total", "lazy-heap operations by GreedySC"),
		tracer:         r.Tracer(),
	})
}

// startSpan opens a solver span when a tracer is wired, else returns nil
// (every ActiveSpan method no-ops on nil).
func (o *coreObs) startSpan(name string) *obs.ActiveSpan {
	if o == nil {
		return nil
	}
	return o.tracer.Start(name)
}

// endSolveSpan annotates and closes a solver span.
func endSolveSpan(span *obs.ActiveSpan, in *Instance, workers, coverSize int) {
	if span == nil {
		return
	}
	span.SetInt("posts", int64(in.Len()))
	span.SetInt("labels", int64(in.numLabels))
	span.Set("workers", strconv.Itoa(workers))
	span.SetInt("cover_size", int64(coverSize))
	span.End()
}

// observeScanPhases records the two Scan/Scan+ phase durations and the
// candidate-sweep work counter.
func (o *coreObs) observeScanPhases(sweepH, selectH *obs.Histogram, start, sweepEnd time.Time, scanned int64) {
	sweepH.Observe(sweepEnd.Sub(start).Seconds())
	selectH.ObserveSince(sweepEnd)
	o.postsScanned.Add(scanned)
	o.solves.Inc()
}
