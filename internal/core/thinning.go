package core

import (
	"math"
	"time"
)

// coverFromBitmap converts a selected bitmap to a Cover.
func coverFromBitmap(name string, start time.Time, selected []bool) *Cover {
	sel := make([]int, 0, 16)
	for i, ok := range selected {
		if ok {
			sel = append(sel, i)
		}
	}
	return &Cover{Selected: sel, Algorithm: name, Elapsed: time.Since(start)}
}

// BucketThinning is the naive baseline the paper's algorithms implicitly
// compete with: partition the diversity dimension into aligned buckets of
// width λ and keep one post per (label, non-empty bucket). Any two posts in
// the same bucket are within λ, so the result is always a valid λ-cover —
// but it ignores cross-label sharing and bucket boundaries, so it selects
// substantially more posts than Scan, let alone GreedySC. It exists as the
// ablation reference point ("what does the simplest correct filter cost?").
func (in *Instance) BucketThinning(lambda float64) *Cover {
	start := time.Now()
	selected := make([]bool, len(in.posts))
	if lambda <= 0 {
		// Degenerate: every labeled post is its own bucket.
		for i := range in.posts {
			if len(in.posts[i].Labels) > 0 {
				selected[i] = true
			}
		}
		return coverFromBitmap("BucketThinning", start, selected)
	}
	for a := 0; a < in.numLabels; a++ {
		lastBucket := int64(math.MinInt64)
		for _, pi := range in.byLabel[a] {
			b := int64(math.Floor(in.posts[pi].Value / lambda))
			if b != lastBucket {
				selected[pi] = true
				lastBucket = b
			}
		}
	}
	return coverFromBitmap("BucketThinning", start, selected)
}
