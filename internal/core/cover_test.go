package core

import (
	"errors"
	"testing"
)

// figure2 builds the paper's Figure 2 instance: four posts ∆t apart with
// label sets {a}, {a}, {a,c}, {c}; label 0 = a, label 1 = c.
func figure2(t *testing.T) *Instance {
	return inst(t, 2,
		mk(1, 1, 0),
		mk(2, 2, 0),
		mk(3, 3, 0, 1),
		mk(4, 4, 1),
	)
}

func TestFigure2CoverageRelations(t *testing.T) {
	in := figure2(t)
	lm := FixedLambda(1) // λ = ∆t
	const a, c = Label(0), Label(1)
	// Example 1 relations (post index = position in dimension order).
	cases := []struct {
		i, j int
		lab  Label
		want bool
	}{
		{1, 0, a, true},  // P2 covers a∈P1
		{1, 2, a, true},  // P2 covers a∈P3
		{0, 1, a, true},  // P1 covers a∈P2
		{2, 1, a, true},  // P3 covers a∈P2
		{2, 3, c, true},  // P3 covers c∈P4
		{3, 2, c, true},  // P4 covers c∈P3
		{0, 2, a, false}, // 2∆t apart
		{3, 0, a, false}, // 3∆t apart (and P4 lacks a anyway)
	}
	for _, tc := range cases {
		if got := in.Covers(lm, tc.i, tc.j, tc.lab); got != tc.want {
			t.Errorf("Covers(P%d→P%d, label %d) = %v, want %v", tc.i+1, tc.j+1, tc.lab, got, tc.want)
		}
	}
}

func TestExample2Cover(t *testing.T) {
	in := figure2(t)
	lm := FixedLambda(1)
	// Example 2: {P2, P4} λ-covers P.
	if err := in.VerifyCover(lm, []int{1, 3}); err != nil {
		t.Errorf("{P2,P4} should cover Figure 2 instance: %v", err)
	}
	// {P2} does not: c∈P3 and c∈P4 uncovered.
	err := in.VerifyCover(lm, []int{1})
	if err == nil {
		t.Fatal("{P2} reported as a cover")
	}
	var ce *CoverageError
	if !errors.As(err, &ce) {
		t.Fatalf("error type %T, want *CoverageError", err)
	}
	if ce.Label != 1 {
		t.Errorf("uncovered label = %d, want 1 (c)", ce.Label)
	}
	// {P1, P3} covers everything: P3 handles both labels around it.
	if err := in.VerifyCover(lm, []int{0, 2}); err != nil {
		t.Errorf("{P1,P3} should also be a cover: %v", err)
	}
	// The optimum is 2: no single post covers both a∈P1 and c∈P4.
	opt, err := in.OPT(1, nil)
	if err != nil {
		t.Fatalf("OPT: %v", err)
	}
	if opt.Size() != 2 {
		t.Errorf("OPT size = %d, want 2", opt.Size())
	}
}

func TestVerifyCoverRejectsBadIndexes(t *testing.T) {
	in := figure2(t)
	if err := in.VerifyCover(FixedLambda(1), []int{-1}); err == nil {
		t.Error("negative index accepted")
	}
	if err := in.VerifyCover(FixedLambda(1), []int{99}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestVerifyCoverEmptySelectionOnNonEmptyInstance(t *testing.T) {
	in := figure2(t)
	if err := in.VerifyCover(FixedLambda(1), nil); err == nil {
		t.Error("empty selection accepted for labeled posts")
	}
}

func TestCoverAccessors(t *testing.T) {
	in := figure2(t)
	c := &Cover{Selected: []int{1, 3}, Algorithm: "test"}
	if c.Size() != 2 {
		t.Errorf("Size = %d", c.Size())
	}
	ids := c.IDs(in)
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 4 {
		t.Errorf("IDs = %v, want [2 4]", ids)
	}
	posts := c.Posts(in)
	if len(posts) != 2 || posts[0].Value != 2 || posts[1].Value != 4 {
		t.Errorf("Posts = %v", posts)
	}
}

func TestNormalizeSelected(t *testing.T) {
	got := normalizeSelected([]int{5, 1, 3, 1, 5, 5})
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("normalizeSelected = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalizeSelected = %v, want %v", got, want)
		}
	}
}

func TestVerifyCoverDirectionalRadii(t *testing.T) {
	// Post at value 0 has a big radius; post at value 10 a tiny one.
	// Under a directional model the big post covers the small one but not
	// vice versa.
	in := inst(t, 1, mk(1, 0, 0), mk(2, 10, 0))
	big := customLambda{radius: map[int]float64{0: 10, 1: 0.5}}
	if !in.Covers(big, 0, 1, 0) {
		t.Error("post 0 (radius 10) should cover post 1")
	}
	if in.Covers(big, 1, 0, 0) {
		t.Error("post 1 (radius 0.5) should not cover post 0")
	}
	if err := in.VerifyCover(big, []int{0}); err != nil {
		t.Errorf("post 0 alone covers both posts, got %v", err)
	}
	// Selecting only post 1: post 0 uncovered (post 1's radius too small).
	if err := in.VerifyCover(big, []int{1}); err == nil {
		t.Error("post 0 should be uncovered when only post 1 is selected")
	}
}

// customLambda is a directional test model with explicit per-post radii.
type customLambda struct {
	radius map[int]float64
}

func (c customLambda) Lambda(i int, _ Label) float64 { return c.radius[i] }
func (c customLambda) Max() float64 {
	m := 0.0
	for _, r := range c.radius {
		if r > m {
			m = r
		}
	}
	return m
}
