package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestWindowExtraction(t *testing.T) {
	in := inst(t, 2,
		mk(1, 0, 0), mk(2, 5, 1), mk(3, 10, 0, 1), mk(4, 15, 0),
	)
	sub, mapping, err := in.Window(4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 {
		t.Fatalf("window holds %d posts, want 2", sub.Len())
	}
	if sub.NumLabels() != 2 {
		t.Errorf("label space shrank to %d", sub.NumLabels())
	}
	if in.Post(mapping[0]).ID != 2 || in.Post(mapping[1]).ID != 3 {
		t.Errorf("mapping = %v", mapping)
	}
	if _, _, err := in.Window(5, 4); err == nil {
		t.Error("inverted window accepted")
	}
	if _, _, err := in.Window(math.NaN(), 4); err == nil {
		t.Error("NaN window accepted")
	}
	empty, _, err := in.Window(100, 200)
	if err != nil || empty.Len() != 0 {
		t.Errorf("out-of-range window = %d posts, %v", empty.Len(), err)
	}
}

func TestSolveWindowsUnionIsValidCover(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 60, 3, 100)
		lambda := float64(2 + rng.Intn(6))
		width := float64(10 + rng.Intn(30))
		lm := FixedLambda(lambda)
		windows, err := in.SolveWindows(width, func(sub *Instance) (*Cover, error) {
			return sub.GreedySC(lm), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		union := UnionSelected(windows)
		if err := in.VerifyCover(lm, union); err != nil {
			t.Fatalf("trial %d: window union not a cover: %v", trial, err)
		}
		// The union is at least as large as one global solve.
		if global := in.GreedySC(lm); len(union) < global.Size() {
			// Possible in principle (greedy is not optimal), but each
			// window's posts are covered within the window, so the union
			// must also be ≥ the true optimum; compare against OPT-free
			// sanity only when it triggers.
			t.Logf("trial %d: union %d smaller than global greedy %d (greedy non-optimality)",
				trial, len(union), global.Size())
		}
		// Every window's selection stays inside its bounds.
		for _, w := range windows {
			for _, i := range w.Cover.Selected {
				v := in.Post(i).Value
				if v < w.Lo || v >= w.Hi {
					t.Fatalf("trial %d: selected value %v outside window [%v, %v)", trial, v, w.Lo, w.Hi)
				}
			}
		}
	}
}

func TestSolveWindowsValidation(t *testing.T) {
	in := inst(t, 1, mk(1, 0, 0))
	if _, err := in.SolveWindows(0, nil); err == nil {
		t.Error("zero width accepted")
	}
	empty := inst(t, 1)
	ws, err := empty.SolveWindows(10, func(sub *Instance) (*Cover, error) {
		return sub.Scan(FixedLambda(1)), nil
	})
	if err != nil || ws != nil {
		t.Errorf("empty instance windows = %v, %v", ws, err)
	}
}

func TestSolveWindowsPropagatesSolverErrors(t *testing.T) {
	in := inst(t, 1, mk(1, 0, 0))
	_, err := in.SolveWindows(10, func(*Instance) (*Cover, error) {
		return nil, ErrOPTTooLarge
	})
	if err == nil {
		t.Error("solver error swallowed")
	}
}
