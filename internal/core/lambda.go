package core

import (
	"errors"
	"fmt"
	"math"
)

// LambdaModel supplies the coverage radius λ of a post for one of its labels.
// With a fixed model, coverage is symmetric: Pi covers a∈Pj iff
// |v_i − v_j| ≤ λ. With a per-post model (Section 6 of the paper), coverage
// becomes directional: Pi λ-covers a∈Pj iff |v_i − v_j| ≤ Lambda(i, a),
// i.e. the radius of the *covering* post decides.
type LambdaModel interface {
	// Lambda returns the coverage radius of the post at index i (in
	// instance dimension order) for label a. Only called when post i
	// actually carries label a.
	Lambda(i int, a Label) float64
	// Max returns an upper bound on Lambda over all posts and labels;
	// used to bound candidate windows during scans.
	Max() float64
}

// FixedLambda is the classic single-threshold model of Problems 1 and 2.
type FixedLambda float64

// Lambda implements LambdaModel.
func (f FixedLambda) Lambda(int, Label) float64 { return float64(f) }

// Max implements LambdaModel.
func (f FixedLambda) Max() float64 { return float64(f) }

// Covers reports whether the post at index i λ-covers label a of the post at
// index j under model m. Both posts must carry a (not rechecked here).
func (in *Instance) Covers(m LambdaModel, i, j int, a Label) bool {
	return math.Abs(in.posts[i].Value-in.posts[j].Value) <= m.Lambda(i, a)
}

// ProportionalLambda implements Equation 2 of the paper: a per-(post, label)
// threshold that shrinks in dense regions and grows in sparse ones,
//
//	λ_a(P_i) = λ0 · exp(1 − density_a(v_i−λ0, v_i+λ0) / density0)
//
// where density_a is the number of label-a posts per unit of the diversity
// dimension inside the window, and density0 is the average per-label density
// over the instance's full value range. The exponential damping keeps rare
// perspectives represented (radii never exceed e·λ0).
type ProportionalLambda struct {
	inst    *Instance
	lambda0 float64
	// radii[i] holds one radius per label of post i, aligned with
	// inst.Post(i).Labels.
	radii [][]float64
	max   float64
}

// ErrBadLambda reports invalid λ parameters.
var ErrBadLambda = errors.New("core: invalid lambda")

// NewProportionalLambda precomputes Equation 2 radii for every (post, label)
// incidence of inst. lambda0 must be positive.
func NewProportionalLambda(inst *Instance, lambda0 float64) (*ProportionalLambda, error) {
	if !(lambda0 > 0) || math.IsInf(lambda0, 0) {
		return nil, fmt.Errorf("%w: lambda0 = %v, need finite > 0", ErrBadLambda, lambda0)
	}
	pl := &ProportionalLambda{inst: inst, lambda0: lambda0}
	lo, hi := inst.valueRange()
	span := hi - lo
	if span <= 0 {
		span = 2 * lambda0 // degenerate: all posts at one value
	}
	// density0: average, over labels with any posts, of posts per unit value.
	var sum float64
	active := 0
	for a := 0; a < inst.numLabels; a++ {
		if n := len(inst.byLabel[a]); n > 0 {
			sum += float64(n) / span
			active++
		}
	}
	density0 := 0.0
	if active > 0 {
		density0 = sum / float64(active)
	}
	pl.radii = make([][]float64, inst.Len())
	for i := 0; i < inst.Len(); i++ {
		p := inst.Post(i)
		if len(p.Labels) == 0 {
			continue
		}
		radii := make([]float64, len(p.Labels))
		for k, a := range p.Labels {
			from, to := inst.windowInLabel(a, p.Value-lambda0, p.Value+lambda0)
			density := float64(to-from) / (2 * lambda0)
			r := lambda0 * math.E // sparse-limit radius
			if density0 > 0 {
				r = lambda0 * math.Exp(1-density/density0)
			}
			radii[k] = r
			if r > pl.max {
				pl.max = r
			}
		}
		pl.radii[i] = radii
	}
	return pl, nil
}

// Lambda implements LambdaModel. It panics if post i does not carry label a,
// which would indicate a solver bug.
func (pl *ProportionalLambda) Lambda(i int, a Label) float64 {
	labels := pl.inst.Post(i).Labels
	for k, l := range labels {
		if l == a {
			return pl.radii[i][k]
		}
	}
	panic(fmt.Sprintf("core: post %d does not carry label %d", i, a))
}

// Max implements LambdaModel.
func (pl *ProportionalLambda) Max() float64 { return pl.max }

// Lambda0 returns the base threshold the model was built with.
func (pl *ProportionalLambda) Lambda0() float64 { return pl.lambda0 }
