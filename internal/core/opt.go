package core

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// OPTOptions bound the exact dynamic program, whose state space is
// exponential in the number of labels. Zero values select defaults.
type OPTOptions struct {
	// MaxStates caps the number of distinct end-patterns kept per post.
	// Default 1 << 20.
	MaxStates int
	// MaxWork caps the total number of (predecessor, candidate) merge
	// attempts over the whole run. Default 1 << 28.
	MaxWork int64
	// Trace, when non-nil, receives DP introspection: per-post state
	// counts and the total merge work. Useful for judging feasibility
	// (§7.4: OPT is practical only for |L| ≤ 2–3 and small λ).
	Trace *OPTTrace
}

// OPTTrace records the exact DP's state-space growth.
type OPTTrace struct {
	// StatesPerPost[j] is |Ξ_j|, the end-pattern count after post j+1.
	StatesPerPost []int
	// Work is the total number of (predecessor, candidate) merges.
	Work int64
	// MaxStates is the largest layer encountered.
	MaxStates int
}

func (o *OPTOptions) withDefaults() OPTOptions {
	out := OPTOptions{MaxStates: 1 << 20, MaxWork: 1 << 28}
	if o != nil {
		if o.MaxStates > 0 {
			out.MaxStates = o.MaxStates
		}
		if o.MaxWork > 0 {
			out.MaxWork = o.MaxWork
		}
		out.Trace = o.Trace
	}
	return out
}

// ErrOPTTooLarge is returned when the DP exceeds its configured state or
// work budget; callers should fall back to GreedySC or Scan.
var ErrOPTTooLarge = errors.New("core: OPT state space exceeds configured budget")

// optState is one DP entry: an end-pattern (the latest selected post per
// label, as augmented indexes where 0 is the sentinel), its optimal
// cardinality, and the predecessor state in the previous layer.
type optState struct {
	pattern []int32
	card    int32
	parent  int32 // index into the previous layer's states; -1 for the root
}

// OPT solves MQDP exactly with the end-pattern dynamic program of §4.1
// (Algorithm 1). A sentinel post carrying every label is conceptually placed
// λ+1 before the first post; its contribution is subtracted from the answer.
// For each post P_j in dimension order the DP enumerates every valid
// j-end-pattern — the function ξ mapping each label to the latest selected
// post carrying it — and the minimum cardinality of a (λ, j)-cover realizing
// it. The run time is O(|P|^(2|L|+1)) in the worst case, so OPT is intended
// for small instances (|L| ≤ 3, short intervals), exactly as in the paper's
// evaluation; larger inputs fail fast with ErrOPTTooLarge.
//
// OPT requires a fixed λ: with per-post radii the latest selected post no
// longer bounds forward coverage, invalidating the end-pattern state (§6).
func (in *Instance) OPT(lambda float64, opts *OPTOptions) (*Cover, error) {
	start := time.Now()
	opt := opts.withDefaults()
	if lambda < 0 {
		return nil, fmt.Errorf("%w: negative lambda %v", ErrBadLambda, lambda)
	}
	n := in.Len()
	L := in.numLabels
	if n == 0 || in.Pairs() == 0 {
		return &Cover{Algorithm: "OPT", Optimal: true, Elapsed: time.Since(start)}, nil
	}

	// Augmented arrays: index 0 is the sentinel, 1..n are the posts.
	vals := make([]float64, n+1)
	vals[0] = in.posts[0].Value - lambda - 1
	for i := 0; i < n; i++ {
		vals[i+1] = in.posts[i].Value
	}
	labelsOf := func(j int) []Label {
		if j == 0 {
			return nil // sentinel: carries all labels; handled specially
		}
		return in.posts[j-1].Labels
	}
	contains := func(j int, a Label) bool {
		if j == 0 {
			return true
		}
		return hasLabel(in.posts[j-1].Labels, a)
	}
	// occ[a]: augmented indexes carrying a, ascending, sentinel first.
	occ := make([][]int32, L)
	for a := 0; a < L; a++ {
		occ[a] = append(occ[a], 0)
		for _, i := range in.byLabel[a] {
			occ[a] = append(occ[a], i+1)
		}
	}
	// f[j]: the largest index whose value is within λ above vals[j].
	f := make([]int, n+1)
	hi := 0
	for j := 0; j <= n; j++ {
		if hi < j {
			hi = j
		}
		for hi+1 <= n && vals[hi+1] <= vals[j]+lambda {
			hi++
		}
		f[j] = hi
	}
	// lastOcc(a, j): the largest occurrence of a at an index ≤ j.
	lastOcc := func(a Label, j int) int32 {
		o := occ[a]
		k := sort.Search(len(o), func(x int) bool { return o[x] > int32(j) })
		return o[k-1] // o[0] = 0 ≤ j always
	}

	// isValid reports whether pattern is a valid j-end-pattern:
	// (i) each ξ(a) is the latest pattern entry carrying a, and
	// (ii) every occurrence of a at an index ≤ j is within λ of ξ(a)
	//     (the worst case being the last such occurrence).
	isValid := func(pattern []int32, j int) bool {
		for a := 0; a < L; a++ {
			ea := pattern[a]
			for b := 0; b < L; b++ {
				if eb := pattern[b]; eb > ea && contains(int(eb), Label(a)) {
					return false
				}
			}
			if last := lastOcc(Label(a), j); vals[last] > vals[ea]+lambda {
				return false
			}
		}
		return true
	}

	type layer struct {
		states []optState
		index  map[string]int32
	}
	key := func(p []int32) string {
		b := make([]byte, 4*len(p))
		for i, v := range p {
			b[4*i] = byte(v)
			b[4*i+1] = byte(v >> 8)
			b[4*i+2] = byte(v >> 16)
			b[4*i+3] = byte(v >> 24)
		}
		return string(b)
	}

	root := optState{pattern: make([]int32, L), card: 1, parent: -1}
	prev := &layer{states: []optState{root}, index: map[string]int32{key(root.pattern): 0}}
	layers := []*layer{prev}

	var work int64
	merged := make([]int32, L)
	newPosts := make([]int32, 0, L)
	for j := 1; j <= n; j++ {
		// Candidate entries per label: 0 means "inherit from η"; fresh
		// entries are occurrences of a in [j, f(j)], which are exactly
		// the selectable posts not visible to the previous layer.
		cands := make([][]int32, L)
		total := 1
		for a := 0; a < L; a++ {
			o := occ[a]
			from := sort.Search(len(o), func(x int) bool { return o[x] >= int32(j) })
			to := sort.Search(len(o), func(x int) bool { return o[x] > int32(f[j]) })
			cands[a] = append([]int32{0}, o[from:to]...)
			total *= len(cands[a])
			if total > opt.MaxStates {
				return nil, fmt.Errorf("%w: %d candidate patterns at post %d", ErrOPTTooLarge, total, j)
			}
		}
		cur := &layer{index: make(map[string]int32)}
		choice := make([]int, L)
		jLabels := labelsOf(j)
		for {
			// Build the candidate (with zeros for inherited entries).
			cand := make([]int32, L)
			for a := 0; a < L; a++ {
				cand[a] = cands[a][choice[a]]
			}
			for pi := range prev.states {
				work++
				if work > opt.MaxWork {
					return nil, fmt.Errorf("%w: work budget exhausted at post %d", ErrOPTTooLarge, j)
				}
				eta := prev.states[pi].pattern
				newPosts = newPosts[:0]
				ok := true
				for a := 0; a < L; a++ {
					if cand[a] == 0 {
						merged[a] = eta[a]
					} else {
						merged[a] = cand[a]
						dup := false
						for _, np := range newPosts {
							if np == cand[a] {
								dup = true
								break
							}
						}
						if !dup {
							newPosts = append(newPosts, cand[a])
						}
					}
				}
				// The inherited latest post of each of P_j's labels must
				// still λ-cover that label of P_j.
				for _, a := range jLabels {
					if vals[j]-vals[merged[a]] > lambda {
						ok = false
						break
					}
				}
				if !ok || !isValid(merged, j) {
					continue
				}
				card := prev.states[pi].card + int32(len(newPosts))
				k := key(merged)
				if si, seen := cur.index[k]; seen {
					if card < cur.states[si].card {
						cur.states[si].card = card
						cur.states[si].parent = int32(pi)
					}
				} else {
					if len(cur.states) >= opt.MaxStates {
						return nil, fmt.Errorf("%w: more than %d states at post %d", ErrOPTTooLarge, opt.MaxStates, j)
					}
					cur.index[k] = int32(len(cur.states))
					cur.states = append(cur.states, optState{
						pattern: append([]int32(nil), merged...),
						card:    card,
						parent:  int32(pi),
					})
				}
			}
			// Next candidate combination (mixed-radix increment).
			a := 0
			for a < L {
				choice[a]++
				if choice[a] < len(cands[a]) {
					break
				}
				choice[a] = 0
				a++
			}
			if a == L {
				break
			}
		}
		if len(cur.states) == 0 {
			// Unreachable for λ ≥ 0: P_j can always cover itself.
			return nil, fmt.Errorf("core: OPT found no feasible pattern at post %d", j)
		}
		prev = cur
		layers = append(layers, cur)
		if opt.Trace != nil {
			opt.Trace.StatesPerPost = append(opt.Trace.StatesPerPost, len(cur.states))
			if len(cur.states) > opt.Trace.MaxStates {
				opt.Trace.MaxStates = len(cur.states)
			}
			opt.Trace.Work = work
		}
	}

	// Extract the optimum (minus the sentinel) and optionally backtrack.
	bestIdx, bestCard := -1, int32(0)
	for i := range prev.states {
		if bestIdx == -1 || prev.states[i].card < bestCard {
			bestIdx, bestCard = i, prev.states[i].card
		}
	}
	cover := &Cover{Algorithm: "OPT", Optimal: true}
	chosen := make(map[int32]bool)
	si := int32(bestIdx)
	for j := n; j >= 1; j-- {
		st := layers[j].states[si]
		for a := 0; a < L; a++ {
			if e := st.pattern[a]; e > int32(f[j-1]) {
				chosen[e] = true
			}
		}
		si = st.parent
	}
	sel := make([]int, 0, len(chosen))
	for e := range chosen {
		sel = append(sel, int(e-1))
	}
	cover.Selected = normalizeSelected(sel)
	cover.Elapsed = time.Since(start)
	if got := int32(len(cover.Selected)) + 1; got != bestCard {
		return nil, fmt.Errorf("core: OPT backtrack mismatch: cardinality %d, reconstructed %d posts", bestCard-1, len(cover.Selected))
	}
	return cover, nil
}

// OPTSize computes the optimal cover cardinality. It is a convenience
// wrapper over OPT for callers that only need the size (e.g. relative-error
// experiments).
func (in *Instance) OPTSize(lambda float64, opts *OPTOptions) (int, error) {
	cover, err := in.OPT(lambda, opts)
	if err != nil {
		return 0, err
	}
	return cover.Size(), nil
}
