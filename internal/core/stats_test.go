package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestStatsOnFigure2(t *testing.T) {
	in := figure2(t)
	lm := FixedLambda(1)
	st, err := in.Stats(lm, []int{1, 3}) // {P2, P4}
	if err != nil {
		t.Fatal(err)
	}
	if st.Posts != 4 || st.Selected != 2 {
		t.Errorf("sizes = %d/%d", st.Selected, st.Posts)
	}
	if math.Abs(st.CompressionRatio-0.5) > 1e-12 {
		t.Errorf("compression = %v", st.CompressionRatio)
	}
	if len(st.PerLabel) != 2 {
		t.Fatalf("per-label entries = %d", len(st.PerLabel))
	}
	// Label a (0): P2 is the only representative among 3 posts.
	a := st.PerLabel[0]
	if a.Posts != 3 || a.Representatives != 1 || a.MaxGap != 0 {
		t.Errorf("label a stats = %+v", a)
	}
	// Label c (1): P4 represents 2 posts.
	c := st.PerLabel[1]
	if c.Posts != 2 || c.Representatives != 1 {
		t.Errorf("label c stats = %+v", c)
	}
	if st.MaxPairDistance > 1 {
		t.Errorf("max pair distance %v exceeds λ", st.MaxPairDistance)
	}
	if st.MeanCoverers < 1 {
		t.Errorf("mean coverers %v < 1", st.MeanCoverers)
	}
}

func TestStatsRejectsNonCover(t *testing.T) {
	in := figure2(t)
	if _, err := in.Stats(FixedLambda(1), []int{0}); err == nil {
		t.Error("stats accepted a non-cover")
	}
}

func TestStatsEmptyInstance(t *testing.T) {
	in := inst(t, 1)
	st, err := in.Stats(FixedLambda(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressionRatio != 0 || st.MeanCoverers != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestStatsTightnessBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 25, 3, 40)
		lambda := float64(1 + rng.Intn(6))
		lm := FixedLambda(lambda)
		cover := in.GreedySC(lm)
		st, err := in.Stats(lm, cover.Selected)
		if err != nil {
			t.Fatal(err)
		}
		if st.MaxPairDistance > lambda+1e-9 {
			t.Fatalf("trial %d: max pair distance %v > λ %v", trial, st.MaxPairDistance, lambda)
		}
		if st.Selected > 0 && st.MeanCoverers < 1 {
			t.Fatalf("trial %d: mean coverers %v < 1", trial, st.MeanCoverers)
		}
		// Representatives per label never exceed the cover size; gaps are
		// nonnegative.
		for _, ls := range st.PerLabel {
			if ls.Representatives > st.Selected || ls.MaxGap < 0 {
				t.Fatalf("trial %d: label stats %+v", trial, ls)
			}
		}
	}
}

func TestStatsGapMeasuresSpread(t *testing.T) {
	// Representatives at 0 and 100 for a label → MaxGap 100.
	in := inst(t, 1,
		mk(1, 0, 0), mk(2, 100, 0),
	)
	st, err := in.Stats(FixedLambda(1), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.PerLabel[0].MaxGap != 100 {
		t.Errorf("MaxGap = %v, want 100", st.PerLabel[0].MaxGap)
	}
}
