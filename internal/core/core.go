// Package core implements the Multi-Query Diversification Problem (MQDP)
// from "Multi-Query Diversification in Microblogging Posts" (EDBT 2014):
// the post/label data model, λ-coverage semantics (fixed and per-post
// proportional thresholds), and the paper's four offline solvers — the exact
// end-pattern dynamic program OPT, the set-cover greedy GreedySC, and the
// linear-time Scan and Scan+ approximations — plus an exhaustive exact
// baseline used to validate OPT on small instances.
//
// Posts carry a value on an ordered "diversity dimension" (publication time,
// sentiment polarity, ...) and a set of labels (the user queries they match).
// A post Pi λ-covers label a of post Pj when both posts carry a and their
// dimension values are within Pi's coverage radius. A set Z λ-covers the
// whole collection when every post is covered on every one of its labels by
// some member of Z. MQDP asks for the minimum-cardinality such Z.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Label identifies a query (a topic, hashtag, or keyword set) in a compact
// integer space. Labels are interned from strings by a Dictionary.
type Label = int32

// Post is one microblogging post projected onto the diversification model:
// a value on the diversity dimension and the set of labels it matches.
type Post struct {
	// ID is an application-assigned identifier, preserved through sorting.
	ID int64
	// Value is the post's coordinate on the diversity dimension, e.g.
	// seconds since stream start, or sentiment polarity in [-1, 1].
	Value float64
	// Labels lists the queries this post is relevant to. Duplicates are
	// removed on instance construction.
	Labels []Label
}

// Dictionary interns string label names to dense Label values, so algorithms
// can use slices indexed by label instead of maps keyed by string.
// The zero value is ready to use.
type Dictionary struct {
	names []string
	ids   map[string]Label
}

// Intern returns the Label for name, assigning the next free id on first use.
func (d *Dictionary) Intern(name string) Label {
	if d.ids == nil {
		d.ids = make(map[string]Label)
	}
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := Label(len(d.names))
	d.names = append(d.names, name)
	d.ids[name] = id
	return id
}

// Lookup returns the Label for name without interning it.
func (d *Dictionary) Lookup(name string) (Label, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the string for a previously interned label.
// It panics if the label was never interned.
func (d *Dictionary) Name(id Label) string { return d.names[id] }

// Len reports how many labels have been interned.
func (d *Dictionary) Len() int { return len(d.names) }

// Names returns the interned names in label order. The caller must not
// modify the returned slice.
func (d *Dictionary) Names() []string { return d.names }

// Instance is a prepared MQDP input: posts sorted by dimension value with
// per-label occurrence lists (the paper's LP(a)). Instances are immutable
// after construction and safe for concurrent use.
type Instance struct {
	posts     []Post    // sorted ascending by (Value, ID); labels deduplicated
	numLabels int       // labels are 0..numLabels-1
	byLabel   [][]int32 // byLabel[a] = indexes into posts carrying label a, ascending
}

// ErrBadPost reports invalid input posts (NaN values, negative labels).
var ErrBadPost = errors.New("core: invalid post")

// NewInstance validates, copies and sorts posts into an Instance.
// numLabels must exceed every label id used; pass dict.Len() when labels come
// from a Dictionary. Duplicate labels on a post are dropped. Posts may share
// dimension values.
func NewInstance(posts []Post, numLabels int) (*Instance, error) {
	if numLabels < 0 {
		return nil, fmt.Errorf("%w: negative label count %d", ErrBadPost, numLabels)
	}
	sorted := make([]Post, len(posts))
	copy(sorted, posts)
	for i := range sorted {
		p := &sorted[i]
		if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
			return nil, fmt.Errorf("%w: post %d has non-finite value %v", ErrBadPost, p.ID, p.Value)
		}
		labels := append([]Label(nil), p.Labels...)
		sort.Slice(labels, func(x, y int) bool { return labels[x] < labels[y] })
		dedup := labels[:0]
		for j, a := range labels {
			if a < 0 || int(a) >= numLabels {
				return nil, fmt.Errorf("%w: post %d label %d out of range [0,%d)", ErrBadPost, p.ID, a, numLabels)
			}
			if j == 0 || labels[j-1] != a {
				dedup = append(dedup, a)
			}
		}
		p.Labels = dedup
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value < sorted[j].Value
		}
		return sorted[i].ID < sorted[j].ID
	})
	byLabel := make([][]int32, numLabels)
	for i, p := range sorted {
		for _, a := range p.Labels {
			byLabel[a] = append(byLabel[a], int32(i))
		}
	}
	return &Instance{posts: sorted, numLabels: numLabels, byLabel: byLabel}, nil
}

// MustInstance is NewInstance that panics on error; intended for tests and
// examples with literal inputs.
func MustInstance(posts []Post, numLabels int) *Instance {
	inst, err := NewInstance(posts, numLabels)
	if err != nil {
		panic(err)
	}
	return inst
}

// Len reports the number of posts.
func (in *Instance) Len() int { return len(in.posts) }

// NumLabels reports the size of the label space.
func (in *Instance) NumLabels() int { return in.numLabels }

// Post returns the i-th post in dimension order.
func (in *Instance) Post(i int) Post { return in.posts[i] }

// Posts returns all posts in dimension order. The caller must not modify the
// returned slice.
func (in *Instance) Posts() []Post { return in.posts }

// LabelPosts returns LP(a): the indexes (into dimension order) of posts
// carrying label a, ascending by value. The caller must not modify it.
func (in *Instance) LabelPosts(a Label) []int32 { return in.byLabel[a] }

// MaxLabelsPerPost returns s, the maximum number of labels any post carries.
// It is the approximation factor of Scan. Returns 0 for an empty instance.
func (in *Instance) MaxLabelsPerPost() int {
	s := 0
	for i := range in.posts {
		if len(in.posts[i].Labels) > s {
			s = len(in.posts[i].Labels)
		}
	}
	return s
}

// OverlapRate returns the average number of labels per post restricted to
// posts with at least one label (the paper's "post overlap rate", §7.2).
// Posts with no labels are ignored; returns 0 when none carry labels.
func (in *Instance) OverlapRate() float64 {
	pairs, n := 0, 0
	for i := range in.posts {
		if len(in.posts[i].Labels) == 0 {
			continue
		}
		pairs += len(in.posts[i].Labels)
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(pairs) / float64(n)
}

// Pairs returns the total number of (post, label) incidences, i.e. the size
// of the set-cover universe used by GreedySC.
func (in *Instance) Pairs() int {
	pairs := 0
	for i := range in.posts {
		pairs += len(in.posts[i].Labels)
	}
	return pairs
}

// valueRange returns the smallest and largest dimension values, or (0, 0)
// for an empty instance.
func (in *Instance) valueRange() (lo, hi float64) {
	if len(in.posts) == 0 {
		return 0, 0
	}
	return in.posts[0].Value, in.posts[len(in.posts)-1].Value
}

// windowInLabel returns the half-open position range [from, to) of LP(a)
// whose values lie within [lo, hi].
func (in *Instance) windowInLabel(a Label, lo, hi float64) (from, to int) {
	lp := in.byLabel[a]
	from = sort.Search(len(lp), func(k int) bool { return in.posts[lp[k]].Value >= lo })
	to = sort.Search(len(lp), func(k int) bool { return in.posts[lp[k]].Value > hi })
	return from, to
}
