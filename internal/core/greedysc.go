package core

import (
	"container/heap"
	"time"

	"mqdp/internal/fenwick"
	"mqdp/internal/parallel"
)

// GreedySC implements Algorithm 2: MQDP is transformed into a set-cover
// instance whose universe is the (post, label) incidence pairs and whose sets
// are the posts (set S_k holds every pair post k λ-covers); the greedy
// set-cover rule then repeatedly selects the post covering the most
// still-uncovered pairs. The approximation factor is ln(|P|·|L|) (Feige).
//
// Implementation note: the selections are exactly those of the paper's
// pseudocode with ties broken toward the lowest post index, but gains are
// evaluated lazily with a max-heap over Fenwick-tree range counts instead of
// rescanning every set each round. Laziness is sound because gains only
// shrink as pairs get covered (submodularity), so a popped entry whose
// recomputed gain still beats the runner-up is the true argmax.
func (in *Instance) GreedySC(m LambdaModel) *Cover { return in.GreedySCParallel(m, 1) }

// GreedySCParallel is GreedySC with the O(|P|) initial gain sweep — the
// dominant cost before the lazy heap takes over — sharded across up to
// workers goroutines (0 = GOMAXPROCS, 1 = serial). Gain evaluation is
// read-only, and the heap is built from the gains in post order, so the
// selection sequence is identical to the serial run for any worker count.
func (in *Instance) GreedySCParallel(m LambdaModel, workers int) *Cover {
	start := time.Now()
	w := parallel.Workers(workers)
	span := obsState.Load().startSpan("core.GreedySC")
	sel := in.greedySC(m, true, w)
	endSolveSpan(span, in, w, len(sel))
	return &Cover{Selected: sel, Algorithm: "GreedySC", Elapsed: time.Since(start)}
}

// GreedySCNaive runs the literal Algorithm 2 loop, rescanning all candidate
// gains on every round. It exists to cross-check GreedySC in tests and as the
// reference point for the efficiency ablation; prefer GreedySC. The only
// deviation from a full rescan is a sound skip: a post whose gain upper bound
// (its last computed gain, which submodularity keeps valid) cannot beat the
// round's current best is not re-evaluated, which changes no selection.
func (in *Instance) GreedySCNaive(m LambdaModel) *Cover {
	start := time.Now()
	span := obsState.Load().startSpan("core.GreedySC-naive")
	sel := in.greedySC(m, false, 1)
	endSolveSpan(span, in, 1, len(sel))
	return &Cover{Selected: sel, Algorithm: "GreedySC-naive", Elapsed: time.Since(start)}
}

// greedyState tracks uncovered (post, label) pairs per label.
type greedyState struct {
	in        *Instance
	m         LambdaModel
	uncovered [][]bool        // uncovered[a][k] for position k of LP(a)
	counts    []*fenwick.Tree // counts[a] mirrors uncovered[a]
	remaining int             // total uncovered pairs
}

func newGreedyState(in *Instance, m LambdaModel) *greedyState {
	g := &greedyState{
		in:        in,
		m:         m,
		uncovered: make([][]bool, in.numLabels),
		counts:    make([]*fenwick.Tree, in.numLabels),
	}
	for a := 0; a < in.numLabels; a++ {
		n := len(in.byLabel[a])
		g.uncovered[a] = make([]bool, n)
		g.counts[a] = fenwick.New(n)
		for k := 0; k < n; k++ {
			g.uncovered[a][k] = true
			g.counts[a].Add(k, 1)
		}
		g.remaining += n
	}
	return g
}

// gain returns |S_i ∩ uncovered|: the number of uncovered pairs post i covers.
func (g *greedyState) gain(i int) int {
	p := g.in.posts[i]
	total := 0
	for _, a := range p.Labels {
		r := g.m.Lambda(i, a)
		from, to := g.in.windowInLabel(a, p.Value-r, p.Value+r)
		total += g.counts[a].RangeSum(from, to)
	}
	return total
}

// take selects post i, covering every uncovered pair in its windows.
func (g *greedyState) take(i int) {
	p := g.in.posts[i]
	for _, a := range p.Labels {
		r := g.m.Lambda(i, a)
		from, to := g.in.windowInLabel(a, p.Value-r, p.Value+r)
		unc := g.uncovered[a]
		for k := from; k < to; k++ {
			if unc[k] {
				unc[k] = false
				g.counts[a].Add(k, -1)
				g.remaining--
			}
		}
	}
}

// gainHeap orders candidates by gain descending, post index ascending.
type gainHeap struct {
	gains   []int
	indexes []int
}

func (h *gainHeap) Len() int { return len(h.indexes) }
func (h *gainHeap) Less(i, j int) bool {
	if h.gains[i] != h.gains[j] {
		return h.gains[i] > h.gains[j]
	}
	return h.indexes[i] < h.indexes[j]
}
func (h *gainHeap) Swap(i, j int) {
	h.gains[i], h.gains[j] = h.gains[j], h.gains[i]
	h.indexes[i], h.indexes[j] = h.indexes[j], h.indexes[i]
}
func (h *gainHeap) Push(x any) {
	e := x.([2]int)
	h.gains = append(h.gains, e[0])
	h.indexes = append(h.indexes, e[1])
}
func (h *gainHeap) Pop() any {
	n := len(h.indexes) - 1
	e := [2]int{h.gains[n], h.indexes[n]}
	h.gains = h.gains[:n]
	h.indexes = h.indexes[:n]
	return e
}

func (in *Instance) greedySC(m LambdaModel, lazy bool, workers int) []int {
	o := obsState.Load()
	g := newGreedyState(in, m)
	// Work counters accumulate locally and flush to the registry once at the
	// end, so the selection loops carry no atomic traffic.
	var gains, heapOps int64
	var sweepStart, selectStart time.Time
	if o != nil {
		sweepStart = time.Now()
		defer func() {
			o.greedySelect.ObserveSince(selectStart)
			o.gains.Add(gains)
			o.heapOps.Add(heapOps)
			o.solves.Inc()
		}()
	}
	var sel []int
	if !lazy {
		// ub[i] upper-bounds post i's current gain. Gains only shrink as
		// pairs get covered (submodularity), so the initial gain — and later
		// the last recomputed one — stays a valid bound until refreshed.
		// Skipping i when ub[i] ≤ bestGain cannot change the argmax or its
		// lowest-index tie-break: gain(i) ≤ ub[i] ≤ bestGain is never
		// strictly better.
		ub := make([]int, len(in.posts))
		for i := range in.posts {
			ub[i] = g.gain(i)
		}
		gains += int64(len(in.posts))
		if o != nil {
			selectStart = time.Now()
			o.greedySweep.Observe(selectStart.Sub(sweepStart).Seconds())
		}
		for g.remaining > 0 {
			best, bestGain := -1, 0
			for i := range in.posts {
				if ub[i] <= bestGain {
					continue
				}
				gain := g.gain(i)
				gains++
				ub[i] = gain
				if gain > bestGain {
					best, bestGain = i, gain
				}
			}
			if best < 0 {
				break // unreachable: every pair covers itself
			}
			g.take(best)
			sel = append(sel, best)
		}
		return normalizeSelected(sel)
	}
	h := &gainHeap{
		gains:   make([]int, 0, len(in.posts)),
		indexes: make([]int, 0, len(in.posts)),
	}
	if workers > 1 {
		// The initial sweep evaluates every post against the fully uncovered
		// state; gain() only reads the instance and the Fenwick counts, so
		// the sweep shards freely. Appending in post order afterwards keeps
		// the heap contents — and thus every selection — identical.
		for i, gain := range parallel.Map(workers, len(in.posts), g.gain) {
			if gain > 0 {
				h.gains = append(h.gains, gain)
				h.indexes = append(h.indexes, i)
			}
		}
	} else {
		for i := range in.posts {
			if gain := g.gain(i); gain > 0 {
				h.gains = append(h.gains, gain)
				h.indexes = append(h.indexes, i)
			}
		}
	}
	heap.Init(h)
	gains += int64(len(in.posts))
	heapOps += int64(h.Len())
	if o != nil {
		selectStart = time.Now()
		o.greedySweep.Observe(selectStart.Sub(sweepStart).Seconds())
	}
	for g.remaining > 0 && h.Len() > 0 {
		top := heap.Pop(h).([2]int)
		heapOps++
		gain, i := g.gain(top[1]), top[1]
		gains++
		if gain == 0 {
			continue
		}
		if h.Len() > 0 {
			// Stale entry: another candidate may now lead. The entry is
			// current when its fresh gain still beats (or ties ahead of,
			// by index) the runner-up's stored gain, which upper-bounds
			// the runner-up's fresh gain.
			nextGain, nextIdx := h.gains[0], h.indexes[0]
			if gain < nextGain || (gain == nextGain && nextIdx < i) {
				heap.Push(h, [2]int{gain, i})
				heapOps++
				continue
			}
		}
		g.take(i)
		sel = append(sel, i)
	}
	return normalizeSelected(sel)
}
