package core

import (
	"sort"
	"sync"
	"time"

	"mqdp/internal/parallel"
)

// ScanOrder controls the label processing order of Scan+; the effectiveness
// of its cross-label removal depends on it (§4.3 of the paper).
type ScanOrder int

// Label orderings for Scan+.
const (
	// OrderByID processes labels in id order (the default).
	OrderByID ScanOrder = iota
	// OrderByFrequencyDesc processes labels with the most posts first.
	OrderByFrequencyDesc
	// OrderByFrequencyAsc processes labels with the fewest posts first.
	OrderByFrequencyAsc
)

// scanScratch holds the reusable working buffers of a Scan/Scan+ call: the
// selection sink and the flat covered bitmap (plus its per-label views).
// Pooling them removes the dominant per-call allocations; the final Selected
// slice is copied out at exact size because it escapes into the Cover.
type scanScratch struct {
	sel     []int
	covered []bool
	views   [][]bool
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// coveredViews returns per-label covered bitmaps backed by one flat, zeroed
// buffer (one allocation amortized across calls instead of one per label).
// The views are full slice expressions, so labels cannot append into each
// other's range.
func (s *scanScratch) coveredViews(in *Instance) [][]bool {
	total := in.Pairs()
	if cap(s.covered) < total {
		s.covered = make([]bool, total)
	} else {
		s.covered = s.covered[:total]
		clear(s.covered)
	}
	if cap(s.views) < in.numLabels {
		s.views = make([][]bool, in.numLabels)
	} else {
		s.views = s.views[:in.numLabels]
	}
	off := 0
	for a := 0; a < in.numLabels; a++ {
		n := len(in.byLabel[a])
		s.views[a] = s.covered[off : off+n : off+n]
		off += n
	}
	return s.views
}

// Scan implements Algorithm 3: it solves each label's one-dimensional
// interval-covering problem optimally with a single pass over LP(a) and
// returns the union of the per-label solutions. The approximation factor is
// s, the maximum number of labels on any post, and the running time is
// O(s·|P|) for a fixed λ model.
//
// With a per-post LambdaModel (proportional diversity, §6) coverage is
// directional; the scan then picks, among candidates able to cover the
// leftmost uncovered post, the one whose coverage reaches furthest right.
// For a fixed λ this coincides with the paper's "last post within λ" rule.
func (in *Instance) Scan(m LambdaModel) *Cover { return in.ScanParallel(m, 1) }

// ScanParallel is Scan with the per-label passes sharded over up to workers
// goroutines (0 = GOMAXPROCS, 1 = serial). The labels' interval-cover passes
// are fully independent, so the merged selection is identical to the serial
// one for any worker count.
func (in *Instance) ScanParallel(m LambdaModel, workers int) *Cover {
	o := obsState.Load()
	span := o.startSpan("core.Scan")
	start := time.Now()
	var sel []int
	var scanned int64
	var sweepEnd time.Time
	w := parallel.Workers(workers)
	if w <= 1 || in.numLabels <= 1 {
		scratch := scanScratchPool.Get().(*scanScratch)
		local := scratch.sel[:0]
		for a := 0; a < in.numLabels; a++ {
			scanned += int64(in.scanLabel(m, Label(a), nil, &local))
		}
		if o != nil {
			sweepEnd = time.Now()
		}
		sel = cloneSelection(normalizeSelected(local))
		scratch.sel = local[:0]
		scanScratchPool.Put(scratch)
	} else {
		var perLabel [][]int
		if o != nil {
			// Shards write disjoint slots; summed after the barrier.
			counts := make([]int64, in.numLabels)
			perLabel = parallel.Map(w, in.numLabels, func(a int) []int {
				var local []int
				counts[a] = int64(in.scanLabel(m, Label(a), nil, &local))
				return local
			})
			sweepEnd = time.Now()
			for _, n := range counts {
				scanned += n
			}
		} else {
			perLabel = parallel.Map(w, in.numLabels, func(a int) []int {
				var local []int
				in.scanLabel(m, Label(a), nil, &local)
				return local
			})
		}
		sel = normalizeSelected(concatSelections(perLabel))
	}
	if o != nil {
		o.observeScanPhases(o.scanSweep, o.scanSelect, start, sweepEnd, scanned)
		endSolveSpan(span, in, w, len(sel))
	}
	return &Cover{Selected: sel, Algorithm: "Scan", Elapsed: time.Since(start)}
}

// ScanPlus implements the Scan+ variant: identical per-label scans, but when
// a post is selected for one label, every (post, label) pair it covers is
// marked satisfied, so the scans of later labels skip those posts.
func (in *Instance) ScanPlus(m LambdaModel, order ScanOrder) *Cover {
	return in.ScanPlusParallel(m, order, 1)
}

// ScanPlusParallel is ScanPlus sharded over the connected components of the
// label co-occurrence graph (two labels connect when some post carries both).
// Cross-label removal only ever acts within a component — a selection marks
// pairs covered only on the selected post's own labels — so components are
// independent subproblems; within each, labels keep their serial relative
// order. The result is identical to the serial pass for any worker count.
// When the labels form a single component (very high overlap) the pass
// degenerates to serial; Scan's per-label sharding has no such limit.
func (in *Instance) ScanPlusParallel(m LambdaModel, order ScanOrder, workers int) *Cover {
	o := obsState.Load()
	span := o.startSpan("core.Scan+")
	start := time.Now()
	scratch := scanScratchPool.Get().(*scanScratch)
	covered := scratch.coveredViews(in)
	labels := in.labelOrder(order)
	var sel []int
	var scanned int64
	var sweepEnd time.Time
	w := parallel.Workers(workers)
	if w <= 1 || in.numLabels <= 1 {
		local := scratch.sel[:0]
		for _, a := range labels {
			scanned += int64(in.scanLabel(m, a, covered, &local))
		}
		if o != nil {
			sweepEnd = time.Now()
		}
		sel = cloneSelection(normalizeSelected(local))
		scratch.sel = local[:0]
	} else {
		comps := in.labelComponents(labels)
		var counts []int64
		if o != nil {
			counts = make([]int64, len(comps))
		}
		perComp := parallel.Map(w, len(comps), func(c int) []int {
			var local []int
			n := 0
			for _, a := range comps[c] {
				n += in.scanLabel(m, a, covered, &local)
			}
			if counts != nil {
				counts[c] = int64(n)
			}
			return local
		})
		if o != nil {
			sweepEnd = time.Now()
			for _, n := range counts {
				scanned += n
			}
		}
		sel = normalizeSelected(concatSelections(perComp))
	}
	scanScratchPool.Put(scratch)
	if o != nil {
		o.observeScanPhases(o.scanPlusSweep, o.scanPlusSelect, start, sweepEnd, scanned)
		endSolveSpan(span, in, w, len(sel))
	}
	return &Cover{Selected: sel, Algorithm: "Scan+", Elapsed: time.Since(start)}
}

// labelOrder returns label ids in the requested processing order.
func (in *Instance) labelOrder(order ScanOrder) []Label {
	labels := make([]Label, in.numLabels)
	for a := range labels {
		labels[a] = Label(a)
	}
	switch order {
	case OrderByFrequencyDesc:
		sort.SliceStable(labels, func(i, j int) bool {
			return len(in.byLabel[labels[i]]) > len(in.byLabel[labels[j]])
		})
	case OrderByFrequencyAsc:
		sort.SliceStable(labels, func(i, j int) bool {
			return len(in.byLabel[labels[i]]) < len(in.byLabel[labels[j]])
		})
	}
	return labels
}

// labelComponents partitions ordered into the connected components of the
// label co-occurrence graph, preserving the given label order within each
// component (and ordering components by first appearance). Every post's
// labels lie in exactly one component, so component scans touch disjoint
// covered ranges and disjoint candidate posts.
func (in *Instance) labelComponents(ordered []Label) [][]Label {
	parent := make([]int32, in.numLabels)
	for a := range parent {
		parent[a] = int32(a)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for i := range in.posts {
		labels := in.posts[i].Labels
		for k := 1; k < len(labels); k++ {
			ra, rb := find(labels[0]), find(labels[k])
			if ra != rb {
				parent[rb] = ra
			}
		}
	}
	slot := make([]int32, in.numLabels)
	for a := range slot {
		slot[a] = -1
	}
	var comps [][]Label
	for _, a := range ordered {
		r := find(a)
		if slot[r] < 0 {
			slot[r] = int32(len(comps))
			comps = append(comps, nil)
		}
		comps[slot[r]] = append(comps[slot[r]], a)
	}
	return comps
}

// scanLabel covers all not-yet-covered posts of label a, appending choices to
// sel. covered is nil for plain Scan (labels are processed fully
// independently, as in Algorithm 3); for Scan+, covered[b][k] marks position
// k of LP(b) as satisfied and is updated for every label of each selection.
// It returns the number of candidate positions examined (the obs work
// counter; a local increment, free enough to track unconditionally).
func (in *Instance) scanLabel(m LambdaModel, a Label, covered [][]bool, sel *[]int) int {
	lp := in.byLabel[a]
	n := len(lp)
	maxR := m.Max()
	next := 0 // frontier: position of the next possibly-uncovered post
	scanned := 0
	for {
		if covered != nil {
			for next < n && covered[a][next] {
				next++
			}
		}
		if next >= n {
			return scanned
		}
		left := next
		leftVal := in.posts[lp[left]].Value
		// Pick the candidate whose coverage of `left` reaches furthest
		// right. Candidates sit at positions ≥ left within maxR of
		// left's value; `left` itself always qualifies (radius ≥ 0
		// covers distance 0).
		best, bestReach := left, leftVal+m.Lambda(int(lp[left]), a)
		scanned++
		for k := left + 1; k < n; k++ {
			v := in.posts[lp[k]].Value
			if v-leftVal > maxR {
				break
			}
			scanned++
			r := m.Lambda(int(lp[k]), a)
			if v-leftVal <= r {
				if reach := v + r; reach > bestReach {
					best, bestReach = k, reach
				}
			}
		}
		in.selectPost(m, int(lp[best]), covered, sel)
		// Everything this label has up to bestReach is now covered.
		for next < n && in.posts[lp[next]].Value <= bestReach {
			next++
		}
	}
}

// selectPost appends post i to sel and, in Scan+ mode (covered non-nil),
// marks every (post, label) pair i covers as satisfied.
func (in *Instance) selectPost(m LambdaModel, i int, covered [][]bool, sel *[]int) {
	*sel = append(*sel, i)
	if covered == nil {
		return
	}
	v := in.posts[i].Value
	for _, b := range in.posts[i].Labels {
		r := m.Lambda(i, b)
		from, to := in.windowInLabel(b, v-r, v+r)
		cov := covered[b]
		for k := from; k < to; k++ {
			cov[k] = true
		}
	}
}

// cloneSelection copies a normalized selection out of a pooled buffer.
func cloneSelection(sel []int) []int {
	out := make([]int, len(sel))
	copy(out, sel)
	return out
}

// concatSelections flattens per-shard selections in shard order.
func concatSelections(shards [][]int) []int {
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	out := make([]int, 0, total)
	for _, s := range shards {
		out = append(out, s...)
	}
	return out
}
