package core

import (
	"sort"
	"time"
)

// ScanOrder controls the label processing order of Scan+; the effectiveness
// of its cross-label removal depends on it (§4.3 of the paper).
type ScanOrder int

// Label orderings for Scan+.
const (
	// OrderByID processes labels in id order (the default).
	OrderByID ScanOrder = iota
	// OrderByFrequencyDesc processes labels with the most posts first.
	OrderByFrequencyDesc
	// OrderByFrequencyAsc processes labels with the fewest posts first.
	OrderByFrequencyAsc
)

// Scan implements Algorithm 3: it solves each label's one-dimensional
// interval-covering problem optimally with a single pass over LP(a) and
// returns the union of the per-label solutions. The approximation factor is
// s, the maximum number of labels on any post, and the running time is
// O(s·|P|) for a fixed λ model.
//
// With a per-post LambdaModel (proportional diversity, §6) coverage is
// directional; the scan then picks, among candidates able to cover the
// leftmost uncovered post, the one whose coverage reaches furthest right.
// For a fixed λ this coincides with the paper's "last post within λ" rule.
func (in *Instance) Scan(m LambdaModel) *Cover {
	start := time.Now()
	selected := make([]bool, len(in.posts))
	for a := 0; a < in.numLabels; a++ {
		in.scanLabel(m, Label(a), nil, selected)
	}
	return finishScanCover("Scan", start, selected)
}

// ScanPlus implements the Scan+ variant: identical per-label scans, but when
// a post is selected for one label, every (post, label) pair it covers is
// marked satisfied, so the scans of later labels skip those posts.
func (in *Instance) ScanPlus(m LambdaModel, order ScanOrder) *Cover {
	start := time.Now()
	selected := make([]bool, len(in.posts))
	covered := make([][]bool, in.numLabels)
	for a := 0; a < in.numLabels; a++ {
		covered[a] = make([]bool, len(in.byLabel[a]))
	}
	for _, a := range in.labelOrder(order) {
		in.scanLabel(m, a, covered, selected)
	}
	return finishScanCover("Scan+", start, selected)
}

// labelOrder returns label ids in the requested processing order.
func (in *Instance) labelOrder(order ScanOrder) []Label {
	labels := make([]Label, in.numLabels)
	for a := range labels {
		labels[a] = Label(a)
	}
	switch order {
	case OrderByFrequencyDesc:
		sort.SliceStable(labels, func(i, j int) bool {
			return len(in.byLabel[labels[i]]) > len(in.byLabel[labels[j]])
		})
	case OrderByFrequencyAsc:
		sort.SliceStable(labels, func(i, j int) bool {
			return len(in.byLabel[labels[i]]) < len(in.byLabel[labels[j]])
		})
	}
	return labels
}

// scanLabel covers all not-yet-covered posts of label a, marking choices in
// selected. covered is nil for plain Scan (labels are processed fully
// independently, as in Algorithm 3); for Scan+, covered[b][k] marks position
// k of LP(b) as satisfied and is updated for every label of each selection.
func (in *Instance) scanLabel(m LambdaModel, a Label, covered [][]bool, selected []bool) {
	lp := in.byLabel[a]
	n := len(lp)
	maxR := m.Max()
	next := 0 // frontier: position of the next possibly-uncovered post
	for {
		if covered != nil {
			for next < n && covered[a][next] {
				next++
			}
		}
		if next >= n {
			return
		}
		left := next
		leftVal := in.posts[lp[left]].Value
		// Pick the candidate whose coverage of `left` reaches furthest
		// right. Candidates sit at positions ≥ left within maxR of
		// left's value; `left` itself always qualifies (radius ≥ 0
		// covers distance 0).
		best, bestReach := left, leftVal+m.Lambda(int(lp[left]), a)
		for k := left + 1; k < n; k++ {
			v := in.posts[lp[k]].Value
			if v-leftVal > maxR {
				break
			}
			r := m.Lambda(int(lp[k]), a)
			if v-leftVal <= r {
				if reach := v + r; reach > bestReach {
					best, bestReach = k, reach
				}
			}
		}
		in.selectPost(m, int(lp[best]), covered, selected)
		// Everything this label has up to bestReach is now covered.
		for next < n && in.posts[lp[next]].Value <= bestReach {
			next++
		}
	}
}

// selectPost marks post i selected and, in Scan+ mode (covered non-nil),
// marks every (post, label) pair i covers as satisfied.
func (in *Instance) selectPost(m LambdaModel, i int, covered [][]bool, selected []bool) {
	selected[i] = true
	if covered == nil {
		return
	}
	v := in.posts[i].Value
	for _, b := range in.posts[i].Labels {
		r := m.Lambda(i, b)
		from, to := in.windowInLabel(b, v-r, v+r)
		cov := covered[b]
		for k := from; k < to; k++ {
			cov[k] = true
		}
	}
}

// finishScanCover converts a selected bitmap to a Cover.
func finishScanCover(name string, start time.Time, selected []bool) *Cover {
	sel := make([]int, 0, 16)
	for i, ok := range selected {
		if ok {
			sel = append(sel, i)
		}
	}
	return &Cover{Selected: sel, Algorithm: name, Elapsed: time.Since(start)}
}
