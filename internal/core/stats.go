package core

import (
	"fmt"
	"math"
)

// CoverStats summarizes how a cover represents an instance; it is the
// quantitative face of the paper's effectiveness study (§7.2) for a single
// solution: how compressed the stream is, how work is shared between labels
// and how much redundancy the cover carries.
type CoverStats struct {
	// Posts and Selected are the instance and cover sizes.
	Posts    int
	Selected int
	// CompressionRatio = Selected / Posts (0 when the instance is empty).
	CompressionRatio float64
	// PerLabel maps each label to its representative count (selected posts
	// carrying it) and the largest dimension gap between consecutive
	// representatives.
	PerLabel []LabelStats
	// MeanCoverers is the average number of selected posts covering each
	// (post, label) pair — 1.0 means a perfectly tight cover, higher
	// values mean redundancy.
	MeanCoverers float64
	// MaxDelayedPairGap is the largest dimension distance from any covered
	// pair to its nearest coverer, a tightness measure (≤ the λ used).
	MaxPairDistance float64
}

// LabelStats is CoverStats' per-label breakdown.
type LabelStats struct {
	Label           Label
	Posts           int     // posts carrying the label
	Representatives int     // selected posts carrying the label
	MaxGap          float64 // largest value gap between consecutive representatives
}

// Stats computes CoverStats for a verified cover. It returns an error if the
// selection is not actually a cover under m.
func (in *Instance) Stats(m LambdaModel, selected []int) (*CoverStats, error) {
	if err := in.VerifyCover(m, selected); err != nil {
		return nil, fmt.Errorf("core: stats of a non-cover: %w", err)
	}
	st := &CoverStats{Posts: in.Len(), Selected: len(selected)}
	if in.Len() > 0 {
		st.CompressionRatio = float64(len(selected)) / float64(in.Len())
	}
	pairCount, covererSum := 0, 0
	for a := 0; a < in.numLabels; a++ {
		lp := in.byLabel[a]
		ls := LabelStats{Label: Label(a), Posts: len(lp)}
		var repValues []float64
		for _, i := range selected {
			if hasLabel(in.posts[i].Labels, Label(a)) {
				ls.Representatives++
				repValues = append(repValues, in.posts[i].Value)
			}
		}
		for k := 1; k < len(repValues); k++ {
			if gap := repValues[k] - repValues[k-1]; gap > ls.MaxGap {
				ls.MaxGap = gap
			}
		}
		// Redundancy and tightness per pair.
		for _, pi := range lp {
			pairCount++
			coverers := 0
			nearest := math.Inf(1)
			for _, i := range selected {
				if !hasLabel(in.posts[i].Labels, Label(a)) {
					continue
				}
				if in.Covers(m, i, int(pi), Label(a)) {
					coverers++
					if d := math.Abs(in.posts[i].Value - in.posts[pi].Value); d < nearest {
						nearest = d
					}
				}
			}
			covererSum += coverers
			if !math.IsInf(nearest, 1) && nearest > st.MaxPairDistance {
				st.MaxPairDistance = nearest
			}
		}
		st.PerLabel = append(st.PerLabel, ls)
	}
	if pairCount > 0 {
		st.MeanCoverers = float64(covererSum) / float64(pairCount)
	}
	return st, nil
}
