package core

import (
	"fmt"
	"sort"
	"time"
)

// Cover is the result of a solver: the selected post indexes (in instance
// dimension order) plus bookkeeping about how it was obtained.
type Cover struct {
	// Selected holds indexes into the instance's dimension order,
	// ascending and without duplicates.
	Selected []int
	// Algorithm names the solver that produced the cover.
	Algorithm string
	// Elapsed is the wall-clock solving time.
	Elapsed time.Duration
	// Optimal is true only for exact solvers (OPT, Exhaustive).
	Optimal bool
}

// Size returns the cover cardinality.
func (c *Cover) Size() int { return len(c.Selected) }

// Posts materializes the selected posts of inst.
func (c *Cover) Posts(inst *Instance) []Post {
	out := make([]Post, len(c.Selected))
	for k, i := range c.Selected {
		out[k] = inst.Post(i)
	}
	return out
}

// IDs returns the application IDs of the selected posts, in dimension order.
func (c *Cover) IDs(inst *Instance) []int64 {
	out := make([]int64, len(c.Selected))
	for k, i := range c.Selected {
		out[k] = inst.Post(i).ID
	}
	return out
}

// normalizeSelected sorts and deduplicates a selected-index set.
func normalizeSelected(sel []int) []int {
	sort.Ints(sel)
	out := sel[:0]
	for i, v := range sel {
		if i == 0 || sel[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// CoverageError describes the first uncovered (post, label) pair found by
// VerifyCover.
type CoverageError struct {
	PostIndex int
	PostID    int64
	Label     Label
}

// Error implements error.
func (e *CoverageError) Error() string {
	return fmt.Sprintf("core: post %d (index %d) is not λ-covered on label %d", e.PostID, e.PostIndex, e.Label)
}

// VerifyCover independently checks that selected λ-covers the instance under
// model m: every post must be covered on every one of its labels by some
// selected post. It runs in O(Σ_a(|selected_a| log + |LP(a)|)) and is used by
// the test-suite after every solver call.
func (in *Instance) VerifyCover(m LambdaModel, selected []int) error {
	for _, i := range selected {
		if i < 0 || i >= len(in.posts) {
			return fmt.Errorf("core: selected index %d out of range [0,%d)", i, len(in.posts))
		}
	}
	for a := 0; a < in.numLabels; a++ {
		lp := in.byLabel[a]
		if len(lp) == 0 {
			continue
		}
		covered := make([]bool, len(lp))
		for _, i := range selected {
			if !hasLabel(in.posts[i].Labels, Label(a)) {
				continue
			}
			r := m.Lambda(i, Label(a))
			v := in.posts[i].Value
			from, to := in.windowInLabel(Label(a), v-r, v+r)
			for k := from; k < to; k++ {
				covered[k] = true
			}
		}
		for k, ok := range covered {
			if !ok {
				idx := int(lp[k])
				return &CoverageError{PostIndex: idx, PostID: in.posts[idx].ID, Label: Label(a)}
			}
		}
	}
	return nil
}

// hasLabel reports whether the sorted label slice contains a.
func hasLabel(labels []Label, a Label) bool {
	lo, hi := 0, len(labels)
	for lo < hi {
		mid := (lo + hi) / 2
		if labels[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(labels) && labels[lo] == a
}
