package core

import (
	"fmt"
	"math"
	"sort"
)

// Window extracts the sub-instance of posts with Value in [lo, hi], keeping
// the label space. The returned mapping translates the sub-instance's post
// indexes back to indexes in the parent instance.
func (in *Instance) Window(lo, hi float64) (*Instance, []int, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return nil, nil, fmt.Errorf("core: invalid window [%v, %v]", lo, hi)
	}
	from := sort.Search(len(in.posts), func(k int) bool { return in.posts[k].Value >= lo })
	to := sort.Search(len(in.posts), func(k int) bool { return in.posts[k].Value > hi })
	sub := make([]Post, to-from)
	mapping := make([]int, to-from)
	for k := from; k < to; k++ {
		sub[k-from] = in.posts[k]
		mapping[k-from] = k
	}
	subInst, err := NewInstance(sub, in.numLabels)
	if err != nil {
		return nil, nil, err
	}
	return subInst, mapping, nil
}

// WindowCover is one window's solution within SolveWindows.
type WindowCover struct {
	Lo, Hi float64
	Cover  *Cover // Selected holds parent-instance indexes
}

// SolveWindows partitions the instance into consecutive windows of the given
// width (aligned to the first post's value) and solves each independently
// with solve. The union of the window covers is always a valid λ-cover of
// the whole instance — each window covers its own posts — though it may be
// larger than a global solve, since coverage cannot be shared across window
// boundaries. This is the paging mode of a timeline UI: each window's digest
// is locally complete.
func (in *Instance) SolveWindows(width float64, solve func(*Instance) (*Cover, error)) ([]WindowCover, error) {
	if !(width > 0) {
		return nil, fmt.Errorf("core: window width %v must be positive", width)
	}
	if in.Len() == 0 {
		return nil, nil
	}
	lo, hi := in.valueRange()
	var out []WindowCover
	for start := lo; start <= hi; start += width {
		end := math.Nextafter(start+width, start) // [start, start+width)
		sub, mapping, err := in.Window(start, end)
		if err != nil {
			return nil, err
		}
		if sub.Len() == 0 {
			continue
		}
		cover, err := solve(sub)
		if err != nil {
			return nil, fmt.Errorf("core: window [%v, %v): %w", start, start+width, err)
		}
		mapped := make([]int, len(cover.Selected))
		for k, i := range cover.Selected {
			mapped[k] = mapping[i]
		}
		out = append(out, WindowCover{
			Lo: start,
			Hi: start + width,
			Cover: &Cover{
				Selected:  mapped,
				Algorithm: cover.Algorithm,
				Elapsed:   cover.Elapsed,
				Optimal:   cover.Optimal,
			},
		})
	}
	return out, nil
}

// UnionSelected merges window covers into one deduplicated selection over
// the parent instance.
func UnionSelected(windows []WindowCover) []int {
	var all []int
	for _, w := range windows {
		all = append(all, w.Cover.Selected...)
	}
	return normalizeSelected(all)
}
