package core

import (
	"errors"
	"math/rand"
	"testing"
)

func TestOPTMatchesExhaustiveOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 250
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		in := randomInstance(rng, 10, 3, 18)
		lambda := float64(1 + rng.Intn(5))
		exact, err := in.Exhaustive(FixedLambda(lambda))
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		opt, err := in.OPT(lambda, nil)
		if err != nil {
			t.Fatalf("trial %d: OPT: %v", trial, err)
		}
		if err := in.VerifyCover(FixedLambda(lambda), opt.Selected); err != nil {
			t.Fatalf("trial %d: OPT cover invalid: %v (λ=%v posts=%+v)", trial, err, lambda, in.Posts())
		}
		if opt.Size() != exact.Size() {
			t.Fatalf("trial %d: OPT=%d exhaustive=%d (λ=%v posts=%+v)",
				trial, opt.Size(), exact.Size(), lambda, in.Posts())
		}
	}
}

func TestOPTNeverLargerThanApproximations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		in := randomInstance(rng, 12, 2, 24)
		lambda := float64(1 + rng.Intn(6))
		lm := FixedLambda(lambda)
		opt, err := in.OPT(lambda, nil)
		if err != nil {
			t.Fatalf("OPT: %v", err)
		}
		for _, c := range []*Cover{in.Scan(lm), in.ScanPlus(lm, OrderByID), in.GreedySC(lm)} {
			if c.Size() < opt.Size() {
				t.Fatalf("trial %d: %s=%d beat OPT=%d", trial, c.Algorithm, c.Size(), opt.Size())
			}
		}
	}
}

func TestOPTSingleLabelEqualsScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(15)
		posts := make([]Post, n)
		for i := range posts {
			posts[i] = mk(int64(i), float64(rng.Intn(40)), 0)
		}
		in := inst(t, 1, posts...)
		lambda := float64(1 + rng.Intn(6))
		opt, err := in.OPT(lambda, nil)
		if err != nil {
			t.Fatalf("OPT: %v", err)
		}
		if scan := in.Scan(FixedLambda(lambda)); scan.Size() != opt.Size() {
			t.Fatalf("trial %d: scan=%d opt=%d for one label", trial, scan.Size(), opt.Size())
		}
	}
}

func TestOPTRejectsNegativeLambda(t *testing.T) {
	in := figure2(t)
	if _, err := in.OPT(-1, nil); !errors.Is(err, ErrBadLambda) {
		t.Errorf("OPT(-1) error = %v, want ErrBadLambda", err)
	}
}

func TestOPTWorkBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randomInstance(rng, 30, 3, 10) // dense: many patterns
	_, err := in.OPT(5, &OPTOptions{MaxWork: 10})
	if !errors.Is(err, ErrOPTTooLarge) {
		t.Errorf("tiny work budget error = %v, want ErrOPTTooLarge", err)
	}
}

func TestOPTStateBudget(t *testing.T) {
	posts := make([]Post, 20)
	for i := range posts {
		posts[i] = mk(int64(i), float64(i), 0, 1, 2)
	}
	in := inst(t, 3, posts...)
	_, err := in.OPT(10, &OPTOptions{MaxStates: 4})
	if !errors.Is(err, ErrOPTTooLarge) {
		t.Errorf("tiny state budget error = %v, want ErrOPTTooLarge", err)
	}
}

func TestOPTExactValueKnownInstances(t *testing.T) {
	cases := []struct {
		name   string
		posts  []Post
		L      int
		lambda float64
		want   int
	}{
		{
			name:   "figure2",
			posts:  []Post{mk(1, 1, 0), mk(2, 2, 0), mk(3, 3, 0, 1), mk(4, 4, 1)},
			L:      2,
			lambda: 1,
			want:   2,
		},
		{
			name:   "single post",
			posts:  []Post{mk(1, 0, 0, 1)},
			L:      2,
			lambda: 1,
			want:   1,
		},
		{
			name: "two far apart same label",
			posts: []Post{
				mk(1, 0, 0), mk(2, 100, 0),
			},
			L:      1,
			lambda: 1,
			want:   2,
		},
		{
			name: "chain coverable by middles",
			posts: []Post{
				mk(1, 0, 0), mk(2, 1, 0), mk(3, 2, 0), mk(4, 3, 0), mk(5, 4, 0),
			},
			L:      1,
			lambda: 2,
			want:   1,
		},
		{
			name: "intersecting but not nested label sets",
			// Two nearby posts related to intersecting, non-nested label
			// sets: neither covers the other (§1's motivating case), so a
			// single selection cannot suffice.
			posts: []Post{
				mk(1, 0, 0, 1), mk(2, 0.5, 1, 2),
			},
			L:      3,
			lambda: 1,
			want:   2,
		},
		{
			name: "shared middle label set",
			posts: []Post{
				mk(1, 0, 0), mk(2, 1, 0, 1), mk(3, 2, 1),
			},
			L:      2,
			lambda: 1,
			want:   1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := inst(t, tc.L, tc.posts...)
			opt, err := in.OPT(tc.lambda, nil)
			if err != nil {
				t.Fatalf("OPT: %v", err)
			}
			if opt.Size() != tc.want {
				t.Errorf("OPT = %d (%v), want %d", opt.Size(), opt.Selected, tc.want)
			}
			if err := in.VerifyCover(FixedLambda(tc.lambda), opt.Selected); err != nil {
				t.Errorf("OPT cover invalid: %v", err)
			}
			if sz, err := in.OPTSize(tc.lambda, nil); err != nil || sz != tc.want {
				t.Errorf("OPTSize = %d, %v; want %d", sz, err, tc.want)
			}
		})
	}
}

func TestExhaustiveRejectsLargeInstances(t *testing.T) {
	posts := make([]Post, maxExhaustivePosts+1)
	for i := range posts {
		posts[i] = mk(int64(i), float64(i), 0)
	}
	in := inst(t, 1, posts...)
	if _, err := in.Exhaustive(FixedLambda(1)); !errors.Is(err, ErrExhaustiveTooLarge) {
		t.Errorf("error = %v, want ErrExhaustiveTooLarge", err)
	}
}

func TestExhaustiveDirectionalModel(t *testing.T) {
	// Directional radii: the wide post can cover everything.
	in := inst(t, 1, mk(1, 0, 0), mk(2, 5, 0), mk(3, 10, 0))
	m := customLambda{radius: map[int]float64{0: 1, 1: 5, 2: 1}}
	exact, err := in.Exhaustive(m)
	if err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	if exact.Size() != 1 || exact.Selected[0] != 1 {
		t.Errorf("Exhaustive = %v, want the middle wide post", exact.Selected)
	}
	if err := in.VerifyCover(m, exact.Selected); err != nil {
		t.Errorf("cover invalid: %v", err)
	}
}

func TestOPTTrace(t *testing.T) {
	in := figure2(t)
	trace := &OPTTrace{}
	if _, err := in.OPT(1, &OPTOptions{Trace: trace}); err != nil {
		t.Fatal(err)
	}
	if len(trace.StatesPerPost) != in.Len() {
		t.Fatalf("trace has %d layers, want %d", len(trace.StatesPerPost), in.Len())
	}
	if trace.Work <= 0 || trace.MaxStates <= 0 {
		t.Errorf("trace = %+v", trace)
	}
	for _, n := range trace.StatesPerPost {
		if n < 1 {
			t.Errorf("layer with %d states", n)
		}
		if n > trace.MaxStates {
			t.Errorf("layer %d exceeds recorded max %d", n, trace.MaxStates)
		}
	}
}
