package core

import (
	"math/rand"
	"testing"

	"mqdp/internal/obs"
)

// obsBenchInstance builds a deterministic ~10k-post, 8-label instance large
// enough that Scan's inner candidate sweep dominates the solve.
func obsBenchInstance() *Instance {
	rng := rand.New(rand.NewSource(7))
	const n, labels = 10000, 8
	posts := make([]Post, n)
	t := 0.0
	for i := range posts {
		t += rng.Float64()
		var ls []Label
		for a := 0; a < labels; a++ {
			if rng.Intn(4) == 0 {
				ls = append(ls, Label(a))
			}
		}
		if len(ls) == 0 {
			ls = append(ls, Label(rng.Intn(labels)))
		}
		posts[i] = Post{ID: int64(i), Value: t, Labels: ls}
	}
	in, err := NewInstance(posts, labels)
	if err != nil {
		panic(err)
	}
	return in
}

func benchScan(b *testing.B) {
	in := obsBenchInstance()
	lm := FixedLambda(30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := in.ScanParallel(lm, 1); c.Size() == 0 {
			b.Fatal("empty cover")
		}
	}
}

// BenchmarkScanObsDisabled vs BenchmarkScanObsEnabled quantifies the cost of
// the instrumentation: disabled must sit within noise of the pre-obs solver
// (the inner loop pays zero atomics; the whole solve pays one pointer load
// and a branch), enabled adds two histogram observations and four counter
// flushes per solve.
func BenchmarkScanObsDisabled(b *testing.B) {
	SetObs(nil)
	benchScan(b)
}

func BenchmarkScanObsEnabled(b *testing.B) {
	SetObs(obs.NewRegistry())
	defer SetObs(nil)
	benchScan(b)
}
