package core

import (
	"math"
	"math/rand"
	"testing"
)

// solveAll runs every approximation on in and verifies each result.
func solveAll(t *testing.T, in *Instance, m LambdaModel) map[string]*Cover {
	t.Helper()
	covers := map[string]*Cover{
		"Scan":           in.Scan(m),
		"Scan+":          in.ScanPlus(m, OrderByID),
		"Scan+/freqdesc": in.ScanPlus(m, OrderByFrequencyDesc),
		"Scan+/freqasc":  in.ScanPlus(m, OrderByFrequencyAsc),
		"GreedySC":       in.GreedySC(m),
		"GreedySC-naive": in.GreedySCNaive(m),
	}
	for name, c := range covers {
		if err := in.VerifyCover(m, c.Selected); err != nil {
			t.Fatalf("%s produced an invalid cover: %v", name, err)
		}
	}
	return covers
}

func TestAlgorithmsOnFigure2(t *testing.T) {
	in := figure2(t)
	lm := FixedLambda(1)
	covers := solveAll(t, in, lm)
	for name, c := range covers {
		if c.Size() > 3 {
			t.Errorf("%s size = %d, want ≤ 3 on the Figure 2 instance", name, c.Size())
		}
	}
	// GreedySC finds the optimum here: P3 covers a∈P2,a∈P3,c∈P3,c∈P4 (gain
	// 4 with λ=∆t), then one more post finishes a∈P1.
	if got := covers["GreedySC"].Size(); got != 2 {
		t.Errorf("GreedySC size = %d, want 2", got)
	}
}

func TestScanOptimalForSingleLabel(t *testing.T) {
	// With one label Scan solves the 1-D interval covering problem
	// optimally (§4.3: Sa is an optimal λ-cover of LP(a)).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		posts := make([]Post, n)
		for i := range posts {
			posts[i] = mk(int64(i), float64(rng.Intn(30)), 0)
		}
		in := inst(t, 1, posts...)
		lambda := float64(1 + rng.Intn(5))
		lm := FixedLambda(lambda)
		scan := in.Scan(lm)
		if err := in.VerifyCover(lm, scan.Selected); err != nil {
			t.Fatalf("trial %d: scan cover invalid: %v", trial, err)
		}
		exact, err := in.Exhaustive(lm)
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		if scan.Size() != exact.Size() {
			t.Fatalf("trial %d: scan=%d optimal=%d for single label (λ=%v, posts=%v)",
				trial, scan.Size(), exact.Size(), lambda, posts)
		}
	}
}

func TestScanApproximationBound(t *testing.T) {
	// |Scan| ≤ s·|OPT| where s = max labels per post.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		in := randomInstance(rng, 10, 3, 20)
		lambda := float64(1 + rng.Intn(4))
		lm := FixedLambda(lambda)
		exact, err := in.Exhaustive(lm)
		if err != nil {
			t.Fatalf("exhaustive: %v", err)
		}
		s := in.MaxLabelsPerPost()
		if s == 0 {
			continue
		}
		for _, c := range []*Cover{in.Scan(lm), in.ScanPlus(lm, OrderByID)} {
			if c.Size() > s*exact.Size() {
				t.Fatalf("trial %d: |%s|=%d > s·|OPT|=%d·%d", trial, c.Algorithm, c.Size(), s, exact.Size())
			}
		}
	}
}

func TestScanPlusNeverWorseThanScanOnDisjointLabels(t *testing.T) {
	// When no post carries multiple labels Scan+ = Scan (nothing to reuse).
	in := inst(t, 2,
		mk(1, 0, 0), mk(2, 1, 0), mk(3, 2, 0),
		mk(4, 0.5, 1), mk(5, 1.5, 1),
	)
	lm := FixedLambda(1)
	if a, b := in.Scan(lm).Size(), in.ScanPlus(lm, OrderByID).Size(); a != b {
		t.Errorf("Scan=%d Scan+=%d on disjoint labels, want equal", a, b)
	}
}

func TestScanPlusReusesCrossLabelSelections(t *testing.T) {
	// One central post carries both labels; Scan selects one post per label
	// list edge while Scan+ reuses the first selection for the second label.
	in := inst(t, 2,
		mk(1, 0, 0),
		mk(2, 1, 0, 1),
		mk(3, 2, 1),
	)
	lm := FixedLambda(1)
	plus := in.ScanPlus(lm, OrderByID)
	if plus.Size() != 1 {
		t.Errorf("Scan+ size = %d, want 1 (P2 covers everything)", plus.Size())
	}
	if err := in.VerifyCover(lm, plus.Selected); err != nil {
		t.Errorf("Scan+ cover invalid: %v", err)
	}
}

func TestGreedyLazyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		in := randomInstance(rng, 14, 4, 25)
		lm := FixedLambda(float64(1 + rng.Intn(5)))
		lazy := in.GreedySC(lm)
		naive := in.GreedySCNaive(lm)
		if lazy.Size() != naive.Size() {
			t.Fatalf("trial %d: lazy=%d naive=%d", trial, lazy.Size(), naive.Size())
		}
		for i := range lazy.Selected {
			if lazy.Selected[i] != naive.Selected[i] {
				t.Fatalf("trial %d: lazy selected %v, naive %v", trial, lazy.Selected, naive.Selected)
			}
		}
	}
}

func TestGreedyPicksHighestGainFirst(t *testing.T) {
	// Central post covers 5 pairs; edge posts 1 each. Greedy must pick the
	// center first and need only 1 post total.
	in := inst(t, 1,
		mk(1, 0, 0), mk(2, 1, 0), mk(3, 2, 0), mk(4, 3, 0), mk(5, 4, 0),
	)
	lm := FixedLambda(2)
	g := in.GreedySC(lm)
	if g.Size() != 1 || g.Selected[0] != 2 {
		t.Errorf("GreedySC = %v, want just the middle post (index 2)", g.Selected)
	}
}

func TestAlgorithmsWithDuplicateValues(t *testing.T) {
	// All posts share one timestamp: MQDP degenerates to plain set cover.
	in := inst(t, 3,
		mk(1, 5, 0, 1),
		mk(2, 5, 1, 2),
		mk(3, 5, 0, 2),
		mk(4, 5, 0),
	)
	lm := FixedLambda(0)
	covers := solveAll(t, in, lm)
	exact, err := in.Exhaustive(lm)
	if err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	if exact.Size() != 2 {
		t.Fatalf("optimal set cover size = %d, want 2", exact.Size())
	}
	if g := covers["GreedySC"]; g.Size() != 2 {
		t.Errorf("GreedySC = %d, want 2 on this set-cover instance", g.Size())
	}
	opt, err := in.OPT(0, nil)
	if err != nil {
		t.Fatalf("OPT: %v", err)
	}
	if opt.Size() != 2 {
		t.Errorf("OPT = %d, want 2", opt.Size())
	}
}

func TestApproximationsCoverRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 40, 5, 60)
		lm := FixedLambda(float64(1 + rng.Intn(8)))
		solveAll(t, in, lm)
	}
}

// randomInstance builds a random instance with up to maxPosts posts, up to
// maxLabels labels and values in [0, valueRange).
func randomInstance(rng *rand.Rand, maxPosts, maxLabels, valueRange int) *Instance {
	n := 1 + rng.Intn(maxPosts)
	L := 1 + rng.Intn(maxLabels)
	posts := make([]Post, n)
	for i := range posts {
		var labels []Label
		for a := 0; a < L; a++ {
			if rng.Intn(3) == 0 {
				labels = append(labels, Label(a))
			}
		}
		if len(labels) == 0 {
			labels = append(labels, Label(rng.Intn(L)))
		}
		posts[i] = Post{ID: int64(i), Value: float64(rng.Intn(valueRange)), Labels: labels}
	}
	in, err := NewInstance(posts, L)
	if err != nil {
		panic(err)
	}
	return in
}

func TestBucketThinningIsValidCover(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 80; trial++ {
		in := randomInstance(rng, 40, 4, 60)
		lambda := float64(1 + rng.Intn(8))
		c := in.BucketThinning(lambda)
		if err := in.VerifyCover(FixedLambda(lambda), c.Selected); err != nil {
			t.Fatalf("trial %d: thinning cover invalid: %v", trial, err)
		}
		// Thinning marks one post per (label, non-empty bucket), so the
		// total selection cannot exceed the bucket count summed over
		// labels. (Globally Scan and thinning are incomparable: a
		// thinning representative may serve several labels at once, and a
		// selected post can carry labels it was not the representative
		// for.)
		totalBuckets := 0
		for a := 0; a < in.NumLabels(); a++ {
			buckets := map[int64]bool{}
			for _, pi := range in.LabelPosts(Label(a)) {
				buckets[int64(math.Floor(in.Post(int(pi)).Value/lambda))] = true
			}
			totalBuckets += len(buckets)
		}
		if c.Size() > totalBuckets {
			t.Fatalf("trial %d: %d selected for %d total buckets", trial, c.Size(), totalBuckets)
		}
	}
}

func TestBucketThinningDegenerateLambda(t *testing.T) {
	in := inst(t, 1, mk(1, 0, 0), mk(2, 0.5, 0), mk(3, 1, 0))
	c := in.BucketThinning(0)
	if c.Size() != 3 {
		t.Errorf("λ=0 thinning = %d, want every labeled post", c.Size())
	}
	if err := in.VerifyCover(FixedLambda(0), c.Selected); err != nil {
		t.Errorf("λ=0 thinning invalid: %v", err)
	}
}

func TestBucketThinningNegativeValues(t *testing.T) {
	// Buckets must align correctly across zero (floor, not truncation).
	in := inst(t, 1, mk(1, -2.5, 0), mk(2, -0.5, 0), mk(3, 0.5, 0))
	c := in.BucketThinning(2)
	if err := in.VerifyCover(FixedLambda(2), c.Selected); err != nil {
		t.Fatalf("negative-value thinning invalid: %v", err)
	}
	// Buckets: [-4,-2), [-2,0), [0,2) → three representatives.
	if c.Size() != 3 {
		t.Errorf("thinning size = %d, want 3", c.Size())
	}
}
