package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickInstance derives a small random instance from a seed.
func quickInstance(seed int64, maxPosts, maxLabels, valueRange int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	return randomInstance(rng, maxPosts, maxLabels, valueRange)
}

func TestQuickAllSolversProduceValidCovers(t *testing.T) {
	check := func(seed int64, lambdaRaw uint8) bool {
		in := quickInstance(seed, 25, 4, 40)
		lambda := float64(lambdaRaw%16) + 0.5
		lm := FixedLambda(lambda)
		for _, c := range []*Cover{
			in.Scan(lm),
			in.ScanPlus(lm, OrderByID),
			in.ScanPlus(lm, OrderByFrequencyDesc),
			in.GreedySC(lm),
		} {
			if err := in.VerifyCover(lm, c.Selected); err != nil {
				t.Logf("seed=%d λ=%v: %s invalid: %v", seed, lambda, c.Algorithm, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickOPTMonotoneInLambda(t *testing.T) {
	// A λ-cover is also a λ'-cover for λ' ≥ λ, so the optimum cannot grow.
	check := func(seed int64) bool {
		in := quickInstance(seed, 9, 2, 16)
		prev := -1
		for _, lambda := range []float64{0.5, 1, 2, 4, 8} {
			c, err := in.OPT(lambda, nil)
			if err != nil {
				return false
			}
			if prev >= 0 && c.Size() > prev {
				t.Logf("seed=%d: OPT grew from %d to %d as λ increased to %v", seed, prev, c.Size(), lambda)
				return false
			}
			prev = c.Size()
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoverOfCoverIsNoLarger(t *testing.T) {
	// Re-diversifying an already diversified set cannot need more posts
	// than the set itself, and its cover must still verify.
	check := func(seed int64, lambdaRaw uint8) bool {
		in := quickInstance(seed, 30, 3, 50)
		lambda := float64(lambdaRaw%10) + 1
		lm := FixedLambda(lambda)
		first := in.GreedySC(lm)
		sub := make([]Post, 0, first.Size())
		for _, i := range first.Selected {
			sub = append(sub, in.Post(i))
		}
		subInst, err := NewInstance(sub, in.NumLabels())
		if err != nil {
			return false
		}
		second := subInst.GreedySC(lm)
		if second.Size() > first.Size() {
			return false
		}
		return subInst.VerifyCover(lm, second.Selected) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSelectedPostsAlwaysRelevant(t *testing.T) {
	// No solver may select a post with no labels: it covers nothing.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 20, 3, 30)
		// Inject unlabeled noise posts.
		posts := append([]Post(nil), in.Posts()...)
		for i := 0; i < 5; i++ {
			posts = append(posts, Post{ID: int64(1000 + i), Value: float64(rng.Intn(30))})
		}
		in2, err := NewInstance(posts, in.NumLabels())
		if err != nil {
			return false
		}
		lm := FixedLambda(2)
		for _, c := range []*Cover{in2.Scan(lm), in2.ScanPlus(lm, OrderByID), in2.GreedySC(lm)} {
			for _, i := range c.Selected {
				if len(in2.Post(i).Labels) == 0 {
					t.Logf("seed=%d: %s selected unlabeled post %d", seed, c.Algorithm, in2.Post(i).ID)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickDictionaryRoundTrip(t *testing.T) {
	check := func(names []string) bool {
		var d Dictionary
		ids := make(map[string]Label)
		for _, n := range names {
			id := d.Intern(n)
			if prev, seen := ids[n]; seen && prev != id {
				return false
			}
			ids[n] = id
		}
		for n, id := range ids {
			if d.Name(id) != n {
				return false
			}
			if got, ok := d.Lookup(n); !ok || got != id {
				return false
			}
		}
		return d.Len() == len(ids)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickVerifierAgreesWithBruteForce(t *testing.T) {
	// VerifyCover (windowed marking) must agree with the naive O(n²·L)
	// definition of λ-coverage on random selections.
	check := func(seed int64, lambdaRaw, pick uint8) bool {
		in := quickInstance(seed, 12, 3, 20)
		lambda := float64(lambdaRaw % 8)
		lm := FixedLambda(lambda)
		var sel []int
		for i := 0; i < in.Len(); i++ {
			if pick&(1<<(uint(i)%8)) != 0 && i%2 == int(pick)%2 {
				sel = append(sel, i)
			}
		}
		fast := in.VerifyCover(lm, sel) == nil
		slow := bruteForceCovered(in, lm, sel)
		if fast != slow {
			t.Logf("seed=%d λ=%v sel=%v: fast=%v slow=%v", seed, lambda, sel, fast, slow)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func bruteForceCovered(in *Instance, m LambdaModel, sel []int) bool {
	for j := 0; j < in.Len(); j++ {
		for _, a := range in.Post(j).Labels {
			covered := false
			for _, i := range sel {
				if hasLabel(in.Post(i).Labels, a) && in.Covers(m, i, j, a) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
	}
	return true
}

func TestQuickEveryOptimalCoverElementIsEssential(t *testing.T) {
	// If removing an element from a minimum cover left it feasible, a
	// smaller cover would exist — contradiction. So every element of an
	// OPT/Exhaustive cover is essential.
	check := func(seed int64, lambdaRaw uint8) bool {
		in := quickInstance(seed, 10, 2, 16)
		lambda := float64(lambdaRaw%6) + 1
		opt, err := in.OPT(lambda, nil)
		if err != nil {
			return false
		}
		lm := FixedLambda(lambda)
		for drop := range opt.Selected {
			reduced := make([]int, 0, len(opt.Selected)-1)
			for k, i := range opt.Selected {
				if k != drop {
					reduced = append(reduced, i)
				}
			}
			if in.VerifyCover(lm, reduced) == nil {
				t.Logf("seed=%d λ=%v: dropping element %d of optimal cover %v keeps it feasible",
					seed, lambda, opt.Selected[drop], opt.Selected)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
