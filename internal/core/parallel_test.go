package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sameCover asserts two covers select exactly the same posts.
func sameCover(t *testing.T, ctx string, serial, par *Cover) {
	t.Helper()
	if len(serial.Selected) != len(par.Selected) {
		t.Fatalf("%s: serial selected %v, parallel %v", ctx, serial.Selected, par.Selected)
	}
	for k := range serial.Selected {
		if serial.Selected[k] != par.Selected[k] {
			t.Fatalf("%s: serial selected %v, parallel %v", ctx, serial.Selected, par.Selected)
		}
	}
}

// TestQuickParallelSolversMatchSerial is the determinism contract: for every
// solver and every worker count, the parallel path must return exactly the
// serial cover on seeded random instances.
func TestQuickParallelSolversMatchSerial(t *testing.T) {
	check := func(seed int64, lambdaRaw uint8) bool {
		in := quickInstance(seed, 40, 8, 60)
		lambda := float64(lambdaRaw%16) + 0.5
		lm := FixedLambda(lambda)
		for _, workers := range []int{2, 3, 8} {
			sameCover(t, "Scan", in.Scan(lm), in.ScanParallel(lm, workers))
			for _, order := range []ScanOrder{OrderByID, OrderByFrequencyDesc, OrderByFrequencyAsc} {
				sameCover(t, "Scan+", in.ScanPlus(lm, order), in.ScanPlusParallel(lm, order, workers))
			}
			sameCover(t, "GreedySC", in.GreedySC(lm), in.GreedySCParallel(lm, workers))
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickParallelSolversMatchSerialProportional repeats the contract under
// the §6 per-post proportional model, where coverage is directional.
func TestQuickParallelSolversMatchSerialProportional(t *testing.T) {
	check := func(seed int64, lambdaRaw uint8) bool {
		in := quickInstance(seed, 35, 6, 50)
		lambda0 := float64(lambdaRaw%8) + 1
		pl, err := NewProportionalLambda(in, lambda0)
		if err != nil {
			return false
		}
		sameCover(t, "Scan/prop", in.Scan(pl), in.ScanParallel(pl, 8))
		sameCover(t, "Scan+/prop", in.ScanPlus(pl, OrderByFrequencyAsc), in.ScanPlusParallel(pl, OrderByFrequencyAsc, 8))
		sameCover(t, "GreedySC/prop", in.GreedySC(pl), in.GreedySCParallel(pl, 8))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestParallelSolversWorkersZeroMeansGOMAXPROCS exercises the 0 = GOMAXPROCS
// convention and verifies the covers.
func TestParallelSolversWorkersZeroMeansGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	in := randomInstance(rng, 60, 8, 80)
	lm := FixedLambda(3)
	sameCover(t, "Scan", in.Scan(lm), in.ScanParallel(lm, 0))
	sameCover(t, "Scan+", in.ScanPlus(lm, OrderByID), in.ScanPlusParallel(lm, OrderByID, 0))
	sameCover(t, "GreedySC", in.GreedySC(lm), in.GreedySCParallel(lm, 0))
	for _, c := range []*Cover{in.ScanParallel(lm, 0), in.ScanPlusParallel(lm, OrderByID, 0), in.GreedySCParallel(lm, 0)} {
		if err := in.VerifyCover(lm, c.Selected); err != nil {
			t.Errorf("%s: %v", c.Algorithm, err)
		}
	}
}

func TestLabelComponentsPartitionAndOrder(t *testing.T) {
	// Labels {0,1} share post 2, labels {2,3} share post 5, label 4 is
	// isolated; components must preserve the given order within and across.
	in := inst(t, 5,
		mk(1, 0, 0), mk(2, 1, 0, 1), mk(3, 2, 1),
		mk(4, 0, 2), mk(5, 1, 2, 3),
		mk(6, 0.5, 4),
	)
	comps := in.labelComponents([]Label{0, 1, 2, 3, 4})
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3 groups", comps)
	}
	wantGroups := [][]Label{{0, 1}, {2, 3}, {4}}
	for g, want := range wantGroups {
		if len(comps[g]) != len(want) {
			t.Fatalf("component %d = %v, want %v", g, comps[g], want)
		}
		for k := range want {
			if comps[g][k] != want[k] {
				t.Fatalf("component %d = %v, want %v", g, comps[g], want)
			}
		}
	}
	// Reversed input order must be preserved within components too.
	rev := in.labelComponents([]Label{4, 3, 2, 1, 0})
	if rev[0][0] != 4 || rev[1][0] != 3 || rev[1][1] != 2 || rev[2][0] != 1 || rev[2][1] != 0 {
		t.Fatalf("reversed components = %v", rev)
	}
}

// TestScanScratchReuseIsClean runs interleaved solves on different instances
// to catch stale pooled state (covered bits or selection residue) leaking
// between calls.
func TestScanScratchReuseIsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	instances := make([]*Instance, 6)
	for k := range instances {
		instances[k] = randomInstance(rng, 30, 5, 40)
	}
	lm := FixedLambda(2)
	want := make([][]int, len(instances))
	for k, in := range instances {
		want[k] = in.ScanPlus(lm, OrderByID).Selected
	}
	for round := 0; round < 20; round++ {
		k := rng.Intn(len(instances))
		in := instances[k]
		var got *Cover
		if round%2 == 0 {
			got = in.ScanPlus(lm, OrderByID)
		} else {
			got = in.ScanPlusParallel(lm, OrderByID, 4)
		}
		if len(got.Selected) != len(want[k]) {
			t.Fatalf("round %d instance %d: got %v want %v", round, k, got.Selected, want[k])
		}
		for i := range want[k] {
			if got.Selected[i] != want[k][i] {
				t.Fatalf("round %d instance %d: got %v want %v", round, k, got.Selected, want[k])
			}
		}
	}
}
