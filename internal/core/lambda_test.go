package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedLambdaModel(t *testing.T) {
	lm := FixedLambda(2.5)
	if lm.Lambda(0, 0) != 2.5 || lm.Max() != 2.5 {
		t.Errorf("FixedLambda(2.5) = (%v, %v)", lm.Lambda(0, 0), lm.Max())
	}
}

func TestProportionalLambdaRejectsBadLambda0(t *testing.T) {
	in := inst(t, 1, mk(1, 0, 0))
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewProportionalLambda(in, bad); !errors.Is(err, ErrBadLambda) {
			t.Errorf("lambda0=%v error = %v, want ErrBadLambda", bad, err)
		}
	}
}

func TestProportionalLambdaDenseVsSparse(t *testing.T) {
	// Label 0: a dense cluster around value 0 and one lone post at 100.
	// Equation 2 must give the lone post a larger radius than the cluster.
	posts := []Post{mk(100, 100, 0)}
	for i := 0; i < 20; i++ {
		posts = append(posts, mk(int64(i), float64(i)*0.1, 0))
	}
	in := inst(t, 1, posts...)
	pl, err := NewProportionalLambda(in, 5)
	if err != nil {
		t.Fatalf("NewProportionalLambda: %v", err)
	}
	// The lone post sits at the highest instance index.
	lone := in.Len() - 1
	if in.Post(lone).Value != 100 {
		t.Fatalf("expected lone post last, got value %v", in.Post(lone).Value)
	}
	denseRadius := pl.Lambda(0, 0)
	sparseRadius := pl.Lambda(lone, 0)
	if sparseRadius <= denseRadius {
		t.Errorf("sparse radius %v ≤ dense radius %v; Equation 2 should expand sparse regions", sparseRadius, denseRadius)
	}
	if sparseRadius > 5*math.E+1e-9 {
		t.Errorf("radius %v exceeds the e·λ0 damping bound", sparseRadius)
	}
	if pl.Lambda0() != 5 {
		t.Errorf("Lambda0 = %v", pl.Lambda0())
	}
}

func TestProportionalLambdaBounds(t *testing.T) {
	// Radii are always in (0, e·λ0] regardless of the distribution.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 30, 4, 50)
		lambda0 := 1 + rng.Float64()*10
		pl, err := NewProportionalLambda(in, lambda0)
		if err != nil {
			return false
		}
		for i := 0; i < in.Len(); i++ {
			for _, a := range in.Post(i).Labels {
				r := pl.Lambda(i, a)
				if !(r > 0) || r > lambda0*math.E+1e-9 {
					return false
				}
			}
		}
		return pl.Max() <= lambda0*math.E+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestProportionalLambdaAverageDensityGivesLambda0(t *testing.T) {
	// A perfectly uniform single-label stream has density == density0
	// everywhere away from the edges, so Equation 2 yields exactly λ0.
	posts := make([]Post, 101)
	for i := range posts {
		posts[i] = mk(int64(i), float64(i), 0)
	}
	in := inst(t, 1, posts...)
	lambda0 := 5.0
	pl, err := NewProportionalLambda(in, lambda0)
	if err != nil {
		t.Fatal(err)
	}
	mid := 50
	got := pl.Lambda(mid, 0)
	// Window [45,55] holds 11 posts → density 1.1/unit vs density0
	// 101/100 ≈ 1.01/unit; e^(1−1.089) ≈ 0.915 → close to λ0.
	if math.Abs(got-lambda0) > lambda0*0.2 {
		t.Errorf("uniform-density radius = %v, want ≈ λ0 = %v", got, lambda0)
	}
}

func TestProportionalLambdaPanicsOnForeignLabel(t *testing.T) {
	in := inst(t, 2, mk(1, 0, 0), mk(2, 1, 1))
	pl, err := NewProportionalLambda(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Lambda on a label the post lacks did not panic")
		}
	}()
	pl.Lambda(0, 1)
}

func TestProportionalLambdaSingleValueDegenerate(t *testing.T) {
	// All posts share one value: span is degenerate but the model must
	// still produce finite positive radii.
	in := inst(t, 1, mk(1, 3, 0), mk(2, 3, 0), mk(3, 3, 0))
	pl, err := NewProportionalLambda(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if r := pl.Lambda(i, 0); !(r > 0) || math.IsInf(r, 0) {
			t.Errorf("degenerate-span radius = %v", r)
		}
	}
}

func TestSolversWithProportionalLambda(t *testing.T) {
	// Dense morning burst + sparse afternoon (the §6 motivating example):
	// the proportional model must keep more posts in the dense region than
	// a fixed λ with the same base threshold.
	var posts []Post
	id := int64(0)
	for i := 0; i < 60; i++ { // dense: one post per unit
		posts = append(posts, mk(id, float64(i), 0))
		id++
	}
	for i := 0; i < 6; i++ { // sparse: one post per 40 units
		posts = append(posts, mk(id, 100+float64(i)*40, 0))
		id++
	}
	in := inst(t, 1, posts...)
	lambda0 := 10.0
	pl, err := NewProportionalLambda(in, lambda0)
	if err != nil {
		t.Fatal(err)
	}
	fixed := in.Scan(FixedLambda(lambda0))
	prop := in.Scan(pl)
	if err := in.VerifyCover(pl, prop.Selected); err != nil {
		t.Fatalf("proportional scan cover invalid: %v", err)
	}
	denseCount := func(c *Cover) int {
		n := 0
		for _, i := range c.Selected {
			if in.Post(i).Value < 100 {
				n++
			}
		}
		return n
	}
	if denseCount(prop) <= denseCount(fixed) {
		t.Errorf("proportional λ kept %d dense posts vs fixed %d; want more representation in dense region",
			denseCount(prop), denseCount(fixed))
	}
}
