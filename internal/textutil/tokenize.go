// Package textutil provides the tokenization shared by the inverted index,
// the topic matcher, the LDA trainer, SimHash and the sentiment scorer:
// a lowercase unicode word tokenizer that understands hashtags, @-mentions
// and cashtags, plus a small English stopword list.
package textutil

import (
	"strings"
	"unicode"
)

// Token is one normalized token extracted from post or article text.
type Token struct {
	// Text is the lowercase token, including any #, @ or $ sigil.
	Text string
	// Kind classifies the token.
	Kind Kind
}

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	Word Kind = iota
	Hashtag
	Mention
	Cashtag
)

// Tokenize splits text into normalized tokens. Letters and digits form
// words; a leading '#', '@' or '$' attaches to the following word as a
// hashtag, mention or cashtag. Everything is lowercased. URLs
// (http/https schemes) are dropped entirely.
func Tokenize(text string) []Token {
	var tokens []Token
	runes := []rune(text)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case r == '#' || r == '@' || r == '$':
			j := i + 1
			for j < len(runes) && isWordRune(runes[j]) {
				j++
			}
			if j > i+1 {
				word := strings.ToLower(string(runes[i:j]))
				kind := Hashtag
				if r == '@' {
					kind = Mention
				} else if r == '$' {
					kind = Cashtag
				}
				tokens = append(tokens, Token{Text: word, Kind: kind})
			}
			i = j // j ≥ i+1: a bare sigil advances one rune
		case isWordRune(r):
			j := i
			for j < len(runes) && isWordRune(runes[j]) {
				j++
			}
			word := strings.ToLower(string(runes[i:j]))
			if word == "http" || word == "https" {
				// Skip the rest of the URL: advance past non-space runes.
				for j < len(runes) && !unicode.IsSpace(runes[j]) {
					j++
				}
			} else {
				tokens = append(tokens, Token{Text: word, Kind: Word})
			}
			i = j
		default:
			i++
		}
	}
	return tokens
}

// Words returns only the token texts, in order.
func Words(text string) []string {
	tokens := Tokenize(text)
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.Text
	}
	return out
}

// ContentWords returns lowercase word tokens with stopwords removed; this is
// the feed for LDA and topic matching.
func ContentWords(text string) []string {
	var out []string
	for _, t := range Tokenize(text) {
		if t.Kind == Word && !IsStopword(t.Text) {
			out = append(out, t.Text)
		}
	}
	return out
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\''
}

// stopwords is a compact English function-word list; enough to keep topic
// keywords and sentiment contexts clean without external data.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "an", "and", "are", "as", "at", "be", "been", "but", "by",
		"can", "could", "did", "do", "does", "for", "from", "had", "has",
		"have", "he", "her", "hers", "him", "his", "i", "if", "in", "into",
		"is", "it", "its", "just", "me", "my", "no", "not", "of", "on",
		"or", "our", "s", "she", "so", "t", "that", "the", "their", "them",
		"then", "there", "these", "they", "this", "to", "up", "was", "we",
		"were", "what", "when", "which", "who", "will", "with", "would",
		"you", "your", "rt", "via", "amp", "don't", "it's", "i'm",
	} {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the lowercase word is a stopword.
func IsStopword(w string) bool {
	_, ok := stopwords[w]
	return ok
}
