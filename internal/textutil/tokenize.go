// Package textutil provides the tokenization shared by the inverted index,
// the topic matcher, the LDA trainer, SimHash and the sentiment scorer:
// a lowercase unicode word tokenizer that understands hashtags, @-mentions
// and cashtags, plus a small English stopword list.
//
// The Append* variants reuse a caller-owned buffer so hot paths (index
// appends, server ingest fan-out) tokenize each post exactly once with no
// per-call slice growth. Token texts are substrings of the input wherever
// the input is already lowercase, so long-lived consumers that retain a
// token beyond the life of the source text (e.g. as a map key) must
// strings.Clone it first.
package textutil

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is one normalized token extracted from post or article text.
type Token struct {
	// Text is the lowercase token, including any #, @ or $ sigil.
	Text string
	// Kind classifies the token.
	Kind Kind
}

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	Word Kind = iota
	Hashtag
	Mention
	Cashtag
)

// Tokenize splits text into normalized tokens. Letters and digits form
// words; a leading '#', '@' or '$' attaches to the following word as a
// hashtag, mention or cashtag. Everything is lowercased. URLs
// (http/https schemes) are dropped entirely.
func Tokenize(text string) []Token {
	return AppendTokens(nil, text)
}

// AppendTokens appends text's tokens to dst and returns the extended slice,
// reusing dst's capacity. It never allocates per token for lowercase input:
// token texts are substrings of text (see the package note on retention).
func AppendTokens(dst []Token, text string) []Token {
	i := 0
	for i < len(text) {
		r, size := utf8.DecodeRuneInString(text[i:])
		switch {
		case r == '#' || r == '@' || r == '$':
			j := i + size
			j = scanWord(text, j)
			if j > i+size {
				kind := Hashtag
				if r == '@' {
					kind = Mention
				} else if r == '$' {
					kind = Cashtag
				}
				dst = append(dst, Token{Text: strings.ToLower(text[i:j]), Kind: kind})
			}
			i = j // j ≥ i+size: a bare sigil advances one rune
		case isWordRune(r):
			j := scanWord(text, i)
			word := strings.ToLower(text[i:j])
			if word == "http" || word == "https" {
				// Skip the rest of the URL: advance past non-space runes.
				for j < len(text) {
					r2, s2 := utf8.DecodeRuneInString(text[j:])
					if unicode.IsSpace(r2) {
						break
					}
					j += s2
				}
			} else {
				dst = append(dst, Token{Text: word, Kind: Word})
			}
			i = j
		default:
			i += size
		}
	}
	return dst
}

// scanWord returns the end offset of the maximal run of word runes starting
// at from.
func scanWord(text string, from int) int {
	j := from
	for j < len(text) {
		r, size := utf8.DecodeRuneInString(text[j:])
		if !isWordRune(r) {
			break
		}
		j += size
	}
	return j
}

// Words returns only the token texts, in order.
func Words(text string) []string {
	return AppendWords(nil, text)
}

// AppendWords appends text's token texts to dst and returns the extended
// slice, reusing dst's capacity — the buffer-reusing form of Words.
func AppendWords(dst []string, text string) []string {
	// Tokenize into a small stack buffer; only the texts escape.
	var buf [32]Token
	tokens := AppendTokens(buf[:0], text)
	for _, t := range tokens {
		dst = append(dst, t.Text)
	}
	return dst
}

// ContentWords returns lowercase word tokens with stopwords removed; this is
// the feed for LDA and topic matching.
func ContentWords(text string) []string {
	var out []string
	var buf [32]Token
	for _, t := range AppendTokens(buf[:0], text) {
		if t.Kind == Word && !IsStopword(t.Text) {
			out = append(out, t.Text)
		}
	}
	return out
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\''
}

// stopwords is a compact English function-word list; enough to keep topic
// keywords and sentiment contexts clean without external data.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "an", "and", "are", "as", "at", "be", "been", "but", "by",
		"can", "could", "did", "do", "does", "for", "from", "had", "has",
		"have", "he", "her", "hers", "him", "his", "i", "if", "in", "into",
		"is", "it", "its", "just", "me", "my", "no", "not", "of", "on",
		"or", "our", "s", "she", "so", "t", "that", "the", "their", "them",
		"then", "there", "these", "they", "this", "to", "up", "was", "we",
		"were", "what", "when", "which", "who", "will", "with", "would",
		"you", "your", "rt", "via", "amp", "don't", "it's", "i'm",
	} {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the lowercase word is a stopword.
func IsStopword(w string) bool {
	_, ok := stopwords[w]
	return ok
}
