package textutil

import (
	"reflect"
	"strings"
	"testing"
	"unicode"
)

func TestTokenizeWords(t *testing.T) {
	got := Words("Obama meets Senate leaders")
	want := []string{"obama", "meets", "senate", "leaders"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeSigils(t *testing.T) {
	tokens := Tokenize("#Obama and @WhiteHouse on $GOOG today")
	var hashtags, mentions, cashtags, words []string
	for _, tok := range tokens {
		switch tok.Kind {
		case Hashtag:
			hashtags = append(hashtags, tok.Text)
		case Mention:
			mentions = append(mentions, tok.Text)
		case Cashtag:
			cashtags = append(cashtags, tok.Text)
		case Word:
			words = append(words, tok.Text)
		}
	}
	if !reflect.DeepEqual(hashtags, []string{"#obama"}) {
		t.Errorf("hashtags = %v", hashtags)
	}
	if !reflect.DeepEqual(mentions, []string{"@whitehouse"}) {
		t.Errorf("mentions = %v", mentions)
	}
	if !reflect.DeepEqual(cashtags, []string{"$goog"}) {
		t.Errorf("cashtags = %v", cashtags)
	}
	if !reflect.DeepEqual(words, []string{"and", "on", "today"}) {
		t.Errorf("words = %v", words)
	}
}

func TestTokenizeDropsURLs(t *testing.T) {
	got := Words("breaking news http://t.co/abc123 more at https://example.com/x?y=1 tonight")
	want := []string{"breaking", "news", "more", "at", "tonight"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeBareSigils(t *testing.T) {
	got := Words("# @ $ done")
	want := []string{"done"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Words("Ça coûte 10€ à Zürich")
	want := []string{"ça", "coûte", "10", "à", "zürich"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeApostrophes(t *testing.T) {
	got := Words("don't stop")
	want := []string{"don't", "stop"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestContentWordsFiltersStopwords(t *testing.T) {
	got := ContentWords("RT the market is up and #bullish on $AAPL today")
	want := []string{"market", "today"} // sigil tokens and stopwords removed
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentWords = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || !IsStopword("rt") {
		t.Error("expected stopwords not recognized")
	}
	if IsStopword("senate") {
		t.Error("senate misclassified as stopword")
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("   ...!!!   "); len(got) != 0 {
		t.Errorf("punctuation-only input tokenized to %v", got)
	}
}

// tokenizeRunes is the pre-optimization []rune-based tokenizer, kept as the
// differential reference for the byte-offset implementation.
func tokenizeRunes(text string) []Token {
	var tokens []Token
	runes := []rune(text)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case r == '#' || r == '@' || r == '$':
			j := i + 1
			for j < len(runes) && isWordRune(runes[j]) {
				j++
			}
			if j > i+1 {
				word := strings.ToLower(string(runes[i:j]))
				kind := Hashtag
				if r == '@' {
					kind = Mention
				} else if r == '$' {
					kind = Cashtag
				}
				tokens = append(tokens, Token{Text: word, Kind: kind})
			}
			i = j
		case isWordRune(r):
			j := i
			for j < len(runes) && isWordRune(runes[j]) {
				j++
			}
			word := strings.ToLower(string(runes[i:j]))
			if word == "http" || word == "https" {
				for j < len(runes) && !unicode.IsSpace(runes[j]) {
					j++
				}
			} else {
				tokens = append(tokens, Token{Text: word, Kind: Word})
			}
			i = j
		default:
			i++
		}
	}
	return tokens
}

func TestTokenizeMatchesRuneReference(t *testing.T) {
	cases := []string{
		"", "hello world", "#Obama and @WhiteHouse on $GOOG today",
		"breaking http://t.co/abc more https://e.com/x?y=1 end",
		"Ça coûte 10€ à Zürich", "don't stop", "# @ $ done",
		"a#b@c$d", "\x80\xfe mixed \xc3(", "emoji 🎉 #🎉party",
		"trailing sigil #", "http", "httpx not a url",
	}
	for _, text := range cases {
		got, want := Tokenize(text), tokenizeRunes(text)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, reference = %v", text, got, want)
		}
	}
}

func TestAppendTokensReusesBuffer(t *testing.T) {
	buf := make([]Token, 0, 16)
	out := AppendTokens(buf, "obama meets senate")
	if len(out) != 3 {
		t.Fatalf("AppendTokens = %v", out)
	}
	if &out[0] != &buf[:1][0] {
		t.Error("AppendTokens did not reuse the caller's buffer")
	}
	// Reuse the same capacity for a second text.
	out2 := AppendTokens(out[:0], "markets rally")
	if &out2[0] != &buf[:1][0] {
		t.Error("second AppendTokens reallocated despite capacity")
	}
}

func TestAppendWordsReusesBuffer(t *testing.T) {
	buf := make([]string, 0, 8)
	out := AppendWords(buf, "obama meets #senate")
	if !reflect.DeepEqual(out, []string{"obama", "meets", "#senate"}) {
		t.Fatalf("AppendWords = %v", out)
	}
	if &out[0] != &buf[:1][0] {
		t.Error("AppendWords did not reuse the caller's buffer")
	}
}
