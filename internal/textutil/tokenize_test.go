package textutil

import (
	"reflect"
	"testing"
)

func TestTokenizeWords(t *testing.T) {
	got := Words("Obama meets Senate leaders")
	want := []string{"obama", "meets", "senate", "leaders"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeSigils(t *testing.T) {
	tokens := Tokenize("#Obama and @WhiteHouse on $GOOG today")
	var hashtags, mentions, cashtags, words []string
	for _, tok := range tokens {
		switch tok.Kind {
		case Hashtag:
			hashtags = append(hashtags, tok.Text)
		case Mention:
			mentions = append(mentions, tok.Text)
		case Cashtag:
			cashtags = append(cashtags, tok.Text)
		case Word:
			words = append(words, tok.Text)
		}
	}
	if !reflect.DeepEqual(hashtags, []string{"#obama"}) {
		t.Errorf("hashtags = %v", hashtags)
	}
	if !reflect.DeepEqual(mentions, []string{"@whitehouse"}) {
		t.Errorf("mentions = %v", mentions)
	}
	if !reflect.DeepEqual(cashtags, []string{"$goog"}) {
		t.Errorf("cashtags = %v", cashtags)
	}
	if !reflect.DeepEqual(words, []string{"and", "on", "today"}) {
		t.Errorf("words = %v", words)
	}
}

func TestTokenizeDropsURLs(t *testing.T) {
	got := Words("breaking news http://t.co/abc123 more at https://example.com/x?y=1 tonight")
	want := []string{"breaking", "news", "more", "at", "tonight"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeBareSigils(t *testing.T) {
	got := Words("# @ $ done")
	want := []string{"done"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Words("Ça coûte 10€ à Zürich")
	want := []string{"ça", "coûte", "10", "à", "zürich"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeApostrophes(t *testing.T) {
	got := Words("don't stop")
	want := []string{"don't", "stop"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestContentWordsFiltersStopwords(t *testing.T) {
	got := ContentWords("RT the market is up and #bullish on $AAPL today")
	want := []string{"market", "today"} // sigil tokens and stopwords removed
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentWords = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || !IsStopword("rt") {
		t.Error("expected stopwords not recognized")
	}
	if IsStopword("senate") {
		t.Error("senate misclassified as stopword")
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("   ...!!!   "); len(got) != 0 {
		t.Errorf("punctuation-only input tokenized to %v", got)
	}
}
