package textutil

import (
	"strings"
	"testing"
	"unicode"
)

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "#tag @user $tick", "http://x.com foo",
		"Ça coûte 10€", "### @@@", "a#b@c$d", "don't",
		"\x00\xff binary", "emoji 🎉 mixed",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tokens := Tokenize(text) // must not panic
		for _, tok := range tokens {
			if tok.Text == "" {
				t.Fatalf("empty token from %q", text)
			}
			for _, r := range tok.Text {
				if unicode.IsUpper(r) {
					t.Fatalf("token %q not lowercased (input %q)", tok.Text, text)
				}
			}
			switch tok.Kind {
			case Hashtag:
				if !strings.HasPrefix(tok.Text, "#") {
					t.Fatalf("hashtag %q missing sigil", tok.Text)
				}
			case Mention:
				if !strings.HasPrefix(tok.Text, "@") {
					t.Fatalf("mention %q missing sigil", tok.Text)
				}
			case Cashtag:
				if !strings.HasPrefix(tok.Text, "$") {
					t.Fatalf("cashtag %q missing sigil", tok.Text)
				}
			}
		}
		// Tokenization is deterministic.
		again := Tokenize(text)
		if len(again) != len(tokens) {
			t.Fatalf("nondeterministic tokenization of %q", text)
		}
		// The byte-offset tokenizer matches the []rune reference exactly.
		ref := tokenizeRunes(text)
		if len(tokens) != len(ref) {
			t.Fatalf("Tokenize(%q) = %v, rune reference = %v", text, tokens, ref)
		}
		for i := range tokens {
			if tokens[i] != ref[i] {
				t.Fatalf("Tokenize(%q)[%d] = %v, rune reference %v", text, i, tokens[i], ref[i])
			}
		}
	})
}
