package simhash_test

import (
	"fmt"

	"mqdp/internal/simhash"
)

func ExampleDeduper() {
	d := simhash.NewDeduper(12, 1024)
	fmt.Println(d.Offer("senate passes the budget deal after a long night"))
	fmt.Println(d.Offer("senate passes the budget deal after a long night via @cnn"))
	fmt.Println(d.Offer("lakers win in overtime at the garden"))
	// Output:
	// true
	// false
	// true
}
