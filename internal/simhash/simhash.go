// Package simhash implements 64-bit SimHash fingerprints (Charikar's
// rounding scheme as used by Manku et al., WWW'07 — reference [17] of the
// paper) and a sliding-window near-duplicate filter. The paper's pipeline
// removes near-duplicate posts with SimHash before diversification, since
// microblogging posts are too short for text distance functions.
package simhash

import (
	"math/bits"

	"mqdp/internal/textutil"
)

// Hash is a 64-bit SimHash fingerprint.
type Hash uint64

// fnv1a64 hashes a string with FNV-1a (inlined to avoid allocating a
// hash.Hash64 per token).
func fnv1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Compute fingerprints text: each token bigram (shingle) votes its hash bits
// up or down; the sign of each bit-sum forms the fingerprint. Token bigrams
// keep short posts with shared vocabulary but different phrasing apart,
// while near-identical posts (retweets, "via @x" suffixes) collide within a
// few bits.
func Compute(text string) Hash {
	words := textutil.Words(text)
	return FromFeatures(shingles(words))
}

// FromFeatures builds a fingerprint from explicit feature strings.
func FromFeatures(features []string) Hash {
	var counts [64]int
	for _, f := range features {
		h := fnv1a64(f)
		for b := 0; b < 64; b++ {
			if h&(1<<uint(b)) != 0 {
				counts[b]++
			} else {
				counts[b]--
			}
		}
	}
	var out uint64
	for b := 0; b < 64; b++ {
		if counts[b] > 0 {
			out |= 1 << uint(b)
		}
	}
	return Hash(out)
}

// shingles returns word bigrams (and the lone word for single-word texts).
func shingles(words []string) []string {
	if len(words) == 0 {
		return nil
	}
	if len(words) == 1 {
		return words
	}
	out := make([]string, 0, len(words)-1)
	for i := 0; i+1 < len(words); i++ {
		out = append(out, words[i]+" "+words[i+1])
	}
	return out
}

// Distance returns the Hamming distance between two fingerprints.
func Distance(a, b Hash) int {
	return bits.OnesCount64(uint64(a) ^ uint64(b))
}

// Deduper filters a stream of texts, dropping near-duplicates: a text whose
// fingerprint is within MaxDistance bits of any fingerprint seen in the last
// Window accepted texts. The zero MaxDistance drops only exact fingerprint
// matches.
type Deduper struct {
	maxDistance int
	window      int
	recent      []Hash // ring buffer of accepted fingerprints
	next        int
	full        bool
	// buckets indexes the ring by the four 16-bit quarters of each hash,
	// so candidates share at least one exact quarter — guaranteed for any
	// pair within distance 3, and a strong prefilter beyond.
	buckets [4]map[uint16][]int
	seen    int
	dropped int
}

// NewDeduper returns a Deduper keeping window fingerprints and dropping
// texts within maxDistance bits of any of them. maxDistance above 3 falls
// back to comparing against the whole window for correctness.
func NewDeduper(maxDistance, window int) *Deduper {
	if window < 1 {
		window = 1
	}
	d := &Deduper{maxDistance: maxDistance, window: window, recent: make([]Hash, window)}
	for q := range d.buckets {
		d.buckets[q] = make(map[uint16][]int)
	}
	return d
}

// Offer fingerprints text and reports whether it is novel. Novel texts are
// remembered; duplicates are counted and dropped.
func (d *Deduper) Offer(text string) bool {
	return d.OfferHash(Compute(text))
}

// OfferHash is Offer for a precomputed fingerprint.
func (d *Deduper) OfferHash(h Hash) bool {
	d.seen++
	if d.isDuplicate(h) {
		d.dropped++
		return false
	}
	d.remember(h)
	return true
}

func (d *Deduper) isDuplicate(h Hash) bool {
	if d.maxDistance <= 3 {
		// Any hash within 3 bits differs in at most 3 of the 4 quarters,
		// so at least one quarter matches exactly.
		cand := map[int]struct{}{}
		for q := 0; q < 4; q++ {
			key := uint16(uint64(h) >> (16 * q))
			for _, idx := range d.buckets[q][key] {
				cand[idx] = struct{}{}
			}
		}
		for idx := range cand {
			if Distance(d.recent[idx], h) <= d.maxDistance {
				return true
			}
		}
		return false
	}
	limit := len(d.recent)
	if !d.full {
		limit = d.next
	}
	for i := 0; i < limit; i++ {
		if Distance(d.recent[i], h) <= d.maxDistance {
			return true
		}
	}
	return false
}

func (d *Deduper) remember(h Hash) {
	idx := d.next
	if d.full {
		// Evict the fingerprint previously stored at idx from buckets.
		old := d.recent[idx]
		for q := 0; q < 4; q++ {
			key := uint16(uint64(old) >> (16 * q))
			lst := d.buckets[q][key]
			for i, v := range lst {
				if v == idx {
					lst[i] = lst[len(lst)-1]
					lst = lst[:len(lst)-1]
					break
				}
			}
			if len(lst) == 0 {
				delete(d.buckets[q], key)
			} else {
				d.buckets[q][key] = lst
			}
		}
	}
	d.recent[idx] = h
	for q := 0; q < 4; q++ {
		key := uint16(uint64(h) >> (16 * q))
		d.buckets[q][key] = append(d.buckets[q][key], idx)
	}
	d.next++
	if d.next == len(d.recent) {
		d.next = 0
		d.full = true
	}
}

// Stats reports how many texts were offered and dropped.
func (d *Deduper) Stats() (seen, dropped int) { return d.seen, d.dropped }

// DeduperState is the serializable state of a Deduper: configuration, the
// accepted-fingerprint window oldest→newest, and counters. The quarter
// bucket index is derived data and is rebuilt on restore.
type DeduperState struct {
	MaxDistance int
	Window      int
	Recent      []Hash
	Seen        int
	Dropped     int
}

// State captures the deduper for serialization.
func (d *Deduper) State() DeduperState {
	st := DeduperState{
		MaxDistance: d.maxDistance,
		Window:      d.window,
		Seen:        d.seen,
		Dropped:     d.dropped,
	}
	// Export the ring oldest→newest so restore can replay it through
	// remember() regardless of the window size it lands in.
	if d.full {
		st.Recent = append(st.Recent, d.recent[d.next:]...)
		st.Recent = append(st.Recent, d.recent[:d.next]...)
	} else {
		st.Recent = append(st.Recent, d.recent[:d.next]...)
	}
	return st
}

// RestoreDeduper rebuilds a Deduper (including its bucket index) from a
// captured state.
func RestoreDeduper(st DeduperState) *Deduper {
	d := NewDeduper(st.MaxDistance, st.Window)
	for _, h := range st.Recent {
		d.remember(h)
	}
	d.seen = st.Seen
	d.dropped = st.Dropped
	return d
}
