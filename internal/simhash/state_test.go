package simhash

import (
	"math/rand"
	"testing"
)

// A restored deduper must make the same accept/drop decisions as the
// original on any subsequent input, for every capture point — including
// before and after the ring wraps.
func TestDeduperStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hashes := make([]Hash, 400)
	for i := range hashes {
		if i > 0 && rng.Intn(3) == 0 {
			// Near-duplicate of a recent hash: flip up to 2 bits.
			h := hashes[rng.Intn(i)]
			for b := 0; b < rng.Intn(3); b++ {
				h ^= 1 << uint(rng.Intn(64))
			}
			hashes[i] = h
		} else {
			hashes[i] = Hash(rng.Uint64())
		}
	}
	for _, window := range []int{1, 16, 100} {
		for split := 0; split <= len(hashes); split += 37 {
			d := NewDeduper(2, window)
			for _, h := range hashes[:split] {
				d.OfferHash(h)
			}
			r := RestoreDeduper(d.State())
			for _, h := range hashes[split:] {
				if d.OfferHash(h) != r.OfferHash(h) {
					t.Fatalf("window %d split %d: restored deduper diverged", window, split)
				}
			}
			ds, dd := d.Stats()
			rs, rd := r.Stats()
			if ds != rs || dd != rd {
				t.Fatalf("window %d split %d: stats %d/%d vs restored %d/%d", window, split, ds, dd, rs, rd)
			}
		}
	}
}
