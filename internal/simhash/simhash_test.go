package simhash

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestIdenticalTextsCollide(t *testing.T) {
	a := Compute("obama signs the budget bill tonight")
	b := Compute("obama signs the budget bill tonight")
	if a != b {
		t.Errorf("identical texts got different hashes %x %x", a, b)
	}
}

func TestNearDuplicatesAreClose(t *testing.T) {
	a := Compute("breaking: senate passes the budget deal after long night of votes")
	b := Compute("breaking: senate passes the budget deal after long night of votes via @cnn")
	c := Compute("lakers beat the celtics in overtime thriller at the garden")
	if d := Distance(a, b); d > 16 {
		t.Errorf("near-duplicates at distance %d, want small", d)
	}
	if d := Distance(a, c); d < 16 {
		t.Errorf("unrelated texts at distance %d, want large", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	if Distance(0, 0) != 0 {
		t.Error("Distance(x,x) != 0")
	}
	if Distance(0, ^Hash(0)) != 64 {
		t.Error("Distance(0, ~0) != 64")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a, b := Hash(rng.Uint64()), Hash(rng.Uint64())
		if Distance(a, b) != Distance(b, a) {
			t.Fatalf("distance not symmetric for %x %x", a, b)
		}
	}
}

func TestFromFeaturesEmpty(t *testing.T) {
	if got := FromFeatures(nil); got != 0 {
		t.Errorf("empty features hash = %x, want 0", got)
	}
}

func TestDeduperDropsExactDuplicates(t *testing.T) {
	d := NewDeduper(0, 100)
	if !d.Offer("first post about the election") {
		t.Fatal("first offer rejected")
	}
	if d.Offer("first post about the election") {
		t.Error("exact duplicate accepted")
	}
	if !d.Offer("completely different sports content here") {
		t.Error("novel text rejected")
	}
	seen, dropped := d.Stats()
	if seen != 3 || dropped != 1 {
		t.Errorf("stats = (%d, %d), want (3, 1)", seen, dropped)
	}
}

func TestDeduperNearDuplicateThreshold(t *testing.T) {
	d := NewDeduper(3, 100)
	base := Hash(0xDEADBEEFCAFE1234)
	if !d.OfferHash(base) {
		t.Fatal("base rejected")
	}
	if d.OfferHash(base ^ 0x7) { // 3 bits differ
		t.Error("3-bit variant accepted, want dropped")
	}
	if !d.OfferHash(base ^ 0xF) { // 4 bits differ
		t.Error("4-bit variant dropped, want accepted")
	}
}

func TestDeduperWindowEviction(t *testing.T) {
	d := NewDeduper(0, 2)
	h1, h2, h3 := Hash(1), Hash(2), Hash(4)
	for _, h := range []Hash{h1, h2, h3} {
		if !d.OfferHash(h) {
			t.Fatalf("novel hash %x rejected", h)
		}
	}
	// h1 was evicted by h3; it should now be accepted again.
	if !d.OfferHash(h1) {
		t.Error("evicted hash still treated as duplicate")
	}
	// h3 is still in the window.
	if d.OfferHash(h3) {
		t.Error("in-window duplicate accepted")
	}
}

func TestDeduperLargeDistanceFallback(t *testing.T) {
	d := NewDeduper(10, 16)
	base := Hash(0xAAAAAAAAAAAAAAAA)
	if !d.OfferHash(base) {
		t.Fatal("base rejected")
	}
	if d.OfferHash(base ^ 0x3FF) { // 10 bits differ
		t.Error("10-bit variant accepted with maxDistance 10")
	}
	if !d.OfferHash(base ^ 0x7FF) { // 11 bits differ
		t.Error("11-bit variant dropped with maxDistance 10")
	}
}

func TestDeduperBucketConsistencyUnderChurn(t *testing.T) {
	// Hammer a small window with random hashes; verify the banded filter
	// agrees with brute force on every decision.
	rng := rand.New(rand.NewSource(7))
	d := NewDeduper(3, 8)
	var window []Hash
	for i := 0; i < 500; i++ {
		var h Hash
		if len(window) > 0 && rng.Intn(3) == 0 {
			h = window[rng.Intn(len(window))] ^ Hash(1<<uint(rng.Intn(64))) // near-dup
		} else {
			h = Hash(rng.Uint64())
		}
		wantDup := false
		for _, w := range window {
			if Distance(w, h) <= 3 {
				wantDup = true
				break
			}
		}
		got := d.OfferHash(h)
		if got == wantDup {
			t.Fatalf("step %d: OfferHash(%x) = %v, brute force duplicate = %v", i, h, got, wantDup)
		}
		if got {
			window = append(window, h)
			if len(window) > 8 {
				window = window[1:]
			}
		}
	}
}

func TestDeduperMinimumWindow(t *testing.T) {
	d := NewDeduper(0, 0) // clamped to 1
	if !d.OfferHash(1) || d.OfferHash(1) {
		t.Error("window-1 deduper misbehaved on immediate duplicate")
	}
	if !d.OfferHash(2) || !d.OfferHash(1) {
		t.Error("window-1 deduper should forget after one accept")
	}
}

func BenchmarkCompute(b *testing.B) {
	texts := make([]string, 64)
	for i := range texts {
		texts[i] = fmt.Sprintf("breaking news item %d about the senate budget vote tonight with details %d", i, i*7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(texts[i%len(texts)])
	}
}
