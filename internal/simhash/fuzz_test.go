package simhash

import "testing"

func FuzzComputeDeterministic(f *testing.F) {
	f.Add("hello world", "hello world via @x")
	f.Add("", "x")
	f.Add("a b c d e f", "a b c d e g")
	f.Fuzz(func(t *testing.T, a, b string) {
		ha1, ha2 := Compute(a), Compute(a)
		if ha1 != ha2 {
			t.Fatalf("Compute(%q) nondeterministic", a)
		}
		hb := Compute(b)
		d := Distance(ha1, hb)
		if d < 0 || d > 64 {
			t.Fatalf("distance %d out of range", d)
		}
		if Distance(hb, ha1) != d {
			t.Fatal("distance not symmetric")
		}
		if a == b && d != 0 {
			t.Fatalf("equal texts at distance %d", d)
		}
	})
}
