package index

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshot is the gob-encoded on-disk form of an Index: a flat document list
// plus flattened posting lists (segment layout is an in-memory concern and
// is rebuilt on load).
type snapshot struct {
	Version int
	Docs    []Doc
	Terms   []termSnapshot
}

// termSnapshot flattens one posting list.
type termSnapshot struct {
	Term string
	Pos  []int32
	Freq []uint16
}

// Save serializes the index. Readers may continue concurrently; Save takes
// the write mutex, so the writer is paused and the snapshot is a consistent
// point-in-time image.
func (ix *Index) Save(w io.Writer) error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	v := ix.snap.Load()
	snap := snapshot{Version: snapshotVersion}
	for _, seg := range v.sealed {
		snap.Docs = append(snap.Docs, seg.docs...)
	}
	snap.Docs = append(snap.Docs, ix.activeDocs...)
	// Merge per-segment posting lists; segments are position-ordered so
	// concatenation keeps lists ascending.
	merged := make(map[string]*termSnapshot)
	var order []string
	appendList := func(term string, pl []posting) {
		ts, ok := merged[term]
		if !ok {
			ts = &termSnapshot{Term: term}
			merged[term] = ts
			order = append(order, term)
		}
		for _, p := range pl {
			ts.Pos = append(ts.Pos, p.pos)
			ts.Freq = append(ts.Freq, p.freq)
		}
	}
	for _, seg := range v.sealed {
		for term, ti := range seg.postings {
			appendList(term, ti.list)
		}
	}
	for term, lp := range ix.activeTerms {
		if p := lp.list.Load(); p != nil {
			appendList(term, *p)
		}
	}
	for _, term := range order {
		snap.Terms = append(snap.Terms, *merged[term])
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load reconstructs an index from a Save stream, validating the snapshot's
// structural invariants (time order, posting ranges and ordering) before
// rebuilding the segments.
func Load(r io.Reader) (*Index, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("index: load: unsupported snapshot version %d", snap.Version)
	}
	for i := 1; i < len(snap.Docs); i++ {
		if snap.Docs[i].Time < snap.Docs[i-1].Time {
			return nil, fmt.Errorf("index: load: documents out of time order at %d", i)
		}
	}
	n := int32(len(snap.Docs))
	for _, ts := range snap.Terms {
		if len(ts.Pos) != len(ts.Freq) {
			return nil, fmt.Errorf("index: load: term %q has mismatched posting arrays", ts.Term)
		}
		for i := range ts.Pos {
			if ts.Pos[i] < 0 || ts.Pos[i] >= n {
				return nil, fmt.Errorf("index: load: term %q references document %d of %d", ts.Term, ts.Pos[i], n)
			}
			if i > 0 && ts.Pos[i] <= ts.Pos[i-1] {
				return nil, fmt.Errorf("index: load: term %q posting list not ascending", ts.Term)
			}
		}
	}
	ix := New()
	for _, d := range snap.Docs {
		if err := ix.Add(d); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
	}
	return ix, nil
}
