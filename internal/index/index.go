// Package index implements an in-memory, real-time inverted index over
// microblogging posts — the "tweets inverted index" of the paper's Figure 1
// architecture (there built on Lucene, here built from scratch). Like
// Twitter's EarlyBird it is append-only in timestamp order and organized as
// a chain of sealed, immutable segments plus one active segment receiving
// writes: a single writer appends documents while readers run term,
// boolean-OR/AND, time-range and TF-IDF ranked queries.
package index

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"mqdp/internal/textutil"
)

// Doc is one indexed post.
type Doc struct {
	// ID is the application identifier.
	ID int64
	// Time is the publication timestamp (seconds, event time).
	Time float64
	// Text is the raw post text.
	Text string
}

// posting is one (document, term-frequency) entry; pos is the document's
// global position across all segments.
type posting struct {
	pos  int32
	freq uint16
}

// segment holds a contiguous run of documents and their postings. Sealed
// segments are immutable; only the last segment accepts writes.
type segment struct {
	docs     []Doc
	postings map[string][]posting
}

func newSegment(capHint int) *segment {
	return &segment{docs: make([]Doc, 0, capHint), postings: make(map[string][]posting)}
}

// DefaultSegmentSize is the document count at which the active segment is
// sealed and a fresh one opened.
const DefaultSegmentSize = 1 << 16

// Index is a real-time inverted index. The zero value is not usable; call
// New. One goroutine may Add while any number run queries.
type Index struct {
	mu       sync.RWMutex
	segments []*segment // all sealed except the last
	segStart []int32    // global position of each segment's first doc
	segSize  int
	count    int32
	terms    int // distinct terms across segments (upper-bound estimate is exact here)
	termSet  map[string]struct{}
}

// New returns an empty index with the default segment size.
func New() *Index { return NewWithSegmentSize(DefaultSegmentSize) }

// NewWithSegmentSize returns an empty index sealing segments at size docs.
func NewWithSegmentSize(size int) *Index {
	if size < 1 {
		size = 1
	}
	ix := &Index{segSize: size, termSet: make(map[string]struct{})}
	ix.segments = append(ix.segments, newSegment(min(size, 1024)))
	ix.segStart = append(ix.segStart, 0)
	return ix
}

// ErrTimeOrder reports an Add with a timestamp before the newest document.
var ErrTimeOrder = errors.New("index: documents must be added in timestamp order")

// Add indexes doc. Documents must arrive in nondecreasing Time order, which
// keeps every posting list time-sorted for free (the EarlyBird property).
// When the active segment is full it is sealed and a new one opened.
func (ix *Index) Add(doc Doc) error {
	o := obsState.Load()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.count > 0 {
		if last := ix.lastDocLocked(); doc.Time < last.Time {
			return fmt.Errorf("%w: %v after %v", ErrTimeOrder, doc.Time, last.Time)
		}
	}
	active := ix.segments[len(ix.segments)-1]
	if len(active.docs) >= ix.segSize {
		active = newSegment(min(ix.segSize, 1024))
		ix.segments = append(ix.segments, active)
		ix.segStart = append(ix.segStart, ix.count)
	}
	pos := ix.count
	active.docs = append(active.docs, doc)
	ix.count++
	counts := make(map[string]uint16)
	for _, tok := range textutil.Tokenize(doc.Text) {
		if tok.Kind == textutil.Word && textutil.IsStopword(tok.Text) {
			continue
		}
		if counts[tok.Text] < math.MaxUint16 {
			counts[tok.Text]++
		}
	}
	for term, freq := range counts {
		active.postings[term] = append(active.postings[term], posting{pos: pos, freq: freq})
		if _, seen := ix.termSet[term]; !seen {
			ix.termSet[term] = struct{}{}
			ix.terms++
		}
	}
	o.observeAppend(start, len(ix.segments), ix.terms)
	return nil
}

func (ix *Index) lastDocLocked() Doc {
	for s := len(ix.segments) - 1; s >= 0; s-- {
		if n := len(ix.segments[s].docs); n > 0 {
			return ix.segments[s].docs[n-1]
		}
	}
	return Doc{}
}

// Len reports the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return int(ix.count)
}

// Segments reports how many segments back the index (≥ 1).
func (ix *Index) Segments() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.segments)
}

// docLocked resolves a global position; the caller holds a lock.
func (ix *Index) docLocked(pos int32) Doc {
	s := sort.Search(len(ix.segStart), func(k int) bool { return ix.segStart[k] > pos }) - 1
	return ix.segments[s].docs[pos-ix.segStart[s]]
}

// Doc returns the document at position pos (0 ≤ pos < Len, in time order).
func (ix *Index) Doc(pos int32) Doc {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docLocked(pos)
}

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	total := 0
	for _, seg := range ix.segments {
		total += len(seg.postings[term])
	}
	return total
}

// Terms reports the number of distinct indexed terms.
func (ix *Index) Terms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.terms
}

// rangeFilterSeg appends the positions of seg's postings for pl within the
// time range [lo, hi]. The caller holds at least a read lock.
func (ix *Index) rangeFilterSeg(seg *segment, pl []posting, lo, hi float64, out []int32) []int32 {
	base := func(k int) Doc {
		// postings positions are global; map into this segment's docs.
		return ix.docLocked(pl[k].pos)
	}
	from := sort.Search(len(pl), func(k int) bool { return base(k).Time >= lo })
	to := sort.Search(len(pl), func(k int) bool { return base(k).Time > hi })
	for k := from; k < to; k++ {
		out = append(out, pl[k].pos)
	}
	return out
}

// termPositions gathers term's positions within [lo, hi] across segments,
// ascending. The caller holds at least a read lock.
func (ix *Index) termPositions(term string, lo, hi float64) []int32 {
	var out []int32
	for _, seg := range ix.segments {
		if pl := seg.postings[term]; len(pl) > 0 {
			out = ix.rangeFilterSeg(seg, pl, lo, hi, out)
		}
	}
	return out
}

// TermQuery returns the positions of documents containing term with Time in
// [lo, hi], ascending.
func (ix *Index) TermQuery(term string, lo, hi float64) []int32 {
	defer timeLookup()()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.termPositions(term, lo, hi)
}

// timeLookup returns the deferred half of a lookup-timing pair: a no-op
// closure when instrumentation is disabled.
func timeLookup() func() {
	o := obsState.Load()
	if o == nil {
		return func() {}
	}
	start := time.Now()
	return func() { o.observeLookup(start) }
}

// AnyQuery returns positions of documents containing at least one of terms,
// with Time in [lo, hi], ascending and deduplicated (boolean OR).
func (ix *Index) AnyQuery(terms []string, lo, hi float64) []int32 {
	defer timeLookup()()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var all []int32
	for _, t := range terms {
		all = append(all, ix.termPositions(t, lo, hi)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, p := range all {
		if i == 0 || all[i-1] != p {
			out = append(out, p)
		}
	}
	return out
}

// AllQuery returns positions of documents containing every one of terms,
// with Time in [lo, hi], ascending (boolean AND). An empty term list matches
// nothing.
func (ix *Index) AllQuery(terms []string, lo, hi float64) []int32 {
	defer timeLookup()()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(terms) == 0 {
		return nil
	}
	// Intersect starting from the rarest term.
	sorted := append([]string(nil), terms...)
	sort.Slice(sorted, func(i, j int) bool {
		return ix.docFreqLocked(sorted[i]) < ix.docFreqLocked(sorted[j])
	})
	cur := ix.termPositions(sorted[0], lo, hi)
	for _, t := range sorted[1:] {
		if len(cur) == 0 {
			return nil
		}
		other := ix.termPositions(t, lo, hi)
		next := cur[:0]
		k := 0
		for _, pos := range cur {
			for k < len(other) && other[k] < pos {
				k++
			}
			if k < len(other) && other[k] == pos {
				next = append(next, pos)
			}
		}
		cur = next
	}
	if len(cur) == 0 {
		return nil
	}
	return cur
}

func (ix *Index) docFreqLocked(term string) int {
	total := 0
	for _, seg := range ix.segments {
		total += len(seg.postings[term])
	}
	return total
}

// Hit is one ranked search result.
type Hit struct {
	Pos   int32
	Score float64
}

// hitHeap is a min-heap on score used for top-k selection.
type hitHeap []Hit

func (h hitHeap) Len() int { return len(h) }
func (h hitHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Pos > h[j].Pos // prefer earlier docs on ties
}
func (h hitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)   { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Search tokenizes query and returns the top-k documents in [lo, hi] by
// TF-IDF score, best first.
func (ix *Index) Search(query string, k int, lo, hi float64) []Hit {
	defer timeLookup()()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if k <= 0 {
		return nil
	}
	terms := make(map[string]struct{})
	for _, tok := range textutil.Tokenize(query) {
		if tok.Kind == textutil.Word && textutil.IsStopword(tok.Text) {
			continue
		}
		terms[tok.Text] = struct{}{}
	}
	n := float64(ix.count)
	scores := make(map[int32]float64)
	for term := range terms {
		df := ix.docFreqLocked(term)
		if df == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(df))
		for _, seg := range ix.segments {
			pl := seg.postings[term]
			if len(pl) == 0 {
				continue
			}
			from := sort.Search(len(pl), func(x int) bool { return ix.docLocked(pl[x].pos).Time >= lo })
			to := sort.Search(len(pl), func(x int) bool { return ix.docLocked(pl[x].pos).Time > hi })
			for _, p := range pl[from:to] {
				scores[p.pos] += (1 + math.Log(float64(p.freq))) * idf
			}
		}
	}
	h := make(hitHeap, 0, k)
	for pos, score := range scores {
		switch {
		case len(h) < k:
			heap.Push(&h, Hit{Pos: pos, Score: score})
		case score > h[0].Score || (score == h[0].Score && pos < h[0].Pos):
			// Deterministic top-k despite map iteration order: ties are
			// broken toward earlier documents.
			h[0] = Hit{Pos: pos, Score: score}
			heap.Fix(&h, 0)
		}
	}
	out := make([]Hit, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Hit)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
