// Package index implements an in-memory, real-time inverted index over
// microblogging posts — the "tweets inverted index" of the paper's Figure 1
// architecture (there built on Lucene, here built from scratch). Like
// Twitter's EarlyBird it is append-only in timestamp order and organized as
// a chain of sealed, immutable segments plus one active segment receiving
// writes: a single writer appends documents while readers run term,
// boolean-OR/AND, time-range and TF-IDF ranked queries.
//
// Concurrency model (lock-light snapshot reads): the segment list is
// published as a copy-on-write view behind an atomic.Pointer. Sealed
// segments are immutable, so readers pin the current view with one atomic
// load and query them with zero lock acquisitions — even while a writer is
// blocked inside Add holding the write mutex. The single active segment is
// readable through the same view via per-term atomically published posting
// slices and an atomically published document slice header; the only
// writer-side lock is a plain mutex serializing Add/AddBatch/Save. Document
// visibility is publish-ordered: the doc slice header is stored before the
// doc's postings, so a reader can momentarily miss the newest posting but
// never observes a posting whose document it cannot resolve.
package index

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mqdp/internal/textutil"
)

// Doc is one indexed post.
type Doc struct {
	// ID is the application identifier.
	ID int64
	// Time is the publication timestamp (seconds, event time).
	Time float64
	// Text is the raw post text.
	Text string
}

// posting is one (document, term-frequency) entry; pos is the document's
// global position across all segments. Postings are appended in timestamp
// order and never mutated, so every posting list is time-sorted for free
// (the EarlyBird property) and supports binary search over doc times.
type posting struct {
	pos  int32
	freq uint16
}

// DefaultSegmentSize is the document count at which the active segment is
// sealed and a fresh one opened.
const DefaultSegmentSize = 1 << 16

// Index is a real-time inverted index. The zero value is not usable; call
// New. One goroutine may Add while any number run queries.
type Index struct {
	// snap is the published read view; queries pin it with one atomic load.
	snap atomic.Pointer[view]

	// writeMu serializes Add/AddBatch (and Save, which needs a quiesced
	// writer). Queries never acquire it.
	writeMu sync.Mutex

	// Writer-private state, guarded by writeMu.
	segSize     int
	activeDocs  []Doc                    // live doc slice of the active segment
	activeTerms map[string]*livePostings // writer-side view of active postings
	termSet     map[string]struct{}      // distinct terms across all segments
	lastTime    float64
	hasDocs     bool

	// termCount mirrors len(termSet) for lock-free Terms().
	termCount atomic.Int64
}

// New returns an empty index with the default segment size.
func New() *Index { return NewWithSegmentSize(DefaultSegmentSize) }

// NewWithSegmentSize returns an empty index sealing segments at size docs.
func NewWithSegmentSize(size int) *Index {
	if size < 1 {
		size = 1
	}
	ix := &Index{
		segSize:     size,
		activeDocs:  make([]Doc, 0, min(size, 1024)),
		activeTerms: make(map[string]*livePostings),
		termSet:     make(map[string]struct{}),
	}
	ix.snap.Store(&view{active: &activeSeg{}})
	return ix
}

// ErrTimeOrder reports an Add with a timestamp before the newest document.
var ErrTimeOrder = errors.New("index: documents must be added in timestamp order")

// Add indexes doc. Documents must arrive in nondecreasing Time order. When
// the active segment is full it is sealed — frozen into an immutable segment
// with per-term time bounds — and a new view is published.
func (ix *Index) Add(doc Doc) error {
	var buf [32]textutil.Token
	return ix.AddTokens(doc, textutil.AppendTokens(buf[:0], doc.Text))
}

// AddTokens indexes doc using the caller's tokenization of doc.Text — the
// tokenize-once ingest path: callers that also run the tokens through a
// topic matcher (internal/match) tokenize each post exactly once.
// Tokenization and term counting happen outside the write lock.
func (ix *Index) AddTokens(doc Doc, tokens []textutil.Token) error {
	o := obsState.Load()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	counts := countTerms(tokens)
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	if err := ix.addLocked(doc, counts); err != nil {
		return err
	}
	o.observeAppend(start, 1, len(ix.snap.Load().sealed)+1, int(ix.termCount.Load()))
	return nil
}

// AddBatch indexes docs in order under a single write-lock round,
// tokenizing every document before the lock is taken. It returns the number
// of documents indexed; on a time-order violation indexing stops there and
// the accepted prefix remains visible.
func (ix *Index) AddBatch(docs []Doc) (int, error) {
	o := obsState.Load()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	counts := make([]map[string]uint16, len(docs))
	var buf []textutil.Token
	for i, d := range docs {
		buf = textutil.AppendTokens(buf[:0], d.Text)
		counts[i] = countTerms(buf)
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	for i, d := range docs {
		if err := ix.addLocked(d, counts[i]); err != nil {
			o.observeBatch(start, i, len(ix.snap.Load().sealed)+1, int(ix.termCount.Load()))
			return i, err
		}
	}
	o.observeBatch(start, len(docs), len(ix.snap.Load().sealed)+1, int(ix.termCount.Load()))
	return len(docs), nil
}

// countTerms folds tokens into per-term frequencies, skipping stopwords.
func countTerms(tokens []textutil.Token) map[string]uint16 {
	counts := make(map[string]uint16, len(tokens))
	for _, tok := range tokens {
		if tok.Kind == textutil.Word && textutil.IsStopword(tok.Text) {
			continue
		}
		if counts[tok.Text] < math.MaxUint16 {
			counts[tok.Text]++
		}
	}
	return counts
}

// addLocked appends one document and publishes it to readers: the doc slice
// header first, then its postings. Caller holds writeMu.
func (ix *Index) addLocked(doc Doc, counts map[string]uint16) error {
	if ix.hasDocs && doc.Time < ix.lastTime {
		return fmt.Errorf("%w: %v after %v", ErrTimeOrder, doc.Time, ix.lastTime)
	}
	v := ix.snap.Load()
	act := v.active
	if len(ix.activeDocs) >= ix.segSize {
		act = ix.sealLocked(v)
	}
	pos := act.start + int32(len(ix.activeDocs))
	ix.activeDocs = append(ix.activeDocs, doc)
	// Publish the document before its postings: readers resolve every
	// visible posting, at worst missing the newest ones.
	hdr := ix.activeDocs
	act.docs.Store(&hdr)
	ix.lastTime = doc.Time
	ix.hasDocs = true
	for term, freq := range counts {
		lp := ix.activeTerms[term]
		if lp == nil {
			// Token texts may alias the post text (textutil.AppendTokens);
			// clone before retaining the term as a long-lived map key.
			term = strings.Clone(term)
			lp = new(livePostings)
			ix.activeTerms[term] = lp
			act.posts.Store(term, lp)
			if _, seen := ix.termSet[term]; !seen {
				ix.termSet[term] = struct{}{}
				ix.termCount.Add(1)
			}
		}
		var pl []posting
		if p := lp.list.Load(); p != nil {
			pl = *p
		}
		pl = append(pl, posting{pos: pos, freq: freq})
		lp.list.Store(&pl)
	}
	return nil
}

// sealLocked freezes the active segment into an immutable sealed segment
// with per-term time bounds, publishes a new view with a fresh active
// segment, and resets the writer-side buffers. Caller holds writeMu.
func (ix *Index) sealLocked(v *view) *activeSeg {
	docs := ix.activeDocs
	times := make([]float64, len(docs))
	for i, d := range docs {
		times[i] = d.Time
	}
	seg := &sealedSeg{
		start:    v.active.start,
		docs:     docs,
		times:    times,
		postings: make(map[string]termInfo, len(ix.activeTerms)),
	}
	if len(times) > 0 {
		seg.minTime, seg.maxTime = times[0], times[len(times)-1]
	}
	for term, lp := range ix.activeTerms {
		p := lp.list.Load()
		if p == nil || len(*p) == 0 {
			continue
		}
		pl := *p
		seg.postings[term] = termInfo{
			list:    pl,
			minTime: times[pl[0].pos-seg.start],
			maxTime: times[pl[len(pl)-1].pos-seg.start],
		}
	}
	act := &activeSeg{start: seg.start + int32(len(docs))}
	sealed := make([]*sealedSeg, len(v.sealed), len(v.sealed)+1)
	copy(sealed, v.sealed)
	sealed = append(sealed, seg)
	starts := make([]int32, len(sealed)+1)
	for i, s := range sealed {
		starts[i] = s.start
	}
	starts[len(sealed)] = act.start
	ix.snap.Store(&view{sealed: sealed, starts: starts, active: act})
	ix.activeDocs = make([]Doc, 0, min(ix.segSize, 1024))
	ix.activeTerms = make(map[string]*livePostings)
	if o := obsState.Load(); o != nil {
		o.seals.Inc()
	}
	return act
}

// Len reports the number of indexed documents.
func (ix *Index) Len() int {
	return int(ix.snap.Load().count())
}

// Segments reports how many segments back the index (≥ 1).
func (ix *Index) Segments() int {
	return len(ix.snap.Load().sealed) + 1
}

// Doc returns the document at position pos (0 ≤ pos < Len, in time order).
func (ix *Index) Doc(pos int32) Doc {
	return ix.snap.Load().doc(pos)
}

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term string) int {
	return ix.snap.Load().docFreq(term)
}

// Terms reports the number of distinct indexed terms.
func (ix *Index) Terms() int {
	return int(ix.termCount.Load())
}
