package index

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mqdp/internal/textutil"
)

// idfWeight and tfWeight are the TF-IDF components shared by Search and its
// naive reference.
func idfWeight(n, df float64) float64 { return math.Log(1 + n/df) }
func tfWeight(freq uint16) float64    { return 1 + math.Log(float64(freq)) }

// view is the copy-on-write read snapshot published behind Index.snap.
// Everything reachable from sealed is immutable; the active segment is
// readable through atomically published slice headers. A reader pins one
// view with a single atomic load and never blocks on the writer.
type view struct {
	sealed []*sealedSeg
	// starts holds each sealed segment's start position plus the active
	// segment's start as the final entry, for O(log segs) doc resolution.
	starts []int32
	active *activeSeg
}

// sealedSeg is an immutable segment: documents, their timestamps (monotone,
// densely indexed for binary search), and postings with per-term time
// bounds for range skipping.
type sealedSeg struct {
	start            int32
	docs             []Doc
	times            []float64 // times[i] = docs[i].Time, nondecreasing
	minTime, maxTime float64
	postings         map[string]termInfo
}

// termInfo is one sealed posting list plus the time bounds of its first and
// last posting: a range query skips the whole list when its window misses
// [minTime, maxTime], and skips both binary searches when the window covers
// it.
type termInfo struct {
	list             []posting
	minTime, maxTime float64
}

// activeSeg is the single segment receiving writes, readable without locks:
// docs is the atomically published document slice header (its length is the
// visible doc count) and posts maps term → *livePostings. The doc header is
// published before the doc's postings, so a reader never sees a posting it
// cannot resolve; it clamps posting lists to the doc count it loaded.
type activeSeg struct {
	start int32
	docs  atomic.Pointer[[]Doc]
	posts sync.Map // string → *livePostings
}

// livePostings is one active-segment posting list; the writer appends and
// re-publishes the slice header, readers load it atomically.
type livePostings struct {
	list atomic.Pointer[[]posting]
}

// lookupStats accumulates per-query skip counters locally; they are flushed
// to the obs registry once per query.
type lookupStats struct {
	segSkips  int64 // segments skipped entirely by time bounds
	termSkips int64 // per-term posting lists skipped by their bounds
	postings  int64 // postings returned across all lists
}

// visibleDocs loads the active segment's published documents.
func (a *activeSeg) visibleDocs() []Doc {
	if d := a.docs.Load(); d != nil {
		return *d
	}
	return nil
}

// clampedPostings returns term's active posting list restricted to
// positions below limit (the doc count the reader has observed).
func (a *activeSeg) clampedPostings(term string, limit int32) []posting {
	x, ok := a.posts.Load(term)
	if !ok {
		return nil
	}
	p := x.(*livePostings).list.Load()
	if p == nil {
		return nil
	}
	pl := *p
	if n := len(pl); n > 0 && pl[n-1].pos >= limit {
		pl = pl[:sort.Search(n, func(k int) bool { return pl[k].pos >= limit })]
	}
	return pl
}

// count reports the visible document total.
func (v *view) count() int32 {
	return v.active.start + int32(len(v.active.visibleDocs()))
}

// doc resolves a global position against this view.
func (v *view) doc(pos int32) Doc {
	if pos >= v.active.start {
		return v.active.visibleDocs()[pos-v.active.start]
	}
	k := sort.Search(len(v.starts), func(i int) bool { return v.starts[i] > pos }) - 1
	s := v.sealed[k]
	return s.docs[pos-s.start]
}

// docFreq counts documents containing term across all segments.
func (v *view) docFreq(term string) int {
	total := 0
	for _, seg := range v.sealed {
		total += len(seg.postings[term].list)
	}
	act := v.active
	limit := act.start + int32(len(act.visibleDocs()))
	return total + len(act.clampedPostings(term, limit))
}

// rangePostings returns the slice of s's postings for term whose doc times
// fall in [lo, hi], using the per-term bounds to skip and binary search over
// the monotone doc times to trim: O(log n) instead of a linear scan.
func (s *sealedSeg) rangePostings(term string, lo, hi float64, st *lookupStats) []posting {
	ti, ok := s.postings[term]
	if !ok {
		return nil
	}
	if ti.minTime > hi || ti.maxTime < lo {
		st.termSkips++
		return nil
	}
	pl := ti.list
	from, to := 0, len(pl)
	if lo > ti.minTime {
		from = sort.Search(len(pl), func(k int) bool { return s.times[pl[k].pos-s.start] >= lo })
	}
	if hi < ti.maxTime {
		to = sort.Search(len(pl), func(k int) bool { return s.times[pl[k].pos-s.start] > hi })
	}
	if from >= to { // inverted window (lo > hi) that still overlaps the bounds
		return nil
	}
	return pl[from:to]
}

// rangeActive trims the active segment's clamped posting list to [lo, hi]
// by binary search over the published (monotone) doc times.
func rangeActive(docs []Doc, start int32, pl []posting, lo, hi float64) []posting {
	if len(pl) == 0 {
		return nil
	}
	first := docs[pl[0].pos-start].Time
	last := docs[pl[len(pl)-1].pos-start].Time
	if first > hi || last < lo {
		return nil
	}
	from, to := 0, len(pl)
	if lo > first {
		from = sort.Search(len(pl), func(k int) bool { return docs[pl[k].pos-start].Time >= lo })
	}
	if hi < last {
		to = sort.Search(len(pl), func(k int) bool { return docs[pl[k].pos-start].Time > hi })
	}
	if from >= to {
		return nil
	}
	return pl[from:to]
}

// termPositions gathers term's positions within [lo, hi] across segments,
// ascending.
func (v *view) termPositions(term string, lo, hi float64, st *lookupStats, out []int32) []int32 {
	base := len(out)
	for _, seg := range v.sealed {
		if seg.minTime > hi || seg.maxTime < lo {
			st.segSkips++
			continue
		}
		for _, p := range seg.rangePostings(term, lo, hi, st) {
			out = append(out, p.pos)
		}
	}
	act := v.active
	docs := act.visibleDocs()
	limit := act.start + int32(len(docs))
	for _, p := range rangeActive(docs, act.start, act.clampedPostings(term, limit), lo, hi) {
		out = append(out, p.pos)
	}
	st.postings += int64(len(out) - base)
	return out
}

// TermQuery returns the positions of documents containing term with Time in
// [lo, hi], ascending. It pins the current snapshot and acquires no locks.
func (ix *Index) TermQuery(term string, lo, hi float64) []int32 {
	var st lookupStats
	defer timeLookup(&st)()
	return ix.snap.Load().termPositions(term, lo, hi, &st, nil)
}

// timeLookup returns the deferred half of a lookup-timing pair: a no-op
// closure when instrumentation is disabled.
func timeLookup(st *lookupStats) func() {
	o := obsState.Load()
	if o == nil {
		return func() {}
	}
	start := time.Now()
	return func() { o.observeLookup(start, st) }
}

// AnyQuery returns positions of documents containing at least one of terms,
// with Time in [lo, hi], ascending and deduplicated (boolean OR).
func (ix *Index) AnyQuery(terms []string, lo, hi float64) []int32 {
	var st lookupStats
	defer timeLookup(&st)()
	v := ix.snap.Load()
	var all []int32
	for _, t := range terms {
		all = v.termPositions(t, lo, hi, &st, all)
	}
	return sortDedup(all)
}

// sortDedup sorts positions ascending and removes duplicates in place.
func sortDedup(all []int32) []int32 {
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:1]
	for _, p := range all[1:] {
		if out[len(out)-1] != p {
			out = append(out, p)
		}
	}
	return out
}

// AllQuery returns positions of documents containing every one of terms,
// with Time in [lo, hi], ascending (boolean AND). An empty term list matches
// nothing. Lists intersect rarest-first with galloping (exponential) search,
// so a rare ∧ common conjunction costs O(|rare| · log |common|).
func (ix *Index) AllQuery(terms []string, lo, hi float64) []int32 {
	var st lookupStats
	defer timeLookup(&st)()
	v := ix.snap.Load()
	if len(terms) == 0 {
		return nil
	}
	lists := make([][]int32, 0, len(terms))
	for _, t := range terms {
		pl := v.termPositions(t, lo, hi, &st, nil)
		if len(pl) == 0 {
			return nil
		}
		lists = append(lists, pl)
	}
	// Rarest-first: start from the shortest in-window list.
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cur := lists[0]
	for _, other := range lists[1:] {
		cur = intersectGallop(cur, other)
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// intersectGallop intersects two ascending position lists, galloping through
// b (the larger list): for each element of a the cursor in b advances by
// doubling steps, then binary-searches inside the last step window.
func intersectGallop(a, b []int32) []int32 {
	out := a[:0]
	j := 0
	for _, x := range a {
		if j >= len(b) {
			break
		}
		if b[j] < x {
			// Gallop: find an upper bound for x from offset j.
			step := 1
			for j+step < len(b) && b[j+step] < x {
				step <<= 1
			}
			hiB := min(j+step+1, len(b))
			j += sort.Search(hiB-j, func(k int) bool { return b[j+k] >= x })
		}
		if j < len(b) && b[j] == x {
			out = append(out, x)
			j++
		}
	}
	return out
}

// Hit is one ranked search result.
type Hit struct {
	Pos   int32
	Score float64
}

// worseHit reports whether a ranks strictly below b in the search order:
// lower score, or equal score and later position. This single total order
// drives both top-k eviction and the final sort, so equal-score results are
// deterministic regardless of accumulation order.
func worseHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Pos > b.Pos
}

// topK is a size-bounded selection: a slice-backed min-heap on worseHit
// whose root is the current worst retained hit. Offers below the root are
// rejected with one comparison and no heap movement, avoiding the
// interface boxing and full-heap churn of container/heap.
type topK struct {
	hits []Hit
	k    int
}

func (t *topK) offer(h Hit) {
	if len(t.hits) < t.k {
		t.hits = append(t.hits, h)
		// Sift up.
		i := len(t.hits) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !worseHit(t.hits[i], t.hits[parent]) {
				break
			}
			t.hits[i], t.hits[parent] = t.hits[parent], t.hits[i]
			i = parent
		}
		return
	}
	if !worseHit(t.hits[0], h) {
		return // h does not beat the current worst
	}
	t.hits[0] = h
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(t.hits) && worseHit(t.hits[l], t.hits[smallest]) {
			smallest = l
		}
		if r < len(t.hits) && worseHit(t.hits[r], t.hits[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.hits[i], t.hits[smallest] = t.hits[smallest], t.hits[i]
		i = smallest
	}
}

// sorted returns the retained hits best-first.
func (t *topK) sorted() []Hit {
	sort.Slice(t.hits, func(i, j int) bool { return worseHit(t.hits[j], t.hits[i]) })
	return t.hits
}

// searchTerms extracts the distinct non-stopword query terms, sorted.
// A sorted slice (not a map) fixes the score-accumulation order, so the
// floating-point rounding of a document's score is deterministic and
// identical between Search and SearchScan.
func searchTerms(query string) []string {
	seen := make(map[string]struct{})
	var terms []string
	var buf [32]textutil.Token
	for _, tok := range textutil.AppendTokens(buf[:0], query) {
		if tok.Kind == textutil.Word && textutil.IsStopword(tok.Text) {
			continue
		}
		if _, dup := seen[tok.Text]; dup {
			continue
		}
		seen[tok.Text] = struct{}{}
		terms = append(terms, tok.Text)
	}
	sort.Strings(terms)
	return terms
}

// Search tokenizes query and returns the top-k documents in [lo, hi] by
// TF-IDF score, best first. Equal scores break toward earlier documents.
func (ix *Index) Search(query string, k int, lo, hi float64) []Hit {
	var st lookupStats
	defer timeLookup(&st)()
	if k <= 0 {
		return nil
	}
	v := ix.snap.Load()
	scores := v.score(searchTerms(query), lo, hi, &st)
	sel := topK{hits: make([]Hit, 0, min(k, len(scores))), k: k}
	for pos, score := range scores {
		sel.offer(Hit{Pos: pos, Score: score})
	}
	return sel.sorted()
}

// score accumulates TF-IDF scores for every document in [lo, hi] matching
// at least one term, using the skip bounds to trim each posting list.
func (v *view) score(terms []string, lo, hi float64, st *lookupStats) map[int32]float64 {
	n := float64(v.count())
	scores := make(map[int32]float64)
	act := v.active
	actDocs := act.visibleDocs()
	actLimit := act.start + int32(len(actDocs))
	for _, term := range terms {
		df := v.docFreq(term)
		if df == 0 {
			continue
		}
		idf := idfWeight(n, float64(df))
		for _, seg := range v.sealed {
			if seg.minTime > hi || seg.maxTime < lo {
				st.segSkips++
				continue
			}
			for _, p := range seg.rangePostings(term, lo, hi, st) {
				scores[p.pos] += tfWeight(p.freq) * idf
				st.postings++
			}
		}
		for _, p := range rangeActive(actDocs, act.start, act.clampedPostings(term, actLimit), lo, hi) {
			scores[p.pos] += tfWeight(p.freq) * idf
			st.postings++
		}
	}
	return scores
}
