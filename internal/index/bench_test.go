package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// benchIndex builds the benchmark corpus: n docs in time order, a handful of
// common terms plus one rare term, sealed into segments of segSize. The
// interesting regime for time-skipping is a narrow window over a large
// index, which is what the paper's real-time queries look like.
func benchIndex(n, segSize int) *Index {
	rng := rand.New(rand.NewSource(1))
	ix := NewWithSegmentSize(segSize)
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("obama w%d w%d", i%17, rng.Intn(50))
		if i%97 == 0 {
			text += " rare"
		}
		if err := ix.Add(Doc{ID: int64(i), Time: float64(i), Text: text}); err != nil {
			panic(err)
		}
	}
	return ix
}

const (
	benchDocs    = 200_000
	benchSegSize = 4096
)

// BenchmarkTermQueryRange measures a narrow-window (0.5% of the corpus)
// term lookup: the skipping path against the linear-scan reference.
func BenchmarkTermQueryRange(b *testing.B) {
	ix := benchIndex(benchDocs, benchSegSize)
	lo, hi := float64(benchDocs)*0.75, float64(benchDocs)*0.755
	b.Run("skip", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(ix.TermQuery("obama", lo, hi)) == 0 {
				b.Fatal("no hits")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(ix.TermQueryScan("obama", lo, hi)) == 0 {
				b.Fatal("no hits")
			}
		}
	})
}

// BenchmarkAllQueryGalloping measures an AND of one dense and one rare term
// over the full corpus: galloping intersection against the two-pointer merge
// over linearly filtered lists.
func BenchmarkAllQueryGalloping(b *testing.B) {
	ix := benchIndex(benchDocs, benchSegSize)
	terms := []string{"obama", "rare"}
	b.Run("gallop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(ix.AllQuery(terms, 0, benchDocs)) == 0 {
				b.Fatal("no hits")
			}
		}
	})
	b.Run("merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(ix.AllQueryScan(terms, 0, benchDocs)) == 0 {
				b.Fatal("no hits")
			}
		}
	})
}

// BenchmarkConcurrentReadersWithWriter measures query throughput with every
// CPU running readers while one goroutine appends continuously — the
// read-path scaling the snapshot design exists for. ns/op is per query.
func BenchmarkConcurrentReadersWithWriter(b *testing.B) {
	ix := benchIndex(benchDocs, benchSegSize)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := float64(benchDocs)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			t++
			_ = ix.Add(Doc{ID: int64(benchDocs + i), Time: t, Text: "obama fresh w3"})
		}
	}()
	lo, hi := float64(benchDocs)*0.75, float64(benchDocs)*0.755
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if len(ix.TermQuery("obama", lo, hi)) == 0 {
				b.Fatal("no hits")
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
