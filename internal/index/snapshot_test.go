package index

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	ix := New()
	for i := 0; i < 200; i++ {
		text := fmt.Sprintf("post %d about obama", i)
		if i%3 == 0 {
			text += " and the senate budget"
		}
		if err := ix.Add(Doc{ID: int64(i), Time: float64(i), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() || loaded.Terms() != ix.Terms() {
		t.Fatalf("loaded %d docs / %d terms, want %d / %d", loaded.Len(), loaded.Terms(), ix.Len(), ix.Terms())
	}
	for _, term := range []string{"obama", "senate", "budget", "nonexistent"} {
		a := ix.TermQuery(term, 0, 1e9)
		b := loaded.TermQuery(term, 0, 1e9)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("TermQuery(%q) differs after reload: %v vs %v", term, a, b)
		}
	}
	ha := ix.Search("obama senate", 5, 0, 1e9)
	hb := loaded.Search("obama senate", 5, 0, 1e9)
	if !reflect.DeepEqual(ha, hb) {
		t.Errorf("Search differs after reload: %v vs %v", ha, hb)
	}
	// The loaded index keeps accepting documents.
	if err := loaded.Add(Doc{ID: 999, Time: 1e6, Text: "obama again"}); err != nil {
		t.Fatalf("Add after load: %v", err)
	}
	if got := loaded.DocFreq("obama"); got != ix.DocFreq("obama")+1 {
		t.Errorf("post-load DocFreq = %d", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadRejectsBadSnapshots(t *testing.T) {
	encode := func(s snapshot) *bytes.Buffer {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	cases := []struct {
		name string
		snap snapshot
	}{
		{"wrong version", snapshot{Version: 99}},
		{"out-of-order docs", snapshot{Version: 1, Docs: []Doc{{ID: 1, Time: 5}, {ID: 2, Time: 1}}}},
		{"mismatched postings", snapshot{Version: 1, Docs: []Doc{{ID: 1}},
			Terms: []termSnapshot{{Term: "x", Pos: []int32{0}, Freq: nil}}}},
		{"dangling posting", snapshot{Version: 1, Docs: []Doc{{ID: 1}},
			Terms: []termSnapshot{{Term: "x", Pos: []int32{5}, Freq: []uint16{1}}}}},
		{"non-ascending postings", snapshot{Version: 1, Docs: []Doc{{ID: 1}, {ID: 2, Time: 1}},
			Terms: []termSnapshot{{Term: "x", Pos: []int32{1, 0}, Freq: []uint16{1, 1}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(encode(tc.snap)); err == nil {
				t.Errorf("bad snapshot %q accepted", tc.name)
			}
		})
	}
}

func TestSaveEmptyIndex(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 || loaded.Terms() != 0 {
		t.Errorf("loaded empty index has %d docs / %d terms", loaded.Len(), loaded.Terms())
	}
}
