package index

import (
	"sync/atomic"
	"time"

	"mqdp/internal/obs"
)

// indexObs bundles the inverted-index instruments. A nil pointer is the
// disabled state; Add and the query paths pay one atomic load and one branch
// per call. Query-path skip counters are accumulated in a stack-local
// lookupStats and flushed once per query, so the hot loops never touch an
// atomic.
type indexObs struct {
	appendTime *obs.Histogram // one Add: tokenize + postings append
	batchTime  *obs.Histogram // one AddBatch: tokenize + single-lock append run
	lookupTime *obs.Histogram // one query: term/any/all/search
	docs       *obs.Counter
	segments   *obs.Gauge
	terms      *obs.Gauge
	seals      *obs.Counter // active-segment seals (snapshot publications)
	segSkips   *obs.Counter // segments skipped whole by time bounds
	termSkips  *obs.Counter // per-term posting lists skipped by their bounds
	postings   *obs.Counter // postings touched by range queries
}

var obsState atomic.Pointer[indexObs]

// SetObs wires the index instruments into r; nil disables instrumentation.
func SetObs(r *obs.Registry) {
	if r == nil {
		obsState.Store(nil)
		return
	}
	obsState.Store(&indexObs{
		appendTime: r.Histogram("mqdp_index_append_seconds", "wall time of one document append (tokenize + postings)", obs.TimeBuckets),
		batchTime:  r.Histogram("mqdp_index_batch_seconds", "wall time of one AddBatch call", obs.TimeBuckets),
		lookupTime: r.Histogram("mqdp_index_lookup_seconds", "wall time of one posting lookup/query", obs.TimeBuckets),
		docs:       r.Counter("mqdp_index_docs_total", "documents appended to the index"),
		segments:   r.Gauge("mqdp_index_segments", "segments backing the index (sealed + active)"),
		terms:      r.Gauge("mqdp_index_terms", "distinct indexed terms"),
		seals:      r.Counter("mqdp_index_seals_total", "active segments sealed (read-snapshot publications)"),
		segSkips:   r.Counter("mqdp_index_range_segments_skipped_total", "segments skipped whole by time bounds during range queries"),
		termSkips:  r.Counter("mqdp_index_range_terms_skipped_total", "per-term posting lists skipped by their time bounds"),
		postings:   r.Counter("mqdp_index_postings_scanned_total", "postings touched by range queries"),
	})
}

// observeAppend records n successful Adds. Safe on a nil receiver.
func (o *indexObs) observeAppend(start time.Time, n, segments, terms int) {
	if o == nil {
		return
	}
	o.appendTime.ObserveSince(start)
	o.docs.Add(int64(n))
	o.segments.Set(float64(segments))
	o.terms.Set(float64(terms))
}

// observeBatch records one AddBatch of n docs. Safe on a nil receiver.
func (o *indexObs) observeBatch(start time.Time, n, segments, terms int) {
	if o == nil {
		return
	}
	o.batchTime.ObserveSince(start)
	o.docs.Add(int64(n))
	o.segments.Set(float64(segments))
	o.terms.Set(float64(terms))
}

// observeLookup records one query and flushes its skip counters. Safe on a
// nil receiver.
func (o *indexObs) observeLookup(start time.Time, st *lookupStats) {
	if o == nil {
		return
	}
	o.lookupTime.ObserveSince(start)
	if st.segSkips > 0 {
		o.segSkips.Add(st.segSkips)
	}
	if st.termSkips > 0 {
		o.termSkips.Add(st.termSkips)
	}
	if st.postings > 0 {
		o.postings.Add(st.postings)
	}
}
