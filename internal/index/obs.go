package index

import (
	"sync/atomic"
	"time"

	"mqdp/internal/obs"
)

// indexObs bundles the inverted-index instruments. A nil pointer is the
// disabled state; Add and the query paths pay one atomic load and one branch
// per call.
type indexObs struct {
	appendTime *obs.Histogram // one Add: tokenize + postings append
	lookupTime *obs.Histogram // one query: term/any/all/search
	docs       *obs.Counter
	segments   *obs.Gauge
	terms      *obs.Gauge
}

var obsState atomic.Pointer[indexObs]

// SetObs wires the index instruments into r; nil disables instrumentation.
func SetObs(r *obs.Registry) {
	if r == nil {
		obsState.Store(nil)
		return
	}
	obsState.Store(&indexObs{
		appendTime: r.Histogram("mqdp_index_append_seconds", "wall time of one document append (tokenize + postings)", obs.TimeBuckets),
		lookupTime: r.Histogram("mqdp_index_lookup_seconds", "wall time of one posting lookup/query", obs.TimeBuckets),
		docs:       r.Counter("mqdp_index_docs_total", "documents appended to the index"),
		segments:   r.Gauge("mqdp_index_segments", "segments backing the index (sealed + active)"),
		terms:      r.Gauge("mqdp_index_terms", "distinct indexed terms"),
	})
}

// observeAppend records one successful Add. Safe on a nil receiver.
func (o *indexObs) observeAppend(start time.Time, segments, terms int) {
	if o == nil {
		return
	}
	o.appendTime.ObserveSince(start)
	o.docs.Inc()
	o.segments.Set(float64(segments))
	o.terms.Set(float64(terms))
}

// observeLookup records one query. Safe on a nil receiver.
func (o *indexObs) observeLookup(start time.Time) {
	if o != nil {
		o.lookupTime.ObserveSince(start)
	}
}
