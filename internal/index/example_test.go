package index_test

import (
	"fmt"

	"mqdp/internal/index"
)

func Example() {
	ix := index.New()
	docs := []index.Doc{
		{ID: 1, Time: 10, Text: "obama speaks on the economy"},
		{ID: 2, Time: 20, Text: "sports roundup tonight"},
		{ID: 3, Time: 30, Text: "senate reacts to obama plan"},
	}
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			panic(err)
		}
	}
	for _, pos := range ix.TermQuery("obama", 0, 100) {
		fmt.Println(ix.Doc(pos).ID)
	}
	fmt.Println("both terms:", len(ix.AllQuery([]string{"obama", "senate"}, 0, 100)))
	// Output:
	// 1
	// 3
	// both terms: 1
}
