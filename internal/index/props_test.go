package index

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// randCorpus builds a deterministic random corpus: vocab words with a skewed
// (roughly zipfian) draw, clustered timestamps, segment size forced small so
// queries cross many sealed segments plus the active one.
func randCorpus(rng *rand.Rand, n, segSize int) *Index {
	ix := NewWithSegmentSize(segSize)
	now := 0.0
	for i := 0; i < n; i++ {
		now += rng.Float64() * 2
		text := ""
		words := 1 + rng.Intn(5)
		for w := 0; w < words; w++ {
			// Skewed vocabulary: low word ids are much more frequent.
			id := int(rng.ExpFloat64() * 4)
			if id > 40 {
				id = 40
			}
			text += fmt.Sprintf("w%d ", id)
		}
		if rng.Intn(10) == 0 {
			text += "#tag"
		}
		if err := ix.Add(Doc{ID: int64(i), Time: now, Text: text}); err != nil {
			panic(err)
		}
	}
	return ix
}

// randWindow picks a random time window, sometimes degenerate or out of
// range, to exercise the skip bounds from every side.
func randWindow(rng *rand.Rand, span float64) (lo, hi float64) {
	switch rng.Intn(7) {
	case 0:
		return -10, -1 // entirely before
	case 1:
		return span + 1, span + 10 // entirely after
	case 2:
		return 0, span // everything
	case 3:
		p := rng.Float64() * span
		return p, p // point window
	case 4:
		// Inverted window overlapping the data: must select nothing
		// without tripping the binary-search slicing.
		return span * 0.7, span * 0.3
	default:
		a, b := rng.Float64()*span, rng.Float64()*span
		if a > b {
			a, b = b, a
		}
		return a, b
	}
}

// TestQueryEquivalenceProperty pins every optimized query path to its naive
// linear-scan reference over random corpora, vocabularies and windows.
func TestQueryEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		segSize := 1 + rng.Intn(40)
		n := 50 + rng.Intn(300)
		ix := randCorpus(rng, n, segSize)
		span := ix.Doc(int32(n-1)).Time + 1
		for q := 0; q < 40; q++ {
			lo, hi := randWindow(rng, span)
			term := fmt.Sprintf("w%d", rng.Intn(45))
			if got, want := ix.TermQuery(term, lo, hi), ix.TermQueryScan(term, lo, hi); !equalPositions(got, want) {
				t.Fatalf("trial %d: TermQuery(%q, %v, %v) = %v, scan = %v", trial, term, lo, hi, got, want)
			}
			terms := []string{
				fmt.Sprintf("w%d", rng.Intn(45)),
				fmt.Sprintf("w%d", rng.Intn(10)),
				fmt.Sprintf("w%d", rng.Intn(3)),
			}
			if got, want := ix.AnyQuery(terms, lo, hi), ix.AnyQueryScan(terms, lo, hi); !equalPositions(got, want) {
				t.Fatalf("trial %d: AnyQuery(%v, %v, %v) = %v, scan = %v", trial, terms, lo, hi, got, want)
			}
			if got, want := ix.AllQuery(terms, lo, hi), ix.AllQueryScan(terms, lo, hi); !equalPositions(got, want) {
				t.Fatalf("trial %d: AllQuery(%v, %v, %v) = %v, scan = %v", trial, terms, lo, hi, got, want)
			}
			k := 1 + rng.Intn(12)
			query := fmt.Sprintf("w%d w%d #tag", rng.Intn(10), rng.Intn(45))
			got, want := ix.Search(query, k, lo, hi), ix.SearchScan(query, k, lo, hi)
			if !equalHits(got, want) {
				t.Fatalf("trial %d: Search(%q, %d, %v, %v) = %v, scan = %v", trial, query, k, lo, hi, got, want)
			}
		}
	}
}

func equalPositions(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalHits(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// FuzzTermQueryEquivalence fuzzes term and window over a fixed corpus,
// asserting the skipping path matches the linear scan.
func FuzzTermQueryEquivalence(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	ix := randCorpus(rng, 400, 16)
	span := ix.Doc(int32(ix.Len() - 1)).Time
	f.Add("w0", 0.0, 10.0)
	f.Add("w3", -5.0, 1e9)
	f.Add("#tag", span/3, span/2)
	f.Add("missing", 0.0, span)
	f.Add("w1", span/2, span/4) // inverted window overlapping the data
	f.Fuzz(func(t *testing.T, term string, lo, hi float64) {
		got := ix.TermQuery(term, lo, hi)
		want := ix.TermQueryScan(term, lo, hi)
		if !equalPositions(got, want) {
			t.Fatalf("TermQuery(%q, %v, %v) = %v, scan = %v", term, lo, hi, got, want)
		}
		gotAll := ix.AllQuery([]string{term, "w0"}, lo, hi)
		wantAll := ix.AllQueryScan([]string{term, "w0"}, lo, hi)
		if !equalPositions(gotAll, wantAll) {
			t.Fatalf("AllQuery([%q w0], %v, %v) = %v, scan = %v", term, lo, hi, gotAll, wantAll)
		}
	})
}

// TestConcurrentEquivalenceWithWriter runs the full query surface against a
// hot writer under -race. Queries over the frozen prefix window must match
// the reference exactly at all times; live-window queries must stay sorted,
// deduplicated and resolvable.
func TestConcurrentEquivalenceWithWriter(t *testing.T) {
	const prefix = 500
	ix := NewWithSegmentSize(64)
	for i := 0; i < prefix; i++ {
		mustAdd(t, ix, Doc{ID: int64(i), Time: float64(i), Text: fmt.Sprintf("w%d obama news", i%7)})
	}
	prefixHi := float64(prefix - 1)
	wantTerm := ix.TermQueryScan("obama", 0, prefixHi)
	wantAll := ix.AllQueryScan([]string{"obama", "w3"}, 0, prefixHi)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := prefix; i < prefix+3000; i++ {
			_ = ix.Add(Doc{ID: int64(i), Time: float64(i), Text: fmt.Sprintf("w%d obama fresh", i%7)})
		}
		stop.Store(true)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				// Frozen prefix: exact equivalence while the writer runs.
				if got := ix.TermQuery("obama", 0, prefixHi); !equalPositions(got, wantTerm) {
					t.Errorf("prefix TermQuery diverged: %d vs %d", len(got), len(wantTerm))
					return
				}
				if got := ix.AllQuery([]string{"obama", "w3"}, 0, prefixHi); !equalPositions(got, wantAll) {
					t.Errorf("prefix AllQuery diverged")
					return
				}
				// Search scores depend on total corpus size (IDF), so a
				// frozen window still rescores as the writer runs; check
				// structural invariants instead of a fixed reference.
				hits := ix.Search("obama w2", 10, 0, prefixHi)
				if len(hits) > 10 {
					t.Errorf("prefix Search returned %d > k hits", len(hits))
					return
				}
				for i := 1; i < len(hits); i++ {
					if !worseHit(hits[i], hits[i-1]) {
						t.Errorf("prefix Search hits out of order at %d", i)
						return
					}
				}
				for _, h := range hits {
					if d := ix.Doc(h.Pos); d.Time > prefixHi {
						t.Errorf("prefix Search hit outside window: %v", d.Time)
						return
					}
				}
				// Live window: structural invariants only.
				hi := float64(prefix + rng.Intn(3000))
				got := ix.AnyQuery([]string{"obama", "fresh"}, 0, hi)
				for i := 1; i < len(got); i++ {
					if got[i-1] >= got[i] {
						t.Errorf("live AnyQuery not strictly ascending at %d", i)
						return
					}
				}
				if len(got) > 0 {
					// Every returned position resolves against the index.
					d := ix.Doc(got[len(got)-1])
					if d.Time > hi {
						t.Errorf("live query returned doc outside window: %v > %v", d.Time, hi)
						return
					}
				}
				_ = ix.DocFreq("obama")
				_ = ix.Len()
				_ = ix.Terms()
			}
		}(int64(r))
	}
	wg.Wait()
	// Quiesced: full equivalence once more.
	if got, want := ix.TermQuery("fresh", 0, 1e9), ix.TermQueryScan("fresh", 0, 1e9); !equalPositions(got, want) {
		t.Fatalf("post-writer TermQuery = %d docs, scan = %d", len(got), len(want))
	}
	if got, want := ix.Search("obama w2", 10, 0, prefixHi), ix.SearchScan("obama w2", 10, 0, prefixHi); !equalHits(got, want) {
		t.Fatalf("post-writer Search diverged from scan")
	}
	if ix.DocFreq("obama") != prefix+3000 {
		t.Fatalf("DocFreq(obama) = %d", ix.DocFreq("obama"))
	}
}

func mustAdd(t *testing.T, ix *Index, d Doc) {
	t.Helper()
	if err := ix.Add(d); err != nil {
		t.Fatal(err)
	}
}

// TestReadsCompleteWhileWriterMutexHeld pins the zero-lock acceptance
// criterion: every query method completes while the writer mutex is held,
// proving the read path acquires no lock shared with the writer.
func TestReadsCompleteWhileWriterMutexHeld(t *testing.T) {
	ix := NewWithSegmentSize(32)
	for i := 0; i < 200; i++ {
		mustAdd(t, ix, Doc{ID: int64(i), Time: float64(i), Text: fmt.Sprintf("w%d obama", i%5)})
	}
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got := ix.TermQuery("obama", 0, 1e9); len(got) != 200 {
			t.Errorf("TermQuery under held writer mutex = %d docs", len(got))
		}
		_ = ix.AnyQuery([]string{"obama", "w1"}, 0, 1e9)
		_ = ix.AllQuery([]string{"obama", "w1"}, 0, 1e9)
		_ = ix.Search("obama w2", 5, 0, 1e9)
		_ = ix.Doc(150)
		_ = ix.DocFreq("w3")
		_ = ix.Len()
		_ = ix.Segments()
		_ = ix.Terms()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queries blocked while the writer mutex was held")
	}
}

// TestSearchDeterministicTies pins tie-breaking: equal-score hits come back
// ordered by position, identically across repeated runs (map iteration
// order must not leak through) and identically to the full-sort reference.
func TestSearchDeterministicTies(t *testing.T) {
	ix := New()
	// 40 docs with identical text → identical TF-IDF scores.
	for i := 0; i < 40; i++ {
		mustAdd(t, ix, Doc{ID: int64(i), Time: float64(i), Text: "obama speech"})
	}
	want := ix.SearchScan("obama", 7, 0, 1e9)
	if len(want) != 7 {
		t.Fatalf("reference returned %d hits", len(want))
	}
	for i, h := range want {
		if h.Pos != int32(i) {
			t.Fatalf("reference tie order wrong: hit %d at pos %d", i, h.Pos)
		}
	}
	for run := 0; run < 50; run++ {
		got := ix.Search("obama", 7, 0, 1e9)
		if !equalHits(got, want) {
			t.Fatalf("run %d: Search ties nondeterministic: %v vs %v", run, got, want)
		}
	}
}

// TestAddBatch pins the batch path: equivalence with serial Adds and the
// accepted-prefix contract on a time-order violation.
func TestAddBatch(t *testing.T) {
	docs := make([]Doc, 100)
	for i := range docs {
		docs[i] = Doc{ID: int64(i), Time: float64(i), Text: fmt.Sprintf("w%d obama", i%6)}
	}
	serial := NewWithSegmentSize(16)
	for _, d := range docs {
		mustAdd(t, serial, d)
	}
	batched := NewWithSegmentSize(16)
	n, err := batched.AddBatch(docs)
	if err != nil || n != len(docs) {
		t.Fatalf("AddBatch = %d, %v", n, err)
	}
	if batched.Len() != serial.Len() || batched.Terms() != serial.Terms() {
		t.Fatalf("batch Len/Terms = %d/%d, serial %d/%d", batched.Len(), batched.Terms(), serial.Len(), serial.Terms())
	}
	for _, term := range []string{"obama", "w0", "w5", "missing"} {
		if got, want := batched.TermQuery(term, 0, 1e9), serial.TermQuery(term, 0, 1e9); !equalPositions(got, want) {
			t.Errorf("TermQuery(%q): batch %v, serial %v", term, got, want)
		}
	}

	// Mid-batch violation: the accepted prefix stays indexed.
	bad := []Doc{{ID: 1, Time: 10, Text: "x"}, {ID: 2, Time: 20, Text: "y"}, {ID: 3, Time: 5, Text: "z"}}
	ix := New()
	n, err = ix.AddBatch(bad)
	if n != 2 || err == nil {
		t.Fatalf("AddBatch with violation = %d, %v; want 2, ErrTimeOrder", n, err)
	}
	if ix.Len() != 2 {
		t.Errorf("after failed batch Len = %d, want 2", ix.Len())
	}
}

// TestIntersectGallop pins the galloping intersection against the merge
// reference over random sorted sets.
func TestIntersectGallop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := randSortedSet(rng, rng.Intn(50))
		b := randSortedSet(rng, rng.Intn(2000))
		want := mergeIntersect(a, b)
		got := intersectGallop(append([]int32(nil), a...), b)
		if !equalPositions(got, want) {
			t.Fatalf("intersectGallop(%v, |b|=%d) = %v, want %v", a, len(b), got, want)
		}
	}
}

func randSortedSet(rng *rand.Rand, n int) []int32 {
	seen := map[int32]bool{}
	for len(seen) < n {
		seen[int32(rng.Intn(4000))] = true
	}
	out := make([]int32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ { // insertion sort, n is small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func mergeIntersect(a, b []int32) []int32 {
	var out []int32
	k := 0
	for _, x := range a {
		for k < len(b) && b[k] < x {
			k++
		}
		if k < len(b) && b[k] == x {
			out = append(out, x)
		}
	}
	return out
}
