package index

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func buildIndex(t *testing.T, docs ...Doc) *Index {
	t.Helper()
	ix := New()
	for _, d := range docs {
		if err := ix.Add(d); err != nil {
			t.Fatalf("Add(%+v): %v", d, err)
		}
	}
	return ix
}

func TestAddAndTermQuery(t *testing.T) {
	ix := buildIndex(t,
		Doc{ID: 1, Time: 10, Text: "obama speaks at the senate"},
		Doc{ID: 2, Time: 20, Text: "markets rally on jobs report"},
		Doc{ID: 3, Time: 30, Text: "obama budget plan stalls in senate"},
	)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	got := ix.TermQuery("obama", 0, 100)
	if !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Errorf("TermQuery(obama) = %v, want [0 2]", got)
	}
	if got := ix.TermQuery("obama", 15, 100); !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("time-filtered TermQuery = %v, want [2]", got)
	}
	if got := ix.TermQuery("nonexistent", 0, 100); len(got) != 0 {
		t.Errorf("TermQuery(nonexistent) = %v", got)
	}
	if df := ix.DocFreq("senate"); df != 2 {
		t.Errorf("DocFreq(senate) = %d, want 2", df)
	}
}

func TestStopwordsNotIndexed(t *testing.T) {
	ix := buildIndex(t, Doc{ID: 1, Time: 0, Text: "the and of senate"})
	if ix.DocFreq("the") != 0 || ix.DocFreq("and") != 0 {
		t.Error("stopwords were indexed")
	}
	if ix.DocFreq("senate") != 1 {
		t.Error("content word missing")
	}
}

func TestHashtagsIndexed(t *testing.T) {
	ix := buildIndex(t, Doc{ID: 1, Time: 0, Text: "watching #obama on tv"})
	if got := ix.TermQuery("#obama", 0, 1); len(got) != 1 {
		t.Errorf("hashtag query = %v", got)
	}
	if got := ix.TermQuery("obama", 0, 1); len(got) != 0 {
		t.Errorf("bare term matched hashtag: %v", got)
	}
}

func TestAddRejectsOutOfOrder(t *testing.T) {
	ix := buildIndex(t, Doc{ID: 1, Time: 10, Text: "x"})
	if err := ix.Add(Doc{ID: 2, Time: 5, Text: "y"}); !errors.Is(err, ErrTimeOrder) {
		t.Errorf("out-of-order Add error = %v, want ErrTimeOrder", err)
	}
	if err := ix.Add(Doc{ID: 3, Time: 10, Text: "z"}); err != nil {
		t.Errorf("equal-timestamp Add rejected: %v", err)
	}
}

func TestAnyQuery(t *testing.T) {
	ix := buildIndex(t,
		Doc{ID: 1, Time: 1, Text: "obama economy"},
		Doc{ID: 2, Time: 2, Text: "senate votes"},
		Doc{ID: 3, Time: 3, Text: "weather report"},
		Doc{ID: 4, Time: 4, Text: "economy slows"},
	)
	got := ix.AnyQuery([]string{"obama", "economy", "senate"}, 0, 10)
	if !reflect.DeepEqual(got, []int32{0, 1, 3}) {
		t.Errorf("AnyQuery = %v, want [0 1 3] (deduplicated, sorted)", got)
	}
	if got := ix.AnyQuery([]string{"economy"}, 3.5, 10); !reflect.DeepEqual(got, []int32{3}) {
		t.Errorf("ranged AnyQuery = %v, want [3]", got)
	}
	if got := ix.AnyQuery(nil, 0, 10); len(got) != 0 {
		t.Errorf("empty AnyQuery = %v", got)
	}
}

func TestSearchRanking(t *testing.T) {
	ix := buildIndex(t,
		Doc{ID: 1, Time: 1, Text: "obama obama obama speech"},
		Doc{ID: 2, Time: 2, Text: "obama mentioned once in passing"},
		Doc{ID: 3, Time: 3, Text: "unrelated sports news"},
		Doc{ID: 4, Time: 4, Text: "obama economy speech economy"},
	)
	hits := ix.Search("obama economy", 10, 0, 10)
	if len(hits) != 3 {
		t.Fatalf("Search returned %d hits, want 3", len(hits))
	}
	// Doc 4 matches both query terms and must rank first.
	if hits[0].Pos != 3 {
		t.Errorf("top hit = pos %d, want 3 (doc 4)", hits[0].Pos)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Errorf("hits not sorted by score: %v", hits)
		}
	}
}

func TestSearchTopKAndRange(t *testing.T) {
	ix := New()
	for i := 0; i < 50; i++ {
		text := "filler"
		if i%2 == 0 {
			text = "target term here"
		}
		if err := ix.Add(Doc{ID: int64(i), Time: float64(i), Text: text}); err != nil {
			t.Fatal(err)
		}
	}
	hits := ix.Search("target", 5, 0, 100)
	if len(hits) != 5 {
		t.Errorf("top-5 returned %d hits", len(hits))
	}
	hits = ix.Search("target", 100, 10, 20)
	if len(hits) != 6 { // even times 10..20: 10,12,...,20
		t.Errorf("ranged search returned %d hits, want 6", len(hits))
	}
	if got := ix.Search("target", 0, 0, 100); got != nil {
		t.Errorf("k=0 search = %v", got)
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = ix.Add(Doc{ID: int64(i), Time: float64(i), Text: fmt.Sprintf("post number %d obama", i)})
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = ix.TermQuery("obama", 0, 1e9)
				_ = ix.Search("obama post", 10, 0, 1e9)
				_ = ix.Len()
			}
		}()
	}
	wg.Wait()
	if got := ix.DocFreq("obama"); got != 2000 {
		t.Errorf("DocFreq(obama) = %d, want 2000", got)
	}
}

func TestRangeFilterBoundaries(t *testing.T) {
	ix := buildIndex(t,
		Doc{ID: 1, Time: 1, Text: "x"},
		Doc{ID: 2, Time: 2, Text: "x"},
		Doc{ID: 3, Time: 3, Text: "x"},
	)
	cases := []struct {
		lo, hi float64
		want   int
	}{
		{1, 3, 3}, {1, 1, 1}, {1.5, 2.5, 1}, {4, 9, 0}, {0, 0.5, 0},
	}
	for _, tc := range cases {
		if got := len(ix.TermQuery("x", tc.lo, tc.hi)); got != tc.want {
			t.Errorf("TermQuery range [%v,%v] = %d docs, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestDocRoundTrip(t *testing.T) {
	ix := buildIndex(t, Doc{ID: 7, Time: 42, Text: "round trip"})
	got := ix.Doc(0)
	if got.ID != 7 || got.Time != 42 || got.Text != "round trip" {
		t.Errorf("Doc(0) = %+v", got)
	}
	if ix.Terms() != 2 {
		t.Errorf("Terms = %d, want 2", ix.Terms())
	}
}

func BenchmarkAdd(b *testing.B) {
	ix := New()
	rng := rand.New(rand.NewSource(1))
	words := []string{"obama", "senate", "economy", "market", "sports", "game", "vote", "budget", "news", "report"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		_ = ix.Add(Doc{ID: int64(i), Time: float64(i), Text: text})
	}
}

func BenchmarkTermQuery(b *testing.B) {
	ix := New()
	for i := 0; i < 100000; i++ {
		text := "filler"
		if i%10 == 0 {
			text = "obama news"
		}
		_ = ix.Add(Doc{ID: int64(i), Time: float64(i), Text: text})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.TermQuery("obama", float64(i%90000), float64(i%90000+10000))
	}
}

func TestAllQuery(t *testing.T) {
	ix := buildIndex(t,
		Doc{ID: 1, Time: 1, Text: "obama economy speech"},
		Doc{ID: 2, Time: 2, Text: "obama sports outing"},
		Doc{ID: 3, Time: 3, Text: "economy outlook grim"},
		Doc{ID: 4, Time: 4, Text: "obama economy plan again"},
	)
	got := ix.AllQuery([]string{"obama", "economy"}, 0, 10)
	if !reflect.DeepEqual(got, []int32{0, 3}) {
		t.Errorf("AllQuery = %v, want [0 3]", got)
	}
	if got := ix.AllQuery([]string{"obama", "economy"}, 2, 10); !reflect.DeepEqual(got, []int32{3}) {
		t.Errorf("ranged AllQuery = %v, want [3]", got)
	}
	if got := ix.AllQuery([]string{"obama", "zebra"}, 0, 10); got != nil {
		t.Errorf("AND with unknown term = %v", got)
	}
	if got := ix.AllQuery(nil, 0, 10); got != nil {
		t.Errorf("empty AND = %v", got)
	}
	if got := ix.AllQuery([]string{"obama"}, 0, 10); len(got) != 3 {
		t.Errorf("single-term AND = %v", got)
	}
}

func TestSegmentSealing(t *testing.T) {
	ix := NewWithSegmentSize(4)
	for i := 0; i < 10; i++ {
		if err := ix.Add(Doc{ID: int64(i), Time: float64(i), Text: fmt.Sprintf("word%d obama", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.Segments(); got != 3 { // 4 + 4 + 2
		t.Errorf("segments = %d, want 3", got)
	}
	// Queries span segment boundaries transparently.
	if got := ix.TermQuery("obama", 0, 100); len(got) != 10 {
		t.Errorf("cross-segment TermQuery = %d docs", len(got))
	}
	for i := int32(0); i < 10; i++ {
		if d := ix.Doc(i); d.ID != int64(i) {
			t.Errorf("Doc(%d).ID = %d", i, d.ID)
		}
	}
	if got := ix.DocFreq("obama"); got != 10 {
		t.Errorf("cross-segment DocFreq = %d", got)
	}
	// Boolean queries across segments.
	if got := ix.AllQuery([]string{"obama", "word7"}, 0, 100); len(got) != 1 || got[0] != 7 {
		t.Errorf("cross-segment AllQuery = %v", got)
	}
	hits := ix.Search("word3 obama", 2, 0, 100)
	if len(hits) != 2 || hits[0].Pos != 3 {
		t.Errorf("cross-segment Search = %v", hits)
	}
}

func TestSegmentedSnapshotRoundTrip(t *testing.T) {
	ix := NewWithSegmentSize(3)
	for i := 0; i < 8; i++ {
		if err := ix.Add(Doc{ID: int64(i), Time: float64(i), Text: fmt.Sprintf("alpha beta%d", i%2)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 8 {
		t.Fatalf("loaded %d docs", loaded.Len())
	}
	if !reflect.DeepEqual(ix.TermQuery("beta1", 0, 100), loaded.TermQuery("beta1", 0, 100)) {
		t.Error("postings differ after segmented round trip")
	}
}
