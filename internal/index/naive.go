package index

import "sort"

// This file holds the pre-optimization reference implementations of the
// query methods: straight linear scans over every posting with a per-posting
// time check, no segment/term skipping, no binary search, no galloping. They
// pin the same snapshot as the optimized paths, so on a quiesced index their
// results are definitionally comparable — the equivalence property tests pin
// TermQuery/AnyQuery/AllQuery/Search to them, and `mqdp-bench -json-index`
// records them as the in-run baseline for BENCH_index.json.

// scanTermPositions linearly filters every posting of term by time.
func (v *view) scanTermPositions(term string, lo, hi float64, out []int32) []int32 {
	for _, seg := range v.sealed {
		for _, p := range seg.postings[term].list {
			if t := seg.times[p.pos-seg.start]; t >= lo && t <= hi {
				out = append(out, p.pos)
			}
		}
	}
	act := v.active
	docs := act.visibleDocs()
	limit := act.start + int32(len(docs))
	for _, p := range act.clampedPostings(term, limit) {
		if t := docs[p.pos-act.start].Time; t >= lo && t <= hi {
			out = append(out, p.pos)
		}
	}
	return out
}

// TermQueryScan is the linear-scan reference for TermQuery.
func (ix *Index) TermQueryScan(term string, lo, hi float64) []int32 {
	return ix.snap.Load().scanTermPositions(term, lo, hi, nil)
}

// AnyQueryScan is the linear-scan reference for AnyQuery.
func (ix *Index) AnyQueryScan(terms []string, lo, hi float64) []int32 {
	v := ix.snap.Load()
	var all []int32
	for _, t := range terms {
		all = v.scanTermPositions(t, lo, hi, all)
	}
	return sortDedup(all)
}

// AllQueryScan is the reference for AllQuery: rarest-first two-pointer merge
// intersection over linearly filtered lists (the pre-galloping algorithm).
func (ix *Index) AllQueryScan(terms []string, lo, hi float64) []int32 {
	v := ix.snap.Load()
	if len(terms) == 0 {
		return nil
	}
	lists := make([][]int32, 0, len(terms))
	for _, t := range terms {
		pl := v.scanTermPositions(t, lo, hi, nil)
		if len(pl) == 0 {
			return nil
		}
		lists = append(lists, pl)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cur := lists[0]
	for _, other := range lists[1:] {
		next := cur[:0]
		k := 0
		for _, pos := range cur {
			for k < len(other) && other[k] < pos {
				k++
			}
			if k < len(other) && other[k] == pos {
				next = append(next, pos)
			}
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// SearchScan is the reference for Search: full TF-IDF scoring by linear
// scan, a complete sort of every scored document, then truncation to k.
func (ix *Index) SearchScan(query string, k int, lo, hi float64) []Hit {
	if k <= 0 {
		return nil
	}
	v := ix.snap.Load()
	n := float64(v.count())
	scores := make(map[int32]float64)
	act := v.active
	actDocs := act.visibleDocs()
	actLimit := act.start + int32(len(actDocs))
	for _, term := range searchTerms(query) {
		df := v.docFreq(term)
		if df == 0 {
			continue
		}
		idf := idfWeight(n, float64(df))
		for _, seg := range v.sealed {
			for _, p := range seg.postings[term].list {
				if t := seg.times[p.pos-seg.start]; t >= lo && t <= hi {
					scores[p.pos] += tfWeight(p.freq) * idf
				}
			}
		}
		for _, p := range act.clampedPostings(term, actLimit) {
			if t := actDocs[p.pos-act.start].Time; t >= lo && t <= hi {
				scores[p.pos] += tfWeight(p.freq) * idf
			}
		}
	}
	hits := make([]Hit, 0, len(scores))
	for pos, score := range scores {
		hits = append(hits, Hit{Pos: pos, Score: score})
	}
	sort.Slice(hits, func(i, j int) bool { return worseHit(hits[j], hits[i]) })
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
