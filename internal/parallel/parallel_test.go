package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Errorf("Workers(%d) = %d", n, got)
		}
	}
}

func TestForEachVisitsEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 5, 97, 1000} {
			visits := make([]int32, n)
			ForEach(workers, n, func(i int) { atomic.AddInt32(&visits[i], 1) })
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) int { return i*i + 1 }
	want := Map(1, 500, fn)
	for _, workers := range []int{2, 4, 16} {
		got := Map(workers, 500, fn)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d != %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Errorf("Map over empty range = %v, want nil", got)
	}
}

func TestOrderedResultsDeliversInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		ch := OrderedResults(workers, 100, func(i int) int { return i * 2 })
		i := 0
		for v := range ch {
			if v != i*2 {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, i*2)
			}
			i++
		}
		if i != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, i)
		}
	}
}

func TestOrderedResultsEmpty(t *testing.T) {
	ch := OrderedResults(4, 0, func(i int) int { return i })
	if _, ok := <-ch; ok {
		t.Error("expected closed channel for empty range")
	}
}

// TestOrderedResultsStreamsEarlyItems asserts the collector does not wait for
// the whole batch: result 0 must be deliverable while later items are still
// blocked.
func TestOrderedResultsStreamsEarlyItems(t *testing.T) {
	release := make(chan struct{})
	ch := OrderedResults(2, 3, func(i int) int {
		if i == 2 {
			<-release
		}
		return i
	})
	if v := <-ch; v != 0 {
		t.Fatalf("first result = %d, want 0", v)
	}
	if v := <-ch; v != 1 {
		t.Fatalf("second result = %d, want 1", v)
	}
	close(release)
	if v := <-ch; v != 2 {
		t.Fatalf("third result = %d, want 2", v)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after last result")
	}
}

func TestChunkSize(t *testing.T) {
	if c := chunkSize(4, 3); c != 1 {
		t.Errorf("chunkSize(4,3) = %d, want 1", c)
	}
	if c := chunkSize(2, 1000); c != 125 {
		t.Errorf("chunkSize(2,1000) = %d, want 125", c)
	}
}

func TestFirstErr(t *testing.T) {
	if err := FirstErr(4, 100, func(i int) error { return nil }); err != nil {
		t.Errorf("all-nil FirstErr = %v", err)
	}
	// Whatever the worker count, the lowest-index error wins.
	mkErr := func(i int) error {
		if i == 7 || i == 63 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	}
	for _, workers := range []int{1, 2, 8, 0} {
		err := FirstErr(workers, 100, mkErr)
		if err == nil || err.Error() != "item 7 failed" {
			t.Errorf("workers=%d: FirstErr = %v, want item 7", workers, err)
		}
	}
	if err := FirstErr(3, 0, func(i int) error { return fmt.Errorf("never") }); err != nil {
		t.Errorf("empty FirstErr = %v", err)
	}
}
