// Package parallel provides the bounded fan-out primitives used by the
// solvers and the experiment harness: a worker-count resolver, a chunked
// dynamic ForEach/Map over an index space, and an ordered-merge collector
// that streams results in index order as they complete.
//
// Every helper is deterministic in its *results*: fn(i) writes only to the
// i-th output slot (or is delivered strictly in index order), so callers
// observe the same values regardless of goroutine scheduling. Only wall-clock
// time varies with the worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism degree: 0 (or any negative value)
// means GOMAXPROCS, anything positive is taken as-is. The result is ≥ 1.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// chunkSize picks the unit of work handed to a worker per grab: small enough
// to balance uneven item costs (per-label lists are often skewed), large
// enough that the atomic counter is not contended on fine-grained items.
func chunkSize(workers, n int) int {
	c := n / (workers * 4)
	if c < 1 {
		c = 1
	}
	return c
}

// ForEach invokes fn(i) for every i in [0, n) using up to workers goroutines
// and returns once all calls have completed. Chunks of indexes are handed out
// dynamically from a shared counter, so uneven per-item costs still balance.
// With workers ≤ 1 or n ≤ 1 it runs inline on the calling goroutine.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := int64(chunkSize(workers, n))
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := atomic.AddInt64(&next, chunk) - chunk
				if lo >= int64(n) {
					return
				}
				hi := lo + chunk
				if hi > int64(n) {
					hi = int64(n)
				}
				for i := lo; i < hi; i++ {
					fn(int(i))
				}
			}
		}()
	}
	wg.Wait()
}

// Map invokes fn(i) for every i in [0, n) with ForEach and collects the
// results in index order. The output is identical to a serial loop for any
// worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// FirstErr invokes fn(i) for every i in [0, n) with ForEach and returns the
// error produced at the lowest index, or nil if every call succeeded. All
// calls run to completion (no cancellation on first failure), so the result
// is the same error a serial loop that remembers only its first failure
// would report — deterministic for any worker count.
func FirstErr(workers, n int, fn func(i int) error) error {
	errs := Map(workers, n, fn)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// OrderedResults runs fn over [0, n) on up to workers goroutines and delivers
// each result strictly in index order, as soon as it and every earlier result
// are ready. The returned channel is closed after result n-1. This is the
// merge collector behind the concurrent experiment harness: long-running
// items overlap in time while output stays in registration order.
func OrderedResults[T any](workers, n int, fn func(i int) T) <-chan T {
	out := make(chan T)
	if n <= 0 {
		close(out)
		return out
	}
	slots := make([]chan T, n)
	for i := range slots {
		slots[i] = make(chan T, 1)
	}
	go ForEach(workers, n, func(i int) { slots[i] <- fn(i) })
	go func() {
		defer close(out)
		for _, slot := range slots {
			out <- <-slot
		}
	}()
	return out
}
