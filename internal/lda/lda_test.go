package lda

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// plantedCorpus builds documents from nTopics disjoint vocabularies so a
// correct sampler can recover the planted structure.
func plantedCorpus(nTopics, docsPerTopic, wordsPerDoc int, seed int64) (*Corpus, [][]string, []int) {
	rng := rand.New(rand.NewSource(seed))
	vocabs := make([][]string, nTopics)
	for t := range vocabs {
		for w := 0; w < 12; w++ {
			vocabs[t] = append(vocabs[t], fmt.Sprintf("topic%dword%d", t, w))
		}
	}
	c := NewCorpus()
	var truth []int
	for t := 0; t < nTopics; t++ {
		for d := 0; d < docsPerTopic; d++ {
			words := make([]string, wordsPerDoc)
			for i := range words {
				words[i] = vocabs[t][rng.Intn(len(vocabs[t]))]
			}
			c.AddWords(words)
			truth = append(truth, t)
		}
	}
	return c, vocabs, truth
}

func TestTrainRecoversPlantedTopics(t *testing.T) {
	c, vocabs, truth := plantedCorpus(3, 30, 40, 1)
	m, err := Train(c, Options{Topics: 3, Iterations: 150, Seed: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Each planted topic's documents must agree on a dominant model topic,
	// and the three dominant topics must be distinct.
	assigned := make([]int, 3)
	for pt := 0; pt < 3; pt++ {
		votes := map[int]int{}
		for d, tr := range truth {
			if tr != pt {
				continue
			}
			k, err := m.DominantTopic(d)
			if err != nil {
				t.Fatal(err)
			}
			votes[k]++
		}
		best, bestVotes, total := 0, 0, 0
		for k, v := range votes {
			total += v
			if v > bestVotes {
				best, bestVotes = k, v
			}
		}
		if bestVotes*10 < total*9 {
			t.Errorf("planted topic %d: only %d/%d docs agree on model topic %d", pt, bestVotes, total, best)
		}
		assigned[pt] = best
	}
	if assigned[0] == assigned[1] || assigned[1] == assigned[2] || assigned[0] == assigned[2] {
		t.Errorf("planted topics mapped to non-distinct model topics %v", assigned)
	}
	// Top keywords of each recovered topic must come from its planted vocab.
	for pt := 0; pt < 3; pt++ {
		kws := m.TopKeywords(assigned[pt], 5)
		if len(kws) != 5 {
			t.Fatalf("TopKeywords returned %d words", len(kws))
		}
		want := map[string]bool{}
		for _, w := range vocabs[pt] {
			want[w] = true
		}
		for _, kw := range kws {
			if !want[kw.Word] {
				t.Errorf("topic %d keyword %q not from planted vocabulary %d", assigned[pt], kw.Word, pt)
			}
		}
	}
}

func TestTrainDeterministicPerSeed(t *testing.T) {
	c, _, _ := plantedCorpus(2, 10, 20, 3)
	m1, err := Train(c, Options{Topics: 2, Iterations: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(c, Options{Topics: 2, Iterations: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		a, b := m1.TopKeywords(k, 10), m2.TopKeywords(k, 10)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("same seed, different keywords: %v vs %v", a, b)
			}
		}
	}
}

func TestTopKeywordsWeightsSortedAndNormalized(t *testing.T) {
	c, _, _ := plantedCorpus(2, 15, 30, 5)
	m, err := Train(c, Options{Topics: 2, Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		kws := m.TopKeywords(k, 1000)
		for i := 1; i < len(kws); i++ {
			if kws[i].Weight > kws[i-1].Weight {
				t.Fatalf("topic %d keywords not sorted by weight", k)
			}
		}
		sum := 0.0
		for _, kw := range kws {
			if kw.Weight <= 0 || kw.Weight > 1 {
				t.Fatalf("weight %v out of (0,1]", kw.Weight)
			}
			sum += kw.Weight
		}
		if sum > 1.0001 {
			t.Errorf("topic %d weights sum to %v > 1", k, sum)
		}
	}
}

func TestDocTopicsIsDistribution(t *testing.T) {
	c, _, _ := plantedCorpus(2, 5, 15, 7)
	m, err := Train(c, Options{Topics: 2, Iterations: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < c.Docs(); d++ {
		theta, err := m.DocTopics(d)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range theta {
			if p < 0 {
				t.Fatalf("negative topic probability %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d θ sums to %v", d, sum)
		}
	}
	if _, err := m.DocTopics(-1); err == nil {
		t.Error("DocTopics(-1) accepted")
	}
	if _, err := m.DocTopics(c.Docs()); err == nil {
		t.Error("DocTopics(out of range) accepted")
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(NewCorpus(), Options{}); !errors.Is(err, ErrEmptyCorpus) {
		t.Errorf("error = %v, want ErrEmptyCorpus", err)
	}
}

func TestCorpusAddText(t *testing.T) {
	c := NewCorpus()
	if !c.AddText("the senate votes on the budget") {
		t.Fatal("AddText rejected non-empty document")
	}
	if c.AddText("the and of") { // all stopwords
		t.Error("stopword-only document accepted")
	}
	if c.Docs() != 1 {
		t.Errorf("Docs = %d, want 1", c.Docs())
	}
	if c.VocabSize() != 3 { // senate, votes, budget
		t.Errorf("VocabSize = %d, want 3", c.VocabSize())
	}
}

func TestTopKeywordsEdgeCases(t *testing.T) {
	c, _, _ := plantedCorpus(2, 5, 10, 9)
	m, err := Train(c, Options{Topics: 2, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TopKeywords(-1, 5); got != nil {
		t.Errorf("TopKeywords(-1) = %v", got)
	}
	if got := m.TopKeywords(5, 5); got != nil {
		t.Errorf("TopKeywords(out of range) = %v", got)
	}
	if got := m.TopKeywords(0, 0); got != nil {
		t.Errorf("TopKeywords(n=0) = %v", got)
	}
	if m.Topics() != 2 {
		t.Errorf("Topics = %d", m.Topics())
	}
}

func TestPerplexityImprovesWithTraining(t *testing.T) {
	c, _, _ := plantedCorpus(3, 25, 40, 13)
	barely, err := Train(c, Options{Topics: 3, Iterations: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	trained, err := Train(c, Options{Topics: 3, Iterations: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pb, pt := barely.Perplexity(), trained.Perplexity()
	if !(pt > 0) || math.IsInf(pt, 0) {
		t.Fatalf("trained perplexity = %v", pt)
	}
	if pt >= pb {
		t.Errorf("training did not reduce perplexity: %v → %v", pb, pt)
	}
	// A fitted topical model beats the uniform-word baseline (= vocab size).
	if pt >= float64(c.VocabSize()) {
		t.Errorf("perplexity %v not below uniform baseline %d", pt, c.VocabSize())
	}
}
