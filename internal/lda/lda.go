// Package lda implements Latent Dirichlet Allocation with collapsed Gibbs
// sampling. The paper generated its query set by running Mallet's LDA over a
// news-article collection and keeping each topic's top-40 weighted keywords
// (§7.1); this package plays that role over the synthetic news corpus,
// producing topics that serve as the labels/queries of MQDP experiments.
package lda

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mqdp/internal/textutil"
)

// Corpus is a bag-of-words document collection with an interned vocabulary.
type Corpus struct {
	vocab []string
	ids   map[string]int
	docs  [][]int // word ids per document, in order
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{ids: make(map[string]int)}
}

// AddText tokenizes text (dropping stopwords) and adds it as a document.
// Empty documents are skipped and reported as false.
func (c *Corpus) AddText(text string) bool {
	return c.AddWords(textutil.ContentWords(text))
}

// AddWords adds a pre-tokenized document.
func (c *Corpus) AddWords(words []string) bool {
	if len(words) == 0 {
		return false
	}
	doc := make([]int, len(words))
	for i, w := range words {
		id, ok := c.ids[w]
		if !ok {
			id = len(c.vocab)
			c.vocab = append(c.vocab, w)
			c.ids[w] = id
		}
		doc[i] = id
	}
	c.docs = append(c.docs, doc)
	return true
}

// Docs reports the number of documents.
func (c *Corpus) Docs() int { return len(c.docs) }

// VocabSize reports the number of distinct words.
func (c *Corpus) VocabSize() int { return len(c.vocab) }

// Word returns the string for a vocabulary id.
func (c *Corpus) Word(id int) string { return c.vocab[id] }

// Options configure training. Zero values select defaults.
type Options struct {
	// Topics is K, the number of topics (default 10).
	Topics int
	// Alpha is the document–topic Dirichlet prior (default 50/K).
	Alpha float64
	// Beta is the topic–word Dirichlet prior (default 0.01).
	Beta float64
	// Iterations is the number of Gibbs sweeps (default 200).
	Iterations int
	// Seed drives the sampler; runs are deterministic per seed.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Topics <= 0 {
		o.Topics = 10
	}
	if o.Alpha <= 0 {
		o.Alpha = 50 / float64(o.Topics)
	}
	if o.Beta <= 0 {
		o.Beta = 0.01
	}
	if o.Iterations <= 0 {
		o.Iterations = 200
	}
	return o
}

// Model is a trained LDA model.
type Model struct {
	corpus *Corpus
	opts   Options
	// Counts after the final sweep.
	wordTopic [][]int // wordTopic[w][k]
	docTopic  [][]int // docTopic[d][k]
	topicSum  []int   // topicSum[k] = Σ_w wordTopic[w][k]
	docLen    []int
}

// ErrEmptyCorpus is returned when training on a corpus without documents.
var ErrEmptyCorpus = errors.New("lda: empty corpus")

// Train runs collapsed Gibbs sampling on c. The conditional for assigning
// token (d, i) with word w to topic k is the standard collapsed posterior
//
//	p(z=k) ∝ (n_dk + α) · (n_wk + β) / (n_k + Vβ).
func Train(c *Corpus, opts Options) (*Model, error) {
	o := opts.withDefaults()
	if c.Docs() == 0 {
		return nil, ErrEmptyCorpus
	}
	K, V := o.Topics, c.VocabSize()
	rng := rand.New(rand.NewSource(o.Seed))
	m := &Model{
		corpus:    c,
		opts:      o,
		wordTopic: make([][]int, V),
		docTopic:  make([][]int, c.Docs()),
		topicSum:  make([]int, K),
		docLen:    make([]int, c.Docs()),
	}
	for w := 0; w < V; w++ {
		m.wordTopic[w] = make([]int, K)
	}
	// Random initial assignments.
	z := make([][]int, c.Docs())
	for d, doc := range c.docs {
		m.docTopic[d] = make([]int, K)
		m.docLen[d] = len(doc)
		z[d] = make([]int, len(doc))
		for i, w := range doc {
			k := rng.Intn(K)
			z[d][i] = k
			m.wordTopic[w][k]++
			m.docTopic[d][k]++
			m.topicSum[k]++
		}
	}
	probs := make([]float64, K)
	vb := float64(V) * o.Beta
	for it := 0; it < o.Iterations; it++ {
		for d, doc := range c.docs {
			dt := m.docTopic[d]
			for i, w := range doc {
				old := z[d][i]
				m.wordTopic[w][old]--
				dt[old]--
				m.topicSum[old]--
				wt := m.wordTopic[w]
				total := 0.0
				for k := 0; k < K; k++ {
					p := (float64(dt[k]) + o.Alpha) *
						(float64(wt[k]) + o.Beta) /
						(float64(m.topicSum[k]) + vb)
					probs[k] = p
					total += p
				}
				u := rng.Float64() * total
				k := 0
				for ; k < K-1; k++ {
					u -= probs[k]
					if u <= 0 {
						break
					}
				}
				z[d][i] = k
				m.wordTopic[w][k]++
				dt[k]++
				m.topicSum[k]++
			}
		}
	}
	return m, nil
}

// Topics returns K.
func (m *Model) Topics() int { return m.opts.Topics }

// TopicWord is one weighted keyword of a topic.
type TopicWord struct {
	Word   string
	Weight float64 // φ_kw, the topic's word probability
}

// TopKeywords returns topic k's n highest-probability words, best first —
// the paper's "top 40 highest-weight keywords for each topic".
func (m *Model) TopKeywords(k, n int) []TopicWord {
	if k < 0 || k >= m.opts.Topics || n <= 0 {
		return nil
	}
	V := m.corpus.VocabSize()
	denom := float64(m.topicSum[k]) + float64(V)*m.opts.Beta
	all := make([]TopicWord, 0, V)
	for w := 0; w < V; w++ {
		if m.wordTopic[w][k] == 0 {
			continue
		}
		all = append(all, TopicWord{
			Word:   m.corpus.Word(w),
			Weight: (float64(m.wordTopic[w][k]) + m.opts.Beta) / denom,
		})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Weight != all[j].Weight {
			return all[i].Weight > all[j].Weight
		}
		return all[i].Word < all[j].Word
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// DocTopics returns document d's topic mixture θ_d.
func (m *Model) DocTopics(d int) ([]float64, error) {
	if d < 0 || d >= len(m.docTopic) {
		return nil, fmt.Errorf("lda: document %d out of range [0,%d)", d, len(m.docTopic))
	}
	K := m.opts.Topics
	out := make([]float64, K)
	denom := float64(m.docLen[d]) + float64(K)*m.opts.Alpha
	for k := 0; k < K; k++ {
		out[k] = (float64(m.docTopic[d][k]) + m.opts.Alpha) / denom
	}
	return out, nil
}

// DominantTopic returns the argmax topic of document d.
func (m *Model) DominantTopic(d int) (int, error) {
	theta, err := m.DocTopics(d)
	if err != nil {
		return 0, err
	}
	best := 0
	for k, p := range theta {
		if p > theta[best] {
			best = k
		}
	}
	return best, nil
}

// Perplexity evaluates the model on a corpus: exp(−Σ_d Σ_i log p(w_i|d) / N)
// where p(w|d) = Σ_k θ_dk · φ_kw. Lower is better; it is the standard LDA
// quality measure and lets the harness confirm the sampler actually fits the
// corpus (e.g. versus a shuffled-vocabulary control).
func (m *Model) Perplexity() float64 {
	K := m.opts.Topics
	V := m.corpus.VocabSize()
	vb := float64(V) * m.opts.Beta
	// φ_kw column access: precompute denominators.
	denom := make([]float64, K)
	for k := 0; k < K; k++ {
		denom[k] = float64(m.topicSum[k]) + vb
	}
	logSum := 0.0
	tokens := 0
	theta := make([]float64, K)
	for d, doc := range m.corpus.docs {
		dDenom := float64(m.docLen[d]) + float64(K)*m.opts.Alpha
		for k := 0; k < K; k++ {
			theta[k] = (float64(m.docTopic[d][k]) + m.opts.Alpha) / dDenom
		}
		for _, w := range doc {
			p := 0.0
			for k := 0; k < K; k++ {
				phi := (float64(m.wordTopic[w][k]) + m.opts.Beta) / denom[k]
				p += theta[k] * phi
			}
			logSum += math.Log(p)
			tokens++
		}
	}
	if tokens == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logSum / float64(tokens))
}
