package stream

import (
	"fmt"
	"time"

	"mqdp/internal/core"
)

// labelState is the per-label bookkeeping of StreamScan (§5.1): the latest
// output relevant post P_lc, and the oldest/latest uncovered posts P_ou and
// P_lu. While a label has uncovered posts, the latest of them is scheduled
// for output at deadline min(time(P_lu)+τ, time(P_ou)+λ).
type labelState struct {
	hasLC   bool
	lcValue float64
	pending bool
	ou      float64   // value of the oldest uncovered post
	lu      core.Post // latest uncovered post (the one to emit)
}

func (s *labelState) deadline(lambda, tau float64) float64 {
	d := s.lu.Value + tau
	if alt := s.ou + lambda; alt < d {
		d = alt
	}
	return d
}

// Scan is the streaming adaptation of Algorithm Scan (StreamScan and, with
// Plus, StreamScan+). For τ ≥ λ it emits exactly what the offline Scan
// would, giving the same approximation factor s; smaller τ trades a shorter
// reporting delay for more emitted posts.
type Scan struct {
	name   string
	lambda float64
	tau    float64
	plus   bool
	labels []labelState
	clk    clock
	// emittedAt remembers recently emitted post IDs so a post pending for
	// several labels is reported once; entries older than now−(λ+τ) can
	// no longer be re-emitted and are pruned.
	emittedAt map[int64]float64
}

// NewScan returns a StreamScan processor (StreamScan+ when plus is set) for
// numLabels labels. λ and τ must be nonnegative.
func NewScan(numLabels int, lambda, tau float64, plus bool) (*Scan, error) {
	if lambda < 0 || tau < 0 {
		return nil, fmt.Errorf("stream: negative lambda %v or tau %v", lambda, tau)
	}
	name := "StreamScan"
	if plus {
		name = "StreamScan+"
	}
	return &Scan{
		name:      name,
		lambda:    lambda,
		tau:       tau,
		plus:      plus,
		labels:    make([]labelState, numLabels),
		emittedAt: make(map[int64]float64),
	}, nil
}

// Name implements Processor.
func (s *Scan) Name() string { return s.name }

// Process implements Processor.
func (s *Scan) Process(p core.Post) ([]Emission, error) {
	if err := s.clk.advance(p.Value); err != nil {
		return nil, err
	}
	o := obsState.Load()
	out := s.fire(p.Value)
	for _, a := range p.Labels {
		st := &s.labels[a]
		if st.hasLC && p.Value-st.lcValue <= s.lambda {
			continue // already covered for this label
		}
		if !st.pending {
			st.pending = true
			st.ou = p.Value
		}
		st.lu = p
	}
	if o != nil {
		start := time.Now()
		s.prune(p.Value)
		o.windowMaint.ObserveSince(start)
		o.postsProcessed.Inc()
		o.observeDecisions(out)
	} else {
		s.prune(p.Value)
	}
	return out, nil
}

// Flush implements Processor.
func (s *Scan) Flush() []Emission {
	out := s.fireAll(func(float64) bool { return true })
	sortEmissions(out)
	obsState.Load().observeDecisions(out)
	return out
}

// fire emits every pending label whose deadline has passed by event time t,
// in deadline order (so StreamScan+ cross-label updates see earlier
// decisions first).
func (s *Scan) fire(t float64) []Emission {
	out := s.fireAll(func(d float64) bool { return d <= t })
	sortEmissions(out)
	return out
}

// fireAll repeatedly emits the pending label with the earliest due deadline.
func (s *Scan) fireAll(due func(deadline float64) bool) []Emission {
	var out []Emission
	for {
		best := -1
		bestD := 0.0
		for a := range s.labels {
			st := &s.labels[a]
			if !st.pending {
				continue
			}
			if d := st.deadline(s.lambda, s.tau); due(d) && (best == -1 || d < bestD) {
				best, bestD = a, d
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, s.emit(core.Label(best), bestD)...)
	}
}

// emit outputs label a's latest uncovered post at decision time d, updating
// P_lc and clearing the pending range. With Plus, the emitted post also
// serves every other label it carries, clearing their pending ranges when it
// covers them entirely.
func (s *Scan) emit(a core.Label, d float64) []Emission {
	st := &s.labels[a]
	p := st.lu
	st.hasLC = true
	st.lcValue = p.Value
	st.pending = false
	var out []Emission
	if _, dup := s.emittedAt[p.ID]; !dup {
		s.emittedAt[p.ID] = p.Value
		out = append(out, Emission{Post: p, EmitAt: d})
	}
	if !s.plus {
		return out
	}
	for _, b := range p.Labels {
		if b == a {
			continue
		}
		bst := &s.labels[b]
		if bst.pending {
			// p clears b's backlog only if it covers the whole
			// uncovered range [ou, lu].
			if abs(p.Value-bst.ou) <= s.lambda && abs(p.Value-bst.lu.Value) <= s.lambda {
				bst.pending = false
				if !bst.hasLC || p.Value > bst.lcValue {
					bst.hasLC = true
					bst.lcValue = p.Value
				}
			}
		} else if !bst.hasLC || p.Value > bst.lcValue {
			bst.hasLC = true
			bst.lcValue = p.Value
		}
	}
	return out
}

// prune drops emitted-ID dedup entries too old to be re-selected.
func (s *Scan) prune(now float64) {
	if len(s.emittedAt) < 1024 {
		return
	}
	cutoff := now - s.lambda - s.tau - 1
	for id, v := range s.emittedAt {
		if v < cutoff {
			delete(s.emittedAt, id)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
