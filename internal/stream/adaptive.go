package stream

import (
	"fmt"
	"math"
	"sort"

	"mqdp/internal/core"
)

// AdaptiveScan extends StreamScan with §6's proportional diversity: each
// arriving post gets a per-label coverage radius from Equation 2, computed
// over the *trailing* window (a streaming processor cannot see the future
// half of the paper's centered window):
//
//	r_a(P) = λ0 · exp(1 − density_a(t−2λ0, t] / density0)
//
// where density0 is the running average per-label arrival density. Coverage
// is directional — the emitted post's radius decides — so a decision round
// covers a label's backlog right-to-left: select the newest uncovered post,
// discard everything its radius reaches, repeat. Rounds fire when the oldest
// uncovered post's delay budget τ expires, keeping every emission within τ.
type AdaptiveScan struct {
	lambda0 float64
	tau     float64
	clk     clock
	labels  []adaptiveLabel
	// density bookkeeping
	totalArrivals int64   // label-arrival incidences seen
	firstTime     float64 // stream start
	activeLabels  map[core.Label]struct{}
	// radii of emitted posts, for verification and clients.
	emitted map[int64]map[core.Label]float64
}

// adaptiveLabel is per-label state.
type adaptiveLabel struct {
	// recent arrival times within the trailing window (ascending).
	recent []float64
	// pending uncovered posts (ascending time) with their radii.
	pending []adaptivePost
	// latest emitted post covering this label, if any.
	lcSet    bool
	lcTime   float64
	lcRadius float64
}

// adaptivePost is a buffered post with its arrival-time radius for one label.
type adaptivePost struct {
	post   core.Post
	radius float64
}

// NewAdaptiveScan builds the processor. lambda0 is Equation 2's base
// threshold; tau the delay budget.
func NewAdaptiveScan(numLabels int, lambda0, tau float64) (*AdaptiveScan, error) {
	if !(lambda0 > 0) || tau < 0 {
		return nil, fmt.Errorf("stream: need lambda0 > 0 and tau ≥ 0, got %v, %v", lambda0, tau)
	}
	return &AdaptiveScan{
		lambda0:      lambda0,
		tau:          tau,
		labels:       make([]adaptiveLabel, numLabels),
		activeLabels: make(map[core.Label]struct{}),
		emitted:      make(map[int64]map[core.Label]float64),
	}, nil
}

// Name implements Processor.
func (s *AdaptiveScan) Name() string { return "AdaptiveStreamScan" }

// Process implements Processor.
func (s *AdaptiveScan) Process(p core.Post) ([]Emission, error) {
	if err := s.clk.advance(p.Value); err != nil {
		return nil, err
	}
	if !s.clkStartedBefore() {
		s.firstTime = p.Value
	}
	out := s.fire(p.Value)
	for _, a := range p.Labels {
		st := &s.labels[a]
		s.activeLabels[a] = struct{}{}
		s.totalArrivals++
		st.recent = append(st.recent, p.Value)
		st.pruneRecent(p.Value, s.lambda0)
		r := s.radius(st, p.Value)
		if st.lcSet && p.Value-st.lcTime <= st.lcRadius {
			continue // already covered for this label
		}
		st.pending = append(st.pending, adaptivePost{post: p, radius: r})
	}
	if o := obsState.Load(); o != nil {
		o.postsProcessed.Inc()
		o.observeDecisions(out)
	}
	return out, nil
}

// clkStartedBefore reports whether any post preceded the current one.
func (s *AdaptiveScan) clkStartedBefore() bool { return s.totalArrivals > 0 }

// pruneRecent drops arrivals older than the trailing window 2λ0.
func (st *adaptiveLabel) pruneRecent(now, lambda0 float64) {
	cutoff := now - 2*lambda0
	k := sort.SearchFloat64s(st.recent, cutoff)
	if k > 0 {
		st.recent = append(st.recent[:0], st.recent[k:]...)
	}
}

// radius evaluates Equation 2 over the trailing window.
func (s *AdaptiveScan) radius(st *adaptiveLabel, now float64) float64 {
	density := float64(len(st.recent)) / (2 * s.lambda0)
	elapsed := now - s.firstTime
	if elapsed <= 0 {
		elapsed = 2 * s.lambda0
	}
	density0 := float64(s.totalArrivals) / float64(len(s.activeLabels)) / elapsed
	if density0 <= 0 {
		return s.lambda0 * math.E
	}
	return s.lambda0 * math.Exp(1-density/density0)
}

// Flush implements Processor.
func (s *AdaptiveScan) Flush() []Emission {
	out := s.fireDue(math.Inf(1), math.Inf(1))
	obsState.Load().observeDecisions(out)
	return out
}

// fire emits for every label whose oldest pending post's delay budget has
// elapsed at event time t.
func (s *AdaptiveScan) fire(t float64) []Emission {
	return s.fireDue(t, t)
}

// fireDue runs decision rounds for labels whose deadline ≤ limit, in
// deadline order; every decision happens at its own deadline.
func (s *AdaptiveScan) fireDue(_, limit float64) []Emission {
	var out []Emission
	for {
		best := -1
		bestD := 0.0
		for a := range s.labels {
			st := &s.labels[a]
			if len(st.pending) == 0 {
				continue
			}
			if d := st.pending[0].post.Value + s.tau; d <= limit && (best == -1 || d < bestD) {
				best, bestD = a, d
			}
		}
		if best == -1 {
			break
		}
		out = append(out, s.decide(core.Label(best), bestD)...)
	}
	sortEmissions(out)
	return out
}

// decide covers label a's entire backlog right-to-left at decision time d:
// pick the newest uncovered pending post, drop everything within its radius
// (looking backward), repeat until the backlog is empty.
func (s *AdaptiveScan) decide(a core.Label, d float64) []Emission {
	st := &s.labels[a]
	var out []Emission
	for len(st.pending) > 0 {
		pick := st.pending[len(st.pending)-1]
		// Record the emission unless this post was already emitted via
		// another label; its radii map gains this label either way.
		radii, dup := s.emitted[pick.post.ID]
		if !dup {
			radii = make(map[core.Label]float64, len(pick.post.Labels))
			s.emitted[pick.post.ID] = radii
			out = append(out, Emission{Post: pick.post, EmitAt: d})
		}
		radii[a] = pick.radius
		if !st.lcSet || pick.post.Value > st.lcTime {
			st.lcSet = true
			st.lcTime = pick.post.Value
			st.lcRadius = pick.radius
		}
		// Drop the suffix the pick covers.
		keep := len(st.pending) - 1
		for keep > 0 && pick.post.Value-st.pending[keep-1].post.Value <= pick.radius {
			keep--
		}
		st.pending = st.pending[:keep]
	}
	return out
}

// EmittedRadius reports the Equation 2 radius an emitted post carried for a
// label, for verification and UI display.
func (s *AdaptiveScan) EmittedRadius(postID int64, a core.Label) (float64, bool) {
	radii, ok := s.emitted[postID]
	if !ok {
		return 0, false
	}
	r, ok := radii[a]
	return r, ok
}
