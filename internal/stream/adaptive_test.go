package stream

import (
	"math"
	"math/rand"
	"testing"

	"mqdp/internal/core"
)

// verifyAdaptive checks that every input (post, label) pair is covered by
// some emitted post within that emission's recorded Equation 2 radius.
func verifyAdaptive(t *testing.T, s *AdaptiveScan, posts []core.Post, es []Emission) {
	t.Helper()
	type labeled struct {
		value  float64
		radius float64
	}
	byLabel := map[core.Label][]labeled{}
	for _, e := range es {
		for _, a := range e.Post.Labels {
			r, ok := s.EmittedRadius(e.Post.ID, a)
			if !ok {
				// The post was emitted via another label; it still covers
				// label a with the radius recorded at its own decision, or
				// not at all if a's backlog never selected it.
				continue
			}
			byLabel[a] = append(byLabel[a], labeled{value: e.Post.Value, radius: r})
		}
	}
	for _, p := range posts {
		for _, a := range p.Labels {
			covered := false
			for _, l := range byLabel[a] {
				if math.Abs(l.value-p.Value) <= l.radius {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("post %d uncovered on label %d", p.ID, a)
			}
		}
	}
}

func TestAdaptiveScanCoversStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		numLabels := 1 + rng.Intn(3)
		n := 5 + rng.Intn(80)
		posts := make([]core.Post, n)
		v := 0.0
		for i := range posts {
			v += rng.Float64() * 3
			labels := []core.Label{core.Label(rng.Intn(numLabels))}
			posts[i] = mk(int64(i), v, labels...)
		}
		lambda0 := 2 + rng.Float64()*6
		tau := rng.Float64() * 10
		s, err := NewAdaptiveScan(numLabels, lambda0, tau)
		if err != nil {
			t.Fatal(err)
		}
		es, err := Run(posts, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range es {
			if d := e.EmitAt - e.Post.Value; d < -1e-9 || d > tau+1e-9 {
				t.Fatalf("trial %d: delay %v outside [0, τ=%v]", trial, d, tau)
			}
		}
		verifyAdaptive(t, s, posts, es)
	}
}

func TestAdaptiveScanProportionality(t *testing.T) {
	// Dense burst then sparse tail: the adaptive processor should keep a
	// larger fraction of the dense region than fixed-λ StreamScan at the
	// same base threshold.
	var posts []core.Post
	id := int64(0)
	for i := 0; i < 300; i++ { // dense: 1 post per unit
		posts = append(posts, mk(id, float64(i), 0))
		id++
	}
	for i := 0; i < 10; i++ { // sparse: 1 post per 60 units
		posts = append(posts, mk(id, 300+float64(i)*60, 0))
		id++
	}
	lambda0, tau := 15.0, 10.0
	adaptive, err := NewAdaptiveScan(1, lambda0, tau)
	if err != nil {
		t.Fatal(err)
	}
	esA, err := Run(posts, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := NewScan(1, lambda0, tau, false)
	if err != nil {
		t.Fatal(err)
	}
	esF, err := Run(posts, fixed)
	if err != nil {
		t.Fatal(err)
	}
	denseShare := func(es []Emission) float64 {
		dense := 0
		for _, e := range es {
			if e.Post.Value < 300 {
				dense++
			}
		}
		if len(es) == 0 {
			return 0
		}
		return float64(dense) / float64(len(es))
	}
	if a, f := denseShare(esA), denseShare(esF); a <= f {
		t.Errorf("adaptive dense share %.3f ≤ fixed %.3f; Equation 2 should favor the dense region", a, f)
	}
	verifyAdaptive(t, adaptive, posts, esA)
}

func TestAdaptiveScanRejectsBadParams(t *testing.T) {
	if _, err := NewAdaptiveScan(1, 0, 1); err == nil {
		t.Error("lambda0 = 0 accepted")
	}
	if _, err := NewAdaptiveScan(1, 1, -1); err == nil {
		t.Error("negative tau accepted")
	}
}

func TestAdaptiveScanOutOfOrder(t *testing.T) {
	s, err := NewAdaptiveScan(1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(mk(1, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(mk(2, 5, 0)); err == nil {
		t.Error("out-of-order arrival accepted")
	}
}

func TestAdaptiveScanNoDuplicateEmissions(t *testing.T) {
	// A post carrying two labels may be selected by both backlogs but must
	// be reported once.
	posts := []core.Post{
		mk(1, 0, 0), mk(2, 1, 1), mk(3, 2, 0, 1),
	}
	s, err := NewAdaptiveScan(2, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	es, err := Run(posts, s)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, e := range es {
		if seen[e.Post.ID] {
			t.Fatalf("post %d emitted twice", e.Post.ID)
		}
		seen[e.Post.ID] = true
	}
}

func TestAdaptiveScanEmittedRadiusLookup(t *testing.T) {
	s, err := NewAdaptiveScan(1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	es, err := Run([]core.Post{mk(1, 0, 0)}, s)
	if err != nil || len(es) != 1 {
		t.Fatalf("emissions = %v, %v", es, err)
	}
	if r, ok := s.EmittedRadius(1, 0); !ok || r <= 0 {
		t.Errorf("EmittedRadius = %v, %v", r, ok)
	}
	if _, ok := s.EmittedRadius(99, 0); ok {
		t.Error("radius reported for unknown post")
	}
	if _, ok := s.EmittedRadius(1, 5); ok {
		t.Error("radius reported for unknown label")
	}
}
