package stream

import (
	"fmt"

	"mqdp/internal/core"
)

// Processor state capture/restore for the durability layer. Processors are
// event-time deterministic, but only from the beginning of their stream —
// a mid-stream restart cannot rebuild their pending windows from a time
// horizon without re-feeding every post since stream start. Instead the
// server snapshots the processor state itself: all three processors keep
// pure-data state (label tables, pending buffers, per-label emission
// values), so a deep copy of exported mirror structs round-trips through
// encoding/gob and resumes the stream exactly where it left off.

// ClockState mirrors the event-time clock.
type ClockState struct {
	Now     float64
	Started bool
}

// LabelSnapState mirrors one Scan label's bookkeeping.
type LabelSnapState struct {
	HasLC   bool
	LCValue float64
	Pending bool
	OU      float64
	LU      core.Post
}

// ScanState is the serializable state of StreamScan / StreamScan+.
type ScanState struct {
	Lambda    float64
	Tau       float64
	Plus      bool
	Labels    []LabelSnapState
	Clock     ClockState
	EmittedAt map[int64]float64
}

// PendingSnapState mirrors one buffered Greedy post.
type PendingSnapState struct {
	Post      core.Post
	Uncovered []core.Label
}

// GreedyState is the serializable state of StreamGreedySC / StreamGreedySC+.
// Pending holds only the live suffix of the buffer (head onward).
type GreedyState struct {
	Lambda   float64
	Tau      float64
	Plus     bool
	Clock    ClockState
	Pending  []PendingSnapState
	Selected [][]float64
}

// InstantState is the serializable state of the Instant processor.
type InstantState struct {
	Lambda float64
	Clock  ClockState
	Set    []bool
	Values []float64
}

// ProcState is the union snapshot of any built-in processor; exactly one
// branch is non-nil.
type ProcState struct {
	Scan    *ScanState
	Greedy  *GreedyState
	Instant *InstantState
}

// CaptureProcessor deep-copies p's state into a serializable snapshot.
// The processor may keep running afterwards; the snapshot is unaffected.
func CaptureProcessor(p Processor) (*ProcState, error) {
	switch s := p.(type) {
	case *Scan:
		st := &ScanState{
			Lambda:    s.lambda,
			Tau:       s.tau,
			Plus:      s.plus,
			Labels:    make([]LabelSnapState, len(s.labels)),
			Clock:     ClockState{Now: s.clk.now, Started: s.clk.started},
			EmittedAt: make(map[int64]float64, len(s.emittedAt)),
		}
		for i, l := range s.labels {
			st.Labels[i] = LabelSnapState{
				HasLC: l.hasLC, LCValue: l.lcValue, Pending: l.pending,
				OU: l.ou, LU: copyPost(l.lu),
			}
		}
		for id, v := range s.emittedAt {
			st.EmittedAt[id] = v
		}
		return &ProcState{Scan: st}, nil
	case *Greedy:
		st := &GreedyState{
			Lambda:   s.lambda,
			Tau:      s.tau,
			Plus:     s.plus,
			Clock:    ClockState{Now: s.clk.now, Started: s.clk.started},
			Pending:  make([]PendingSnapState, 0, len(s.pending)-s.head),
			Selected: make([][]float64, len(s.selected)),
		}
		for _, q := range s.pending[s.head:] {
			st.Pending = append(st.Pending, PendingSnapState{
				Post:      copyPost(q.post),
				Uncovered: append([]core.Label(nil), q.uncovered...),
			})
		}
		for a, sel := range s.selected {
			st.Selected[a] = append([]float64(nil), sel...)
		}
		return &ProcState{Greedy: st}, nil
	case *Instant:
		st := &InstantState{
			Lambda: s.lambda,
			Clock:  ClockState{Now: s.clk.now, Started: s.clk.started},
			Set:    make([]bool, len(s.cache)),
			Values: make([]float64, len(s.cache)),
		}
		for i, c := range s.cache {
			st.Set[i] = c.set
			st.Values[i] = c.value
		}
		return &ProcState{Instant: st}, nil
	}
	return nil, fmt.Errorf("stream: cannot snapshot processor %T", p)
}

// RestoreProcessor rebuilds a processor from a snapshot. The result emits
// exactly the same decisions the captured processor would have for any
// subsequent input.
func RestoreProcessor(st *ProcState) (Processor, error) {
	switch {
	case st == nil:
		return nil, fmt.Errorf("stream: nil processor snapshot")
	case st.Scan != nil:
		c := st.Scan
		s, err := NewScan(len(c.Labels), c.Lambda, c.Tau, c.Plus)
		if err != nil {
			return nil, err
		}
		for i, l := range c.Labels {
			s.labels[i] = labelState{
				hasLC: l.HasLC, lcValue: l.LCValue, pending: l.Pending,
				ou: l.OU, lu: copyPost(l.LU),
			}
		}
		s.clk = clock{now: c.Clock.Now, started: c.Clock.Started}
		for id, v := range c.EmittedAt {
			s.emittedAt[id] = v
		}
		return s, nil
	case st.Greedy != nil:
		c := st.Greedy
		s, err := NewGreedy(len(c.Selected), c.Lambda, c.Tau, c.Plus)
		if err != nil {
			return nil, err
		}
		s.clk = clock{now: c.Clock.Now, started: c.Clock.Started}
		s.pending = make([]pendingPost, len(c.Pending))
		for i, q := range c.Pending {
			s.pending[i] = pendingPost{
				post:      copyPost(q.Post),
				uncovered: append([]core.Label(nil), q.Uncovered...),
			}
		}
		for a, sel := range c.Selected {
			s.selected[a] = append([]float64(nil), sel...)
		}
		return s, nil
	case st.Instant != nil:
		c := st.Instant
		s, err := NewInstant(len(c.Set), c.Lambda)
		if err != nil {
			return nil, err
		}
		s.clk = clock{now: c.Clock.Now, started: c.Clock.Started}
		for i := range c.Set {
			s.cache[i].set = c.Set[i]
			s.cache[i].value = c.Values[i]
		}
		return s, nil
	}
	return nil, fmt.Errorf("stream: empty processor snapshot")
}

func copyPost(p core.Post) core.Post {
	p.Labels = append([]core.Label(nil), p.Labels...)
	return p
}

// TopKState is the serializable state of a continuous top-k view.
type TopKState[T any] struct {
	K       int
	Window  float64
	Now     float64
	Items   []TopKItem[T]
	Version uint64
}

// State deep-copies the view for serialization.
func (t *TopK[T]) State() TopKState[T] {
	return TopKState[T]{
		K:       t.k,
		Window:  t.window,
		Now:     t.now,
		Items:   append([]TopKItem[T](nil), t.items...),
		Version: t.version,
	}
}

// RestoreTopK rebuilds a view from a snapshot.
func RestoreTopK[T any](st TopKState[T]) *TopK[T] {
	v := NewTopK[T](st.K, st.Window)
	v.now = st.Now
	v.items = append([]TopKItem[T](nil), st.Items...)
	v.version = st.Version
	return v
}
