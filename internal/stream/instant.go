package stream

import (
	"fmt"

	"mqdp/internal/core"
)

// Instant is the τ = 0 processor of §5.1/§5.2: every arrival is decided
// immediately. It keeps the most recently emitted post per label; an arrival
// uncovered on any of its labels is emitted and refreshes the cache entry of
// every label it carries. The approximation factor is 2s — per label, any
// two consecutive emissions are more than λ apart, so an optimal solution
// needs at least half as many posts.
type Instant struct {
	lambda float64
	cache  []struct {
		set   bool
		value float64
	}
	clk clock
}

// NewInstant returns an instant-output processor for numLabels labels.
func NewInstant(numLabels int, lambda float64) (*Instant, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("stream: negative lambda %v", lambda)
	}
	return &Instant{
		lambda: lambda,
		cache: make([]struct {
			set   bool
			value float64
		}, numLabels),
	}, nil
}

// Name implements Processor.
func (s *Instant) Name() string { return "Instant" }

// Process implements Processor.
func (s *Instant) Process(p core.Post) ([]Emission, error) {
	if err := s.clk.advance(p.Value); err != nil {
		return nil, err
	}
	covered := true
	for _, a := range p.Labels {
		c := s.cache[a]
		if !c.set || p.Value-c.value > s.lambda {
			covered = false
			break
		}
	}
	o := obsState.Load()
	if o != nil {
		o.postsProcessed.Inc()
	}
	if covered || len(p.Labels) == 0 {
		return nil, nil
	}
	for _, a := range p.Labels {
		s.cache[a].set = true
		s.cache[a].value = p.Value
	}
	out := []Emission{{Post: p, EmitAt: p.Value}}
	o.observeDecisions(out)
	return out, nil
}

// Flush implements Processor. Instant has no outstanding decisions.
func (s *Instant) Flush() []Emission { return nil }
