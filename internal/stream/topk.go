package stream

// Continuous diversified top-k maintenance, per "Continuous Top-k Queries
// over Real-Time Web Streams" and the incremental-maintenance angle of
// "Diversifying Top-K Results": instead of only appending λ-cover decisions
// to a log, keep a live ranked view of the current cover that a dashboard
// can render at any instant. The view is maintained incrementally — one
// ranked insert per cover emission, one expiry sweep per window slide — so
// per-post cost stays far below recomputing a top-k over the window.

// maxTopKCandidates bounds the live candidate set behind a view. Cover
// emissions inside a window are naturally sparse (≈ s·window/λ posts), so
// the cap only bites on adversarial configurations; a variable so tests can
// exercise the overflow path cheaply.
var maxTopKCandidates = 4096

// TopKItem is one ranked member of a continuous top-k view: an opaque
// payload plus the metadata the view ranks and expires by.
type TopKItem[T any] struct {
	// Value is the diversity-dimension value (event time); expiry slides
	// on it and fresher items outrank staler ones at equal coverage.
	Value float64
	// Coverage is how many of the subscription's queries the item served
	// when it was emitted — the diversification payoff of keeping it.
	Coverage int
	// Seq is the emission sequence number, the final deterministic
	// tiebreak (earlier emission wins).
	Seq int64
	// Payload travels with the item and is returned by Items.
	Payload T
}

// before is the view's total rank order: coverage descending (items that
// serve more queries first), then value descending (fresher first), then
// seq ascending. A strict total order over distinct seqs, so the view is
// identical for any ingest parallelism.
func (a TopKItem[T]) before(b TopKItem[T]) bool {
	if a.Coverage != b.Coverage {
		return a.Coverage > b.Coverage
	}
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.Seq < b.Seq
}

// TopK maintains a continuously updated diversified top-k view over a
// λ-cover emission stream. Feed every cover emission to Insert as it is
// decided and call Advance as event time moves; Items is the current view
// in rank order. Every live (non-expired) candidate is retained — bounded
// by maxTopKCandidates — so an item sliding out of the window promotes the
// next-ranked candidate without revisiting past decisions.
//
// TopK is not safe for concurrent use; callers guard it with the same lock
// that orders their emission stream.
type TopK[T any] struct {
	k       int
	window  float64
	now     float64       // stream-time watermark anchoring the window
	items   []TopKItem[T] // live candidates in rank order
	version uint64
}

// NewTopK returns a view of size k (clamped to ≥ 1) over a sliding window
// of the given width in value units; window ≤ 0 disables expiry, leaving
// rank displacement as the only way out of the view.
func NewTopK[T any](k int, window float64) *TopK[T] {
	if k < 1 {
		k = 1
	}
	return &TopK[T]{k: k, window: window}
}

// K reports the configured view size.
func (t *TopK[T]) K() int { return t.k }

// Window reports the configured sliding-window width (0 = no expiry).
func (t *TopK[T]) Window() float64 { return t.window }

// Len reports the live candidate count (visible plus ranked spares).
func (t *TopK[T]) Len() int { return len(t.items) }

// Version counts visible-view changes: it bumps exactly when the top
// min(k, Len) ranked items change, so pollers and push hubs can skip
// no-op snapshots. A fresh view is version 0.
func (t *TopK[T]) Version() uint64 { return t.version }

// Insert adds one cover emission to the candidate set and reports whether
// the visible top-k changed. Items already behind the window are rejected
// outright, which makes Insert(x); Advance(now) order-insensitive.
func (t *TopK[T]) Insert(it TopKItem[T]) bool {
	if it.Value > t.now {
		t.now = it.Value
	}
	// The stream-time watermark anchors the window; an item that would
	// expire immediately never enters.
	if t.window > 0 && it.Value < t.now-t.window {
		return false
	}
	// Binary search for the rank-order insertion point.
	lo, hi := 0, len(t.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.items[mid].before(it) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= maxTopKCandidates {
		return false // ranks below every retained candidate at capacity
	}
	t.items = append(t.items, TopKItem[T]{})
	copy(t.items[lo+1:], t.items[lo:])
	t.items[lo] = it
	if len(t.items) > maxTopKCandidates {
		t.items = t.items[:maxTopKCandidates]
	}
	changed := lo < t.k
	if changed {
		t.version++
	}
	return changed
}

// Advance slides the window to event time now, expiring candidates whose
// value fell behind now−window, and reports whether the visible top-k
// changed. A no-op when the view has no window.
func (t *TopK[T]) Advance(now float64) bool {
	if now > t.now {
		t.now = now
	}
	if t.window <= 0 || len(t.items) == 0 {
		return false
	}
	cutoff := t.now - t.window
	changed := false
	kept := t.items[:0]
	for i := range t.items {
		if t.items[i].Value >= cutoff {
			kept = append(kept, t.items[i])
		} else if i < t.k {
			changed = true
		}
	}
	// Clear the dropped tail so pooled payloads don't pin memory.
	for i := len(kept); i < len(t.items); i++ {
		t.items[i] = TopKItem[T]{}
	}
	t.items = kept
	if changed {
		t.version++
	}
	return changed
}

// Items returns a copy of the visible view — the top min(k, Len)
// candidates in rank order.
func (t *TopK[T]) Items() []TopKItem[T] {
	n := len(t.items)
	if n > t.k {
		n = t.k
	}
	out := make([]TopKItem[T], n)
	copy(out, t.items[:n])
	return out
}
