package stream

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mqdp/internal/core"
	"mqdp/internal/fenwick"
)

// pendingPost is a buffered post whose labels are not all covered yet.
type pendingPost struct {
	post      core.Post
	uncovered []core.Label // labels still awaiting coverage
}

// Greedy is the streaming set-cover processor of §5.2 (StreamGreedySC and,
// with Plus, StreamGreedySC+). Let P' be the oldest post with an uncovered
// label. At event time time(P')+τ the processor takes the window Z of
// buffered posts published up to that time and runs the greedy set-cover
// rule over Z's uncovered (post, label) pairs, emitting selections until
// either all of Z is covered (StreamGreedySC) or P' itself is covered
// (StreamGreedySC+), then repeats with the next oldest uncovered post.
//
// Each decision round counts window gains with per-label Fenwick trees, so a
// round costs O(selections · |Z| · s · log |Z|) instead of the naive
// O(selections · |Z|²·s); the selected posts are identical.
type Greedy struct {
	name   string
	lambda float64
	tau    float64
	plus   bool
	clk    clock
	// pending holds buffered posts in arrival order; head is the index of
	// the first live entry (the slice is compacted when it grows).
	pending []pendingPost
	head    int
	// selected[a] holds emission values carrying label a, ascending, used
	// to test whether arrivals are already covered. Old entries are pruned.
	selected [][]float64
}

// NewGreedy returns a StreamGreedySC processor (StreamGreedySC+ when plus is
// set) for numLabels labels.
func NewGreedy(numLabels int, lambda, tau float64, plus bool) (*Greedy, error) {
	if lambda < 0 || tau < 0 {
		return nil, fmt.Errorf("stream: negative lambda %v or tau %v", lambda, tau)
	}
	name := "StreamGreedySC"
	if plus {
		name = "StreamGreedySC+"
	}
	return &Greedy{
		name:     name,
		lambda:   lambda,
		tau:      tau,
		plus:     plus,
		selected: make([][]float64, numLabels),
	}, nil
}

// Name implements Processor.
func (s *Greedy) Name() string { return s.name }

// Process implements Processor.
func (s *Greedy) Process(p core.Post) ([]Emission, error) {
	if err := s.clk.advance(p.Value); err != nil {
		return nil, err
	}
	o := obsState.Load()
	out := s.runRounds(p.Value)
	if unc := s.uncoveredLabels(p); len(unc) > 0 {
		s.pending = append(s.pending, pendingPost{post: p, uncovered: unc})
		// A zero τ decides the arrival at its own timestamp.
		out = append(out, s.runRounds(p.Value)...)
	}
	if o != nil {
		start := time.Now()
		s.prune(p.Value)
		o.windowMaint.ObserveSince(start)
		o.postsProcessed.Inc()
		o.observeDecisions(out)
	} else {
		s.prune(p.Value)
	}
	return out, nil
}

// Flush implements Processor.
func (s *Greedy) Flush() []Emission {
	out := s.runRounds(math.Inf(1))
	obsState.Load().observeDecisions(out)
	return out
}

// uncoveredLabels returns the labels of p not covered by prior emissions.
func (s *Greedy) uncoveredLabels(p core.Post) []core.Label {
	var unc []core.Label
	for _, a := range p.Labels {
		sel := s.selected[a]
		// Only the most recent emissions can cover an arrival: earlier
		// ones are farther in value from a post arriving now.
		k := sort.SearchFloat64s(sel, p.Value-s.lambda)
		if k == len(sel) {
			unc = append(unc, a)
		}
	}
	return unc
}

// runRounds executes decision rounds while the oldest uncovered post's
// deadline has passed by event time t.
func (s *Greedy) runRounds(t float64) []Emission {
	var out []Emission
	for s.head < len(s.pending) {
		oldest := s.pending[s.head].post.Value
		deadline := oldest + s.tau
		if deadline > t {
			break
		}
		out = append(out, s.decide(deadline)...)
		s.compact()
	}
	return out
}

// labelWindow tracks one label's uncovered pairs inside a decision window.
type labelWindow struct {
	vals []float64 // pair values, ascending (pending is time-ordered)
	pidx []int     // owning pending index per pair
	live []bool
	bit  *fenwick.Tree
}

// decide runs one greedy round at decision time d over the window Z of
// pending posts published at or before d.
func (s *Greedy) decide(d float64) []Emission {
	// Z is the prefix of pending posts with value ≤ d.
	zEnd := s.head
	for zEnd < len(s.pending) && s.pending[zEnd].post.Value <= d {
		zEnd++
	}
	// Per-label uncovered-pair windows.
	wins := make(map[core.Label]*labelWindow)
	roundUncovered := 0
	for qi := s.head; qi < zEnd; qi++ {
		q := &s.pending[qi]
		for _, a := range q.uncovered {
			lw := wins[a]
			if lw == nil {
				lw = &labelWindow{}
				wins[a] = lw
			}
			lw.vals = append(lw.vals, q.post.Value)
			lw.pidx = append(lw.pidx, qi)
			lw.live = append(lw.live, true)
			roundUncovered++
		}
	}
	for _, lw := range wins {
		lw.bit = fenwick.New(len(lw.vals))
		for k := range lw.vals {
			lw.bit.Add(k, 1)
		}
	}
	gain := func(zi int) int {
		z := s.pending[zi].post
		total := 0
		for _, a := range z.Labels {
			lw := wins[a]
			if lw == nil {
				continue
			}
			from := sort.SearchFloat64s(lw.vals, z.Value-s.lambda)
			to := sort.Search(len(lw.vals), func(k int) bool { return lw.vals[k] > z.Value+s.lambda })
			total += lw.bit.RangeSum(from, to)
		}
		return total
	}
	var out []Emission
	for {
		if s.plus {
			// Stop as soon as the round's trigger post is covered.
			if s.head >= len(s.pending) || len(s.pending[s.head].uncovered) == 0 {
				break
			}
		} else if roundUncovered == 0 {
			break
		}
		best, bestGain := -1, 0
		for zi := s.head; zi < zEnd; zi++ {
			if g := gain(zi); g > bestGain {
				best, bestGain = zi, g
			}
		}
		if best == -1 {
			break // unreachable: uncovered posts cover themselves
		}
		z := s.pending[best].post
		out = append(out, Emission{Post: z, EmitAt: d})
		for _, a := range z.Labels {
			s.selected[a] = append(s.selected[a], z.Value)
		}
		roundUncovered -= s.coverWindowPairs(wins, z)
		s.coverTailPairs(zEnd, z)
	}
	return out
}

// coverWindowPairs marks every in-window pair z covers, returning the count.
func (s *Greedy) coverWindowPairs(wins map[core.Label]*labelWindow, z core.Post) int {
	covered := 0
	for _, a := range z.Labels {
		lw := wins[a]
		if lw == nil {
			continue
		}
		from := sort.SearchFloat64s(lw.vals, z.Value-s.lambda)
		to := sort.Search(len(lw.vals), func(k int) bool { return lw.vals[k] > z.Value+s.lambda })
		for k := from; k < to; k++ {
			if !lw.live[k] {
				continue
			}
			lw.live[k] = false
			lw.bit.Add(k, -1)
			dropLabel(&s.pending[lw.pidx[k]], a)
			covered++
		}
	}
	return covered
}

// coverTailPairs clears z's labels from pending posts beyond the window
// (arrived after the decision deadline but within λ of z).
func (s *Greedy) coverTailPairs(zEnd int, z core.Post) {
	for qi := zEnd; qi < len(s.pending); qi++ {
		q := &s.pending[qi]
		if q.post.Value > z.Value+s.lambda {
			break // pending is time-ordered
		}
		if len(q.uncovered) == 0 || math.Abs(q.post.Value-z.Value) > s.lambda {
			continue
		}
		for _, a := range z.Labels {
			dropLabel(q, a)
		}
	}
}

// dropLabel removes label a from q's uncovered set if present.
func dropLabel(q *pendingPost, a core.Label) {
	for i, l := range q.uncovered {
		if l == a {
			q.uncovered = append(q.uncovered[:i], q.uncovered[i+1:]...)
			return
		}
	}
}

// compact drops fully covered posts from the head of the buffer and
// periodically rebuilds the slice.
func (s *Greedy) compact() {
	for s.head < len(s.pending) && len(s.pending[s.head].uncovered) == 0 {
		s.head++
	}
	if s.head > 1024 && s.head*2 > len(s.pending) {
		s.pending = append([]pendingPost(nil), s.pending[s.head:]...)
		s.head = 0
	}
}

// prune discards selected-value entries too old to cover future arrivals.
func (s *Greedy) prune(now float64) {
	cutoff := now - s.lambda
	for a := range s.selected {
		sel := s.selected[a]
		if len(sel) < 64 || sel[len(sel)/2] >= cutoff {
			continue
		}
		k := sort.SearchFloat64s(sel, cutoff)
		s.selected[a] = append(sel[:0], sel[k:]...)
	}
}
