package stream

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func item(cov int, value float64, seq int64) TopKItem[int64] {
	return TopKItem[int64]{Value: value, Coverage: cov, Seq: seq, Payload: seq}
}

// reference recomputes the view from scratch: sort all live candidates by
// rank and take the first k.
func reference(items []TopKItem[int64], k int, now, window float64) []TopKItem[int64] {
	var live []TopKItem[int64]
	for _, it := range items {
		if window <= 0 || it.Value >= now-window {
			live = append(live, it)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].before(live[j]) })
	if len(live) > k {
		live = live[:k]
	}
	return live
}

func TestTopKRankOrder(t *testing.T) {
	v := NewTopK[int64](3, 0)
	v.Insert(item(1, 10, 1))
	v.Insert(item(2, 5, 2))  // higher coverage outranks fresher value
	v.Insert(item(2, 7, 3))  // same coverage, fresher → ahead of seq 2
	v.Insert(item(1, 10, 4)) // ties with seq 1 on coverage+value → seq wins
	got := v.Items()
	want := []int64{3, 2, 1}
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, w := range want {
		if got[i].Payload != w {
			t.Errorf("rank %d = seq %d, want %d", i, got[i].Payload, w)
		}
	}
	if v.Len() != 4 {
		t.Errorf("Len = %d, want 4 live candidates", v.Len())
	}
}

func TestTopKVersionBumpsOnlyOnVisibleChange(t *testing.T) {
	v := NewTopK[int64](2, 0)
	if v.Version() != 0 {
		t.Fatalf("fresh version = %d", v.Version())
	}
	if !v.Insert(item(5, 1, 1)) || !v.Insert(item(4, 2, 2)) {
		t.Fatal("first two inserts must change the view")
	}
	ver := v.Version()
	// Ranks below both → invisible, version unchanged.
	if v.Insert(item(1, 0, 3)) {
		t.Error("below-the-fold insert reported a visible change")
	}
	if v.Version() != ver {
		t.Errorf("version moved %d → %d on invisible insert", ver, v.Version())
	}
	// Outranks the current second → visible.
	if !v.Insert(item(6, 3, 4)) {
		t.Error("top insert did not report a change")
	}
	if v.Version() == ver {
		t.Error("version did not bump on visible insert")
	}
}

func TestTopKWindowExpiry(t *testing.T) {
	v := NewTopK[int64](2, 10)
	v.Insert(item(3, 0, 1))
	v.Insert(item(2, 5, 2))
	v.Insert(item(1, 6, 3))
	if changed := v.Advance(9); changed {
		t.Error("Advance inside the window reported a change")
	}
	// now=11 expires value 0 (the rank-1 item) → seq 3 promotes into view.
	if changed := v.Advance(11); !changed {
		t.Error("expiring a visible item did not report a change")
	}
	got := v.Items()
	if len(got) != 2 || got[0].Payload != 2 || got[1].Payload != 3 {
		t.Fatalf("view after expiry = %+v, want seqs [2 3]", got)
	}
	// An item already behind the window never enters.
	if v.Insert(item(9, 0.5, 4)) {
		t.Error("stale insert entered the view")
	}
}

func TestTopKCandidateCap(t *testing.T) {
	old := maxTopKCandidates
	maxTopKCandidates = 4
	defer func() { maxTopKCandidates = old }()
	v := NewTopK[int64](2, 0)
	for i := int64(1); i <= 6; i++ {
		v.Insert(item(int(i), float64(i), i))
	}
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want cap 4", v.Len())
	}
	// Worst-ranked insert at capacity is rejected.
	if v.Insert(item(0, 0, 7)) {
		t.Error("at-capacity bottom insert reported a change")
	}
	if v.Len() != 4 {
		t.Errorf("cap breached: Len = %d", v.Len())
	}
	got := v.Items()
	if got[0].Payload != 6 || got[1].Payload != 5 {
		t.Errorf("view = %+v, want seqs [6 5]", got)
	}
}

// TestTopKMatchesReference drives random insert/advance traffic and checks
// the incremental view against a from-scratch recompute at every step.
func TestTopKMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		window := float64(0)
		if rng.Intn(2) == 0 {
			window = 5 + 10*rng.Float64()
		}
		v := NewTopK[int64](k, window)
		var all []TopKItem[int64]
		now := 0.0
		for i := int64(1); i <= 400; i++ {
			now += rng.Float64()
			it := item(rng.Intn(5), now, i)
			v.Insert(it)
			all = append(all, it)
			v.Advance(now)
			got := v.Items()
			want := reference(all, k, now, window)
			if len(got) != len(want) {
				t.Fatalf("seed %d step %d: len %d, want %d", seed, i, len(got), len(want))
			}
			for j := range got {
				if got[j].Seq != want[j].Seq {
					t.Fatalf("seed %d step %d rank %d: seq %d, want %d\ngot %+v\nwant %+v",
						seed, i, j, got[j].Seq, want[j].Seq, got, want)
				}
			}
		}
	}
}

func TestTopKItemsIsACopy(t *testing.T) {
	v := NewTopK[int64](2, 0)
	v.Insert(item(1, 1, 1))
	a := v.Items()
	a[0].Payload = 99
	if got := v.Items(); got[0].Payload != 1 {
		t.Fatalf("Items aliases internal state: %+v", got)
	}
	if !reflect.DeepEqual(v.Items(), v.Items()) {
		t.Fatal("Items not stable")
	}
}
