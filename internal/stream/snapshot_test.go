package stream

import (
	"math/rand"
	"reflect"
	"testing"

	"mqdp/internal/core"
)

// genPosts builds a deterministic random post stream in timestamp order.
func genPosts(seed int64, n, numLabels int) []core.Post {
	rng := rand.New(rand.NewSource(seed))
	posts := make([]core.Post, n)
	t := 0.0
	for i := range posts {
		t += rng.Float64() * 3
		nl := 1 + rng.Intn(3)
		labels := make([]core.Label, 0, nl)
		for len(labels) < nl {
			a := core.Label(rng.Intn(numLabels))
			dup := false
			for _, b := range labels {
				dup = dup || a == b
			}
			if !dup {
				labels = append(labels, a)
			}
		}
		posts[i] = core.Post{ID: int64(i + 1), Value: t, Labels: labels}
	}
	return posts
}

func newProc(t *testing.T, algo string, numLabels int) Processor {
	t.Helper()
	var p Processor
	var err error
	switch algo {
	case "scan":
		p, err = NewScan(numLabels, 4, 2, false)
	case "scan+":
		p, err = NewScan(numLabels, 4, 2, true)
	case "greedy":
		p, err = NewGreedy(numLabels, 4, 2, false)
	case "greedy+":
		p, err = NewGreedy(numLabels, 4, 2, true)
	case "instant":
		p, err = NewInstant(numLabels, 4)
	}
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCaptureRestoreEquivalence is the correctness core of snapshot-based
// recovery: capturing a processor mid-stream and restoring it must change
// nothing about the emissions of the remaining stream, for every processor
// and every split point.
func TestCaptureRestoreEquivalence(t *testing.T) {
	const numLabels = 6
	posts := genPosts(42, 120, numLabels)
	for _, algo := range []string{"scan", "scan+", "greedy", "greedy+", "instant"} {
		t.Run(algo, func(t *testing.T) {
			ref := newProc(t, algo, numLabels)
			want, err := Run(posts, ref)
			if err != nil {
				t.Fatal(err)
			}
			for split := 0; split <= len(posts); split += 7 {
				p := newProc(t, algo, numLabels)
				var got []Emission
				for _, post := range posts[:split] {
					es, err := p.Process(post)
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, es...)
				}
				st, err := CaptureProcessor(p)
				if err != nil {
					t.Fatalf("split %d: capture: %v", split, err)
				}
				// Keep driving the original past the capture point: the
				// snapshot must be an unaffected deep copy.
				for _, post := range posts[split:] {
					if _, err := p.Process(post); err != nil {
						t.Fatal(err)
					}
				}
				restored, err := RestoreProcessor(st)
				if err != nil {
					t.Fatalf("split %d: restore: %v", split, err)
				}
				if restored.Name() != ref.Name() {
					t.Fatalf("split %d: restored name %q, want %q", split, restored.Name(), ref.Name())
				}
				for _, post := range posts[split:] {
					es, err := restored.Process(post)
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, es...)
				}
				got = append(got, restored.Flush()...)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s split %d: spliced run emitted %d posts, uninterrupted %d (or differing decisions)",
						algo, split, len(got), len(want))
				}
			}
		})
	}
}

func TestCaptureRestoreRejectsUnknown(t *testing.T) {
	if _, err := CaptureProcessor(nil); err == nil {
		t.Fatal("CaptureProcessor(nil) should fail")
	}
	if _, err := RestoreProcessor(nil); err == nil {
		t.Fatal("RestoreProcessor(nil) should fail")
	}
	if _, err := RestoreProcessor(&ProcState{}); err == nil {
		t.Fatal("RestoreProcessor(empty) should fail")
	}
}

func TestTopKStateRoundTrip(t *testing.T) {
	v := NewTopK[string](3, 10)
	for i := 0; i < 20; i++ {
		v.Insert(TopKItem[string]{Value: float64(i), Coverage: i % 4, Seq: int64(i), Payload: "p"})
	}
	st := v.State()
	r := RestoreTopK(st)
	if r.Version() != v.Version() || r.Len() != v.Len() {
		t.Fatalf("restored version/len %d/%d, want %d/%d", r.Version(), r.Len(), v.Version(), v.Len())
	}
	if !reflect.DeepEqual(r.Items(), v.Items()) {
		t.Fatal("restored visible view differs")
	}
	// Both must evolve identically from here.
	it := TopKItem[string]{Value: 25, Coverage: 9, Seq: 99, Payload: "x"}
	if v.Insert(it) != r.Insert(it) || v.Advance(30) != r.Advance(30) {
		t.Fatal("restored view diverged on identical input")
	}
	if !reflect.DeepEqual(r.Items(), v.Items()) {
		t.Fatal("restored view items diverged after inserts")
	}
}
