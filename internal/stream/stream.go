// Package stream implements the Streaming Multi-Query Diversification
// Problem (StreamMQDP, Problem 2 of the paper): posts arrive in timestamp
// order and a small λ-covering substream must be emitted, with every emitted
// post reported within delay τ of its own timestamp.
//
// Processors are driven by event time — the timestamps carried by the posts
// themselves — never by the wall clock, so replaying a day of traffic is
// deterministic and takes milliseconds, exactly like the paper's replays of
// a recorded Twitter day. Four processors mirror §5: StreamScan and
// StreamScan+ (per-label deadline scans, approximation factor s for τ ≥ λ),
// StreamGreedySC and StreamGreedySC+ (windowed greedy set cover), and the
// Instant processor (τ = 0, approximation factor 2s).
package stream

import (
	"errors"
	"fmt"
	"sort"

	"mqdp/internal/core"
)

// Emission is one output decision: the emitted post and the event time at
// which the processor decided to emit it. EmitAt − Post.Value is the
// reporting delay and never exceeds the processor's τ.
type Emission struct {
	Post   core.Post
	EmitAt float64
}

// Processor consumes a post stream in nondecreasing Value order and emits a
// λ-covering substream with bounded delay.
type Processor interface {
	// Name identifies the algorithm, e.g. "StreamScan+".
	Name() string
	// Process feeds the next post. Posts must arrive in nondecreasing
	// Value order; ErrOutOfOrder is returned otherwise. The returned
	// emissions are decisions whose deadlines elapsed at or before this
	// post's timestamp (plus, for τ=0 processors, the post itself).
	Process(p core.Post) ([]Emission, error)
	// Flush ends the stream, firing every outstanding deadline.
	Flush() []Emission
}

// ErrOutOfOrder reports a post whose timestamp precedes an earlier one.
var ErrOutOfOrder = errors.New("stream: post arrived out of timestamp order")

// Run replays posts (sorted by Value ascending) through p and returns every
// emission in decision order.
func Run(posts []core.Post, p Processor) ([]Emission, error) {
	var out []Emission
	for i := range posts {
		es, err := p.Process(posts[i])
		if err != nil {
			return nil, fmt.Errorf("stream: post %d (id %d): %w", i, posts[i].ID, err)
		}
		out = append(out, es...)
	}
	return append(out, p.Flush()...), nil
}

// clock tracks stream progress and rejects regressions.
type clock struct {
	now     float64
	started bool
}

func (c *clock) advance(t float64) error {
	if c.started && t < c.now {
		return fmt.Errorf("%w: %v after %v", ErrOutOfOrder, t, c.now)
	}
	c.now = t
	c.started = true
	return nil
}

// sortEmissions orders a decision batch by (EmitAt, post value, post ID) so
// batches are deterministic.
func sortEmissions(es []Emission) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].EmitAt != es[j].EmitAt {
			return es[i].EmitAt < es[j].EmitAt
		}
		if es[i].Post.Value != es[j].Post.Value {
			return es[i].Post.Value < es[j].Post.Value
		}
		return es[i].Post.ID < es[j].Post.ID
	})
}

// Summary aggregates an emission batch for reporting: output size and the
// decision-delay distribution, the two sides of the paper's §5 tradeoff.
type Summary struct {
	Count     int
	MeanDelay float64
	MaxDelay  float64
	// P95Delay is the 95th-percentile decision delay.
	P95Delay float64
}

// Summarize computes a Summary over emissions.
func Summarize(es []Emission) Summary {
	delays := make([]float64, len(es))
	for i, e := range es {
		delays[i] = e.EmitAt - e.Post.Value
	}
	return SummarizeDelays(delays)
}

// SummarizeDelays computes a Summary from raw decision delays. It is the
// core of Summarize, split out for callers (the pub/sub server) that hold
// emissions in their own record type. delays is sorted in place.
func SummarizeDelays(delays []float64) Summary {
	s := Summary{Count: len(delays)}
	if len(delays) == 0 {
		return s
	}
	total := 0.0
	for _, d := range delays {
		total += d
		if d > s.MaxDelay {
			s.MaxDelay = d
		}
	}
	s.MeanDelay = total / float64(len(delays))
	sort.Float64s(delays)
	idx := (len(delays)*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	s.P95Delay = delays[idx]
	return s
}
