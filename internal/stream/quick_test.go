package stream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mqdp/internal/core"
)

// quickStream derives a random, time-ordered post stream from a seed.
func quickStream(seed int64, maxPosts, numLabels int) []core.Post {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxPosts)
	posts := make([]core.Post, n)
	v := 0.0
	for i := range posts {
		v += rng.Float64() * 4
		var labels []core.Label
		for a := 0; a < numLabels; a++ {
			if rng.Intn(3) == 0 {
				labels = append(labels, core.Label(a))
			}
		}
		if len(labels) == 0 {
			labels = append(labels, core.Label(rng.Intn(numLabels)))
		}
		posts[i] = core.Post{ID: int64(i), Value: v, Labels: labels}
	}
	return posts
}

func TestQuickEmissionsAlwaysCoverAndRespectDelay(t *testing.T) {
	check := func(seed int64, lambdaRaw, tauRaw uint8) bool {
		const numLabels = 3
		posts := quickStream(seed, 50, numLabels)
		lambda := float64(lambdaRaw%12) + 1
		tau := float64(tauRaw % 12)
		procs := []Processor{}
		for _, plus := range []bool{false, true} {
			sc, _ := NewScan(numLabels, lambda, tau, plus)
			gr, _ := NewGreedy(numLabels, lambda, tau, plus)
			procs = append(procs, sc, gr)
		}
		inst, _ := NewInstant(numLabels, lambda)
		procs = append(procs, inst)
		in, err := core.NewInstance(posts, numLabels)
		if err != nil {
			return false
		}
		byID := make(map[int64]int)
		for i := 0; i < in.Len(); i++ {
			byID[in.Post(i).ID] = i
		}
		for _, p := range procs {
			es, err := Run(posts, p)
			if err != nil {
				t.Logf("seed=%d: %s: %v", seed, p.Name(), err)
				return false
			}
			bound := tau
			if p.Name() == "Instant" {
				bound = 0
			}
			var sel []int
			for _, e := range es {
				sel = append(sel, byID[e.Post.ID])
				if d := e.EmitAt - e.Post.Value; d < -1e-9 || d > bound+1e-9 {
					t.Logf("seed=%d: %s delay %v outside [0,%v]", seed, p.Name(), d, bound)
					return false
				}
			}
			if err := in.VerifyCover(core.FixedLambda(lambda), sel); err != nil {
				t.Logf("seed=%d: %s: %v", seed, p.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickStreamingDeterministic(t *testing.T) {
	check := func(seed int64) bool {
		posts := quickStream(seed, 40, 2)
		for _, build := range []func() Processor{
			func() Processor { p, _ := NewScan(2, 5, 3, true); return p },
			func() Processor { p, _ := NewGreedy(2, 5, 3, false); return p },
			func() Processor { p, _ := NewInstant(2, 5); return p },
		} {
			a, errA := Run(posts, build())
			b, errB := Run(posts, build())
			if errA != nil || errB != nil || len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i].Post.ID != b[i].Post.ID || a[i].EmitAt != b[i].EmitAt {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickInstantNeverBeatsHalfOptimalPerLabel(t *testing.T) {
	// Instant's per-label guarantee (§5.1): consecutive emissions for one
	// label are > λ apart, hence ≤ 2·OPT emissions per label.
	check := func(seed int64, lambdaRaw uint8) bool {
		posts := quickStream(seed, 20, 1)
		lambda := float64(lambdaRaw%8) + 1
		p, _ := NewInstant(1, lambda)
		es, err := Run(posts, p)
		if err != nil {
			return false
		}
		for i := 1; i < len(es); i++ {
			if es[i].Post.Value-es[i-1].Post.Value <= lambda {
				t.Logf("seed=%d: consecutive instant emissions within λ", seed)
				return false
			}
		}
		in, err := core.NewInstance(posts, 1)
		if err != nil {
			return false
		}
		opt, err := in.OPT(lambda, nil)
		if err != nil {
			return false
		}
		return len(es) <= 2*opt.Size()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
