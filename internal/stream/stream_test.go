package stream

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mqdp/internal/core"
)

// mk builds a post with the given id, value and labels.
func mk(id int64, v float64, labels ...core.Label) core.Post {
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	return core.Post{ID: id, Value: v, Labels: labels}
}

// allProcessors builds one of each processor kind for a label space.
func allProcessors(t *testing.T, numLabels int, lambda, tau float64) []Processor {
	t.Helper()
	var ps []Processor
	for _, plus := range []bool{false, true} {
		sc, err := NewScan(numLabels, lambda, tau, plus)
		if err != nil {
			t.Fatalf("NewScan: %v", err)
		}
		gr, err := NewGreedy(numLabels, lambda, tau, plus)
		if err != nil {
			t.Fatalf("NewGreedy: %v", err)
		}
		ps = append(ps, sc, gr)
	}
	inst, err := NewInstant(numLabels, lambda)
	if err != nil {
		t.Fatalf("NewInstant: %v", err)
	}
	return append(ps, inst)
}

// checkStream replays posts through p and asserts that the emissions form a
// λ-cover of the whole stream and that every emission respects the delay
// bound. It returns the emission count.
func checkStream(t *testing.T, posts []core.Post, numLabels int, lambda, tau float64, p Processor) int {
	t.Helper()
	es, err := Run(posts, p)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	in, err := core.NewInstance(posts, numLabels)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	// Map emissions back to instance indexes by ID.
	byID := make(map[int64]int)
	for i := 0; i < in.Len(); i++ {
		byID[in.Post(i).ID] = i
	}
	seen := make(map[int64]bool)
	var sel []int
	for _, e := range es {
		if seen[e.Post.ID] {
			t.Errorf("%s: post %d emitted twice", p.Name(), e.Post.ID)
		}
		seen[e.Post.ID] = true
		idx, ok := byID[e.Post.ID]
		if !ok {
			t.Fatalf("%s: emitted unknown post %d", p.Name(), e.Post.ID)
		}
		sel = append(sel, idx)
		if delay := e.EmitAt - e.Post.Value; delay < -1e-9 || delay > tau+1e-9 {
			t.Errorf("%s: post %d delay %v outside [0, τ=%v]", p.Name(), e.Post.ID, delay, tau)
		}
	}
	if err := in.VerifyCover(core.FixedLambda(lambda), sel); err != nil {
		t.Errorf("%s: emissions do not cover the stream: %v", p.Name(), err)
	}
	return len(es)
}

func TestProcessorsCoverRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		numLabels := 1 + rng.Intn(4)
		n := 1 + rng.Intn(60)
		posts := make([]core.Post, n)
		v := 0.0
		for i := range posts {
			v += rng.Float64() * 4
			var labels []core.Label
			for a := 0; a < numLabels; a++ {
				if rng.Intn(3) == 0 {
					labels = append(labels, core.Label(a))
				}
			}
			if len(labels) == 0 {
				labels = append(labels, core.Label(rng.Intn(numLabels)))
			}
			posts[i] = mk(int64(i), v, labels...)
		}
		lambda := 1 + rng.Float64()*6
		tau := rng.Float64() * 8
		for _, p := range allProcessors(t, numLabels, lambda, tau) {
			if _, ok := p.(*Instant); ok {
				checkStream(t, posts, numLabels, lambda, 0, p)
			} else {
				checkStream(t, posts, numLabels, lambda, tau, p)
			}
		}
	}
}

func TestStreamScanMatchesOfflineScanWhenTauAtLeastLambda(t *testing.T) {
	// §5.1: with τ ≥ λ StreamScan outputs exactly as offline Scan, hence
	// the same solution size.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		numLabels := 1 + rng.Intn(3)
		n := 1 + rng.Intn(50)
		posts := make([]core.Post, n)
		v := 0.0
		for i := range posts {
			v += rng.Float64() * 3
			labels := []core.Label{core.Label(rng.Intn(numLabels))}
			posts[i] = mk(int64(i), v, labels...)
		}
		lambda := 1 + rng.Float64()*5
		tau := lambda + rng.Float64()*5
		p, err := NewScan(numLabels, lambda, tau, false)
		if err != nil {
			t.Fatal(err)
		}
		es, err := Run(posts, p)
		if err != nil {
			t.Fatal(err)
		}
		in, err := core.NewInstance(posts, numLabels)
		if err != nil {
			t.Fatal(err)
		}
		offline := in.Scan(core.FixedLambda(lambda))
		if len(es) != offline.Size() {
			t.Fatalf("trial %d: StreamScan(τ=%v≥λ=%v) emitted %d, offline Scan %d",
				trial, tau, lambda, len(es), offline.Size())
		}
	}
}

func TestInstantTwoSBound(t *testing.T) {
	// Per label, Instant emits ≤ 2·optimal posts (§5.1); globally ≤ 2s·OPT.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(14)
		posts := make([]core.Post, n)
		v := 0.0
		for i := range posts {
			v += rng.Float64() * 3
			posts[i] = mk(int64(i), v, 0)
		}
		lambda := 1 + rng.Float64()*4
		p, err := NewInstant(1, lambda)
		if err != nil {
			t.Fatal(err)
		}
		es, err := Run(posts, p)
		if err != nil {
			t.Fatal(err)
		}
		in, err := core.NewInstance(posts, 1)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := in.OPT(lambda, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(es) > 2*opt.Size() {
			t.Fatalf("trial %d: instant emitted %d > 2·OPT = %d", trial, len(es), 2*opt.Size())
		}
	}
}

func TestFigure5WorstCase(t *testing.T) {
	// Figure 5: single label, posts at 1..9 with λ = 2·spacing. The optimal
	// cover picks {2, 5, 8}-style centers (3 posts); Instant emits posts
	// 1, 4, 7 (spaced just over λ) — ratio approaching 2 needs the paper's
	// adversarial spacing; here we check Instant emits the greedy-from-left
	// selection and stays within the 2s bound.
	var posts []core.Post
	for i := 1; i <= 9; i++ {
		posts = append(posts, mk(int64(i), float64(i), 0))
	}
	lambda := 2.0
	p, _ := NewInstant(1, lambda)
	es, err := Run(posts, p)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []int64{1, 4, 7} // each next emission is the first arrival > λ after the previous
	if len(es) != len(wantIDs) {
		t.Fatalf("instant emitted %d posts (%v), want %d", len(es), es, len(wantIDs))
	}
	for i, e := range es {
		if e.Post.ID != wantIDs[i] {
			t.Errorf("emission %d = post %d, want %d", i, e.Post.ID, wantIDs[i])
		}
	}
	in, _ := core.NewInstance(posts, 1)
	opt, err := in.OPT(lambda, nil)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Size() != 2 { // posts 3 and 7 cover 1..9 with λ=2
		t.Errorf("OPT = %d, want 2", opt.Size())
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	for _, p := range allProcessors(t, 2, 1, 1) {
		if _, err := p.Process(mk(1, 5, 0)); err != nil {
			t.Fatalf("%s: first post rejected: %v", p.Name(), err)
		}
		if _, err := p.Process(mk(2, 4, 0)); err == nil {
			t.Errorf("%s accepted out-of-order post", p.Name())
		}
	}
}

func TestEqualTimestampsAccepted(t *testing.T) {
	posts := []core.Post{mk(1, 1, 0), mk(2, 1, 1), mk(3, 1, 0, 1)}
	for _, p := range allProcessors(t, 2, 1, 1) {
		tau := 1.0
		if _, ok := p.(*Instant); ok {
			tau = 0
		}
		checkStream(t, posts, 2, 1, tau, p)
	}
}

func TestScanDelayedEmission(t *testing.T) {
	// λ=10, τ=2: a lone post must be emitted at its timestamp+τ, not
	// held for the λ window.
	p, _ := NewScan(1, 10, 2, false)
	es, err := p.Process(mk(1, 0, 0))
	if err != nil || len(es) != 0 {
		t.Fatalf("unexpected immediate emission: %v %v", es, err)
	}
	es, err = p.Process(mk(2, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 || es[0].Post.ID != 1 || es[0].EmitAt != 2 {
		t.Fatalf("emissions = %+v, want post 1 at time 2", es)
	}
	// Post 2 is covered by post 1 (distance 5 ≤ λ): nothing pending.
	if es = p.Flush(); len(es) != 0 {
		t.Errorf("flush emitted %+v, want none", es)
	}
}

func TestScanLambdaDeadlineDominates(t *testing.T) {
	// λ=2, τ=100: pending posts cannot wait past oldest+λ or the oldest
	// uncovered post would become uncoverable.
	p, _ := NewScan(1, 2, 100, false)
	mustProcess(t, p, mk(1, 0, 0))
	es := mustProcess(t, p, mk(2, 1.5, 0))
	if len(es) != 0 {
		t.Fatalf("premature emission %+v", es)
	}
	// At t=3 the deadline min(1.5+100, 0+2)=2 has passed: emit post 2.
	es = mustProcess(t, p, mk(3, 3, 0))
	if len(es) != 1 || es[0].Post.ID != 2 || es[0].EmitAt != 2 {
		t.Fatalf("emissions = %+v, want post 2 at time 2", es)
	}
}

func TestScanPlusSavesCrossLabelEmissions(t *testing.T) {
	// Post 3 carries both labels and is emitted for label 0; StreamScan+
	// clears label 1's backlog with it, while StreamScan separately emits
	// post 4 (label 1's latest uncovered) at label 1's own deadline.
	posts := []core.Post{
		mk(1, 0, 0),
		mk(2, 0.5, 1),
		mk(3, 1, 0, 1),
		mk(4, 1.2, 1),
	}
	lambda, tau := 2.0, 2.0
	plain, _ := NewScan(2, lambda, tau, false)
	plus, _ := NewScan(2, lambda, tau, true)
	esPlain, err := Run(posts, plain)
	if err != nil {
		t.Fatal(err)
	}
	esPlus, err := Run(posts, plus)
	if err != nil {
		t.Fatal(err)
	}
	if len(esPlus) > len(esPlain) {
		t.Errorf("StreamScan+ emitted %d > StreamScan %d", len(esPlus), len(esPlain))
	}
	if len(esPlus) != 1 {
		t.Errorf("StreamScan+ emitted %d posts (%+v), want 1 (post 3 serves both labels)", len(esPlus), esPlus)
	}
}

func TestGreedyWindowCoversBurst(t *testing.T) {
	// A burst of overlapping posts inside one τ window should be served by
	// few selections.
	var posts []core.Post
	for i := 0; i < 10; i++ {
		posts = append(posts, mk(int64(i), float64(i)*0.1, 0, 1))
	}
	p, _ := NewGreedy(2, 5, 2, false)
	es, err := Run(posts, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 {
		t.Errorf("greedy emitted %d posts for a single coverable burst, want 1", len(es))
	}
}

func TestGreedyZeroTauDecidesImmediately(t *testing.T) {
	p, _ := NewGreedy(1, 2, 0, false)
	es := mustProcess(t, p, mk(1, 0, 0))
	if len(es) != 1 || es[0].EmitAt != 0 {
		t.Fatalf("τ=0 emission = %+v, want immediate", es)
	}
	// Within λ: covered, no emission.
	es = mustProcess(t, p, mk(2, 1, 0))
	if len(es) != 0 {
		t.Fatalf("covered post emitted: %+v", es)
	}
	// Beyond λ: emitted at once.
	es = mustProcess(t, p, mk(3, 5, 0))
	if len(es) != 1 || es[0].Post.ID != 3 {
		t.Fatalf("uncovered post not emitted: %+v", es)
	}
}

func TestGreedyPlusStopsEarly(t *testing.T) {
	// StreamGreedySC+ stops its round once the trigger post is covered, so
	// it can emit fewer (or different) posts per round than StreamGreedySC.
	// Both must still produce valid covers.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(40)
		posts := make([]core.Post, n)
		v := 0.0
		for i := range posts {
			v += rng.Float64() * 2
			labels := []core.Label{core.Label(rng.Intn(2))}
			if rng.Intn(3) == 0 {
				labels = append(labels, core.Label((int(labels[0])+1)%2))
			}
			posts[i] = mk(int64(i), v, labels...)
		}
		for _, plus := range []bool{false, true} {
			p, _ := NewGreedy(2, 3, 5, plus)
			checkStream(t, posts, 2, 3, 5, p)
		}
	}
}

func TestFlushEmitsOutstanding(t *testing.T) {
	for _, mkProc := range []func() Processor{
		func() Processor { p, _ := NewScan(1, 10, 10, false); return p },
		func() Processor { p, _ := NewGreedy(1, 10, 10, false); return p },
	} {
		p := mkProc()
		mustProcess(t, p, mk(1, 0, 0))
		es := p.Flush()
		if len(es) != 1 || es[0].Post.ID != 1 {
			t.Errorf("%s flush = %+v, want the lone pending post", p.Name(), es)
		}
	}
}

func TestConstructorsRejectNegativeParams(t *testing.T) {
	if _, err := NewScan(1, -1, 0, false); err == nil {
		t.Error("NewScan accepted λ<0")
	}
	if _, err := NewScan(1, 1, -1, false); err == nil {
		t.Error("NewScan accepted τ<0")
	}
	if _, err := NewGreedy(1, -1, 0, false); err == nil {
		t.Error("NewGreedy accepted λ<0")
	}
	if _, err := NewInstant(1, math.Nextafter(0, -1)); err == nil {
		t.Error("NewInstant accepted λ<0")
	}
}

func TestEmptyFlush(t *testing.T) {
	for _, p := range allProcessors(t, 3, 1, 1) {
		if es := p.Flush(); len(es) != 0 {
			t.Errorf("%s: flush on empty stream emitted %+v", p.Name(), es)
		}
	}
}

func mustProcess(t *testing.T, p Processor, post core.Post) []Emission {
	t.Helper()
	es, err := p.Process(post)
	if err != nil {
		t.Fatalf("%s.Process: %v", p.Name(), err)
	}
	return es
}

func TestSummarize(t *testing.T) {
	es := []Emission{
		{Post: mk(1, 0, 0), EmitAt: 1},
		{Post: mk(2, 10, 0), EmitAt: 12},
		{Post: mk(3, 20, 0), EmitAt: 23},
		{Post: mk(4, 30, 0), EmitAt: 34},
	}
	s := Summarize(es)
	if s.Count != 4 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.MaxDelay != 4 {
		t.Errorf("MaxDelay = %v", s.MaxDelay)
	}
	if s.MeanDelay != 2.5 {
		t.Errorf("MeanDelay = %v", s.MeanDelay)
	}
	if s.P95Delay != 4 {
		t.Errorf("P95Delay = %v", s.P95Delay)
	}
	zero := Summarize(nil)
	if zero.Count != 0 || zero.MaxDelay != 0 {
		t.Errorf("empty summary = %+v", zero)
	}
	// SummarizeDelays is the same computation over raw delays.
	if d := SummarizeDelays([]float64{1, 2, 3, 4}); d != s {
		t.Errorf("SummarizeDelays = %+v, want %+v", d, s)
	}
	if d := SummarizeDelays(nil); d.Count != 0 || d.P95Delay != 0 {
		t.Errorf("empty SummarizeDelays = %+v", d)
	}
}
