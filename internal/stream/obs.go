package stream

import (
	"sync/atomic"

	"mqdp/internal/obs"
)

// streamObs bundles the processor instruments. A nil pointer is the disabled
// state; processors pay one atomic load and one branch per Process call.
type streamObs struct {
	decisionDelay  *obs.Histogram // event-time EmitAt − Post.Value per emission
	windowMaint    *obs.Histogram // wall time of buffer prune/compact per post
	postsProcessed *obs.Counter
	emissions      *obs.Counter
}

var obsState atomic.Pointer[streamObs]

// SetObs wires the streaming-processor instruments into r; nil disables
// instrumentation. The decision-delay histogram is event-time seconds
// (the paper's reporting delay, bounded by τ), not wall clock.
func SetObs(r *obs.Registry) {
	if r == nil {
		obsState.Store(nil)
		return
	}
	obsState.Store(&streamObs{
		decisionDelay:  r.Histogram("mqdp_stream_decision_delay_seconds", "event-time reporting delay of emitted posts (EmitAt - value)", obs.DelayBuckets),
		windowMaint:    r.Histogram("mqdp_stream_window_maintenance_seconds", "wall time spent pruning/compacting processor buffers per post", obs.TimeBuckets),
		postsProcessed: r.Counter("mqdp_stream_posts_processed_total", "posts fed to streaming processors"),
		emissions:      r.Counter("mqdp_stream_emissions_total", "decisions emitted by streaming processors"),
	})
}

// DecisionDelayExemplar offers one delivered emission's decision delay and
// originating trace as an exemplar on the decision-delay histogram, linking
// the distribution's tail to a retrievable trace. The delay itself is
// already observed by observeDecisions at processor level; this only
// annotates. No-ops when instrumentation is disabled or trace is zero.
func DecisionDelayExemplar(delay float64, trace obs.TraceID) {
	if o := obsState.Load(); o != nil {
		o.decisionDelay.AttachExemplar(delay, trace)
	}
}

// observeDecisions records one decision batch. Safe on a nil receiver.
func (o *streamObs) observeDecisions(es []Emission) {
	if o == nil || len(es) == 0 {
		return
	}
	for i := range es {
		o.decisionDelay.Observe(es[i].EmitAt - es[i].Post.Value)
	}
	o.emissions.Add(int64(len(es)))
}
