package digest

import (
	"bytes"
	"strings"
	"testing"

	"mqdp/internal/core"
)

func buildFixture(t *testing.T) (*core.Instance, *core.Dictionary, []int) {
	t.Helper()
	var dict core.Dictionary
	a, c := dict.Intern("obama"), dict.Intern("economy")
	posts := []core.Post{
		{ID: 1, Value: 60, Labels: []core.Label{a}},
		{ID: 2, Value: 120, Labels: []core.Label{a, c}},
		{ID: 3, Value: 3725, Labels: []core.Label{c}},
	}
	inst, err := core.NewInstance(posts, dict.Len())
	if err != nil {
		t.Fatal(err)
	}
	return inst, &dict, []int{1, 2} // posts 2 and 3
}

func TestBuild(t *testing.T) {
	inst, dict, sel := buildFixture(t)
	texts := map[int64]string{2: "obama economy speech", 3: "markets wobble"}
	d := Build(inst, dict, sel, func(id int64) string { return texts[id] })
	if len(d.Entries) != 2 {
		t.Fatalf("entries = %d", len(d.Entries))
	}
	if d.Entries[0].PostID != 2 || d.Entries[1].PostID != 3 {
		t.Errorf("entry order: %+v", d.Entries)
	}
	if d.TopicCounts["obama"] != 1 || d.TopicCounts["economy"] != 2 {
		t.Errorf("topic counts = %v", d.TopicCounts)
	}
	if d.SpanLo != 120 || d.SpanHi != 3725 {
		t.Errorf("span = [%v, %v]", d.SpanLo, d.SpanHi)
	}
	if d.Entries[0].Text != "obama economy speech" {
		t.Errorf("text = %q", d.Entries[0].Text)
	}
}

func TestBuildNilTextResolver(t *testing.T) {
	inst, dict, sel := buildFixture(t)
	d := Build(inst, dict, sel, nil)
	if d.Entries[0].Text != "" {
		t.Errorf("nil resolver produced text %q", d.Entries[0].Text)
	}
}

func TestWriteText(t *testing.T) {
	inst, dict, sel := buildFixture(t)
	d := Build(inst, dict, sel, func(int64) string {
		return "a rather long text that should be truncated for display"
	})
	var buf bytes.Buffer
	if err := d.WriteText(&buf, Options{MaxTextLen: 10, ValueAsClock: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "00:02:00") { // 120 s
		t.Errorf("clock stamp missing:\n%s", out)
	}
	if !strings.Contains(out, "01:02:05") { // 3725 s
		t.Errorf("hour stamp missing:\n%s", out)
	}
	if !strings.Contains(out, "a rather l…") {
		t.Errorf("truncation missing:\n%s", out)
	}
	if !strings.Contains(out, "economy ×2") {
		t.Errorf("topic summary missing:\n%s", out)
	}
}

func TestWriteTextEmpty(t *testing.T) {
	inst, dict, _ := buildFixture(t)
	d := Build(inst, dict, nil, nil)
	var buf bytes.Buffer
	if err := d.WriteText(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty digest") {
		t.Errorf("empty rendering = %q", buf.String())
	}
}

func TestWriteMarkdown(t *testing.T) {
	inst, dict, sel := buildFixture(t)
	d := Build(inst, dict, sel, func(int64) string { return "cell | with pipe" })
	var buf bytes.Buffer
	if err := d.WriteMarkdown(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "| when | topics | post |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, `cell \| with pipe`) {
		t.Errorf("pipe escaping missing:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("markdown lines = %d, want 4", lines)
	}
}
