// Package digest renders covers and emission feeds into the user-facing
// summaries the paper's applications show (§1: a journalist's topic digest,
// an investor's ticker feed): a chronological timeline of representative
// posts annotated with their topics, plus per-topic counts.
package digest

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mqdp/internal/core"
)

// Entry is one digest line.
type Entry struct {
	PostID int64
	Value  float64
	Topics []string
	Text   string
}

// Digest is a rendered cover.
type Digest struct {
	Entries []Entry
	// TopicCounts maps topic names to how many entries carry them.
	TopicCounts map[string]int
	// Span is the dimension range [lo, hi] the entries cover.
	SpanLo, SpanHi float64
}

// TextFor resolves a post's display text (e.g. from the original tweets);
// return "" when unknown.
type TextFor func(postID int64) string

// Build assembles a digest from an instance and a cover, resolving topic
// names through dict and texts through textFor (which may be nil).
func Build(inst *core.Instance, dict *core.Dictionary, selected []int, textFor TextFor) *Digest {
	d := &Digest{TopicCounts: make(map[string]int)}
	sel := append([]int(nil), selected...)
	sort.Ints(sel)
	for _, i := range sel {
		p := inst.Post(i)
		names := make([]string, len(p.Labels))
		for k, a := range p.Labels {
			names[k] = dict.Name(a)
			d.TopicCounts[names[k]]++
		}
		text := ""
		if textFor != nil {
			text = textFor(p.ID)
		}
		d.Entries = append(d.Entries, Entry{PostID: p.ID, Value: p.Value, Topics: names, Text: text})
	}
	if len(d.Entries) > 0 {
		d.SpanLo = d.Entries[0].Value
		d.SpanHi = d.Entries[len(d.Entries)-1].Value
	}
	return d
}

// Options shape rendering.
type Options struct {
	// MaxTextLen truncates entry texts (0 = no limit).
	MaxTextLen int
	// ValueAsClock renders values as HH:MM:SS offsets (for the time
	// dimension); otherwise values print numerically.
	ValueAsClock bool
}

// WriteText renders the digest as aligned plain text.
func (d *Digest) WriteText(w io.Writer, opts Options) error {
	for _, e := range d.Entries {
		text := e.Text
		if opts.MaxTextLen > 0 && len(text) > opts.MaxTextLen {
			text = text[:opts.MaxTextLen] + "…"
		}
		stamp := fmt.Sprintf("%10.2f", e.Value)
		if opts.ValueAsClock {
			stamp = formatClock(e.Value)
		}
		if _, err := fmt.Fprintf(w, "%s  [%s]  %s\n", stamp, strings.Join(e.Topics, ", "), text); err != nil {
			return err
		}
	}
	if len(d.Entries) == 0 {
		_, err := fmt.Fprintln(w, "(empty digest)")
		return err
	}
	names := make([]string, 0, len(d.TopicCounts))
	for name := range d.TopicCounts {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "\n%d posts", len(d.Entries)); err != nil {
		return err
	}
	for _, name := range names {
		if _, err := fmt.Fprintf(w, " · %s ×%d", name, d.TopicCounts[name]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteMarkdown renders the digest as a markdown table.
func (d *Digest) WriteMarkdown(w io.Writer, opts Options) error {
	if _, err := fmt.Fprintln(w, "| when | topics | post |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|"); err != nil {
		return err
	}
	for _, e := range d.Entries {
		text := strings.ReplaceAll(e.Text, "|", "\\|")
		if opts.MaxTextLen > 0 && len(text) > opts.MaxTextLen {
			text = text[:opts.MaxTextLen] + "…"
		}
		stamp := fmt.Sprintf("%.2f", e.Value)
		if opts.ValueAsClock {
			stamp = formatClock(e.Value)
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s |\n", stamp, strings.Join(e.Topics, ", "), text); err != nil {
			return err
		}
	}
	return nil
}

// formatClock renders seconds-from-start as HH:MM:SS.
func formatClock(seconds float64) string {
	t := time.Duration(seconds * float64(time.Second))
	return fmt.Sprintf("%02d:%02d:%02d", int(t.Hours()), int(t.Minutes())%60, int(t.Seconds())%60)
}
