package spatial_test

import (
	"fmt"

	"mqdp/internal/core"
	"mqdp/internal/spatial"
)

func Example() {
	posts := []spatial.Post{
		{ID: 1, Time: 0, Lat: 40.71, Lon: -74.00, Labels: []core.Label{0}},   // NYC
		{ID: 2, Time: 30, Lat: 40.72, Lon: -74.01, Labels: []core.Label{0}},  // NYC, nearby
		{ID: 3, Time: 30, Lat: 34.05, Lon: -118.24, Labels: []core.Label{0}}, // LA
	}
	in, err := spatial.NewInstance(posts, 1)
	if err != nil {
		panic(err)
	}
	cover, err := in.GreedySC(spatial.Thresholds{TimeSec: 120, DistKm: 50})
	if err != nil {
		panic(err)
	}
	fmt.Println(cover.Size(), "representatives: one per metro")
	// Output:
	// 2 representatives: one per metro
}
