// Package spatial implements the paper's first future-work direction (§9):
// extending multi-query diversification to the spatiotemporal space, where a
// selected post covers another only if it is close in *both* publication
// time and geographic location. Coverage of (post, label) pairs needs both
// |t_i − t_j| ≤ λt and haversine(P_i, P_j) ≤ λd, with the multi-query rule
// unchanged: every post must be covered on every one of its labels.
//
// The 1-D end-pattern DP does not carry over (there is no total order to
// scan), so the package provides the greedy set-cover solver — whose ln(·)
// guarantee is dimension-independent — a per-label time-scan heuristic with
// geographic validity checks, and an exact branch-and-bound for tiny
// instances.
package spatial

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"mqdp/internal/core"
)

// Post is a geotagged microblogging post.
type Post struct {
	ID   int64
	Time float64 // seconds
	Lat  float64 // degrees, [-90, 90]
	Lon  float64 // degrees, [-180, 180]
	// Labels lists the queries this post matches.
	Labels []core.Label
}

// EarthRadiusKm is the mean Earth radius used by Haversine.
const EarthRadiusKm = 6371.0

// Haversine returns the great-circle distance between two points in km.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const rad = math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Instance is a prepared spatiotemporal MQDP input: posts sorted by time
// with per-label occurrence lists.
type Instance struct {
	posts     []Post
	numLabels int
	byLabel   [][]int32
}

// ErrBadPost reports invalid input.
var ErrBadPost = errors.New("spatial: invalid post")

// NewInstance validates, copies and time-sorts posts.
func NewInstance(posts []Post, numLabels int) (*Instance, error) {
	if numLabels < 0 {
		return nil, fmt.Errorf("%w: negative label count", ErrBadPost)
	}
	sorted := make([]Post, len(posts))
	copy(sorted, posts)
	for i := range sorted {
		p := &sorted[i]
		if math.IsNaN(p.Time) || math.IsNaN(p.Lat) || math.IsNaN(p.Lon) {
			return nil, fmt.Errorf("%w: post %d has NaN coordinates", ErrBadPost, p.ID)
		}
		if p.Lat < -90 || p.Lat > 90 || p.Lon < -180 || p.Lon > 180 {
			return nil, fmt.Errorf("%w: post %d at (%v, %v)", ErrBadPost, p.ID, p.Lat, p.Lon)
		}
		labels := append([]core.Label(nil), p.Labels...)
		sort.Slice(labels, func(x, y int) bool { return labels[x] < labels[y] })
		dedup := labels[:0]
		for j, a := range labels {
			if a < 0 || int(a) >= numLabels {
				return nil, fmt.Errorf("%w: post %d label %d out of range", ErrBadPost, p.ID, a)
			}
			if j == 0 || labels[j-1] != a {
				dedup = append(dedup, a)
			}
		}
		p.Labels = dedup
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].ID < sorted[j].ID
	})
	byLabel := make([][]int32, numLabels)
	for i, p := range sorted {
		for _, a := range p.Labels {
			byLabel[a] = append(byLabel[a], int32(i))
		}
	}
	return &Instance{posts: sorted, numLabels: numLabels, byLabel: byLabel}, nil
}

// Len reports the number of posts.
func (in *Instance) Len() int { return len(in.posts) }

// Post returns the i-th post in time order.
func (in *Instance) Post(i int) Post { return in.posts[i] }

// Thresholds couple the two coverage radii.
type Thresholds struct {
	// TimeSec is λt, the time radius in seconds.
	TimeSec float64
	// DistKm is λd, the geographic radius in km.
	DistKm float64
}

func (th Thresholds) validate() error {
	if th.TimeSec < 0 || th.DistKm < 0 {
		return fmt.Errorf("spatial: negative thresholds %+v", th)
	}
	return nil
}

// Covers reports whether post i covers label a of post j: shared label (not
// rechecked), time within λt and location within λd.
func (in *Instance) Covers(th Thresholds, i, j int) bool {
	pi, pj := &in.posts[i], &in.posts[j]
	if math.Abs(pi.Time-pj.Time) > th.TimeSec {
		return false
	}
	return Haversine(pi.Lat, pi.Lon, pj.Lat, pj.Lon) <= th.DistKm
}

// timeWindow returns positions of LP(a) within [lo, hi] in time.
func (in *Instance) timeWindow(a core.Label, lo, hi float64) (int, int) {
	lp := in.byLabel[a]
	from := sort.Search(len(lp), func(k int) bool { return in.posts[lp[k]].Time >= lo })
	to := sort.Search(len(lp), func(k int) bool { return in.posts[lp[k]].Time > hi })
	return from, to
}

// VerifyCover independently re-checks that selected covers the instance.
func (in *Instance) VerifyCover(th Thresholds, selected []int) error {
	if err := th.validate(); err != nil {
		return err
	}
	for _, i := range selected {
		if i < 0 || i >= len(in.posts) {
			return fmt.Errorf("spatial: selected index %d out of range", i)
		}
	}
	for a := 0; a < in.numLabels; a++ {
		lp := in.byLabel[a]
		covered := make([]bool, len(lp))
		for _, i := range selected {
			if !hasLabel(in.posts[i].Labels, core.Label(a)) {
				continue
			}
			from, to := in.timeWindow(core.Label(a), in.posts[i].Time-th.TimeSec, in.posts[i].Time+th.TimeSec)
			for k := from; k < to; k++ {
				if !covered[k] && in.Covers(th, i, int(lp[k])) {
					covered[k] = true
				}
			}
		}
		for k, ok := range covered {
			if !ok {
				return fmt.Errorf("spatial: post %d uncovered on label %d", in.posts[lp[k]].ID, a)
			}
		}
	}
	return nil
}

// Cover is a solver result.
type Cover struct {
	Selected  []int
	Algorithm string
	Elapsed   time.Duration
	Optimal   bool
}

// Size returns the cover cardinality.
func (c *Cover) Size() int { return len(c.Selected) }

func hasLabel(labels []core.Label, a core.Label) bool {
	for _, l := range labels {
		if l == a {
			return true
		}
		if l > a {
			return false
		}
	}
	return false
}
