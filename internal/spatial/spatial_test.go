package spatial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mqdp/internal/core"
)

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		name                   string
		lat1, lon1, lat2, lon2 float64
		wantKm, tol            float64
	}{
		{"same point", 40, -75, 40, -75, 0, 0.001},
		{"NYC to LA", 40.7128, -74.0060, 34.0522, -118.2437, 3936, 40},
		{"London to Paris", 51.5074, -0.1278, 48.8566, 2.3522, 344, 5},
		{"equator degree", 0, 0, 0, 1, 111.2, 1},
		{"antipodal-ish", 0, 0, 0, 180, math.Pi * EarthRadiusKm, 1},
	}
	for _, tc := range cases {
		if got := Haversine(tc.lat1, tc.lon1, tc.lat2, tc.lon2); math.Abs(got-tc.wantKm) > tc.tol {
			t.Errorf("%s: %v km, want %v ± %v", tc.name, got, tc.wantKm, tc.tol)
		}
	}
}

func TestHaversineSymmetric(t *testing.T) {
	check := func(lat1, lon1, lat2, lon2 float64) bool {
		clamp := func(v, lo, hi float64) float64 { return math.Mod(math.Abs(v), hi-lo) + lo }
		a1, o1 := clamp(lat1, -90, 90), clamp(lon1, -180, 180)
		a2, o2 := clamp(lat2, -90, 90), clamp(lon2, -180, 180)
		d1 := Haversine(a1, o1, a2, o2)
		d2 := Haversine(a2, o2, a1, o1)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// mkPost builds a geotagged post.
func mkPost(id int64, t, lat, lon float64, labels ...core.Label) Post {
	return Post{ID: id, Time: t, Lat: lat, Lon: lon, Labels: labels}
}

func TestNewInstanceValidation(t *testing.T) {
	bad := []Post{
		mkPost(1, math.NaN(), 0, 0, 0),
		mkPost(1, 0, 91, 0, 0),
		mkPost(1, 0, 0, 181, 0),
		mkPost(1, 0, 0, 0, 5),
	}
	for i, p := range bad {
		if _, err := NewInstance([]Post{p}, 1); err == nil {
			t.Errorf("bad post %d accepted", i)
		}
	}
}

func TestCoversNeedsBothRadii(t *testing.T) {
	in, err := NewInstance([]Post{
		mkPost(1, 0, 40.0, -75.0, 0),
		mkPost(2, 10, 40.0, -75.01, 0),  // ~0.85 km away, 10s later
		mkPost(3, 10, 40.0, -80.0, 0),   // ~425 km away, 10s later
		mkPost(4, 5000, 40.0, -75.0, 0), // same place, 5000s later
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	th := Thresholds{TimeSec: 60, DistKm: 5}
	if !in.Covers(th, 0, 1) {
		t.Error("nearby-in-both post not covered")
	}
	if in.Covers(th, 0, 2) {
		t.Error("geographically distant post covered")
	}
	if in.Covers(th, 0, 3) {
		t.Error("temporally distant post covered")
	}
}

func TestVerifyAndSolversOnCityScenario(t *testing.T) {
	// Two cities, one label: a selection in city A cannot cover city B even
	// at the same instant, so any cover needs posts from both cities.
	var posts []Post
	id := int64(0)
	for i := 0; i < 6; i++ {
		posts = append(posts, mkPost(id, float64(i*30), 40.71, -74.00, 0)) // NYC
		id++
	}
	for i := 0; i < 6; i++ {
		posts = append(posts, mkPost(id, float64(i*30), 34.05, -118.24, 0)) // LA
		id++
	}
	in, err := NewInstance(posts, 1)
	if err != nil {
		t.Fatal(err)
	}
	th := Thresholds{TimeSec: 100, DistKm: 50}
	greedy, err := in.GreedySC(th)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := in.TimeScan(th)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := in.Exhaustive(th)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Cover{greedy, scan, exact} {
		if err := in.VerifyCover(th, c.Selected); err != nil {
			t.Fatalf("%s invalid: %v", c.Algorithm, err)
		}
	}
	// 6 posts per city spanning 150s with 100s radius → 1 per city suffices
	// temporally, so the optimum is 2 (one per city).
	if exact.Size() != 2 {
		t.Errorf("optimal = %d, want 2 (one per city)", exact.Size())
	}
	if greedy.Size() < exact.Size() || scan.Size() < exact.Size() {
		t.Error("approximation beat the optimum")
	}
	// With an intercontinental radius, one post covers everything.
	wide := Thresholds{TimeSec: 1000, DistKm: 10000}
	exactWide, err := in.Exhaustive(wide)
	if err != nil {
		t.Fatal(err)
	}
	if exactWide.Size() != 1 {
		t.Errorf("wide-radius optimal = %d, want 1", exactWide.Size())
	}
}

func TestSpatialSolversRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(20)
		L := 1 + rng.Intn(3)
		posts := make([]Post, n)
		for i := range posts {
			labels := []core.Label{core.Label(rng.Intn(L))}
			if rng.Intn(3) == 0 {
				labels = append(labels, core.Label(rng.Intn(L)))
			}
			posts[i] = mkPost(int64(i),
				float64(rng.Intn(300)),
				35+rng.Float64()*10,
				-120+rng.Float64()*40,
				labels...)
		}
		in, err := NewInstance(posts, L)
		if err != nil {
			t.Fatal(err)
		}
		th := Thresholds{TimeSec: float64(10 + rng.Intn(100)), DistKm: 100 + rng.Float64()*1000}
		exact, err := in.Exhaustive(th)
		if err != nil {
			t.Fatal(err)
		}
		for _, solve := range []func(Thresholds) (*Cover, error){in.GreedySC, in.TimeScan} {
			c, err := solve(th)
			if err != nil {
				t.Fatal(err)
			}
			if err := in.VerifyCover(th, c.Selected); err != nil {
				t.Fatalf("trial %d: %s invalid: %v", trial, c.Algorithm, err)
			}
			if c.Size() < exact.Size() {
				t.Fatalf("trial %d: %s=%d < optimal %d", trial, c.Algorithm, c.Size(), exact.Size())
			}
		}
	}
}

func TestThresholdValidation(t *testing.T) {
	in, err := NewInstance([]Post{mkPost(1, 0, 0, 0, 0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.GreedySC(Thresholds{TimeSec: -1, DistKm: 1}); err == nil {
		t.Error("negative time radius accepted")
	}
	if _, err := in.TimeScan(Thresholds{TimeSec: 1, DistKm: -1}); err == nil {
		t.Error("negative distance radius accepted")
	}
	if err := in.VerifyCover(Thresholds{TimeSec: -1}, nil); err == nil {
		t.Error("VerifyCover accepted negative thresholds")
	}
}

func TestExhaustiveRejectsLarge(t *testing.T) {
	posts := make([]Post, 49)
	for i := range posts {
		posts[i] = mkPost(int64(i), float64(i), 0, 0, 0)
	}
	in, err := NewInstance(posts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Exhaustive(Thresholds{TimeSec: 1, DistKm: 1}); err == nil {
		t.Error("oversized exhaustive accepted")
	}
}
