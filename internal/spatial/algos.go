package spatial

import (
	"fmt"
	"sort"
	"time"

	"mqdp/internal/core"
)

// GreedySC is the spatiotemporal greedy set cover: repeatedly select the
// post covering the most uncovered (post, label) pairs, where coverage
// requires both radii. Candidate evaluation filters by the time window first
// (cheap, sorted) and checks distance only inside it, so the cost is
// O(rounds · pairs-in-window). The ln(|P||L|) guarantee carries over
// unchanged from set cover.
func (in *Instance) GreedySC(th Thresholds) (*Cover, error) {
	if err := th.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	// uncovered[a][k] over LP(a) positions.
	uncovered := make([][]bool, in.numLabels)
	remaining := 0
	for a := 0; a < in.numLabels; a++ {
		uncovered[a] = make([]bool, len(in.byLabel[a]))
		for k := range uncovered[a] {
			uncovered[a][k] = true
		}
		remaining += len(in.byLabel[a])
	}
	gain := func(i int) int {
		total := 0
		for _, a := range in.posts[i].Labels {
			from, to := in.timeWindow(a, in.posts[i].Time-th.TimeSec, in.posts[i].Time+th.TimeSec)
			lp := in.byLabel[a]
			for k := from; k < to; k++ {
				if uncovered[a][k] && in.Covers(th, i, int(lp[k])) {
					total++
				}
			}
		}
		return total
	}
	var sel []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for i := range in.posts {
			if g := gain(i); g > bestGain {
				best, bestGain = i, g
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("spatial: uncovered pairs remain but no post has positive gain")
		}
		for _, a := range in.posts[best].Labels {
			from, to := in.timeWindow(a, in.posts[best].Time-th.TimeSec, in.posts[best].Time+th.TimeSec)
			lp := in.byLabel[a]
			for k := from; k < to; k++ {
				if uncovered[a][k] && in.Covers(th, best, int(lp[k])) {
					uncovered[a][k] = false
					remaining--
				}
			}
		}
		sel = append(sel, best)
	}
	sort.Ints(sel)
	return &Cover{Selected: sel, Algorithm: "Spatial-GreedySC", Elapsed: time.Since(start)}, nil
}

// TimeScan generalizes Algorithm Scan: per label, walk the time-sorted list
// and, at each leftmost uncovered post, select the candidate in its time
// window that covers it (both radii) and whose time reach extends furthest;
// repeat until the label is fully covered. Unlike the 1-D case a selection
// does not cover a contiguous time range (distance may exclude interior
// posts), so the scan tracks per-position coverage explicitly. It stays a
// factor-s approximation relative to per-label optima only in time-dominant
// workloads; it is the cheap baseline to GreedySC.
func (in *Instance) TimeScan(th Thresholds) (*Cover, error) {
	if err := th.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	selected := make([]bool, len(in.posts))
	for a := 0; a < in.numLabels; a++ {
		lp := in.byLabel[a]
		covered := make([]bool, len(lp))
		for next := 0; next < len(lp); next++ {
			if covered[next] {
				continue
			}
			left := int(lp[next])
			from, to := in.timeWindow(core.Label(a), in.posts[left].Time-th.TimeSec, in.posts[left].Time+th.TimeSec)
			best, bestReach := -1, 0.0
			for k := from; k < to; k++ {
				cand := int(lp[k])
				if !in.Covers(th, cand, left) {
					continue
				}
				if reach := in.posts[cand].Time + th.TimeSec; best == -1 || reach > bestReach {
					best, bestReach = cand, reach
				}
			}
			if best == -1 {
				best = left // a post always covers itself
			}
			selected[best] = true
			// Mark everything the pick covers for this label.
			bFrom, bTo := in.timeWindow(core.Label(a), in.posts[best].Time-th.TimeSec, in.posts[best].Time+th.TimeSec)
			for k := bFrom; k < bTo; k++ {
				if !covered[k] && in.Covers(th, best, int(lp[k])) {
					covered[k] = true
				}
			}
		}
	}
	var sel []int
	for i, ok := range selected {
		if ok {
			sel = append(sel, i)
		}
	}
	return &Cover{Selected: sel, Algorithm: "Spatial-TimeScan", Elapsed: time.Since(start)}, nil
}

// Exhaustive solves tiny instances exactly by branch-and-bound on the
// set-cover structure, mirroring core.Exhaustive.
func (in *Instance) Exhaustive(th Thresholds) (*Cover, error) {
	if err := th.validate(); err != nil {
		return nil, err
	}
	if in.Len() > 48 {
		return nil, fmt.Errorf("spatial: %d posts too many for exhaustive search", in.Len())
	}
	start := time.Now()
	type pair struct {
		post  int
		label core.Label
	}
	var pairs []pair
	for i := range in.posts {
		for _, a := range in.posts[i].Labels {
			pairs = append(pairs, pair{i, a})
		}
	}
	coverers := make([][]int, len(pairs))
	coversOf := make([][]int, in.Len())
	for u, pr := range pairs {
		from, to := in.timeWindow(pr.label, in.posts[pr.post].Time-th.TimeSec, in.posts[pr.post].Time+th.TimeSec)
		lp := in.byLabel[pr.label]
		for k := from; k < to; k++ {
			i := int(lp[k])
			if in.Covers(th, i, pr.post) {
				coverers[u] = append(coverers[u], i)
				coversOf[i] = append(coversOf[i], u)
			}
		}
	}
	ub, err := in.GreedySC(th)
	if err != nil {
		return nil, err
	}
	best := append([]int(nil), ub.Selected...)
	bestSize := len(best)
	maxSet := 1
	for i := range coversOf {
		if len(coversOf[i]) > maxSet {
			maxSet = len(coversOf[i])
		}
	}
	uncoveredCnt := len(pairs)
	coverCount := make([]int, len(pairs))
	inSel := make([]bool, in.Len())
	var sel []int
	var search func()
	search = func() {
		if uncoveredCnt == 0 {
			if len(sel) < bestSize {
				bestSize = len(sel)
				best = append([]int(nil), sel...)
			}
			return
		}
		if len(sel)+(uncoveredCnt+maxSet-1)/maxSet >= bestSize {
			return
		}
		branch, opts := -1, 0
		for u := range pairs {
			if coverCount[u] > 0 {
				continue
			}
			n := 0
			for _, i := range coverers[u] {
				if !inSel[i] {
					n++
				}
			}
			if branch == -1 || n < opts {
				branch, opts = u, n
			}
			if n <= 1 {
				break
			}
		}
		if opts == 0 {
			return
		}
		for _, i := range coverers[branch] {
			if inSel[i] {
				continue
			}
			inSel[i] = true
			sel = append(sel, i)
			for _, u := range coversOf[i] {
				if coverCount[u] == 0 {
					uncoveredCnt--
				}
				coverCount[u]++
			}
			search()
			for _, u := range coversOf[i] {
				coverCount[u]--
				if coverCount[u] == 0 {
					uncoveredCnt++
				}
			}
			sel = sel[:len(sel)-1]
			inSel[i] = false
		}
	}
	search()
	sort.Ints(best)
	return &Cover{Selected: best, Algorithm: "Spatial-Exhaustive", Elapsed: time.Since(start), Optimal: true}, nil
}
