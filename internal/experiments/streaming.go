package experiments

import (
	"fmt"
	"io"
	"time"

	"mqdp/internal/stream"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9: streaming relative error vs λ for τ ∈ {5,10,15}s (|L|=2, 10-min interval)",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: streaming relative error vs τ for λ ∈ {10,15,20}s (|L|=2, 10-min interval)",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: streaming solution sizes vs overlap rate (λ=10s, τ=5s, |L|=2)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: streaming solution sizes on 1 day vs |L| (τ=30s, λ = 10min and 30min)",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Figure 14: StreamMQDP execution time per post vs λ (τ=300s)",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Figure 15: StreamMQDP execution time per post vs τ (λ=300s)",
		Run:   runFig15,
	})
}

func runFig9(w io.Writer, sc Scale) error {
	lambdas := []float64{5, 10, 15, 20, 25, 30}
	taus := []float64{5, 10, 15}
	if sc == Smoke {
		lambdas = []float64{5, 15}
		taus = []float64{5}
	}
	in := interval(sc, 2, 1.4, 900)
	for _, tau := range taus {
		if _, err := fmt.Fprintf(w, "τ = %.0f seconds\n", tau); err != nil {
			return err
		}
		tb := newTable("lambda", "optSize", "errStreamScan", "errStreamScan+", "errStreamGreedySC", "errStreamGreedySC+")
		for _, lambda := range lambdas {
			opt, err := in.OPT(lambda, optBudget())
			if err != nil {
				return fmt.Errorf("fig9 λ=%v: %w", lambda, err)
			}
			procs, err := streamingQuartet(2, lambda, tau)
			if err != nil {
				return err
			}
			row := []any{lambda, opt.Size()}
			for _, p := range procs {
				n, err := runStreaming(in, p)
				if err != nil {
					return err
				}
				row = append(row, relErr(n, opt.Size()))
			}
			tb.add(row...)
		}
		if err := tb.write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func runFig10(w io.Writer, sc Scale) error {
	lambdas := []float64{10, 15, 20}
	taus := []float64{1, 3, 5, 8, 10, 12, 15, 18, 20, 25, 30, 35, 40, 45, 50, 60}
	if sc == Smoke {
		lambdas = []float64{10}
		taus = []float64{5, 10, 25}
	}
	in := interval(sc, 2, 1.4, 1000)
	for _, lambda := range lambdas {
		opt, err := in.OPT(lambda, optBudget())
		if err != nil {
			return fmt.Errorf("fig10 λ=%v: %w", lambda, err)
		}
		if _, err := fmt.Fprintf(w, "λ = %.0f seconds (opt=%d)\n", lambda, opt.Size()); err != nil {
			return err
		}
		tb := newTable("tau", "errStreamScan", "errStreamScan+", "errStreamGreedySC", "errStreamGreedySC+")
		for _, tau := range taus {
			procs, err := streamingQuartet(2, lambda, tau)
			if err != nil {
				return err
			}
			row := []any{tau}
			for _, p := range procs {
				n, err := runStreaming(in, p)
				if err != nil {
					return err
				}
				row = append(row, relErr(n, opt.Size()))
			}
			tb.add(row...)
		}
		if err := tb.write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func runFig11(w io.Writer, sc Scale) error {
	overlaps := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	if sc == Smoke {
		overlaps = []float64{1.0, 1.8}
	}
	lambda, tau := 10.0, 5.0
	tb := newTable("overlap", "optSize", "streamScan", "streamScan+", "streamGreedySC", "streamGreedySC+", "instant")
	for i, ov := range overlaps {
		in := interval(sc, 2, ov, 1100+int64(i))
		opt, err := in.OPT(lambda, optBudget())
		if err != nil {
			return fmt.Errorf("fig11 overlap=%v: %w", ov, err)
		}
		procs, err := streamingQuartet(2, lambda, tau)
		if err != nil {
			return err
		}
		instant, err := stream.NewInstant(2, lambda)
		if err != nil {
			return err
		}
		procs = append(procs, instant)
		row := []any{in.OverlapRate(), opt.Size()}
		for _, p := range procs {
			n, err := runStreaming(in, p)
			if err != nil {
				return err
			}
			row = append(row, n)
		}
		tb.add(row...)
	}
	return tb.write(w)
}

func runFig12(w io.Writer, sc Scale) error {
	labelCounts := []int{2, 5, 10, 20}
	if sc == Smoke {
		labelCounts = []int{2, 5}
	}
	tau := 30.0
	for _, lambdaMin := range []float64{10, 30} {
		lambda := lambdaMin * 60
		if _, err := fmt.Fprintf(w, "λ = %.0f minutes, τ = %.0fs\n", lambdaMin, tau); err != nil {
			return err
		}
		tb := newTable("|L|", "posts", "streamScan", "streamScan+", "streamGreedySC", "streamGreedySC+")
		for _, L := range labelCounts {
			in := day(sc, L, 1200+int64(L))
			procs, err := streamingQuartet(L, lambda, tau)
			if err != nil {
				return err
			}
			row := []any{L, in.Len()}
			for _, p := range procs {
				n, err := runStreaming(in, p)
				if err != nil {
					return err
				}
				row = append(row, n)
			}
			tb.add(row...)
		}
		if err := tb.write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func runFig14(w io.Writer, sc Scale) error {
	lambdas := []float64{10, 60, 300, 600, 1800}
	if sc == Smoke {
		lambdas = []float64{60, 600}
	}
	return streamTiming(w, sc, "lambda(s)", lambdas, func(L int, x float64) (float64, float64) {
		return x, 300 // λ = x, τ = 300s
	})
}

func runFig15(w io.Writer, sc Scale) error {
	taus := []float64{10, 60, 300, 600, 1800}
	if sc == Smoke {
		taus = []float64{60, 600}
	}
	return streamTiming(w, sc, "tau(s)", taus, func(L int, x float64) (float64, float64) {
		return 300, x // λ = 300s, τ = x
	})
}

// streamTiming measures per-post processing time of the streaming quartet
// over the day-scale stream for each |L| and sweep value.
func streamTiming(w io.Writer, sc Scale, xName string, xs []float64, params func(L int, x float64) (lambda, tau float64)) error {
	for _, L := range labelSweep(sc) {
		in := day(sc, L, 1500+int64(L))
		if _, err := fmt.Fprintf(w, "|L| = %d (%d posts)\n", L, in.Len()); err != nil {
			return err
		}
		tb := newTable(xName, "streamScan ns/post", "streamScan+ ns/post", "streamGreedySC ns/post", "streamGreedySC+ ns/post")
		for _, x := range xs {
			lambda, tau := params(L, x)
			procs, err := streamingQuartet(L, lambda, tau)
			if err != nil {
				return err
			}
			row := []any{x}
			for _, p := range procs {
				start := time.Now()
				if _, err := runStreaming(in, p); err != nil {
					return err
				}
				row = append(row, perPost(time.Since(start), in.Len()))
			}
			tb.add(row...)
		}
		if err := tb.write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
