package experiments

import (
	"fmt"
	"io"
	"time"

	"mqdp/internal/core"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6: relative errors and solution sizes vs post overlap rate (|L|=3, λ=5s, 10-min interval)",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7: relative solution size error vs λ (|L|=2, 10-min interval)",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: solution sizes on 1 day of posts vs |L| (λ = 10min and 30min)",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Figure 13: MQDP execution time per post vs λ (|L| = 2, 5, 20)",
		Run:   runFig13,
	})
}

// fig6 sweeps the generator's overlap knob; each setting is one "label set"
// scatter point of Figures 6a-6d.
func runFig6(w io.Writer, sc Scale) error {
	overlaps := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6}
	seedsPer := 3
	if sc == Smoke {
		overlaps = []float64{1.0, 1.6, 2.2}
		seedsPer = 1
	}
	tb := newTable("overlap", "optSize", "errScan", "errScan+", "errGreedySC", "scan", "scan+", "greedy")
	for _, ov := range overlaps {
		for s := 0; s < seedsPer; s++ {
			in := interval(sc, 3, ov, 600+int64(s))
			lambda := 5.0
			opt, err := in.OPT(lambda, optBudget())
			if err != nil {
				return fmt.Errorf("fig6 overlap %v: %w", ov, err)
			}
			lm := core.FixedLambda(lambda)
			scan := in.Scan(lm)
			scanPlus := in.ScanPlus(lm, core.OrderByID)
			greedy := in.GreedySC(lm)
			tb.add(in.OverlapRate(), opt.Size(),
				relErr(scan.Size(), opt.Size()),
				relErr(scanPlus.Size(), opt.Size()),
				relErr(greedy.Size(), opt.Size()),
				scan.Size(), scanPlus.Size(), greedy.Size())
		}
	}
	return tb.write(w)
}

func runFig7(w io.Writer, sc Scale) error {
	lambdas := []float64{5, 10, 15, 20, 25, 30}
	if sc == Smoke {
		lambdas = []float64{5, 15}
	}
	in := interval(sc, 2, 1.4, 700)
	tb := newTable("lambda", "optSize", "errScan", "errScan+", "errGreedySC")
	for _, lambda := range lambdas {
		opt, err := in.OPT(lambda, optBudget())
		if err != nil {
			return fmt.Errorf("fig7 λ=%v: %w", lambda, err)
		}
		lm := core.FixedLambda(lambda)
		tb.add(lambda, opt.Size(),
			relErr(in.Scan(lm).Size(), opt.Size()),
			relErr(in.ScanPlus(lm, core.OrderByID).Size(), opt.Size()),
			relErr(in.GreedySC(lm).Size(), opt.Size()))
	}
	return tb.write(w)
}

func runFig8(w io.Writer, sc Scale) error {
	labelCounts := []int{2, 5, 10, 20}
	if sc == Smoke {
		labelCounts = []int{2, 5}
	}
	for _, lambdaMin := range []float64{10, 30} {
		lambda := lambdaMin * 60
		if _, err := fmt.Fprintf(w, "λ = %.0f minutes\n", lambdaMin); err != nil {
			return err
		}
		tb := newTable("|L|", "posts", "scan", "scan+", "greedySC")
		for _, L := range labelCounts {
			in := day(sc, L, 800+int64(L))
			lm := core.FixedLambda(lambda)
			tb.add(L, in.Len(),
				in.Scan(lm).Size(),
				in.ScanPlus(lm, core.OrderByID).Size(),
				in.GreedySC(lm).Size())
		}
		if err := tb.write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func runFig13(w io.Writer, sc Scale) error {
	lambdas := []float64{10, 60, 300, 600, 1800}
	if sc == Smoke {
		lambdas = []float64{60, 600}
	}
	for _, L := range labelSweep(sc) {
		in := day(sc, L, 1300+int64(L))
		if _, err := fmt.Fprintf(w, "|L| = %d (%d posts)\n", L, in.Len()); err != nil {
			return err
		}
		tb := newTable("lambda(s)", "scan ns/post", "scan+ ns/post", "greedySC ns/post")
		for _, lambda := range lambdas {
			lm := core.FixedLambda(lambda)
			scan := in.Scan(lm)
			scanPlus := in.ScanPlus(lm, core.OrderByID)
			greedy := in.GreedySC(lm)
			tb.add(lambda,
				perPost(scan.Elapsed, in.Len()),
				perPost(scanPlus.Elapsed, in.Len()),
				perPost(greedy.Elapsed, in.Len()))
		}
		if err := tb.write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "note: greedySC here is the lazy-heap implementation, whose cost is flat in λ;\n"+
		"the paper's rescan-all loop (faster at large λ, far slower overall) is measured in ablation-greedy.")
	return err
}

func labelSweep(sc Scale) []int {
	if sc == Smoke {
		return []int{2, 5}
	}
	return []int{2, 5, 20}
}

func perPost(d time.Duration, posts int) float64 {
	if posts == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(posts)
}
