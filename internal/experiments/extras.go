package experiments

import (
	"fmt"
	"io"
	"time"

	"mqdp/internal/core"
	"mqdp/internal/sat"
	"mqdp/internal/simhash"
	"mqdp/internal/synth"
)

func init() {
	register(Experiment{
		ID:    "hardness",
		Title: "§3: CNF→MQDP reduction demo (Lemma 1 forward direction + published-proof counterexample)",
		Run:   runHardness,
	})
	register(Experiment{
		ID:    "prop",
		Title: "§6: proportional diversity via variable λ — representativeness on a skewed stream",
		Run:   runProp,
	})
	register(Experiment{
		ID:    "ablation-scanplus",
		Title: "Ablation: Scan+ label-ordering effect on solution size",
		Run:   runAblationScanPlus,
	})
	register(Experiment{
		ID:    "ablation-dedup",
		Title: "Ablation: SimHash near-duplicate elimination ahead of diversification",
		Run:   runAblationDedup,
	})
	register(Experiment{
		ID:    "ablation-greedy",
		Title: "Ablation: lazy-heap GreedySC vs the paper's rescan-all implementation (§7.3 discussion)",
		Run:   runAblationGreedy,
	})
}

func runHardness(w io.Writer, sc Scale) error {
	formulas := []*sat.Formula{
		{NumVars: 1, Clauses: []sat.Clause{{1}}},
		{NumVars: 2, Clauses: []sat.Clause{{1, 2}, {-1, 2}}},
		{NumVars: 2, Clauses: []sat.Clause{{1}, {-1}}},
		{NumVars: 3, Clauses: []sat.Clause{{1, -2}, {2, 3}, {-1, -3}}},
	}
	tb := newTable("formula", "sat", "posts", "labels", "budget n(2m+3)", "constructed cover", "greedySC")
	for _, f := range formulas {
		assign, satisfiable := sat.Solve(f)
		r, err := sat.Reduce(f)
		if err != nil {
			return err
		}
		in, err := r.Instance()
		if err != nil {
			return err
		}
		constructed := "-"
		if satisfiable {
			ids, err := r.CoverFromAssignment(assign)
			if err != nil {
				return err
			}
			constructed = fmt.Sprint(len(ids))
		}
		greedy := in.GreedySC(core.FixedLambda(r.Lambda))
		tb.add(f.String(), satisfiable, len(r.Posts), r.NumLabels, r.Budget, constructed, greedy.Size())
	}
	if err := tb.write(w); err != nil {
		return err
	}
	// The documented counterexample to the published (⇐) proof.
	f := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1}, {-1}}}
	r, err := sat.Reduce(f)
	if err != nil {
		return err
	}
	in, err := r.Instance()
	if err != nil {
		return err
	}
	exact, err := in.Exhaustive(core.FixedLambda(r.Lambda))
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nreproduction finding: %s is UNSAT, budget n(2m+3)=%d, but the exact minimum cover is %d\n"+
		"(boundary posts break the published proof's even-positions rigidity claim; see internal/sat).\n",
		f, r.Budget, exact.Size())
	return err
}

func runProp(w io.Writer, sc Scale) error {
	// A skewed single-label stream: a dense region (4 posts/unit) and a
	// sparse region (0.1 posts/unit). §6's Equation 2 should allocate the
	// result roughly proportionally, where fixed λ over-represents the
	// sparse region.
	dense, sparse := 2000, 50
	if sc == Smoke {
		dense, sparse = 400, 10
	}
	rng := newSeededRand(301)
	var posts []core.Post
	id := int64(0)
	for i := 0; i < dense; i++ {
		posts = append(posts, core.Post{ID: id, Value: rng.Float64() * float64(dense) / 4, Labels: []core.Label{0}})
		id++
	}
	sparseStart := float64(dense) / 4
	for i := 0; i < sparse; i++ {
		posts = append(posts, core.Post{ID: id, Value: sparseStart + rng.Float64()*float64(sparse)*10, Labels: []core.Label{0}})
		id++
	}
	in, err := core.NewInstance(posts, 1)
	if err != nil {
		return err
	}
	lambda0 := 10.0
	pl, err := core.NewProportionalLambda(in, lambda0)
	if err != nil {
		return err
	}
	count := func(c *core.Cover) (denseSel, sparseSel int) {
		for _, i := range c.Selected {
			if in.Post(i).Value < sparseStart {
				denseSel++
			} else {
				sparseSel++
			}
		}
		return
	}
	fixed := in.Scan(core.FixedLambda(lambda0))
	prop := in.Scan(pl)
	fd, fs := count(fixed)
	pd, ps := count(prop)
	tb := newTable("model", "selected", "dense region", "sparse region", "dense share")
	tb.add("input", len(posts), dense, sparse, float64(dense)/float64(len(posts)))
	tb.add("fixed λ", fixed.Size(), fd, fs, share(fd, fixed.Size()))
	tb.add("proportional λ (Eq. 2)", prop.Size(), pd, ps, share(pd, prop.Size()))
	return tb.write(w)
}

func share(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

func runAblationScanPlus(w io.Writer, sc Scale) error {
	tb := newTable("|L|", "thinning", "scan", "scan+ byID", "scan+ freq desc", "scan+ freq asc", "greedySC")
	for _, L := range labelSweep(sc) {
		in := day(sc, L, 1600+int64(L))
		lambda := 600.0
		lm := core.FixedLambda(lambda)
		tb.add(L,
			in.BucketThinning(lambda).Size(),
			in.Scan(lm).Size(),
			in.ScanPlus(lm, core.OrderByID).Size(),
			in.ScanPlus(lm, core.OrderByFrequencyDesc).Size(),
			in.ScanPlus(lm, core.OrderByFrequencyAsc).Size(),
			in.GreedySC(lm).Size())
	}
	return tb.write(w)
}

func runAblationDedup(w io.Writer, sc Scale) error {
	streamCfg := synth.StreamConfig{Duration: 1800, RatePerSec: 4, DupRatio: 0.25, Seed: 401}
	if sc == Smoke {
		streamCfg.Duration = 300
	}
	world := synth.NewWorld(synth.WorldConfig{BroadTopics: 3, TopicsPerBroad: 3, Seed: 400})
	tweets := synth.TweetStream(world, streamCfg)
	tb := newTable("hamming threshold", "kept", "dropped", "drop rate")
	for _, dist := range []int{0, 3, 8, 12} {
		d := simhash.NewDeduper(dist, 1024)
		kept := 0
		for _, tw := range tweets {
			if d.Offer(tw.Text) {
				kept++
			}
		}
		seen, dropped := d.Stats()
		tb.add(dist, kept, dropped, share(dropped, seen))
	}
	if err := tb.write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nstream: %d tweets with 25%% injected near-duplicates\n", len(tweets))
	return err
}

func runAblationGreedy(w io.Writer, sc Scale) error {
	// Part 1: scaling in |P| at fixed λ.
	durations := []float64{600, 1800, 3600}
	if sc == Smoke {
		durations = []float64{120, 300}
	}
	tb := newTable("posts", "lazy-heap ns/post", "rescan-all ns/post", "same result")
	for i, dur := range durations {
		posts := synth.GeneratePosts(synth.PostStreamConfig{
			Duration: dur, RatePerSec: 1.5, NumLabels: 5, Overlap: 1.5, Seed: 500 + int64(i),
		})
		in, err := core.NewInstance(posts, 5)
		if err != nil {
			return err
		}
		lm := core.FixedLambda(60)
		start := time.Now()
		lazy := in.GreedySC(lm)
		lazyTime := time.Since(start)
		start = time.Now()
		naive := in.GreedySCNaive(lm)
		naiveTime := time.Since(start)
		tb.add(in.Len(), perPost(lazyTime, in.Len()), perPost(naiveTime, in.Len()), lazy.Size() == naive.Size())
	}
	if err := tb.write(w); err != nil {
		return err
	}
	// Part 2: λ sweep. The paper's Figure 13 shows GreedySC getting faster
	// as λ grows because its rescan-all loop runs one pass per selection
	// and larger λ means fewer selections; the lazy heap removes that
	// dependence. This table reproduces the paper's shape on the faithful
	// implementation.
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	lambdas := []float64{60, 300, 600, 1800}
	dayLen := 86400.0
	if sc == Smoke {
		lambdas = []float64{60, 600}
		dayLen = 3600
	}
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration: dayLen, RatePerSec: rateForLabels(2), NumLabels: 2, Overlap: 1.4, Diurnal: true, Seed: 510,
	})
	in, err := core.NewInstance(posts, 2)
	if err != nil {
		return err
	}
	tb2 := newTable("lambda(s)", "solution", "lazy-heap ns/post", "rescan-all ns/post")
	for _, lambda := range lambdas {
		lm := core.FixedLambda(lambda)
		start := time.Now()
		lazy := in.GreedySC(lm)
		lazyTime := time.Since(start)
		start = time.Now()
		in.GreedySCNaive(lm)
		naiveTime := time.Since(start)
		tb2.add(lambda, lazy.Size(), perPost(lazyTime, in.Len()), perPost(naiveTime, in.Len()))
	}
	return tb2.write(w)
}
