package experiments

import (
	"bytes"
	"io"
	"time"

	"mqdp/internal/parallel"
)

// Result is one experiment outcome from RunConcurrent: the experiment, its
// buffered output, its wall-clock running time, and its error, if any.
type Result struct {
	Experiment Experiment
	Output     []byte
	Elapsed    time.Duration
	Err        error
}

// RunConcurrent executes es at scale sc using up to parallelism worker
// goroutines (0 = GOMAXPROCS, 1 = serial). Every experiment writes into its
// own buffer — experiments never share a writer — and results are delivered
// strictly in input order, each as soon as it and all predecessors have
// finished. Because experiment workloads are seeded and self-contained, the
// delivered byte stream is identical to a serial run for any worker count;
// only Elapsed (and total wall-clock) varies.
func RunConcurrent(es []Experiment, sc Scale, parallelism int, markdown bool) <-chan Result {
	return parallel.OrderedResults(parallelism, len(es), func(i int) Result {
		var buf bytes.Buffer
		var w io.Writer = &buf
		if markdown {
			w = Markdown(&buf)
		}
		start := time.Now()
		err := es[i].Run(w, sc)
		return Result{
			Experiment: es[i],
			Output:     buf.Bytes(),
			Elapsed:    time.Since(start),
			Err:        err,
		}
	})
}
