package experiments

import (
	"fmt"
	"io"

	"mqdp/internal/spatial"
	"mqdp/internal/synth"
)

func init() {
	register(Experiment{
		ID:    "ext-spatial",
		Title: "Extension (§9 future work): spatiotemporal diversification — cover sizes vs geographic radius",
		Run:   runExtSpatial,
	})
}

// runExtSpatial sweeps the geographic radius λd at a fixed time radius: a
// tight λd forces per-city representatives (larger covers), a continental
// λd collapses to the 1-D temporal problem.
func runExtSpatial(w io.Writer, sc Scale) error {
	cfg := synth.GeoStreamConfig{Duration: 7200, RatePerSec: 0.4, NumLabels: 3, Overlap: 1.4, Seed: 701}
	if sc == Smoke {
		cfg.Duration = 900
	}
	posts := synth.GenerateGeoPosts(cfg)
	in, err := spatial.NewInstance(posts, cfg.NumLabels)
	if err != nil {
		return err
	}
	lambdaT := 600.0
	radii := []float64{25, 100, 500, 2000, 10000}
	if sc == Smoke {
		radii = []float64{25, 10000}
	}
	tb := newTable("distKm", "greedySC", "timeScan")
	for _, dk := range radii {
		th := spatial.Thresholds{TimeSec: lambdaT, DistKm: dk}
		greedy, err := in.GreedySC(th)
		if err != nil {
			return err
		}
		if err := in.VerifyCover(th, greedy.Selected); err != nil {
			return fmt.Errorf("ext-spatial greedy invalid at %v km: %w", dk, err)
		}
		scan, err := in.TimeScan(th)
		if err != nil {
			return err
		}
		if err := in.VerifyCover(th, scan.Selected); err != nil {
			return fmt.Errorf("ext-spatial scan invalid at %v km: %w", dk, err)
		}
		tb.add(dk, greedy.Size(), scan.Size())
	}
	if err := tb.write(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nstream: %d geotagged posts over %.0f min, λt = %.0f s, 5 cities\n",
		in.Len(), cfg.Duration/60, lambdaT)
	return err
}
