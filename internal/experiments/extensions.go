package experiments

import (
	"fmt"
	"io"

	"mqdp/internal/core"
	"mqdp/internal/match"
	"mqdp/internal/stream"
	"mqdp/internal/synth"
	"mqdp/internal/textutil"
)

func init() {
	register(Experiment{
		ID:    "ext-adaptive",
		Title: "Extension (§5+§6): streaming proportional diversity — dense-region representation vs fixed λ",
		Run:   runExtAdaptive,
	})
	register(Experiment{
		ID:    "ext-expansion",
		Title: "Extension (§9 future work): context expansion of queries — matching recall before diversification",
		Run:   runExtExpansion,
	})
}

// runExtAdaptive compares AdaptiveStreamScan against fixed-λ StreamScan on a
// diurnal stream: the adaptive processor should track the input's day/night
// density profile where fixed λ flattens it.
func runExtAdaptive(w io.Writer, sc Scale) error {
	duration := 86400.0
	if sc == Smoke {
		duration = 7200
	}
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration:   duration,
		RatePerSec: 0.25,
		NumLabels:  2,
		Overlap:    1.3,
		Diurnal:    true,
		Seed:       601,
	})
	lambda0, tau := 600.0, 60.0
	adaptive, err := stream.NewAdaptiveScan(2, lambda0, tau)
	if err != nil {
		return err
	}
	fixed, err := stream.NewScan(2, lambda0, tau, false)
	if err != nil {
		return err
	}
	esA, err := stream.Run(posts, adaptive)
	if err != nil {
		return err
	}
	esF, err := stream.Run(posts, fixed)
	if err != nil {
		return err
	}
	// Split the day into quarters and compare emission shares with the
	// input share.
	quarters := func(values []float64) [4]float64 {
		var counts [4]int
		for _, v := range values {
			q := int(v / (duration / 4))
			if q > 3 {
				q = 3
			}
			counts[q]++
		}
		var out [4]float64
		total := len(values)
		if total == 0 {
			return out
		}
		for q := range counts {
			out[q] = float64(counts[q]) / float64(total)
		}
		return out
	}
	var inVals, aVals, fVals []float64
	for _, p := range posts {
		inVals = append(inVals, p.Value)
	}
	for _, e := range esA {
		aVals = append(aVals, e.Post.Value)
	}
	for _, e := range esF {
		fVals = append(fVals, e.Post.Value)
	}
	qi, qa, qf := quarters(inVals), quarters(aVals), quarters(fVals)
	tb := newTable("series", "total", "q1 share", "q2 share", "q3 share", "q4 share", "L1 vs input")
	l1 := func(q [4]float64) float64 {
		s := 0.0
		for k := range q {
			d := q[k] - qi[k]
			if d < 0 {
				d = -d
			}
			s += d
		}
		return s
	}
	tb.add("input", len(inVals), qi[0], qi[1], qi[2], qi[3], 0.0)
	tb.add("adaptive λ (Eq. 2, trailing)", len(aVals), qa[0], qa[1], qa[2], qa[3], l1(qa))
	tb.add("fixed λ0", len(fVals), qf[0], qf[1], qf[2], qf[3], l1(qf))
	return tb.write(w)
}

// runExtExpansion trains the PMI expander on the news corpus and measures
// the matching-recall gain on tweets whose topical words are tail keywords.
func runExtExpansion(w io.Writer, sc Scale) error {
	worldCfg := synth.WorldConfig{BroadTopics: 4, TopicsPerBroad: 4, KeywordsPerTopic: 30, Seed: 611}
	newsN, streamDur := 1500, 3600.0
	if sc == Smoke {
		newsN, streamDur = 300, 600
	}
	world := synth.NewWorld(worldCfg)
	// Truncated topics simulate a user profile that only knows the head
	// keywords; the corpus still carries the full co-occurrence structure.
	full := world.MatchTopics([]int{0, 1, 2})
	truncated := make([]match.Topic, len(full))
	for i, t := range full {
		head := t.Keywords
		if len(head) > 5 {
			head = head[:5]
		}
		truncated[i] = match.Topic{Name: t.Name, Keywords: head}
	}
	var seeds []string
	for _, t := range truncated {
		for _, kw := range t.Keywords {
			seeds = append(seeds, kw.Text)
		}
	}
	expander, err := match.NewExpander(seeds)
	if err != nil {
		return err
	}
	for _, a := range synth.NewsCorpus(world, synth.NewsConfig{Articles: newsN, WordsPerDoc: 90, Seed: 612}) {
		expander.ObserveText(a.Text)
	}
	expanded := make([]match.Topic, len(truncated))
	for i, t := range truncated {
		expanded[i] = expander.Expand(t, 15, 3, 0.2)
	}
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: streamDur, RatePerSec: 4, TopicRatio: 0.5, Seed: 613})
	measure := func(topics []match.Topic) (matched, truePos, relevant int, err error) {
		m, err := match.NewMatcher(topics)
		if err != nil {
			return 0, 0, 0, err
		}
		for _, tw := range tweets {
			isRelevant := false
			for _, ti := range tw.Topics {
				if ti == 0 || ti == 1 || ti == 2 {
					isRelevant = true
				}
			}
			if isRelevant {
				relevant++
			}
			if len(m.MatchWords(wordsOf(tw.Text))) > 0 {
				matched++
				if isRelevant {
					truePos++
				}
			}
		}
		return matched, truePos, relevant, nil
	}
	tb := newTable("queries", "keywords/topic", "matched", "recall", "precision")
	for _, row := range []struct {
		name   string
		topics []match.Topic
	}{
		{"truncated (head 5)", truncated},
		{"expanded (+PMI context)", expanded},
		{"full (oracle 30)", full},
	} {
		matched, tp, rel, err := measure(row.topics)
		if err != nil {
			return err
		}
		kw := 0
		for _, t := range row.topics {
			kw += len(t.Keywords)
		}
		recall, precision := 0.0, 0.0
		if rel > 0 {
			recall = float64(tp) / float64(rel)
		}
		if matched > 0 {
			precision = float64(tp) / float64(matched)
		}
		tb.add(row.name, kw/len(row.topics), matched, recall, precision)
	}
	if err := tb.write(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\n%d tweets; relevance = planted topic ∈ {0,1,2}\n", len(tweets))
	return err
}

// wordsOf tokenizes via the shared tokenizer.
func wordsOf(text string) []string {
	return textutil.Words(text)
}

func init() {
	register(Experiment{
		ID:    "ext-windows",
		Title: "Extension: paged (windowed) solving overhead vs one global solve",
		Run:   runExtWindows,
	})
}

// runExtWindows quantifies the cost of solving a day in independent pages
// (SolveWindows): the union stays a valid cover but cannot share coverage
// across page boundaries, so it grows as pages shrink.
func runExtWindows(w io.Writer, sc Scale) error {
	in := day(sc, 3, 620)
	lambda := 600.0
	lm := core.FixedLambda(lambda)
	global := in.GreedySC(lm)
	widths := []float64{3600, 7200, 21600, 86400}
	if sc == Smoke {
		widths = []float64{900, 3600}
	}
	tb := newTable("window width (s)", "windows", "union size", "vs global")
	for _, width := range widths {
		windows, err := in.SolveWindows(width, func(sub *core.Instance) (*core.Cover, error) {
			return sub.GreedySC(lm), nil
		})
		if err != nil {
			return err
		}
		union := core.UnionSelected(windows)
		if err := in.VerifyCover(lm, union); err != nil {
			return fmt.Errorf("ext-windows width %v: %w", width, err)
		}
		tb.add(width, len(windows), len(union), float64(len(union))/float64(global.Size()))
	}
	if err := tb.write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nglobal GreedySC: %d posts over %d (λ=%.0fs)\n", global.Size(), in.Len(), lambda)
	return err
}
