package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15",
		"hardness", "prop", "ablation-scanplus", "ablation-dedup", "ablation-greedy",
		"ext-spatial", "ext-adaptive", "ext-expansion", "ext-windows",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d (%v)", len(All()), len(want), IDs())
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
}

// TestAllExperimentsRunAtSmokeScale executes every registered experiment at
// Smoke scale: the full harness must produce output without errors.
func TestAllExperimentsRunAtSmokeScale(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Smoke); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestFig6ErrorsNonNegativeAndOptConsistent(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig6(&buf, Smoke); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "errScan") || !strings.Contains(out, "errGreedySC") {
		t.Errorf("fig6 output missing columns:\n%s", out)
	}
	if strings.Contains(out, "-0.") {
		t.Errorf("fig6 reports a negative relative error (approx beat OPT?):\n%s", out)
	}
}

func TestPropExperimentShowsProportionality(t *testing.T) {
	var buf bytes.Buffer
	if err := runProp(&buf, Smoke); err != nil {
		t.Fatal(err)
	}
	// The proportional model's dense share must exceed the fixed model's.
	out := buf.String()
	fixedShare := lastFloat(t, out, "fixed λ")
	propShare := lastFloat(t, out, "proportional")
	if propShare <= fixedShare {
		t.Errorf("proportional dense share %v ≤ fixed %v:\n%s", propShare, fixedShare, out)
	}
}

// lastFloat extracts the last whitespace-separated float on the line
// containing marker.
func lastFloat(t *testing.T, out, marker string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, marker) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("marker %q not found in:\n%s", marker, out)
	return 0
}

func TestTableWriter(t *testing.T) {
	tb := newTable("a", "bb")
	tb.add(1, 2.5)
	tb.add("xx", "y")
	var buf bytes.Buffer
	if err := tb.write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "a ") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRelErr(t *testing.T) {
	if got := relErr(12, 10); got != 0.2 {
		t.Errorf("relErr(12,10) = %v", got)
	}
	if got := relErr(10, 10); got != 0 {
		t.Errorf("relErr(10,10) = %v", got)
	}
	if got := relErr(5, 0); got != 0 {
		t.Errorf("relErr(x,0) = %v", got)
	}
}

func TestExtAdaptiveTracksInputBetterThanFixed(t *testing.T) {
	var buf bytes.Buffer
	if err := runExtAdaptive(&buf, Smoke); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	adaptiveL1 := lastFloat(t, out, "adaptive")
	fixedL1 := lastFloat(t, out, "fixed")
	if adaptiveL1 >= fixedL1 {
		t.Errorf("adaptive L1 %v ≥ fixed %v; Eq. 2 should track the diurnal profile:\n%s", adaptiveL1, fixedL1, out)
	}
}

func TestExtExpansionImprovesRecall(t *testing.T) {
	var buf bytes.Buffer
	if err := runExtExpansion(&buf, Smoke); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	recallOf := func(marker string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, marker) {
				fields := strings.Fields(line)
				v, err := strconv.ParseFloat(fields[len(fields)-2], 64)
				if err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("marker %q missing:\n%s", marker, out)
		return 0
	}
	truncated := recallOf("truncated")
	expanded := recallOf("expanded")
	if expanded <= truncated {
		t.Errorf("expansion recall %v ≤ truncated %v:\n%s", expanded, truncated, out)
	}
}

func TestMarkdownTableWriter(t *testing.T) {
	tb := newTable("a", "b")
	tb.add(1, "x")
	var buf bytes.Buffer
	if err := tb.write(Markdown(&buf)); err != nil {
		t.Fatal(err)
	}
	want := "| a | b |\n| --- | --- |\n| 1 | x |\n"
	if buf.String() != want {
		t.Errorf("markdown = %q, want %q", buf.String(), want)
	}
}
