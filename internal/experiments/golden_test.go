package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenIDs lists the experiments whose smoke-scale output is fully
// deterministic (no timing columns) and therefore golden-testable. Timing
// experiments (fig13–15, ablation-greedy) are excluded by construction.
var goldenIDs = []string{
	"table1", "table2",
	"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	"hardness", "prop",
	"ablation-scanplus", "ablation-dedup",
	"ext-spatial", "ext-adaptive", "ext-expansion", "ext-windows",
}

// TestGoldenOutputs locks the deterministic experiments' smoke output
// against testdata/<id>.golden. Regenerate intentionally with
//
//	go test ./internal/experiments -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q missing", id)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, Smoke); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output drifted from %s.\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
			}
		})
	}
}
