package experiments

import (
	"fmt"

	"mqdp/internal/core"
	"mqdp/internal/stream"
	"mqdp/internal/synth"
)

// rateForLabels approximates Table 2's matching rates, scaled ~10× down from
// the paper's 1% Twitter sample: roughly 0.105 matching posts per second per
// label in the set.
func rateForLabels(numLabels int) float64 { return 0.105 * float64(numLabels) }

// interval builds the paper's "10-minute interval" workload used whenever
// relative error against OPT is needed: small |L|, modest rate.
func interval(sc Scale, numLabels int, overlap float64, seed int64) *core.Instance {
	duration := 600.0
	rate := rateForLabels(numLabels) * 2.5 // denser than the day-scale stream, as in §7.2
	if sc == Smoke {
		duration = 120
	}
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration:   duration,
		RatePerSec: rate,
		NumLabels:  numLabels,
		Overlap:    overlap,
		Seed:       seed,
	})
	in, err := core.NewInstance(posts, numLabels)
	if err != nil {
		panic(fmt.Sprintf("experiments: workload generation: %v", err))
	}
	return in
}

// day builds the "1 day of tweets" workload (scaled: default rate gives
// ≈ 9k matching posts per day per label pair instead of the paper's ~90k).
func day(sc Scale, numLabels int, seed int64) *core.Instance {
	duration := 86400.0
	if sc == Smoke {
		duration = 3600
	}
	posts := synth.GeneratePosts(synth.PostStreamConfig{
		Duration:   duration,
		RatePerSec: rateForLabels(numLabels),
		NumLabels:  numLabels,
		Overlap:    1.4,
		Diurnal:    true,
		Seed:       seed,
	})
	in, err := core.NewInstance(posts, numLabels)
	if err != nil {
		panic(fmt.Sprintf("experiments: workload generation: %v", err))
	}
	return in
}

// optBudget bounds OPT in experiment settings; generous but finite so a
// mis-parameterized sweep fails fast instead of hanging.
func optBudget() *core.OPTOptions {
	return &core.OPTOptions{MaxStates: 1 << 18, MaxWork: 1 << 30}
}

// runStreaming replays an instance's posts through a processor and returns
// the emission count.
func runStreaming(in *core.Instance, p stream.Processor) (int, error) {
	es, err := stream.Run(in.Posts(), p)
	if err != nil {
		return 0, err
	}
	return len(es), nil
}

// streamingQuartet builds the four §5 processors for a parameter set.
func streamingQuartet(numLabels int, lambda, tau float64) ([]stream.Processor, error) {
	scan, err := stream.NewScan(numLabels, lambda, tau, false)
	if err != nil {
		return nil, err
	}
	scanPlus, err := stream.NewScan(numLabels, lambda, tau, true)
	if err != nil {
		return nil, err
	}
	greedy, err := stream.NewGreedy(numLabels, lambda, tau, false)
	if err != nil {
		return nil, err
	}
	greedyPlus, err := stream.NewGreedy(numLabels, lambda, tau, true)
	if err != nil {
		return nil, err
	}
	return []stream.Processor{scan, scanPlus, greedy, greedyPlus}, nil
}
