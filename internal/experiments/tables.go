package experiments

import (
	"fmt"
	"io"
	"strings"

	"mqdp/internal/lda"
	"mqdp/internal/match"
	"mqdp/internal/synth"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: example LDA topics with their highest-weight keywords",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table 2: matching posts per minute for label sets of size 2, 5, 20",
		Run:   runTable2,
	})
}

// runTable1 rebuilds the paper's query-generation pipeline: synthetic news
// corpus → LDA → topics-as-keyword-sets, and prints sample topics like the
// paper's Table 1 (golf/NFL under Sports, elections under Politics, ...).
func runTable1(w io.Writer, sc Scale) error {
	worldCfg := synth.WorldConfig{BroadTopics: 4, TopicsPerBroad: 4, KeywordsPerTopic: 25, Seed: 101}
	newsCfg := synth.NewsConfig{Articles: 1200, WordsPerDoc: 90, Seed: 102}
	iters := 150
	if sc == Smoke {
		worldCfg.TopicsPerBroad = 2
		newsCfg.Articles = 200
		newsCfg.WordsPerDoc = 50
		iters = 40
	}
	world := synth.NewWorld(worldCfg)
	articles := synth.NewsCorpus(world, newsCfg)
	corpus := lda.NewCorpus()
	for _, a := range articles {
		corpus.AddText(a.Text)
	}
	model, err := lda.Train(corpus, lda.Options{
		Topics:     len(world.Topics),
		Iterations: iters,
		Seed:       103,
	})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "news corpus: %d articles, vocabulary %d; LDA K=%d\n\n",
		corpus.Docs(), corpus.VocabSize(), model.Topics()); err != nil {
		return err
	}
	// Show the first few topics with their top keywords, Table 1-style.
	show := model.Topics()
	if show > 6 {
		show = 6
	}
	tb := newTable("topic", "highest-weight keywords")
	for k := 0; k < show; k++ {
		kws := model.TopKeywords(k, 8)
		words := make([]string, len(kws))
		for i, kw := range kws {
			words[i] = kw.Word
		}
		tb.add(fmt.Sprintf("topic-%d", k), strings.Join(words, " "))
	}
	return tb.write(w)
}

// runTable2 pushes a synthetic tweet stream through the keyword matcher for
// sampled label sets (profiles) of each size and reports the mean number of
// unique matching posts per minute — the paper's Table 2, at our ~10×
// scaled-down stream rate.
func runTable2(w io.Writer, sc Scale) error {
	worldCfg := synth.WorldConfig{Seed: 201}
	streamCfg := synth.StreamConfig{Duration: 7200, RatePerSec: 5.8, Seed: 202}
	setsPerSize := 80 // the paper used 100 label sets per size
	if sc == Smoke {
		streamCfg.Duration = 600
		streamCfg.RatePerSec = 3
		setsPerSize = 3
	}
	world := synth.NewWorld(worldCfg)
	tweets := synth.TweetStream(world, streamCfg)
	minutes := streamCfg.Duration / 60

	tb := newTable("|L|", "matching posts/min (mean over label sets)")
	rng := newSeededRand(203)
	for _, size := range []int{2, 5, 20} {
		total := 0.0
		for s := 0; s < setsPerSize; s++ {
			topicIdx := world.SampleLabelSet(rng, size)
			m, err := match.NewMatcher(world.MatchTopics(topicIdx))
			if err != nil {
				return err
			}
			matched := 0
			for _, tw := range tweets {
				if len(m.Match(tw.Text)) > 0 {
					matched++
				}
			}
			total += float64(matched) / minutes
		}
		tb.add(size, total/float64(setsPerSize))
	}
	if err := tb.write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nstream: %d tweets over %.0f minutes (%.2f/s; the paper's 1%% sample ran ≈50/s)\n",
		len(tweets), minutes, float64(len(tweets))/streamCfg.Duration)
	return err
}
