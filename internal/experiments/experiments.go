// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) plus the reproduction extras indexed in DESIGN.md. Each
// experiment is a named runner that builds its seeded synthetic workload,
// executes the algorithms under the paper's parameters (scaled as documented
// in EXPERIMENTS.md), and prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
)

// newSeededRand returns a deterministic RNG for workload sampling.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Scale selects the workload size.
type Scale int

// Scales.
const (
	// Smoke runs in well under a second per experiment; used by `go test`
	// and the benchmarks.
	Smoke Scale = iota
	// Full reproduces the shapes at the scaled-down paper parameters.
	Full
)

// Experiment is one reproducible table/figure.
type Experiment struct {
	// ID is the DESIGN.md identifier, e.g. "fig6".
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment, writing its rows to w.
	Run func(w io.Writer, sc Scale) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the registered identifiers, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// table is a minimal aligned-text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// writeMarkdown renders the table as GitHub-flavored markdown.
func (t *table) writeMarkdown(w io.Writer) error {
	row := func(cells []string) error {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
		return nil
	}
	if err := row(t.header); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// markdownWriter marks an output destination as wanting markdown tables.
// Wrap the writer passed to Experiment.Run with Markdown() to switch table
// rendering.
type markdownWriter struct{ io.Writer }

// Markdown wraps w so experiment tables render as markdown.
func Markdown(w io.Writer) io.Writer { return markdownWriter{w} }

func (t *table) write(w io.Writer) error {
	if _, ok := w.(markdownWriter); ok {
		return t.writeMarkdown(w)
	}
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := fmt.Fprint(w, "  "); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%-*s", widths[i], c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	underline := make([]string, len(t.header))
	for i := range underline {
		underline[i] = dashes(widths[i])
	}
	if err := line(underline); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// relErr is the paper's relative solution-size error.
func relErr(approx, opt int) float64 {
	if opt == 0 {
		return 0
	}
	d := approx - opt
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(opt)
}
