package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// goldenHarnessIDs is the deterministic (timing-free) experiment subset; see
// goldenIDs in golden_test.go.
func goldenHarnessExperiments(t *testing.T) []Experiment {
	t.Helper()
	es := make([]Experiment, 0, len(goldenIDs))
	for _, id := range goldenIDs {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		es = append(es, e)
	}
	return es
}

// renderHarness formats results exactly as cmd/mqdp-bench does, minus the
// wall-clock footer (which varies between any two runs, serial or not).
func renderHarness(t *testing.T, es []Experiment, parallelism int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for r := range RunConcurrent(es, Smoke, parallelism, false) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Experiment.ID, r.Err)
		}
		fmt.Fprintf(&buf, "=== %s — %s\n", r.Experiment.ID, r.Experiment.Title)
		buf.Write(r.Output)
		fmt.Fprintf(&buf, "--- %s done\n\n", r.Experiment.ID)
	}
	return buf.Bytes()
}

// TestHarnessParallelOutputMatchesSerialByteForByte is the golden contract
// from the issue: the -parallel 4 harness must emit byte-identical output to
// the serial harness over the deterministic experiment set.
func TestHarnessParallelOutputMatchesSerialByteForByte(t *testing.T) {
	es := goldenHarnessExperiments(t)
	serial := renderHarness(t, es, 1)
	if len(serial) == 0 {
		t.Fatal("serial harness produced no output")
	}
	for _, workers := range []int{2, 4} {
		par := renderHarness(t, es, workers)
		if !bytes.Equal(serial, par) {
			t.Fatalf("parallel=%d output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, par)
		}
	}
}

// TestRunConcurrentPreservesRegistrationOrder checks ordering and per-result
// metadata on the full registry at smoke scale.
func TestRunConcurrentPreservesRegistrationOrder(t *testing.T) {
	es := All()
	i := 0
	for r := range RunConcurrent(es, Smoke, 4, false) {
		if r.Experiment.ID != es[i].ID {
			t.Fatalf("result %d is %q, want %q", i, r.Experiment.ID, es[i].ID)
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Experiment.ID, r.Err)
		}
		if len(r.Output) == 0 {
			t.Fatalf("%s produced no output", r.Experiment.ID)
		}
		if r.Elapsed <= 0 {
			t.Fatalf("%s reported non-positive elapsed %v", r.Experiment.ID, r.Elapsed)
		}
		i++
	}
	if i != len(es) {
		t.Fatalf("received %d results, want %d", i, len(es))
	}
}

// TestRunConcurrentReportsErrors verifies a failing experiment surfaces its
// error in order without disturbing its neighbours.
func TestRunConcurrentReportsErrors(t *testing.T) {
	boom := errors.New("boom")
	es := []Experiment{
		{ID: "a", Title: "ok", Run: func(w io.Writer, sc Scale) error { fmt.Fprintln(w, "A"); return nil }},
		{ID: "b", Title: "fails", Run: func(w io.Writer, sc Scale) error { return boom }},
		{ID: "c", Title: "ok", Run: func(w io.Writer, sc Scale) error { fmt.Fprintln(w, "C"); return nil }},
	}
	var got []Result
	for r := range RunConcurrent(es, Smoke, 3, false) {
		got = append(got, r)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	if got[0].Err != nil || string(got[0].Output) != "A\n" {
		t.Errorf("result a = (%q, %v)", got[0].Output, got[0].Err)
	}
	if !errors.Is(got[1].Err, boom) {
		t.Errorf("result b error = %v, want boom", got[1].Err)
	}
	if got[2].Err != nil || string(got[2].Output) != "C\n" {
		t.Errorf("result c = (%q, %v)", got[2].Output, got[2].Err)
	}
}

// TestRunConcurrentMarkdown checks the markdown wrapper is applied per
// buffer.
func TestRunConcurrentMarkdown(t *testing.T) {
	es := []Experiment{{ID: "t", Title: "table", Run: func(w io.Writer, sc Scale) error {
		tb := newTable("x")
		tb.add(1)
		return tb.write(w)
	}}}
	r := <-RunConcurrent(es, Smoke, 1, true)
	if want := "| x |\n| --- |\n| 1 |\n"; string(r.Output) != want {
		t.Errorf("markdown output = %q, want %q", r.Output, want)
	}
}
