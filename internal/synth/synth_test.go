package synth

import (
	"math"
	"math/rand"
	"testing"

	"mqdp/internal/match"
	"mqdp/internal/simhash"
)

func TestNewWorldShape(t *testing.T) {
	w := NewWorld(WorldConfig{BroadTopics: 4, TopicsPerBroad: 5, KeywordsPerTopic: 20, Seed: 1})
	if len(w.Broad) != 4 {
		t.Fatalf("broad topics = %d", len(w.Broad))
	}
	if len(w.Topics) != 20 {
		t.Fatalf("topics = %d, want 20", len(w.Topics))
	}
	for ti, topic := range w.Topics {
		if len(topic.Keywords) != 20 {
			t.Errorf("topic %d has %d keywords", ti, len(topic.Keywords))
		}
		if topic.Broad < 0 || topic.Broad >= 4 {
			t.Errorf("topic %d broad = %d", ti, topic.Broad)
		}
	}
	for g, ids := range w.ByBroad {
		if len(ids) != 5 {
			t.Errorf("broad %d has %d topics", g, len(ids))
		}
		for _, ti := range ids {
			if w.Topics[ti].Broad != g {
				t.Errorf("topic %d grouped under wrong broad topic", ti)
			}
		}
	}
}

func TestWorldDeterministic(t *testing.T) {
	a := NewWorld(WorldConfig{Seed: 5})
	b := NewWorld(WorldConfig{Seed: 5})
	if a.Topics[3].Keywords[7] != b.Topics[3].Keywords[7] {
		t.Error("same seed produced different worlds")
	}
	c := NewWorld(WorldConfig{Seed: 6})
	if a.Topics[3].Keywords[7] == c.Topics[3].Keywords[7] {
		t.Error("different seeds produced identical keyword (suspicious)")
	}
}

func TestSampleLabelSetWithinBroadTopic(t *testing.T) {
	w := NewWorld(WorldConfig{BroadTopics: 5, TopicsPerBroad: 8, Seed: 2})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		set := w.SampleLabelSet(rng, 4)
		if len(set) != 4 {
			t.Fatalf("label set size = %d", len(set))
		}
		broad := w.Topics[set[0]].Broad
		seen := map[int]bool{}
		for _, ti := range set {
			if seen[ti] {
				t.Fatal("duplicate topic in label set")
			}
			seen[ti] = true
			if w.Topics[ti].Broad != broad {
				t.Fatal("label set spans broad topics despite enough topics")
			}
		}
	}
}

func TestSampleLabelSetPadsWhenBroadTooSmall(t *testing.T) {
	w := NewWorld(WorldConfig{BroadTopics: 3, TopicsPerBroad: 2, Seed: 2})
	rng := rand.New(rand.NewSource(4))
	set := w.SampleLabelSet(rng, 5)
	if len(set) != 5 {
		t.Fatalf("padded label set size = %d, want 5", len(set))
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := NewZipf(10, 1.2)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[z.Sample(rng)]++
	}
	if !(counts[0] > counts[4] && counts[4] > counts[9]) {
		t.Errorf("zipf counts not decreasing: %v", counts)
	}
	uniform := NewZipf(10, 0)
	counts = make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[uniform.Sample(rng)]++
	}
	for i, c := range counts {
		if c < 1400 || c > 2600 {
			t.Errorf("uniform zipf bucket %d = %d, want ≈2000", i, c)
		}
	}
}

func TestNewsCorpusFeedsTopics(t *testing.T) {
	w := NewWorld(WorldConfig{BroadTopics: 3, TopicsPerBroad: 3, KeywordsPerTopic: 15, Seed: 1})
	arts := NewsCorpus(w, NewsConfig{Articles: 50, WordsPerDoc: 60, Seed: 2})
	if len(arts) != 50 {
		t.Fatalf("articles = %d", len(arts))
	}
	for _, a := range arts {
		if len(a.Text) == 0 || len(a.Topics) == 0 {
			t.Fatal("empty article")
		}
	}
}

func TestTweetStreamOrderedAndScaled(t *testing.T) {
	w := NewWorld(WorldConfig{BroadTopics: 3, TopicsPerBroad: 3, Seed: 1})
	tweets := TweetStream(w, StreamConfig{Duration: 1200, RatePerSec: 2, Seed: 3})
	if len(tweets) < 1800 || len(tweets) > 3000 {
		t.Fatalf("tweets = %d, want ≈2400 for 1200s at 2/s", len(tweets))
	}
	for i := 1; i < len(tweets); i++ {
		if tweets[i].Time < tweets[i-1].Time {
			t.Fatal("tweets out of time order")
		}
	}
	ids := map[int64]bool{}
	for _, tw := range tweets {
		if ids[tw.ID] {
			t.Fatal("duplicate tweet ID")
		}
		ids[tw.ID] = true
		if tw.Time < 0 || tw.Time >= 1200 {
			t.Fatalf("tweet time %v outside [0, 1200)", tw.Time)
		}
	}
}

func TestTweetStreamTopicalTweetsMatchable(t *testing.T) {
	w := NewWorld(WorldConfig{BroadTopics: 2, TopicsPerBroad: 3, Seed: 1})
	tweets := TweetStream(w, StreamConfig{Duration: 600, RatePerSec: 3, TopicRatio: 0.5, Seed: 4})
	all := make([]int, len(w.Topics))
	for i := range all {
		all[i] = i
	}
	m, err := match.NewMatcher(w.MatchTopics(all))
	if err != nil {
		t.Fatal(err)
	}
	matched, topical := 0, 0
	for _, tw := range tweets {
		if len(tw.Topics) == 0 {
			continue
		}
		topical++
		labels := m.Match(tw.Text)
		ok := false
		for _, want := range tw.Topics {
			for _, got := range labels {
				if int(got) == want {
					ok = true
				}
			}
		}
		if ok {
			matched++
		}
	}
	if topical == 0 {
		t.Fatal("no topical tweets generated")
	}
	if float64(matched) < 0.9*float64(topical) {
		t.Errorf("matcher recovered %d/%d topical tweets; generator keywords too weak", matched, topical)
	}
}

func TestTweetStreamNearDuplicates(t *testing.T) {
	w := NewWorld(WorldConfig{BroadTopics: 2, TopicsPerBroad: 2, Seed: 1})
	tweets := TweetStream(w, StreamConfig{Duration: 400, RatePerSec: 3, DupRatio: 0.3, Seed: 5})
	// Tweets are short, so single-word edits move many fingerprint bits; a
	// wider Hamming threshold is needed than for web pages.
	d := simhash.NewDeduper(12, 512)
	kept := 0
	for _, tw := range tweets {
		if d.Offer(tw.Text) {
			kept++
		}
	}
	dropRate := 1 - float64(kept)/float64(len(tweets))
	if dropRate < 0.1 {
		t.Errorf("dedup drop rate %.3f; generator duplicates not detectable", dropRate)
	}
	// A strict threshold still catches the exact-copy retweets.
	strict := simhash.NewDeduper(0, 512)
	kept = 0
	for _, tw := range tweets {
		if strict.Offer(tw.Text) {
			kept++
		}
	}
	if rate := 1 - float64(kept)/float64(len(tweets)); rate < 0.03 {
		t.Errorf("exact-dup drop rate %.3f; expected ≥ 3%% identical retweets", rate)
	}
}

func TestDiurnalRateVaries(t *testing.T) {
	w := NewWorld(WorldConfig{BroadTopics: 2, TopicsPerBroad: 2, Seed: 1})
	tweets := TweetStream(w, StreamConfig{Duration: 86400, RatePerSec: 0.5, Diurnal: true, Seed: 6})
	// Bucket into 24 hours and compare min vs max hourly volume.
	buckets := make([]int, 24)
	for _, tw := range tweets {
		buckets[int(tw.Time/3600)]++
	}
	min, max := buckets[0], buckets[0]
	for _, b := range buckets {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if float64(max) < 1.5*float64(min) {
		t.Errorf("diurnal variation too flat: min %d max %d", min, max)
	}
}

func TestGeneratePostsOverlapControl(t *testing.T) {
	for _, target := range []float64{1.0, 1.5, 2.2} {
		posts := GeneratePosts(PostStreamConfig{Duration: 2000, RatePerSec: 1, NumLabels: 5, Overlap: target, Seed: 8})
		if len(posts) < 1500 {
			t.Fatalf("posts = %d", len(posts))
		}
		pairs := 0
		for _, p := range posts {
			if len(p.Labels) == 0 {
				t.Fatal("post without labels")
			}
			pairs += len(p.Labels)
		}
		got := float64(pairs) / float64(len(posts))
		if math.Abs(got-target) > 0.25 {
			t.Errorf("overlap = %.3f, want ≈ %.1f", got, target)
		}
	}
}

func TestGeneratePostsOrderedAndLabeled(t *testing.T) {
	posts := GeneratePosts(PostStreamConfig{Duration: 300, RatePerSec: 2, NumLabels: 3, Seed: 9})
	for i, p := range posts {
		if i > 0 && p.Value < posts[i-1].Value {
			t.Fatal("posts out of order")
		}
		for j := 1; j < len(p.Labels); j++ {
			if p.Labels[j] <= p.Labels[j-1] {
				t.Fatal("labels not sorted/deduplicated")
			}
		}
	}
}

func TestGeneratePostsDeterministic(t *testing.T) {
	a := GeneratePosts(PostStreamConfig{Duration: 100, RatePerSec: 2, NumLabels: 3, Seed: 10})
	b := GeneratePosts(PostStreamConfig{Duration: 100, RatePerSec: 2, NumLabels: 3, Seed: 10})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Value != b[i].Value || len(a[i].Labels) != len(b[i].Labels) {
			t.Fatal("same seed generated different streams")
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mean := range []float64{0.5, 3, 50} {
		total := 0
		n := 20000
		for i := 0; i < n; i++ {
			total += poisson(rng, mean)
		}
		got := float64(total) / float64(n)
		if math.Abs(got-mean) > mean*0.1+0.05 {
			t.Errorf("poisson(%v) empirical mean %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("poisson of nonpositive mean should be 0")
	}
}

func TestVocabularyDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	words := vocabulary(rng, 500)
	seen := map[string]bool{}
	for _, w := range words {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if w == "" {
			t.Fatal("empty word")
		}
	}
}
