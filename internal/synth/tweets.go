package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"mqdp/internal/sentiment"
)

// Tweet is one synthetic stream post.
type Tweet struct {
	ID   int64
	Time float64 // seconds since stream start
	Text string
	// Topics are the planted topic indexes the tweet draws from (ground
	// truth; the matcher rediscovers them through keywords).
	Topics []int
}

// StreamConfig shapes the synthetic tweet stream standing in for the
// paper's 24-hour, ~4.3M-tweet 1% Twitter sample. The default rate is
// scaled down ~10× (≈ 5.8 posts/s ≈ 500k/day); every experiment that
// depends on absolute volume documents this scaling in EXPERIMENTS.md.
type StreamConfig struct {
	Duration float64 // seconds; default 86400 (24h)
	// RatePerSec is the mean arrival rate; default 5.8.
	RatePerSec float64
	// TopicRatio is the fraction of tweets that are about planted topics
	// (the rest are background chatter). Default 0.35.
	TopicRatio float64
	// MultiTopicProb is the chance a topical tweet covers a second topic.
	// Default 0.25.
	MultiTopicProb float64
	// DupRatio is the fraction of tweets that are near-duplicates of a
	// recent tweet (retweets/quotes), exercising the SimHash filter.
	// Default 0.
	DupRatio float64
	// Diurnal enables the day/night rate curve plus random bursts.
	Diurnal bool
	Seed    int64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Duration <= 0 {
		c.Duration = 86400
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 5.8
	}
	if c.TopicRatio <= 0 {
		c.TopicRatio = 0.35
	}
	if c.MultiTopicProb < 0 {
		c.MultiTopicProb = 0
	} else if c.MultiTopicProb == 0 {
		c.MultiTopicProb = 0.25
	}
	return c
}

// burst is a transient rate multiplier (a breaking-news spike).
type burst struct {
	start, length float64
	factor        float64
}

// TweetStream generates the stream in time order.
func TweetStream(w *World, cfg StreamConfig) []Tweet {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	topicPop := NewZipf(len(w.Topics), 0.9)

	var bursts []burst
	if c.Diurnal {
		n := int(c.Duration/21600) + 1 // ~one burst per 6 hours
		for i := 0; i < n; i++ {
			bursts = append(bursts, burst{
				start:  rng.Float64() * c.Duration,
				length: 300 + rng.Float64()*1500,
				factor: 2 + rng.Float64()*3,
			})
		}
	}
	rate := func(t float64) float64 {
		r := c.RatePerSec
		if c.Diurnal {
			// Trough at ~4am, peak at ~4pm for a stream starting at midnight.
			r *= 1 + 0.6*math.Sin(2*math.Pi*(t/86400)-2.2)
			for _, b := range bursts {
				if t >= b.start && t < b.start+b.length {
					r *= b.factor
				}
			}
		}
		if r < 0.01*c.RatePerSec {
			r = 0.01 * c.RatePerSec
		}
		return r
	}

	var tweets []Tweet
	var recent []Tweet // ring of recent tweets for near-duplicates
	id := int64(0)
	for sec := 0.0; sec < c.Duration; sec++ {
		n := poisson(rng, rate(sec))
		for k := 0; k < n; k++ {
			t := sec + rng.Float64()
			if t >= c.Duration {
				t = c.Duration - 1e-6
			}
			var tw Tweet
			if c.DupRatio > 0 && len(recent) > 8 && rng.Float64() < c.DupRatio {
				src := recent[rng.Intn(len(recent))]
				tw = Tweet{ID: id, Time: t, Text: mutate(rng, src.Text), Topics: append([]int(nil), src.Topics...)}
			} else {
				tw = compose(w, rng, topicPop, id, t, c)
			}
			id++
			tweets = append(tweets, tw)
			recent = append(recent, tw)
			if len(recent) > 256 {
				recent = recent[1:]
			}
		}
	}
	// Arrival jitter within a second can reorder; fix with a stable sort.
	sortTweets(tweets)
	return tweets
}

// compose writes one original tweet.
func compose(w *World, rng *rand.Rand, topicPop *Zipf, id int64, t float64, c StreamConfig) Tweet {
	var topics []int
	if rng.Float64() < c.TopicRatio {
		primary := topicPop.Sample(rng)
		topics = []int{primary}
		if rng.Float64() < c.MultiTopicProb {
			var second int
			if rng.Float64() < 0.7 {
				peers := w.ByBroad[w.Topics[primary].Broad]
				second = peers[rng.Intn(len(peers))]
			} else {
				second = topicPop.Sample(rng)
			}
			if second != primary {
				topics = append(topics, second)
			}
		}
	}
	n := 8 + rng.Intn(9)
	words := make([]string, 0, n+1)
	for len(words) < n {
		switch {
		case len(topics) > 0 && rng.Float64() < 0.45:
			tp := w.Topics[topics[rng.Intn(len(topics))]]
			k := int(float64(len(tp.Keywords)) * rng.Float64() * rng.Float64())
			words = append(words, tp.Keywords[k])
		case rng.Float64() < 0.12: // sentiment-bearing word
			if rng.Float64() < 0.5 {
				pos := sentiment.PositiveWords(0.3)
				words = append(words, pos[rng.Intn(len(pos))])
			} else {
				neg := sentiment.NegativeWords(-0.3)
				words = append(words, neg[rng.Intn(len(neg))])
			}
		default:
			words = append(words, w.Background[rng.Intn(len(w.Background))])
		}
	}
	if len(topics) > 0 && rng.Float64() < 0.3 {
		words = append(words, "#"+strings.ReplaceAll(w.Topics[topics[0]].Name, "-", ""))
	}
	return Tweet{ID: id, Time: t, Text: strings.Join(words, " "), Topics: topics}
}

// mutate produces a near-duplicate: an RT prefix, a via-suffix, or a small
// word swap, the kinds of redundancy SimHash is meant to catch.
func mutate(rng *rand.Rand, text string) string {
	switch rng.Intn(4) {
	case 0:
		return text // plain retweet: identical text
	case 1:
		return "rt " + text
	case 2:
		return text + fmt.Sprintf(" via @user%d", rng.Intn(5000))
	default:
		words := strings.Fields(text)
		if len(words) > 2 {
			i := rng.Intn(len(words))
			words[i] = word(rng)
		}
		return strings.Join(words, " ")
	}
}

// poisson draws from Poisson(mean) by inversion (mean is small per second).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation for high-rate bursts.
		n := int(mean + math.Sqrt(mean)*rng.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// sortTweets sorts by time, then ID.
func sortTweets(tweets []Tweet) {
	sort.Slice(tweets, func(i, j int) bool {
		if tweets[i].Time != tweets[j].Time {
			return tweets[i].Time < tweets[j].Time
		}
		return tweets[i].ID < tweets[j].ID
	})
}
