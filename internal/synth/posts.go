package synth

import (
	"math"
	"math/rand"
	"sort"

	"mqdp/internal/core"
)

// PostStreamConfig shapes an abstract post stream: timestamps plus label
// sets, no text. The evaluation's hardness knobs are explicit: per-label
// arrival rate (via RatePerSec and label skew) and the post-overlap rate
// (mean labels per post), which Figures 6, 7 and 11 sweep directly.
type PostStreamConfig struct {
	Duration float64 // seconds; default 600 (the paper's 10-minute slice)
	// RatePerSec is the mean arrival rate of matching posts. The paper's
	// Table 2 reports ~2.3/s matching posts for |L|=2 on the full stream;
	// the default of 1.0 matches our ~10× scaled-down stream.
	RatePerSec float64
	NumLabels  int // default 2
	// Overlap is the target mean number of labels per post (≥ 1).
	// Default 1.3.
	Overlap float64
	// LabelSkew is the Zipf exponent of label popularity (0 = uniform).
	// Default 0.7.
	LabelSkew float64
	// Diurnal modulates the rate over a 24h cycle.
	Diurnal bool
	Seed    int64
}

func (c PostStreamConfig) withDefaults() PostStreamConfig {
	if c.Duration <= 0 {
		c.Duration = 600
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 1.0
	}
	if c.NumLabels <= 0 {
		c.NumLabels = 2
	}
	if c.Overlap < 1 {
		c.Overlap = 1.3
	}
	if c.LabelSkew < 0 {
		c.LabelSkew = 0
	} else if c.LabelSkew == 0 {
		c.LabelSkew = 0.7
	}
	return c
}

// GeneratePosts produces a time-ordered post stream per cfg. Post values are
// timestamps in [0, Duration).
func GeneratePosts(cfg PostStreamConfig) []core.Post {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	pop := NewZipf(c.NumLabels, c.LabelSkew)
	var posts []core.Post
	id := int64(0)
	for sec := 0.0; sec < c.Duration; sec++ {
		r := c.RatePerSec
		if c.Diurnal {
			r *= 1 + 0.6*math.Sin(2*math.Pi*(sec/86400)-2.2)
			if r < 0.01*c.RatePerSec {
				r = 0.01 * c.RatePerSec
			}
		}
		n := poisson(rng, r)
		for k := 0; k < n; k++ {
			t := sec + rng.Float64()
			if t >= c.Duration {
				t = c.Duration - 1e-6
			}
			posts = append(posts, core.Post{ID: id, Value: t, Labels: drawLabels(rng, pop, c)})
			id++
		}
	}
	sort.Slice(posts, func(i, j int) bool {
		if posts[i].Value != posts[j].Value {
			return posts[i].Value < posts[j].Value
		}
		return posts[i].ID < posts[j].ID
	})
	return posts
}

// drawLabels samples a post's label set: 1 + Poisson(Overlap−1) distinct
// labels (capped at NumLabels), drawn by popularity.
func drawLabels(rng *rand.Rand, pop *Zipf, c PostStreamConfig) []core.Label {
	k := 1 + poisson(rng, c.Overlap-1)
	if k > c.NumLabels {
		k = c.NumLabels
	}
	seen := make(map[int]bool, k)
	labels := make([]core.Label, 0, k)
	for len(labels) < k {
		a := pop.Sample(rng)
		if seen[a] {
			// Fall back to a uniform draw to terminate quickly under
			// heavy skew.
			a = rng.Intn(c.NumLabels)
			if seen[a] {
				continue
			}
		}
		seen[a] = true
		labels = append(labels, core.Label(a))
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	return labels
}
