package synth

import (
	"math"
	"math/rand"
	"sort"

	"mqdp/internal/spatial"
)

// City is a population center emitting geotagged posts.
type City struct {
	Name     string
	Lat, Lon float64
	// Weight is the relative share of posts from this city.
	Weight float64
	// SpreadKm is the 1-σ scatter of post locations around the center.
	SpreadKm float64
}

// DefaultCities is a small US-centric city set for the spatiotemporal
// extension experiments.
func DefaultCities() []City {
	return []City{
		{Name: "new-york", Lat: 40.7128, Lon: -74.0060, Weight: 4, SpreadKm: 15},
		{Name: "los-angeles", Lat: 34.0522, Lon: -118.2437, Weight: 3, SpreadKm: 20},
		{Name: "chicago", Lat: 41.8781, Lon: -87.6298, Weight: 2, SpreadKm: 12},
		{Name: "houston", Lat: 29.7604, Lon: -95.3698, Weight: 1.5, SpreadKm: 15},
		{Name: "seattle", Lat: 47.6062, Lon: -122.3321, Weight: 1, SpreadKm: 10},
	}
}

// GeoStreamConfig shapes a geotagged post stream.
type GeoStreamConfig struct {
	Duration   float64 // seconds; default 3600
	RatePerSec float64 // default 0.5
	NumLabels  int     // default 2
	Overlap    float64 // mean labels per post; default 1.3
	Cities     []City  // default DefaultCities()
	Seed       int64
}

func (c GeoStreamConfig) withDefaults() GeoStreamConfig {
	if c.Duration <= 0 {
		c.Duration = 3600
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 0.5
	}
	if c.NumLabels <= 0 {
		c.NumLabels = 2
	}
	if c.Overlap < 1 {
		c.Overlap = 1.3
	}
	if len(c.Cities) == 0 {
		c.Cities = DefaultCities()
	}
	return c
}

// GenerateGeoPosts produces a time-ordered geotagged stream: arrivals are
// Poisson, each post is placed near a weight-sampled city with Gaussian
// scatter and labeled like GeneratePosts.
func GenerateGeoPosts(cfg GeoStreamConfig) []spatial.Post {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	totalW := 0.0
	for _, city := range c.Cities {
		totalW += city.Weight
	}
	pickCity := func() City {
		u := rng.Float64() * totalW
		for _, city := range c.Cities {
			if u -= city.Weight; u <= 0 {
				return city
			}
		}
		return c.Cities[len(c.Cities)-1]
	}
	pop := NewZipf(c.NumLabels, 0.7)
	pcfg := PostStreamConfig{NumLabels: c.NumLabels, Overlap: c.Overlap}
	var posts []spatial.Post
	id := int64(0)
	for sec := 0.0; sec < c.Duration; sec++ {
		n := poisson(rng, c.RatePerSec)
		for k := 0; k < n; k++ {
			t := sec + rng.Float64()
			if t >= c.Duration {
				t = c.Duration - 1e-6
			}
			city := pickCity()
			// ~111 km per degree latitude; longitude shrinks by cos(lat).
			dLat := rng.NormFloat64() * city.SpreadKm / 111.0
			dLon := rng.NormFloat64() * city.SpreadKm / 111.0 / cosDeg(city.Lat)
			posts = append(posts, spatial.Post{
				ID:     id,
				Time:   t,
				Lat:    clampLat(city.Lat + dLat),
				Lon:    wrapLon(city.Lon + dLon),
				Labels: drawLabels(rng, pop, pcfg),
			})
			id++
		}
	}
	sort.Slice(posts, func(i, j int) bool {
		if posts[i].Time != posts[j].Time {
			return posts[i].Time < posts[j].Time
		}
		return posts[i].ID < posts[j].ID
	})
	return posts
}

func cosDeg(deg float64) float64 {
	c := math.Cos(deg * math.Pi / 180)
	if c < 0.1 {
		c = 0.1 // avoid polar blow-ups
	}
	return c
}

func clampLat(lat float64) float64 {
	if lat > 90 {
		return 90
	}
	if lat < -90 {
		return -90
	}
	return lat
}

func wrapLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}
