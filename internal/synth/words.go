// Package synth generates the synthetic datasets that stand in for the
// paper's collected data (§7.1): a topical news corpus (→ LDA → query
// topics), a 24-hour diurnal tweet stream with bursts and near-duplicates,
// and an abstract post stream (timestamps + labels only) whose arrival rate,
// label skew and post-overlap rate are directly controllable — the knobs the
// evaluation sweeps. All generators are deterministic per seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// syllables for pronounceable synthetic vocabulary.
var (
	onsets = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br", "ch", "cl", "dr", "fl", "gr", "pl", "pr", "sh", "sl", "st", "th", "tr"}
	nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "ou"}
	codas  = []string{"", "", "", "l", "m", "n", "r", "s", "t", "x", "nd", "nt", "rk", "st"}
)

// word builds one pronounceable fake word of 2-3 syllables.
func word(rng *rand.Rand) string {
	var b strings.Builder
	n := 2 + rng.Intn(2)
	for i := 0; i < n; i++ {
		b.WriteString(onsets[rng.Intn(len(onsets))])
		b.WriteString(nuclei[rng.Intn(len(nuclei))])
		if i == n-1 {
			b.WriteString(codas[rng.Intn(len(codas))])
		}
	}
	return b.String()
}

// Vocabulary is a set of distinct synthetic words.
func vocabulary(rng *rand.Rand, n int) []string {
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		w := word(rng)
		if seen[w] {
			w = fmt.Sprintf("%s%d", w, len(out))
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}

// Zipf draws indexes in [0, n) with P(i) ∝ 1/(i+1)^s. It precomputes the
// CDF, so sampling is a binary search.
type Zipf struct {
	cdf []float64
}

// NewZipf returns a sampler over n items with exponent s ≥ 0 (s = 0 is
// uniform).
func NewZipf(n int, s float64) *Zipf {
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one index using rng.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// anchor words give each broad topic a recognizable core vocabulary, so
// Table 1 reproductions read like the paper's examples.
var broadAnchors = map[string][]string{
	"politics":      {"president", "senate", "congress", "election", "vote", "campaign", "policy", "governor", "debate", "bill"},
	"sports":        {"game", "team", "season", "coach", "playoff", "score", "league", "championship", "player", "finals"},
	"business":      {"market", "stocks", "earnings", "shares", "investor", "trading", "profit", "merger", "economy", "bank"},
	"technology":    {"software", "startup", "device", "launch", "data", "mobile", "platform", "chip", "cloud", "app"},
	"entertainment": {"movie", "album", "premiere", "celebrity", "trailer", "concert", "award", "studio", "actor", "song"},
	"health":        {"study", "patients", "disease", "vaccine", "hospital", "treatment", "drug", "doctors", "outbreak", "clinical"},
	"science":       {"research", "telescope", "species", "climate", "energy", "physics", "mission", "discovery", "experiment", "genome"},
	"world":         {"minister", "border", "treaty", "embassy", "summit", "sanctions", "refugees", "ceasefire", "diplomat", "parliament"},
	"weather":       {"storm", "forecast", "hurricane", "flood", "temperature", "drought", "snowfall", "tornado", "rainfall", "heatwave"},
	"crime":         {"police", "arrest", "trial", "verdict", "investigation", "suspect", "charges", "court", "sentence", "fraud"},
}

// BroadTopicNames returns the available broad-topic names in a fixed order.
func BroadTopicNames() []string {
	return []string{"politics", "sports", "business", "technology", "entertainment",
		"health", "science", "world", "weather", "crime"}
}
