package synth

import (
	"fmt"
	"math/rand"

	"mqdp/internal/match"
)

// Topic is one planted topic: a named keyword set inside a broad topic.
type Topic struct {
	Name     string
	Broad    int // index into World.Broad
	Keywords []string
}

// World is the planted topic universe shared by the news corpus and the
// tweet stream, mirroring §7.1's setup: topics grouped into broad topics
// (politics, sports, ...), each topic a set of keywords.
type World struct {
	Broad      []string // broad topic names
	Topics     []Topic
	Background []string // non-topical filler vocabulary
	// ByBroad[g] lists the topic indexes of broad topic g.
	ByBroad [][]int
}

// WorldConfig sizes a World. Zero values select defaults matching a scaled-
// down version of the paper (10 broad topics, ~22 topics each ≈ 215 usable
// topics, 40 keywords per topic).
type WorldConfig struct {
	BroadTopics      int // default 10 (max 10: the anchored ones)
	TopicsPerBroad   int // default 8
	KeywordsPerTopic int // default 40
	BackgroundWords  int // default 2000
	Seed             int64
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.BroadTopics <= 0 {
		c.BroadTopics = 10
	}
	if c.BroadTopics > len(broadAnchors) {
		c.BroadTopics = len(broadAnchors)
	}
	if c.TopicsPerBroad <= 0 {
		c.TopicsPerBroad = 8
	}
	if c.KeywordsPerTopic <= 0 {
		c.KeywordsPerTopic = 40
	}
	if c.BackgroundWords <= 0 {
		c.BackgroundWords = 2000
	}
	return c
}

// NewWorld plants a topic universe. Each topic mixes a couple of its broad
// topic's anchor words with its own synthetic vocabulary; topics within a
// broad topic share the anchors, giving realistic keyword overlap between
// related queries.
func NewWorld(cfg WorldConfig) *World {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	w := &World{
		Broad:      BroadTopicNames()[:c.BroadTopics],
		Background: vocabulary(rng, c.BackgroundWords),
		ByBroad:    make([][]int, c.BroadTopics),
	}
	for g, broad := range w.Broad {
		anchors := broadAnchors[broad]
		for t := 0; t < c.TopicsPerBroad; t++ {
			// 3 anchors + unique synthetic words.
			kws := make([]string, 0, c.KeywordsPerTopic)
			for k := 0; k < 3 && k < len(anchors); k++ {
				kws = append(kws, anchors[(t+k)%len(anchors)])
			}
			own := vocabulary(rng, c.KeywordsPerTopic-len(kws))
			for i, kw := range own {
				// Prefix with a topic tag to keep cross-broad vocabularies
				// disjoint while staying pronounceable.
				own[i] = fmt.Sprintf("%s%s", kw, suffix(g, t))
			}
			kws = append(kws, own...)
			idx := len(w.Topics)
			w.Topics = append(w.Topics, Topic{
				Name:     fmt.Sprintf("%s-%d", broad, t),
				Broad:    g,
				Keywords: kws,
			})
			w.ByBroad[g] = append(w.ByBroad[g], idx)
		}
	}
	return w
}

// suffix distinguishes topic vocabularies without breaking tokenization.
func suffix(g, t int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return string([]byte{letters[g%26], letters[t%26]})
}

// MatchTopics converts a subset of world topics (by index) into match.Topic
// queries with uniform keyword weights, the shape the matcher consumes.
func (w *World) MatchTopics(topicIdx []int) []match.Topic {
	out := make([]match.Topic, 0, len(topicIdx))
	for _, ti := range topicIdx {
		t := w.Topics[ti]
		kws := make([]match.Keyword, len(t.Keywords))
		for i, k := range t.Keywords {
			kws[i] = match.Keyword{Text: k, Weight: 1 / float64(i+1)}
		}
		out = append(out, match.Topic{Name: t.Name, Keywords: kws})
	}
	return out
}

// SampleLabelSet draws a user profile exactly as §7.1: first a broad topic
// uniformly at random, then size distinct topics within it. If the broad
// topic has fewer topics than size, it is padded from other broad topics.
func (w *World) SampleLabelSet(rng *rand.Rand, size int) []int {
	g := rng.Intn(len(w.Broad))
	pool := append([]int(nil), w.ByBroad[g]...)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) >= size {
		return pool[:size]
	}
	// Pad with topics from other broad topics (rare: size > topics/broad).
	extra := make([]int, 0, size-len(pool))
	for ti := range w.Topics {
		if w.Topics[ti].Broad != g {
			extra = append(extra, ti)
		}
	}
	rng.Shuffle(len(extra), func(i, j int) { extra[i], extra[j] = extra[j], extra[i] })
	need := size - len(pool)
	if need > len(extra) {
		need = len(extra)
	}
	return append(pool, extra[:need]...)
}
