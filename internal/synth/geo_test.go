package synth

import (
	"testing"

	"mqdp/internal/spatial"
)

func TestGenerateGeoPostsShape(t *testing.T) {
	posts := GenerateGeoPosts(GeoStreamConfig{Duration: 1200, RatePerSec: 0.5, NumLabels: 3, Seed: 1})
	if len(posts) < 400 || len(posts) > 800 {
		t.Fatalf("posts = %d, want ≈600", len(posts))
	}
	for i, p := range posts {
		if i > 0 && p.Time < posts[i-1].Time {
			t.Fatal("geo posts out of time order")
		}
		if p.Lat < -90 || p.Lat > 90 || p.Lon < -180 || p.Lon > 180 {
			t.Fatalf("post %d at invalid coordinates (%v, %v)", p.ID, p.Lat, p.Lon)
		}
		if len(p.Labels) == 0 {
			t.Fatal("geo post without labels")
		}
	}
	if _, err := spatial.NewInstance(posts, 3); err != nil {
		t.Fatalf("generated geo posts rejected: %v", err)
	}
}

func TestGenerateGeoPostsNearCities(t *testing.T) {
	posts := GenerateGeoPosts(GeoStreamConfig{Duration: 600, RatePerSec: 0.5, Seed: 2})
	cities := DefaultCities()
	for _, p := range posts {
		near := false
		for _, c := range cities {
			if spatial.Haversine(p.Lat, p.Lon, c.Lat, c.Lon) < 6*c.SpreadKm {
				near = true
				break
			}
		}
		if !near {
			t.Fatalf("post %d at (%v, %v) is far from every city", p.ID, p.Lat, p.Lon)
		}
	}
}

func TestGenerateGeoPostsDeterministic(t *testing.T) {
	a := GenerateGeoPosts(GeoStreamConfig{Duration: 300, Seed: 3})
	b := GenerateGeoPosts(GeoStreamConfig{Duration: 300, Seed: 3})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Lat != b[i].Lat || a[i].Time != b[i].Time {
			t.Fatal("same seed produced different geo streams")
		}
	}
}

func TestWrapAndClampHelpers(t *testing.T) {
	if got := wrapLon(190); got != -170 {
		t.Errorf("wrapLon(190) = %v", got)
	}
	if got := wrapLon(-190); got != 170 {
		t.Errorf("wrapLon(-190) = %v", got)
	}
	if clampLat(95) != 90 || clampLat(-95) != -90 || clampLat(45) != 45 {
		t.Error("clampLat misbehaved")
	}
	if cosDeg(89.999) < 0.1 {
		t.Error("cosDeg should floor near the poles")
	}
}
