package synth

import (
	"math/rand"
	"strings"
)

// NewsConfig sizes the synthetic news corpus that substitutes for the
// paper's RSS crawl (§7.1: >1M articles feeding Mallet LDA).
type NewsConfig struct {
	Articles     int // default 2000
	WordsPerDoc  int // default 120
	TopicsPerDoc int // default 2
	// NoiseRatio is the fraction of background (non-topical) words per
	// article. Default 0.3.
	NoiseRatio float64
	Seed       int64
}

func (c NewsConfig) withDefaults() NewsConfig {
	if c.Articles <= 0 {
		c.Articles = 2000
	}
	if c.WordsPerDoc <= 0 {
		c.WordsPerDoc = 120
	}
	if c.TopicsPerDoc <= 0 {
		c.TopicsPerDoc = 2
	}
	if c.NoiseRatio <= 0 {
		c.NoiseRatio = 0.3
	}
	return c
}

// Article is one synthetic news article.
type Article struct {
	Text string
	// Topics are the planted topic indexes the article draws from.
	Topics []int
}

// NewsCorpus generates articles as mixtures of planted topic vocabularies
// plus background noise — the generative process LDA assumes, so the lda
// package can recover the planted topics as §7.1's Mallet run recovered
// real news topics.
func NewsCorpus(w *World, cfg NewsConfig) []Article {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	topicPop := NewZipf(len(w.Topics), 0.8)
	articles := make([]Article, c.Articles)
	for d := range articles {
		// Draw the article's topics, biased toward one broad topic.
		primary := topicPop.Sample(rng)
		topics := []int{primary}
		for len(topics) < c.TopicsPerDoc {
			var next int
			if rng.Float64() < 0.7 { // related topic from the same broad topic
				peers := w.ByBroad[w.Topics[primary].Broad]
				next = peers[rng.Intn(len(peers))]
			} else {
				next = topicPop.Sample(rng)
			}
			dup := false
			for _, t := range topics {
				if t == next {
					dup = true
					break
				}
			}
			if !dup {
				topics = append(topics, next)
			}
		}
		words := make([]string, 0, c.WordsPerDoc)
		for len(words) < c.WordsPerDoc {
			if rng.Float64() < c.NoiseRatio {
				words = append(words, w.Background[rng.Intn(len(w.Background))])
				continue
			}
			t := w.Topics[topics[rng.Intn(len(topics))]]
			// Keyword ranks are roughly Zipfian inside a topic.
			k := int(float64(len(t.Keywords)) * rng.Float64() * rng.Float64())
			words = append(words, t.Keywords[k])
		}
		articles[d] = Article{Text: strings.Join(words, " "), Topics: topics}
	}
	return articles
}
