package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mqdp/internal/faultinject"
	"mqdp/internal/match"
)

// --- gap reporting (the headline bugfix) ---

// TestPollGapReporting pins the no-silent-splice contract at the Server
// API: a cursor older than the retained buffer returns the kept tail
// TOGETHER with a *GapError naming the lost range, so a slow poller can
// tell "nothing new" from "you missed seqs 6..12".
func TestPollGapReporting(t *testing.T) {
	old := maxEmissionBuffer
	maxEmissionBuffer = 8
	defer func() { maxEmissionBuffer = old }()

	s := New(0, 0)
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Ingest(Post{ID: int64(i + 1), Time: float64(i), Text: fmt.Sprintf("obama update %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// 20 emissions, buffer retains 13..20.
	es, err := s.Emissions(id, 5, 0)
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("stale cursor: err = %v, want *GapError", err)
	}
	if !errors.Is(err, ErrGap) {
		t.Errorf("gap error does not unwrap to ErrGap: %v", err)
	}
	if gap.GapFrom != 6 || gap.FirstSeq != 13 {
		t.Errorf("gap = [%d, %d), want [6, 13)", gap.GapFrom, gap.FirstSeq)
	}
	if len(es) != 8 || es[0].Seq != 13 || es[7].Seq != 20 {
		t.Fatalf("stale cursor must still return the retained tail, got %d emissions", len(es))
	}
	// Cursor exactly at the trim boundary: nothing was missed.
	if _, err := s.Emissions(id, 12, 0); err != nil {
		t.Errorf("after=12 (first retained - 1): err = %v, want nil", err)
	}
	// Cursor inside the window: plain poll.
	es, err = s.Emissions(id, 15, 0)
	if err != nil || len(es) != 5 || es[0].Seq != 16 {
		t.Errorf("after=15 → (%d emissions, %v), want 16..20", len(es), err)
	}
	// Gap plus limit: the gap is reported even when the tail is paged.
	es, err = s.Emissions(id, 0, 3)
	if !errors.As(err, &gap) || gap.GapFrom != 1 || gap.FirstSeq != 13 {
		t.Errorf("after=0 limit=3: err = %v, want gap [1, 13)", err)
	}
	if len(es) != 3 || es[0].Seq != 13 {
		t.Errorf("after=0 limit=3 tail = %d emissions from %v", len(es), es)
	}
}

// TestPollGapEmptyBuffer covers the all-gc'd case: every emission has
// been trimmed, so the poll has no tail to return — it must still report
// where the live stream resumes instead of answering a silent empty 200.
func TestPollGapEmptyBuffer(t *testing.T) {
	old := maxEmissionBuffer
	maxEmissionBuffer = 0
	defer func() { maxEmissionBuffer = old }()

	s := New(0, 0)
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Ingest(Post{ID: int64(i + 1), Time: float64(i), Text: fmt.Sprintf("obama update %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	es, err := s.Emissions(id, 0, 0)
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("empty-buffer stale cursor: err = %v, want *GapError", err)
	}
	if gap.GapFrom != 1 || gap.FirstSeq != 6 {
		t.Errorf("gap = [%d, %d), want [1, 6)", gap.GapFrom, gap.FirstSeq)
	}
	if len(es) != 0 {
		t.Errorf("empty buffer returned %d emissions", len(es))
	}
	// A caught-up cursor on the empty buffer is NOT a gap.
	if _, err := s.Emissions(id, 5, 0); err != nil {
		t.Errorf("caught-up cursor: err = %v, want nil", err)
	}
}

// --- hub wakeups and terminal states ---

// TestWaitEmissionsWakeAndDrain exercises the blocking poll: a parked
// waiter is woken by the next delivery, terminal states drain pending
// emissions before reporting the end, and each end reason is typed.
func TestWaitEmissionsWakeAndDrain(t *testing.T) {
	s := New(0, 0)
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}

	// Park a waiter, then ingest: it must wake with exactly that emission.
	type res struct {
		es  []Emission
		err error
	}
	got := make(chan res, 1)
	go func() {
		es, err := s.WaitEmissions(context.Background(), id, 0, 0)
		got <- res{es, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	if err := s.Ingest(Post{ID: 1, Time: 0, Text: "obama speaks"}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.err != nil || len(r.es) != 1 || r.es[0].Seq != 1 {
			t.Fatalf("woken waiter got (%v, %v), want seq 1", r.es, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after delivery")
	}

	// Flush terminates, but a cursor with pending data drains first …
	s.Flush()
	if es, err := s.WaitEmissions(context.Background(), id, 0, 0); err != nil || len(es) != 1 {
		t.Fatalf("post-flush drain got (%v, %v), want the buffered emission", es, err)
	}
	// … and only the caught-up cursor sees the typed end.
	_, err = s.WaitEmissions(context.Background(), id, 1, 0)
	var end *StreamEndError
	if !errors.As(err, &end) || end.Reason != EndReasonFlushed {
		t.Fatalf("caught-up wait after flush: err = %v, want StreamEndError(flushed)", err)
	}
	if !errors.Is(err, ErrStreamEnded) {
		t.Errorf("end error does not unwrap to ErrStreamEnded: %v", err)
	}
}

// TestUnsubscribeWakesBlockedWaiter pins the immediate-wakeup contract:
// a parked waiter must not sleep through its subscription's removal.
func TestUnsubscribeWakesBlockedWaiter(t *testing.T) {
	s := New(0, 0)
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics()})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, werr := s.WaitEmissions(context.Background(), id, 0, 0)
		got <- werr
	}()
	time.Sleep(20 * time.Millisecond)
	if err := s.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	select {
	case werr := <-got:
		var end *StreamEndError
		if !errors.As(werr, &end) || end.Reason != EndReasonUnsubscribed {
			t.Fatalf("woken waiter err = %v, want StreamEndError(unsubscribed)", werr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unsubscribe left the waiter parked")
	}
}

// TestLongPollHTTP drives the wait= form over HTTP: a blocked long-poll
// completes as soon as an emission lands, and an unsubscribe mid-wait
// answers 409 with the X-Stream-End reason instead of hanging.
func TestLongPollHTTP(t *testing.T) {
	ts, core := newTestServer(t)
	resp := postJSON(t, ts.URL+"/subscriptions", SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	var created map[string]int64
	_ = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	id := created["id"]

	type pollRes struct {
		status  int
		endHdr  string
		es      []Emission
		elapsed time.Duration
	}
	longPoll := func(after int64) chan pollRes {
		ch := make(chan pollRes, 1)
		go func() {
			start := time.Now()
			r, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions?after=%d&wait=10s", ts.URL, id, after))
			if err != nil {
				t.Error(err)
				ch <- pollRes{}
				return
			}
			defer r.Body.Close()
			var es []Emission
			_ = json.NewDecoder(r.Body).Decode(&es)
			ch <- pollRes{r.StatusCode, r.Header.Get("X-Stream-End"), es, time.Since(start)}
		}()
		return ch
	}

	first := longPoll(0)
	time.Sleep(30 * time.Millisecond)
	resp = postJSON(t, ts.URL+"/ingest", Post{ID: 1, Time: 0, Text: "obama live"})
	resp.Body.Close()
	select {
	case r := <-first:
		if r.status != http.StatusOK || len(r.es) != 1 {
			t.Fatalf("long-poll got status %d, %d emissions", r.status, len(r.es))
		}
		if r.elapsed > 5*time.Second {
			t.Fatalf("long-poll took %v, should have woken on delivery", r.elapsed)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("long-poll never completed after ingest")
	}

	second := longPoll(1)
	time.Sleep(30 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/subscriptions/%d", ts.URL, id), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	select {
	case r := <-second:
		if r.status != http.StatusConflict || r.endHdr != EndReasonUnsubscribed {
			t.Fatalf("unsubscribed long-poll got status %d, X-Stream-End %q; want 409/unsubscribed", r.status, r.endHdr)
		}
		if r.elapsed > 5*time.Second {
			t.Fatalf("unsubscribe left the long-poll blocked for %v", r.elapsed)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("unsubscribe never woke the long-poll")
	}
	_ = core
}

// TestFlushWakesIdleStream is the shutdown-mid-stream case: an SSE
// client parked on an idle subscription must receive the terminal end
// event the moment the server flushes, not when a timeout fires.
func TestFlushWakesIdleStream(t *testing.T) {
	ts, core := newTestServer(t)
	cl := NewClient(ts.URL)
	id, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics()})
	if err != nil {
		t.Fatal(err)
	}
	var end atomic.Pointer[StreamEndError]
	done := make(chan error, 1)
	go func() {
		done <- cl.Stream(context.Background(), id, 0, func(ev StreamEvent) error {
			if ev.End != nil {
				end.Store(ev.End)
			}
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond) // stream parks idle
	start := time.Now()
	core.Flush()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stream returned %v, want nil after end event", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flush left the idle stream parked")
	}
	if e := end.Load(); e == nil || e.Reason != EndReasonFlushed {
		t.Fatalf("end event = %+v, want reason flushed", end.Load())
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("end event took %v after flush", time.Since(start))
	}
}

// TestStreamQuarantineEndsStream pins satellite 3: a live SSE stream on
// a subscription whose pipeline panics receives the explicit quarantined
// terminal event rather than going silent.
func TestStreamQuarantineEndsStream(t *testing.T) {
	core := New(0, 0)
	inj, err := faultinject.ParseSchedule("sub1.process@2=panic:boom", 0)
	if err != nil {
		t.Fatal(err)
	}
	core.SetFaultInjector(inj)
	ts := httptest.NewServer(Handler(core))
	defer ts.Close()
	cl := NewClient(ts.URL)
	id, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	var reasons []string
	var seqs []int64
	done := make(chan error, 1)
	go func() {
		done <- cl.Stream(context.Background(), id, 0, func(ev StreamEvent) error {
			switch {
			case ev.Emission != nil:
				seqs = append(seqs, ev.Emission.Seq)
			case ev.End != nil:
				reasons = append(reasons, ev.End.Reason)
			}
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond)
	// Match #1 emits; match #2 panics the pipeline and quarantines.
	for i := 0; i < 3; i++ {
		if err := core.Ingest(Post{ID: int64(i + 1), Time: float64(i), Text: fmt.Sprintf("obama %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stream returned %v, want nil after quarantine end", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("quarantine never terminated the live stream")
	}
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Errorf("pre-quarantine emissions = %v, want [1]", seqs)
	}
	if len(reasons) != 1 || reasons[0] != EndReasonQuarantined {
		t.Errorf("end reasons = %v, want [quarantined]", reasons)
	}
}

// --- push/poll equivalence ---

// streamCapture collects one client's view of a subscription: which seqs
// arrived, which ranges were reported lost, each emission's exact bytes,
// and the terminal reasons seen.
type streamCapture struct {
	seqs    []int64
	lost    [][2]int64 // inclusive [from, to] ranges reported as gaps
	bySeq   map[int64]string
	reasons []string
	topks   int
}

func newStreamCapture() *streamCapture {
	return &streamCapture{bySeq: map[int64]string{}}
}

func (c *streamCapture) emission(t *testing.T, e *Emission) {
	t.Helper()
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	c.seqs = append(c.seqs, e.Seq)
	c.bySeq[e.Seq] = string(b)
}

func (c *streamCapture) gap(g *GapError) {
	c.lost = append(c.lost, [2]int64{g.GapFrom, g.FirstSeq - 1})
}

// verifyPartition asserts that received seqs plus reported-lost ranges
// exactly cover 1..total with no overlap — the "nothing silently lost,
// nothing duplicated" property.
func (c *streamCapture) verifyPartition(t *testing.T, total int64) {
	t.Helper()
	covered := make(map[int64]string, total)
	for _, s := range c.seqs {
		if covered[s] != "" {
			t.Fatalf("seq %d delivered twice (first as %s)", s, covered[s])
		}
		covered[s] = "delivered"
	}
	for _, r := range c.lost {
		for s := r[0]; s <= r[1]; s++ {
			if covered[s] == "delivered" {
				t.Fatalf("seq %d both delivered and reported lost", s)
			}
			// Overlapping gap reports are fine (a reconnect may re-announce
			// a wider gap); double-counting only matters against delivery.
			covered[s] = "lost"
		}
	}
	for s := int64(1); s <= total; s++ {
		if covered[s] == "" {
			t.Fatalf("seq %d neither delivered nor reported lost (silent gap!)", s)
		}
	}
	for i := 1; i < len(c.seqs); i++ {
		if c.seqs[i] <= c.seqs[i-1] {
			t.Fatalf("delivery out of order: %d after %d", c.seqs[i], c.seqs[i-1])
		}
	}
}

// TestPushPollDeterminism is the property test: for any worker count and
// any gc horizon, the pushed emission sequence and the poll-with-resume
// sequence are byte-identical where delivered, every undelivered seq is
// explicitly reported as a gap, and all runs agree with the workers=1
// reference per seq.
func TestPushPollDeterminism(t *testing.T) {
	texts := []string{
		"obama meets the senate", "senate floor vote tonight", "obama presser at noon",
		"weather is nice today", "congress recess begins", "president obama speech",
		"lunch was fine", "senate committee hearing",
	}
	const nPosts = 160
	posts := make([]Post, nPosts)
	for i := range posts {
		posts[i] = Post{ID: int64(i + 1), Time: float64(i) * 0.7, Text: fmt.Sprintf("%s %d", texts[i%len(texts)], i)}
	}

	var refBySeq map[int64]string
	var refTotal int64
	for _, cfg := range []struct{ workers, buffer int }{
		{1, 1 << 16}, {2, 1 << 16}, {4, 1 << 16}, {1, 8}, {4, 8},
	} {
		name := fmt.Sprintf("workers=%d,buffer=%d", cfg.workers, cfg.buffer)
		t.Run(name, func(t *testing.T) {
			old := maxEmissionBuffer
			maxEmissionBuffer = cfg.buffer
			defer func() { maxEmissionBuffer = old }()

			core := New(0, 0)
			core.SetParallelism(cfg.workers)
			ts := httptest.NewServer(Handler(core))
			defer ts.Close()
			cl := NewClient(ts.URL)
			cl.Retry = &RetryPolicy{MaxAttempts: 4, BackoffBase: time.Millisecond, BackoffCap: 8 * time.Millisecond, Seed: 7}
			id, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 20, Tau: 5})
			if err != nil {
				t.Fatal(err)
			}

			// Push: a live stream racing the ingest.
			push := newStreamCapture()
			streamDone := make(chan error, 1)
			go func() {
				streamDone <- cl.Stream(context.Background(), id, 0, func(ev StreamEvent) error {
					switch {
					case ev.Emission != nil:
						push.emission(t, ev.Emission)
					case ev.Gap != nil:
						push.gap(ev.Gap)
					case ev.TopK != nil:
						push.topks++
					case ev.End != nil:
						push.reasons = append(push.reasons, ev.End.Reason)
					}
					return nil
				})
			}()
			for _, p := range posts {
				if err := core.Ingest(p); err != nil {
					t.Fatal(err)
				}
			}
			core.Flush()
			if err := <-streamDone; err != nil {
				t.Fatalf("stream: %v", err)
			}

			st, err := cl.SubscriptionStats(id)
			if err != nil {
				t.Fatal(err)
			}
			total := st.Emitted
			if total == 0 {
				t.Fatal("workload produced no emissions")
			}

			// Poll with resume, after the fact, in small pages.
			poll := newStreamCapture()
			after := int64(0)
			for {
				es, err := cl.Emissions(id, after, 7)
				var gap *GapError
				if errors.As(err, &gap) {
					poll.gap(gap)
					after = gap.FirstSeq - 1
					err = nil
				}
				if err != nil {
					t.Fatalf("poll resume: %v", err)
				}
				if len(es) == 0 {
					break
				}
				for i := range es {
					poll.emission(t, &es[i])
					after = es[i].Seq
				}
			}

			push.verifyPartition(t, total)
			poll.verifyPartition(t, total)
			if len(push.reasons) != 1 || push.reasons[0] != EndReasonFlushed {
				t.Errorf("push end reasons = %v, want [flushed]", push.reasons)
			}
			if push.topks == 0 {
				t.Error("push stream never delivered a top-k view")
			}
			// Where both saw a seq, the bytes must agree.
			for seq, pb := range push.bySeq {
				if qb, ok := poll.bySeq[seq]; ok && qb != pb {
					t.Fatalf("seq %d differs between push and poll:\n  push %s\n  poll %s", seq, pb, qb)
				}
			}
			if cfg.buffer > nPosts {
				// Nothing can be trimmed: both views must be complete.
				if len(push.lost)+len(poll.lost) != 0 {
					t.Fatalf("gap reported with an untrimmable buffer: push %v poll %v", push.lost, poll.lost)
				}
				if int64(len(poll.bySeq)) != total || int64(len(push.bySeq)) != total {
					t.Fatalf("incomplete delivery with untrimmable buffer: push %d poll %d of %d",
						len(push.bySeq), len(poll.bySeq), total)
				}
			}
			// Cross-run determinism: every delivered seq matches the
			// workers=1 big-buffer reference byte for byte.
			if refBySeq == nil {
				refBySeq, refTotal = poll.bySeq, total
				return
			}
			if total != refTotal {
				t.Fatalf("emitted %d, reference emitted %d", total, refTotal)
			}
			for _, cap := range []*streamCapture{push, poll} {
				for seq, b := range cap.bySeq {
					if rb := refBySeq[seq]; rb != b {
						t.Fatalf("seq %d drifts from reference:\n  got  %s\n  want %s", seq, b, rb)
					}
				}
			}
		})
	}
}

// TestStreamFallbackWhenPushDisabled verifies the 501 path: with SSE
// switched off, Client.Stream degrades to long-polling and still yields
// the identical event sequence, including the terminal end.
func TestStreamFallbackWhenPushDisabled(t *testing.T) {
	ts, core := newTestServer(t)
	core.SetPush(false)
	cl := NewClient(ts.URL)
	id, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	capt := newStreamCapture()
	done := make(chan error, 1)
	go func() {
		done <- cl.Stream(context.Background(), id, 0, func(ev StreamEvent) error {
			switch {
			case ev.Emission != nil:
				capt.emission(t, ev.Emission)
			case ev.Gap != nil:
				capt.gap(ev.Gap)
			case ev.TopK != nil:
				capt.topks++
			case ev.End != nil:
				capt.reasons = append(capt.reasons, ev.End.Reason)
			}
			return nil
		})
	}()
	for i := 0; i < 10; i++ {
		if err := core.Ingest(Post{ID: int64(i + 1), Time: float64(i), Text: fmt.Sprintf("obama %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	core.Flush()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fallback stream returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fallback stream never terminated after flush")
	}
	capt.verifyPartition(t, 10)
	if len(capt.reasons) != 1 || capt.reasons[0] != EndReasonFlushed {
		t.Errorf("fallback end reasons = %v, want [flushed]", capt.reasons)
	}
	if capt.topks == 0 {
		t.Error("fallback never delivered a top-k view")
	}
}

// TestMaxStreamsCap pins the overload behavior: streams beyond the cap
// are refused with 503 + Retry-After, and slots free on disconnect.
func TestMaxStreamsCap(t *testing.T) {
	ts, core := newTestServer(t)
	core.SetMaxStreams(1)
	cl := NewClient(ts.URL)
	id, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := make(chan error, 1)
	go func() {
		first <- cl.Stream(ctx, id, 0, func(StreamEvent) error { return nil })
	}()
	waitFor(t, func() bool { return core.ActiveStreams() == 1 })

	resp, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/stream", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over-cap stream got status %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	cancel()
	if err := <-first; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled stream returned %v", err)
	}
	waitFor(t, func() bool { return core.ActiveStreams() == 0 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- concurrency hammer ---

// TestStreamChurnHammer runs concurrent subscribe/stream/long-poll/
// unsubscribe churn against a live ingest feed. It asserts nothing about
// delivery contents (the determinism test does) — its job is to drive
// the hub's lock/wakeup paths under -race.
func TestStreamChurnHammer(t *testing.T) {
	core := New(0, 0)
	core.SetParallelism(4)
	ts := httptest.NewServer(Handler(core))
	defer ts.Close()
	cl := NewClient(ts.URL)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// One ingester keeps time strictly increasing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		now := 0.0
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			now += 0.5
			_ = core.Ingest(Post{ID: int64(i), Time: now, Text: fmt.Sprintf("obama senate %d", i)})
		}
	}()

	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
				if err != nil {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				switch g % 3 {
				case 0:
					_ = cl.Stream(ctx, id, 0, func(StreamEvent) error { return nil })
				case 1:
					_, _ = core.WaitEmissions(ctx, id, 0, 0)
				case 2:
					_, _ = cl.TopKContext(ctx, id)
					_, _ = cl.EmissionsContext(ctx, id, 0, 0)
				}
				cancel()
				_ = cl.Unsubscribe(id)
			}
		}(g)
	}

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	core.Flush()
	if n := core.ActiveStreams(); n != 0 {
		t.Fatalf("active streams after churn = %d, want 0", n)
	}
}

// --- soak: idle streams must be free ---

// TestPushSoak holds many idle SSE streams plus a few hot ones through
// sustained ingest and checks the resource envelope stays flat: goroutine
// count bounded by one per stream, and the active-stream gauge returns to
// zero once the clients disconnect. Run directly via `make push-soak`.
func TestPushSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short")
	}
	core := New(0, 0)
	core.SetParallelism(4)
	ts := httptest.NewServer(Handler(core))
	defer ts.Close()
	cl := NewClient(ts.URL)

	// 8 subscriptions; idle streams watch topics the feed never matches.
	idleID, err := cl.Subscribe(SubscriptionConfig{Topics: quietTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	hotID, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}

	const idleStreams, hotStreams = 48, 4
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var delivered atomic.Int64
	stream := func(id int64) {
		defer wg.Done()
		_ = cl.Stream(ctx, id, 0, func(ev StreamEvent) error {
			if ev.Emission != nil {
				delivered.Add(1)
			}
			return nil
		})
	}
	for i := 0; i < idleStreams; i++ {
		wg.Add(1)
		go stream(idleID)
	}
	for i := 0; i < hotStreams; i++ {
		wg.Add(1)
		go stream(hotID)
	}
	waitFor(t, func() bool { return core.ActiveStreams() == idleStreams+hotStreams })
	baseline := runtime.NumGoroutine()

	// Sustained ingest: the hot streams see every emission, the idle
	// streams see none and must cost nothing.
	for i := 0; i < 2000; i++ {
		if err := core.Ingest(Post{ID: int64(i + 1), Time: float64(i) * 0.1, Text: fmt.Sprintf("obama burst %d", i)}); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			if g := runtime.NumGoroutine(); g > baseline+32 {
				t.Fatalf("goroutines grew under load: %d → %d", baseline, g)
			}
		}
	}
	waitFor(t, func() bool { return delivered.Load() >= hotStreams }) // hot streams are live
	if g := runtime.NumGoroutine(); g > baseline+32 {
		t.Fatalf("goroutines grew after load: %d → %d", baseline, g)
	}

	cancel()
	wg.Wait()
	waitFor(t, func() bool { return core.ActiveStreams() == 0 })
	core.Flush()
}

// quietTopics match nothing the soak feed produces.
func quietTopics() []match.Topic {
	return []match.Topic{{Name: "cricket", Keywords: []match.Keyword{{Text: "wicket", Weight: 1}}}}
}
