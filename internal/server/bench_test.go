package server

import (
	"fmt"
	"testing"

	"mqdp/internal/match"
	"mqdp/internal/synth"
)

// BenchmarkIngestManySubscriptions measures per-post ingest cost with many
// live profiles — the paper's §7.4 scalability concern ("executed for
// millions of users") at bench scale.
func BenchmarkIngestManySubscriptions(b *testing.B) {
	for _, subs := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			world := synth.NewWorld(synth.WorldConfig{Seed: 1})
			tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 600, RatePerSec: 4, Seed: 2})
			s := New(0, 0)
			rng := newRand(3)
			for i := 0; i < subs; i++ {
				topicIdx := world.SampleLabelSet(rng, 3)
				if _, err := s.Subscribe(SubscriptionConfig{
					Topics: world.MatchTopics(topicIdx),
					Lambda: 120,
					Tau:    30,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tw := tweets[i%len(tweets)]
				// Replay with a strictly advancing clock to satisfy the
				// order check across wraps.
				wrap := float64(i/len(tweets)) * 600
				_ = s.Ingest(Post{ID: int64(i), Time: tw.Time + wrap, Text: tw.Text})
			}
		})
	}
}

func BenchmarkMatchOnly(b *testing.B) {
	world := synth.NewWorld(synth.WorldConfig{Seed: 1})
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 300, RatePerSec: 4, Seed: 2})
	rng := newRand(3)
	m, err := match.NewMatcher(world.MatchTopics(world.SampleLabelSet(rng, 5)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Match(tweets[i%len(tweets)].Text)
	}
}
