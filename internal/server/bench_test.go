package server

import (
	"fmt"
	"testing"
	"time"

	"mqdp/internal/match"
	"mqdp/internal/obs"
	"mqdp/internal/synth"
)

// BenchmarkIngestManySubscriptions measures per-post ingest cost with many
// live profiles — the paper's §7.4 scalability concern ("executed for
// millions of users") at bench scale.
func BenchmarkIngestManySubscriptions(b *testing.B) {
	for _, subs := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			world := synth.NewWorld(synth.WorldConfig{Seed: 1})
			tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 600, RatePerSec: 4, Seed: 2})
			s := New(0, 0)
			rng := newRand(3)
			for i := 0; i < subs; i++ {
				topicIdx := world.SampleLabelSet(rng, 3)
				if _, err := s.Subscribe(SubscriptionConfig{
					Topics: world.MatchTopics(topicIdx),
					Lambda: 120,
					Tau:    30,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tw := tweets[i%len(tweets)]
				// Replay with a strictly advancing clock to satisfy the
				// order check across wraps.
				wrap := float64(i/len(tweets)) * 600
				_ = s.Ingest(Post{ID: int64(i), Time: tw.Time + wrap, Text: tw.Text})
			}
		})
	}
}

// BenchmarkIngestSparseMatch measures per-post ingest cost on the workload
// the inverted routing index exists for: many single-keyword subscriptions
// of which only a small fraction matches any given post. Routed fan-out
// touches only the candidate postings; broadcast walks every matcher. The
// checked-in BENCH_routing.json tracks the same ratio cross-binary via
// `make bench-routing`.
func BenchmarkIngestSparseMatch(b *testing.B) {
	const tokensPerPost = 10
	for _, subs := range []int{100, 1000, 10000} {
		for _, rate := range []float64{0.01, 0.05} {
			keywords := int(tokensPerPost/rate + 0.5)
			for _, routing := range []bool{true, false} {
				mode := "routed"
				if !routing {
					mode = "broadcast"
				}
				b.Run(fmt.Sprintf("subs=%d/rate=%g/%s", subs, rate, mode), func(b *testing.B) {
					s := New(0, 0)
					s.SetParallelism(1)
					s.SetRouting(routing)
					for i := 0; i < subs; i++ {
						if _, err := s.Subscribe(SubscriptionConfig{
							Topics: []match.Topic{{
								Name:     fmt.Sprintf("t%d", i),
								Keywords: []match.Keyword{{Text: fmt.Sprintf("kw%d", i%keywords), Weight: 1}},
							}},
							Lambda:    3600,
							Algorithm: "instant",
						}); err != nil {
							b.Fatal(err)
						}
					}
					// Rotate a tokensPerPost-keyword window through the
					// universe so each post matches exactly rate×subs profiles.
					texts := make([]string, keywords)
					for i := range texts {
						var sb []byte
						start := (i * tokensPerPost) % keywords
						for j := 0; j < tokensPerPost; j++ {
							sb = fmt.Appendf(sb, "kw%d ", (start+j)%keywords)
						}
						texts[i] = string(fmt.Append(sb, "plus filler chatter"))
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						_ = s.Ingest(Post{ID: int64(i + 1), Time: float64(i), Text: texts[i%len(texts)]})
					}
				})
			}
		}
	}
}

// BenchmarkIngestWorkers measures how per-post ingest cost scales with the
// fan-out worker count at a fixed, production-shaped subscription load —
// the tentpole claim: O(|subs|/workers) per post instead of O(|subs|).
func BenchmarkIngestWorkers(b *testing.B) {
	const subs = 64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("subs=%d/workers=%d", subs, workers), func(b *testing.B) {
			world := synth.NewWorld(synth.WorldConfig{Seed: 1})
			tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 600, RatePerSec: 4, Seed: 2})
			s := New(0, 0)
			s.SetParallelism(workers)
			rng := newRand(3)
			for i := 0; i < subs; i++ {
				topicIdx := world.SampleLabelSet(rng, 3)
				if _, err := s.Subscribe(SubscriptionConfig{
					Topics: world.MatchTopics(topicIdx),
					Lambda: 120,
					Tau:    30,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tw := tweets[i%len(tweets)]
				wrap := float64(i/len(tweets)) * 600
				_ = s.Ingest(Post{ID: int64(i), Time: tw.Time + wrap, Text: tw.Text})
			}
		})
	}
}

// BenchmarkEmissionsPoll measures a tail poll against a full retained
// buffer. The cursor offset is computed in O(1) from the first retained
// Seq, so cost tracks the page size, not the 65,536-entry buffer.
func BenchmarkEmissionsPoll(b *testing.B) {
	s := New(0, 0)
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant"})
	if err != nil {
		b.Fatal(err)
	}
	// Synthesize a full buffer directly; ingesting 65k posts is setup noise.
	sub, _ := s.lookup(id)
	n := maxEmissionBuffer
	sub.emissions = make([]Emission, n)
	for i := 0; i < n; i++ {
		sub.emissions[i] = Emission{
			Seq: int64(i + 1), PostID: int64(i + 1), Time: float64(i),
			Text: "obama update", Topics: []string{"obama"}, EmitAt: float64(i),
		}
	}
	sub.nextSeq.Add(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es, err := s.Emissions(id, int64(n-10), 10)
		if err != nil || len(es) != 10 {
			b.Fatalf("poll = %d emissions, %v", len(es), err)
		}
	}
}

// benchIngestObs drives the standard ingest workload against a server in
// one observability mode. Off→Disabled prices the pre-existing metrics
// layer (registry wired, timers and histograms live, no tracer — the
// production default). Disabled→Enabled is the number this PR pins: with no
// tracer attached, tracing must cost only the nil check inside the already
// -loaded obs state, so Disabled stays where it was before spans existed,
// and Enabled prices full span bookkeeping with tail-based retention.
func benchIngestObs(b *testing.B, wire func(*Server)) {
	world := synth.NewWorld(synth.WorldConfig{Seed: 1})
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 600, RatePerSec: 4, Seed: 2})
	s := New(0, 0)
	s.SetParallelism(1)
	if wire != nil {
		wire(s)
	}
	rng := newRand(3)
	for i := 0; i < 16; i++ {
		topicIdx := world.SampleLabelSet(rng, 3)
		if _, err := s.Subscribe(SubscriptionConfig{
			Topics: world.MatchTopics(topicIdx),
			Lambda: 120,
			Tau:    30,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw := tweets[i%len(tweets)]
		wrap := float64(i/len(tweets)) * 600
		_ = s.Ingest(Post{ID: int64(i), Time: tw.Time + wrap, Text: tw.Text})
	}
}

func BenchmarkIngestTraceOff(b *testing.B) {
	benchIngestObs(b, nil)
}

func BenchmarkIngestTraceDisabled(b *testing.B) {
	benchIngestObs(b, func(s *Server) {
		s.SetObs(obs.NewRegistry())
	})
}

func BenchmarkIngestTraceEnabled(b *testing.B) {
	benchIngestObs(b, func(s *Server) {
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(4096)
		tracer.SetRetention(100*time.Millisecond, 10)
		reg.SetTracer(tracer)
		s.SetObs(reg)
	})
}

func BenchmarkMatchOnly(b *testing.B) {
	world := synth.NewWorld(synth.WorldConfig{Seed: 1})
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 300, RatePerSec: 4, Seed: 2})
	rng := newRand(3)
	m, err := match.NewMatcher(world.MatchTopics(world.SampleLabelSet(rng, 5)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Match(tweets[i%len(tweets)].Text)
	}
}
