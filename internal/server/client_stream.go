package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mqdp/internal/obs"
	"mqdp/internal/resilience"
	"mqdp/internal/wire"
)

// streamHTTPClient backs SSE connections when the caller didn't supply
// one: unlike defaultHTTPClient it has no overall timeout (a healthy
// stream is open indefinitely); lifetime is governed by the request
// context instead.
var streamHTTPClient = &http.Client{}

// fallbackPollInterval paces the polling fallback between empty rounds
// when the server's push surface is disabled.
const fallbackPollInterval = 200 * time.Millisecond

// fallbackPollWait is the wait= sent by the polling fallback: long
// enough to amortize round trips, comfortably under defaultHTTPClient's
// 30s timeout so an empty long-poll is an empty answer, not an error.
const fallbackPollWait = 10 * time.Second

// StreamEvent is one push-delivery event. Exactly one field is non-nil.
type StreamEvent struct {
	// Emission is the next diversified emission, in seq order.
	Emission *Emission
	// TopK is a changed (or initial) continuous top-k view.
	TopK *TopKSnapshot
	// Gap reports seqs lost to server-side gc before this client saw
	// them; delivery resumes at Gap.FirstSeq.
	Gap *GapError
	// End is the terminal event: the subscription was flushed,
	// unsubscribed or quarantined. The stream closes after it.
	End *StreamEndError

	// Trace is the originating ingest trace of an Emission event, when
	// the server has tracing enabled (zero otherwise). Feed it to
	// /debug/traces/{id} to see the post's full server-side path.
	Trace obs.TraceID
}

// callbackErr marks an error returned by the caller's handler: it must
// propagate as-is, never retried.
type callbackErr struct{ error }

// Stream subscribes to push delivery for one subscription, invoking fn
// for every event in order. Emissions resume after the given cursor
// (0 = from the beginning still retained).
//
// Stream returns nil after a terminal end event, fn's error if fn fails,
// or ctx.Err() when the context ends. With a RetryPolicy, dropped
// connections reconnect with backoff and resume from the last delivered
// seq (the attempt budget resets whenever a connection makes progress);
// without one, the first failure is returned. Against a server whose
// push surface is disabled (501) or too old (405), Stream degrades to
// transparent polling of /emissions and /topk — fn sees the same event
// sequence either way.
func (c *Client) Stream(ctx context.Context, id, after int64, fn func(StreamEvent) error) error {
	rp := c.Retry
	bo := rp.backoff(func() int64 {
		if rp == nil {
			return 0
		}
		return rp.Seed + c.calls.Add(1)
	}())
	attempt := 0
	var lastVersion uint64
	seenTopK := false
	for {
		progressed, end, err := c.streamOnce(ctx, id, &after, &lastVersion, &seenTopK, fn)
		if end {
			return nil
		}
		var cb callbackErr
		if errors.As(err, &cb) {
			return cb.error
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		switch StatusCode(err) {
		case http.StatusNotImplemented, http.StatusMethodNotAllowed:
			return c.streamPoll(ctx, id, after, lastVersion, seenTopK, fn)
		}
		if progressed {
			attempt = 0
		}
		attempt++
		if rp == nil || !retryable(true, err) || attempt >= rp.maxAttempts() {
			return err
		}
		c.retries.Inc()
		if serr := retrySleep(ctx, err, bo); serr != nil {
			return serr
		}
	}
}

// streamOnce runs one SSE connection until it ends. It advances the
// caller's resume cursor and top-k version as events arrive so a
// reconnect (or the polling fallback) picks up where this connection
// dropped.
func (c *Client) streamOnce(ctx context.Context, id int64, after *int64, lastVersion *uint64, seenTopK *bool, fn func(StreamEvent) error) (progressed, end bool, err error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = streamHTTPClient
	}
	opPath := fmt.Sprintf("/subscriptions/%d/stream", id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s%s?after=%d", c.BaseURL, opPath, *after), nil)
	if err != nil {
		return false, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	// Propagate the caller's trace on every connection, reconnects
	// included, so the whole streaming session hangs off one trace.
	if span := obs.FromContext(ctx); span != nil {
		req.Header.Set("traceparent", span.Traceparent())
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false, false, fmt.Errorf("server: GET %s: %w", opPath, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		ae := &APIError{Status: resp.StatusCode, Body: string(msg)}
		if resp.StatusCode == http.StatusTooManyRequests {
			c.shedSeen.Inc()
		}
		return false, false, fmt.Errorf("server: GET %s: %w", opPath, ae)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event, data, trace := "", "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" {
				isEnd, derr := c.dispatchSSE(event, data, trace, after, lastVersion, seenTopK, fn)
				if derr != nil {
					return progressed, false, derr
				}
				progressed = true
				if isEnd {
					return progressed, true, nil
				}
			}
			event, data, trace = "", "", ""
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case strings.HasPrefix(line, "trace: "):
			trace = line[len("trace: "):]
			// id: lines carry the emission seq, already in the payload.
		}
	}
	// The server never closes a healthy stream without an end event, so
	// EOF here is a dropped connection: reconnect and resume.
	err = sc.Err()
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return progressed, false, fmt.Errorf("server: GET %s: %w", opPath, err)
}

// dispatchSSE decodes one SSE event and hands it to fn. trace is the raw
// value of a nonstandard trace: field line, empty when absent.
func (c *Client) dispatchSSE(event, data, trace string, after *int64, lastVersion *uint64, seenTopK *bool, fn func(StreamEvent) error) (end bool, err error) {
	switch event {
	case "emission":
		var em Emission
		if err := json.Unmarshal([]byte(data), &em); err != nil {
			return false, fmt.Errorf("stream emission: %w", err)
		}
		*after = em.Seq
		ev := StreamEvent{Emission: &em}
		// Malformed trace annotations are dropped, never fatal: the
		// emission itself is intact.
		ev.Trace, _ = obs.ParseTraceID(trace)
		if err := fn(ev); err != nil {
			return false, callbackErr{err}
		}
	case "topk":
		var snap TopKSnapshot
		if err := json.Unmarshal([]byte(data), &snap); err != nil {
			return false, fmt.Errorf("stream topk: %w", err)
		}
		*lastVersion, *seenTopK = snap.Version, true
		if err := fn(StreamEvent{TopK: &snap}); err != nil {
			return false, callbackErr{err}
		}
	case "gap":
		var g GapError
		if err := json.Unmarshal([]byte(data), &g); err != nil {
			return false, fmt.Errorf("stream gap: %w", err)
		}
		*after = g.FirstSeq - 1
		if err := fn(StreamEvent{Gap: &g}); err != nil {
			return false, callbackErr{err}
		}
	case "end":
		var ee endEvent
		if err := json.Unmarshal([]byte(data), &ee); err != nil {
			return false, fmt.Errorf("stream end: %w", err)
		}
		if err := fn(StreamEvent{End: &StreamEndError{Reason: ee.Reason}}); err != nil {
			return true, callbackErr{err}
		}
		return true, nil
	}
	// Unknown event types are skipped, leaving room for protocol growth.
	return false, nil
}

// streamPoll is the polling fallback behind Stream: the same event
// sequence reconstructed from /emissions (long-polled where the server
// supports it) and /topk snapshots.
func (c *Client) streamPoll(ctx context.Context, id, after int64, lastVersion uint64, seenTopK bool, fn func(StreamEvent) error) error {
	for {
		busy := false
		es, err := c.emissions(ctx, id, after, 0, fallbackPollWait)
		var gap *GapError
		if errors.As(err, &gap) {
			if ferr := fn(StreamEvent{Gap: gap}); ferr != nil {
				return ferr
			}
			after, busy = gap.FirstSeq-1, true
			err = nil
		}
		var endErr *StreamEndError
		if errors.As(err, &endErr) {
			if ferr := fn(StreamEvent{End: endErr}); ferr != nil {
				return ferr
			}
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		for i := range es {
			after, busy = es[i].Seq, true
			if ferr := fn(StreamEvent{Emission: &es[i]}); ferr != nil {
				return ferr
			}
		}
		snap, err := c.TopKContext(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if !seenTopK || snap.Version != lastVersion {
			lastVersion, seenTopK, busy = snap.Version, true, true
			if ferr := fn(StreamEvent{TopK: &snap}); ferr != nil {
				return ferr
			}
		}
		if !busy {
			// Against a server that ignores wait= the poll returns
			// immediately; pace the loop instead of spinning.
			if serr := resilience.Sleep(ctx, fallbackPollInterval); serr != nil {
				return serr
			}
		}
	}
}

// TopK fetches the subscription's continuously maintained diversified
// top-k view.
func (c *Client) TopK(id int64) (TopKSnapshot, error) {
	return c.TopKContext(context.Background(), id)
}

// TopKContext is TopK honoring ctx, negotiating the binary frame format
// via Accept like the emissions poll.
func (c *Client) TopKContext(ctx context.Context, id int64) (TopKSnapshot, error) {
	path := fmt.Sprintf("/subscriptions/%d/topk", id)
	var snap TopKSnapshot
	err := c.callAttempt(ctx, http.MethodGet, path, true, func(ctx context.Context) error {
		accept := ""
		if c.useBinary() {
			accept = wire.ContentTypeBinary
		}
		return c.doHTTP(ctx, http.MethodGet, path, nil, "", accept, "", func(resp *http.Response) error {
			snap = TopKSnapshot{}
			if !wire.IsBinary(resp.Header.Get("Content-Type")) {
				return json.NewDecoder(resp.Body).Decode(&snap)
			}
			dec := wire.GetDecoder()
			defer wire.PutDecoder(dec)
			kind, body, err := dec.ReadFrame(resp.Body)
			if err != nil {
				return fmt.Errorf("topk frame: %w", err)
			}
			if kind != wire.KindTopK {
				return fmt.Errorf("topk frame: %w: unexpected kind 0x%02x", wire.ErrCorrupt, kind)
			}
			version, k, wes, err := wire.DecodeTopK(body)
			if err != nil {
				return fmt.Errorf("topk frame: %w", err)
			}
			snap.Version, snap.K = version, k
			snap.Items = make([]Emission, len(wes))
			for i, we := range wes {
				snap.Items[i] = Emission(we)
			}
			return nil
		})
	})
	return snap, err
}
