package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mqdp/internal/match"
	"mqdp/internal/obs"
	"mqdp/internal/simhash"
	"mqdp/internal/stream"
	"mqdp/internal/wal"
	"mqdp/internal/wire"
)

// Durability layer: every state-changing operation is written to a
// write-ahead log before it is applied, and the full server state is
// periodically snapshotted, so recovery = load the newest snapshot +
// replay the WAL suffix through the exact same code paths live requests
// take.
//
// WAL record kinds (the payload formats are versioned implicitly by the
// segment version in internal/wal):
//
//	recBatch       uvarint key length, idempotency key bytes, then one
//	               internal/wire KindStreamPosts frame with the batch.
//	               Appended BEFORE the batch is applied.
//	recSubscribe   JSON {"id", "cfg"}
//	recUnsubscribe JSON {"id"}
//	recFlush       empty
//	recQuarantine  JSON {"id", "msg"}
//	recBatchAck    uvarint accepted count, uvarint HTTP status, error
//	               string. Appended AFTER its recBatch applied, committed
//	               (and fsynced per policy) before the client sees the
//	               response — the ack is the durable record of the exact
//	               outcome the client was told.
//
// Ingest journaling is a batch/ack pair around the apply: the batch
// record pins what the client sent, the ack pins what the server
// answered (the accepted prefix length and the recorded outcome). Replay
// applies exactly the acked prefix and restores the outcome verbatim, so
// a batch the live run cut mid-way (request deadline) recovers to the
// same state and idempotency answer the client observed — never a
// deadline-free recomputation that quietly applies more than the client
// was told. A batch record with no ack in the log means the crash landed
// between append and response: the client never heard an outcome, so
// replay applies the batch in full and records the recomputed outcome,
// exactly what the interrupted live call would have produced. One Commit
// per pair (at the ack) keeps the fsync cost at one per ingest request.
//
// Consistency: walBatchMu serializes {batch append, apply, ack append,
// idempotency-cache put} for ingest batches and registry mutations, and
// Snapshot takes it (then ingestMu) before cutting — so a snapshot at
// LSN N contains the effects of exactly the records ≤ N (and never cuts
// between a batch and its ack), and replay from N+1 is neither lossy nor
// double-applied. Quarantine records are appended mid-apply (under the
// ingesting caller's walBatchMu, between that batch and its ack) and
// their replay application is idempotent, as is every other record kind.
//
// Exactly-once across a crash: the batch record carries the client's
// idempotency key and the ack carries the recorded outcome, which replay
// restores into the idempotency cache verbatim. A client retrying across
// the crash therefore gets the recorded outcome with
// Idempotent-Replay: true, exactly as if the server had never died.
const (
	recBatch       byte = 1
	recSubscribe   byte = 2
	recUnsubscribe byte = 3
	recFlush       byte = 4
	recQuarantine  byte = 5
	recBatchAck    byte = 6
)

// ErrReadOnly reports that the durability layer hit an IO failure (disk
// full, fsync error) and the server degraded to read-only: polls, stats
// and streams keep serving, ingest and registry mutations are refused
// with 503 + Retry-After until the process is restarted on healthy
// storage. Refusing is the honest failure mode — accepting writes that
// cannot be made durable would silently void the recovery contract.
var ErrReadOnly = errors.New("server: durability degraded to read-only (WAL write failed)")

// DurabilityConfig wires a Server to a data directory.
type DurabilityConfig struct {
	// Dir is the WAL + snapshot directory (created if missing).
	Dir string
	// Fsync picks the WAL fsync cadence (wal.SyncBatch, SyncInterval,
	// SyncOff).
	Fsync wal.SyncPolicy
	// FsyncInterval is the background WAL flush/fsync tick (0 = default).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold (0 = default).
	SegmentBytes int64
	// SnapshotInterval takes a state snapshot on a wall-clock timer
	// (0 = only on CloseDurability).
	SnapshotInterval time.Duration
}

// durState is the live durability runtime of one Server.
type durState struct {
	cfg DurabilityConfig
	log *wal.Log

	// walBatchMu serializes {WAL append, apply, idem put} so the log
	// order equals the apply order and snapshots cut between batches,
	// never inside one. Ordered strictly before ingestMu.
	walBatchMu sync.Mutex

	// replaying marks recovery: appends are suppressed (the records being
	// applied already exist) and degraded checks are skipped.
	replaying atomic.Bool

	// pending is the replay-time batch awaiting its ack record: a recBatch
	// stashes here and the matching recBatchAck applies the acked prefix.
	// Only touched by the single-threaded recovery loop.
	pending *pendingBatch

	// closeOnce makes CloseDurability idempotent: concurrent shutdown
	// paths must not double-close the snapshot-loop channel.
	closeOnce sync.Once

	// degraded latches on the first WAL/snapshot IO failure.
	degraded       atomic.Bool
	degradedReason atomic.Pointer[string]

	lastSnapLSN atomic.Uint64

	// Recovery accounting, written once during EnableDurability.
	replayedRecords int64
	replayedBatches int64
	replayedPosts   int64

	snapStop chan struct{}
	snapDone chan struct{}
}

// DurabilityMetrics is the durability section of Metrics; nil when the
// layer is disabled (keeping the JSON byte-identical to a WAL-less build).
type DurabilityMetrics struct {
	Fsync           string `json:"fsync"`
	NextLSN         uint64 `json:"next_lsn"`
	SnapshotLSN     uint64 `json:"snapshot_lsn"`
	Segments        int    `json:"segments"`
	Degraded        bool   `json:"degraded"`
	DegradedReason  string `json:"degraded_reason,omitempty"`
	RepairedBytes   int64  `json:"repaired_tail_bytes"`
	ReplayedRecords int64  `json:"replayed_records"`
	ReplayedBatches int64  `json:"replayed_batches"`
	ReplayedPosts   int64  `json:"replayed_posts"`
	WALRecords      int64  `json:"wal_records"`
	Snapshots       int64  `json:"snapshots"`
}

// EnableDurability opens (or creates) the data directory, restores the
// newest valid snapshot, replays the WAL suffix through the regular
// ingest/registry paths, and starts journaling every subsequent mutation.
// Call it on a freshly constructed Server, before serving traffic.
func (s *Server) EnableDurability(cfg DurabilityConfig) error {
	if s.dur.Load() != nil {
		return errors.New("server: durability already enabled")
	}
	log, err := wal.Open(cfg.Dir, wal.Options{
		SegmentBytes: cfg.SegmentBytes,
		Policy:       cfg.Fsync,
		Interval:     cfg.FsyncInterval,
		// Chaos hook: the schedule's disk actions surface here as IO
		// failures ("wal.append@3=disk:..." etc.).
		Failpoint: func(op string) error {
			if in := s.faults.Load(); in != nil {
				return in.Fire(op)
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	d := &durState{cfg: cfg, log: log}
	snapLSN := uint64(0)
	lsn, payload, err := wal.LoadLatestSnapshot(cfg.Dir)
	switch {
	case err == nil:
		if err := s.restoreSnapshot(payload); err != nil {
			log.Close()
			return fmt.Errorf("server: restoring snapshot at LSN %d: %w", lsn, err)
		}
		snapLSN = lsn
	case errors.Is(err, wal.ErrNoSnapshot):
		// Fresh directory (or snapshots all damaged with an empty prefix):
		// state starts empty and the full WAL replays.
	default:
		log.Close()
		return err
	}
	d.lastSnapLSN.Store(snapLSN)
	s.dur.Store(d)
	d.replaying.Store(true)
	rerr := log.Replay(snapLSN+1, func(rec wal.Record) error {
		return s.applyWALRecord(d, rec)
	})
	if rerr == nil {
		// A batch whose ack never reached the log: the crash cut between
		// append and response, so the client never heard an outcome —
		// apply it in full and record the recomputed result.
		s.finishPendingBatch(d)
	}
	d.replaying.Store(false)
	if rerr != nil {
		s.dur.Store(nil)
		log.Close()
		return fmt.Errorf("server: WAL replay: %w", rerr)
	}
	if l := s.logger.Load(); l != nil {
		l.Info("durability enabled",
			slog.String("dir", cfg.Dir),
			slog.String("fsync", cfg.Fsync.String()),
			slog.Uint64("snapshot_lsn", snapLSN),
			slog.Int64("replayed_records", d.replayedRecords),
			slog.Int64("replayed_posts", d.replayedPosts),
			slog.Int64("repaired_tail_bytes", log.RepairedBytes()))
	}
	if cfg.SnapshotInterval > 0 {
		d.snapStop = make(chan struct{})
		d.snapDone = make(chan struct{})
		go d.snapLoop(s)
	}
	return nil
}

// CloseDurability takes a final snapshot (graceful shutdowns restart with
// zero replay) and closes the WAL. Safe when durability was never enabled
// and under concurrent calls: the first caller shuts down, later ones
// wait for it and return nil.
func (s *Server) CloseDurability() error {
	d := s.dur.Load()
	if d == nil {
		return nil
	}
	var firstErr error
	d.closeOnce.Do(func() {
		if d.snapStop != nil {
			close(d.snapStop)
			<-d.snapDone
		}
		if !d.degraded.Load() {
			firstErr = s.Snapshot()
		}
		if err := d.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

// DurabilityEnabled reports whether a data directory is wired.
func (s *Server) DurabilityEnabled() bool { return s.dur.Load() != nil }

// Degraded reports whether the durability layer latched read-only mode,
// and why.
func (s *Server) Degraded() (bool, string) {
	d := s.dur.Load()
	if d == nil || !d.degraded.Load() {
		return false, ""
	}
	reason := ""
	if r := d.degradedReason.Load(); r != nil {
		reason = *r
	}
	return true, reason
}

// durabilityMetrics renders the Metrics section; nil when disabled.
func (s *Server) durabilityMetrics() *DurabilityMetrics {
	d := s.dur.Load()
	if d == nil {
		return nil
	}
	degraded, reason := s.Degraded()
	return &DurabilityMetrics{
		Fsync:           d.cfg.Fsync.String(),
		NextLSN:         d.log.NextLSN(),
		SnapshotLSN:     d.lastSnapLSN.Load(),
		Segments:        d.log.Segments(),
		Degraded:        degraded,
		DegradedReason:  reason,
		RepairedBytes:   d.log.RepairedBytes(),
		ReplayedRecords: d.replayedRecords,
		ReplayedBatches: d.replayedBatches,
		ReplayedPosts:   d.replayedPosts,
		WALRecords:      s.walRecords.Value(),
		Snapshots:       s.walSnapshots.Value(),
	}
}

// degrade latches read-only mode (first cause wins) and returns the
// client-facing typed error.
func (s *Server) degrade(d *durState, cause error) error {
	if !d.degraded.Swap(true) {
		msg := cause.Error()
		d.degradedReason.Store(&msg)
		if l := s.logger.Load(); l != nil {
			l.Error("durability degraded to read-only", slog.String("cause", msg))
		}
	}
	return fmt.Errorf("%w: %w", ErrReadOnly, cause)
}

// snapLoop drives the periodic snapshot timer.
func (d *durState) snapLoop(s *Server) {
	defer close(d.snapDone)
	t := time.NewTicker(d.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-d.snapStop:
			return
		case <-t.C:
			if err := s.Snapshot(); err != nil {
				if l := s.logger.Load(); l != nil {
					l.Error("periodic snapshot failed", slog.String("error", err.Error()))
				}
			}
		}
	}
}

// IngestBatch applies one client batch atomically with respect to
// durability: the whole batch (with its idempotency key) becomes one WAL
// record appended before any post is applied, the recorded outcome is
// journaled as the matching ack record and committed before the client
// sees it, and the idempotency-cache entry lands under the same critical
// section — so a snapshot can never observe an applied batch without its
// replay entry. It returns the client-facing result, the HTTP status,
// and the underlying error (nil on full acceptance).
func (s *Server) IngestBatch(ctx context.Context, batch []Post, key string) (IngestResult, int, error) {
	d := s.dur.Load()
	journal := d != nil && !d.replaying.Load()
	if journal {
		if d.degraded.Load() {
			return IngestResult{Error: ErrReadOnly.Error()}, http.StatusServiceUnavailable, ErrReadOnly
		}
		d.walBatchMu.Lock()
		defer d.walBatchMu.Unlock()
		if err := d.appendBatch(s, key, batch); err != nil {
			// Nothing was applied; the client retries against a healthy
			// replica (or after a restart). No idempotency entry: the
			// outcome "rejected read-only" is not a durable application.
			return IngestResult{Error: err.Error()}, http.StatusServiceUnavailable, err
		}
	}
	accepted, err := s.applyBatch(ctx, batch)
	res := IngestResult{Accepted: accepted}
	status := http.StatusOK
	if err != nil {
		res.Error = err.Error()
		status = statusFor(err)
	}
	if journal {
		if ackErr := d.appendBatchAck(s, accepted, status, res.Error); ackErr != nil {
			// The outcome could not be made durable, so it must not be
			// reported: a client holding an OK for a batch the restarted
			// server never replays would lose data silently. Degraded mode
			// refuses the retry until a restart, whose replay either never
			// sees the batch (retry re-drives it) or finds it un-acked and
			// applies it in full — once, either way.
			return IngestResult{Error: ackErr.Error()}, http.StatusServiceUnavailable, ackErr
		}
	}
	if key != "" {
		s.idem.put(key, idemEntry{res: res, status: status})
	}
	return res, status, err
}

// applyBatch feeds the batch post-by-post through the regular ingest
// pipeline, stopping at the first failure; the accepted prefix stays
// applied (the deadline/ordering contract of the HTTP API).
func (s *Server) applyBatch(ctx context.Context, batch []Post) (int, error) {
	accepted := 0
	for i := range batch {
		if err := s.ingestOne(ctx, batch[i]); err != nil {
			return accepted, err
		}
		accepted++
	}
	return accepted, nil
}

// appendBatch journals one ingest batch record, buffered: the commit (and
// fsync per policy) happens once, at the matching ack, so the batch/ack
// pair costs a single fsync. Failures degrade the server to read-only.
func (d *durState) appendBatch(s *Server, key string, batch []Post) error {
	o := s.obsState.Load()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	enc := wire.GetEncoder()
	posts := make([]wire.StreamPost, len(batch))
	for i := range batch {
		posts[i] = wire.StreamPost(batch[i])
	}
	frame := enc.EncodeStreamPosts(posts, wire.DefaultCompressThreshold)
	var kl [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(kl[:], uint64(len(key)))
	payload := make([]byte, 0, n+len(key)+len(frame))
	payload = append(payload, kl[:n]...)
	payload = append(payload, key...)
	payload = append(payload, frame...)
	wire.PutEncoder(enc)
	if _, err := d.log.Append(recBatch, payload); err != nil {
		return s.degrade(d, err)
	}
	if o != nil {
		o.walAppendTime.ObserveSince(start)
	}
	s.walRecords.Inc()
	return nil
}

// appendBatchAck journals the outcome of the batch that was just applied
// and commits the pair, making both kill-safe (and durable per the fsync
// policy) before the client is answered.
func (d *durState) appendBatchAck(s *Server, accepted, status int, errmsg string) error {
	var tmp [binary.MaxVarintLen64]byte
	payload := make([]byte, 0, 2*binary.MaxVarintLen64+len(errmsg))
	n := binary.PutUvarint(tmp[:], uint64(accepted))
	payload = append(payload, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(status))
	payload = append(payload, tmp[:n]...)
	payload = append(payload, errmsg...)
	if _, err := d.log.Append(recBatchAck, payload); err != nil {
		return s.degrade(d, err)
	}
	o := s.obsState.Load()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	if err := d.log.Commit(); err != nil {
		return s.degrade(d, err)
	}
	if o != nil {
		o.walSyncTime.ObserveSince(start)
	}
	s.walRecords.Inc()
	return nil
}

// decodeBatchAck parses a recBatchAck payload.
func decodeBatchAck(data []byte) (accepted, status int, errmsg string, err error) {
	a, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, "", errors.New("server: malformed WAL ack record")
	}
	st, m := binary.Uvarint(data[n:])
	if m <= 0 {
		return 0, 0, "", errors.New("server: malformed WAL ack record")
	}
	return int(a), int(st), string(data[n+m:]), nil
}

// decodeBatchRecord parses a recBatch payload back into key + posts.
func decodeBatchRecord(data []byte) (key string, posts []Post, err error) {
	klen, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < klen {
		return "", nil, errors.New("server: malformed WAL batch record key")
	}
	key = string(data[n : n+int(klen)])
	frame := data[n+int(klen):]
	dec := wire.GetDecoder()
	defer wire.PutDecoder(dec)
	kind, frameBody, _, err := dec.DecodeFrame(frame)
	if err != nil {
		return "", nil, err
	}
	if kind != wire.KindStreamPosts {
		return "", nil, fmt.Errorf("server: WAL batch record carries frame kind %#x", kind)
	}
	sps, err := wire.AppendStreamPosts(nil, frameBody)
	if err != nil {
		return "", nil, err
	}
	posts = make([]Post, len(sps))
	for i := range sps {
		posts[i] = Post(sps[i])
	}
	return key, posts, nil
}

// Registry / terminal-state journal appends. All no-op while replaying
// (the records being applied already exist) and degrade on failure.

func (s *Server) durAppendSubscribe(d *durState, id int64, cfg SubscriptionConfig) {
	payload, _ := json.Marshal(struct {
		ID  int64              `json:"id"`
		Cfg SubscriptionConfig `json:"cfg"`
	}{id, cfg})
	s.durAppend(d, recSubscribe, payload, true)
}

func (s *Server) durAppendUnsubscribe(d *durState, id int64) {
	payload, _ := json.Marshal(struct {
		ID int64 `json:"id"`
	}{id})
	s.durAppend(d, recUnsubscribe, payload, true)
}

// durAppendQuarantine journals a quarantine latch. Called under sub.mu
// from the ingest fan-out, whose batch already holds walBatchMu — the
// record lands right after the batch that poisoned the pipeline.
func (s *Server) durAppendQuarantine(id int64, msg string) {
	d := s.dur.Load()
	if d == nil || d.replaying.Load() || d.degraded.Load() {
		return
	}
	payload, _ := json.Marshal(struct {
		ID  int64  `json:"id"`
		Msg string `json:"msg"`
	}{id, msg})
	// No commit: the latch rides its own batch's ack commit (it lands
	// between the batch record and the ack). A deterministic panic recurs
	// on replay regardless; only a nondeterministically injected one can
	// be lost with the tail.
	s.durAppend(d, recQuarantine, payload, false)
}

func (s *Server) durAppendFlush(d *durState) {
	s.durAppend(d, recFlush, nil, true)
}

func (s *Server) durAppend(d *durState, kind byte, payload []byte, commit bool) {
	if _, err := d.log.Append(kind, payload); err != nil {
		_ = s.degrade(d, err)
		return
	}
	if commit {
		if err := d.log.Commit(); err != nil {
			_ = s.degrade(d, err)
			return
		}
	}
	s.walRecords.Inc()
}

// pendingBatch is a journaled ingest batch seen during replay whose ack
// record has not arrived yet.
type pendingBatch struct {
	key   string
	posts []Post
	skip  bool // the idempotency cache already holds this key: double-keyed record
}

// applyWALRecord replays one journal record through the live code paths.
// Batch application errors (out-of-order posts, closed stream) are
// recorded outcomes — the live run saw the same thing — never replay
// failures; only undecodable payloads abort recovery.
func (s *Server) applyWALRecord(d *durState, rec wal.Record) error {
	d.replayedRecords++
	switch rec.Kind {
	case recBatch:
		key, posts, err := decodeBatchRecord(rec.Data)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec.LSN, err)
		}
		if d.pending != nil {
			// An un-acked batch followed by another batch: a directory
			// written before acks existed. Apply it in full — exactly the
			// replay those logs were written for.
			s.finishPendingBatch(d)
		}
		skip := false
		if key != "" {
			if _, ok := s.idem.get(key); ok {
				// Already applied (double-keyed record): replay must not
				// apply a batch twice any more than the live path would.
				skip = true
			}
		}
		d.pending = &pendingBatch{key: key, posts: posts, skip: skip}
	case recBatchAck:
		accepted, status, errmsg, err := decodeBatchAck(rec.Data)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec.LSN, err)
		}
		pb := d.pending
		d.pending = nil
		if pb == nil || pb.skip {
			return nil
		}
		if accepted > len(pb.posts) {
			accepted = len(pb.posts)
		}
		// Apply exactly the prefix the live run accepted and restore the
		// outcome the client was told, verbatim — never a deadline-free
		// recomputation that could accept more than the response reported.
		d.replayedBatches++
		n, _ := s.applyBatch(context.Background(), pb.posts[:accepted])
		d.replayedPosts += int64(n)
		if pb.key != "" {
			s.idem.put(pb.key, idemEntry{res: IngestResult{Accepted: accepted, Error: errmsg}, status: status})
		}
	case recSubscribe:
		var v struct {
			ID  int64              `json:"id"`
			Cfg SubscriptionConfig `json:"cfg"`
		}
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("record %d: %w", rec.LSN, err)
		}
		if _, err := s.subscribe(v.ID, v.Cfg); err != nil {
			return fmt.Errorf("record %d: resubscribe %d: %w", rec.LSN, v.ID, err)
		}
	case recUnsubscribe:
		var v struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("record %d: %w", rec.LSN, err)
		}
		if err := s.Unsubscribe(v.ID); err != nil && !errors.Is(err, ErrNoSuchSubscription) {
			return fmt.Errorf("record %d: %w", rec.LSN, err)
		}
	case recFlush:
		s.Flush()
	case recQuarantine:
		var v struct {
			ID  int64  `json:"id"`
			Msg string `json:"msg"`
		}
		if err := json.Unmarshal(rec.Data, &v); err != nil {
			return fmt.Errorf("record %d: %w", rec.LSN, err)
		}
		if sub, ok := s.lookup(v.ID); ok {
			sub.mu.Lock()
			sub.quarantine(v.Msg, s, s.obsState.Load())
			sub.mu.Unlock()
		}
	default:
		// Unknown kinds are forward-compatibility: a newer writer's record
		// is skipped, not fatal.
	}
	return nil
}

// finishPendingBatch applies a journaled batch whose ack never reached
// the log — the crash (or a pre-ack-format writer) cut between apply and
// response, so no client ever heard an outcome. The batch applies in
// full, deadline-free, and the recomputed outcome is recorded exactly as
// the interrupted live call would have recorded it.
func (s *Server) finishPendingBatch(d *durState) {
	pb := d.pending
	d.pending = nil
	if pb == nil || pb.skip {
		return
	}
	d.replayedBatches++
	accepted, err := s.applyBatch(context.Background(), pb.posts)
	d.replayedPosts += int64(accepted)
	if pb.key != "" {
		res := IngestResult{Accepted: accepted}
		status := http.StatusOK
		if err != nil {
			res.Error = err.Error()
			status = statusFor(err)
		}
		s.idem.put(pb.key, idemEntry{res: res, status: status})
	}
}

// Snapshot persists the full server state, stamped with the LSN of the
// last journaled record, then rotates and prunes the WAL — after a
// snapshot, recovery replays only the suffix written since.
func (s *Server) Snapshot() error {
	d := s.dur.Load()
	if d == nil {
		return errors.New("server: durability not enabled")
	}
	if d.degraded.Load() {
		return ErrReadOnly
	}
	// The cut: no batch between its append and apply (walBatchMu), no
	// ingest mid-fan-out (ingestMu). Registry mutations also hold
	// walBatchMu, so the LSN read below exactly covers the state captured.
	d.walBatchMu.Lock()
	defer d.walBatchMu.Unlock()
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	o := s.obsState.Load()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	lsn := d.log.NextLSN() - 1
	payload, err := s.encodeSnapshot()
	if err != nil {
		return err
	}
	if _, err := wal.WriteSnapshot(d.cfg.Dir, lsn, payload); err != nil {
		return s.degrade(d, err)
	}
	d.lastSnapLSN.Store(lsn)
	s.walSnapshots.Inc()
	if o != nil {
		o.snapshotTime.ObserveSince(start)
	}
	// Retention: seal the current segment and drop what no retained
	// snapshot could ever need. Pruning stops at the OLDEST retained
	// snapshot's LSN, not this one's: if this snapshot file turns out
	// damaged, recovery falls back a generation and replays from there —
	// the records in between must still exist. Failures here degrade (the
	// log's sticky error would refuse the next append anyway); pruning is
	// best effort.
	if err := d.log.Rotate(); err != nil {
		return s.degrade(d, err)
	}
	pruneTo := lsn
	if oldest, ok := wal.OldestSnapshotLSN(d.cfg.Dir); ok && oldest < pruneTo {
		pruneTo = oldest
	}
	_ = d.log.Prune(pruneTo)
	return nil
}

// Serializable snapshot state. Everything is exported mirror structs so
// encoding/gob round-trips across processes of the same binary.

type walPendingText struct {
	ID   int64
	Time float64
}

type walSubSnap struct {
	ID            int64
	Cfg           SubscriptionConfig
	Proc          *stream.ProcState
	Emissions     []Emission
	NextSeq       int64
	Matched       int64
	TextMisses    int64
	Delays        obs.HistogramState
	Texts         []Post
	Pending       []walPendingText
	TopK          stream.TopKState[Emission]
	Done          bool
	DoneReason    string
	Quarantined   bool
	QuarantineMsg string
}

type walSnap struct {
	NextID         int64
	LastTime       float64
	Started        bool
	Closed         bool
	Dedup          *simhash.DeduperState
	Ingested       int64
	Dropped        int64
	Shed           int64
	Quarantines    int64
	Gaps           int64
	Pushed         int64
	RoutingSkipped int64
	Subs           []walSubSnap
	Idem           []IdemSnap
}

// encodeSnapshot captures the full server state. Caller holds walBatchMu
// and ingestMu; per-subscription mutexes are taken one at a time.
func (s *Server) encodeSnapshot() ([]byte, error) {
	s.mu.RLock()
	shards := s.order
	nextID := s.nextID
	s.mu.RUnlock()
	snap := walSnap{
		NextID:         nextID,
		LastTime:       s.lastTime,
		Started:        s.started,
		Closed:         s.closed.Load(),
		Ingested:       s.ingested.Value(),
		Dropped:        s.dropped.Value(),
		Shed:           s.shed.Value(),
		Quarantines:    s.quarantines.Value(),
		Gaps:           s.gaps.Value(),
		Pushed:         s.pushed.Value(),
		RoutingSkipped: s.routingSkipped.Value(),
		Idem:           s.idem.export(),
	}
	if s.dedup != nil {
		st := s.dedup.State()
		snap.Dedup = &st
	}
	snap.Subs = make([]walSubSnap, 0, len(shards))
	for _, sub := range shards {
		sub.mu.Lock()
		ss, err := captureSub(sub)
		sub.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("server: snapshot of subscription %d: %w", sub.id, err)
		}
		snap.Subs = append(snap.Subs, ss)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return nil, fmt.Errorf("server: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// captureSub deep-copies one subscription's pipeline state. Caller holds
// sub.mu. The emission trace sidecar is trace-scoped and not persisted.
func captureSub(sub *subscription) (walSubSnap, error) {
	proc, err := stream.CaptureProcessor(sub.proc)
	if err != nil {
		return walSubSnap{}, err
	}
	ss := walSubSnap{
		ID:            sub.id,
		Cfg:           sub.cfg,
		Proc:          proc,
		Emissions:     append([]Emission(nil), sub.emissions...),
		NextSeq:       sub.nextSeq.Value(),
		Matched:       sub.matched.Value(),
		TextMisses:    sub.textMisses.Value(),
		Delays:        sub.delays.State(),
		TopK:          sub.topk.State(),
		Done:          sub.done,
		DoneReason:    sub.doneReason,
		Quarantined:   sub.quarantined.Load(),
		QuarantineMsg: sub.quarantineMsg,
	}
	ss.Texts = make([]Post, 0, len(sub.texts))
	for _, p := range sub.texts {
		ss.Texts = append(ss.Texts, p)
	}
	sort.Slice(ss.Texts, func(i, j int) bool { return ss.Texts[i].ID < ss.Texts[j].ID })
	live := sub.pending[sub.head:]
	ss.Pending = make([]walPendingText, len(live))
	for i, pt := range live {
		ss.Pending[i] = walPendingText{ID: pt.id, Time: pt.time}
	}
	return ss, nil
}

// restoreSnapshot rebuilds the server from a snapshot payload. Runs
// before any traffic, on a freshly constructed Server.
func (s *Server) restoreSnapshot(payload []byte) error {
	var snap walSnap
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return fmt.Errorf("decoding: %w", err)
	}
	s.lastTime = snap.LastTime
	s.started = snap.Started
	s.closed.Store(snap.Closed)
	if snap.Dedup != nil {
		s.dedup = simhash.RestoreDeduper(*snap.Dedup)
	}
	s.ingested.Add(snap.Ingested)
	s.dropped.Add(snap.Dropped)
	s.shed.Add(snap.Shed)
	s.quarantines.Add(snap.Quarantines)
	s.gaps.Add(snap.Gaps)
	s.pushed.Add(snap.Pushed)
	s.routingSkipped.Add(snap.RoutingSkipped)
	s.idem.restore(snap.Idem)
	for i := range snap.Subs {
		if err := s.restoreSub(&snap.Subs[i]); err != nil {
			return fmt.Errorf("subscription %d: %w", snap.Subs[i].ID, err)
		}
	}
	s.mu.Lock()
	if snap.NextID > s.nextID {
		s.nextID = snap.NextID
	}
	n := len(s.subs)
	s.mu.Unlock()
	s.subCount.Store(int64(n))
	if o := s.obsState.Load(); o != nil {
		o.subs.Set(float64(n))
	}
	return nil
}

// restoreSub rebuilds one subscription: matcher and routing symbols are
// recompiled from the config (symbol ids may differ from the dead
// process's — they are only routing keys), the processor and view resume
// from their captured state.
func (s *Server) restoreSub(ss *walSubSnap) error {
	matcher, err := match.NewMatcher(ss.Cfg.Topics)
	if err != nil {
		return err
	}
	routeSyms := matcher.CompileSymbols(s.symtab)
	proc, err := stream.RestoreProcessor(ss.Proc)
	if err != nil {
		return err
	}
	sub := &subscription{
		id:            ss.ID,
		cfg:           ss.Cfg,
		routeSyms:     routeSyms,
		matcher:       matcher,
		proc:          proc,
		emissions:     ss.Emissions,
		texts:         make(map[int64]Post, len(ss.Texts)),
		delays:        obs.RestoreHistogram(ss.Delays),
		topk:          stream.RestoreTopK(ss.TopK),
		done:          ss.Done,
		doneReason:    ss.DoneReason,
		quarantineMsg: ss.QuarantineMsg,
	}
	sub.quarantined.Store(ss.Quarantined)
	sub.nextSeq.Add(ss.NextSeq)
	sub.matched.Add(ss.Matched)
	sub.textMisses.Add(ss.TextMisses)
	for _, p := range ss.Texts {
		sub.texts[p.ID] = p
	}
	sub.pending = make([]pendingText, len(ss.Pending))
	for i, pt := range ss.Pending {
		sub.pending[i] = pendingText{id: pt.ID, time: pt.Time}
	}
	s.mu.Lock()
	s.subs[sub.id] = sub
	s.order = insertOrdered(s.order, sub)
	if sub.id > s.nextID {
		s.nextID = sub.id
	}
	s.mu.Unlock()
	// A quarantined pipeline's postings were withdrawn live; keep it out
	// of the routing index so it stays isolated after the restart too.
	if !ss.Quarantined {
		s.routes.Add(sub.id, sub, routeSyms)
	}
	return nil
}

// insertOrdered adds sub to a copy of order, keeping it sorted by id.
func insertOrdered(order []*subscription, sub *subscription) []*subscription {
	i := sort.Search(len(order), func(k int) bool { return order[k].id >= sub.id })
	out := make([]*subscription, 0, len(order)+1)
	out = append(out, order[:i]...)
	out = append(out, sub)
	return append(out, order[i:]...)
}
