package server

import (
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestCrashRecoveryE2E is the kill-9 drill: a real mqdp-server process
// with a durability directory is SIGKILLed twice mid-stream — once
// between client batches and once while the ingest loop is running —
// and restarted on the same directory each time. The retrying client
// (unchanged idempotency key per batch) drives the whole stream to
// acceptance across both crashes, and the final per-subscription
// emission sequences must be byte-identical to an uninterrupted
// in-process run: nothing lost, nothing applied twice.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash drill skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "mqdp-server")
	build := exec.Command("go", "build", "-o", bin, "mqdp/cmd/mqdp-server")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mqdp-server: %v\n%s", err, out)
	}

	posts := durPosts(300)
	const batchSize = 10

	// Uninterrupted reference over the same stream, mirroring the
	// binary's defaults (-dedup 10 -dedup-window 8192).
	ref := New(10, 8192)
	ref.SetParallelism(1)
	refIDs := make([]int64, 0, len(durConfigs()))
	for _, cfg := range durConfigs() {
		id, err := ref.Subscribe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		refIDs = append(refIDs, id)
	}
	for _, p := range posts {
		if err := ref.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	ref.Flush()

	addr := freeAddr(t)
	baseURL := "http://" + addr
	dataDir := t.TempDir()
	srv, err := startServerProc(bin, addr, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	reapOnExit(t, srv)
	waitHealthy(t, baseURL)

	cl := NewClient(baseURL)
	cl.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	cl.Retry = &RetryPolicy{MaxAttempts: 200, BackoffBase: 5 * time.Millisecond, BackoffCap: 50 * time.Millisecond, Seed: 3}

	ids := make([]int64, 0, len(durConfigs()))
	for _, cfg := range durConfigs() {
		id, err := cl.Subscribe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if fmt.Sprint(ids) != fmt.Sprint(refIDs) {
		t.Fatalf("subscription ids diverge: %v vs %v", ids, refIDs)
	}

	type procResult struct {
		cmd *exec.Cmd
		err error
	}
	restarted := make(chan procResult, 1)
	for at := 0; at < len(posts); at += batchSize {
		switch at {
		case 100:
			// Crash #1: clean kill between batches. Every acked batch was
			// fsynced (-fsync batch); the restart, racing the client's
			// retries of the next batch, must recover them all.
			kill9(srv)
			go func() {
				cmd, err := startServerProc(bin, addr, dataDir)
				restarted <- procResult{cmd, err}
			}()
		case 200:
			// Crash #2: the kill lands while the ingest loop is running,
			// possibly mid-request — the ambiguous-outcome path. The
			// client retries the unanswered batch with the same
			// idempotency key; whether the dying server made the batch
			// durable or not, it lands exactly once.
			prev := srv
			go func() {
				time.Sleep(20 * time.Millisecond)
				kill9(prev)
				cmd, err := startServerProc(bin, addr, dataDir)
				restarted <- procResult{cmd, err}
			}()
		}
		end := min(at+batchSize, len(posts))
		n, err := cl.IngestAccepted(posts[at:end]...)
		if err != nil {
			t.Fatalf("batch at %d: %v", at, err)
		}
		if n != end-at {
			t.Fatalf("batch at %d: accepted %d of %d", at, n, end-at)
		}
		if at == 100 || at == 200 {
			// The batch above only completes once the new incarnation
			// serves it, so the restart result is already (or imminently)
			// available.
			r := <-restarted
			if r.err != nil {
				t.Fatal(r.err)
			}
			srv = r.cmd
			reapOnExit(t, srv)
		}
	}

	if h, err := cl.Health(); err != nil || h.Status != "ok" {
		t.Fatalf("health after two crash recoveries: %+v, %v", h, err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	refSt := ref.Stats()
	if st.Ingested != refSt.Ingested || st.DroppedDups != refSt.DroppedDups {
		t.Fatalf("stats diverged after recovery: got %+v, want %+v (a batch lost or applied twice)", st, refSt)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		got, err := cl.Emissions(id, 0, 0)
		if err != nil {
			t.Fatalf("sub %d: %v", id, err)
		}
		want, err := ref.Emissions(refIDs[i], 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("sub %d: emissions diverged across kill -9 recovery:\n got %d: %+v\nwant %d: %+v",
				id, len(got), got, len(want), want)
		}
	}
}

// freeAddr grabs a kernel-assigned localhost port and releases it, so
// every server incarnation can listen on the same address.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startServerProc launches the real binary on addr with a durability
// directory, fsync-per-batch and an aggressive snapshot cadence (so
// kills land before, during and after snapshots).
func startServerProc(bin, addr, dataDir string) (*exec.Cmd, error) {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-fsync", "batch",
		"-snapshot-interval", "300ms",
		"-log-level", "warn")
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	return cmd, nil
}

// reapOnExit makes sure a still-running incarnation dies with the test.
func reapOnExit(t *testing.T, cmd *exec.Cmd) {
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
}

// kill9 delivers SIGKILL — no signal handler, no flush, no snapshot —
// and reaps the process.
func kill9(cmd *exec.Cmd) {
	cmd.Process.Kill()
	cmd.Wait()
}

// waitHealthy polls /healthz until the process answers.
func waitHealthy(t *testing.T, baseURL string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server at %s never became healthy", baseURL)
}
