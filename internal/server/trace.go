package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mqdp/internal/obs"
)

// Request tracing, SLO classification and structured request logging for the
// HTTP surface. The middleware is wired unconditionally by Handler but costs
// three atomic loads and a branch when nothing is configured — the same
// near-free-when-disabled contract as the rest of the obs layer.
//
// Propagation is W3C trace-context shaped: requests carrying a valid
// traceparent header continue that trace (the remote caller's span becomes
// the parent); anything missing or malformed starts a fresh root — never a
// 4xx. Every traced response echoes X-Trace-Id so a client can pull the
// server-side tree from /debug/traces/{id}.

// SetSLO installs per-endpoint latency objectives: ingest classifies POST
// /ingest requests, poll classifies plain (non-long-poll) GET
// /subscriptions/{id}/emissions requests. Either may be nil (not tracked).
func (s *Server) SetSLO(ingest, poll *obs.SLO) {
	s.sloIngest.Store(ingest)
	s.sloPoll.Store(poll)
}

// SLOs returns the status of every configured SLO (empty when none are).
func (s *Server) SLOs() []obs.SLOStatus {
	var out []obs.SLOStatus
	if slo := s.sloIngest.Load(); slo != nil {
		out = append(out, slo.Status())
	}
	if slo := s.sloPoll.Load(); slo != nil {
		out = append(out, slo.Status())
	}
	return out
}

// SetLogger installs a structured logger for request and lifecycle records
// (trace-correlated via trace_id attrs). Nil disables request logging.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		s.logger.Store(nil)
		return
	}
	s.logger.Store(l)
}

// routeName maps a request path to the coarse name used for span naming and
// SLO classification (one name per endpoint, not per subscription).
func routeName(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/ingest":
		return "ingest"
	case p == "/subscriptions":
		return "subscribe"
	case strings.HasPrefix(p, "/subscriptions/"):
		rest := p[len("/subscriptions/"):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch rest[i+1:] {
			case "emissions", "topk", "stream", "digest", "stats":
				return rest[i+1:]
			}
			return "subscriptions"
		}
		if r.Method == http.MethodDelete {
			return "unsubscribe"
		}
		return "subscriptions"
	case p == "/flush":
		return "flush"
	case p == "/stats":
		return "stats"
	case p == "/metrics":
		return "metrics"
	case p == "/metrics/prometheus":
		return "prometheus"
	case p == "/healthz":
		return "healthz"
	case strings.HasPrefix(p, "/debug/traces"):
		return "debug_traces"
	}
	return "other"
}

// statusRecorder captures the response status for the span/SLO/log record.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// flushRecorder adds Flusher passthrough so the SSE handler's streaming
// assertion still holds through the middleware.
type flushRecorder struct {
	*statusRecorder
	f http.Flusher
}

func (r flushRecorder) Flush() { r.f.Flush() }

// withObs wraps the API mux with per-request tracing, SLO classification and
// request logging. With no tracer, SLOs or logger configured the wrapper is
// a few atomic loads and one branch per request.
func withObs(s *Server, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var tracer *obs.Tracer
		if o := s.obsState.Load(); o != nil {
			tracer = o.tracer
		}
		sloIngest := s.sloIngest.Load()
		sloPoll := s.sloPoll.Load()
		logger := s.logger.Load()
		if tracer == nil && sloIngest == nil && sloPoll == nil && logger == nil {
			h.ServeHTTP(w, r)
			return
		}

		route := routeName(r)
		start := time.Now()
		var span *obs.ActiveSpan
		if tracer != nil {
			// Extract-or-create: a valid traceparent continues the caller's
			// trace; anything missing or malformed starts a fresh root.
			if trace, parent, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
				span = tracer.StartRemote("http."+route, trace, parent)
			} else {
				span = tracer.StartTrace("http." + route)
			}
			span.Set("method", r.Method)
			span.Set("path", r.URL.Path)
			w.Header().Set("X-Trace-Id", span.TraceID().String())
			r = r.WithContext(obs.ContextWithSpan(r.Context(), span))
		}

		rec := &statusRecorder{ResponseWriter: w}
		var ww http.ResponseWriter = rec
		if f, ok := w.(http.Flusher); ok {
			ww = flushRecorder{rec, f}
		}
		h.ServeHTTP(ww, r)

		elapsed := time.Since(start)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		if span != nil {
			span.SetInt("status", int64(status))
			if status >= 500 {
				span.SetError(fmt.Errorf("http status %d", status))
			}
			span.End()
		}
		switch route {
		case "ingest":
			sloIngest.Observe(elapsed)
		case "emissions":
			// Long polls park on purpose; only plain polls count against
			// the poll latency objective.
			if r.URL.Query().Get("wait") == "" {
				sloPoll.Observe(elapsed)
			}
		}
		if logger != nil {
			level := slog.LevelDebug
			if status >= 500 {
				level = slog.LevelWarn
			}
			if logger.Enabled(r.Context(), level) {
				attrs := []any{
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Int("status", status),
					slog.Duration("elapsed", elapsed),
				}
				if span != nil {
					attrs = append(attrs, slog.String("trace_id", span.TraceID().String()))
				}
				logger.Log(r.Context(), level, "http request", attrs...)
			}
		}
	})
}

// traceListLimit is the default /debug/traces list length.
const traceListLimit = 50

// handleTraceList serves GET /debug/traces: recent traces, newest first.
// ?n= caps the list, ?min= (a Go duration) keeps only traces at least that
// slow, ?format=text renders one line per trace.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	tracer := s.tracer()
	if tracer == nil {
		http.Error(w, "tracer not wired", http.StatusServiceUnavailable)
		return
	}
	n := traceListLimit
	if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v > 0 {
		n = v
	}
	var minDur time.Duration
	if v, err := time.ParseDuration(r.URL.Query().Get("min")); err == nil && v > 0 {
		minDur = v
	}
	sums := tracer.Summaries()
	filtered := sums[:0]
	for _, sum := range sums {
		if time.Duration(sum.DurationMS*float64(time.Millisecond)) >= minDur {
			filtered = append(filtered, sum)
		}
	}
	if len(filtered) > n {
		filtered = filtered[:n]
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, sum := range filtered {
			fmt.Fprintf(w, "%s %s %.3fms spans=%d errors=%d\n",
				sum.Trace, sum.Root, sum.DurationMS, sum.Spans, sum.Errors)
		}
		return
	}
	stats := tracer.Stats()
	writeJSON(w, map[string]any{
		"traces":      filtered,
		"recorded":    stats.Recorded,
		"sampled_out": stats.SampledOut,
		"dropped":     stats.Dropped,
	})
}

// handleTraceGet serves GET /debug/traces/{id}: one trace as a parent-linked
// span tree (JSON, or indented text with ?format=text).
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	tracer := s.tracer()
	if tracer == nil {
		http.Error(w, "tracer not wired", http.StatusServiceUnavailable)
		return
	}
	id, ok := obs.ParseTraceID(strings.TrimPrefix(r.URL.Path, "/debug/traces/"))
	if !ok {
		http.Error(w, "bad trace id (want 32 hex digits)", http.StatusBadRequest)
		return
	}
	spans := tracer.Trace(id)
	if len(spans) == 0 {
		http.Error(w, "trace not found (dropped, sampled out, or never existed)", http.StatusNotFound)
		return
	}
	roots := obs.BuildTraceTree(spans)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %s (%d spans)\n", id, len(spans))
		_ = obs.WriteTraceTree(w, roots)
		return
	}
	writeJSON(w, map[string]any{
		"trace": id.String(),
		"spans": len(spans),
		"roots": roots,
	})
}

// tracer returns the wired span tracer, or nil.
func (s *Server) tracer() *obs.Tracer {
	if o := s.obsState.Load(); o != nil {
		return o.tracer
	}
	return nil
}
