package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"mqdp/internal/faultinject"
	"mqdp/internal/synth"
)

// runRoutingWorkload builds a server over a fixed random world (16
// subscriptions with randomly overlapping topic sets), streams the same
// tweet sequence through it — with a scripted mid-stream pipeline panic
// that quarantines one subscription — and returns every subscription's
// emissions as JSON, keyed by id.
func runRoutingWorkload(t *testing.T, routing bool, workers int) map[int64][]byte {
	t.Helper()
	world := synth.NewWorld(synth.WorldConfig{Seed: 5})
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 900, RatePerSec: 4, Seed: 6})
	s := New(3, 64)
	s.SetRouting(routing)
	s.SetParallelism(workers)
	// The panic fires on the quarantined subscription's 4th matched post:
	// Fire runs only after a match, so the trigger count is identical in
	// routed and broadcast mode by the superset-filter contract.
	inj, err := faultinject.ParseSchedule("sub5.process@4=panic:routing-prop-panic", 9)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultInjector(inj)
	rng := newRand(7)
	var ids []int64
	algos := []string{"streamscan+", "streamscan", "streamgreedy", "streamgreedy+", "instant"}
	for i := 0; i < 16; i++ {
		id, err := s.Subscribe(SubscriptionConfig{
			Topics:    world.MatchTopics(world.SampleLabelSet(rng, 1+rng.Intn(4))),
			Lambda:    60 + float64(rng.Intn(120)),
			Tau:       float64(rng.Intn(30)),
			Algorithm: algos[i%len(algos)],
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, tw := range tweets {
		if err := s.Ingest(Post{ID: int64(i + 1), Time: tw.Time, Text: tw.Text}); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	// Unsubscribe one profile mid-API-surface to exercise posting removal,
	// then flush the rest.
	if err := s.Unsubscribe(ids[2]); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	st, err := s.SubscriptionStats(5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quarantined {
		t.Fatalf("routing=%v workers=%d: subscription 5 not quarantined", routing, workers)
	}
	out := make(map[int64][]byte)
	for _, id := range ids {
		if id == ids[2] {
			continue
		}
		es, err := s.Emissions(id, 0, 0)
		if err != nil {
			t.Fatalf("emissions %d: %v", id, err)
		}
		raw, err := json.Marshal(es)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = raw
	}
	return out
}

// TestRoutingEquivalence is the tentpole's safety property: per-subscription
// emission streams are byte-identical with inverted routing on and off,
// across fan-out worker counts, random topic overlap, a mid-stream
// quarantine and an unsubscribe. Routing must be a pure superset filter —
// it may only skip subscriptions that would have matched nothing.
func TestRoutingEquivalence(t *testing.T) {
	ref := runRoutingWorkload(t, false, 1)
	if len(ref) == 0 {
		t.Fatal("reference run produced no subscriptions")
	}
	var total int
	for _, raw := range ref {
		var es []Emission
		if err := json.Unmarshal(raw, &es); err != nil {
			t.Fatal(err)
		}
		total += len(es)
	}
	if total == 0 {
		t.Fatal("reference run produced no emissions; workload too sparse to prove anything")
	}
	for _, workers := range []int{1, 2, 4} {
		for _, routing := range []bool{true, false} {
			if !routing && workers == 1 {
				continue // that is the reference itself
			}
			t.Run(fmt.Sprintf("routing=%v/workers=%d", routing, workers), func(t *testing.T) {
				got := runRoutingWorkload(t, routing, workers)
				if len(got) != len(ref) {
					t.Fatalf("subscription count %d, want %d", len(got), len(ref))
				}
				for id, want := range ref {
					if !bytes.Equal(got[id], want) {
						t.Errorf("subscription %d emissions diverged\n got: %s\nwant: %s", id, got[id], want)
					}
				}
			})
		}
	}
}

// TestIngestScratchBounded checks the oversized-scratch policy: one
// pathological post must not pin a huge tokenize buffer on the server
// forever (the slice analogue of the wire pool's byte cap).
func TestIngestScratchBounded(t *testing.T) {
	s := New(0, 0)
	if _, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 10, Tau: 0, Algorithm: "instant"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(Post{ID: 1, Time: 0, Text: "obama speaks briefly"}); err != nil {
		t.Fatal(err)
	}
	small := cap(s.wordBuf)
	if small == 0 || small > keepIngestScratch {
		t.Fatalf("small-post scratch cap = %d, want (0, %d]", small, keepIngestScratch)
	}
	var huge bytes.Buffer
	for i := 0; i < 2*keepIngestScratch; i++ {
		fmt.Fprintf(&huge, "w%d ", i)
	}
	if err := s.Ingest(Post{ID: 2, Time: 1, Text: huge.String()}); err != nil {
		t.Fatal(err)
	}
	if got := cap(s.wordBuf); got != 0 {
		t.Errorf("post-pathological wordBuf cap = %d, want 0 (dropped)", got)
	}
	// The next ordinary post re-grows a right-sized buffer.
	if err := s.Ingest(Post{ID: 3, Time: 2, Text: "senate votes again"}); err != nil {
		t.Fatal(err)
	}
	if got := cap(s.wordBuf); got == 0 || got > keepIngestScratch {
		t.Errorf("recovered scratch cap = %d, want (0, %d]", got, keepIngestScratch)
	}
}

// TestRoutingSkippedAccounting checks the routed path's observable side
// channel: a post matching no subscription skips every live one, and the
// Metrics snapshot reports routing on with a nonzero skip count.
func TestRoutingSkippedAccounting(t *testing.T) {
	s := New(0, 0)
	s.SetParallelism(1)
	for i := 0; i < 3; i++ {
		if _, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 10, Tau: 0, Algorithm: "instant"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ingest(Post{ID: 1, Time: 0, Text: "nothing relevant here"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(Post{ID: 2, Time: 1, Text: "obama speaks"}); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if !m.Routing {
		t.Error("Metrics.Routing = false, want true by default")
	}
	// Post 1 skipped all 3 subscriptions; post 2 matched all 3.
	if m.RoutingSkipped != 3 {
		t.Errorf("RoutingSkipped = %d, want 3", m.RoutingSkipped)
	}
	if m.MatchedTotal != 3 {
		t.Errorf("MatchedTotal = %d, want 3", m.MatchedTotal)
	}
	s.SetRouting(false)
	if err := s.Ingest(Post{ID: 3, Time: 2, Text: "also nothing"}); err != nil {
		t.Fatal(err)
	}
	m = s.Metrics()
	if m.Routing {
		t.Error("Metrics.Routing = true after SetRouting(false)")
	}
	if m.RoutingSkipped != 3 {
		t.Errorf("RoutingSkipped moved on broadcast path: %d", m.RoutingSkipped)
	}
}
