package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mqdp/internal/faultinject"
	"mqdp/internal/wal"
)

// durPosts generates a deterministic workload mixing matching and
// non-matching posts (politicsTopics keywords plus noise) with strictly
// nondecreasing times and occasional exact near-duplicates for the
// deduper.
func durPosts(n int) []Post {
	rng := rand.New(rand.NewSource(42))
	words := []string{"obama", "president", "senate", "congress", "lunch", "game", "rain", "bill", "votes", "speech"}
	posts := make([]Post, n)
	tm := 0.0
	for i := range posts {
		tm += rng.Float64() * 20
		var b strings.Builder
		for w := 0; w < 3+rng.Intn(5); w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[rng.Intn(len(words))])
		}
		posts[i] = Post{ID: int64(i + 1), Time: tm, Text: b.String()}
	}
	return posts
}

func durConfigs() []SubscriptionConfig {
	return []SubscriptionConfig{
		{Topics: politicsTopics(), Lambda: 40, Tau: 15, Algorithm: "streamscan+"},
		{Topics: politicsTopics(), Lambda: 25, Tau: 10, Algorithm: "streamgreedy"},
		{Topics: politicsTopics(), Lambda: 10, Algorithm: "instant"},
	}
}

// durOpen builds a durable server on dir (SyncBatch, no snapshot timer).
func durOpen(t *testing.T, dir string) *Server {
	t.Helper()
	s := New(3, 64)
	s.SetParallelism(1)
	if err := s.EnableDurability(DurabilityConfig{Dir: dir, Fsync: wal.SyncBatch}); err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	return s
}

// runReference drives the whole workload on an in-memory server and
// returns its per-subscription emissions — the ground truth a crashed-
// and-recovered server must reproduce byte for byte.
func runReference(t *testing.T, posts []Post, flush bool) (map[int64][]Emission, *Server) {
	t.Helper()
	ref := New(3, 64)
	ref.SetParallelism(1)
	ids := make([]int64, 0, len(durConfigs()))
	for _, cfg := range durConfigs() {
		id, err := ref.Subscribe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, p := range posts {
		if err := ref.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	if flush {
		ref.Flush()
	}
	out := make(map[int64][]Emission)
	for _, id := range ids {
		es, err := ref.Emissions(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = es
	}
	return out, ref
}

func compareEmissions(t *testing.T, got *Server, want map[int64][]Emission) {
	t.Helper()
	for id, ref := range want {
		es, err := got.Emissions(id, 0, 0)
		if err != nil {
			t.Fatalf("sub %d: %v", id, err)
		}
		if !reflect.DeepEqual(es, ref) {
			t.Fatalf("sub %d: emissions diverged after recovery:\n got %d: %+v\nwant %d: %+v",
				id, len(es), es, len(ref), ref)
		}
	}
}

// TestDurabilityCrashReplayNoSnapshot kills the server (abandons it
// without any snapshot or clean close) mid-stream: the restart must
// rebuild everything from the WAL alone and the spliced stream must be
// byte-identical to an uninterrupted run.
func TestDurabilityCrashReplayNoSnapshot(t *testing.T) {
	posts := durPosts(120)
	want, ref := runReference(t, posts, true)

	dir := t.TempDir()
	a := durOpen(t, dir)
	for _, cfg := range durConfigs() {
		if _, err := a.Subscribe(cfg); err != nil {
			t.Fatal(err)
		}
	}
	cut := 70
	for i := 0; i < cut; i += 7 {
		end := i + 7
		if end > cut {
			end = cut
		}
		if _, _, err := a.IngestBatch(context.Background(), posts[i:end], fmt.Sprintf("batch-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no CloseDurability, no snapshot. SyncBatch committed every
	// batch, so the log content is what a kill -9 would leave behind.

	b := durOpen(t, dir)
	m := b.Metrics()
	if m.Durability == nil || m.Durability.ReplayedRecords == 0 {
		t.Fatalf("expected replayed records, got %+v", m.Durability)
	}
	if m.Durability.ReplayedPosts != int64(cut) {
		t.Fatalf("replayed %d posts, want %d", m.Durability.ReplayedPosts, cut)
	}
	if m.Subscriptions != len(durConfigs()) {
		t.Fatalf("recovered %d subscriptions, want %d", m.Subscriptions, len(durConfigs()))
	}
	for _, p := range posts[cut:] {
		if err := b.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	b.Flush()
	compareEmissions(t, b, want)
	// Per-subscription views and stats also line up with the reference.
	for id := range want {
		gs, _ := b.SubscriptionStats(id)
		rs, _ := ref.SubscriptionStats(id)
		if !reflect.DeepEqual(gs, rs) {
			t.Fatalf("sub %d stats diverged:\n got %+v\nwant %+v", id, gs, rs)
		}
		gt, _ := b.TopK(id)
		rt, _ := ref.TopK(id)
		if !reflect.DeepEqual(gt.Items, rt.Items) || gt.K != rt.K {
			t.Fatalf("sub %d topk diverged:\n got %+v\nwant %+v", id, gt, rt)
		}
	}
	if ing, ref := b.Stats().Ingested, ref.Stats().Ingested; ing != ref {
		t.Fatalf("ingested %d, want %d (batch applied twice?)", ing, ref)
	}
}

// TestDurabilitySnapshotRestore snapshots mid-stream: recovery must load
// the snapshot and replay only the WAL suffix, with identical emissions.
func TestDurabilitySnapshotRestore(t *testing.T) {
	posts := durPosts(120)
	want, _ := runReference(t, posts, true)

	dir := t.TempDir()
	a := durOpen(t, dir)
	for _, cfg := range durConfigs() {
		if _, err := a.Subscribe(cfg); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range posts[:60] {
		if err := a.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for _, p := range posts[60:90] {
		if err := a.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	// Crash after the snapshot plus 30 more journaled posts.

	b := durOpen(t, dir)
	m := b.Metrics()
	if m.Durability.SnapshotLSN == 0 {
		t.Fatal("restart did not load the snapshot")
	}
	if m.Durability.ReplayedPosts != 30 {
		t.Fatalf("replayed %d posts, want 30 (snapshot should cover the first 60)", m.Durability.ReplayedPosts)
	}
	for _, p := range posts[90:] {
		if err := b.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	b.Flush()
	compareEmissions(t, b, want)
}

// TestDurabilityGracefulRestartZeroReplay: CloseDurability snapshots, so
// the next start replays nothing.
func TestDurabilityGracefulRestartZeroReplay(t *testing.T) {
	posts := durPosts(50)
	dir := t.TempDir()
	a := durOpen(t, dir)
	id, err := a.Subscribe(durConfigs()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range posts {
		if err := a.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	before, err := a.Emissions(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	b := durOpen(t, dir)
	m := b.Metrics()
	if m.Durability.ReplayedRecords != 0 {
		t.Fatalf("graceful restart replayed %d records, want 0", m.Durability.ReplayedRecords)
	}
	after, err := b.Emissions(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatal("emissions diverged across graceful restart")
	}
}

// TestDurabilityIdempotencyAcrossRestart (satellite): a client retrying
// an ingest across a crash still gets the recorded outcome with
// Idempotent-Replay: true — the batch is never applied twice.
func TestDurabilityIdempotencyAcrossRestart(t *testing.T) {
	posts := durPosts(20)
	dir := t.TempDir()
	a := durOpen(t, dir)
	if _, err := a.Subscribe(durConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(a))
	body := `[{"id":1,"time":1,"text":"obama speaks"},{"id":2,"time":2,"text":"senate votes"}]`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/ingest", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "crash-key-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: status %d", resp.StatusCode)
	}
	ingested := a.Stats().Ingested
	ts.Close()
	// Crash (no snapshot, no close) and restart.
	_ = posts

	b := durOpen(t, dir)
	if got := b.Stats().Ingested; got != ingested {
		t.Fatalf("recovered ingested %d, want %d", got, ingested)
	}
	ts2 := httptest.NewServer(Handler(b))
	defer ts2.Close()
	req2, _ := http.NewRequest(http.MethodPost, ts2.URL+"/ingest", strings.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("Idempotency-Key", "crash-key-1")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replayed ingest: status %d", resp2.StatusCode)
	}
	if resp2.Header.Get("Idempotent-Replay") != "true" {
		t.Fatal("retry across restart was not served from the replay cache")
	}
	if got := b.Stats().Ingested; got != ingested {
		t.Fatalf("retry re-applied the batch: ingested %d, want %d", got, ingested)
	}
}

// TestDurabilityTerminalLatchesAcrossRestart (satellite): flushed and
// quarantined latches survive a crash, so clients get the same 409 /
// X-Stream-End answers from the restarted process.
func TestDurabilityTerminalLatchesAcrossRestart(t *testing.T) {
	t.Run("flushed", func(t *testing.T) {
		dir := t.TempDir()
		a := durOpen(t, dir)
		if _, err := a.Subscribe(durConfigs()[0]); err != nil {
			t.Fatal(err)
		}
		if err := a.Ingest(Post{ID: 1, Time: 1, Text: "obama speaks"}); err != nil {
			t.Fatal(err)
		}
		a.Flush()
		// Crash after the flush latch was journaled.

		b := durOpen(t, dir)
		if h := b.Health(); h.Status != "flushed" {
			t.Fatalf("health %q, want flushed", h.Status)
		}
		if err := b.Ingest(Post{ID: 2, Time: 2, Text: "senate votes"}); !errors.Is(err, ErrClosed) {
			t.Fatalf("ingest after recovered flush: %v, want ErrClosed", err)
		}
		ts := httptest.NewServer(Handler(b))
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(`{"id":3,"time":3,"text":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("ingest on recovered flushed server: status %d, want 409", resp.StatusCode)
		}
	})
	t.Run("quarantined", func(t *testing.T) {
		dir := t.TempDir()
		a := durOpen(t, dir)
		id, err := a.Subscribe(durConfigs()[0])
		if err != nil {
			t.Fatal(err)
		}
		inj, err := faultinject.ParseSchedule(fmt.Sprintf("sub%d.process@1=panic:poisoned", id), 1)
		if err != nil {
			t.Fatal(err)
		}
		a.SetFaultInjector(inj)
		if err := a.Ingest(Post{ID: 1, Time: 1, Text: "obama speaks"}); err != nil {
			t.Fatal(err)
		}
		st, _ := a.SubscriptionStats(id)
		if !st.Quarantined {
			t.Fatal("panic did not quarantine")
		}
		// The quarantine record rides the next committed batch.
		if err := a.Ingest(Post{ID: 2, Time: 2, Text: "senate votes"}); err != nil {
			t.Fatal(err)
		}
		// Crash.

		b := durOpen(t, dir)
		got, err := b.SubscriptionStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Quarantined || got.QuarantineReason != st.QuarantineReason {
			t.Fatalf("recovered quarantine state %+v, want %+v", got, st)
		}
		// The ended stream answers 409 + X-Stream-End on blocking reads.
		ts := httptest.NewServer(Handler(b))
		defer ts.Close()
		resp, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions?after=0&wait=5s", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict || resp.Header.Get("X-Stream-End") != EndReasonQuarantined {
			t.Fatalf("blocking poll on recovered quarantined sub: status %d, X-Stream-End %q",
				resp.StatusCode, resp.Header.Get("X-Stream-End"))
		}
	})
}

// TestDurabilityDegradedReadOnly (satellite): an injected disk fault on
// the WAL append path latches read-only mode — ingest and registry
// mutations answer 503 + Retry-After while reads keep serving.
func TestDurabilityDegradedReadOnly(t *testing.T) {
	dir := t.TempDir()
	s := New(0, 0)
	s.SetParallelism(1)
	inj, err := faultinject.ParseSchedule("wal.append@4+=disk:", 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultInjector(inj)
	if err := s.EnableDurability(DurabilityConfig{Dir: dir, Fsync: wal.SyncBatch}); err != nil {
		t.Fatal(err)
	}
	id, err := s.Subscribe(durConfigs()[0]) // append 1
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(Post{ID: 1, Time: 1, Text: "obama speaks"}); err != nil { // append 2
		t.Fatal(err)
	}
	if err := s.Ingest(Post{ID: 2, Time: 2, Text: "senate votes"}); err != nil { // append 3
		t.Fatal(err)
	}
	// Append 4 hits the injected disk fault.
	err = s.Ingest(Post{ID: 3, Time: 3, Text: "congress debates"})
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, faultinject.ErrDisk) {
		t.Fatalf("ingest on disk fault: %v, want ErrReadOnly wrapping ErrDisk", err)
	}
	// Latched: everything write-shaped refuses instantly now.
	if err := s.Ingest(Post{ID: 4, Time: 4, Text: "x"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ingest while degraded: %v", err)
	}
	if _, err := s.Subscribe(durConfigs()[1]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("subscribe while degraded: %v", err)
	}
	if err := s.Unsubscribe(id); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("unsubscribe while degraded: %v", err)
	}
	if h := s.Health(); h.Status != "degraded" || h.DegradedReason == "" {
		t.Fatalf("health %+v, want degraded with a reason", h)
	}
	m := s.Metrics()
	if m.Durability == nil || !m.Durability.Degraded {
		t.Fatalf("metrics durability %+v, want degraded", m.Durability)
	}
	// Reads still serve: the applied prefix is pollable.
	es, err := s.Emissions(id, 0, 0)
	if err != nil {
		t.Fatalf("poll while degraded: %v", err)
	}
	_ = es
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(`{"id":9,"time":9,"text":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("HTTP ingest while degraded: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if resp2, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions?after=0", ts.URL, id)); err != nil {
		t.Fatal(err)
	} else {
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("poll while degraded: status %d", resp2.StatusCode)
		}
	}
}

// TestDurabilityTornTailRecovery truncates the live WAL segment at an
// arbitrary byte offset (a torn final write) and restarts: the valid
// prefix recovers, the damage is reported, and the server keeps working.
func TestDurabilityTornTailRecovery(t *testing.T) {
	posts := durPosts(40)
	dir := t.TempDir()
	a := durOpen(t, dir)
	if _, err := a.Subscribe(durConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	for _, p := range posts {
		if err := a.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the tail: chop 11 bytes off the (only) segment, landing inside
	// the last record's frame.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-11); err != nil {
		t.Fatal(err)
	}

	b := durOpen(t, dir)
	m := b.Metrics()
	if m.Durability.RepairedBytes == 0 {
		t.Fatal("torn tail not reported as repaired")
	}
	// The last post fell inside the torn record; everything before it
	// replayed. The server accepts new appends after the repair.
	if m.Durability.ReplayedPosts != int64(len(posts)-1) {
		t.Fatalf("replayed %d posts, want %d", m.Durability.ReplayedPosts, len(posts)-1)
	}
	if err := b.Ingest(posts[len(posts)-1]); err != nil {
		t.Fatalf("ingest after torn-tail repair: %v", err)
	}
}
