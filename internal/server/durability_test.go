package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mqdp/internal/faultinject"
	"mqdp/internal/wal"
)

// durPosts generates a deterministic workload mixing matching and
// non-matching posts (politicsTopics keywords plus noise) with strictly
// nondecreasing times and occasional exact near-duplicates for the
// deduper.
func durPosts(n int) []Post {
	rng := rand.New(rand.NewSource(42))
	words := []string{"obama", "president", "senate", "congress", "lunch", "game", "rain", "bill", "votes", "speech"}
	posts := make([]Post, n)
	tm := 0.0
	for i := range posts {
		tm += rng.Float64() * 20
		var b strings.Builder
		for w := 0; w < 3+rng.Intn(5); w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[rng.Intn(len(words))])
		}
		posts[i] = Post{ID: int64(i + 1), Time: tm, Text: b.String()}
	}
	return posts
}

func durConfigs() []SubscriptionConfig {
	return []SubscriptionConfig{
		{Topics: politicsTopics(), Lambda: 40, Tau: 15, Algorithm: "streamscan+"},
		{Topics: politicsTopics(), Lambda: 25, Tau: 10, Algorithm: "streamgreedy"},
		{Topics: politicsTopics(), Lambda: 10, Algorithm: "instant"},
	}
}

// durOpen builds a durable server on dir (SyncBatch, no snapshot timer).
func durOpen(t *testing.T, dir string) *Server {
	t.Helper()
	s := New(3, 64)
	s.SetParallelism(1)
	if err := s.EnableDurability(DurabilityConfig{Dir: dir, Fsync: wal.SyncBatch}); err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	return s
}

// runReference drives the whole workload on an in-memory server and
// returns its per-subscription emissions — the ground truth a crashed-
// and-recovered server must reproduce byte for byte.
func runReference(t *testing.T, posts []Post, flush bool) (map[int64][]Emission, *Server) {
	t.Helper()
	ref := New(3, 64)
	ref.SetParallelism(1)
	ids := make([]int64, 0, len(durConfigs()))
	for _, cfg := range durConfigs() {
		id, err := ref.Subscribe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, p := range posts {
		if err := ref.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	if flush {
		ref.Flush()
	}
	out := make(map[int64][]Emission)
	for _, id := range ids {
		es, err := ref.Emissions(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = es
	}
	return out, ref
}

func compareEmissions(t *testing.T, got *Server, want map[int64][]Emission) {
	t.Helper()
	for id, ref := range want {
		es, err := got.Emissions(id, 0, 0)
		if err != nil {
			t.Fatalf("sub %d: %v", id, err)
		}
		if !reflect.DeepEqual(es, ref) {
			t.Fatalf("sub %d: emissions diverged after recovery:\n got %d: %+v\nwant %d: %+v",
				id, len(es), es, len(ref), ref)
		}
	}
}

// TestDurabilityCrashReplayNoSnapshot kills the server (abandons it
// without any snapshot or clean close) mid-stream: the restart must
// rebuild everything from the WAL alone and the spliced stream must be
// byte-identical to an uninterrupted run.
func TestDurabilityCrashReplayNoSnapshot(t *testing.T) {
	posts := durPosts(120)
	want, ref := runReference(t, posts, true)

	dir := t.TempDir()
	a := durOpen(t, dir)
	for _, cfg := range durConfigs() {
		if _, err := a.Subscribe(cfg); err != nil {
			t.Fatal(err)
		}
	}
	cut := 70
	for i := 0; i < cut; i += 7 {
		end := i + 7
		if end > cut {
			end = cut
		}
		if _, _, err := a.IngestBatch(context.Background(), posts[i:end], fmt.Sprintf("batch-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no CloseDurability, no snapshot. SyncBatch committed every
	// batch, so the log content is what a kill -9 would leave behind.

	b := durOpen(t, dir)
	m := b.Metrics()
	if m.Durability == nil || m.Durability.ReplayedRecords == 0 {
		t.Fatalf("expected replayed records, got %+v", m.Durability)
	}
	if m.Durability.ReplayedPosts != int64(cut) {
		t.Fatalf("replayed %d posts, want %d", m.Durability.ReplayedPosts, cut)
	}
	if m.Subscriptions != len(durConfigs()) {
		t.Fatalf("recovered %d subscriptions, want %d", m.Subscriptions, len(durConfigs()))
	}
	for _, p := range posts[cut:] {
		if err := b.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	b.Flush()
	compareEmissions(t, b, want)
	// Per-subscription views and stats also line up with the reference.
	for id := range want {
		gs, _ := b.SubscriptionStats(id)
		rs, _ := ref.SubscriptionStats(id)
		if !reflect.DeepEqual(gs, rs) {
			t.Fatalf("sub %d stats diverged:\n got %+v\nwant %+v", id, gs, rs)
		}
		gt, _ := b.TopK(id)
		rt, _ := ref.TopK(id)
		if !reflect.DeepEqual(gt.Items, rt.Items) || gt.K != rt.K {
			t.Fatalf("sub %d topk diverged:\n got %+v\nwant %+v", id, gt, rt)
		}
	}
	if ing, ref := b.Stats().Ingested, ref.Stats().Ingested; ing != ref {
		t.Fatalf("ingested %d, want %d (batch applied twice?)", ing, ref)
	}
}

// TestDurabilitySnapshotRestore snapshots mid-stream: recovery must load
// the snapshot and replay only the WAL suffix, with identical emissions.
func TestDurabilitySnapshotRestore(t *testing.T) {
	posts := durPosts(120)
	want, _ := runReference(t, posts, true)

	dir := t.TempDir()
	a := durOpen(t, dir)
	for _, cfg := range durConfigs() {
		if _, err := a.Subscribe(cfg); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range posts[:60] {
		if err := a.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for _, p := range posts[60:90] {
		if err := a.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	// Crash after the snapshot plus 30 more journaled posts.

	b := durOpen(t, dir)
	m := b.Metrics()
	if m.Durability.SnapshotLSN == 0 {
		t.Fatal("restart did not load the snapshot")
	}
	if m.Durability.ReplayedPosts != 30 {
		t.Fatalf("replayed %d posts, want 30 (snapshot should cover the first 60)", m.Durability.ReplayedPosts)
	}
	for _, p := range posts[90:] {
		if err := b.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	b.Flush()
	compareEmissions(t, b, want)
}

// TestDurabilityGracefulRestartZeroReplay: CloseDurability snapshots, so
// the next start replays nothing.
func TestDurabilityGracefulRestartZeroReplay(t *testing.T) {
	posts := durPosts(50)
	dir := t.TempDir()
	a := durOpen(t, dir)
	id, err := a.Subscribe(durConfigs()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range posts {
		if err := a.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	before, err := a.Emissions(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	b := durOpen(t, dir)
	m := b.Metrics()
	if m.Durability.ReplayedRecords != 0 {
		t.Fatalf("graceful restart replayed %d records, want 0", m.Durability.ReplayedRecords)
	}
	after, err := b.Emissions(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatal("emissions diverged across graceful restart")
	}
}

// TestDurabilityIdempotencyAcrossRestart (satellite): a client retrying
// an ingest across a crash still gets the recorded outcome with
// Idempotent-Replay: true — the batch is never applied twice.
func TestDurabilityIdempotencyAcrossRestart(t *testing.T) {
	posts := durPosts(20)
	dir := t.TempDir()
	a := durOpen(t, dir)
	if _, err := a.Subscribe(durConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(a))
	body := `[{"id":1,"time":1,"text":"obama speaks"},{"id":2,"time":2,"text":"senate votes"}]`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/ingest", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "crash-key-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: status %d", resp.StatusCode)
	}
	ingested := a.Stats().Ingested
	ts.Close()
	// Crash (no snapshot, no close) and restart.
	_ = posts

	b := durOpen(t, dir)
	if got := b.Stats().Ingested; got != ingested {
		t.Fatalf("recovered ingested %d, want %d", got, ingested)
	}
	ts2 := httptest.NewServer(Handler(b))
	defer ts2.Close()
	req2, _ := http.NewRequest(http.MethodPost, ts2.URL+"/ingest", strings.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("Idempotency-Key", "crash-key-1")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replayed ingest: status %d", resp2.StatusCode)
	}
	if resp2.Header.Get("Idempotent-Replay") != "true" {
		t.Fatal("retry across restart was not served from the replay cache")
	}
	if got := b.Stats().Ingested; got != ingested {
		t.Fatalf("retry re-applied the batch: ingested %d, want %d", got, ingested)
	}
}

// TestDurabilityTerminalLatchesAcrossRestart (satellite): flushed and
// quarantined latches survive a crash, so clients get the same 409 /
// X-Stream-End answers from the restarted process.
func TestDurabilityTerminalLatchesAcrossRestart(t *testing.T) {
	t.Run("flushed", func(t *testing.T) {
		dir := t.TempDir()
		a := durOpen(t, dir)
		if _, err := a.Subscribe(durConfigs()[0]); err != nil {
			t.Fatal(err)
		}
		if err := a.Ingest(Post{ID: 1, Time: 1, Text: "obama speaks"}); err != nil {
			t.Fatal(err)
		}
		a.Flush()
		// Crash after the flush latch was journaled.

		b := durOpen(t, dir)
		if h := b.Health(); h.Status != "flushed" {
			t.Fatalf("health %q, want flushed", h.Status)
		}
		if err := b.Ingest(Post{ID: 2, Time: 2, Text: "senate votes"}); !errors.Is(err, ErrClosed) {
			t.Fatalf("ingest after recovered flush: %v, want ErrClosed", err)
		}
		ts := httptest.NewServer(Handler(b))
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(`{"id":3,"time":3,"text":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("ingest on recovered flushed server: status %d, want 409", resp.StatusCode)
		}
	})
	t.Run("quarantined", func(t *testing.T) {
		dir := t.TempDir()
		a := durOpen(t, dir)
		id, err := a.Subscribe(durConfigs()[0])
		if err != nil {
			t.Fatal(err)
		}
		inj, err := faultinject.ParseSchedule(fmt.Sprintf("sub%d.process@1=panic:poisoned", id), 1)
		if err != nil {
			t.Fatal(err)
		}
		a.SetFaultInjector(inj)
		if err := a.Ingest(Post{ID: 1, Time: 1, Text: "obama speaks"}); err != nil {
			t.Fatal(err)
		}
		st, _ := a.SubscriptionStats(id)
		if !st.Quarantined {
			t.Fatal("panic did not quarantine")
		}
		// The quarantine record rides the next committed batch.
		if err := a.Ingest(Post{ID: 2, Time: 2, Text: "senate votes"}); err != nil {
			t.Fatal(err)
		}
		// Crash.

		b := durOpen(t, dir)
		got, err := b.SubscriptionStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Quarantined || got.QuarantineReason != st.QuarantineReason {
			t.Fatalf("recovered quarantine state %+v, want %+v", got, st)
		}
		// The ended stream answers 409 + X-Stream-End on blocking reads.
		ts := httptest.NewServer(Handler(b))
		defer ts.Close()
		resp, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions?after=0&wait=5s", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict || resp.Header.Get("X-Stream-End") != EndReasonQuarantined {
			t.Fatalf("blocking poll on recovered quarantined sub: status %d, X-Stream-End %q",
				resp.StatusCode, resp.Header.Get("X-Stream-End"))
		}
	})
}

// TestDurabilityDegradedReadOnly (satellite): an injected disk fault on
// the WAL append path latches read-only mode — ingest and registry
// mutations answer 503 + Retry-After while reads keep serving.
func TestDurabilityDegradedReadOnly(t *testing.T) {
	dir := t.TempDir()
	s := New(0, 0)
	s.SetParallelism(1)
	// Each ingest appends a batch record and its ack; the subscribe is
	// append 1, so the third ingest's batch record is append 6.
	inj, err := faultinject.ParseSchedule("wal.append@6+=disk:", 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultInjector(inj)
	if err := s.EnableDurability(DurabilityConfig{Dir: dir, Fsync: wal.SyncBatch}); err != nil {
		t.Fatal(err)
	}
	id, err := s.Subscribe(durConfigs()[0]) // append 1
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(Post{ID: 1, Time: 1, Text: "obama speaks"}); err != nil { // appends 2+3
		t.Fatal(err)
	}
	if err := s.Ingest(Post{ID: 2, Time: 2, Text: "senate votes"}); err != nil { // appends 4+5
		t.Fatal(err)
	}
	// Append 6 — the next batch record — hits the injected disk fault.
	err = s.Ingest(Post{ID: 3, Time: 3, Text: "congress debates"})
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, faultinject.ErrDisk) {
		t.Fatalf("ingest on disk fault: %v, want ErrReadOnly wrapping ErrDisk", err)
	}
	// Latched: everything write-shaped refuses instantly now.
	if err := s.Ingest(Post{ID: 4, Time: 4, Text: "x"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ingest while degraded: %v", err)
	}
	if _, err := s.Subscribe(durConfigs()[1]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("subscribe while degraded: %v", err)
	}
	if err := s.Unsubscribe(id); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("unsubscribe while degraded: %v", err)
	}
	if h := s.Health(); h.Status != "degraded" || h.DegradedReason == "" {
		t.Fatalf("health %+v, want degraded with a reason", h)
	}
	m := s.Metrics()
	if m.Durability == nil || !m.Durability.Degraded {
		t.Fatalf("metrics durability %+v, want degraded", m.Durability)
	}
	// Reads still serve: the applied prefix is pollable.
	es, err := s.Emissions(id, 0, 0)
	if err != nil {
		t.Fatalf("poll while degraded: %v", err)
	}
	_ = es
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(`{"id":9,"time":9,"text":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("HTTP ingest while degraded: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if resp2, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions?after=0", ts.URL, id)); err != nil {
		t.Fatal(err)
	} else {
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("poll while degraded: status %d", resp2.StatusCode)
		}
	}
}

// TestDurabilityCutBatchReplaysAckedPrefix: a batch the live run only
// partially accepted (request cancelled, out-of-order post) must recover
// to exactly the accepted prefix and the exact outcome the client was
// told — not a deadline-free re-application of the full batch.
func TestDurabilityCutBatchReplaysAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	a := durOpen(t, dir)
	if _, err := a.Subscribe(durConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	// Batch cut mid-way: the second post is out of order, so apply stops
	// after one accepted post with a conflict outcome.
	cutBatch := []Post{
		{ID: 1, Time: 10, Text: "obama speaks"},
		{ID: 2, Time: 5, Text: "senate votes"},
		{ID: 3, Time: 11, Text: "congress debates"},
	}
	cutRes, cutStatus, err := a.IngestBatch(context.Background(), cutBatch, "cut-key")
	if err == nil || cutRes.Accepted != 1 {
		t.Fatalf("cut batch: res %+v err %v, want 1 accepted with an error", cutRes, err)
	}
	// Batch refused before any post applied: the request context was
	// already cancelled, the live outcome is 0 accepted + retryable.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	deadRes, deadStatus, err := a.IngestBatch(ctx, []Post{{ID: 4, Time: 12, Text: "bill passes"}}, "dead-key")
	if err == nil || deadRes.Accepted != 0 {
		t.Fatalf("cancelled batch: res %+v err %v, want 0 accepted with an error", deadRes, err)
	}
	liveIngested := a.Stats().Ingested
	// Crash (no snapshot, no close) and recover.

	b := durOpen(t, dir)
	if got := b.Stats().Ingested; got != liveIngested {
		t.Fatalf("recovered ingested %d, want %d — replay must apply the acked prefix, not the full batch", got, liveIngested)
	}
	for _, tc := range []struct {
		key    string
		res    IngestResult
		status int
	}{
		{"cut-key", cutRes, cutStatus},
		{"dead-key", deadRes, deadStatus},
	} {
		e, ok := b.idem.get(tc.key)
		if !ok {
			t.Fatalf("%s: outcome missing from recovered replay cache", tc.key)
		}
		if e.res != tc.res || e.status != tc.status {
			t.Fatalf("%s: recovered outcome %+v status %d, want %+v status %d — must replay verbatim",
				tc.key, e.res, e.status, tc.res, tc.status)
		}
	}
	// The retryable remainder re-drives cleanly against the recovered
	// server, exactly as it would have against the live one.
	if res, _, err := b.IngestBatch(context.Background(), []Post{{ID: 4, Time: 12, Text: "bill passes"}}, "dead-key-2"); err != nil || res.Accepted != 1 {
		t.Fatalf("retry after recovery: res %+v err %v", res, err)
	}
}

// TestDurabilityUndecodableRecordAbortsRecovery: a record whose framing
// validates but whose payload cannot be decoded must fail recovery with
// a typed error — never be silently skipped as if it were a torn tail,
// which would start the server with partial state.
func TestDurabilityUndecodableRecordAbortsRecovery(t *testing.T) {
	dir := t.TempDir()
	a := durOpen(t, dir)
	if _, err := a.Subscribe(durConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Ingest(Post{ID: 1, Time: 1, Text: "obama speaks"}); err != nil {
		t.Fatal(err)
	}
	if err := a.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	// Plant a validly framed batch record with an undecodable payload at
	// the log tail (0xFF is a truncated uvarint key length).
	l, err := wal.Open(dir, wal.Options{NoTick: true, Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(recBatch, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	s := New(3, 64)
	if err := s.EnableDurability(DurabilityConfig{Dir: dir, Fsync: wal.SyncBatch}); err == nil {
		t.Fatal("recovery over an undecodable batch record reported success")
	}
}

// TestDurabilitySnapshotFallbackReplaysFullSuffix: snapshot retention
// keeps two generations so a damaged newest snapshot falls back to the
// older one — which only works if the WAL still holds every record after
// the OLDER snapshot. Pruning to the newest snapshot's LSN would leave a
// silent hole in the replayed history.
func TestDurabilitySnapshotFallbackReplaysFullSuffix(t *testing.T) {
	posts := durPosts(90)
	want, _ := runReference(t, posts, true)

	dir := t.TempDir()
	a := durOpen(t, dir)
	for _, cfg := range durConfigs() {
		if _, err := a.Subscribe(cfg); err != nil {
			t.Fatal(err)
		}
	}
	ingest := func(ps []Post) {
		for _, p := range ps {
			if err := a.Ingest(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(posts[:30])
	if err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingest(posts[30:60])
	if err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingest(posts[60:])
	// Damage the newest snapshot; recovery must fall back a generation
	// and replay everything after the older snapshot.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 retained snapshots, got %v (err %v)", snaps, err)
	}
	sort.Strings(snaps) // names embed the LSN in fixed-width hex
	data, err := os.ReadFile(snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(snaps[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	b := durOpen(t, dir)
	m := b.Metrics()
	if m.Durability.ReplayedPosts != 60 {
		t.Fatalf("replayed %d posts, want 60 (everything after the older snapshot)", m.Durability.ReplayedPosts)
	}
	b.Flush()
	compareEmissions(t, b, want)
}

// TestCloseDurabilityConcurrent: racing shutdown paths must not
// double-close the snapshot-loop channel.
func TestCloseDurabilityConcurrent(t *testing.T) {
	s := New(0, 0)
	if err := s.EnableDurability(DurabilityConfig{
		Dir: t.TempDir(), Fsync: wal.SyncBatch, SnapshotInterval: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.CloseDurability(); err != nil {
				t.Errorf("CloseDurability: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestDurabilityTornTailRecovery truncates the live WAL segment at an
// arbitrary byte offset (a torn final write) and restarts: the valid
// prefix recovers, the damage is reported, and the server keeps working.
func TestDurabilityTornTailRecovery(t *testing.T) {
	posts := durPosts(40)
	dir := t.TempDir()
	a := durOpen(t, dir)
	if _, err := a.Subscribe(durConfigs()[0]); err != nil {
		t.Fatal(err)
	}
	for _, p := range posts {
		if err := a.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the tail: chop 20 bytes off the (only) segment — enough to eat
	// the final 12-byte ack record AND land inside the last batch record's
	// frame, so the last post is torn away entirely.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-20); err != nil {
		t.Fatal(err)
	}

	b := durOpen(t, dir)
	m := b.Metrics()
	if m.Durability.RepairedBytes == 0 {
		t.Fatal("torn tail not reported as repaired")
	}
	// The last post fell inside the torn record; everything before it
	// replayed. The server accepts new appends after the repair.
	if m.Durability.ReplayedPosts != int64(len(posts)-1) {
		t.Fatalf("replayed %d posts, want %d", m.Durability.ReplayedPosts, len(posts)-1)
	}
	if err := b.Ingest(posts[len(posts)-1]); err != nil {
		t.Fatalf("ingest after torn-tail repair: %v", err)
	}
}
