package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mqdp/internal/synth"
)

// getJSON decodes a GET response body into out and returns the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestEmissionsPollAfterTrim drives a subscription past the emission-buffer
// cap over HTTP and checks that cursor polls compute the right offset from
// the first *retained* Seq instead of scanning (or mis-addressing) the
// trimmed buffer.
func TestEmissionsPollAfterTrim(t *testing.T) {
	old := maxEmissionBuffer
	maxEmissionBuffer = 16
	defer func() { maxEmissionBuffer = old }()

	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/subscriptions", SubscriptionConfig{
		Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant",
	})
	var created map[string]int64
	_ = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	id := created["id"]

	// 50 matching posts → 50 emissions; the buffer retains seqs 35..50.
	batch := make([]Post, 50)
	for i := range batch {
		batch[i] = Post{ID: int64(i + 1), Time: float64(i), Text: fmt.Sprintf("obama update %d", i)}
	}
	resp = postJSON(t, ts.URL+"/ingest", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()

	poll := func(after int64, limit int) []Emission {
		t.Helper()
		url := fmt.Sprintf("%s/subscriptions/%d/emissions?after=%d", ts.URL, id, after)
		if limit > 0 {
			url += fmt.Sprintf("&limit=%d", limit)
		}
		var es []Emission
		if st := getJSON(t, url, &es); st != http.StatusOK {
			t.Fatalf("poll after=%d status %d", after, st)
		}
		return es
	}
	seqs := func(es []Emission) []int64 {
		out := make([]int64, len(es))
		for i, e := range es {
			out[i] = e.Seq
		}
		return out
	}

	all := poll(0, 0)
	if len(all) != 16 || all[0].Seq != 35 || all[15].Seq != 50 {
		t.Fatalf("retained window = %v, want seqs 35..50", seqs(all))
	}
	// Cursor in the middle of the retained window.
	if got := poll(40, 0); len(got) != 10 || got[0].Seq != 41 || got[9].Seq != 50 {
		t.Errorf("after=40 → %v, want 41..50", seqs(got))
	}
	// Cursor + limit.
	if got := poll(42, 3); len(got) != 3 || got[0].Seq != 43 || got[2].Seq != 45 {
		t.Errorf("after=42 limit=3 → %v, want 43..45", seqs(got))
	}
	// Cursor at and past the end.
	if got := poll(50, 0); len(got) != 0 {
		t.Errorf("after=50 → %v, want empty", seqs(got))
	}
	if got := poll(60, 0); len(got) != 0 {
		t.Errorf("after=60 → %v, want empty", seqs(got))
	}
	// A stale cursor pointing into the trimmed region yields the whole
	// retained window (the trimmed emissions are gone, not re-addressed)
	// AND announces the splice: X-Gap-From/X-First-Seq name the lost range
	// so the client knows seqs 11..34 are unrecoverable.
	if got := poll(10, 0); len(got) != 16 || got[0].Seq != 35 {
		t.Errorf("after=10 → %v, want 35..50", seqs(got))
	}
	resp, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions?after=10", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale poll status %d", resp.StatusCode)
	}
	if gf, fs := resp.Header.Get("X-Gap-From"), resp.Header.Get("X-First-Seq"); gf != "11" || fs != "35" {
		t.Errorf("stale poll gap headers = (X-Gap-From %q, X-First-Seq %q), want (11, 35)", gf, fs)
	}
	// An in-window cursor carries no gap headers.
	resp, err = http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions?after=40", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gf := resp.Header.Get("X-Gap-From"); gf != "" {
		t.Errorf("in-window poll reported a gap: X-Gap-From %q", gf)
	}
}

// TestEvictedTextPath pins the deliver-side contract: a decision whose
// cached text was evicted is dropped and counted, never emitted blank; and
// decided posts release their cache entry immediately.
func TestEvictedTextPath(t *testing.T) {
	ts, core := newTestServer(t)
	id, err := core.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 1000, Tau: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Ingest(Post{ID: 1, Time: 0, Text: "obama holds a presser"}); err != nil {
		t.Fatal(err)
	}
	// Simulate the race the old code hit silently: the text is gone by the
	// time the decision (forced here by flush) lands.
	sub, _ := core.lookup(id)
	sub.mu.Lock()
	delete(sub.texts, 1)
	sub.mu.Unlock()
	core.Flush()

	var es []Emission
	getJSON(t, fmt.Sprintf("%s/subscriptions/%d/emissions", ts.URL, id), &es)
	for _, e := range es {
		if e.Text == "" {
			t.Errorf("blank-text emission leaked: %+v", e)
		}
	}
	if len(es) != 0 {
		t.Errorf("emissions = %d, want 0 (only decision lost its text)", len(es))
	}
	var st SubscriptionStats
	getJSON(t, fmt.Sprintf("%s/subscriptions/%d/stats", ts.URL, id), &st)
	if st.TextMisses != 1 {
		t.Errorf("text_misses = %d, want 1", st.TextMisses)
	}
	var m Metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.TextMisses != 1 {
		t.Errorf("metrics text_misses = %d, want 1", m.TextMisses)
	}
}

// TestTextCacheLifecycle checks that decided posts leave the cache at
// decision time and rejected ones at the gc horizon, so the map tracks the
// live window instead of idling at a fixed threshold.
func TestTextCacheLifecycle(t *testing.T) {
	s := New(0, 0)
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 10, Tau: 0, Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	// 500 matching posts 1s apart: most are rejected (within λ of the last
	// selection) and must still be evicted once past the horizon.
	for i := 0; i < 500; i++ {
		if err := s.Ingest(Post{ID: int64(i + 1), Time: float64(i), Text: fmt.Sprintf("obama note %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	sub, _ := s.lookup(id)
	sub.mu.Lock()
	cached := len(sub.texts)
	sub.mu.Unlock()
	// Live window is λ+τ+1 = 11 seconds ≈ 11 posts plus slack.
	if cached > 20 {
		t.Errorf("text cache holds %d entries, want ≈ live window (≤ 20)", cached)
	}
	s.Flush()
	sub.mu.Lock()
	cached = len(sub.texts)
	sub.mu.Unlock()
	if cached != 0 {
		t.Errorf("text cache holds %d entries after flush, want 0", cached)
	}
}

// TestPartialBatchAccepted pins the POST /ingest error contract: a
// mid-batch failure reports how many posts landed so clients resume
// instead of double-ingesting.
func TestPartialBatchAccepted(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/ingest", []Post{
		{ID: 1, Time: 0, Text: "obama a"},
		{ID: 2, Time: 10, Text: "obama b"},
		{ID: 3, Time: 5, Text: "obama c"}, // out of order: rejected
		{ID: 4, Time: 20, Text: "obama d"},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("partial batch status %d, want 409", resp.StatusCode)
	}
	var res IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Accepted != 2 || res.Error == "" {
		t.Errorf("partial batch result = %+v, want accepted=2 with error", res)
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Ingested != 2 {
		t.Errorf("ingested = %d, want 2 (prefix only)", st.Ingested)
	}
	// The client resumes at posts[accepted] with the bad item fixed.
	resp = postJSON(t, ts.URL+"/ingest", []Post{
		{ID: 3, Time: 15, Text: "obama c"},
		{ID: 4, Time: 20, Text: "obama d"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume status %d", resp.StatusCode)
	}
	_ = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if res.Accepted != 2 {
		t.Errorf("resume accepted = %d, want 2", res.Accepted)
	}
}

// TestIngestAfterFlush pins the closed latch: flush ends the stream once,
// later ingests are rejected with 409, and a second flush is a no-op.
func TestIngestAfterFlush(t *testing.T) {
	ts, core := newTestServer(t)
	resp := postJSON(t, ts.URL+"/subscriptions", SubscriptionConfig{
		Topics: politicsTopics(), Lambda: 1000, Tau: 1000,
	})
	var created map[string]int64
	_ = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	id := created["id"]

	resp = postJSON(t, ts.URL+"/ingest", Post{ID: 1, Time: 0, Text: "obama speech"})
	resp.Body.Close()

	flush := func() int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/flush", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if st := flush(); st != http.StatusNoContent {
		t.Fatalf("flush status %d", st)
	}
	var es []Emission
	getJSON(t, fmt.Sprintf("%s/subscriptions/%d/emissions", ts.URL, id), &es)
	if len(es) != 1 {
		t.Fatalf("post-flush emissions = %d, want 1", len(es))
	}

	// Ingest after flush: 409 with the closed error and nothing accepted.
	resp = postJSON(t, ts.URL+"/ingest", Post{ID: 2, Time: 5, Text: "obama again"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("ingest-after-flush status %d, want 409", resp.StatusCode)
	}
	var res IngestResult
	_ = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if res.Accepted != 0 {
		t.Errorf("ingest-after-flush accepted = %d, want 0", res.Accepted)
	}
	if !core.Closed() {
		t.Error("Closed() = false after flush")
	}

	// Second flush: no-op, no re-fired deadlines, emissions unchanged.
	if st := flush(); st != http.StatusNoContent {
		t.Errorf("second flush status %d", st)
	}
	getJSON(t, fmt.Sprintf("%s/subscriptions/%d/emissions", ts.URL, id), &es)
	if len(es) != 1 {
		t.Errorf("emissions after double flush = %d, want 1 (no duplicates)", len(es))
	}

	var h Health
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "flushed" || h.Ingested != 1 {
		t.Errorf("healthz after flush = %+v", h)
	}

	// Direct API: a second Flush and a late Ingest behave the same.
	core.Flush()
	if err := core.Ingest(Post{ID: 3, Time: 9, Text: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Ingest after Flush = %v, want ErrClosed", err)
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	ts, core := newTestServer(t)
	var h Health
	if st := getJSON(t, ts.URL+"/healthz", &h); st != http.StatusOK {
		t.Fatalf("healthz status %d", st)
	}
	if h.Status != "ok" || h.Subscriptions != 0 {
		t.Errorf("healthz = %+v", h)
	}
	id, err := core.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 60, Tau: 5})
	if err != nil {
		t.Fatal(err)
	}
	_ = core.Ingest(Post{ID: 1, Time: 0, Text: "obama morning brief"})
	_ = core.Ingest(Post{ID: 2, Time: 100, Text: "senate afternoon session"})
	core.Flush()

	var m Metrics
	if st := getJSON(t, ts.URL+"/metrics", &m); st != http.StatusOK {
		t.Fatalf("metrics status %d", st)
	}
	if m.Ingested != 2 || m.Subscriptions != 1 || !m.Flushed || m.Workers < 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.MatchedTotal != 2 || m.EmittedTotal != 2 {
		t.Errorf("metrics totals = %+v", m)
	}
	if len(m.Profiles) != 1 || m.Profiles[0].ID != id {
		t.Fatalf("metrics profiles = %+v", m.Profiles)
	}
	// Delay summary comes from stream.Summarize over the retained buffer:
	// both decisions fired within τ.
	d := m.Profiles[0].Delay
	if d.Count != 2 || d.Max > 5+1e-9 || d.Mean > d.Max || d.P95 > d.Max {
		t.Errorf("delay summary = %+v", d)
	}
	// Method guards.
	resp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz status %d", resp.StatusCode)
	}
}

// subscriptionEmissionsJSON renders every subscription's full emission
// buffer as JSON, keyed in id order.
func subscriptionEmissionsJSON(t *testing.T, s *Server, ids []int64) []byte {
	t.Helper()
	var buf []byte
	for _, id := range ids {
		es, err := s.Emissions(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(es)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	return buf
}

// TestShardedIngestDeterminism replays a scaled-down synthetic day through
// 64 mixed-profile subscriptions with serial and parallel fan-out and
// requires byte-identical per-subscription emission sequences.
func TestShardedIngestDeterminism(t *testing.T) {
	world := synth.NewWorld(synth.WorldConfig{Seed: 11})
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 1800, RatePerSec: 2, DupRatio: 0.05, Seed: 12})

	algos := []string{"streamscan", "streamscan+", "streamgreedy", "streamgreedy+", "instant"}
	build := func(workers int) (*Server, []int64) {
		t.Helper()
		s := New(8, 1024)
		s.SetParallelism(workers)
		rng := newRand(13)
		ids := make([]int64, 0, 64)
		for i := 0; i < 64; i++ {
			id, err := s.Subscribe(SubscriptionConfig{
				Topics:    world.MatchTopics(world.SampleLabelSet(rng, 2+i%3)),
				Lambda:    float64(60 * (1 + i%3)),
				Tau:       float64(30 * (i % 2)),
				Algorithm: algos[i%len(algos)],
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for _, tw := range tweets {
			if err := s.Ingest(Post{ID: tw.ID, Time: tw.Time, Text: tw.Text}); err != nil {
				t.Fatal(err)
			}
		}
		s.Flush()
		return s, ids
	}

	serial, serialIDs := build(1)
	parallelSrv, parallelIDs := build(8)
	if fmt.Sprint(serialIDs) != fmt.Sprint(parallelIDs) {
		t.Fatalf("subscription ids diverge: %v vs %v", serialIDs, parallelIDs)
	}
	a := subscriptionEmissionsJSON(t, serial, serialIDs)
	b := subscriptionEmissionsJSON(t, parallelSrv, parallelIDs)
	if string(a) != string(b) {
		t.Fatal("per-subscription emissions differ between 1-worker and 8-worker ingest")
	}
	sa, sb := serial.Stats(), parallelSrv.Stats()
	if sa != sb {
		t.Errorf("service stats diverge: %+v vs %+v", sa, sb)
	}
}

// TestConcurrentIngestSubscribePoll hammers the sharded design from every
// direction at once; run under -race this locks in the locking discipline
// (registry RWMutex vs per-subscription mutexes).
func TestConcurrentIngestSubscribePoll(t *testing.T) {
	s := New(0, 0)
	seedIDs := make([]int64, 8)
	for i := range seedIDs {
		id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 30, Tau: 5})
		if err != nil {
			t.Fatal(err)
		}
		seedIDs[i] = id
	}
	const posts = 3000
	var clock atomic.Int64
	var wg sync.WaitGroup
	// Two producers share a monotone clock; occasional ErrOutOfOrder from
	// interleaving is expected and ignored — order is enforced, not assumed.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < posts/2; i++ {
				tick := clock.Add(1)
				_ = s.Ingest(Post{ID: tick, Time: float64(tick), Text: fmt.Sprintf("obama senate item %d", tick)})
			}
		}()
	}
	// Churning subscribers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 10, Tau: 0, Algorithm: "instant"})
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if err := s.Unsubscribe(id); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	// Pollers over every read surface.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				id := seedIDs[(r+i)%len(seedIDs)]
				_, _ = s.Emissions(id, int64(i), 10)
				_ = s.Stats()
				_ = s.Metrics()
				_, _ = s.SubscriptionStats(id)
				_ = s.Health()
			}
		}(r)
	}
	wg.Wait()
	s.Flush()
	// Per-subscription invariant: seqs are contiguous from the first
	// retained emission.
	for _, id := range seedIDs {
		es, err := s.Emissions(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(es); i++ {
			if es[i].Seq != es[i-1].Seq+1 {
				t.Fatalf("subscription %d: seq gap %d → %d", id, es[i-1].Seq, es[i].Seq)
			}
		}
		for _, e := range es {
			if e.Text == "" {
				t.Fatalf("subscription %d: blank emission %+v", id, e)
			}
		}
	}
}

// TestShutdownMidIngest flushes the server while a client is streaming
// batches at it and verifies graceful shutdown under load: every batch is
// either fully applied (and counted by the client) or cut with a retryable
// 409 reporting the applied prefix — nothing partially vanishes, and the
// sum of client-side accepted counts equals the server's ingested total.
func TestShutdownMidIngest(t *testing.T) {
	ts, core := newTestServer(t)
	if _, err := core.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant"}); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(ts.URL)
	cl.Retry = &RetryPolicy{MaxAttempts: 3, BackoffBase: time.Millisecond, Seed: 5}

	var totalAccepted atomic.Int64
	var cutErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := int64(1)
		for batchIdx := 0; batchIdx < 100000; batchIdx++ {
			batch := make([]Post, 5)
			for i := range batch {
				batch[i] = Post{ID: next, Time: float64(next), Text: fmt.Sprintf("senate roll call %d", next)}
				next++
			}
			n, err := cl.IngestAccepted(batch...)
			totalAccepted.Add(int64(n))
			if err != nil {
				cutErr = err
				return
			}
		}
	}()
	// Let some batches land, then shut the stream down underneath them.
	for core.Stats().Ingested < 50 {
		time.Sleep(time.Millisecond)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	<-done

	// The writer must have been cut by the shutdown, with the conflict
	// surfaced as a typed, call-annotated API error.
	if cutErr == nil {
		t.Fatal("writer finished every batch; flush never cut it")
	}
	var ae *APIError
	if !errors.As(cutErr, &ae) || ae.Status != http.StatusConflict {
		t.Fatalf("want 409 APIError from the cut batch, got %v", cutErr)
	}
	if !strings.Contains(cutErr.Error(), "POST /ingest") {
		t.Fatalf("cut error does not identify the call: %v", cutErr)
	}
	// Nothing partially vanished: what the client believes landed is
	// exactly what the server applied.
	if got, want := core.Stats().Ingested, totalAccepted.Load(); got != want {
		t.Fatalf("server ingested %d, client-side accepted sum %d", got, want)
	}
}
