package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mqdp"
	"mqdp/internal/faultinject"
	"mqdp/internal/obs"
	"mqdp/internal/resilience"
	"mqdp/internal/synth"
)

// chaosSubscribe registers the chaos fleet: six mixed-profile
// subscriptions drawn from the same world, identically on any server, so
// a fault-free and a fault-ridden run are comparable id-for-id.
func chaosSubscribe(t *testing.T, world *synth.World, sub func(SubscriptionConfig) (int64, error)) []int64 {
	t.Helper()
	algos := []string{"streamscan", "streamscan+", "streamgreedy", "streamgreedy+", "instant", "streamscan+"}
	rng := newRand(17)
	ids := make([]int64, 0, len(algos))
	for i, algo := range algos {
		id, err := sub(SubscriptionConfig{
			Topics:    world.MatchTopics(world.SampleLabelSet(rng, 2+i%3)),
			Lambda:    float64(60 * (1 + i%3)),
			Tau:       float64(30 * (i % 2)),
			Algorithm: algo,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestChaosE2E drives client → HTTP → server → stream processors through a
// scripted fault schedule (request drop, response drop, injected 503, added
// latency, one mid-stream processor panic, and a forced admission shed) and
// asserts the fault-tolerance contract end to end:
//
//   - the retrying client reports every batch fully accepted, exactly once;
//   - the panicking subscription is quarantined — surfaced in its stats and
//     the service metrics — while the server keeps serving;
//   - every healthy subscription's emission sequence is byte-identical to a
//     fault-free run over the same stream;
//   - the obs registry's retry/shed/breaker/quarantine counters reconcile
//     with the injector's own record of what it injected.
func TestChaosE2E(t *testing.T) {
	world := synth.NewWorld(synth.WorldConfig{Seed: 21})
	tweets := synth.TweetStream(world, synth.StreamConfig{Duration: 600, RatePerSec: 2, DupRatio: 0, Seed: 22})

	// Fault-free reference run, straight into a server core.
	clean := New(0, 0)
	clean.SetParallelism(4)
	cleanIDs := chaosSubscribe(t, world, clean.Subscribe)
	for _, tw := range tweets {
		if err := clean.Ingest(Post{ID: tw.ID, Time: tw.Time, Text: tw.Text}); err != nil {
			t.Fatal(err)
		}
	}
	clean.Flush()

	// Chaos run: same stream, but over HTTP through a faulty transport,
	// with a scripted panic inside one subscription's pipeline.
	core := New(0, 0)
	core.SetParallelism(4)
	reg := obs.NewRegistry()
	core.SetObs(reg)
	srvInj, err := faultinject.ParseSchedule("sub3.process@5=panic:injected-chaos-panic", 7)
	if err != nil {
		t.Fatal(err)
	}
	core.SetFaultInjector(srvInj)
	ts := httptest.NewServer(Handler(core))
	defer ts.Close()

	clInj, err := faultinject.ParseSchedule(
		"POST /ingest@4=drop; POST /ingest@9=droprx; POST /ingest@15=status:503; POST /ingest@21=delay:20ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(ts.URL)
	cl.HTTPClient = &http.Client{Transport: faultinject.NewTransport(nil, clInj), Timeout: 10 * time.Second}
	cl.Retry = &RetryPolicy{MaxAttempts: 6, BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond, Seed: 99}
	cl.SetObs(reg)

	ids := chaosSubscribe(t, world, cl.Subscribe)
	if fmt.Sprint(ids) != fmt.Sprint(cleanIDs) {
		t.Fatalf("subscription ids diverge: %v vs %v", ids, cleanIDs)
	}
	const batchSize = 20
	for at := 0; at < len(tweets); at += batchSize {
		end := min(at+batchSize, len(tweets))
		batch := make([]Post, 0, end-at)
		for _, tw := range tweets[at:end] {
			batch = append(batch, Post{ID: tw.ID, Time: tw.Time, Text: tw.Text})
		}
		n, err := cl.IngestAccepted(batch...)
		if err != nil {
			t.Fatalf("batch at %d: %v", at, err)
		}
		if n != len(batch) {
			t.Fatalf("batch at %d: accepted %d of %d", at, n, len(batch))
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	// Exactly once: the server saw each post once despite the dropped
	// request, the dropped response, and the injected 503.
	if got, want := core.Stats().Ingested, clean.Stats().Ingested; got != want {
		t.Fatalf("chaos run ingested %d posts, fault-free run %d", got, want)
	}
	if got := core.Stats().Ingested; got != int64(len(tweets)) {
		t.Fatalf("ingested %d, stream has %d", got, len(tweets))
	}

	// The panicking subscription is quarantined; everyone else matches the
	// fault-free run byte for byte.
	const victim = 3
	st, err := core.SubscriptionStats(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quarantined || !strings.Contains(st.QuarantineReason, "injected-chaos-panic") {
		t.Fatalf("victim subscription not quarantined as expected: %+v", st)
	}
	var healthy, cleanHealthy []int64
	for i, id := range ids {
		if id != victim {
			healthy = append(healthy, id)
			cleanHealthy = append(cleanHealthy, cleanIDs[i])
		}
	}
	a := subscriptionEmissionsJSON(t, clean, cleanHealthy)
	b := subscriptionEmissionsJSON(t, core, healthy)
	if string(a) != string(b) {
		t.Fatal("healthy subscriptions' emissions diverge from the fault-free run")
	}
	// The quarantined buffer stays pollable: whatever landed before the
	// panic is still served, without error.
	if _, err := core.Emissions(victim, 0, 0); err != nil {
		t.Fatalf("quarantined subscription not pollable: %v", err)
	}
	var h Health
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d after chaos", code)
	}

	// Forced shed phase: a near-empty token bucket sheds the second call's
	// every attempt, so the client observes 429s and gives up — after the
	// flush, so the emission comparison above is unaffected.
	core.SetAdmission(AdmissionConfig{Rate: 2, Burst: 1})
	last := tweets[len(tweets)-1]
	_, err = cl.IngestAccepted(Post{ID: last.ID + 1, Time: last.Time + 1, Text: "post-flush probe"})
	if StatusCode(err) != http.StatusConflict {
		t.Fatalf("ingest after flush: want 409, got %v", err)
	}
	_, err = cl.IngestAccepted(Post{ID: last.ID + 2, Time: last.Time + 2, Text: "post-flush probe"})
	if StatusCode(err) != http.StatusTooManyRequests {
		t.Fatalf("ingest with empty bucket: want 429, got %v", err)
	}

	// Reconcile every counter with what the injector says it did.
	cs := cl.RetryStats()
	counts := clInj.Counts()
	for kind, want := range map[string]int64{"drop": 1, "droprx": 1, "status": 1, "delay": 1} {
		if counts[kind] != want {
			t.Errorf("transport injector %s count = %d, want %d", kind, counts[kind], want)
		}
	}
	if got := srvInj.Counts()["panic"]; got != 1 {
		t.Errorf("server injector panic count = %d, want 1", got)
	}
	faultRetries := counts["drop"] + counts["droprx"] + counts["status"]
	wantRetries := faultRetries + cs.ShedResponses - 1 // the last shed attempt is not retried
	if cs.Retries != wantRetries {
		t.Errorf("client retries = %d, want %d (faults %d + shed retries %d)",
			cs.Retries, wantRetries, faultRetries, cs.ShedResponses-1)
	}
	m := core.Metrics()
	if m.Quarantines != 1 {
		t.Errorf("Metrics.Quarantines = %d, want 1", m.Quarantines)
	}
	if m.Sheds != cs.ShedResponses || m.Sheds == 0 {
		t.Errorf("Metrics.Sheds = %d, client saw %d 429s", m.Sheds, cs.ShedResponses)
	}
	if cs.BreakerOpens != 0 {
		t.Errorf("breaker opened %d times with no breaker configured", cs.BreakerOpens)
	}

	// The same story in the Prometheus exposition.
	resp, err := http.Get(ts.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text := readAll(t, resp)
	for _, line := range []string{
		fmt.Sprintf("mqdp_client_retries_total %d", cs.Retries),
		fmt.Sprintf("mqdp_client_shed_responses_total %d", cs.ShedResponses),
		fmt.Sprintf("mqdp_server_sheds_total %d", m.Sheds),
		"mqdp_server_quarantines_total 1",
		"mqdp_server_quarantined_subscriptions 1",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("prometheus exposition missing %q", line)
		}
	}
}

// TestChaosExactlyOnceReplay pins the idempotent-replay mechanism in
// isolation: a dropped response is retried with the same idempotency key
// and the server replays the recorded outcome instead of re-applying the
// batch.
func TestChaosExactlyOnceReplay(t *testing.T) {
	ts, core := newTestServer(t)
	id, err := core.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	clInj, err := faultinject.ParseSchedule("POST /ingest@1=droprx", 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(ts.URL)
	cl.HTTPClient = &http.Client{Transport: faultinject.NewTransport(nil, clInj), Timeout: 5 * time.Second}
	cl.Retry = &RetryPolicy{MaxAttempts: 4, BackoffBase: time.Millisecond, Seed: 2}

	posts := []Post{
		{ID: 1, Time: 1, Text: "obama results tonight"},
		{ID: 2, Time: 2, Text: "senate debate recap"},
		{ID: 3, Time: 3, Text: "senate passes the budget"},
	}
	n, err := cl.IngestAccepted(posts...)
	if err != nil || n != len(posts) {
		t.Fatalf("IngestAccepted = (%d, %v), want (%d, nil)", n, err, len(posts))
	}
	// The first attempt was applied server-side even though its response
	// was dropped; the retry must have replayed, not re-ingested.
	if got := core.Stats().Ingested; got != int64(len(posts)) {
		t.Fatalf("server ingested %d posts, want %d (batch applied twice?)", got, len(posts))
	}
	if got := cl.RetryStats().Retries; got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	core.Flush()
	es, err := core.Emissions(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != len(posts) {
		t.Fatalf("emitted %d decisions, want %d", len(es), len(posts))
	}
}

// TestChaosIngestDeadline exercises the server-side ingest deadline: a
// batch stalled mid-way (injected processing latency beyond the budget) is
// cut between posts, the applied prefix is reported with 503 + Retry-After,
// and a retrying client resumes at the offset — exactly once overall.
func TestChaosIngestDeadline(t *testing.T) {
	posts := make([]Post, 6)
	for i := range posts {
		posts[i] = Post{ID: int64(i + 1), Time: float64(i + 1), Text: fmt.Sprintf("senate update %d", i+1)}
	}
	setup := func(t *testing.T) (*httptest.Server, *Server) {
		ts, core := newTestServer(t)
		core.SetIngestDeadline(40 * time.Millisecond)
		inj, err := faultinject.ParseSchedule("sub1.process@3=delay:120ms", 0)
		if err != nil {
			t.Fatal(err)
		}
		core.SetFaultInjector(inj)
		if _, err := core.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant"}); err != nil {
			t.Fatal(err)
		}
		return ts, core
	}

	t.Run("manual resume", func(t *testing.T) {
		ts, core := setup(t)
		cl := NewClient(ts.URL) // no retry policy: the caller sees the cut
		n, err := cl.IngestAccepted(posts...)
		if n != 3 {
			t.Fatalf("accepted = %d, want 3 (deadline cuts after the stalled post)", n)
		}
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
			t.Fatalf("want 503 APIError, got %v", err)
		}
		if ra, ok := ae.RetryAfter(); !ok || ra != 0 {
			t.Fatalf("want Retry-After 0 on a deadline cut, got (%v, %v)", ra, ok)
		}
		// Resume at the accepted offset, per the documented contract.
		n, err = cl.IngestAccepted(posts[3:]...)
		if err != nil || n != 3 {
			t.Fatalf("resume = (%d, %v), want (3, nil)", n, err)
		}
		if got := core.Stats().Ingested; got != int64(len(posts)) {
			t.Fatalf("ingested %d, want %d", got, len(posts))
		}
	})

	t.Run("automatic resume", func(t *testing.T) {
		ts, core := setup(t)
		cl := NewClient(ts.URL)
		cl.Retry = &RetryPolicy{MaxAttempts: 4, BackoffBase: time.Millisecond, Seed: 3}
		n, err := cl.IngestAccepted(posts...)
		if err != nil || n != len(posts) {
			t.Fatalf("IngestAccepted = (%d, %v), want (%d, nil)", n, err, len(posts))
		}
		if got := core.Stats().Ingested; got != int64(len(posts)) {
			t.Fatalf("ingested %d, want %d (prefix re-applied?)", got, len(posts))
		}
		if got := cl.RetryStats().Retries; got != 1 {
			t.Errorf("retries = %d, want 1", got)
		}
	})
}

// TestChaosAdmissionPolicies pins the two saturation behaviors: block
// queues a request until the in-flight slot frees; shed rejects it with
// 429 + Retry-After and counts the shed.
func TestChaosAdmissionPolicies(t *testing.T) {
	ts, core := newTestServer(t)
	if _, err := core.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant"}); err != nil {
		t.Fatal(err)
	}
	// Every odd matched post stalls 250ms inside the pipeline, holding
	// its request's in-flight slot.
	inj, err := faultinject.ParseSchedule("sub1.process@1=delay:250ms; sub1.process@3=delay:250ms", 0)
	if err != nil {
		t.Fatal(err)
	}
	core.SetFaultInjector(inj)
	ingest := func(p Post) *http.Response {
		t.Helper()
		return postJSON(t, ts.URL+"/ingest", p)
	}

	t.Run("block waits for the slot", func(t *testing.T) {
		core.SetAdmission(AdmissionConfig{MaxInflight: 1, Policy: ShedPolicyBlock, MaxWait: 2 * time.Second})
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp := ingest(Post{ID: 1, Time: 1, Text: "obama night special"})
			resp.Body.Close()
		}()
		time.Sleep(50 * time.Millisecond) // let the slow request take the slot
		start := time.Now()
		resp := ingest(Post{ID: 2, Time: 2, Text: "senate campaign diary"})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("blocked request status %d, want 200", resp.StatusCode)
		}
		if waited := time.Since(start); waited < 100*time.Millisecond {
			t.Errorf("blocked request returned after %v; expected to queue behind the slow one", waited)
		}
		<-done
		if m := core.Metrics(); m.Sheds != 0 {
			t.Errorf("block policy shed %d requests", m.Sheds)
		}
	})

	t.Run("shed rejects with retry-after", func(t *testing.T) {
		core.SetAdmission(AdmissionConfig{MaxInflight: 1, Policy: ShedPolicyShed})
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp := ingest(Post{ID: 3, Time: 3, Text: "obama runoff announced"})
			resp.Body.Close()
		}()
		time.Sleep(50 * time.Millisecond)
		resp := ingest(Post{ID: 4, Time: 4, Text: "senate poll numbers move"})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated shed status %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without a Retry-After header")
		}
		<-done
		if m := core.Metrics(); m.Sheds != 1 {
			t.Errorf("Metrics.Sheds = %d, want 1", m.Sheds)
		}
	})
}

// panicFlushProc stands in for a processor whose Flush panics.
type panicFlushProc struct{}

func (panicFlushProc) Name() string                               { return "panic-flush" }
func (panicFlushProc) Process(mqdp.Post) ([]mqdp.Emission, error) { return nil, nil }
func (panicFlushProc) Flush() []mqdp.Emission                     { panic("flush-bomb") }

// TestChaosQuarantineOnFlush covers the flush-time quarantine path: a
// processor that panics while flushing is isolated, the other
// subscriptions flush normally, and the server survives.
func TestChaosQuarantineOnFlush(t *testing.T) {
	s := New(0, 0)
	bad, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 10, Tau: 0})
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(Post{ID: 1, Time: 1, Text: "senate coverage begins"}); err != nil {
		t.Fatal(err)
	}
	sub, ok := s.lookup(bad)
	if !ok {
		t.Fatal("subscription vanished")
	}
	sub.mu.Lock()
	sub.proc = panicFlushProc{}
	sub.mu.Unlock()

	s.Flush() // must not crash
	st, err := s.SubscriptionStats(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quarantined || !strings.Contains(st.QuarantineReason, "flush-bomb") {
		t.Fatalf("flush panic not quarantined: %+v", st)
	}
	es, err := s.Emissions(good, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 {
		t.Fatalf("healthy subscription emitted %d, want 1", len(es))
	}
	if m := s.Metrics(); m.Quarantines != 1 {
		t.Errorf("Metrics.Quarantines = %d, want 1", m.Quarantines)
	}
}

// TestChaosClientBreaker drives the client's circuit breaker through its
// full lifecycle against a transport that drops every /stats request
// twice: consecutive failures open it, open calls fail fast wrapping
// resilience.ErrBreakerOpen, and a successful probe after the cooldown
// closes it again.
func TestChaosClientBreaker(t *testing.T) {
	ts, _ := newTestServer(t)
	clInj, err := faultinject.ParseSchedule("GET /stats@1-2=drop", 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(ts.URL)
	cl.HTTPClient = &http.Client{Transport: faultinject.NewTransport(nil, clInj), Timeout: 5 * time.Second}
	cl.Retry = &RetryPolicy{
		MaxAttempts: 2, BackoffBase: time.Millisecond, Seed: 4,
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
	}

	if _, err := cl.Stats(); err == nil {
		t.Fatal("want failure while the transport drops /stats")
	}
	if got := cl.RetryStats().BreakerOpens; got != 1 {
		t.Fatalf("breaker opens = %d, want 1 after %d consecutive failures", got, 2)
	}
	_, err = cl.Stats() // immediate: breaker is open, no request goes out
	if !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen while open, got %v", err)
	}
	if got := clInj.Calls("GET /stats"); got != 2 {
		t.Fatalf("transport saw %d /stats calls, want 2 (open breaker must not send)", got)
	}

	time.Sleep(80 * time.Millisecond) // past the cooldown: half-open probe
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("probe after cooldown failed: %v", err)
	}
	if got := cl.RetryStats().BreakerOpens; got != 1 {
		t.Errorf("breaker reopened: opens = %d", got)
	}
}

// readAll drains an HTTP response body as a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
