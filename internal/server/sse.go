package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// streamBatchLimit bounds how many emissions one SSE wake drains before
// flushing; a backlogged stream loops immediately rather than building a
// single giant write.
const streamBatchLimit = 512

// endEvent is the data payload of a terminal "end" SSE event.
type endEvent struct {
	Reason string `json:"reason"`
}

// serveStream serves GET /subscriptions/{id}/stream as Server-Sent Events.
//
// Event grammar:
//
//	event: emission   data: Emission        (with id: <seq> for resume)
//	event: topk       data: TopKSnapshot    (sent on connect, then on change)
//	event: gap        data: GapError        (cursor predates retained buffer)
//	event: end        data: {"reason": ...} (terminal: flushed | unsubscribed |
//	                                         quarantined; stream closes after)
//
// The cursor starts at ?after=SEQ, overridden by a Last-Event-ID header on
// reconnect (the standard SSE resume mechanism). Between batches the
// handler parks on the subscription's hub: an idle stream costs one
// goroutine and no CPU. Pending emissions are always drained before the
// terminal end event, and a stale resume cursor produces an explicit gap
// event — the same no-silent-splice contract as the poll path.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, id int64) {
	if !s.PushEnabled() {
		// 501, not 404: the subscription may exist; it is the push surface
		// that is switched off. Clients use this to fall back to polling.
		http.Error(w, "push delivery disabled; poll /emissions", http.StatusNotImplemented)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by connection", http.StatusNotImplemented)
		return
	}
	sub, ok := s.lookup(id)
	if !ok {
		http.Error(w, ErrNoSuchSubscription.Error(), http.StatusNotFound)
		return
	}
	release, ok := s.acquireStream()
	if !ok {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "too many push streams", http.StatusServiceUnavailable)
		return
	}
	defer release()

	after, _ := strconv.ParseInt(r.URL.Query().Get("after"), 10, 64)
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if v, err := strconv.ParseInt(last, 10, 64); err == nil {
			after = v
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ctx := r.Context()
	var lastVersion uint64
	first := true // the initial top-k view is always pushed
	for {
		// One locked pass collects everything this wake can deliver; all
		// writes happen outside the lock so a slow client never stalls
		// ingest.
		sub.mu.Lock()
		tail, gap := sub.pollLocked(after, streamBatchLimit)
		done, reason := sub.done, sub.doneReason
		var snap TopKSnapshot
		haveSnap := false
		if v := sub.topk.Version(); first || v != lastVersion {
			snap = sub.topkSnapshotLocked()
			haveSnap = true
			lastVersion = v
			first = false
		}
		var ch chan struct{}
		if len(tail) == 0 && gap == nil && !haveSnap && !done {
			ch = sub.waitChLocked()
		}
		sub.mu.Unlock()

		if gap != nil {
			if writeEvent(w, "", "gap", gap) != nil {
				return
			}
			// The splice is reported; resume at the first retained seq so
			// the same gap is not re-announced every iteration.
			after = gap.FirstSeq - 1
		}
		for i := range tail {
			if writeEvent(w, strconv.FormatInt(tail[i].Seq, 10), "emission", &tail[i]) != nil {
				return
			}
			after = tail[i].Seq
			s.pushed.Inc()
		}
		if haveSnap {
			if writeEvent(w, "", "topk", snap) != nil {
				return
			}
		}
		if done && len(tail) == 0 && gap == nil {
			_ = writeEvent(w, "", "end", endEvent{Reason: reason})
			flusher.Flush()
			return
		}
		flusher.Flush()
		if ch == nil {
			continue // the batch limit may have left more to drain
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return
		}
	}
}

// writeEvent emits one SSE event. JSON escapes newlines, so the payload is
// always a single data: line.
func writeEvent(w io.Writer, id, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if id != "" {
		if _, err := fmt.Fprintf(w, "id: %s\n", id); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
