package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"mqdp/internal/obs"
)

// streamBatchLimit bounds how many emissions one SSE wake drains before
// flushing; a backlogged stream loops immediately rather than building a
// single giant write.
const streamBatchLimit = 512

// endEvent is the data payload of a terminal "end" SSE event.
type endEvent struct {
	Reason string `json:"reason"`
}

// serveStream serves GET /subscriptions/{id}/stream as Server-Sent Events.
//
// Event grammar:
//
//	event: emission   data: Emission        (with id: <seq> for resume, and
//	                                         trace: <32 hex> naming the
//	                                         originating ingest trace when
//	                                         tracing is enabled)
//	event: topk       data: TopKSnapshot    (sent on connect, then on change)
//	event: gap        data: GapError        (cursor predates retained buffer)
//	event: end        data: {"reason": ...} (terminal: flushed | unsubscribed |
//	                                         quarantined; stream closes after)
//
// The trace: line is a nonstandard SSE field: spec-conforming parsers ignore
// unknown fields, so plain SSE consumers are unaffected while this repo's
// Client surfaces it on StreamEvent.Trace. Keeping the trace out of the
// data: payload keeps emission JSON byte-identical with tracing on or off.
//
// The cursor starts at ?after=SEQ, overridden by a Last-Event-ID header on
// reconnect (the standard SSE resume mechanism). Between batches the
// handler parks on the subscription's hub: an idle stream costs one
// goroutine and no CPU. Pending emissions are always drained before the
// terminal end event, and a stale resume cursor produces an explicit gap
// event — the same no-silent-splice contract as the poll path.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, id int64) {
	if !s.PushEnabled() {
		// 501, not 404: the subscription may exist; it is the push surface
		// that is switched off. Clients use this to fall back to polling.
		http.Error(w, "push delivery disabled; poll /emissions", http.StatusNotImplemented)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by connection", http.StatusNotImplemented)
		return
	}
	sub, ok := s.lookup(id)
	if !ok {
		http.Error(w, ErrNoSuchSubscription.Error(), http.StatusNotFound)
		return
	}
	release, ok := s.acquireStream()
	if !ok {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "too many push streams", http.StatusServiceUnavailable)
		return
	}
	defer release()

	after, _ := strconv.ParseInt(r.URL.Query().Get("after"), 10, 64)
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if v, err := strconv.ParseInt(last, 10, 64); err == nil {
			after = v
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ctx := r.Context()
	var lastVersion uint64
	first := true // the initial top-k view is always pushed
	for {
		// One locked pass collects everything this wake can deliver; all
		// writes happen outside the lock so a slow client never stalls
		// ingest.
		sub.mu.Lock()
		tail, traces, gap := sub.pollLocked(after, streamBatchLimit)
		done, reason := sub.done, sub.doneReason
		var snap TopKSnapshot
		haveSnap := false
		if v := sub.topk.Version(); first || v != lastVersion {
			snap = sub.topkSnapshotLocked()
			haveSnap = true
			lastVersion = v
			first = false
		}
		var ch chan struct{}
		if len(tail) == 0 && gap == nil && !haveSnap && !done {
			ch = sub.waitChLocked()
		}
		sub.mu.Unlock()

		// A non-empty drain is one push wakeup: span it under the stream's
		// request trace so delivery shows up in the end-to-end picture.
		var wake *obs.ActiveSpan
		if len(tail) > 0 || gap != nil {
			_, wake = obs.StartSpan(ctx, "sse.wake")
			wake.SetInt("emissions", int64(len(tail)))
		}

		if gap != nil {
			s.gaps.Inc()
			wake.Set("gap", "true")
			if writeEvent(w, "", "gap", "", gap) != nil {
				wake.End()
				return
			}
			// The splice is reported; resume at the first retained seq so
			// the same gap is not re-announced every iteration.
			after = gap.FirstSeq - 1
		}
		for i := range tail {
			trace := ""
			if traces != nil && !traces[i].IsZero() {
				trace = traces[i].String()
			}
			if writeEvent(w, strconv.FormatInt(tail[i].Seq, 10), "emission", trace, &tail[i]) != nil {
				wake.End()
				return
			}
			after = tail[i].Seq
			s.pushed.Inc()
		}
		wake.End()
		if haveSnap {
			if writeEvent(w, "", "topk", "", snap) != nil {
				return
			}
		}
		if done && len(tail) == 0 && gap == nil {
			_ = writeEvent(w, "", "end", "", endEvent{Reason: reason})
			flusher.Flush()
			return
		}
		flusher.Flush()
		if ch == nil {
			continue // the batch limit may have left more to drain
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return
		}
	}
}

// writeEvent emits one SSE event. JSON escapes newlines, so the payload is
// always a single data: line. A non-empty trace adds a nonstandard
// "trace: <hex>" field line naming the originating ingest trace.
func writeEvent(w io.Writer, id, event, trace string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if id != "" {
		if _, err := fmt.Fprintf(w, "id: %s\n", id); err != nil {
			return err
		}
	}
	if trace != "" {
		if _, err := fmt.Fprintf(w, "trace: %s\n", trace); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
