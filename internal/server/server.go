// Package server implements the publish/subscribe front of the paper's
// architecture (Figure 1, §1's subscription scenario): users register
// profiles — a set of topic queries plus λ, τ and an algorithm choice — and
// a shared post stream is matched, near-duplicate filtered and diversified
// *per subscription*, each with its own streaming processor. §7.4 motivates
// exactly this shape: the per-post work must stay small because the
// algorithm "has to be executed for millions of users".
package server

import (
	"errors"
	"fmt"
	"sync"

	"mqdp"
	"mqdp/internal/digest"
	"mqdp/internal/match"
	"mqdp/internal/simhash"
)

// Post is one incoming stream item.
type Post struct {
	ID   int64   `json:"id"`
	Time float64 `json:"time"`
	Text string  `json:"text"`
}

// Emission is one diversified output item for a subscription.
type Emission struct {
	Seq    int64    `json:"seq"`
	PostID int64    `json:"post_id"`
	Time   float64  `json:"time"`
	Text   string   `json:"text"`
	Topics []string `json:"topics"`
	EmitAt float64  `json:"emit_at"`
}

// SubscriptionConfig describes a user profile.
type SubscriptionConfig struct {
	// Topics are the user's queries.
	Topics []match.Topic `json:"topics"`
	// Lambda is the diversity threshold on the time dimension (seconds).
	Lambda float64 `json:"lambda"`
	// Tau is the maximum reporting delay (seconds); ignored by Instant.
	Tau float64 `json:"tau"`
	// Algorithm is one of "streamscan", "streamscan+", "streamgreedy",
	// "streamgreedy+", "instant". Default "streamscan+".
	Algorithm string `json:"algorithm"`
}

// subscription is the per-user pipeline state.
type subscription struct {
	id      int64
	cfg     SubscriptionConfig
	matcher *match.Matcher
	proc    mqdp.Processor
	// buffer of emissions with monotonically increasing Seq.
	emissions []Emission
	nextSeq   int64
	matched   int64
	texts     map[int64]Post // recent matched posts awaiting a decision
}

// Server is the multi-subscription diversification service. It is safe for
// concurrent use; ingest is serialized to preserve stream order.
type Server struct {
	mu     sync.RWMutex
	nextID int64
	subs   map[int64]*subscription
	dedup  *simhash.Deduper
	// stats
	ingested int64
	dropped  int64
	lastTime float64
	started  bool
}

// New returns a Server that drops near-duplicates within hamming distance
// dupDistance over a window of dupWindow recent posts before matching.
// dupWindow ≤ 0 disables deduplication.
func New(dupDistance, dupWindow int) *Server {
	s := &Server{subs: make(map[int64]*subscription)}
	if dupWindow > 0 {
		s.dedup = simhash.NewDeduper(dupDistance, dupWindow)
	}
	return s
}

// Errors returned by the server.
var (
	ErrNoSuchSubscription = errors.New("server: no such subscription")
	ErrOutOfOrder         = errors.New("server: post arrived out of time order")
)

// Subscribe registers a profile and returns its id.
func (s *Server) Subscribe(cfg SubscriptionConfig) (int64, error) {
	matcher, err := match.NewMatcher(cfg.Topics)
	if err != nil {
		return 0, err
	}
	algo, err := parseStreamAlgo(cfg.Algorithm)
	if err != nil {
		return 0, err
	}
	proc, err := mqdp.NewStream(algo, matcher.NumTopics(), cfg.Lambda, cfg.Tau)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.subs[id] = &subscription{
		id:      id,
		cfg:     cfg,
		matcher: matcher,
		proc:    proc,
		texts:   make(map[int64]Post),
	}
	return id, nil
}

// Unsubscribe removes a profile.
func (s *Server) Unsubscribe(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.subs[id]; !ok {
		return ErrNoSuchSubscription
	}
	delete(s.subs, id)
	return nil
}

// Ingest feeds one post (nondecreasing Time) to every subscription.
func (s *Server) Ingest(p Post) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started && p.Time < s.lastTime {
		return fmt.Errorf("%w: %v after %v", ErrOutOfOrder, p.Time, s.lastTime)
	}
	s.started = true
	s.lastTime = p.Time
	s.ingested++
	if s.dedup != nil && !s.dedup.Offer(p.Text) {
		s.dropped++
		return nil
	}
	for _, sub := range s.subs {
		if err := sub.feed(p); err != nil {
			return fmt.Errorf("server: subscription %d: %w", sub.id, err)
		}
	}
	return nil
}

// feed matches and processes one post for a single subscription. The caller
// holds the server lock.
func (sub *subscription) feed(p Post) error {
	labels := sub.matcher.Match(p.Text)
	if len(labels) == 0 {
		return nil
	}
	sub.matched++
	sub.texts[p.ID] = p
	es, err := sub.proc.Process(mqdp.Post{ID: p.ID, Value: p.Time, Labels: labels})
	if err != nil {
		return err
	}
	sub.deliver(es)
	sub.gc(p.Time)
	return nil
}

// deliver converts processor emissions into client-facing records.
func (sub *subscription) deliver(es []mqdp.Emission) {
	for _, e := range es {
		src := sub.texts[e.Post.ID]
		names := make([]string, len(e.Post.Labels))
		for i, a := range e.Post.Labels {
			names[i] = sub.matcher.Topic(a).Name
		}
		sub.nextSeq++
		sub.emissions = append(sub.emissions, Emission{
			Seq:    sub.nextSeq,
			PostID: e.Post.ID,
			Time:   e.Post.Value,
			Text:   src.Text,
			Topics: names,
			EmitAt: e.EmitAt,
		})
	}
}

// gc drops remembered texts that can no longer be emitted (decision windows
// passed) and caps the emission buffer.
func (sub *subscription) gc(now float64) {
	horizon := now - sub.cfg.Lambda - sub.cfg.Tau - 1
	if len(sub.texts) > 4096 {
		for id, p := range sub.texts {
			if p.Time < horizon {
				delete(sub.texts, id)
			}
		}
	}
	const maxBuffer = 65536
	if len(sub.emissions) > maxBuffer {
		sub.emissions = append([]Emission(nil), sub.emissions[len(sub.emissions)-maxBuffer:]...)
	}
}

// Flush ends the stream, forcing every pending decision out.
func (s *Server) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range s.subs {
		sub.deliver(sub.proc.Flush())
	}
}

// Emissions returns a subscription's emissions with Seq > after, up to limit
// (≤ 0 means no limit).
func (s *Server) Emissions(id, after int64, limit int) ([]Emission, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sub, ok := s.subs[id]
	if !ok {
		return nil, ErrNoSuchSubscription
	}
	// Seqs are contiguous within the retained buffer; binary search by
	// position relative to the first retained seq.
	var out []Emission
	for _, e := range sub.emissions {
		if e.Seq > after {
			out = append(out, e)
			if limit > 0 && len(out) == limit {
				break
			}
		}
	}
	return out, nil
}

// Stats is a service snapshot.
type Stats struct {
	Ingested      int64 `json:"ingested"`
	DroppedDups   int64 `json:"dropped_duplicates"`
	Subscriptions int   `json:"subscriptions"`
}

// SubscriptionStats is a per-profile snapshot.
type SubscriptionStats struct {
	ID        int64   `json:"id"`
	Matched   int64   `json:"matched"`
	Emitted   int64   `json:"emitted"`
	Algorithm string  `json:"algorithm"`
	Lambda    float64 `json:"lambda"`
	Tau       float64 `json:"tau"`
}

// Stats reports service-level counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{Ingested: s.ingested, DroppedDups: s.dropped, Subscriptions: len(s.subs)}
}

// SubscriptionStats reports one profile's counters.
func (s *Server) SubscriptionStats(id int64) (SubscriptionStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sub, ok := s.subs[id]
	if !ok {
		return SubscriptionStats{}, ErrNoSuchSubscription
	}
	return SubscriptionStats{
		ID:        id,
		Matched:   sub.matched,
		Emitted:   sub.nextSeq,
		Algorithm: sub.proc.Name(),
		Lambda:    sub.cfg.Lambda,
		Tau:       sub.cfg.Tau,
	}, nil
}

func parseStreamAlgo(name string) (mqdp.StreamAlgorithm, error) {
	switch name {
	case "", "streamscan+":
		return mqdp.StreamScanPlus, nil
	case "streamscan":
		return mqdp.StreamScan, nil
	case "streamgreedy":
		return mqdp.StreamGreedy, nil
	case "streamgreedy+":
		return mqdp.StreamGreedyPlus, nil
	case "instant":
		return mqdp.Instant, nil
	}
	return 0, fmt.Errorf("server: unknown algorithm %q", name)
}

// Digest renders a subscription's emissions as a user-facing digest.
func (s *Server) Digest(id int64) (*digest.Digest, error) {
	es, err := s.Emissions(id, 0, 0)
	if err != nil {
		return nil, err
	}
	d := &digest.Digest{TopicCounts: make(map[string]int)}
	for _, e := range es {
		for _, name := range e.Topics {
			d.TopicCounts[name]++
		}
		d.Entries = append(d.Entries, digest.Entry{
			PostID: e.PostID,
			Value:  e.Time,
			Topics: e.Topics,
			Text:   e.Text,
		})
	}
	if len(d.Entries) > 0 {
		d.SpanLo = d.Entries[0].Value
		d.SpanHi = d.Entries[len(d.Entries)-1].Value
	}
	return d, nil
}
