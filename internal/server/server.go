// Package server implements the publish/subscribe front of the paper's
// architecture (Figure 1, §1's subscription scenario): users register
// profiles — a set of topic queries plus λ, τ and an algorithm choice — and
// a shared post stream is matched, near-duplicate filtered and diversified
// *per subscription*, each with its own streaming processor. §7.4 motivates
// exactly this shape: the per-post work must stay small because the
// algorithm "has to be executed for millions of users".
//
// Concurrency model: the Server's RWMutex guards only the subscription
// registry. All per-subscription state (matcher, processor, emission
// buffer, text cache) lives behind that subscription's own mutex, so
// ingest fans each post out to the subscriptions in parallel via
// internal/parallel while readers poll other subscriptions unblocked.
// Ingest admission (order check, dedup, counters) is serialized by a
// separate mutex, which also guarantees every subscription sees posts in
// timestamp order: per-subscription emission sequences are identical for
// any worker count.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"mqdp"
	"mqdp/internal/core"
	"mqdp/internal/digest"
	"mqdp/internal/faultinject"
	"mqdp/internal/match"
	"mqdp/internal/obs"
	"mqdp/internal/parallel"
	"mqdp/internal/route"
	"mqdp/internal/simhash"
	"mqdp/internal/stream"
	"mqdp/internal/textutil"
)

// Post is one incoming stream item.
type Post struct {
	ID   int64   `json:"id"`
	Time float64 `json:"time"`
	Text string  `json:"text"`
}

// Emission is one diversified output item for a subscription.
type Emission struct {
	Seq    int64    `json:"seq"`
	PostID int64    `json:"post_id"`
	Time   float64  `json:"time"`
	Text   string   `json:"text"`
	Topics []string `json:"topics"`
	EmitAt float64  `json:"emit_at"`
}

// SubscriptionConfig describes a user profile.
type SubscriptionConfig struct {
	// Topics are the user's queries.
	Topics []match.Topic `json:"topics"`
	// Lambda is the diversity threshold on the time dimension (seconds).
	Lambda float64 `json:"lambda"`
	// Tau is the maximum reporting delay (seconds); ignored by Instant.
	Tau float64 `json:"tau"`
	// Algorithm is one of "streamscan", "streamscan+", "streamgreedy",
	// "streamgreedy+", "instant". Default "streamscan+".
	Algorithm string `json:"algorithm"`
	// TopK sizes the continuously maintained diversified top-k view over
	// this profile's λ-cover emissions (0 means the default of 10).
	TopK int `json:"top_k,omitempty"`
	// TopKWindow is the sliding window, in value (event-time) units, the
	// top-k view retains: cover posts older than the stream watermark
	// minus the window expire from the view. 0 disables expiry, leaving
	// rank displacement as the only way out.
	TopKWindow float64 `json:"top_k_window,omitempty"`
}

// defaultTopK is the view size used when SubscriptionConfig.TopK is 0.
const defaultTopK = 10

// maxEmissionBuffer caps each subscription's retained emission history.
// A variable so tests can exercise the trim path cheaply.
var maxEmissionBuffer = 65536

// pendingText queues a matched post for horizon-based text eviction.
type pendingText struct {
	id   int64
	time float64
}

// subscription is the per-user pipeline state. Everything below mu is
// guarded by it; the atomic counters are updated under mu but may be read
// lock-free by stats endpoints.
type subscription struct {
	id  int64
	cfg SubscriptionConfig

	// routeSyms are the matcher's distinct keyword symbols in the server's
	// shared symbol table — the posting keys this subscription occupies in
	// the routing index. Immutable after Subscribe.
	routeSyms []uint32

	mu      sync.Mutex
	matcher *match.Matcher
	proc    mqdp.Processor
	// labelBuf is the reused per-subscription match scratch: the matcher
	// appends labels into it so the no-match path allocates nothing. Only
	// an owned copy is handed to the processor (which retains its input).
	labelBuf []core.Label
	// buffer of emissions with monotonically increasing, contiguous Seq.
	emissions []Emission
	// emTrace is the aligned trace-ID sidecar for emissions: emTrace[i] is
	// the trace of the ingest request that produced emissions[i]. Kept out
	// of Emission itself so poll/wire payloads stay byte-identical with
	// tracing on or off (only SSE carries the trace, as an extra comment
	// line). Nil until the first traced delivery; zero-backfilled then.
	emTrace []obs.TraceID
	texts   map[int64]Post // recent matched posts awaiting a decision
	// pending[head:] mirrors texts insertion order for O(1) amortized
	// horizon eviction (posts arrive in time order).
	pending []pendingText
	head    int
	// topk is the continuously maintained diversified top-k view over the
	// λ-cover: one ranked insert per delivered emission, one expiry sweep
	// per window slide.
	topk *stream.TopK[Emission]

	// Push-delivery hub state: wait is the broadcast channel push waiters
	// (SSE streams, blocked long-polls) park on — closed, then cleared,
	// whenever emissions, the top-k view, or the terminal state change —
	// and done latches once no further emission can ever be appended
	// (flush, unsubscribe, quarantine), with doneReason naming which.
	wait       chan struct{}
	done       bool
	doneReason string

	// Counters are updated under mu but read lock-free by stats endpoints;
	// delays is the cumulative decision-delay histogram observed at delivery
	// time, so stats cost O(buckets) instead of rescanning the buffer.
	nextSeq    obs.Counter
	matched    obs.Counter
	textMisses obs.Counter // decisions whose text was gc'd before they landed
	delays     *obs.Histogram

	// quarantined latches true when the matcher/processor panics: the
	// subscription stops receiving posts (its pipeline state is suspect)
	// but stays registered so its emission buffer remains pollable and
	// its stats surface the failure. The flag is read lock-free on the
	// fan-out fast path; quarantineMsg is guarded by mu.
	quarantined   atomic.Bool
	quarantineMsg string
}

// quarantine isolates the subscription after a pipeline panic. Caller
// holds sub.mu.
func (sub *subscription) quarantine(msg string, s *Server, o *serverObs) {
	if sub.quarantined.Swap(true) {
		return
	}
	sub.quarantineMsg = msg
	s.quarantines.Inc()
	o.onQuarantine()
	// Journal the latch (no-op without durability or during replay): after
	// a restart the profile answers quarantined exactly like before it.
	s.durAppendQuarantine(sub.id, msg)
	// A quarantined pipeline never processes another post: withdraw its
	// routing postings so it stops surfacing as an ingest candidate (the
	// lock-free quarantined check in feed stays as the backstop for
	// fan-outs already holding the old snapshot). route.Index's mutex is a
	// leaf, so taking it under sub.mu cannot deadlock.
	s.routes.Remove(sub.id, sub.routeSyms)
	if l := s.logger.Load(); l != nil {
		l.Warn("subscription quarantined", slog.Int64("subscription", sub.id), slog.String("reason", msg))
	}
	// A quarantined pipeline will never emit again: terminate the hub so
	// live streams get an explicit terminal event instead of going silent
	// while their pollers wait forever.
	sub.terminateLocked(EndReasonQuarantined)
}

// Server is the multi-subscription diversification service. It is safe for
// concurrent use: ingest admission is serialized to preserve stream order,
// then each post is fanned out to the subscriptions in parallel.
type Server struct {
	// mu guards only the registry (subs, order, nextID).
	mu     sync.RWMutex
	nextID int64
	subs   map[int64]*subscription
	// order is a copy-on-write snapshot of subs sorted by id: Ingest reads
	// it without holding mu while Subscribe/Unsubscribe install new slices.
	order []*subscription

	// ingestMu serializes Ingest and Flush: the order check, dedup and the
	// fan-out itself, so every subscription sees posts in timestamp order.
	ingestMu sync.Mutex
	dedup    *simhash.Deduper
	lastTime float64
	started  bool
	// wordBuf is the reused tokenization buffer: each admitted post is
	// tokenized exactly once under ingestMu and the words are shared
	// read-only by every fan-out worker, instead of each subscription
	// re-tokenizing the text. Reused only after the fan-out completes;
	// oversized scratch is dropped afterwards (see keepIngestScratch) so
	// one pathological post doesn't pin its buffers forever.
	wordBuf []string
	// symBuf and candBuf are the routed fan-out scratch, reused under
	// ingestMu like wordBuf: the post's tokens resolved to deduplicated
	// symbols, and the merged candidate subscriptions for those symbols.
	symBuf  []uint32
	candBuf []route.Entry[*subscription]

	// Subscription routing: symtab interns every subscription keyword (and
	// resolves post tokens) to dense uint32 symbols shared by all matchers;
	// routes is the copy-on-write inverted index keyword symbol → sorted
	// subscription postings, read lock-free by ingest. subCount mirrors the
	// registry size for the routing_skipped accounting without taking mu.
	// routingDisabled flips ingest back to brute-force broadcast fan-out
	// (SetRouting / mqdp-server -no-routing).
	symtab          *route.Table
	routes          *route.Index[*subscription]
	subCount        atomic.Int64
	routingDisabled atomic.Bool
	routingSkipped  obs.Counter

	workers  atomic.Int64 // fan-out parallelism; 0 = GOMAXPROCS
	closed   atomic.Bool  // latched by the first Flush
	ingested obs.Counter
	dropped  obs.Counter

	// Fault-tolerance layer: admission bounds the ingest path (nil =
	// unlimited), ingestDeadline caps one request's wall time, faults is
	// the deterministic chaos hook, idem replays ingest outcomes to
	// retrying clients, and shed/quarantines count the load-shedding and
	// panic-isolation decisions.
	admission      atomic.Pointer[admission]
	ingestDeadline atomic.Int64 // time.Duration; 0 = none
	faults         atomic.Pointer[faultinject.Injector]
	idem           idemCache
	shed           obs.Counter
	quarantines    obs.Counter

	// binaryWireDisabled rejects binary-framed ingest/poll bodies with
	// 415 so clients fall back to JSON (negotiation is per-request; the
	// JSON API is always supported).
	binaryWireDisabled atomic.Bool

	// Push delivery: streams counts the active push waiters (SSE streams
	// plus blocked long-polls), maxStreams caps them (0 = unlimited),
	// pushDisabled gates the push surface, and pushed counts emissions
	// written to push streams.
	streams      atomic.Int64
	maxStreams   atomic.Int64
	pushDisabled atomic.Bool
	pushed       obs.Counter

	// gaps counts *GapError reports across every delivery surface: plain
	// polls, long-polls and SSE gap events.
	gaps obs.Counter

	// Request-observability hooks: per-endpoint latency SLOs (nil = not
	// tracked) and an optional structured logger for request/lifecycle
	// records. All are atomic so the HTTP middleware reads them lock-free.
	sloIngest atomic.Pointer[obs.SLO]
	sloPoll   atomic.Pointer[obs.SLO]
	logger    atomic.Pointer[slog.Logger]

	// obsState holds the registry-wired service instruments; nil = disabled.
	obsState atomic.Pointer[serverObs]

	// dur is the durability runtime (WAL + snapshots); nil = in-memory
	// only, with zero overhead on the ingest path beyond this load.
	dur          atomic.Pointer[durState]
	walRecords   obs.Counter
	walSnapshots obs.Counter
}

// SetBinaryWire enables or disables the binary frame format on the HTTP
// surface (enabled by default). While disabled, binary ingest bodies get
// 415 Unsupported Media Type — the signal the retrying Client uses to
// fall back to JSON — and Accept negotiation on polls always answers JSON.
func (s *Server) SetBinaryWire(enabled bool) { s.binaryWireDisabled.Store(!enabled) }

// New returns a Server that drops near-duplicates within hamming distance
// dupDistance over a window of dupWindow recent posts before matching.
// dupWindow ≤ 0 disables deduplication. Ingest fan-out defaults to
// GOMAXPROCS workers; see SetParallelism.
func New(dupDistance, dupWindow int) *Server {
	s := &Server{
		subs:   make(map[int64]*subscription),
		symtab: route.NewTable(),
		routes: route.NewIndex[*subscription](),
	}
	if dupWindow > 0 {
		s.dedup = simhash.NewDeduper(dupDistance, dupWindow)
	}
	return s
}

// SetRouting toggles inverted subscription routing on the ingest path
// (enabled by default): with routing, each post is fed only to the
// subscriptions whose keywords intersect its tokens — O(matching)
// matcher invocations instead of O(all). Disabling reverts to the
// brute-force broadcast fan-out; per-subscription matchers are the ground
// truth either way, so emissions are byte-identical in both modes. The
// routing index is maintained regardless, so the toggle is safe at any
// point in the stream.
func (s *Server) SetRouting(enabled bool) { s.routingDisabled.Store(!enabled) }

// RoutingEnabled reports whether ingest uses inverted subscription routing.
func (s *Server) RoutingEnabled() bool { return !s.routingDisabled.Load() }

// SetParallelism sets the worker count used to fan each ingested post out
// across subscriptions: 0 (the default) means GOMAXPROCS, 1 is serial.
// Emission sequences per subscription are identical for any value.
func (s *Server) SetParallelism(n int) { s.workers.Store(int64(n)) }

// Parallelism reports the resolved fan-out worker count.
func (s *Server) Parallelism() int { return parallel.Workers(int(s.workers.Load())) }

// Errors returned by the server.
var (
	ErrNoSuchSubscription = errors.New("server: no such subscription")
	ErrOutOfOrder         = errors.New("server: post arrived out of time order")
	ErrClosed             = errors.New("server: stream flushed, no longer accepting posts")
	// ErrGap reports a stale poll cursor: emissions between the cursor and
	// the first retained Seq were dropped by GC and can never be
	// delivered. It is always wrapped in a *GapError, returned alongside
	// the retained tail — never a silent splice.
	ErrGap = errors.New("server: emissions lost to gc before cursor")
	// ErrStreamEnded reports that a push stream or blocking poll
	// terminated because its subscription can never emit again. Always
	// wrapped in a *StreamEndError naming the reason.
	ErrStreamEnded = errors.New("server: subscription stream ended")
)

// Terminal stream reasons carried by StreamEndError and the SSE end event.
const (
	EndReasonFlushed      = "flushed"
	EndReasonUnsubscribed = "unsubscribed"
	EndReasonQuarantined  = "quarantined"
)

// GapError is the gap geometry behind ErrGap: seqs in [GapFrom, FirstSeq)
// were emitted but dropped before the cursor read them. FirstSeq is where
// a resuming client should continue (the first retained Seq, or — when the
// whole buffer was trimmed — the next Seq to be assigned).
type GapError struct {
	GapFrom  int64 `json:"gap_from"`
	FirstSeq int64 `json:"first_seq"`
}

func (e *GapError) Error() string {
	return fmt.Sprintf("server: emissions %d..%d lost to gc; resume from seq %d", e.GapFrom, e.FirstSeq-1, e.FirstSeq)
}

// Unwrap makes errors.Is(err, ErrGap) match.
func (e *GapError) Unwrap() error { return ErrGap }

// StreamEndError reports why a push stream or blocking poll terminated:
// EndReasonFlushed, EndReasonUnsubscribed or EndReasonQuarantined.
type StreamEndError struct {
	Reason string
}

func (e *StreamEndError) Error() string { return "server: subscription stream ended: " + e.Reason }

// Unwrap makes errors.Is(err, ErrStreamEnded) match.
func (e *StreamEndError) Unwrap() error { return ErrStreamEnded }

// Subscribe registers a profile and returns its id. With durability
// enabled, the registration is journaled so it survives a crash; while
// the durability layer is degraded, registry mutations are refused with
// ErrReadOnly (they could not be made durable).
func (s *Server) Subscribe(cfg SubscriptionConfig) (int64, error) {
	d := s.dur.Load()
	if d != nil && !d.replaying.Load() {
		if d.degraded.Load() {
			return 0, ErrReadOnly
		}
		d.walBatchMu.Lock()
		defer d.walBatchMu.Unlock()
	}
	id, err := s.subscribe(0, cfg)
	if err != nil {
		return 0, err
	}
	if d != nil && !d.replaying.Load() {
		s.durAppendSubscribe(d, id, cfg)
	}
	return id, nil
}

// subscribe builds and registers one subscription pipeline. id 0 assigns
// the next registry id; a nonzero id re-registers a specific id (WAL
// replay) and is a no-op when that id is already present.
func (s *Server) subscribe(id int64, cfg SubscriptionConfig) (int64, error) {
	matcher, err := match.NewMatcher(cfg.Topics)
	if err != nil {
		return 0, err
	}
	// Compile the matcher against the shared symbol table: per-post
	// matching then compares dense uint32 symbols instead of hashing
	// keyword strings, and the returned symbols key this subscription's
	// posting lists in the routing index.
	routeSyms := matcher.CompileSymbols(s.symtab)
	algo, err := parseStreamAlgo(cfg.Algorithm)
	if err != nil {
		return 0, err
	}
	proc, err := mqdp.NewStream(algo, matcher.NumTopics(), cfg.Lambda, cfg.Tau)
	if err != nil {
		return 0, err
	}
	if cfg.TopK < 0 || cfg.TopKWindow < 0 {
		return 0, fmt.Errorf("server: negative top_k %d or top_k_window %v", cfg.TopK, cfg.TopKWindow)
	}
	k := cfg.TopK
	if k == 0 {
		k = defaultTopK
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == 0 {
		s.nextID++
		id = s.nextID
	} else {
		if _, ok := s.subs[id]; ok {
			return id, nil
		}
		if id > s.nextID {
			s.nextID = id
		}
	}
	sub := &subscription{
		id:        id,
		cfg:       cfg,
		routeSyms: routeSyms,
		matcher:   matcher,
		proc:      proc,
		texts:     make(map[int64]Post),
		delays:    obs.NewHistogram(obs.DelayBuckets),
		topk:      stream.NewTopK[Emission](k, cfg.TopKWindow),
	}
	s.subs[sub.id] = sub
	s.subCount.Store(int64(len(s.subs)))
	if o := s.obsState.Load(); o != nil {
		o.subs.Set(float64(len(s.subs)))
	}
	// Copy-on-write: in-flight fan-outs keep their snapshot. Ids normally
	// only grow; the sorted insert also covers replayed ids arriving after
	// a snapshot restore.
	s.order = insertOrdered(s.order, sub)
	// Post the new subscription under its keyword symbols (route.Index has
	// its own leaf mutex and publishes a fresh snapshot; in-flight fan-outs
	// keep theirs, same contract as the order slice).
	s.routes.Add(sub.id, sub, routeSyms)
	return sub.id, nil
}

// Unsubscribe removes a profile and terminates its live push streams:
// blocked waiters wake immediately with an explicit stream end instead of
// hanging until their own timeouts. With durability enabled the removal
// is journaled; while degraded it is refused with ErrReadOnly.
func (s *Server) Unsubscribe(id int64) error {
	d := s.dur.Load()
	if d != nil && !d.replaying.Load() {
		if d.degraded.Load() {
			return ErrReadOnly
		}
		d.walBatchMu.Lock()
		defer d.walBatchMu.Unlock()
	}
	if err := s.unsubscribe(id); err != nil {
		return err
	}
	if d != nil && !d.replaying.Load() {
		s.durAppendUnsubscribe(d, id)
	}
	return nil
}

func (s *Server) unsubscribe(id int64) error {
	s.mu.Lock()
	sub, ok := s.subs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNoSuchSubscription
	}
	delete(s.subs, id)
	s.subCount.Store(int64(len(s.subs)))
	if o := s.obsState.Load(); o != nil {
		o.subs.Set(float64(len(s.subs)))
	}
	order := make([]*subscription, 0, len(s.order)-1)
	for _, other := range s.order {
		if other.id != id {
			order = append(order, other)
		}
	}
	s.order = order
	s.mu.Unlock()
	// Withdraw the postings (idempotent: quarantine may have removed them
	// already) so routed ingest stops producing this candidate.
	s.routes.Remove(id, sub.routeSyms)
	sub.mu.Lock()
	sub.terminateLocked(EndReasonUnsubscribed)
	sub.mu.Unlock()
	return nil
}

// Ingest feeds one post (nondecreasing Time) to every subscription. The
// per-subscription work — matching, processing, delivery — runs on up to
// Parallelism() workers, one subscription per worker at a time, so the
// cost per post is O(|subs|/workers) instead of O(|subs|) serialized.
func (s *Server) Ingest(p Post) error {
	return s.IngestContext(context.Background(), p)
}

// IngestContext is Ingest honoring a caller deadline: a post is admitted
// atomically or not at all — ctx is only consulted before admission, so
// an expired deadline never leaves a half-fanned-out post behind. With
// durability enabled the post goes through the batch/ack journal pair of
// IngestBatch (one single-post WAL batch record plus its acked outcome,
// committed per the fsync policy), so replay applies exactly what this
// call reported; while degraded, ingest is refused with ErrReadOnly.
func (s *Server) IngestContext(ctx context.Context, p Post) error {
	d := s.dur.Load()
	if d == nil || d.replaying.Load() {
		return s.ingestOne(ctx, p)
	}
	_, _, err := s.IngestBatch(ctx, []Post{p}, "")
	return err
}

// ingestOne is the WAL-free admission + fan-out core shared by the live
// path (which journals first) and WAL replay (whose records already exist).
func (s *Server) ingestOne(ctx context.Context, p Post) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.closed.Load() {
		return ErrClosed
	}
	if s.started && p.Time < s.lastTime {
		return fmt.Errorf("%w: %v after %v", ErrOutOfOrder, p.Time, s.lastTime)
	}
	s.started = true
	s.lastTime = p.Time
	s.ingested.Inc()
	o := s.obsState.Load()
	// Per-post span, a child of the request span when the caller carries
	// one (the HTTP path) and a fresh root otherwise (direct API use with a
	// tracer wired). Its trace ID follows the post through fan-out into the
	// emissions it produces.
	var span *obs.ActiveSpan
	if o != nil && o.tracer != nil {
		if parent := obs.FromContext(ctx); parent != nil {
			span = parent.Child("ingest.post")
		} else {
			span = o.tracer.StartTrace("ingest.post")
		}
		span.SetInt("post_id", p.ID)
		defer span.End()
	}
	if s.dedup != nil && !s.dedup.Offer(p.Text) {
		s.dropped.Inc()
		span.Set("dropped", "duplicate")
		return nil
	}
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	// Tokenize once per post; every subscription matches against the same
	// word slice (read-only during the fan-out).
	s.wordBuf = textutil.AppendWords(s.wordBuf[:0], p.Text)
	words := s.wordBuf
	if o != nil {
		o.tokenizeTime.ObserveSince(start)
	}
	inj := s.faults.Load()
	var err error
	if !s.routingDisabled.Load() {
		// Inverted routing: resolve the post's tokens to symbols (unknown
		// tokens are nobody's keyword and drop out here), k-way-merge the
		// candidate postings in subscription-ID order, and feed only those.
		// Every skipped subscription would have matched nothing, so
		// emissions are byte-identical to the broadcast fan-out below.
		s.symBuf = route.DedupSyms(s.symtab.AppendSyms(s.symBuf[:0], words))
		syms := s.symBuf
		s.candBuf = s.routes.Candidates(s.candBuf[:0], syms)
		cands := s.candBuf
		if skipped := s.subCount.Load() - int64(len(cands)); skipped > 0 {
			s.routingSkipped.Add(skipped)
		}
		span.SetInt("routing_candidates", int64(len(cands)))
		if o != nil {
			o.routingCands.Observe(float64(len(cands)))
		}
		err = parallel.FirstErr(int(s.workers.Load()), len(cands), func(i int) error {
			if err := cands[i].V.feed(p, words, syms, s, o, inj, span); err != nil {
				return fmt.Errorf("server: subscription %d: %w", cands[i].ID, err)
			}
			return nil
		})
	} else {
		s.mu.RLock()
		shards := s.order
		s.mu.RUnlock()
		err = parallel.FirstErr(int(s.workers.Load()), len(shards), func(i int) error {
			if err := shards[i].feed(p, words, nil, s, o, inj, span); err != nil {
				return fmt.Errorf("server: subscription %d: %w", shards[i].id, err)
			}
			return nil
		})
	}
	// Mirror the wire pool's oversized-scratch policy: one pathological
	// post must not pin a huge tokenize/routing scratch forever.
	if cap(s.wordBuf) > keepIngestScratch {
		s.wordBuf = nil
	}
	if cap(s.symBuf) > keepIngestScratch {
		s.symBuf = nil
	}
	if o != nil {
		if span != nil {
			o.ingestFanout.ObserveTraced(time.Since(start).Seconds(), span.TraceID())
		} else {
			o.ingestFanout.ObserveSince(start)
		}
	}
	span.SetError(err)
	return err
}

// keepIngestScratch bounds the per-post scratch (words, symbols) retained
// between ingests, in entries — the slice-pool analogue of the wire
// codec's 8 MiB byte cap.
const keepIngestScratch = 1 << 12

// feed matches and processes one post for a single subscription. words is
// the shared, read-only tokenization of p.Text; syms, when non-nil, is the
// same tokenization resolved through the server's symbol table (the routed
// path), letting the compiled matcher compare uint32 symbols instead of
// hashing strings. A panic anywhere in the per-subscription pipeline
// (matcher, processor, delivery — or a scripted chaos panic from inj)
// quarantines this subscription and returns nil: one poisoned profile must
// not fail the ingest or kill the process.
func (sub *subscription) feed(p Post, words []string, syms []uint32, s *Server, o *serverObs, inj *faultinject.Injector, parent *obs.ActiveSpan) (err error) {
	if sub.quarantined.Load() {
		return nil
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			sub.quarantine(fmt.Sprintf("panic on post %d: %v", p.ID, r), s, o)
			err = nil
		}
	}()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	// Match into the reused per-subscription scratch: the no-match path
	// allocates nothing, and a match only pays for the owned copy handed
	// to the processor below.
	var labels []core.Label
	if syms != nil {
		labels = sub.matcher.MatchSymbolsInto(sub.labelBuf, syms)
	} else {
		labels = sub.matcher.MatchWordsInto(sub.labelBuf, words)
	}
	if labels != nil {
		sub.labelBuf = labels[:0]
	}
	if o != nil {
		o.matchTime.ObserveSince(start)
	}
	if len(labels) == 0 {
		return nil
	}
	// The processor retains its input Labels slice (pending buffers), so
	// hand it an owned copy rather than the scratch.
	labels = append(make([]core.Label, 0, len(labels)), labels...)
	sub.matched.Inc()
	o.onMatch()
	if inj != nil {
		if err := inj.Fire(fmt.Sprintf("sub%d.process", sub.id)); err != nil {
			return err
		}
	}
	sub.texts[p.ID] = p
	sub.pending = append(sub.pending, pendingText{id: p.ID, time: p.Time})
	// The stream-processor decision span: only matched subscriptions reach
	// here, so an untraced non-matching fan-out stays span-free.
	procSpan := parent.Child("sub.process")
	if procSpan != nil {
		procSpan.SetInt("subscription", sub.id)
		procSpan.Set("algorithm", sub.proc.Name())
		procSpan.SetInt("labels", int64(len(labels)))
	}
	es, err := sub.proc.Process(mqdp.Post{ID: p.ID, Value: p.Time, Labels: labels})
	if err != nil {
		procSpan.SetError(err)
		procSpan.End()
		return err
	}
	procSpan.SetInt("decisions", int64(len(es)))
	procSpan.End()
	var delSpan *obs.ActiveSpan
	if parent != nil && len(es) > 0 {
		delSpan = parent.Child("sub.deliver")
		delSpan.SetInt("subscription", sub.id)
	}
	sub.deliver(es, o, parent.TraceID())
	delSpan.End()
	sub.gc(p.Time)
	// Slide the top-k window to this post's time; waiters only wake when
	// the visible view actually changed (deliver wakes them for appends).
	if sub.topk.Advance(p.Time) {
		sub.notifyLocked()
	}
	return nil
}

// deliver converts processor emissions into client-facing records. A
// decision consumes its cached text; a decision whose text was already
// evicted is counted in textMisses and skipped rather than emitted blank.
// Caller holds sub.mu.
func (sub *subscription) deliver(es []mqdp.Emission, o *serverObs, trace obs.TraceID) {
	appended := false
	for _, e := range es {
		src, ok := sub.texts[e.Post.ID]
		if !ok {
			sub.textMisses.Inc()
			o.onMiss()
			continue
		}
		delete(sub.texts, e.Post.ID)
		names := make([]string, len(e.Post.Labels))
		for i, a := range e.Post.Labels {
			names[i] = sub.matcher.Topic(a).Name
		}
		seq := sub.nextSeq.Add(1)
		delay := e.EmitAt - e.Post.Value
		sub.delays.Observe(delay)
		stream.DecisionDelayExemplar(delay, trace)
		o.onEmit()
		em := Emission{
			Seq:    seq,
			PostID: e.Post.ID,
			Time:   e.Post.Value,
			Text:   src.Text,
			Topics: names,
			EmitAt: e.EmitAt,
		}
		sub.emissions = append(sub.emissions, em)
		// Record the originating trace in the sidecar; the lazy allocation
		// zero-backfills emissions delivered before tracing was enabled.
		if !trace.IsZero() || sub.emTrace != nil {
			if sub.emTrace == nil {
				sub.emTrace = make([]obs.TraceID, len(sub.emissions)-1, cap(sub.emissions))
			}
			sub.emTrace = append(sub.emTrace, trace)
		}
		// Every cover emission is also a top-k candidate: coverage is the
		// number of queries the post served at decision time.
		sub.topk.Insert(stream.TopKItem[Emission]{
			Value:    em.Time,
			Coverage: len(names),
			Seq:      seq,
			Payload:  em,
		})
		appended = true
	}
	if appended {
		sub.notifyLocked()
	}
}

// gc drops remembered texts whose decision windows have passed and caps the
// emission buffer. The pending queue mirrors insertion (= time) order, so
// eviction is O(1) amortized per post. Caller holds sub.mu.
func (sub *subscription) gc(now float64) {
	horizon := now - sub.cfg.Lambda - sub.cfg.Tau - 1
	for sub.head < len(sub.pending) && sub.pending[sub.head].time < horizon {
		delete(sub.texts, sub.pending[sub.head].id) // no-op if already decided
		sub.head++
	}
	if sub.head > 64 && sub.head*2 >= len(sub.pending) {
		sub.pending = append(sub.pending[:0], sub.pending[sub.head:]...)
		sub.head = 0
	}
	if len(sub.emissions) > maxEmissionBuffer {
		sub.emissions = append([]Emission(nil), sub.emissions[len(sub.emissions)-maxEmissionBuffer:]...)
		if sub.emTrace != nil {
			sub.emTrace = append([]obs.TraceID(nil), sub.emTrace[len(sub.emTrace)-maxEmissionBuffer:]...)
		}
	}
}

// Flush ends the stream, forcing every pending decision out, and latches
// the server closed: further Ingest calls fail with ErrClosed and further
// Flush calls are no-ops (processor streams end exactly once).
func (s *Server) Flush() {
	d := s.dur.Load()
	if d != nil && !d.replaying.Load() {
		d.walBatchMu.Lock()
		defer d.walBatchMu.Unlock()
		// Journal the end-of-stream latch (first Flush only) so a restart
		// answers ErrClosed exactly like the live process did. A degraded
		// log can't record it, but the in-memory flush still proceeds —
		// shutdown must not hinge on a broken disk.
		if !s.closed.Load() && !d.degraded.Load() {
			s.durAppendFlush(d)
		}
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.closed.Swap(true) {
		return
	}
	s.mu.RLock()
	shards := s.order
	s.mu.RUnlock()
	o := s.obsState.Load()
	parallel.ForEach(int(s.workers.Load()), len(shards), func(i int) {
		sub := shards[i]
		sub.mu.Lock()
		defer sub.mu.Unlock()
		defer func() {
			// A processor that panics while flushing is quarantined like
			// one that panics mid-stream; the other subscriptions flush on.
			if r := recover(); r != nil {
				sub.quarantine(fmt.Sprintf("panic on flush: %v", r), s, o)
			}
		}()
		if !sub.quarantined.Load() {
			sub.deliver(sub.proc.Flush(), o, obs.TraceID{})
		}
		// Every decision has landed; whatever text remains was rejected.
		clear(sub.texts)
		sub.pending, sub.head = nil, 0
		// The stream is over: wake every push waiter with the terminal
		// state instead of leaving them parked until client timeouts.
		sub.terminateLocked(EndReasonFlushed)
	})
}

// Closed reports whether Flush has ended the stream.
func (s *Server) Closed() bool { return s.closed.Load() }

// lookup fetches a subscription from the registry.
func (s *Server) lookup(id int64) (*subscription, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sub, ok := s.subs[id]
	return sub, ok
}

// Emissions returns a copy of a subscription's emissions with Seq > after,
// up to limit (≤ 0 means no limit). Seqs are contiguous within the
// retained buffer, so the starting index is computed in O(1) from the
// first retained Seq — no scan of the buffer.
//
// A cursor that predates the retained buffer is never spliced silently:
// when emissions in (after, firstRetained) were dropped by GC, Emissions
// returns the retained tail together with a *GapError (errors.Is
// ErrGap) reporting where delivery can resume.
func (s *Server) Emissions(id, after int64, limit int) ([]Emission, error) {
	if o := s.obsState.Load(); o != nil {
		defer o.pollTime.ObserveSince(time.Now())
	}
	sub, ok := s.lookup(id)
	if !ok {
		return nil, ErrNoSuchSubscription
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	tail, _, gap := sub.pollLocked(after, limit)
	if gap != nil {
		return tail, gap
	}
	return tail, nil
}

// pollLocked copies the emissions with Seq > after (up to limit; ≤ 0 means
// no limit) and reports a *GapError when seqs in (after, firstAvail) were
// emitted but already dropped — including the fully trimmed empty-buffer
// case, where firstAvail is the next Seq to be assigned. The returned
// traces slice, when non-nil, aligns with the emissions: traces[i] is the
// originating ingest trace of the i-th returned emission (SSE attaches it
// to each event; poll JSON bodies never carry it). Caller holds sub.mu.
func (sub *subscription) pollLocked(after int64, limit int) ([]Emission, []obs.TraceID, *GapError) {
	firstAvail := sub.nextSeq.Value() + 1
	if len(sub.emissions) > 0 {
		firstAvail = sub.emissions[0].Seq
	}
	var gap *GapError
	if after+1 < firstAvail {
		gap = &GapError{GapFrom: after + 1, FirstSeq: firstAvail}
	}
	if len(sub.emissions) == 0 {
		return nil, nil, gap
	}
	start := 0
	if first := sub.emissions[0].Seq; after >= first {
		// Seq k lives at index k - first.
		start = int(after - first + 1)
	}
	if start >= len(sub.emissions) {
		return nil, nil, gap
	}
	tail := sub.emissions[start:]
	if limit > 0 && limit < len(tail) {
		tail = tail[:limit]
	}
	out := make([]Emission, len(tail))
	copy(out, tail)
	var traces []obs.TraceID
	if sub.emTrace != nil {
		traces = make([]obs.TraceID, len(tail))
		copy(traces, sub.emTrace[start:start+len(tail)])
	}
	return out, traces, gap
}

// Stats is a service snapshot.
type Stats struct {
	Ingested      int64 `json:"ingested"`
	DroppedDups   int64 `json:"dropped_duplicates"`
	Subscriptions int   `json:"subscriptions"`
}

// DelaySummary is the decision-delay distribution over every emission a
// subscription has delivered, read from its cumulative histogram. Count,
// Mean and Max are exact; P95 is a bucket-interpolated estimate (it never
// exceeds Max). Unlike the pre-histogram summary this covers the whole
// stream, not just the retained emission buffer, and costs O(buckets).
type DelaySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P95   float64 `json:"p95"`
}

// SubscriptionStats is a per-profile snapshot.
type SubscriptionStats struct {
	ID      int64 `json:"id"`
	Matched int64 `json:"matched"`
	Emitted int64 `json:"emitted"`
	// TextMisses counts decisions whose cached text had been gc'd before
	// the decision landed (the emission is dropped, not emitted blank).
	TextMisses int64        `json:"text_misses"`
	Algorithm  string       `json:"algorithm"`
	Lambda     float64      `json:"lambda"`
	Tau        float64      `json:"tau"`
	Delay      DelaySummary `json:"delay"`
	// Quarantined reports that the pipeline panicked and the profile was
	// isolated: it receives no further posts but its emission buffer
	// stays pollable. QuarantineReason carries the recovered panic.
	Quarantined      bool   `json:"quarantined,omitempty"`
	QuarantineReason string `json:"quarantine_reason,omitempty"`
}

// Stats reports service-level counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	n := len(s.subs)
	s.mu.RUnlock()
	return Stats{
		Ingested:      s.ingested.Value(),
		DroppedDups:   s.dropped.Value(),
		Subscriptions: n,
	}
}

// SubscriptionStats reports one profile's counters, including the
// decision-delay distribution over its retained emission buffer.
func (s *Server) SubscriptionStats(id int64) (SubscriptionStats, error) {
	sub, ok := s.lookup(id)
	if !ok {
		return SubscriptionStats{}, ErrNoSuchSubscription
	}
	return sub.stats(), nil
}

func (sub *subscription) stats() SubscriptionStats {
	// Counters and the delay histogram are atomic, so a stats poll only
	// takes sub.mu on the rare quarantined path (to read the reason).
	var reason string
	quarantined := sub.quarantined.Load()
	if quarantined {
		sub.mu.Lock()
		reason = sub.quarantineMsg
		sub.mu.Unlock()
	}
	return SubscriptionStats{
		Quarantined:      quarantined,
		QuarantineReason: reason,
		ID:               sub.id,
		Matched:          sub.matched.Value(),
		Emitted:          sub.nextSeq.Value(),
		TextMisses:       sub.textMisses.Value(),
		Algorithm:        sub.proc.Name(),
		Lambda:           sub.cfg.Lambda,
		Tau:              sub.cfg.Tau,
		Delay: DelaySummary{
			Count: int(sub.delays.Count()),
			Mean:  sub.delays.Mean(),
			Max:   sub.delays.Max(),
			P95:   sub.delays.Quantile(0.95),
		},
	}
}

// Metrics is the full observability snapshot served at GET /metrics.
type Metrics struct {
	Ingested      int64 `json:"ingested"`
	DroppedDups   int64 `json:"dropped_duplicates"`
	Subscriptions int   `json:"subscriptions"`
	MatchedTotal  int64 `json:"matched_total"`
	EmittedTotal  int64 `json:"emitted_total"`
	TextMisses    int64 `json:"text_misses"`
	Sheds         int64 `json:"sheds"`
	Quarantines   int64 `json:"quarantines"`
	ActiveStreams int64 `json:"active_streams"`
	PushedTotal   int64 `json:"pushed_total"`
	Gaps          int64 `json:"gaps"`
	// Routing reports whether inverted subscription routing is active on
	// ingest; RoutingSkipped counts the subscription feeds it elided
	// (posts × subscriptions with no keyword overlap).
	Routing        bool            `json:"routing"`
	RoutingSkipped int64           `json:"routing_skipped"`
	Flushed        bool            `json:"flushed"`
	Workers        int             `json:"workers"`
	SLOs           []obs.SLOStatus `json:"slos,omitempty"`
	// Durability is the WAL/snapshot/recovery section; nil (omitted) when
	// the server runs in-memory only.
	Durability *DurabilityMetrics  `json:"durability,omitempty"`
	Profiles   []SubscriptionStats `json:"profiles"`
}

// Metrics aggregates service counters and every profile's snapshot.
func (s *Server) Metrics() Metrics {
	s.mu.RLock()
	shards := s.order
	s.mu.RUnlock()
	m := Metrics{
		Ingested:       s.ingested.Value(),
		DroppedDups:    s.dropped.Value(),
		Subscriptions:  len(shards),
		Sheds:          s.shed.Value(),
		Quarantines:    s.quarantines.Value(),
		ActiveStreams:  s.streams.Load(),
		PushedTotal:    s.pushed.Value(),
		Gaps:           s.gaps.Value(),
		Routing:        !s.routingDisabled.Load(),
		RoutingSkipped: s.routingSkipped.Value(),
		Flushed:        s.closed.Load(),
		Workers:        s.Parallelism(),
		SLOs:           s.SLOs(),
		Durability:     s.durabilityMetrics(),
		Profiles:       make([]SubscriptionStats, 0, len(shards)),
	}
	for _, sub := range shards {
		st := sub.stats()
		m.MatchedTotal += st.Matched
		m.EmittedTotal += st.Emitted
		m.TextMisses += st.TextMisses
		m.Profiles = append(m.Profiles, st)
	}
	return m
}

// Health is the liveness snapshot served at GET /healthz.
type Health struct {
	// Status is "ok" while ingest is open, "flushed" after Flush, and
	// "degraded" when the durability layer latched read-only mode.
	Status        string `json:"status"`
	Subscriptions int    `json:"subscriptions"`
	Ingested      int64  `json:"ingested"`
	// DegradedReason carries the IO failure that latched read-only mode.
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// Health reports liveness.
func (s *Server) Health() Health {
	h := Health{Status: "ok", Ingested: s.ingested.Value()}
	if s.closed.Load() {
		h.Status = "flushed"
	}
	if degraded, reason := s.Degraded(); degraded {
		// Degraded wins: it is the state an operator must act on.
		h.Status = "degraded"
		h.DegradedReason = reason
	}
	s.mu.RLock()
	h.Subscriptions = len(s.subs)
	s.mu.RUnlock()
	return h
}

func parseStreamAlgo(name string) (mqdp.StreamAlgorithm, error) {
	switch name {
	case "", "streamscan+":
		return mqdp.StreamScanPlus, nil
	case "streamscan":
		return mqdp.StreamScan, nil
	case "streamgreedy":
		return mqdp.StreamGreedy, nil
	case "streamgreedy+":
		return mqdp.StreamGreedyPlus, nil
	case "instant":
		return mqdp.Instant, nil
	}
	return 0, fmt.Errorf("server: unknown algorithm %q", name)
}

// Digest renders a subscription's emissions as a user-facing digest. A
// digest summarizes whatever is retained, so a trimmed history (ErrGap) is
// tolerated rather than failed.
func (s *Server) Digest(id int64) (*digest.Digest, error) {
	es, err := s.Emissions(id, 0, 0)
	if err != nil && !errors.Is(err, ErrGap) {
		return nil, err
	}
	d := &digest.Digest{TopicCounts: make(map[string]int)}
	for _, e := range es {
		for _, name := range e.Topics {
			d.TopicCounts[name]++
		}
		d.Entries = append(d.Entries, digest.Entry{
			PostID: e.PostID,
			Value:  e.Time,
			Topics: e.Topics,
			Text:   e.Text,
		})
	}
	if len(d.Entries) > 0 {
		d.SpanLo = d.Entries[0].Value
		d.SpanHi = d.Entries[len(d.Entries)-1].Value
	}
	return d, nil
}
