package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mqdp/internal/obs"
)

// newTracedServer wires a server with a keep-everything tracer behind an
// httptest listener, returning the test server, the core and the tracer.
func newTracedServer(t *testing.T) (*httptest.Server, *Server, *obs.Tracer) {
	t.Helper()
	s := New(0, 0)
	s.SetParallelism(1)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	tracer.SetRetention(0, 1) // retain every trace: tests assert exact contents
	reg.SetTracer(tracer)
	s.SetObs(reg)
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(ts.Close)
	return ts, s, tracer
}

// waitForTrace polls the journal until the trace holds every wanted span
// name. The server's root span ends slightly after the response is written
// (the middleware finishes once the handler returns), so the client can
// observe its reply before the trace is journaled.
func waitForTrace(t *testing.T, tracer *obs.Tracer, id obs.TraceID, want ...string) []obs.Span {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans := tracer.Trace(id)
		names := map[string]bool{}
		for _, sp := range spans {
			names[sp.Name] = true
		}
		missing := ""
		for _, w := range want {
			if !names[w] {
				missing = w
				break
			}
		}
		if missing == "" {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never recorded span %q; have %d spans: %v", id, missing, len(spans), names)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceEndToEnd is the acceptance path: one post ingested under a
// client-side span is followable end to end — the server-side trace (same
// trace ID) covers the HTTP request, admission, decode, the per-post fan-out
// and the per-subscription process/deliver steps; /debug/traces serves the
// tree in both formats; the fan-out histogram exposes an exemplar linking to
// a retrievable trace; and the SSE stream hands back the originating trace
// ID on the resulting emission.
func TestTraceEndToEnd(t *testing.T) {
	ts, s, tracer := newTracedServer(t)

	cl := NewClient(ts.URL)
	id, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}

	// The "remote caller": its root span seeds the trace the server joins.
	ct := obs.NewTracer(16)
	ct.SetRetention(0, 1)
	root := ct.StartTrace("client.ingest")
	ctx := obs.ContextWithSpan(context.Background(), root)
	if err := cl.IngestContext(ctx, Post{ID: 1, Time: 0, Text: "obama speaks tonight"}); err != nil {
		t.Fatal(err)
	}
	root.End()
	trace := root.TraceID()

	spans := waitForTrace(t, tracer, trace,
		"http.ingest", "server.admit", "ingest.decode", "ingest.post", "sub.process", "sub.deliver")
	var httpSpan obs.Span
	for _, sp := range spans {
		if sp.Trace != trace {
			t.Fatalf("span %q recorded under trace %s, want %s", sp.Name, sp.Trace, trace)
		}
		if sp.Name == "http.ingest" {
			httpSpan = sp
		}
	}
	// W3C propagation: the server's request span is parented on the remote
	// client span, not a fresh root.
	if httpSpan.Parent != root.SpanID() {
		t.Errorf("http.ingest parent = %x, want the client span %x", httpSpan.Parent, root.SpanID())
	}

	// X-Trace-Id echoes the propagated trace on a traced request.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	echo := ct.StartTrace("client.stats")
	req.Header.Set("traceparent", echo.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	echo.End()
	if got := resp.Header.Get("X-Trace-Id"); got != echo.TraceID().String() {
		t.Errorf("X-Trace-Id = %q, want %q", got, echo.TraceID().String())
	}

	// /debug/traces lists the ingest trace (JSON and text).
	resp, err = http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, sum := range list.Traces {
		if sum.Trace == trace {
			found = true
			if sum.Root != "http.ingest" {
				t.Errorf("trace summary root = %q, want http.ingest", sum.Root)
			}
			if sum.Spans < 6 {
				t.Errorf("trace summary spans = %d, want >= 6", sum.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("/debug/traces does not list trace %s: %+v", trace, list.Traces)
	}
	body := getBody(t, ts.URL+"/debug/traces?format=text")
	if !strings.Contains(body, trace.String()) {
		t.Errorf("text trace list missing %s:\n%s", trace, body)
	}

	// /debug/traces/{id} renders the parent-linked tree in both formats.
	resp, err = http.Get(ts.URL + "/debug/traces/" + trace.String())
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/{id} = %d", resp.StatusCode)
	}
	var tree struct {
		Trace string          `json:"trace"`
		Spans int             `json:"spans"`
		Roots []obs.TraceNode `json:"roots"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tree.Trace != trace.String() || tree.Spans < 6 || len(tree.Roots) == 0 {
		t.Fatalf("trace tree = %+v", tree)
	}
	text := getBody(t, ts.URL+"/debug/traces/"+trace.String()+"?format=text")
	for _, name := range []string{"http.ingest", "ingest.post", "sub.deliver"} {
		if !strings.Contains(text, name) {
			t.Errorf("text tree missing span %q:\n%s", name, text)
		}
	}

	// The fan-out histogram carries an exemplar whose trace is retrievable.
	expo := getBody(t, ts.URL+"/metrics/prometheus")
	m := regexp.MustCompile(`# \{trace_id="([0-9a-f]{32})"\}`).FindStringSubmatch(expo)
	if m == nil {
		t.Fatal("no exemplar in /metrics/prometheus exposition")
	}
	resp, err = http.Get(ts.URL + "/debug/traces/" + m[1])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("exemplar trace %s not retrievable: %d", m[1], resp.StatusCode)
	}

	// The SSE frame for the emission carries the originating ingest trace.
	s.Flush() // terminate the stream after the buffered drain
	var events []StreamEvent
	if err := cl.Stream(context.Background(), id, 0, func(ev StreamEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sawEmission := false
	for _, ev := range events {
		if ev.Emission == nil {
			continue
		}
		sawEmission = true
		if ev.Trace != trace {
			t.Errorf("emission seq %d carries trace %s, want the ingest trace %s", ev.Emission.Seq, ev.Trace, trace)
		}
	}
	if !sawEmission {
		t.Fatal("stream delivered no emission events")
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// TestTraceMalformedTraceparent: anything unparseable starts a fresh root —
// the request succeeds and is traced under a server-generated ID, never 4xx.
func TestTraceMalformedTraceparent(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	cases := []string{
		"",
		"garbage",
		"00-b9c7c989f97918e1-00f067aa0ba902b7-01",                 // short trace
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
	}
	for _, tp := range cases {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
		if tp != "" {
			req.Header.Set("traceparent", tp)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("traceparent %q: status %d, want 200", tp, resp.StatusCode)
		}
		got := resp.Header.Get("X-Trace-Id")
		if _, ok := obs.ParseTraceID(got); !ok {
			t.Errorf("traceparent %q: X-Trace-Id %q is not a fresh trace id", tp, got)
		}
		if tp != "" && strings.Contains(strings.ToLower(tp), got) {
			t.Errorf("traceparent %q: server adopted the malformed trace id %q", tp, got)
		}
	}
}

// TestTraceClientRetrySameTrace: every retry attempt of one logical ingest
// carries the same traceparent, so the server-side trace survives transient
// failures instead of fragmenting per attempt.
func TestTraceClientRetrySameTrace(t *testing.T) {
	s := New(0, 0)
	inner := Handler(s)
	var mu sync.Mutex
	var seen []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/ingest" {
			mu.Lock()
			seen = append(seen, r.Header.Get("traceparent"))
			n := len(seen)
			mu.Unlock()
			if n == 1 {
				http.Error(w, "unavailable", http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	cl := NewClient(ts.URL)
	cl.Retry = &RetryPolicy{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond}
	ct := obs.NewTracer(16)
	ct.SetRetention(0, 1)
	root := ct.StartTrace("client.ingest")
	ctx := obs.ContextWithSpan(context.Background(), root)
	if err := cl.IngestContext(ctx, Post{ID: 1, Time: 0, Text: "obama speaks"}); err != nil {
		t.Fatal(err)
	}
	root.End()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("ingest attempts = %d, want 2 (one failed, one retried)", len(seen))
	}
	if seen[0] == "" || seen[0] != seen[1] {
		t.Fatalf("traceparent differs across attempts: %q vs %q", seen[0], seen[1])
	}
	trace, _, ok := obs.ParseTraceparent(seen[0])
	if !ok || trace != root.TraceID() {
		t.Fatalf("attempt traceparent %q does not carry the client trace %s", seen[0], root.TraceID())
	}
}

// TestTraceSSEReconnectSameTrace: a dropped SSE connection reconnects under
// the same traceparent, and the resumed stream still annotates emissions
// with their originating ingest trace.
func TestTraceSSEReconnectSameTrace(t *testing.T) {
	s := New(0, 0)
	s.SetParallelism(1)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256)
	tracer.SetRetention(0, 1)
	reg.SetTracer(tracer)
	s.SetObs(reg)

	inner := Handler(s)
	var mu sync.Mutex
	var seen []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/stream") {
			mu.Lock()
			seen = append(seen, r.Header.Get("traceparent"))
			n := len(seen)
			mu.Unlock()
			if n == 1 {
				http.Error(w, "unavailable", http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	cl := NewClient(ts.URL)
	cl.Retry = &RetryPolicy{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond}
	id, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	ct := obs.NewTracer(16)
	ct.SetRetention(0, 1)
	ingest := ct.StartTrace("client.ingest")
	if err := cl.IngestContext(obs.ContextWithSpan(context.Background(), ingest), Post{ID: 1, Time: 0, Text: "obama speaks"}); err != nil {
		t.Fatal(err)
	}
	ingest.End()
	s.Flush()

	session := ct.StartTrace("client.stream")
	ctx := obs.ContextWithSpan(context.Background(), session)
	var emitted []obs.TraceID
	if err := cl.Stream(ctx, id, 0, func(ev StreamEvent) error {
		if ev.Emission != nil {
			emitted = append(emitted, ev.Trace)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	session.End()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("stream attempts = %d, want 2 (one dropped, one reconnect)", len(seen))
	}
	if seen[0] == "" || seen[0] != seen[1] {
		t.Fatalf("traceparent differs across reconnect: %q vs %q", seen[0], seen[1])
	}
	trace, _, ok := obs.ParseTraceparent(seen[1])
	if !ok || trace != session.TraceID() {
		t.Fatalf("reconnect traceparent %q does not carry the session trace %s", seen[1], session.TraceID())
	}
	if len(emitted) == 0 {
		t.Fatal("resumed stream delivered no emissions")
	}
	for _, tr := range emitted {
		if tr != ingest.TraceID() {
			t.Errorf("emission trace = %s, want the ingest trace %s", tr, ingest.TraceID())
		}
	}
}

// TestEmissionsByteIdenticalTracedVsUntraced: the trace sidecar never leaks
// into poll responses — the same workload against a traced and an untraced
// server yields byte-identical /emissions bodies.
func TestEmissionsByteIdenticalTracedVsUntraced(t *testing.T) {
	build := func(traced bool) *httptest.Server {
		s := New(0, 0)
		s.SetParallelism(1)
		if traced {
			reg := obs.NewRegistry()
			tracer := obs.NewTracer(256)
			tracer.SetRetention(0, 1)
			reg.SetTracer(tracer)
			s.SetObs(reg)
		}
		if _, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := s.Ingest(Post{ID: int64(i + 1), Time: float64(i * 10), Text: fmt.Sprintf("obama update %d", i)}); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(Handler(s))
		t.Cleanup(ts.Close)
		return ts
	}
	plain := getBody(t, build(false).URL+"/subscriptions/1/emissions?after=0")
	traced := getBody(t, build(true).URL+"/subscriptions/1/emissions?after=0")
	if plain != traced {
		t.Fatalf("emission bodies differ with tracing enabled:\nuntraced: %s\ntraced:   %s", plain, traced)
	}
	if !strings.Contains(plain, `"seq"`) {
		t.Fatalf("unexpected empty poll body: %s", plain)
	}
}

// TestGapCounterIncrements: every surface that reports a *GapError — plain
// poll and SSE — bumps mqdp_server_gaps_total.
func TestGapCounterIncrements(t *testing.T) {
	old := maxEmissionBuffer
	maxEmissionBuffer = 4
	defer func() { maxEmissionBuffer = old }()

	ts, s, _ := newTracedServer(t)
	cl := NewClient(ts.URL)
	id, err := cl.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := cl.Ingest(Post{ID: int64(i + 1), Time: float64(i * 10), Text: fmt.Sprintf("obama update %d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	// Plain poll from a stale cursor: gap headers, counter bumps once.
	resp, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions?after=0", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Gap-From") == "" || resp.Header.Get("X-First-Seq") == "" {
		t.Fatalf("stale poll did not report a gap (headers %v)", resp.Header)
	}
	if got := s.Metrics().Gaps; got != 1 {
		t.Fatalf("gaps after stale poll = %d, want 1", got)
	}

	// The typed client surfaces the same gap as *GapError.
	_, err = cl.Emissions(id, 0, 0)
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("client poll error = %v, want *GapError", err)
	}
	if got := s.Metrics().Gaps; got != 2 {
		t.Fatalf("gaps after client poll = %d, want 2", got)
	}

	// SSE from the same stale cursor: a gap event, counted once more.
	s.Flush()
	sawGap := false
	if err := cl.Stream(context.Background(), id, 0, func(ev StreamEvent) error {
		if ev.Gap != nil {
			sawGap = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawGap {
		t.Fatal("stream from stale cursor delivered no gap event")
	}
	if got := s.Metrics().Gaps; got != 3 {
		t.Fatalf("gaps after SSE = %d, want 3", got)
	}
}
