package server

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestMetricsJSONGolden locks the GET /metrics response byte-for-byte
// against testdata/metrics.golden: the obs-backed counters must keep the
// exact JSON shape the bespoke atomics produced. The workload is fully
// deterministic (serial fan-out, fixed posts, one exact duplicate).
// Regenerate intentionally with
//
//	go test ./internal/server -run TestMetricsJSONGolden -update
func TestMetricsJSONGolden(t *testing.T) {
	s := New(3, 16)
	s.SetParallelism(1)
	if _, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 60, Tau: 10, Algorithm: "streamscan+"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 30, Tau: 0, Algorithm: "instant"}); err != nil {
		t.Fatal(err)
	}
	posts := []Post{
		{ID: 1, Time: 0, Text: "obama speaks tonight"},
		{ID: 2, Time: 5, Text: "irrelevant chatter about lunch"},
		{ID: 3, Time: 20, Text: "senate votes on the bill"},
		{ID: 4, Time: 21, Text: "senate votes on the bill"},
		{ID: 5, Time: 30, Text: "obama responds to the senate"},
		{ID: 6, Time: 200, Text: "president heads to camp david"},
	}
	for _, p := range posts {
		if err := s.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("GET /metrics drifted from %s.\n--- got ---\n%s\n--- want ---\n%s", path, body, want)
	}
}
