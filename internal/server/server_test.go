package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mqdp/internal/match"
)

func politicsTopics() []match.Topic {
	return []match.Topic{
		{Name: "obama", Keywords: []match.Keyword{{Text: "obama", Weight: 1}, {Text: "president", Weight: 0.5}}},
		{Name: "senate", Keywords: []match.Keyword{{Text: "senate", Weight: 1}, {Text: "congress", Weight: 0.5}}},
	}
}

func TestSubscribeIngestEmissions(t *testing.T) {
	s := New(0, 0)
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 60, Tau: 10})
	if err != nil {
		t.Fatal(err)
	}
	posts := []Post{
		{ID: 1, Time: 0, Text: "obama speaks tonight"},
		{ID: 2, Time: 5, Text: "irrelevant chatter about lunch"},
		{ID: 3, Time: 20, Text: "senate votes on the bill"},
		{ID: 4, Time: 30, Text: "obama responds to the senate"},
		{ID: 5, Time: 200, Text: "president heads to camp david"},
	}
	for _, p := range posts {
		if err := s.Ingest(p); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	es, err := s.Emissions(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) == 0 {
		t.Fatal("no emissions")
	}
	// Every emission carries the original text and topic names, and seqs
	// increase.
	seen := map[int64]bool{}
	for i, e := range es {
		if e.Seq != int64(i+1) {
			t.Errorf("emission %d has seq %d", i, e.Seq)
		}
		if e.Text == "" || len(e.Topics) == 0 {
			t.Errorf("emission %+v missing text/topics", e)
		}
		if seen[e.PostID] {
			t.Errorf("post %d emitted twice", e.PostID)
		}
		seen[e.PostID] = true
		if d := e.EmitAt - e.Time; d < 0 || d > 10+1e-9 {
			t.Errorf("emission delay %v outside τ", d)
		}
	}
	// Post 5 is >λ from everything earlier and must appear.
	if !seen[5] {
		t.Error("isolated post 5 missing from emissions")
	}
	// The irrelevant post never matches.
	if seen[2] {
		t.Error("non-matching post emitted")
	}
	// Cursor-based fetch.
	tail, err := s.Emissions(id, es[0].Seq, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(es)-1 {
		t.Errorf("after-cursor fetch returned %d, want %d", len(tail), len(es)-1)
	}
	limited, err := s.Emissions(id, 0, 1)
	if err != nil || len(limited) != 1 {
		t.Errorf("limit fetch = %v, %v", limited, err)
	}
}

func TestPerSubscriptionIsolation(t *testing.T) {
	s := New(0, 0)
	obamaID, err := s.Subscribe(SubscriptionConfig{
		Topics: politicsTopics()[:1], Lambda: 1000, Tau: 0, Algorithm: "instant",
	})
	if err != nil {
		t.Fatal(err)
	}
	senateID, err := s.Subscribe(SubscriptionConfig{
		Topics: politicsTopics()[1:], Lambda: 1000, Tau: 0, Algorithm: "instant",
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Ingest(Post{ID: 1, Time: 0, Text: "obama press conference"})
	_ = s.Ingest(Post{ID: 2, Time: 1, Text: "senate hearing today"})
	s.Flush()
	obamaEs, _ := s.Emissions(obamaID, 0, 0)
	senateEs, _ := s.Emissions(senateID, 0, 0)
	if len(obamaEs) != 1 || obamaEs[0].PostID != 1 {
		t.Errorf("obama subscription got %+v", obamaEs)
	}
	if len(senateEs) != 1 || senateEs[0].PostID != 2 {
		t.Errorf("senate subscription got %+v", senateEs)
	}
}

func TestDeduplicationBeforeMatching(t *testing.T) {
	s := New(0, 128) // exact-duplicate filtering
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Ingest(Post{ID: 1, Time: 0, Text: "obama wins again"})
	_ = s.Ingest(Post{ID: 2, Time: 1, Text: "obama wins again"}) // dropped
	s.Flush()
	st := s.Stats()
	if st.Ingested != 2 || st.DroppedDups != 1 {
		t.Errorf("stats = %+v", st)
	}
	es, _ := s.Emissions(id, 0, 0)
	if len(es) != 1 {
		t.Errorf("emissions = %d, want 1 (duplicate dropped before matching)", len(es))
	}
}

func TestIngestOrderEnforced(t *testing.T) {
	s := New(0, 0)
	_ = s.Ingest(Post{ID: 1, Time: 10, Text: "x"})
	if err := s.Ingest(Post{ID: 2, Time: 5, Text: "y"}); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("out-of-order ingest error = %v", err)
	}
}

func TestSubscribeValidation(t *testing.T) {
	s := New(0, 0)
	if _, err := s.Subscribe(SubscriptionConfig{}); err == nil {
		t.Error("subscription without topics accepted")
	}
	if _, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: -1}); err == nil {
		t.Error("negative lambda accepted")
	}
	if err := s.Unsubscribe(99); !errors.Is(err, ErrNoSuchSubscription) {
		t.Errorf("unsubscribe missing = %v", err)
	}
	if _, err := s.Emissions(99, 0, 0); !errors.Is(err, ErrNoSuchSubscription) {
		t.Errorf("emissions missing = %v", err)
	}
	if _, err := s.SubscriptionStats(99); !errors.Is(err, ErrNoSuchSubscription) {
		t.Errorf("stats missing = %v", err)
	}
}

func TestConcurrentReadsDuringIngest(t *testing.T) {
	s := New(0, 0)
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 30, Tau: 5})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = s.Ingest(Post{ID: int64(i), Time: float64(i), Text: fmt.Sprintf("obama item %d", i)})
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				_, _ = s.Emissions(id, 0, 10)
				_ = s.Stats()
				_, _ = s.SubscriptionStats(id)
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Ingested != 2000 {
		t.Errorf("ingested = %d", st.Ingested)
	}
}

// --- HTTP layer ---

func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	core := New(0, 0)
	ts := httptest.NewServer(Handler(core))
	t.Cleanup(ts.Close)
	return ts, core
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	// Subscribe.
	resp := postJSON(t, ts.URL+"/subscriptions", SubscriptionConfig{
		Topics: politicsTopics(), Lambda: 60, Tau: 0, Algorithm: "instant",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	var created map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := created["id"]

	// Ingest a batch.
	resp = postJSON(t, ts.URL+"/ingest", []Post{
		{ID: 1, Time: 0, Text: "obama statement"},
		{ID: 2, Time: 100, Text: "senate debate"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Single-object ingest.
	resp = postJSON(t, ts.URL+"/ingest", Post{ID: 3, Time: 200, Text: "president tours midwest"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Emissions.
	resp, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions?after=0", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	var es []Emission
	if err := json.NewDecoder(resp.Body).Decode(&es); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(es) != 3 {
		t.Fatalf("emissions = %d, want 3 (instant, all novel)", len(es))
	}

	// Per-subscription stats.
	resp, err = http.Get(fmt.Sprintf("%s/subscriptions/%d/stats", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	var st SubscriptionStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Matched != 3 || st.Emitted != 3 {
		t.Errorf("sub stats = %+v", st)
	}

	// Service stats.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Ingested != 3 || stats.Subscriptions != 1 {
		t.Errorf("stats = %+v", stats)
	}

	// Unsubscribe.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/subscriptions/%d", ts.URL, id), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("unsubscribe status %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path string
		body         string
		wantStatus   int
	}{
		{"GET", "/subscriptions", "", http.StatusMethodNotAllowed},
		{"POST", "/subscriptions", "{not json", http.StatusBadRequest},
		{"POST", "/subscriptions", `{"topics":[]}`, http.StatusBadRequest},
		{"GET", "/subscriptions/abc/emissions", "", http.StatusBadRequest},
		{"GET", "/subscriptions/42/emissions", "", http.StatusNotFound},
		{"GET", "/subscriptions/42/stats", "", http.StatusNotFound},
		{"DELETE", "/subscriptions/42", "", http.StatusNotFound},
		{"POST", "/ingest", "{not json", http.StatusBadRequest},
		{"GET", "/ingest", "", http.StatusMethodNotAllowed},
		{"GET", "/flush", "", http.StatusMethodNotAllowed},
		{"POST", "/stats", "", http.StatusMethodNotAllowed},
		{"GET", "/subscriptions/1/unknown", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s → %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
	// Out-of-order ingest maps to 409.
	_ = postJSON(t, ts.URL+"/ingest", Post{ID: 1, Time: 100, Text: "x"})
	resp := postJSON(t, ts.URL+"/ingest", Post{ID: 2, Time: 50, Text: "y"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("out-of-order ingest status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPFlush(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/subscriptions", SubscriptionConfig{
		Topics: politicsTopics(), Lambda: 1000, Tau: 1000,
	})
	var created map[string]int64
	_ = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	id := created["id"]
	resp = postJSON(t, ts.URL+"/ingest", Post{ID: 1, Time: 0, Text: "obama speech"})
	resp.Body.Close()
	// Nothing emitted yet: big τ holds the decision.
	resp, _ = http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions", ts.URL, id))
	var es []Emission
	_ = json.NewDecoder(resp.Body).Decode(&es)
	resp.Body.Close()
	if len(es) != 0 {
		t.Fatalf("premature emissions: %+v", es)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/flush", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, _ = http.Get(fmt.Sprintf("%s/subscriptions/%d/emissions", ts.URL, id))
	_ = json.NewDecoder(resp.Body).Decode(&es)
	resp.Body.Close()
	if len(es) != 1 {
		t.Errorf("post-flush emissions = %d, want 1", len(es))
	}
}

// newRand is a test/bench helper mirroring the experiments package.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestDigestEndpoint(t *testing.T) {
	ts, core := newTestServer(t)
	id, err := core.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 60, Tau: 0, Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	_ = core.Ingest(Post{ID: 1, Time: 0, Text: "obama statement on budget"})
	_ = core.Ingest(Post{ID: 2, Time: 3700, Text: "senate session opens"})

	resp, err := http.Get(fmt.Sprintf("%s/subscriptions/%d/digest", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "obama statement") || !strings.Contains(text, "01:01:40") {
		t.Errorf("text digest missing content:\n%s", text)
	}
	resp, err = http.Get(fmt.Sprintf("%s/subscriptions/%d/digest?format=md", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(body), "| when | topics | post |") {
		t.Errorf("markdown digest malformed:\n%s", body)
	}
	resp, err = http.Get(ts.URL + "/subscriptions/99/digest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing-subscription digest status %d", resp.StatusCode)
	}
}

func TestServerDigestMethod(t *testing.T) {
	s := New(0, 0)
	id, err := s.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 10, Tau: 0, Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Ingest(Post{ID: 1, Time: 0, Text: "obama and senate together"})
	d, err := s.Digest(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) != 1 || d.TopicCounts["obama"] != 1 || d.TopicCounts["senate"] != 1 {
		t.Errorf("digest = %+v", d)
	}
}
