package server

import (
	"context"
	"sync"
)

// Push delivery. Each subscription carries a tiny broadcast hub: a single
// channel that change sources (deliver, top-k slides, quarantine, flush,
// unsubscribe) close under sub.mu and waiters park on. Idle subscribers
// therefore cost one parked goroutine and zero CPU — no busy polling — and
// a wake is one channel close regardless of waiter count. The channel is
// lazily (re)created by the next waiter, so subscriptions nobody streams
// never allocate one.

// notifyLocked wakes every parked waiter. Caller holds sub.mu.
func (sub *subscription) notifyLocked() {
	if sub.wait != nil {
		close(sub.wait)
		sub.wait = nil
	}
}

// waitChLocked returns the channel the next change will close. Caller
// holds sub.mu and must re-check state after waking: a close means "look
// again", not "data for you".
func (sub *subscription) waitChLocked() chan struct{} {
	if sub.wait == nil {
		sub.wait = make(chan struct{})
	}
	return sub.wait
}

// terminateLocked latches the subscription's terminal state (first reason
// wins) and wakes every waiter. Caller holds sub.mu.
func (sub *subscription) terminateLocked(reason string) {
	if sub.done {
		return
	}
	sub.done = true
	sub.doneReason = reason
	sub.notifyLocked()
}

// WaitEmissions is Emissions that blocks while there is nothing new: the
// caller parks on the subscription's hub until an emission with Seq >
// after lands (returned like Emissions), the cursor turns out to be stale
// (retained tail plus *GapError), the subscription terminates
// (*StreamEndError: flushed, unsubscribed or quarantined — pending
// emissions are always drained first), or ctx ends (ctx.Err()).
func (s *Server) WaitEmissions(ctx context.Context, id, after int64, limit int) ([]Emission, error) {
	sub, ok := s.lookup(id)
	if !ok {
		return nil, ErrNoSuchSubscription
	}
	for {
		sub.mu.Lock()
		tail, _, gap := sub.pollLocked(after, limit)
		if len(tail) > 0 || gap != nil {
			sub.mu.Unlock()
			if gap != nil {
				return tail, gap
			}
			return tail, nil
		}
		if sub.done {
			reason := sub.doneReason
			sub.mu.Unlock()
			return nil, &StreamEndError{Reason: reason}
		}
		ch := sub.waitChLocked()
		sub.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TopKSnapshot is the continuously maintained diversified top-k view of
// one subscription: the visible items in rank order (coverage desc, value
// desc, seq asc) plus the view's change version, which bumps exactly when
// the visible items change.
type TopKSnapshot struct {
	Version uint64     `json:"version"`
	K       int        `json:"k"`
	Items   []Emission `json:"items"`
}

// TopK returns the subscription's current diversified top-k view.
func (s *Server) TopK(id int64) (TopKSnapshot, error) {
	sub, ok := s.lookup(id)
	if !ok {
		return TopKSnapshot{}, ErrNoSuchSubscription
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.topkSnapshotLocked(), nil
}

// topkSnapshotLocked copies the visible view. Caller holds sub.mu.
func (sub *subscription) topkSnapshotLocked() TopKSnapshot {
	items := sub.topk.Items()
	snap := TopKSnapshot{
		Version: sub.topk.Version(),
		K:       sub.topk.K(),
		Items:   make([]Emission, len(items)),
	}
	for i, it := range items {
		snap.Items[i] = it.Payload
	}
	return snap
}

// SetPush enables or disables SSE push delivery (enabled by default).
// While disabled, GET /subscriptions/{id}/stream answers 501 Not
// Implemented — the signal the Client uses to fall back to polling. The
// wait= long-poll stays available either way: it is the fallback path,
// and it still respects the stream cap.
func (s *Server) SetPush(enabled bool) { s.pushDisabled.Store(!enabled) }

// PushEnabled reports whether the push surface is served.
func (s *Server) PushEnabled() bool { return !s.pushDisabled.Load() }

// SetMaxStreams caps concurrently served push waiters — SSE streams plus
// blocked long-polls; 0 (the default) means unlimited. Beyond the cap new
// streams are refused with 503 + Retry-After rather than queued, so a
// stampede degrades to polling instead of piling up goroutines.
func (s *Server) SetMaxStreams(n int) { s.maxStreams.Store(int64(n)) }

// ActiveStreams reports the currently served push waiters.
func (s *Server) ActiveStreams() int64 { return s.streams.Load() }

// acquireStream claims a push-waiter slot; release is idempotent.
func (s *Server) acquireStream() (release func(), ok bool) {
	max := s.maxStreams.Load()
	if n := s.streams.Add(1); max > 0 && n > max {
		s.streams.Add(-1)
		return nil, false
	}
	if o := s.obsState.Load(); o != nil {
		o.activeStreams.Set(float64(s.streams.Load()))
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			s.streams.Add(-1)
			if o := s.obsState.Load(); o != nil {
				o.activeStreams.Set(float64(s.streams.Load()))
			}
		})
	}, true
}
