package server

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"mqdp/internal/core"
	"mqdp/internal/index"
	"mqdp/internal/obs"
	"mqdp/internal/stream"
)

// sampleLine matches one exposition sample: a metric name, an optional
// {le="..."} label set, a float value, and an optional OpenMetrics-style
// exemplar (` # {trace_id="..."} <value>`) on +Inf bucket lines.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [-+0-9.eE]+(Inf)?( # \{trace_id="[0-9a-f]{32}"\} [-+0-9.eE]+(Inf)?)?$`)

// TestPrometheusEndpointE2E wires one registry through every instrumented
// layer, drives a workload over HTTP, and asserts GET /metrics/prometheus
// emits a parseable exposition covering core, stream, index and server
// instruments of all three kinds.
func TestPrometheusEndpointE2E(t *testing.T) {
	reg := obs.NewRegistry()
	core.SetObs(reg)
	stream.SetObs(reg)
	index.SetObs(reg)
	defer func() {
		core.SetObs(nil)
		stream.SetObs(nil)
		index.SetObs(nil)
	}()

	s := New(0, 0)
	s.SetParallelism(1)
	s.SetObs(reg)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	post := func(path, body string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s = %d", path, resp.StatusCode)
		}
	}
	post("/subscriptions", `{"topics":[{"Name":"obama","Keywords":[{"Text":"obama","Weight":1}]}],"lambda":30,"tau":5}`)
	post("/ingest", `[{"id":1,"time":0,"text":"obama speaks"},{"id":2,"time":50,"text":"obama again"}]`)
	post("/flush", ``)

	// The server itself does not drive the inverted index or the batch
	// solvers; touch both directly so their instruments carry observations.
	ix := index.New()
	if err := ix.Add(index.Doc{ID: 1, Time: 0, Text: "obama speaks tonight"}); err != nil {
		t.Fatal(err)
	}
	ix.TermQuery("obama", 0, 10)
	in, err := core.NewInstance([]core.Post{
		{ID: 1, Value: 0, Labels: []core.Label{0}},
		{ID: 2, Value: 10, Labels: []core.Label{0}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	in.ScanParallel(core.FixedLambda(5), 1)

	resp, err := http.Get(srv.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics/prometheus = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}

	types := map[string]string{} // metric name → TYPE
	samples := map[string]bool{} // sample names seen (with _bucket/_sum/_count suffixes)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("unparseable sample line %q", line)
		}
		samples[line[:strings.IndexAny(line, "{ ")]] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Every layer contributes, and all three instrument kinds appear.
	wantTyped := map[string]string{
		"mqdp_core_scan_sweep_seconds":       "histogram",
		"mqdp_core_posts_scanned_total":      "counter",
		"mqdp_stream_decision_delay_seconds": "histogram",
		"mqdp_index_append_seconds":          "histogram",
		"mqdp_index_segments":                "gauge",
		"mqdp_server_ingested_total":         "counter",
		"mqdp_server_subscriptions":          "gauge",
		"mqdp_server_match_seconds":          "histogram",
	}
	for name, kind := range wantTyped {
		if got := types[name]; got != kind {
			t.Errorf("metric %s: TYPE = %q, want %q", name, got, kind)
		}
	}
	for _, name := range []string{
		"mqdp_server_ingested_total",
		"mqdp_server_match_seconds_bucket",
		"mqdp_server_match_seconds_sum",
		"mqdp_server_match_seconds_count",
		"mqdp_stream_decision_delay_seconds_count",
		"mqdp_index_append_seconds_count",
		"mqdp_core_scan_sweep_seconds_count",
	} {
		if !samples[name] {
			t.Errorf("missing sample %s", name)
		}
	}
}
