package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a typed HTTP client for a running mqdp-server.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError is a non-2xx response.
type apiError struct {
	Status int
	Body   string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: status %d: %s", e.Status, strings.TrimSpace(e.Body))
}

// StatusCode extracts the HTTP status from a client error, or 0.
func StatusCode(err error) int {
	var ae *apiError
	if ok := asAPIError(err, &ae); ok {
		return ae.Status
	}
	return 0
}

func asAPIError(err error, target **apiError) bool {
	for err != nil {
		if ae, ok := err.(*apiError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// do runs one request and decodes a JSON response into out (out may be nil).
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &apiError{Status: resp.StatusCode, Body: string(msg)}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Subscribe registers a profile and returns its id.
func (c *Client) Subscribe(cfg SubscriptionConfig) (int64, error) {
	var created map[string]int64
	if err := c.do(http.MethodPost, "/subscriptions", cfg, &created); err != nil {
		return 0, err
	}
	return created["id"], nil
}

// Unsubscribe removes a profile.
func (c *Client) Unsubscribe(id int64) error {
	return c.do(http.MethodDelete, fmt.Sprintf("/subscriptions/%d", id), nil, nil)
}

// Ingest feeds a batch of posts in time order.
func (c *Client) Ingest(posts ...Post) error {
	_, err := c.IngestAccepted(posts...)
	return err
}

// IngestAccepted feeds a batch of posts in time order and returns how many
// were accepted. On a mid-batch failure the server has already ingested
// the first accepted posts; resume the batch at posts[accepted] after
// fixing the failing item — do not resend the whole batch.
func (c *Client) IngestAccepted(posts ...Post) (accepted int, err error) {
	var res IngestResult
	err = c.do(http.MethodPost, "/ingest", posts, &res)
	if err != nil {
		// A non-2xx body still carries the accepted prefix count.
		var ae *apiError
		if asAPIError(err, &ae) {
			var partial IngestResult
			if jsonErr := json.Unmarshal([]byte(ae.Body), &partial); jsonErr == nil {
				return partial.Accepted, err
			}
		}
		return 0, err
	}
	return res.Accepted, nil
}

// Emissions fetches a profile's emissions with Seq > after (limit ≤ 0 means
// all).
func (c *Client) Emissions(id, after int64, limit int) ([]Emission, error) {
	path := fmt.Sprintf("/subscriptions/%d/emissions?after=%d", id, after)
	if limit > 0 {
		path += fmt.Sprintf("&limit=%d", limit)
	}
	var out []Emission
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Flush forces every pending decision out.
func (c *Client) Flush() error {
	return c.do(http.MethodPost, "/flush", struct{}{}, nil)
}

// Stats fetches service counters.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.do(http.MethodGet, "/stats", nil, &st)
	return st, err
}

// SubscriptionStats fetches one profile's counters.
func (c *Client) SubscriptionStats(id int64) (SubscriptionStats, error) {
	var st SubscriptionStats
	err := c.do(http.MethodGet, fmt.Sprintf("/subscriptions/%d/stats", id), nil, &st)
	return st, err
}

// Metrics fetches the full observability snapshot (service counters plus
// every profile's stats and delay summary).
func (c *Client) Metrics() (Metrics, error) {
	var m Metrics
	err := c.do(http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Health fetches the liveness snapshot.
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.do(http.MethodGet, "/healthz", nil, &h)
	return h, err
}
