package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mqdp/internal/obs"
	"mqdp/internal/resilience"
	"mqdp/internal/wire"
)

// defaultHTTPClient backs clients whose HTTPClient is nil. Unlike
// http.DefaultClient it carries a timeout, so a wedged server (or a
// blackholed network) fails the call instead of hanging it forever.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// clientSeq distinguishes idempotency-key namespaces between clients in
// the same process.
var clientSeq atomic.Int64

// Client is a typed HTTP client for a running mqdp-server. The zero
// value (plus BaseURL) works; Retry opts into fault tolerance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a shared client with a 30s timeout.
	HTTPClient *http.Client
	// Retry, when non-nil, makes calls fault tolerant: idempotent
	// requests are retried with decorrelated-jitter backoff, Retry-After
	// headers are honored, ingest batches resume exactly-once via
	// idempotency keys, and an optional circuit breaker fails fast
	// after consecutive failures.
	Retry *RetryPolicy
	// DisableBinaryWire forces JSON bodies everywhere. By default the
	// client prefers the binary frame format (Content-Type on ingest,
	// Accept on polls) and falls back to JSON permanently after the
	// first 415 from a server that doesn't speak it.
	DisableBinaryWire bool

	// binaryUnsupported latches after a 415: the server doesn't (or no
	// longer) accepts frames, so all later calls go straight to JSON.
	binaryUnsupported atomic.Bool

	// Retry-decision observability; registered by SetObs, readable
	// anytime via RetryStats.
	retries      obs.Counter // attempts beyond the first
	shedSeen     obs.Counter // 429 responses observed
	breakerOpens obs.Counter // closed/half-open → open transitions

	breakerOnce sync.Once
	breaker     *resilience.Breaker

	prefixOnce sync.Once
	prefix     string       // idempotency-key namespace
	calls      atomic.Int64 // per-client logical ingest call counter
}

// RetryPolicy configures Client retries. The zero value of each field
// selects a sane default, so &RetryPolicy{} is a working policy.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per logical call (≤ 0 means 4).
	MaxAttempts int
	// BackoffBase and BackoffCap parameterize the decorrelated-jitter
	// delays between attempts (defaults 25ms and 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed makes the jitter deterministic for reproducible chaos tests.
	Seed int64
	// BreakerThreshold consecutive failed attempts open the circuit
	// breaker; 0 disables it. While open, calls fail fast wrapping
	// resilience.ErrBreakerOpen until BreakerCooldown (default 1s)
	// admits a probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (p *RetryPolicy) maxAttempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) backoff(seed int64) *resilience.Backoff {
	base, cap := 25*time.Millisecond, time.Second
	if p != nil {
		if p.BackoffBase > 0 {
			base = p.BackoffBase
		}
		if p.BackoffCap > 0 {
			cap = p.BackoffCap
		}
	}
	return resilience.NewBackoff(base, cap, seed)
}

// NewClient returns a client for baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// SetObs registers the client's retry-decision counters (retries taken,
// 429 sheds observed, breaker-open transitions) in r, so client-side
// fault handling shows up in the same exposition as the server's.
func (c *Client) SetObs(r *obs.Registry) {
	r.RegisterCounter("mqdp_client_retries_total", "request attempts beyond the first", &c.retries)
	r.RegisterCounter("mqdp_client_shed_responses_total", "429 responses observed (server shed admission)", &c.shedSeen)
	r.RegisterCounter("mqdp_client_breaker_open_total", "circuit-breaker open transitions", &c.breakerOpens)
}

// RetryStats is a snapshot of the client's fault-handling counters.
type RetryStats struct {
	Retries       int64 // attempts beyond the first
	ShedResponses int64 // 429s observed
	BreakerOpens  int64 // transitions to the open state
}

// RetryStats reports the client's fault-handling counters.
func (c *Client) RetryStats() RetryStats {
	return RetryStats{
		Retries:       c.retries.Value(),
		ShedResponses: c.shedSeen.Value(),
		BreakerOpens:  c.breakerOpens.Value(),
	}
}

// breakerFor lazily builds the client's shared breaker from the policy;
// nil when the policy doesn't ask for one.
func (c *Client) breakerFor(p *RetryPolicy) *resilience.Breaker {
	if p == nil || p.BreakerThreshold <= 0 {
		return nil
	}
	c.breakerOnce.Do(func() {
		c.breaker = resilience.NewBreaker(p.BreakerThreshold, p.BreakerCooldown)
		c.breaker.OnTransition = func(from, to resilience.BreakerState) {
			if to == resilience.BreakerOpen {
				c.breakerOpens.Inc()
			}
		}
	})
	return c.breaker
}

// idemPrefix lazily derives this client's idempotency-key namespace.
// Keys need only be unique per logical call, not deterministic.
func (c *Client) idemPrefix() string {
	c.prefixOnce.Do(func() {
		c.prefix = fmt.Sprintf("c%x-%d", rand.Int63(), clientSeq.Add(1))
	})
	return c.prefix
}

// APIError is a non-2xx server response. Calls wrap it with the method
// and path, so callers match with errors.As:
//
//	var ae *server.APIError
//	if errors.As(err, &ae) && ae.Status == http.StatusConflict { ... }
type APIError struct {
	Status int
	Body   string

	retryAfter    time.Duration
	hasRetryAfter bool
	streamEnd     string // X-Stream-End reason on a 409 from an ended stream
}

func (e *APIError) Error() string {
	return fmt.Sprintf("status %d: %s", e.Status, strings.TrimSpace(e.Body))
}

// RetryAfter reports the parsed Retry-After header, if the response
// carried one in delay-seconds form.
func (e *APIError) RetryAfter() (time.Duration, bool) {
	return e.retryAfter, e.hasRetryAfter
}

// StatusCode extracts the HTTP status from a client error, or 0.
func StatusCode(err error) int {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// useBinary reports whether this call should attempt the binary frame
// format.
func (c *Client) useBinary() bool {
	return !c.DisableBinaryWire && !c.binaryUnsupported.Load()
}

// do runs one request with no retries (context.Background, legacy shape).
func (c *Client) do(method, path string, body, out any) error {
	return c.doCtx(context.Background(), method, path, body, out, "")
}

// doCtx runs exactly one JSON attempt: marshal, send, decode.
func (c *Client) doCtx(ctx context.Context, method, path string, body, out any, idemKey string) error {
	var buf []byte
	contentType := ""
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
		contentType = wire.ContentTypeJSON
	}
	return c.doHTTP(ctx, method, path, buf, contentType, "", idemKey, jsonSink(out))
}

// jsonSink decodes a 2xx response body as JSON into out (nil skips it).
func jsonSink(out any) func(*http.Response) error {
	if out == nil {
		return nil
	}
	return func(resp *http.Response) error {
		return json.NewDecoder(resp.Body).Decode(out)
	}
}

// doHTTP runs exactly one attempt: send a preencoded body, map non-2xx to
// *APIError wrapped with "method path" context (transport failures are
// wrapped the same way so every error identifies the call that failed),
// and hand 2xx responses to sink.
func (c *Client) doHTTP(ctx context.Context, method, path string, body []byte, contentType, accept, idemKey string, sink func(*http.Response) error) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	// Propagate the caller's trace, W3C trace-context style. doHTTP is the
	// single exit point for every request — including each attempt of a
	// retried call — so one logical operation keeps one trace ID end to end.
	if span := obs.FromContext(ctx); span != nil {
		req.Header.Set("traceparent", span.Traceparent())
	}
	opPath, _, _ := strings.Cut(path, "?")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("server: %s %s: %w", method, opPath, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		ae := &APIError{Status: resp.StatusCode, Body: string(msg)}
		ae.streamEnd = resp.Header.Get("X-Stream-End")
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
				ae.retryAfter = time.Duration(secs) * time.Second
				ae.hasRetryAfter = true
			}
		}
		if ae.Status == http.StatusTooManyRequests {
			c.shedSeen.Inc()
		}
		return fmt.Errorf("server: %s %s: %w", method, opPath, ae)
	}
	if sink == nil {
		return nil
	}
	return sink(resp)
}

// serverFault classifies an error for the breaker: service-health
// failures (transport errors, 429, 5xx) count; caller mistakes (other
// 4xx) do not.
func serverFault(err error) bool {
	if err == nil {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	return true // transport-level failure
}

// retryable classifies an error for the retry loop. A 429 shed means
// the server did not process the request, so any call may retry it.
// Ambiguous outcomes — transport errors and retryable 5xx — are only
// retried for idempotent calls.
func retryable(idempotent bool, err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests:
			return true
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return idempotent
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return idempotent
}

// retrySleep waits between attempts: an explicit Retry-After wins over
// the jittered backoff.
func retrySleep(ctx context.Context, err error, bo *resilience.Backoff) error {
	var ae *APIError
	if errors.As(err, &ae) {
		if ra, ok := ae.RetryAfter(); ok {
			return resilience.Sleep(ctx, ra)
		}
	}
	return resilience.Sleep(ctx, bo.Next())
}

// call drives one logical JSON request through the retry policy.
// idempotent marks calls safe to repeat after an ambiguous failure.
func (c *Client) call(ctx context.Context, method, path string, body, out any, idempotent bool) error {
	return c.callAttempt(ctx, method, path, idempotent, func(ctx context.Context) error {
		return c.doCtx(ctx, method, path, body, out, "")
	})
}

// callAttempt drives one logical request (whatever its encoding) through
// the retry policy.
func (c *Client) callAttempt(ctx context.Context, method, path string, idempotent bool, attempt func(context.Context) error) error {
	rp := c.Retry
	if rp == nil {
		return attempt(ctx)
	}
	br := c.breakerFor(rp)
	bo := rp.backoff(rp.Seed + c.calls.Add(1))
	var err error
	for try := 1; ; try++ {
		if br != nil && !br.Allow() {
			opPath, _, _ := strings.Cut(path, "?")
			return fmt.Errorf("server: %s %s: %w", method, opPath, resilience.ErrBreakerOpen)
		}
		err = attempt(ctx)
		if br != nil {
			br.Record(!serverFault(err))
		}
		if err == nil {
			return nil
		}
		if !retryable(idempotent, err) || try >= rp.maxAttempts() || ctx.Err() != nil {
			return err
		}
		c.retries.Inc()
		if serr := retrySleep(ctx, err, bo); serr != nil {
			return serr
		}
	}
}

// Subscribe registers a profile and returns its id.
func (c *Client) Subscribe(cfg SubscriptionConfig) (int64, error) {
	return c.SubscribeContext(context.Background(), cfg)
}

// SubscribeContext is Subscribe honoring ctx. Subscribing is not
// idempotent, so only sheds (429, provably unprocessed) are retried.
func (c *Client) SubscribeContext(ctx context.Context, cfg SubscriptionConfig) (int64, error) {
	var created map[string]int64
	if err := c.call(ctx, http.MethodPost, "/subscriptions", cfg, &created, false); err != nil {
		return 0, err
	}
	return created["id"], nil
}

// Unsubscribe removes a profile.
func (c *Client) Unsubscribe(id int64) error {
	return c.UnsubscribeContext(context.Background(), id)
}

// UnsubscribeContext is Unsubscribe honoring ctx.
func (c *Client) UnsubscribeContext(ctx context.Context, id int64) error {
	return c.call(ctx, http.MethodDelete, fmt.Sprintf("/subscriptions/%d", id), nil, nil, true)
}

// Ingest feeds a batch of posts in time order.
func (c *Client) Ingest(posts ...Post) error {
	_, err := c.IngestAccepted(posts...)
	return err
}

// IngestContext is Ingest honoring ctx.
func (c *Client) IngestContext(ctx context.Context, posts ...Post) error {
	_, err := c.IngestAcceptedContext(ctx, posts...)
	return err
}

// IngestAccepted feeds a batch of posts in time order and returns how
// many were accepted. On a mid-batch failure the server has already
// ingested the first accepted posts; resume the batch at posts[accepted]
// after fixing the failing item — do not resend the whole batch.
//
// With a RetryPolicy the resume is automatic and exactly-once: each
// attempt carries an idempotency key, so a retry whose predecessor's
// response was lost replays the recorded outcome instead of re-applying
// the batch, and a batch cut by the server's ingest deadline resumes at
// the accepted offset.
func (c *Client) IngestAccepted(posts ...Post) (accepted int, err error) {
	return c.IngestAcceptedContext(context.Background(), posts...)
}

// IngestAcceptedContext is IngestAccepted honoring ctx.
func (c *Client) IngestAcceptedContext(ctx context.Context, posts ...Post) (accepted int, err error) {
	rp := c.Retry
	if rp == nil {
		res, _, err := c.doIngest(ctx, posts, "")
		if err != nil {
			return res.Accepted, err
		}
		return res.Accepted, nil
	}
	br := c.breakerFor(rp)
	callID := c.calls.Add(1)
	bo := rp.backoff(rp.Seed + callID)
	sent := 0  // posts known applied by the server
	epoch := 0 // bumps whenever a genuine server outcome lands
	for attempt := 1; ; attempt++ {
		if br != nil && !br.Allow() {
			return sent, fmt.Errorf("server: POST /ingest: %w", resilience.ErrBreakerOpen)
		}
		// The key is stable across retries of the same logical suffix:
		// if the previous attempt's response was lost after the server
		// applied it, the replay returns that outcome instead of
		// double-ingesting. Any received outcome advances the epoch, so
		// a later resume is a fresh operation with a fresh key.
		key := fmt.Sprintf("%s-%d-%d", c.idemPrefix(), callID, epoch)
		res, got, err := c.doIngest(ctx, posts[sent:], key)
		if br != nil {
			br.Record(!serverFault(err))
		}
		if err == nil {
			return sent + res.Accepted, nil
		}
		if got {
			sent += res.Accepted
			epoch++
		}
		if !retryable(true, err) || attempt >= rp.maxAttempts() || ctx.Err() != nil {
			return sent, err
		}
		c.retries.Inc()
		if serr := retrySleep(ctx, err, bo); serr != nil {
			return sent, serr
		}
	}
}

// doIngest runs one POST /ingest attempt, preferring the binary frame
// format and falling back (permanently) to JSON when the server answers
// 415. got reports whether a genuine server outcome (an IngestResult,
// success or error) was received — the signal that distinguishes "the
// server decided" from "we cannot know". A 415 never applies the batch,
// so the JSON resend inside the same attempt stays exactly-once.
func (c *Client) doIngest(ctx context.Context, posts []Post, key string) (res IngestResult, got bool, err error) {
	if c.useBinary() {
		res, got, err = c.doIngestOnce(ctx, posts, key, true)
		if StatusCode(err) != http.StatusUnsupportedMediaType {
			return res, got, err
		}
		c.binaryUnsupported.Store(true)
	}
	return c.doIngestOnce(ctx, posts, key, false)
}

func (c *Client) doIngestOnce(ctx context.Context, posts []Post, key string, binary bool) (res IngestResult, got bool, err error) {
	if binary {
		enc := wire.GetEncoder()
		sb := wire.GetStreamBatch()
		for _, p := range posts {
			sb.Posts = append(sb.Posts, wire.StreamPost(p))
		}
		frame := enc.EncodeStreamPosts(sb.Posts, wire.DefaultCompressThreshold)
		err = c.doHTTP(ctx, http.MethodPost, "/ingest", frame, wire.ContentTypeBinary, "", key, jsonSink(&res))
		sb.Release()
		wire.PutEncoder(enc)
	} else {
		err = c.doCtx(ctx, http.MethodPost, "/ingest", posts, &res, key)
	}
	if err == nil {
		return res, true, nil
	}
	var ae *APIError
	if errors.As(err, &ae) {
		var partial IngestResult
		if jsonErr := json.Unmarshal([]byte(ae.Body), &partial); jsonErr == nil {
			return partial, true, err
		}
	}
	return IngestResult{}, false, err
}

// Emissions fetches a profile's emissions with Seq > after (limit ≤ 0 means
// all).
//
// When after predates the server's retained buffer, the lost range is
// reported instead of silently spliced over: the retained tail is
// returned together with a *GapError (match with errors.Is(err, ErrGap))
// whose FirstSeq says where the data resumes. A flushed, unsubscribed or
// quarantined subscription returns a *StreamEndError.
func (c *Client) Emissions(id, after int64, limit int) ([]Emission, error) {
	return c.EmissionsContext(context.Background(), id, after, limit)
}

// EmissionsContext is Emissions honoring ctx. The poll negotiates the
// binary frame format via Accept; a server that ignores it answers JSON
// and the response is decoded by its Content-Type, so either way works.
func (c *Client) EmissionsContext(ctx context.Context, id, after int64, limit int) ([]Emission, error) {
	return c.emissions(ctx, id, after, limit, 0)
}

// emissions is the shared poll implementation; wait > 0 long-polls.
func (c *Client) emissions(ctx context.Context, id, after int64, limit int, wait time.Duration) ([]Emission, error) {
	path := fmt.Sprintf("/subscriptions/%d/emissions?after=%d", id, after)
	if limit > 0 {
		path += fmt.Sprintf("&limit=%d", limit)
	}
	if wait > 0 {
		path += fmt.Sprintf("&wait=%s", wait)
	}
	var out []Emission
	var gap *GapError
	err := c.callAttempt(ctx, http.MethodGet, path, true, func(ctx context.Context) error {
		accept := ""
		if c.useBinary() {
			accept = wire.ContentTypeBinary
		}
		return c.doHTTP(ctx, http.MethodGet, path, nil, "", accept, "", func(resp *http.Response) error {
			out, gap = out[:0], nil
			if fs := resp.Header.Get("X-First-Seq"); fs != "" {
				first, err1 := strconv.ParseInt(fs, 10, 64)
				from, err2 := strconv.ParseInt(resp.Header.Get("X-Gap-From"), 10, 64)
				if err1 == nil && err2 == nil {
					gap = &GapError{GapFrom: from, FirstSeq: first}
				}
			}
			if !wire.IsBinary(resp.Header.Get("Content-Type")) {
				return json.NewDecoder(resp.Body).Decode(&out)
			}
			dec := wire.GetDecoder()
			defer wire.PutDecoder(dec)
			kind, body, err := dec.ReadFrame(resp.Body)
			if err != nil {
				return fmt.Errorf("emissions frame: %w", err)
			}
			if kind != wire.KindEmissions {
				return fmt.Errorf("emissions frame: %w: unexpected kind 0x%02x", wire.ErrCorrupt, kind)
			}
			wes, err := wire.AppendEmissions(nil, body)
			if err != nil {
				return fmt.Errorf("emissions frame: %w", err)
			}
			for _, we := range wes {
				out = append(out, Emission(we))
			}
			return nil
		})
	})
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.streamEnd != "" {
			return nil, &StreamEndError{Reason: ae.streamEnd}
		}
		return nil, err
	}
	if gap != nil {
		return out, gap
	}
	return out, nil
}

// Flush forces every pending decision out. Flush is latched server-side,
// so retrying it is safe.
func (c *Client) Flush() error {
	return c.FlushContext(context.Background())
}

// FlushContext is Flush honoring ctx.
func (c *Client) FlushContext(ctx context.Context) error {
	return c.call(ctx, http.MethodPost, "/flush", struct{}{}, nil, true)
}

// Stats fetches service counters.
func (c *Client) Stats() (Stats, error) {
	return c.StatsContext(context.Background())
}

// StatsContext is Stats honoring ctx.
func (c *Client) StatsContext(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.call(ctx, http.MethodGet, "/stats", nil, &st, true)
	return st, err
}

// SubscriptionStats fetches one profile's counters.
func (c *Client) SubscriptionStats(id int64) (SubscriptionStats, error) {
	return c.SubscriptionStatsContext(context.Background(), id)
}

// SubscriptionStatsContext is SubscriptionStats honoring ctx.
func (c *Client) SubscriptionStatsContext(ctx context.Context, id int64) (SubscriptionStats, error) {
	var st SubscriptionStats
	err := c.call(ctx, http.MethodGet, fmt.Sprintf("/subscriptions/%d/stats", id), nil, &st, true)
	return st, err
}

// Metrics fetches the full observability snapshot (service counters plus
// every profile's stats and delay summary).
func (c *Client) Metrics() (Metrics, error) {
	return c.MetricsContext(context.Background())
}

// MetricsContext is Metrics honoring ctx.
func (c *Client) MetricsContext(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.call(ctx, http.MethodGet, "/metrics", nil, &m, true)
	return m, err
}

// Health fetches the liveness snapshot.
func (c *Client) Health() (Health, error) {
	return c.HealthContext(context.Background())
}

// HealthContext is Health honoring ctx.
func (c *Client) HealthContext(ctx context.Context) (Health, error) {
	var h Health
	err := c.call(ctx, http.MethodGet, "/healthz", nil, &h, true)
	return h, err
}
