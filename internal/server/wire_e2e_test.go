package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mqdp/internal/wire"
)

// wireE2EPosts is a deterministic stream that produces emissions on the
// politics topics across both subscription algorithms.
func wireE2EPosts() []Post {
	return []Post{
		{ID: 1, Time: 0, Text: "obama speaks tonight"},
		{ID: 2, Time: 5, Text: "irrelevant chatter about lunch"},
		{ID: 3, Time: 20, Text: "senate votes on the bill"},
		{ID: 4, Time: 21, Text: "senate votes on the bill"},
		{ID: 5, Time: 30, Text: "obama responds to the senate"},
		{ID: 6, Time: 200, Text: "president heads to camp david"},
		{ID: 7, Time: 260, Text: "congress debates the budget"},
		{ID: 8, Time: 300, Text: "president signs the bill"},
	}
}

// runWireE2E ingests the standard stream through a client pinned to one
// format and returns the JSON-marshaled emission streams per profile.
func runWireE2E(t *testing.T, configure func(*Server, *Client)) []string {
	t.Helper()
	s := New(3, 64)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Retry = &RetryPolicy{Seed: 1}
	if configure != nil {
		configure(s, c)
	}
	var ids []int64
	for _, cfg := range []SubscriptionConfig{
		{Topics: politicsTopics(), Lambda: 60, Tau: 10, Algorithm: "streamscan+"},
		{Topics: politicsTopics(), Lambda: 30, Tau: 0, Algorithm: "instant"},
	} {
		id, err := c.Subscribe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := c.Ingest(wireE2EPosts()...); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var streams []string
	for _, id := range ids {
		es, err := c.Emissions(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(es)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, string(blob))
	}
	return streams
}

// TestWireBinaryEmissionsIdentical is the format-equivalence contract:
// a client negotiated to binary frames must observe byte-identical
// emission streams to a JSON-only client over the same ingest.
func TestWireBinaryEmissionsIdentical(t *testing.T) {
	jsonStreams := runWireE2E(t, func(s *Server, c *Client) { c.DisableBinaryWire = true })
	binStreams := runWireE2E(t, nil) // binary is the client default
	if len(jsonStreams) != len(binStreams) {
		t.Fatalf("profile counts differ: %d vs %d", len(jsonStreams), len(binStreams))
	}
	for i := range jsonStreams {
		if jsonStreams[i] == "" || jsonStreams[i] == "null" {
			t.Fatalf("profile %d emitted nothing", i)
		}
		if jsonStreams[i] != binStreams[i] {
			t.Errorf("profile %d emissions differ:\nJSON:   %s\nbinary: %s", i, jsonStreams[i], binStreams[i])
		}
	}
}

// TestWireClient415Fallback points a binary-preferring client at a server
// with the binary surface disabled: the first ingest must transparently
// fall back to JSON (and latch, so later calls skip the binary attempt)
// without losing any posts.
func TestWireClient415Fallback(t *testing.T) {
	streams := runWireE2E(t, func(s *Server, c *Client) { s.SetBinaryWire(false) })
	want := runWireE2E(t, func(s *Server, c *Client) { c.DisableBinaryWire = true })
	for i := range streams {
		if streams[i] != want[i] {
			t.Errorf("profile %d emissions after 415 fallback differ:\n%s\nwant %s", i, streams[i], want[i])
		}
	}
}

// TestWireClient415Latches checks the fallback is remembered: after one
// 415 the client stops sending binary frames entirely.
func TestWireClient415Latches(t *testing.T) {
	s := New(0, 0)
	s.SetBinaryWire(false)
	var contentTypes []string
	inner := Handler(s)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ingest" {
			contentTypes = append(contentTypes, r.Header.Get("Content-Type"))
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	if _, err := c.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 60, Tau: 0}); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := c.Ingest(Post{ID: i, Time: float64(i), Text: "obama speaks"}); err != nil {
			t.Fatal(err)
		}
	}
	// First call: binary attempt (415) then JSON retry. Later calls: JSON only.
	want := []string{wire.ContentTypeBinary, wire.ContentTypeJSON, wire.ContentTypeJSON, wire.ContentTypeJSON}
	if len(contentTypes) != len(want) {
		t.Fatalf("ingest content types = %v, want %v", contentTypes, want)
	}
	for i := range want {
		if contentTypes[i] != want[i] {
			t.Errorf("request %d content type %q, want %q", i, contentTypes[i], want[i])
		}
	}
}

// TestWireBinaryIdempotentReplay reruns the exactly-once contract over
// binary frames: resending a batch with the same idempotency key must
// replay the recorded outcome, not double-ingest.
func TestWireBinaryIdempotentReplay(t *testing.T) {
	s := New(0, 0)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	c := NewClient(ts.URL)
	id, err := c.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	posts := []Post{{ID: 1, Time: 1, Text: "obama speaks"}, {ID: 2, Time: 2, Text: "senate votes"}}
	res1, got, err := c.doIngest(t.Context(), posts, "replay-key-1")
	if err != nil || !got {
		t.Fatalf("first send: got=%v err=%v", got, err)
	}
	res2, got, err := c.doIngest(t.Context(), posts, "replay-key-1")
	if err != nil || !got {
		t.Fatalf("replay: got=%v err=%v", got, err)
	}
	if res1.Accepted != 2 || res2.Accepted != 2 {
		t.Fatalf("accepted %d then %d, want 2 and 2", res1.Accepted, res2.Accepted)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	es, err := c.Emissions(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Fatalf("replay double-ingested: %d emissions, want 2", len(es))
	}
}

// TestWireBinaryIngestRejectsGarbage covers the server-side decode error
// mapping: corrupt frames are 400s, oversized ones 413s, and a disabled
// binary surface answers 415.
func TestWireBinaryIngestRejectsGarbage(t *testing.T) {
	s := New(0, 0)
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	post := func(body []byte) int {
		resp, err := http.Post(ts.URL+"/ingest", wire.ContentTypeBinary, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post([]byte("{}")); code != http.StatusBadRequest {
		t.Errorf("bad magic → %d, want 400", code)
	}
	huge := []byte{0x8D, 0x51, 1, 0, 0xff, 0xff, 0xff, 0x7f}
	if code := post(huge); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized frame → %d, want 413", code)
	}
	s.SetBinaryWire(false)
	enc := wire.GetEncoder()
	frame := append([]byte(nil), enc.EncodeStreamPosts([]wire.StreamPost{{ID: 1, Time: 1, Text: "x"}}, -1)...)
	wire.PutEncoder(enc)
	if code := post(frame); code != http.StatusUnsupportedMediaType {
		t.Errorf("disabled surface → %d, want 415", code)
	}
}

// TestIngestJSONDecodeAllocs pins the pooled JSON ingest path: steady
// state decode of a warm batch must reuse the scratch body and batch
// slices, costing only the per-post JSON token allocations — not a fresh
// buffer or slice per request.
func TestIngestJSONDecodeAllocs(t *testing.T) {
	const n = 64
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id":%d,"time":%d,"text":"warm pool decode"}`, i+1, i+1)
	}
	sb.WriteByte(']')
	body := []byte(sb.String())

	// Warm the pool so steady-state measurements see reused scratch.
	for i := 0; i < 4; i++ {
		_, free, err := decodeIngestBody(bytes.NewReader(body), false)
		if err != nil {
			t.Fatal(err)
		}
		free()
	}
	allocs := testing.AllocsPerRun(200, func() {
		batch, free, err := decodeIngestBody(bytes.NewReader(body), false)
		if err != nil || len(batch) != n {
			t.Fatalf("decode: %d posts, %v", len(batch), err)
		}
		free()
	})
	// Per run: one string per post text plus a handful of fixed-cost
	// allocations inside encoding/json; the scratch buffers themselves
	// must not count (≥1 extra alloc/post would put this over 2n).
	if allocs > float64(2*n) {
		t.Errorf("JSON ingest decode = %.1f allocs for %d posts, want ≤ %d", allocs, n, 2*n)
	}
}

// TestIngestBinaryDecodeAllocs pins the tentpole acceptance bound: ≤ 2
// heap allocations per post on the binary ingest decode path.
func TestIngestBinaryDecodeAllocs(t *testing.T) {
	const n = 256
	posts := make([]wire.StreamPost, n)
	for i := range posts {
		posts[i] = wire.StreamPost{ID: int64(i + 1), Time: float64(i), Text: "steady state binary decode body"}
	}
	enc := wire.GetEncoder()
	frame := append([]byte(nil), enc.EncodeStreamPosts(posts, -1)...)
	wire.PutEncoder(enc)
	for i := 0; i < 4; i++ {
		_, free, err := decodeIngestBody(bytes.NewReader(frame), true)
		if err != nil {
			t.Fatal(err)
		}
		free()
	}
	allocs := testing.AllocsPerRun(200, func() {
		batch, free, err := decodeIngestBody(bytes.NewReader(frame), true)
		if err != nil || len(batch) != n {
			t.Fatalf("decode: %d posts, %v", len(batch), err)
		}
		free()
	})
	if perPost := allocs / n; perPost > 2 {
		t.Errorf("binary ingest decode = %.2f allocs/post, want ≤ 2", perPost)
	}
}
