package server

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestClientEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL + "/") // trailing slash is normalized

	id, err := c.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 60, Tau: 0, Algorithm: "instant"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(
		Post{ID: 1, Time: 0, Text: "obama statement"},
		Post{ID: 2, Time: 100, Text: "senate debate"},
	); err != nil {
		t.Fatal(err)
	}
	es, err := c.Emissions(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Fatalf("emissions = %d, want 2", len(es))
	}
	if es[0].PostID != 1 || es[0].Topics[0] != "obama" {
		t.Errorf("first emission = %+v", es[0])
	}
	// Cursor + limit.
	es, err = c.Emissions(id, es[0].Seq, 1)
	if err != nil || len(es) != 1 || es[0].PostID != 2 {
		t.Errorf("cursor fetch = %+v, %v", es, err)
	}
	st, err := c.Stats()
	if err != nil || st.Ingested != 2 || st.Subscriptions != 1 {
		t.Errorf("stats = %+v, %v", st, err)
	}
	ss, err := c.SubscriptionStats(id)
	if err != nil || ss.Matched != 2 {
		t.Errorf("sub stats = %+v, %v", ss, err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Emissions(id, 0, 0); StatusCode(err) != http.StatusNotFound {
		t.Errorf("post-unsubscribe fetch error = %v (status %d), want 404", err, StatusCode(err))
	}
}

func TestClientErrorSurfacing(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	if _, err := c.Subscribe(SubscriptionConfig{}); err == nil {
		t.Error("bad subscription accepted")
	} else if StatusCode(err) != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", StatusCode(err))
	}
	if err := c.Ingest(Post{ID: 1, Time: 100, Text: "x"}); err != nil {
		t.Fatal(err)
	}
	err := c.Ingest(Post{ID: 2, Time: 50, Text: "y"})
	if StatusCode(err) != http.StatusConflict {
		t.Errorf("out-of-order status = %d, want 409", StatusCode(err))
	}
	if StatusCode(nil) != 0 {
		t.Error("StatusCode(nil) != 0")
	}
}

func TestClientIngestAccepted(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	n, err := c.IngestAccepted(
		Post{ID: 1, Time: 0, Text: "obama a"},
		Post{ID: 2, Time: 10, Text: "obama b"},
	)
	if err != nil || n != 2 {
		t.Fatalf("IngestAccepted = %d, %v", n, err)
	}
	// Mid-batch failure surfaces the accepted prefix alongside the error.
	n, err = c.IngestAccepted(
		Post{ID: 3, Time: 20, Text: "obama c"},
		Post{ID: 4, Time: 5, Text: "obama d"}, // out of order
		Post{ID: 5, Time: 30, Text: "obama e"},
	)
	if StatusCode(err) != http.StatusConflict {
		t.Fatalf("partial batch error = %v, want 409", err)
	}
	if n != 1 {
		t.Errorf("partial batch accepted = %d, want 1", n)
	}
	// Metrics and health are reachable through the client too.
	m, err := c.Metrics()
	if err != nil || m.Ingested != 3 {
		t.Errorf("metrics = %+v, %v", m, err)
	}
	h, err := c.Health()
	if err != nil || h.Status != "ok" {
		t.Errorf("health = %+v, %v", h, err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestAccepted(Post{ID: 6, Time: 40, Text: "late"}); StatusCode(err) != http.StatusConflict {
		t.Errorf("ingest-after-flush error = %v, want 409", err)
	}
	if h, _ := c.Health(); h.Status != "flushed" {
		t.Errorf("health after flush = %+v", h)
	}
}

func TestClientConnectionError(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	if _, err := c.Stats(); err == nil {
		t.Error("dead endpoint succeeded")
	}
}

// TestClientAPIErrorTyped pins the typed-error contract: a non-2xx
// response surfaces as an *APIError wrapped with the call's method and
// path, matchable with errors.As / errors.Is through the %w chain.
func TestClientAPIErrorTyped(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)

	_, err := c.Emissions(999, 0, 0)
	if err == nil {
		t.Fatal("want error for unknown subscription")
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is not an *APIError: %v", err)
	}
	if ae.Status != http.StatusNotFound {
		t.Errorf("status = %d, want 404", ae.Status)
	}
	if ae.Body == "" {
		t.Error("APIError.Body is empty")
	}
	if !strings.Contains(err.Error(), "GET /subscriptions/999/emissions") {
		t.Errorf("error does not identify the call: %v", err)
	}
	if !strings.Contains(err.Error(), "status 404") {
		t.Errorf("error does not carry the status: %v", err)
	}
	if StatusCode(err) != http.StatusNotFound {
		t.Errorf("StatusCode(err) = %d, want 404", StatusCode(err))
	}
	if _, ok := ae.RetryAfter(); ok {
		t.Error("404 reported a Retry-After it never had")
	}
}

// TestClientDefaultTimeout verifies the zero-value client gets a bounded
// HTTP client rather than the timeout-less http.DefaultClient.
func TestClientDefaultTimeout(t *testing.T) {
	c := NewClient("http://example.invalid")
	if got := c.httpClient().Timeout; got <= 0 {
		t.Fatalf("default client timeout = %v, want > 0", got)
	}
	override := &http.Client{Timeout: time.Second}
	c.HTTPClient = override
	if c.httpClient() != override {
		t.Fatal("explicit HTTPClient not honored")
	}
}

// TestClientContextVariants verifies the ...Context methods honor caller
// cancellation while the legacy signatures stay usable.
func TestClientContextVariants(t *testing.T) {
	ts, core := newTestServer(t)
	c := NewClient(ts.URL)
	if _, err := core.Subscribe(SubscriptionConfig{Topics: politicsTopics(), Lambda: 0, Tau: 0, Algorithm: "instant"}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.IngestContext(ctx, Post{ID: 1, Time: 1, Text: "obama live"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("IngestContext with canceled ctx: %v", err)
	}
	if _, err := c.EmissionsContext(ctx, 1, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("EmissionsContext with canceled ctx: %v", err)
	}
	if _, err := c.StatsContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("StatsContext with canceled ctx: %v", err)
	}
	// Nothing reached the server through the canceled context.
	if got := core.Stats().Ingested; got != 0 {
		t.Fatalf("canceled ingest landed %d posts", got)
	}
	if err := c.IngestContext(context.Background(), Post{ID: 1, Time: 1, Text: "obama live"}); err != nil {
		t.Fatal(err)
	}
	st, err := c.StatsContext(context.Background())
	if err != nil || st.Ingested != 1 {
		t.Fatalf("StatsContext = (%+v, %v)", st, err)
	}
}
