package server

import (
	"context"
	"sync"
	"time"

	"mqdp/internal/faultinject"
	"mqdp/internal/resilience"
)

// ShedPolicy decides what an over-limit ingest request does while the
// admission controller's in-flight cap is saturated.
type ShedPolicy string

const (
	// ShedPolicyShed rejects immediately with 429 + Retry-After.
	ShedPolicyShed ShedPolicy = "shed"
	// ShedPolicyBlock queues the request (bounded by MaxWait and the
	// request context) and sheds only if no slot frees in time. The
	// queue is the semaphore's wait list — bounded by the listener's
	// connection backlog, never unbounded in-process buffering.
	ShedPolicyBlock ShedPolicy = "block"
)

// AdmissionConfig bounds the ingest path. The zero value disables
// admission control entirely.
type AdmissionConfig struct {
	// MaxInflight caps concurrent ingest requests; ≤ 0 means unlimited.
	MaxInflight int
	// Rate and Burst parameterize a token bucket charged one token per
	// ingest request; Rate ≤ 0 disables the bucket.
	Rate  float64
	Burst int
	// Policy is shed (default) or block.
	Policy ShedPolicy
	// MaxWait bounds how long a blocked request waits for an in-flight
	// slot (0 = 1s). The bucket always sheds: waiting for refill would
	// just move the queue inside the server.
	MaxWait time.Duration
}

// admission is the live controller built from an AdmissionConfig.
type admission struct {
	cfg      AdmissionConfig
	inflight *resilience.Inflight // nil when MaxInflight ≤ 0
	bucket   *resilience.TokenBucket
}

// SetAdmission (re)configures ingest admission control. A zero config
// removes it. Safe to call while serving.
func (s *Server) SetAdmission(cfg AdmissionConfig) {
	if cfg.MaxInflight <= 0 && cfg.Rate <= 0 {
		s.admission.Store(nil)
		return
	}
	a := &admission{cfg: cfg}
	if cfg.MaxInflight > 0 {
		a.inflight = resilience.NewInflight(cfg.MaxInflight)
	}
	if cfg.Rate > 0 {
		a.bucket = resilience.NewTokenBucket(cfg.Rate, cfg.Burst)
	}
	if a.cfg.Policy == "" {
		a.cfg.Policy = ShedPolicyShed
	}
	if a.cfg.MaxWait <= 0 {
		a.cfg.MaxWait = time.Second
	}
	s.admission.Store(a)
}

// SetIngestDeadline bounds the server-side wall time of one ingest
// request (0 disables). A batch cut off mid-way reports the accepted
// prefix with 503 + Retry-After so honoring clients resume, not resend.
func (s *Server) SetIngestDeadline(d time.Duration) {
	s.ingestDeadline.Store(int64(d))
}

// IngestDeadline reports the configured per-request ingest deadline.
func (s *Server) IngestDeadline() time.Duration {
	return time.Duration(s.ingestDeadline.Load())
}

// SetFaultInjector installs (or, with nil, removes) the deterministic
// chaos hook consulted at the server's in-process fault points. Hot
// paths pay one atomic pointer load when disabled.
func (s *Server) SetFaultInjector(in *faultinject.Injector) {
	if in == nil {
		s.faults.Store(nil)
		return
	}
	s.faults.Store(in)
}

// admit runs one ingest request through the admission controller. On
// success it returns a release closure; on shed it returns ok=false and
// the Retry-After hint, and counts the shed. ctx bounds a blocked wait.
func (s *Server) admit(ctx context.Context) (release func(), retryAfter time.Duration, ok bool) {
	a := s.admission.Load()
	if a == nil {
		return func() {}, 0, true
	}
	if a.bucket != nil && !a.bucket.Allow(1) {
		s.shed.Inc()
		return nil, a.bucket.RetryAfter(), false
	}
	if a.inflight == nil {
		return func() {}, 0, true
	}
	if !a.inflight.TryAcquire() {
		if a.cfg.Policy != ShedPolicyBlock {
			s.shed.Inc()
			return nil, time.Second, false
		}
		waitCtx, cancel := context.WithTimeout(ctx, a.cfg.MaxWait)
		defer cancel()
		if err := a.inflight.Acquire(waitCtx); err != nil {
			s.shed.Inc()
			return nil, time.Second, false
		}
	}
	return a.inflight.Release, 0, true
}

// maxIdempotencyKeys bounds the replay cache (a var so tests can
// exercise eviction cheaply). At the default, a retrying client fleet
// can replay its last ~4k ingest responses.
var maxIdempotencyKeys = 4096

// idemEntry is one cached ingest outcome: the exact body and status the
// original request produced, replayed verbatim to same-key retries.
type idemEntry struct {
	res    IngestResult
	status int
}

// idemCache is a bounded FIFO map of Idempotency-Key → outcome. The
// exactly-once story for ingest: a client that never got the response
// retries with the same key and receives the recorded outcome instead
// of re-applying the batch.
type idemCache struct {
	mu      sync.Mutex
	entries map[string]idemEntry
	order   []string // insertion order for FIFO eviction
	head    int
}

func (c *idemCache) get(key string) (idemEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

func (c *idemCache) put(key string, e idemEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]idemEntry)
	}
	if _, exists := c.entries[key]; !exists {
		c.order = append(c.order, key)
	}
	c.entries[key] = e
	for len(c.entries) > maxIdempotencyKeys && c.head < len(c.order) {
		delete(c.entries, c.order[c.head])
		c.head++
	}
	if c.head > 64 && c.head*2 >= len(c.order) {
		c.order = append(c.order[:0], c.order[c.head:]...)
		c.head = 0
	}
}

// IdemSnap is one persisted replay-cache entry. Part of the durability
// snapshot: a client retrying an ingest across a server crash still gets
// the recorded outcome (Idempotent-Replay: true) instead of a re-apply.
type IdemSnap struct {
	Key      string
	Accepted int
	Error    string
	Status   int
}

// export captures the cache in FIFO order, so a restore preserves the
// eviction sequence exactly.
func (c *idemCache) export() []IdemSnap {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]IdemSnap, 0, len(c.entries))
	for _, key := range c.order[c.head:] {
		e, ok := c.entries[key]
		if !ok {
			continue // evicted but not yet compacted out of order
		}
		out = append(out, IdemSnap{Key: key, Accepted: e.res.Accepted, Error: e.res.Error, Status: e.status})
	}
	return out
}

// restore replays exported entries through put, rebuilding the FIFO
// bookkeeping (and honoring the current cache bound).
func (c *idemCache) restore(snaps []IdemSnap) {
	for _, sn := range snaps {
		c.put(sn.Key, idemEntry{res: IngestResult{Accepted: sn.Accepted, Error: sn.Error}, status: sn.Status})
	}
}
