package server

import (
	"mqdp/internal/obs"
)

// serverObs bundles the service-level instruments. A nil pointer is the
// disabled state; the ingest and poll paths pay one atomic load and one
// branch per call. Per-subscription counters (matched, emitted, misses,
// delay histogram) live on the subscription itself and work with or without
// a registry; the service totals here are their registry-visible sums,
// incremented alongside.
type serverObs struct {
	reg           *obs.Registry
	tracer        *obs.Tracer    // request tracer; nil when the registry has none
	ingestFanout  *obs.Histogram // one Ingest: admission + fan-out to all subscriptions
	tokenizeTime  *obs.Histogram // the once-per-post tokenization shared by every subscription
	matchTime     *obs.Histogram // one subscription's topic match for one post
	routingCands  *obs.Histogram // candidate subscriptions per routed post (fan-out size)
	pollTime      *obs.Histogram // one Emissions poll
	subs          *obs.Gauge
	matched       *obs.Counter
	emitted       *obs.Counter
	misses        *obs.Counter
	quarantined   *obs.Gauge
	activeStreams *obs.Gauge
	walAppendTime *obs.Histogram // one WAL record framed + buffered
	walSyncTime   *obs.Histogram // one WAL commit (flush + fsync per policy)
	snapshotTime  *obs.Histogram // one full state snapshot (encode + atomic write)
}

// SetObs wires the server's instruments into r; nil disables service-level
// instrumentation (per-subscription counters keep working regardless — the
// JSON /metrics endpoint does not need a registry).
func (s *Server) SetObs(r *obs.Registry) {
	if r == nil {
		s.obsState.Store(nil)
		return
	}
	r.RegisterCounter("mqdp_server_ingested_total", "posts accepted by ingest admission", &s.ingested)
	r.RegisterCounter("mqdp_server_dropped_duplicates_total", "posts dropped as near-duplicates before fan-out", &s.dropped)
	r.RegisterCounter("mqdp_server_sheds_total", "ingest requests shed by the admission controller (429)", &s.shed)
	r.RegisterCounter("mqdp_server_quarantines_total", "subscriptions isolated after a pipeline panic", &s.quarantines)
	r.RegisterCounter("mqdp_server_pushed_total", "emissions delivered over push streams", &s.pushed)
	r.RegisterCounter("mqdp_server_gaps_total", "emission gaps reported to clients (stale cursors across poll, long-poll and SSE)", &s.gaps)
	r.RegisterCounter("mqdp_server_routing_skipped_total", "subscriptions skipped by inverted routing (no keyword of theirs in the post)", &s.routingSkipped)
	r.RegisterCounter("mqdp_server_wal_records_total", "records appended to the write-ahead log", &s.walRecords)
	r.RegisterCounter("mqdp_server_wal_snapshots_total", "state snapshots written by the durability layer", &s.walSnapshots)
	o := &serverObs{
		reg:           r,
		tracer:        r.Tracer(),
		ingestFanout:  r.Histogram("mqdp_server_ingest_fanout_seconds", "wall time fanning one post out to every subscription", obs.TimeBuckets),
		tokenizeTime:  r.Histogram("mqdp_server_tokenize_seconds", "wall time of the once-per-post ingest tokenization", obs.TimeBuckets),
		matchTime:     r.Histogram("mqdp_server_match_seconds", "wall time of one subscription's topic match", obs.TimeBuckets),
		routingCands:  r.Histogram("mqdp_server_routing_candidates", "candidate subscriptions fed per routed post after the inverted-index merge", obs.ExpBuckets(1, 4, 10)),
		pollTime:      r.Histogram("mqdp_server_emission_poll_seconds", "wall time of one emission poll", obs.TimeBuckets),
		subs:          r.Gauge("mqdp_server_subscriptions", "registered subscriptions"),
		matched:       r.Counter("mqdp_server_matched_total", "post-subscription matches across all profiles"),
		emitted:       r.Counter("mqdp_server_emitted_total", "emissions delivered across all profiles"),
		misses:        r.Counter("mqdp_server_text_misses_total", "decisions whose cached text was gc'd before landing"),
		quarantined:   r.Gauge("mqdp_server_quarantined_subscriptions", "currently quarantined subscriptions"),
		activeStreams: r.Gauge("mqdp_server_active_push_streams", "currently served push waiters (SSE streams and blocked long-polls)"),
		walAppendTime: r.Histogram("mqdp_server_wal_append_seconds", "wall time framing one WAL record into the segment buffer", obs.TimeBuckets),
		walSyncTime:   r.Histogram("mqdp_server_wal_commit_seconds", "wall time of one WAL commit (buffer flush plus fsync per policy)", obs.TimeBuckets),
		snapshotTime:  r.Histogram("mqdp_server_snapshot_seconds", "wall time of one durability snapshot (encode plus atomic write)", obs.TimeBuckets),
	}
	s.mu.RLock()
	o.subs.Set(float64(len(s.subs)))
	s.mu.RUnlock()
	o.activeStreams.Set(float64(s.streams.Load()))
	s.obsState.Store(o)
}

// Registry returns the wired registry, or nil when disabled. The HTTP layer
// uses it for /metrics/prometheus.
func (s *Server) Registry() *obs.Registry {
	if o := s.obsState.Load(); o != nil {
		return o.reg
	}
	return nil
}

// onMatch, onEmit and onMiss bump the service totals. Safe on nil receivers.
func (o *serverObs) onMatch() {
	if o != nil {
		o.matched.Inc()
	}
}

func (o *serverObs) onEmit() {
	if o != nil {
		o.emitted.Inc()
	}
}

func (o *serverObs) onMiss() {
	if o != nil {
		o.misses.Inc()
	}
}

// onQuarantine tracks the live quarantined-subscription gauge alongside
// the server's monotone quarantines counter.
func (o *serverObs) onQuarantine() {
	if o != nil {
		o.quarantined.Add(1)
	}
}
