package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mqdp/internal/digest"
)

// Handler exposes the Server over HTTP:
//
//	POST   /subscriptions                 {topics, lambda, tau, algorithm} → {"id": N}
//	DELETE /subscriptions/{id}
//	GET    /subscriptions/{id}/emissions?after=SEQ&limit=K → [Emission]
//	GET    /subscriptions/{id}/stats      → SubscriptionStats
//	POST   /ingest                        Post or [Post] → {"accepted": N} (on a
//	                                      mid-batch error: {"accepted": N, "error": ...}
//	                                      with N = posts ingested before the failure).
//	                                      When the admission controller sheds, the
//	                                      reply is 429 with a Retry-After header and
//	                                      the batch is untouched; when the ingest
//	                                      deadline cuts a batch, 503 + Retry-After: 0
//	                                      with the applied prefix count. An
//	                                      Idempotency-Key header makes the call
//	                                      replayable: a retry with the same key
//	                                      returns the recorded outcome (marked
//	                                      Idempotent-Replay: true) without
//	                                      re-applying the batch.
//	POST   /flush
//	GET    /stats                         → Stats
//	GET    /metrics                       → Metrics (service + per-profile counters)
//	GET    /metrics/prometheus            → text exposition of the wired obs registry
//	                                      (503 until Server.SetObs wires one)
//	GET    /healthz                       → Health
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/subscriptions", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var cfg SubscriptionConfig
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := s.Subscribe(cfg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]int64{"id": id})
	})
	mux.HandleFunc("/subscriptions/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/subscriptions/")
		parts := strings.Split(rest, "/")
		id, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			http.Error(w, "bad subscription id", http.StatusBadRequest)
			return
		}
		switch {
		case len(parts) == 1 && r.Method == http.MethodDelete:
			if err := s.Unsubscribe(id); err != nil {
				httpError(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case len(parts) == 2 && parts[1] == "emissions" && r.Method == http.MethodGet:
			after, _ := strconv.ParseInt(r.URL.Query().Get("after"), 10, 64)
			limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
			es, err := s.Emissions(id, after, limit)
			if err != nil {
				httpError(w, err)
				return
			}
			if es == nil {
				es = []Emission{}
			}
			writeJSON(w, es)
		case len(parts) == 2 && parts[1] == "digest" && r.Method == http.MethodGet:
			d, err := s.Digest(id)
			if err != nil {
				httpError(w, err)
				return
			}
			opts := digest.Options{MaxTextLen: 80, ValueAsClock: true}
			if r.URL.Query().Get("format") == "md" {
				w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
				if err := d.WriteMarkdown(w, opts); err != nil {
					httpError(w, err)
				}
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := d.WriteText(w, opts); err != nil {
				httpError(w, err)
			}
		case len(parts) == 2 && parts[1] == "stats" && r.Method == http.MethodGet:
			st, err := s.SubscriptionStats(id)
			if err != nil {
				httpError(w, err)
				return
			}
			writeJSON(w, st)
		default:
			http.Error(w, "not found", http.StatusNotFound)
		}
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		// Idempotent replay: a retrying client that never saw the response
		// resends with the same key and gets the recorded outcome — the
		// batch is never applied twice.
		key := r.Header.Get("Idempotency-Key")
		if key != "" {
			if e, ok := s.idem.get(key); ok {
				w.Header().Set("Idempotent-Replay", "true")
				writeIngestResult(w, e.status, e.res)
				return
			}
		}
		// Admission: shed (429 + Retry-After) or block per policy before
		// any decoding work is spent on the request.
		release, retryAfter, ok := s.admit(r.Context())
		if !ok {
			w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
			http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
			return
		}
		defer release()
		ctx := r.Context()
		if d := s.IngestDeadline(); d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		dec := json.NewDecoder(r.Body)
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var batch []Post
		if len(raw) > 0 && raw[0] == '[' {
			if err := json.Unmarshal(raw, &batch); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		} else {
			var one Post
			if err := json.Unmarshal(raw, &one); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			batch = []Post{one}
		}
		accepted := 0
		var ingestErr error
		for _, p := range batch {
			// The deadline cuts between posts, never inside one: the
			// accepted prefix is fully applied, the rest untouched.
			if err := s.IngestContext(ctx, p); err != nil {
				ingestErr = err
				break
			}
			accepted++
		}
		res := IngestResult{Accepted: accepted}
		status := http.StatusOK
		if ingestErr != nil {
			// Report how much of the batch landed so clients can resume
			// at the failed item instead of double-ingesting the prefix.
			res.Error = ingestErr.Error()
			status = statusFor(ingestErr)
		}
		if key != "" {
			s.idem.put(key, idemEntry{res: res, status: status})
		}
		if status == http.StatusServiceUnavailable {
			// Deadline cut: the remainder is retryable right away.
			w.Header().Set("Retry-After", "0")
		}
		writeIngestResult(w, status, res)
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.Flush()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Metrics())
	})
	mux.HandleFunc("/metrics/prometheus", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		reg := s.Registry()
		if reg == nil {
			http.Error(w, "metrics registry not wired", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Health())
	})
	return mux
}

// IngestResult is the POST /ingest response body. On success Accepted is
// the full batch size; on failure it is the number of posts ingested
// before the failing item and Error describes the failure.
type IngestResult struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeIngestResult writes an IngestResult with an explicit status,
// used by both the live ingest path and idempotent replays (which must
// reproduce the original status byte-for-byte).
func writeIngestResult(w http.ResponseWriter, status int, res IngestResult) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(res)
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// with sub-second hints rounded down to "0" (retry immediately) so shed
// clients don't serialize on 1-second sleeps.
func retryAfterSeconds(d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	return strconv.Itoa(int(d / time.Second))
}

func httpError(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), statusFor(err))
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNoSuchSubscription):
		return http.StatusNotFound
	case errors.Is(err, ErrOutOfOrder), errors.Is(err, ErrClosed):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The request ran out of its deadline budget; the accepted prefix
		// is applied and the remainder is safe to retry.
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
