package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mqdp/internal/digest"
	"mqdp/internal/obs"
	"mqdp/internal/wire"
)

// Handler exposes the Server over HTTP:
//
//	POST   /subscriptions                 {topics, lambda, tau, algorithm} → {"id": N}
//	DELETE /subscriptions/{id}
//	GET    /subscriptions/{id}/emissions?after=SEQ&limit=K&wait=DUR → [Emission]
//	                                      (or one binary emissions frame when the
//	                                      request Accepts application/x-mqdp-frame).
//	                                      wait= long-polls up to DUR (capped at
//	                                      60s) for new emissions, counted
//	                                      against the stream cap. A stale after
//	                                      cursor — older
//	                                      than the retained buffer — returns the
//	                                      kept tail with X-Gap-From/X-First-Seq
//	                                      headers naming the lost range instead
//	                                      of silently splicing; a flushed,
//	                                      unsubscribed or quarantined stream
//	                                      answers 409 + X-Stream-End: reason.
//	GET    /subscriptions/{id}/topk       → TopKSnapshot: the continuously
//	                                      maintained diversified top-k view (or
//	                                      one binary top-k frame under the same
//	                                      Accept negotiation)
//	GET    /subscriptions/{id}/stream     Server-Sent Events push: emission,
//	                                      topk, gap and end events. Resumes from
//	                                      ?after=SEQ or Last-Event-ID. 501 when
//	                                      push is disabled (clients fall back to
//	                                      polling), 503 + Retry-After over the
//	                                      -max-streams cap.
//	GET    /subscriptions/{id}/stats      → SubscriptionStats
//	POST   /ingest                        Post or [Post] → {"accepted": N} (on a
//	                                      mid-batch error: {"accepted": N, "error": ...}
//	                                      with N = posts ingested before the failure).
//	                                      Bodies may alternatively be one binary
//	                                      stream-post frame (Content-Type
//	                                      application/x-mqdp-frame, see
//	                                      internal/wire); responses stay JSON.
//	                                      415 when the binary format is disabled.
//	                                      When the admission controller sheds, the
//	                                      reply is 429 with a Retry-After header and
//	                                      the batch is untouched; when the ingest
//	                                      deadline cuts a batch, 503 + Retry-After: 0
//	                                      with the applied prefix count. An
//	                                      Idempotency-Key header makes the call
//	                                      replayable: a retry with the same key
//	                                      returns the recorded outcome (marked
//	                                      Idempotent-Replay: true) without
//	                                      re-applying the batch.
//	POST   /flush
//	GET    /stats                         → Stats
//	GET    /metrics                       → Metrics (service + per-profile counters)
//	GET    /metrics/prometheus            → text exposition of the wired obs registry
//	                                      (503 until Server.SetObs wires one)
//	GET    /healthz                       → Health
//	GET    /debug/traces                  → recent traces, newest first (?n=, ?min=,
//	                                      ?format=text); 503 until a tracer is wired
//	GET    /debug/traces/{id}             → one trace as a parent-linked span tree
//	                                      (JSON, or indented text with ?format=text)
//
// Every route is wrapped by the observability middleware: requests carrying
// a valid W3C traceparent header continue that trace, everything else gets
// a fresh root span, and traced responses echo X-Trace-Id.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/subscriptions", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var cfg SubscriptionConfig
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := s.Subscribe(cfg)
		if err != nil {
			if errors.Is(err, ErrReadOnly) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]int64{"id": id})
	})
	mux.HandleFunc("/subscriptions/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/subscriptions/")
		parts := strings.Split(rest, "/")
		id, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			http.Error(w, "bad subscription id", http.StatusBadRequest)
			return
		}
		switch {
		case len(parts) == 1 && r.Method == http.MethodDelete:
			if err := s.Unsubscribe(id); err != nil {
				httpError(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case len(parts) == 2 && parts[1] == "emissions" && r.Method == http.MethodGet:
			q := r.URL.Query()
			after, _ := strconv.ParseInt(q.Get("after"), 10, 64)
			limit, _ := strconv.Atoi(q.Get("limit"))
			var es []Emission
			var err error
			if wait := parseWait(q.Get("wait")); wait > 0 {
				// Long-poll: park on the subscription's hub instead of
				// returning empty, under the same stream cap as SSE. Stays
				// available when SSE is disabled — it is the fallback.
				release, ok := s.acquireStream()
				if !ok {
					w.Header().Set("Retry-After", "1")
					http.Error(w, "too many push streams", http.StatusServiceUnavailable)
					return
				}
				ctx, cancel := context.WithTimeout(r.Context(), wait)
				es, err = s.WaitEmissions(ctx, id, after, limit)
				cancel()
				release()
				if errors.Is(err, context.DeadlineExceeded) {
					es, err = nil, nil // nothing arrived in time: empty poll
				}
			} else {
				es, err = s.Emissions(id, after, limit)
			}
			// A stale cursor is reported, never hidden: the body carries the
			// retained tail, the headers name the spliced-out range.
			var gap *GapError
			if errors.As(err, &gap) {
				s.gaps.Inc()
				w.Header().Set("X-Gap-From", strconv.FormatInt(gap.GapFrom, 10))
				w.Header().Set("X-First-Seq", strconv.FormatInt(gap.FirstSeq, 10))
				err = nil
			}
			if err != nil {
				var end *StreamEndError
				if errors.As(err, &end) {
					w.Header().Set("X-Stream-End", end.Reason)
					http.Error(w, err.Error(), http.StatusConflict)
					return
				}
				if errors.Is(err, context.Canceled) {
					return // client went away mid-wait
				}
				httpError(w, err)
				return
			}
			if es == nil {
				es = []Emission{}
			}
			// Content negotiation: a client accepting the binary frame
			// format gets a KindEmissions frame; everyone else gets the
			// identical data as JSON (the default).
			if wire.AcceptsBinary(r.Header.Get("Accept")) && !s.binaryWireDisabled.Load() {
				writeBinaryEmissions(w, es)
				return
			}
			writeJSON(w, es)
		case len(parts) == 2 && parts[1] == "topk" && r.Method == http.MethodGet:
			snap, err := s.TopK(id)
			if err != nil {
				httpError(w, err)
				return
			}
			if wire.AcceptsBinary(r.Header.Get("Accept")) && !s.binaryWireDisabled.Load() {
				writeBinaryTopK(w, snap)
				return
			}
			writeJSON(w, snap)
		case len(parts) == 2 && parts[1] == "stream" && r.Method == http.MethodGet:
			s.serveStream(w, r, id)
		case len(parts) == 2 && parts[1] == "digest" && r.Method == http.MethodGet:
			d, err := s.Digest(id)
			if err != nil {
				httpError(w, err)
				return
			}
			opts := digest.Options{MaxTextLen: 80, ValueAsClock: true}
			if r.URL.Query().Get("format") == "md" {
				w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
				if err := d.WriteMarkdown(w, opts); err != nil {
					httpError(w, err)
				}
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := d.WriteText(w, opts); err != nil {
				httpError(w, err)
			}
		case len(parts) == 2 && parts[1] == "stats" && r.Method == http.MethodGet:
			st, err := s.SubscriptionStats(id)
			if err != nil {
				httpError(w, err)
				return
			}
			writeJSON(w, st)
		default:
			http.Error(w, "not found", http.StatusNotFound)
		}
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		// Negotiation: binary-framed bodies are opt-in via Content-Type.
		// When the format is administratively disabled, answer 415 before
		// any other work so clients fall back to JSON immediately.
		binary := wire.IsBinary(r.Header.Get("Content-Type"))
		if binary && s.binaryWireDisabled.Load() {
			http.Error(w, "binary frame format disabled; use application/json", http.StatusUnsupportedMediaType)
			return
		}
		// Idempotent replay: a retrying client that never saw the response
		// resends with the same key and gets the recorded outcome — the
		// batch is never applied twice. Replay is format-independent: a
		// JSON retry of a binary-framed original (or vice versa) returns
		// the same recorded result.
		key := r.Header.Get("Idempotency-Key")
		if key != "" {
			if e, ok := s.idem.get(key); ok {
				if sp := obs.FromContext(r.Context()); sp != nil {
					sp.Set("idem_replay", "true")
				}
				w.Header().Set("Idempotent-Replay", "true")
				writeIngestResult(w, e.status, e.res)
				return
			}
		}
		// Admission: shed (429 + Retry-After) or block per policy before
		// any decoding work is spent on the request. The span covers the
		// wait so backpressure stalls are visible in the trace.
		_, admitSpan := obs.StartSpan(r.Context(), "server.admit")
		release, retryAfter, ok := s.admit(r.Context())
		if !ok {
			admitSpan.Set("shed", "true")
			admitSpan.End()
			w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
			http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
			return
		}
		admitSpan.End()
		defer release()
		ctx := r.Context()
		if d := s.IngestDeadline(); d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		// Both decode paths hand the batch back through pooled scratch:
		// binary frames decode with O(1) heap allocations per post, and
		// the JSON fallback reuses its body buffer and post slice.
		_, decSpan := obs.StartSpan(r.Context(), "ingest.decode")
		batch, freeBatch, derr := decodeIngestBody(r.Body, binary)
		if derr != nil {
			decSpan.SetError(derr)
			decSpan.End()
			http.Error(w, derr.Error(), ingestDecodeStatus(derr))
			return
		}
		decSpan.SetInt("posts", int64(len(batch)))
		decSpan.End()
		defer freeBatch()
		// The whole batch goes through IngestBatch: with durability enabled
		// it becomes one atomic WAL record (keyed by the idempotency key)
		// committed before any post is applied, and the recorded outcome
		// lands in the replay cache under the same critical section. The
		// deadline still cuts between posts, never inside one, and the
		// response reports the applied prefix so clients resume at the
		// failed item instead of double-ingesting.
		res, status, ingestErr := s.IngestBatch(ctx, batch, key)
		if errors.Is(ingestErr, ErrReadOnly) {
			// The WAL is broken; retrying immediately cannot help. Point
			// clients at a pause while the operator intervenes.
			w.Header().Set("Retry-After", "1")
		} else if status == http.StatusServiceUnavailable {
			// Deadline cut: the remainder is retryable right away.
			w.Header().Set("Retry-After", "0")
		}
		writeIngestResult(w, status, res)
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.Flush()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Metrics())
	})
	mux.HandleFunc("/metrics/prometheus", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		reg := s.Registry()
		if reg == nil {
			http.Error(w, "metrics registry not wired", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Health())
	})
	mux.HandleFunc("/debug/traces", s.handleTraceList)
	mux.HandleFunc("/debug/traces/", s.handleTraceGet)
	return withObs(s, mux)
}

// IngestResult is the POST /ingest response body. On success Accepted is
// the full batch size; on failure it is the number of posts ingested
// before the failing item and Error describes the failure.
type IngestResult struct {
	Accepted int    `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

// ingestScratch is the pooled per-request decode state for /ingest: the
// raw body buffer and the decoded post slice are reused across requests,
// so the JSON fallback path stops allocating per post (beyond the text
// strings themselves, which escape into server state) just like the
// binary path.
type ingestScratch struct {
	body  []byte
	batch []Post
}

var ingestScratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// release clears post references (so pooled memory doesn't pin text
// strings) and returns the scratch, dropping outsized buffers.
func (sc *ingestScratch) release() {
	for i := range sc.batch {
		sc.batch[i] = Post{}
	}
	sc.batch = sc.batch[:0]
	sc.body = sc.body[:0]
	const keep = 8 << 20
	if cap(sc.body) > keep {
		sc.body = nil
	}
	if cap(sc.batch) > 1<<17 {
		sc.batch = nil
	}
	ingestScratchPool.Put(sc)
}

// readBody fills sc.body from r without the per-request allocations of
// io.ReadAll.
func (sc *ingestScratch) readBody(r io.Reader) error {
	for {
		if cap(sc.body)-len(sc.body) < 512 {
			sc.body = append(sc.body, make([]byte, 64<<10)...)[:len(sc.body)]
		}
		n, err := r.Read(sc.body[len(sc.body):cap(sc.body)])
		sc.body = sc.body[:len(sc.body)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// decodeJSONBatch decodes a Post or [Post] JSON body into sc.batch,
// reusing its capacity.
func (sc *ingestScratch) decodeJSONBatch(data []byte) error {
	sc.batch = sc.batch[:0]
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		return json.Unmarshal(trimmed, &sc.batch)
	}
	var one Post
	if err := json.Unmarshal(trimmed, &one); err != nil {
		return err
	}
	sc.batch = append(sc.batch, one)
	return nil
}

// decodeIngestBody decodes an ingest request body in either wire format
// through pooled scratch. The returned batch is valid until free is
// called; free must be called exactly once (after the ingest loop).
func decodeIngestBody(r io.Reader, binary bool) (batch []Post, free func(), err error) {
	sc := ingestScratchPool.Get().(*ingestScratch)
	if !binary {
		if err := sc.readBody(r); err != nil {
			sc.release()
			return nil, nil, err
		}
		if err := sc.decodeJSONBatch(sc.body); err != nil {
			sc.release()
			return nil, nil, err
		}
		return sc.batch, sc.release, nil
	}
	dec := wire.GetDecoder()
	defer wire.PutDecoder(dec)
	kind, frameBody, err := dec.ReadFrame(r)
	if err != nil {
		sc.release()
		return nil, nil, err
	}
	if kind != wire.KindStreamPosts {
		sc.release()
		return nil, nil, errors.New("wire: ingest frame must be a stream-post batch")
	}
	sb := wire.GetStreamBatch()
	defer sb.Release()
	sb.Posts, err = wire.AppendStreamPosts(sb.Posts[:0], frameBody)
	if err != nil {
		sc.release()
		return nil, nil, err
	}
	sc.batch = sc.batch[:0]
	if cap(sc.batch) < len(sb.Posts) {
		sc.batch = make([]Post, 0, len(sb.Posts))
	}
	for _, sp := range sb.Posts {
		sc.batch = append(sc.batch, Post(sp))
	}
	return sc.batch, sc.release, nil
}

// ingestDecodeStatus maps decode failures to HTTP statuses: oversized
// frames are 413, everything else malformed is 400.
func ingestDecodeStatus(err error) int {
	if errors.Is(err, wire.ErrFrameTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// maxLongPollWait caps ?wait= so a typoed duration can't pin a handler
// goroutine for hours; clients wanting longer just reissue the poll.
const maxLongPollWait = 60 * time.Second

// parseWait reads a ?wait= value as a Go duration ("30s") or bare
// seconds ("30"); empty, malformed or negative values mean no wait.
func parseWait(s string) time.Duration {
	if s == "" {
		return 0
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		secs, err2 := strconv.Atoi(s)
		if err2 != nil {
			return 0
		}
		d = time.Duration(secs) * time.Second
	}
	if d < 0 {
		return 0
	}
	if d > maxLongPollWait {
		d = maxLongPollWait
	}
	return d
}

// writeBinaryTopK renders a top-k snapshot as one KindTopK frame.
func writeBinaryTopK(w http.ResponseWriter, snap TopKSnapshot) {
	enc := wire.GetEncoder()
	defer wire.PutEncoder(enc)
	wes := make([]wire.Emission, len(snap.Items))
	for i, e := range snap.Items {
		wes[i] = wire.Emission(e)
	}
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	_, _ = w.Write(enc.EncodeTopK(snap.Version, snap.K, wes, wire.DefaultCompressThreshold))
}

// writeBinaryEmissions renders a poll response as one KindEmissions frame.
func writeBinaryEmissions(w http.ResponseWriter, es []Emission) {
	enc := wire.GetEncoder()
	defer wire.PutEncoder(enc)
	wes := make([]wire.Emission, len(es))
	for i, e := range es {
		wes[i] = wire.Emission(e)
	}
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	_, _ = w.Write(enc.EncodeEmissions(wes, wire.DefaultCompressThreshold))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeIngestResult writes an IngestResult with an explicit status,
// used by both the live ingest path and idempotent replays (which must
// reproduce the original status byte-for-byte).
func writeIngestResult(w http.ResponseWriter, status int, res IngestResult) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(res)
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// with sub-second hints rounded down to "0" (retry immediately) so shed
// clients don't serialize on 1-second sleeps.
func retryAfterSeconds(d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	return strconv.Itoa(int(d / time.Second))
}

func httpError(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), statusFor(err))
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNoSuchSubscription):
		return http.StatusNotFound
	case errors.Is(err, ErrOutOfOrder), errors.Is(err, ErrClosed):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The request ran out of its deadline budget; the accepted prefix
		// is applied and the remainder is safe to retry.
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrReadOnly):
		// Durability degraded: nothing was applied; retry elsewhere/later.
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
