package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets. Observe is lock-free:
// one atomic add into the bucket, one into the total, and CAS loops for the
// running sum and exact maximum. Quantiles are estimated from the bucket
// counts by linear interpolation (see Quantile); count, sum, mean and max
// are exact.
//
// Concurrent reads during writes see a near-consistent snapshot — the usual
// metrics contract — never a torn value.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits, valid only when total > 0
	ex     atomic.Pointer[hExemplar]
}

// hExemplar pins the trace that produced the largest traced observation, so
// the exposition can link a histogram's tail back to a concrete trace.
type hExemplar struct {
	val   float64
	trace TraceID
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds (an implicit +Inf bucket is appended). With no bounds the histogram
// still tracks count/sum/max exactly. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records v. It no-ops on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Bucket i holds observations with v ≤ bounds[i] (Prometheus `le`
	// semantics); SearchFloat64s finds the first bound ≥ v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.total.Add(1)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// ObserveTraced records v and, when trace is non-zero, offers it as an
// exemplar (kept if v is the largest traced observation so far).
func (h *Histogram) ObserveTraced(v float64, trace TraceID) {
	if h == nil {
		return
	}
	h.Observe(v)
	h.AttachExemplar(v, trace)
}

// AttachExemplar offers (v, trace) as the histogram's exemplar without
// recording an observation. The exemplar with the largest value wins, so it
// points at the trace behind the histogram's worst case. Zero traces no-op.
func (h *Histogram) AttachExemplar(v float64, trace TraceID) {
	if h == nil || trace.IsZero() {
		return
	}
	for {
		old := h.ex.Load()
		if old != nil && old.val >= v {
			return
		}
		if h.ex.CompareAndSwap(old, &hExemplar{val: v, trace: trace}) {
			return
		}
	}
}

// Exemplar returns the pinned exemplar, if any.
func (h *Histogram) Exemplar() (v float64, trace TraceID, ok bool) {
	if h == nil {
		return 0, TraceID{}, false
	}
	e := h.ex.Load()
	if e == nil {
		return 0, TraceID{}, false
	}
	return e.val, e.trace, true
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Max returns the largest observed value (exact), or 0 with no observations.
func (h *Histogram) Max() float64 {
	if h == nil || h.total.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the rank. The lower edge of the first bucket is
// taken as 0 (every instrumented quantity here is nonnegative); ranks
// landing in the +Inf bucket return the exact maximum. The estimate is
// deterministic for a deterministic observation multiset.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum, lower := 0.0, 0.0
	for i, upper := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			est := lower + (upper-lower)*frac
			// Never report beyond the exact observed maximum.
			if m := h.Max(); est > m {
				est = m
			}
			return est
		}
		cum += c
		lower = upper
	}
	return h.Max()
}

// BucketBound returns the i-th upper bound; i == NumBuckets()-1 is +Inf.
func (h *Histogram) BucketBound(i int) float64 {
	if i >= len(h.bounds) {
		return math.Inf(1)
	}
	return h.bounds[i]
}

// NumBuckets returns the bucket count including the +Inf bucket.
func (h *Histogram) NumBuckets() int {
	if h == nil {
		return 0
	}
	return len(h.counts)
}

// BucketCount returns the raw (non-cumulative) count of bucket i.
func (h *Histogram) BucketCount(i int) int64 {
	if h == nil {
		return 0
	}
	return h.counts[i].Load()
}

// HistogramState is the serializable state of a histogram, used by the
// durability layer to carry per-subscription delay distributions across a
// restart. Exemplars are trace-scoped and deliberately not persisted.
type HistogramState struct {
	Bounds []float64
	Counts []int64
	Total  int64
	Sum    float64
	Max    float64 // valid only when Total > 0
}

// State captures the histogram's counters. Concurrent observations may or
// may not be included — the usual metrics contract.
func (h *Histogram) State() HistogramState {
	if h == nil {
		return HistogramState{}
	}
	st := HistogramState{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Total:  h.total.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		st.Counts[i] = h.counts[i].Load()
	}
	if st.Total > 0 {
		st.Max = math.Float64frombits(h.max.Load())
	}
	return st
}

// RestoreHistogram rebuilds a histogram from a captured state.
func RestoreHistogram(st HistogramState) *Histogram {
	h := NewHistogram(st.Bounds)
	for i, c := range st.Counts {
		if i < len(h.counts) {
			h.counts[i].Store(c)
		}
	}
	h.total.Store(st.Total)
	h.sum.Store(math.Float64bits(st.Sum))
	if st.Total > 0 {
		h.max.Store(math.Float64bits(st.Max))
	}
	return h
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at start
// and multiplying by factor: start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets is the default bound set for wall-clock stage timings, spanning
// 1µs to ~4s exponentially (factor 4). Hot-path stages (a single solver
// phase, one index append) land in the low microseconds; whole experiment
// replays in the seconds.
var TimeBuckets = ExpBuckets(1e-6, 4, 12)

// DelayBuckets is the default bound set for event-time decision delays in
// seconds, spanning 0.25s to ~2048s (factor 2) — the range of τ used across
// the paper's experiments.
var DelayBuckets = ExpBuckets(0.25, 2, 14)
