// Package obs is the repo's zero-dependency observability substrate: a
// registry of named counters, gauges and fixed-bucket histograms whose hot
// paths are single atomic operations, plus a lightweight span tracer with a
// bounded in-memory journal (see trace.go). The registry exposes itself in
// Prometheus text format (WritePrometheus) and as a JSON snapshot
// (WriteJSON), so the same instruments back both the pub/sub server's
// /metrics/prometheus endpoint and mqdp-bench's machine-readable counters.
//
// Instrumentation is opt-in and near-free when disabled: every method is a
// no-op on a nil receiver, and a nil *Registry hands out nil instruments, so
// packages wire themselves with
//
//	var reg *obs.Registry // nil = disabled
//	c := reg.Counter("mqdp_pkg_things_total", "things done")
//	c.Inc() // no-op branch when disabled
//
// and pay one predictable branch per call on the disabled path. Metric names
// follow the scheme mqdp_<pkg>_<name>, with _total for counters and
// _seconds for duration histograms.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// kind discriminates the instrument registered under a name.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry holds named instruments. The zero value is not usable; NewRegistry
// returns an empty one and a nil *Registry is the disabled mode: it hands out
// nil instruments whose methods are all no-ops. Instrument creation takes a
// mutex (wiring happens once, off the hot path); instrument updates are
// lock-free atomics.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]kind
	help     map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   atomic.Pointer[Tracer]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]kind),
		help:     make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// register claims name for k, panicking on a kind collision (a programmer
// error: two packages disagree about what a name is). Caller holds r.mu.
func (r *Registry) register(name, help string, k kind) {
	if prev, ok := r.kinds[name]; ok && prev != k {
		panic("obs: metric " + name + " registered as " + prev.String() + " and " + k.String())
	}
	r.kinds[name] = k
	if help != "" || r.help[name] == "" {
		r.help[name] = help
	}
}

// Counter returns the counter registered under name, creating it if needed.
// A nil registry returns nil (every Counter method no-ops on nil).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindCounter)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterCounter adopts an existing counter under name (used to expose
// instruments that predate the registry, e.g. the server's service totals).
// It replaces any counter previously registered under the name.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindCounter)
	r.counters[name] = c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindGauge)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with the
// given bucket upper bounds if needed (an implicit +Inf bucket is appended).
// Buckets of an existing histogram are kept; bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindHistogram)
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterHistogram adopts an existing histogram under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindHistogram)
	r.hists[name] = h
}

// SetTracer attaches a span tracer; packages capture it when wired via their
// SetObs hooks, so attach the tracer before wiring.
func (r *Registry) SetTracer(t *Tracer) {
	if r != nil {
		r.tracer.Store(t)
	}
}

// Tracer returns the attached tracer, or nil (nil Registry included).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer.Load()
}

// names returns every registered metric name, sorted, for deterministic
// exposition. Caller holds r.mu.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.kinds))
	for name := range r.kinds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Counter is a monotonically increasing int64. The zero value is ready to
// use and all methods no-op on a nil receiver, so instruments handed out by
// a nil registry cost one predictable branch per call.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d and returns the new value (0 on a nil receiver). Returning the
// value lets sequence-number generators live on the same type.
func (c *Counter) Add(d int64) int64 {
	if c == nil {
		return 0
	}
	return c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d via a CAS loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
