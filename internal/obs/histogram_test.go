package obs

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the `le` semantics: an observation equal
// to a bound lands in that bound's bucket, one just above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // v ≤ 1
		{1.0001, 1}, {2, 1}, // 1 < v ≤ 2
		{3, 2}, {4, 2}, // 2 < v ≤ 4
		{4.5, 3}, {1e9, 3}, // +Inf bucket
	}
	for _, c := range cases {
		before := h.BucketCount(c.bucket)
		h.Observe(c.v)
		if got := h.BucketCount(c.bucket); got != before+1 {
			t.Errorf("Observe(%v): bucket %d count %d, want %d", c.v, c.bucket, got, before+1)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	if h.BucketBound(3) != math.Inf(1) {
		t.Fatalf("last bound = %v, want +Inf", h.BucketBound(3))
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	for _, v := range []float64{1, 2, 3, 150} {
		h.Observe(v)
	}
	if h.Sum() != 156 {
		t.Errorf("sum = %v, want 156", h.Sum())
	}
	if h.Mean() != 39 {
		t.Errorf("mean = %v, want 39", h.Mean())
	}
	if h.Max() != 150 {
		t.Errorf("max = %v, want 150", h.Max())
	}
}

// TestHistogramQuantileEstimates checks the interpolation against a uniform
// fill where the true quantiles are known: 1000 observations evenly spread
// over (0, 10] with bounds every 1.0 must estimate any quantile within one
// bucket width.
func TestHistogramQuantileEstimates(t *testing.T) {
	bounds := make([]float64, 10)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := NewHistogram(bounds)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 10.00 uniform
	}
	for _, c := range []struct{ q, want float64 }{
		{0.5, 5}, {0.95, 9.5}, {0.99, 9.9}, {0.10, 1},
	} {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > 1.0 {
			t.Errorf("q%v = %v, want %v ± 1 bucket", c.q, got, c.want)
		}
	}
	// Extremes clamp to [0, exact max].
	if got := h.Quantile(1); got != 10 {
		t.Errorf("q1 = %v, want exact max 10", got)
	}
	if got := h.Quantile(0); got < 0 {
		t.Errorf("q0 = %v, want ≥ 0", got)
	}
}

// TestHistogramQuantileInfBucket: ranks landing in the +Inf bucket return
// the exact maximum rather than an unbounded interpolation.
func TestHistogramQuantileInfBucket(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	for i := 0; i < 9; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.95); got != 100 {
		t.Errorf("q95 = %v, want exact max 100", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(TimeBuckets)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.95) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.25, 2, 4)
	want := []float64{0.25, 0.5, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	for i := 1; i < len(TimeBuckets); i++ {
		if TimeBuckets[i] <= TimeBuckets[i-1] {
			t.Fatal("TimeBuckets not ascending")
		}
	}
	for i := 1; i < len(DelayBuckets); i++ {
		if DelayBuckets[i] <= DelayBuckets[i-1] {
			t.Fatal("DelayBuckets not ascending")
		}
	}
}
