package obs

import (
	"context"
	"encoding/hex"
	"strconv"
)

// spanCtxKey keys the active span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying span as the active span. A nil span
// returns ctx unchanged, so callers can thread disabled tracing for free.
func ContextWithSpan(ctx context.Context, span *ActiveSpan) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, span)
}

// FromContext returns the active span carried by ctx, or nil.
func FromContext(ctx context.Context) *ActiveSpan {
	if ctx == nil {
		return nil
	}
	span, _ := ctx.Value(spanCtxKey{}).(*ActiveSpan)
	return span
}

// StartSpan opens a child of the context's active span and returns a context
// carrying the child. When ctx has no active span (tracing disabled, or an
// untraced request) it returns (ctx, nil): the nil span no-ops everywhere, so
// call sites need no conditionals. Roots are created explicitly at process
// boundaries via Tracer.StartTrace / Tracer.StartRemote.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Child(name)
	return ContextWithSpan(ctx, child), child
}

// W3C trace-context propagation (https://www.w3.org/TR/trace-context/):
// one header,
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// We always emit version 00 and flags 01 (sampled); retention is decided
// tail-based on the server, so the inbound flag is ignored.

// Traceparent renders the span as an outbound traceparent header value, or
// "" for nil/untraced spans.
func (s *ActiveSpan) Traceparent() string {
	if s == nil || s.span.Trace.IsZero() {
		return ""
	}
	return FormatTraceparent(s.span.Trace, s.span.ID)
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(trace TraceID, spanID uint64) string {
	var b [55]byte
	copy(b[:], "00-")
	hex.Encode(b[3:35], trace[:])
	b[35] = '-'
	var sp [8]byte
	for i := 0; i < 8; i++ {
		sp[i] = byte(spanID >> (8 * (7 - i)))
	}
	hex.Encode(b[36:52], sp[:])
	copy(b[52:], "-01")
	return string(b[:])
}

// ParseTraceparent parses a traceparent header value, returning the trace ID
// and the remote parent span ID. It accepts any version except the reserved
// ff, requires a non-zero trace ID, and reports ok=false on anything
// malformed — callers fall back to starting a fresh root, never reject the
// request.
func ParseTraceparent(s string) (TraceID, uint64, bool) {
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceID{}, 0, false
	}
	ver := s[:2]
	if !isHex(ver) || ver == "ff" {
		return TraceID{}, 0, false
	}
	// Future versions may append fields after the flags; version 00 must be
	// exactly four fields.
	if ver == "00" && len(s) != 55 {
		return TraceID{}, 0, false
	}
	trace, ok := ParseTraceID(s[3:35])
	if !ok {
		return TraceID{}, 0, false
	}
	parentHex := s[36:52]
	parent, err := strconv.ParseUint(parentHex, 16, 64)
	if err != nil || !isLowerHex(parentHex) || parent == 0 {
		return TraceID{}, 0, false
	}
	if !isLowerHex(s[3:35]) || !isHex(s[53:55]) {
		return TraceID{}, 0, false
	}
	return trace, parent, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// isLowerHex enforces the spec's lowercase requirement for IDs.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
