package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records finished spans into a bounded in-memory ring journal for
// post-mortem analysis (mqdp-bench -trace-dump). Starting and annotating a
// span touches only the span itself; the ring is locked once, at End. When
// the ring is full the oldest spans are overwritten and counted as dropped.
//
// All methods no-op on a nil *Tracer, so callers thread an optional tracer
// the same way they thread optional instruments.
type Tracer struct {
	ids     atomic.Uint64
	mu      sync.Mutex
	ring    []Span
	next    int
	wrapped bool
	dropped uint64
}

// Span is one finished journal entry.
type Span struct {
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"` // 0 = root
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Attrs  []Attr    `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Attr is one key=value span annotation.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// NewTracer returns a tracer whose journal retains the most recent capacity
// spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// ActiveSpan is an in-flight span; it is recorded into the journal at End.
// An ActiveSpan is not safe for concurrent use (one span per goroutine).
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// Start opens a root span. A nil tracer returns a nil span, on which every
// method no-ops.
func (t *Tracer) Start(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, span: Span{ID: t.ids.Add(1), Name: name, Start: time.Now()}}
}

// Child opens a span parented to s.
func (s *ActiveSpan) Child(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	c := s.t.Start(name)
	c.span.Parent = s.span.ID
	return c
}

// Set annotates the span with a key=value attribute.
func (s *ActiveSpan) Set(key, val string) {
	if s != nil {
		s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Val: val})
	}
}

// SetInt annotates the span with an integer attribute.
func (s *ActiveSpan) SetInt(key string, v int64) {
	s.Set(key, strconv.FormatInt(v, 10))
}

// End stamps the span and records it into the journal. A span must be ended
// at most once.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.End = time.Now()
	t := s.t
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
	}
	t.ring[t.next] = s.span
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Spans returns the journal contents, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.wrapped {
		out = append(out, t.ring[t.next:]...)
	}
	return append(out, t.ring[:t.next]...)
}

// Dropped reports how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Dump writes the journal to w, oldest span first, one line per span:
//
//	span=ID parent=PARENT name=NAME dur=DURATION [key=value ...]
//
// followed by a trailer counting retained and dropped spans.
func (t *Tracer) Dump(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	bw := bufio.NewWriter(w)
	for _, s := range spans {
		fmt.Fprintf(bw, "span=%d parent=%d name=%s dur=%s", s.ID, s.Parent, s.Name, s.Duration())
		for _, a := range s.Attrs {
			fmt.Fprintf(bw, " %s=%s", a.Key, a.Val)
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintf(bw, "# journal: %d spans retained, %d dropped\n", len(spans), t.Dropped())
	return bw.Flush()
}
